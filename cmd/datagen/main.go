// Command datagen emits the paper's synthetic datasets (Section 4) as CSV
// or raw little-endian binary, for use outside the harness.
//
// Usage:
//
//	datagen -dist Zipf -n 1000000 -card 10000 > zipf.csv
//	datagen -dist Rseq-Shf -n 1000000 -card 1000 -values -o data.csv
//	datagen -dist Hhit -n 1000000 -card 100 -format bin -o keys.bin
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"memagg/internal/dataset"
)

func main() {
	var (
		dist   = flag.String("dist", "Rseq", "distribution: Rseq, Rseq-Shf, Hhit, Hhit-Shf, Zipf, MovC")
		n      = flag.Int("n", 1_000_000, "number of records")
		card   = flag.Int("card", 1000, "target group-by cardinality")
		seed   = flag.Uint64("seed", 42, "RNG seed")
		values = flag.Bool("values", false, "emit a value column alongside the keys")
		format = flag.String("format", "csv", "output format: csv or bin")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	kind, err := dataset.ParseKind(*dist)
	if err != nil {
		fatalf("%v", err)
	}
	spec := dataset.Spec{Kind: kind, N: *n, Cardinality: *card, Seed: *seed}
	if err := spec.Validate(); err != nil {
		fatalf("%v", err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("close: %v", err)
			}
		}()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)

	keys := spec.Keys()
	var vals []uint64
	if *values {
		vals = dataset.Values(*n, *seed)
	}

	switch *format {
	case "csv":
		if err := writeCSV(bw, keys, vals); err != nil {
			fatalf("write: %v", err)
		}
	case "bin":
		if err := writeBin(bw, keys, vals); err != nil {
			fatalf("write: %v", err)
		}
	default:
		fatalf("unknown -format %q (csv or bin)", *format)
	}
	if err := bw.Flush(); err != nil {
		fatalf("flush: %v", err)
	}
}

func writeCSV(w *bufio.Writer, keys, vals []uint64) error {
	buf := make([]byte, 0, 48)
	for i, k := range keys {
		buf = strconv.AppendUint(buf[:0], k, 10)
		if vals != nil {
			buf = append(buf, ',')
			buf = strconv.AppendUint(buf, vals[i], 10)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func writeBin(w *bufio.Writer, keys, vals []uint64) error {
	var b [16]byte
	for i, k := range keys {
		binary.LittleEndian.PutUint64(b[:8], k)
		rec := b[:8]
		if vals != nil {
			binary.LittleEndian.PutUint64(b[8:], vals[i])
			rec = b[:16]
		}
		if _, err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "datagen: "+format+"\n", args...)
	os.Exit(1)
}
