// Command aggbench reproduces the paper's experiments.
//
// Usage:
//
//	aggbench -list
//	aggbench -exp fig4 -n 4000000
//	aggbench -exp alloc -n 1000000
//	aggbench -exp all -n 1000000 -datasets Rseq,Zipf -cards 1000,1000000
//	aggbench -json -n 4000000 -datasets Rseq-Shf -cards 100000 -threads 8
//
// Each experiment prints an aligned text table with the same grid of
// conditions as the corresponding figure or table in the paper. With
// -json, aggbench instead runs the Q1 phase-split benchmark over every
// engine and emits one JSON object with per-engine build/iterate timings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"memagg/internal/dataset"
	"memagg/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig2..fig11, tab6, tab7, all)")
		n        = flag.Int("n", 1_000_000, "dataset size (paper uses 100M)")
		seed     = flag.Uint64("seed", 42, "dataset RNG seed")
		threads  = flag.String("threads", "", "comma-separated thread counts (default 1..min(8,GOMAXPROCS))")
		datasets = flag.String("datasets", "", "comma-separated distributions (default all of Table 4)")
		cards    = flag.String("cards", "", "comma-separated group-by cardinalities (default 1e2..1e7 clipped to n)")
		list     = flag.Bool("list", false, "list experiments and exit")
		jsonOut  = flag.Bool("json", false, "emit per-engine build/iterate Q1 timings as one JSON object")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-6s %s\n", e.Name, e.Title)
		}
		return
	}

	cfg := harness.Config{N: *n, Seed: *seed, Out: os.Stdout}
	var err error
	if cfg.Threads, err = parseInts(*threads); err != nil {
		fatalf("bad -threads: %v", err)
	}
	if cfg.Cardinalities, err = parseInts(*cards); err != nil {
		fatalf("bad -cards: %v", err)
	}
	if *datasets != "" {
		for _, name := range strings.Split(*datasets, ",") {
			kind, err := dataset.ParseKind(strings.TrimSpace(name))
			if err != nil {
				fatalf("bad -datasets: %v", err)
			}
			cfg.Datasets = append(cfg.Datasets, kind)
		}
	}

	if *jsonOut {
		if err := harness.RunJSON(cfg); err != nil {
			fatalf("%v", err)
		}
		return
	}

	if err := harness.Run(*exp, cfg); err != nil {
		fatalf("%v", err)
	}
}

func parseInts(csv string) ([]int, error) {
	if csv == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aggbench: "+format+"\n", args...)
	os.Exit(1)
}
