package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/url"
	"strconv"

	"memagg"
	"memagg/internal/agg"
	"memagg/internal/cluster"
	"memagg/internal/obs"
)

// routerServer wires a cluster.Router to the same HTTP API a single node
// serves: clients speak one protocol whether they face one aggserve or a
// sharded fleet. Ingest batches are split by group-key hash and shipped
// to the owning workers; queries scatter-gather every worker's partial
// set and merge exactly; responses carry the composed cluster watermark
// and its ETag.
type routerServer struct {
	rt       *cluster.Router
	mux      *http.ServeMux
	reg      *obs.Registry
	requests *obs.CounterVec
	latency  *obs.HistogramVec
}

func newRouterServer(rt *cluster.Router) *routerServer {
	reg := obs.NewRegistry()
	srv := &routerServer{
		rt:  rt,
		mux: http.NewServeMux(),
		reg: reg,
		requests: reg.NewCounterVec("memagg_http_requests_total",
			"HTTP requests served, by route and status code.", "route", "code"),
		latency: reg.NewHistogramVec("memagg_http_request_seconds",
			"HTTP request latency, by route.", "route"),
	}
	srv.handle("/ingest", srv.handleIngest)
	srv.handle("/flush", srv.handleFlush)
	srv.handle("/query", srv.handleQuery)
	srv.handle("/cluster/stats", srv.handleClusterStats)
	srv.handle("/healthz", srv.handleHealthz)
	srv.handle("/readyz", srv.handleReadyz)
	regs := []*obs.Registry{obs.Default, rt.Registry(), reg}
	srv.mux.Handle("/v1/metrics", obs.Handler(regs...))
	srv.mux.Handle("/metrics", obs.Handler(regs...))
	srv.mux.Handle("/v1/debug/vars", obs.VarsHandler(regs...))
	srv.mux.Handle("/debug/vars", obs.VarsHandler(regs...))
	return srv
}

func (srv *routerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	srv.mux.ServeHTTP(w, r)
}

// handle mirrors server.handle: versioned /v1 mount plus the unversioned
// alias, one shared route label.
func (srv *routerServer) handle(route string, h http.HandlerFunc) {
	lat := srv.latency.With(route)
	wrapped := func(w http.ResponseWriter, r *http.Request) {
		mk := obs.Start()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		mk.Tick(lat)
		srv.requests.With(route, strconv.Itoa(sw.status)).Inc()
	}
	srv.mux.HandleFunc("/v1"+route, wrapped)
	srv.mux.HandleFunc(route, wrapped)
}

// clusterStatus maps a router error to its HTTP status: 503 when peers
// are unreachable (breaker open, retries exhausted, partial gather) —
// the retryable condition — and 500 for anything else.
func clusterStatus(err error) int {
	if errors.Is(err, cluster.ErrPeerUnavailable) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// clusterError writes a router failure in the shared error envelope,
// with its typed detail: a partial gather additionally names the
// unreachable peers so operators see which shard is out rather than a
// bare 503.
func clusterError(w http.ResponseWriter, err error) {
	var pa *cluster.PartialAvailabilityError
	if errors.As(err, &pa) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"error":   "partial availability: exact results need every shard",
			"code":    http.StatusServiceUnavailable,
			"missing": pa.Missing,
		})
		return
	}
	httpError(w, clusterStatus(err), err.Error())
}

func (srv *routerServer) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if isChunkRequest(r) {
		// Binary chunk stream in, binary chunks out: each decoded chunk
		// scatters columnar-wise by ring owner — one partition pass, one
		// outbound wire chunk per peer, no JSON anywhere on the path.
		rows, err := ingestChunks(r.Body, srv.rt.IngestChunk)
		if err != nil {
			if status, msg := chunkStatus(err); status == http.StatusBadRequest {
				httpError(w, status, msg)
			} else {
				clusterError(w, err)
			}
			return
		}
		writeJSON(w, map[string]any{"appended": rows, "ingested": srv.rt.IngestRows()})
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Vals) > len(req.Keys) {
		httpError(w, http.StatusBadRequest, "more vals than keys")
		return
	}
	if err := srv.rt.Ingest(req.Keys, req.Vals); err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, map[string]any{"appended": len(req.Keys), "ingested": srv.rt.IngestRows()})
}

func (srv *routerServer) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if err := srv.rt.Flush(); err != nil {
		clusterError(w, err)
		return
	}
	writeJSON(w, map[string]any{"flushed": true})
}

// clusterQueryResponse tags every result with the composed cluster
// watermark it is consistent with: the vector (one element per peer, in
// membership order) plus its total — the cluster analog of the
// single-node watermark field.
type clusterQueryResponse struct {
	Query     string            `json:"query"`
	Watermark cluster.Watermark `json:"watermark"`
	Rows      uint64            `json:"rows"`
	Result    any               `json:"result"`
}

func (srv *routerServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	m, err := srv.rt.Gather()
	if err != nil {
		clusterError(w, err)
		return
	}
	// The composed watermark vector fully determines every query result
	// (per URL), so it is the entity tag — the single-node contract,
	// lifted. The gather itself cannot be skipped (the vector is only
	// known from the peers' responses), but the merge-side query work and
	// the response body can.
	etag := m.Watermark.ETag()
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	o := runClusterQuery(m, q, r.URL.Query())
	if o.status != 0 {
		httpError(w, o.status, o.errMsg)
		return
	}
	w.Header().Set("ETag", etag)
	writeJSON(w, clusterQueryResponse{
		Query:     q,
		Watermark: m.Watermark,
		Rows:      m.Watermark.Total(),
		Result:    o.result,
	})
}

// countsOut/valuesOut/statsOut convert the merged kernels' agg rows to
// the facade's response types, so router and single-node responses are
// shape-identical (nil stays nil, matching empty-result encoding).
func countsOut(a []agg.GroupCount) []memagg.GroupCount {
	if a == nil {
		return nil
	}
	out := make([]memagg.GroupCount, len(a))
	for i, g := range a {
		out[i] = memagg.GroupCount{Key: g.Key, Count: g.Count}
	}
	return out
}

func valuesOut(a []agg.GroupFloat) []memagg.GroupValue {
	if a == nil {
		return nil
	}
	out := make([]memagg.GroupValue, len(a))
	for i, g := range a {
		out[i] = memagg.GroupValue{Key: g.Key, Value: g.Val}
	}
	return out
}

func statsOut(a []agg.GroupUint) []memagg.GroupStat {
	if a == nil {
		return nil
	}
	out := make([]memagg.GroupStat, len(a))
	for i, g := range a {
		out[i] = memagg.GroupStat{Key: g.Key, Value: g.Val}
	}
	return out
}

// runClusterQuery executes one named query over a merged gather — the
// same vocabulary runQuery speaks, answered from cluster.Merged's exact
// kernels.
func runClusterQuery(m *cluster.Merged, q string, params url.Values) outcome {
	var (
		result any
		err    error
	)
	switch q {
	case "q1", "count_by_key":
		result = countsOut(m.CountByKey())
	case "q2", "avg_by_key":
		result = valuesOut(m.AvgByKey())
	case "q3", "median_by_key":
		var rows []agg.GroupFloat
		rows, err = m.MedianByKey()
		result = valuesOut(rows)
	case "q4", "count":
		result = m.Count()
	case "q5", "avg":
		result = m.Avg()
	case "q6", "median":
		result, err = m.Median()
	case "q7", "range":
		lo, lerr := queryUint(params, "lo")
		hi, herr := queryUint(params, "hi")
		if lerr != nil {
			return outcome{status: http.StatusBadRequest, errMsg: lerr.Error()}
		}
		if herr != nil {
			return outcome{status: http.StatusBadRequest, errMsg: herr.Error()}
		}
		var rows []agg.GroupCount
		rows, err = m.CountRange(lo, hi)
		result = countsOut(rows)
	case "sum":
		result = statsOut(m.Reduce(agg.OpSum))
	case "min":
		result = statsOut(m.Reduce(agg.OpMin))
	case "max":
		result = statsOut(m.Reduce(agg.OpMax))
	case "quantile":
		p, perr := strconv.ParseFloat(params.Get("p"), 64)
		if perr != nil {
			return outcome{status: http.StatusBadRequest, errMsg: "quantile needs p=0..1"}
		}
		var rows []agg.GroupFloat
		rows, err = m.QuantileByKey(p)
		result = valuesOut(rows)
	case "mode":
		var rows []agg.GroupFloat
		rows, err = m.ModeByKey()
		result = valuesOut(rows)
	default:
		return outcome{status: http.StatusBadRequest, errMsg: "unknown query " + strconv.Quote(q)}
	}
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, memagg.ErrUnsupportedQuery) {
			status = http.StatusUnprocessableEntity
		}
		return outcome{status: status, errMsg: err.Error()}
	}
	return outcome{result: result}
}

func (srv *routerServer) handleClusterStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"peers":       srv.rt.Stats(),
		"ingest_rows": srv.rt.IngestRows(),
	})
}

func (srv *routerServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true})
}

// handleReadyz reports whether the whole membership is ready: the router
// is only useful when every shard owner accepts writes, so its readiness
// is the conjunction of its peers' /readyz.
func (srv *routerServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := srv.rt.Ready(); err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, map[string]any{"ready": true, "peers": len(srv.rt.Peers())})
}
