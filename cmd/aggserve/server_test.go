package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memagg"
	"memagg/internal/cluster"
)

// newTestServer starts a holistic stream with a tiny seal threshold so
// flushed rows become visible immediately, wrapped in the HTTP server.
func newTestServer(t *testing.T) (*server, *memagg.Stream) {
	t.Helper()
	s := memagg.NewStream(memagg.StreamOptions{Shards: 2, SealRows: 4, Holistic: true})
	t.Cleanup(func() { _ = s.Close() })
	return newServer(s), s
}

func do(t *testing.T, srv *server, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	return w
}

func TestIngestFlushQueryRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t)

	w := do(t, srv, http.MethodPost, "/ingest", `{"keys":[1,2,1,3],"vals":[10,20,30,40]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body)
	}
	if w := do(t, srv, http.MethodPost, "/flush", ""); w.Code != http.StatusOK {
		t.Fatalf("flush = %d: %s", w.Code, w.Body)
	}

	w = do(t, srv, http.MethodGet, "/query?q=q1", "")
	if w.Code != http.StatusOK {
		t.Fatalf("query q1 = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Query     string `json:"query"`
		Watermark uint64 `json:"watermark"`
		Result    []struct {
			Key   uint64 `json:"Key"`
			Count uint64 `json:"Count"`
		} `json:"result"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("q1 response: %v", err)
	}
	if resp.Watermark != 4 || len(resp.Result) != 3 {
		t.Fatalf("q1 = watermark %d, %d groups; want 4, 3", resp.Watermark, len(resp.Result))
	}
	counts := map[uint64]uint64{}
	for _, r := range resp.Result {
		counts[r.Key] = r.Count
	}
	if counts[1] != 2 || counts[2] != 1 || counts[3] != 1 {
		t.Fatalf("q1 counts = %v", counts)
	}

	// A holistic stream answers q3 over the same snapshot state.
	if w := do(t, srv, http.MethodGet, "/query?q=q3", ""); w.Code != http.StatusOK {
		t.Fatalf("query q3 = %d: %s", w.Code, w.Body)
	}
}

func TestQueryErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		target string
		want   int
	}{
		{"/query?q=", http.StatusBadRequest},
		{"/query?q=nonsense", http.StatusBadRequest},
		{"/query?q=q7", http.StatusBadRequest},       // missing lo/hi
		{"/query?q=quantile", http.StatusBadRequest}, // missing p
		{"/query?q=q7&lo=9&hi=3", http.StatusOK},     // empty range is legal
		{"/query?q=q1&extra=1", http.StatusOK},
	}
	for _, c := range cases {
		if w := do(t, srv, http.MethodGet, c.target, ""); w.Code != c.want {
			t.Errorf("GET %s = %d want %d (%s)", c.target, w.Code, c.want, w.Body)
		}
	}
	if w := do(t, srv, http.MethodPost, "/query?q=q1", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /query = %d want 405", w.Code)
	}
	if w := do(t, srv, http.MethodPost, "/ingest", `{bad json`); w.Code != http.StatusBadRequest {
		t.Errorf("bad ingest body = %d want 400", w.Code)
	}
	if w := do(t, srv, http.MethodPost, "/ingest", `{"keys":[1],"vals":[1,2]}`); w.Code != http.StatusBadRequest {
		t.Errorf("more vals than keys = %d want 400", w.Code)
	}
}

func TestUnsupportedQueryOnDistributiveStream(t *testing.T) {
	s := memagg.NewStream(memagg.StreamOptions{Shards: 1, SealRows: 4})
	t.Cleanup(func() { _ = s.Close() })
	srv := newServer(s)
	if w := do(t, srv, http.MethodGet, "/query?q=q3", ""); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("q3 on distributive stream = %d want 422 (%s)", w.Code, w.Body)
	}
}

func TestQueryCanceledContext(t *testing.T) {
	srv, s := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest(http.MethodGet, "/query?q=q1", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	if w.Code != statusClientClosedRequest {
		t.Fatalf("canceled query = %d want %d (%s)", w.Code, statusClientClosedRequest, w.Body)
	}
	if !strings.Contains(w.Body.String(), context.Canceled.Error()) {
		t.Fatalf("499 body does not carry the context error: %s", w.Body)
	}

	// An already-expired deadline behaves the same as an explicit cancel.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	r = httptest.NewRequest(http.MethodGet, "/query?q=q1", nil).WithContext(dctx)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	if w.Code != statusClientClosedRequest {
		t.Fatalf("expired-deadline query = %d want %d (%s)", w.Code, statusClientClosedRequest, w.Body)
	}

	// Cancellation against a closed stream still answers 499, not a panic
	// or a 500: the snapshot was pinned before the select.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r = httptest.NewRequest(http.MethodGet, "/query?q=q1", nil).WithContext(ctx)
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	if w.Code != statusClientClosedRequest {
		t.Fatalf("canceled query on closed stream = %d want %d (%s)", w.Code, statusClientClosedRequest, w.Body)
	}
}

// TestIngestDuringShutdown pins the shutdown ordering contract: once
// Stream.Close has run (srv.Shutdown drains handlers first in main, but a
// request can still race the close), /ingest and /flush answer 503 with
// the ErrClosed sentinel in the body, and queries keep serving the final
// state.
func TestIngestDuringShutdown(t *testing.T) {
	srv, s := newTestServer(t)
	if w := do(t, srv, http.MethodPost, "/ingest", `{"keys":[1,2],"vals":[1,2]}`); w.Code != http.StatusOK {
		t.Fatalf("ingest = %d", w.Code)
	}
	if w := do(t, srv, http.MethodPost, "/flush", ""); w.Code != http.StatusOK {
		t.Fatalf("flush = %d", w.Code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	w := do(t, srv, http.MethodPost, "/ingest", `{"keys":[9],"vals":[9]}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest after close = %d want 503 (%s)", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), memagg.ErrClosed.Error()) {
		t.Fatalf("503 body does not carry ErrClosed: %s", w.Body)
	}
	if w := do(t, srv, http.MethodPost, "/flush", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("flush after close = %d want 503 (%s)", w.Code, w.Body)
	}

	// The closed stream still serves its final, fully merged state.
	w = do(t, srv, http.MethodGet, "/query?q=q4", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"result":2`) {
		t.Fatalf("query after close = %d: %s", w.Code, w.Body)
	}
}

// TestDurableServerRecoversOnBoot runs the full serving lifecycle twice
// over one data directory: ingest through HTTP, shut down (final
// checkpoint), boot a second server and verify it answers queries at the
// recovered watermark without any re-ingest.
func TestDurableServerRecoversOnBoot(t *testing.T) {
	dir := t.TempDir()
	open := func() *memagg.Stream {
		s, err := memagg.OpenStream(memagg.StreamOptions{
			Shards:   2,
			SealRows: 4,
			Holistic: true,
			Durability: memagg.StreamDurability{
				Dir:        dir,
				SyncPolicy: "always",
			},
		})
		if err != nil {
			t.Fatalf("open durable stream: %v", err)
		}
		return s
	}

	s := open()
	srv := newServer(s)
	if w := do(t, srv, http.MethodPost, "/ingest", `{"keys":[1,2,1,3],"vals":[10,20,30,40]}`); w.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body)
	}
	if w := do(t, srv, http.MethodPost, "/flush", ""); w.Code != http.StatusOK {
		t.Fatalf("flush = %d", w.Code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open()
	t.Cleanup(func() { _ = s2.Close() })
	srv2 := newServer(s2)

	var st memagg.StreamStats
	w := do(t, srv2, http.MethodGet, "/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("/stats: %v", err)
	}
	if !st.Durable || st.Watermark != 4 || st.CheckpointWatermark != 4 {
		t.Fatalf("recovered stats = %+v, want durable watermark 4 from checkpoint", st)
	}

	w = do(t, srv2, http.MethodGet, "/query?q=q1", "")
	if w.Code != http.StatusOK {
		t.Fatalf("query on recovered server = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Watermark uint64 `json:"watermark"`
		Result    []struct {
			Key   uint64 `json:"Key"`
			Count uint64 `json:"Count"`
		} `json:"result"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("q1 response: %v", err)
	}
	counts := map[uint64]uint64{}
	for _, r := range resp.Result {
		counts[r.Key] = r.Count
	}
	if resp.Watermark != 4 || counts[1] != 2 || counts[2] != 1 || counts[3] != 1 {
		t.Fatalf("recovered q1 = watermark %d counts %v", resp.Watermark, counts)
	}
	// Holistic state (value multisets) survived the round trip too.
	if w := do(t, srv2, http.MethodGet, "/query?q=q3", ""); w.Code != http.StatusOK {
		t.Fatalf("q3 on recovered server = %d: %s", w.Code, w.Body)
	}
	// WAL metrics are live on the recovered server's /metrics.
	if w := do(t, srv2, http.MethodGet, "/metrics", ""); !strings.Contains(w.Body.String(), "memagg_wal_checkpoint_watermark_rows 4") {
		t.Fatalf("/metrics missing WAL checkpoint watermark gauge")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)

	// Generate some traffic first so the route counters have values.
	do(t, srv, http.MethodPost, "/ingest", `{"keys":[1,2],"vals":[1,2]}`)
	do(t, srv, http.MethodPost, "/flush", "")
	do(t, srv, http.MethodGet, "/query?q=q1", "")

	w := do(t, srv, http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE memagg_engine_phase_seconds histogram", // global: engine phases (header even when empty)
		"# TYPE memagg_arena_chunks_total counter",     // global: arena accounting
		"memagg_stream_rows_total 2",                   // stream: ingest counter
		"# TYPE memagg_stream_append_seconds histogram",
		`memagg_http_requests_total{route="/ingest",code="200"} 1`, // server: route counters
		`memagg_http_request_seconds_bucket{route="/query",`,
		"memagg_stream_seals_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Prometheus text format sanity: every non-comment line is
	// "name{labels} value" with a parseable float value.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
	}
}

func TestVarsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	do(t, srv, http.MethodPost, "/ingest", `{"keys":[7],"vals":[1]}`)
	w := do(t, srv, http.MethodGet, "/debug/vars", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", w.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if v, ok := vars["memagg_stream_rows_total"]; !ok || v.(float64) != 1 {
		t.Fatalf("memagg_stream_rows_total = %v (present=%v)", v, ok)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	do(t, srv, http.MethodPost, "/ingest", `{"keys":[1,1,2],"vals":[1,2,3]}`)
	do(t, srv, http.MethodPost, "/flush", "")
	w := do(t, srv, http.MethodGet, "/stats", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/stats = %d", w.Code)
	}
	var st memagg.StreamStats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if st.Ingested != 3 || st.Watermark != 3 || st.Batches != 1 || st.Seals == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestQueryETagConditional covers the watermark-as-ETag contract: every
// query response carries `ETag: "<watermark>"`, a matching If-None-Match
// short-circuits to 304 with no body, and once the watermark advances the
// stale validator misses and a full response returns with the new tag.
func TestQueryETagConditional(t *testing.T) {
	srv, _ := newTestServer(t)
	if w := do(t, srv, http.MethodPost, "/ingest", `{"keys":[1,2,1,3],"vals":[10,20,30,40]}`); w.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body)
	}
	if w := do(t, srv, http.MethodPost, "/flush", ""); w.Code != http.StatusOK {
		t.Fatalf("flush = %d: %s", w.Code, w.Body)
	}

	w := do(t, srv, http.MethodGet, "/query?q=q1", "")
	if w.Code != http.StatusOK {
		t.Fatalf("query = %d: %s", w.Code, w.Body)
	}
	etag := w.Header().Get("ETag")
	if etag != `"4"` {
		t.Fatalf("ETag = %q, want %q", etag, `"4"`)
	}

	cond := func(inm string) *httptest.ResponseRecorder {
		r := httptest.NewRequest(http.MethodGet, "/query?q=q1", nil)
		r.Header.Set("If-None-Match", inm)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, r)
		return w
	}
	for _, inm := range []string{etag, "W/" + etag, `"7", ` + etag, "*"} {
		w := cond(inm)
		if w.Code != http.StatusNotModified {
			t.Errorf("If-None-Match %q = %d, want 304", inm, w.Code)
		}
		if w.Header().Get("ETag") != etag {
			t.Errorf("304 for %q lost the ETag header: %q", inm, w.Header().Get("ETag"))
		}
		if w.Body.Len() != 0 {
			t.Errorf("304 for %q carried a body: %s", inm, w.Body)
		}
	}
	if w := cond(`"3"`); w.Code != http.StatusOK {
		t.Errorf("stale If-None-Match = %d, want 200", w.Code)
	}

	// Advance the watermark; the old validator must stop matching.
	if w := do(t, srv, http.MethodPost, "/ingest", `{"keys":[9],"vals":[90]}`); w.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body)
	}
	if w := do(t, srv, http.MethodPost, "/flush", ""); w.Code != http.StatusOK {
		t.Fatalf("flush = %d: %s", w.Code, w.Body)
	}
	w = cond(etag)
	if w.Code != http.StatusOK {
		t.Fatalf("advanced watermark with old validator = %d, want 200", w.Code)
	}
	if got := w.Header().Get("ETag"); got != `"5"` {
		t.Errorf("advanced ETag = %q, want %q", got, `"5"`)
	}
}

// TestHealthzReadyz: liveness always answers while the stream is up;
// readiness flips to 503 once the stream closes — the router's
// membership-gating contract.
func TestHealthzReadyz(t *testing.T) {
	srv, s := newTestServer(t)

	if w := do(t, srv, http.MethodGet, "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d: %s", w.Code, w.Body)
	}
	if w := do(t, srv, http.MethodGet, "/readyz", ""); w.Code != http.StatusOK {
		t.Fatalf("readyz = %d: %s", w.Code, w.Body)
	}

	_ = s.Close()
	// Liveness is not readiness: the process still serves (queries keep
	// working after Close), but it must not receive sharded ingest.
	if w := do(t, srv, http.MethodGet, "/healthz", ""); w.Code != http.StatusOK {
		t.Fatalf("healthz after close = %d: %s", w.Code, w.Body)
	}
	if w := do(t, srv, http.MethodGet, "/readyz", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after close = %d, want 503: %s", w.Code, w.Body)
	}
}

// TestPartialsEndpoint: /partials serves the snapshot's partial set in
// the cluster wire format, tagged with the watermark it covers.
func TestPartialsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	do(t, srv, http.MethodPost, "/ingest", `{"keys":[1,2,1,3],"vals":[10,20,30,40]}`)
	if w := do(t, srv, http.MethodPost, "/flush", ""); w.Code != http.StatusOK {
		t.Fatalf("flush = %d", w.Code)
	}

	w := do(t, srv, http.MethodGet, "/partials", "")
	if w.Code != http.StatusOK {
		t.Fatalf("partials = %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Memagg-Watermark"); got != "4" {
		t.Fatalf("watermark header %q, want 4", got)
	}
	if w.Body.Len() == 0 {
		t.Fatal("empty partial set body")
	}
	if w := do(t, srv, http.MethodPost, "/partials", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST partials = %d, want 405", w.Code)
	}
}

// doRouter drives the router-mode HTTP server in-process.
func doRouter(t *testing.T, srv *routerServer, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	return w
}

// newTestCluster spins up n worker nodes (full aggserve servers over
// httptest) plus the router-mode server over them.
func newTestCluster(t *testing.T, n int) *routerServer {
	t.Helper()
	peers := make([]string, n)
	for i := 0; i < n; i++ {
		s := memagg.NewStream(memagg.StreamOptions{Shards: 1, SealRows: 4, Holistic: true})
		ts := httptest.NewServer(newServer(s))
		t.Cleanup(func() { ts.Close(); _ = s.Close() })
		peers[i] = ts.URL
	}
	rt, err := cluster.NewRouter(cluster.Config{Peers: peers})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return newRouterServer(rt)
}

// TestRouterServerRoundTrip: the router-mode server speaks the node
// protocol end to end — sharded ingest, gathered exact queries, the
// composed watermark ETag, membership-wide readiness, and stats.
func TestRouterServerRoundTrip(t *testing.T) {
	srv := newTestCluster(t, 3)

	if w := doRouter(t, srv, http.MethodGet, "/readyz", ""); w.Code != http.StatusOK {
		t.Fatalf("readyz = %d: %s", w.Code, w.Body)
	}
	w := doRouter(t, srv, http.MethodPost, "/ingest", `{"keys":[1,2,1,3,9,9],"vals":[10,20,30,40,5,7]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body)
	}
	if w := doRouter(t, srv, http.MethodPost, "/flush", ""); w.Code != http.StatusOK {
		t.Fatalf("flush = %d: %s", w.Code, w.Body)
	}

	w = doRouter(t, srv, http.MethodGet, "/query?q=q1", "")
	if w.Code != http.StatusOK {
		t.Fatalf("query q1 = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Watermark []uint64 `json:"watermark"`
		Rows      uint64   `json:"rows"`
		Result    []struct {
			Key   uint64 `json:"Key"`
			Count uint64 `json:"Count"`
		} `json:"result"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("q1 response: %v", err)
	}
	if resp.Rows != 6 || len(resp.Watermark) != 3 {
		t.Fatalf("rows %d, watermark %v; want 6 rows over 3 peers", resp.Rows, resp.Watermark)
	}
	counts := map[uint64]uint64{}
	for _, r := range resp.Result {
		counts[r.Key] = r.Count
	}
	if counts[1] != 2 || counts[2] != 1 || counts[3] != 1 || counts[9] != 2 {
		t.Fatalf("q1 counts = %v", counts)
	}

	// Conditional gather: the composed-vector ETag round-trips to a 304.
	etag := w.Header().Get("ETag")
	if etag == "" {
		t.Fatal("query response has no ETag")
	}
	r := httptest.NewRequest(http.MethodGet, "/query?q=q1", nil)
	r.Header.Set("If-None-Match", etag)
	w2 := httptest.NewRecorder()
	srv.ServeHTTP(w2, r)
	if w2.Code != http.StatusNotModified {
		t.Fatalf("conditional query = %d, want 304", w2.Code)
	}

	// Holistic query through the cluster.
	if w := doRouter(t, srv, http.MethodGet, "/query?q=q3", ""); w.Code != http.StatusOK {
		t.Fatalf("query q3 = %d: %s", w.Code, w.Body)
	}

	// Stats name every peer.
	w = doRouter(t, srv, http.MethodGet, "/cluster/stats", "")
	if w.Code != http.StatusOK {
		t.Fatalf("cluster/stats = %d: %s", w.Code, w.Body)
	}
	var stats struct {
		Peers []struct {
			Peer    string `json:"peer"`
			Breaker string `json:"breaker"`
		} `json:"peers"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats response: %v", err)
	}
	if len(stats.Peers) != 3 {
		t.Fatalf("stats over %d peers, want 3", len(stats.Peers))
	}
	for _, p := range stats.Peers {
		if p.Breaker != "closed" {
			t.Fatalf("peer %s breaker %q, want closed", p.Peer, p.Breaker)
		}
	}
}
