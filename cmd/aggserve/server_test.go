package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"memagg"
)

// newTestServer starts a holistic stream with a tiny seal threshold so
// flushed rows become visible immediately, wrapped in the HTTP server.
func newTestServer(t *testing.T) (*server, *memagg.Stream) {
	t.Helper()
	s := memagg.NewStream(memagg.StreamOptions{Shards: 2, SealRows: 4, Holistic: true})
	t.Cleanup(func() { _ = s.Close() })
	return newServer(s), s
}

func do(t *testing.T, srv *server, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	return w
}

func TestIngestFlushQueryRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t)

	w := do(t, srv, http.MethodPost, "/ingest", `{"keys":[1,2,1,3],"vals":[10,20,30,40]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body)
	}
	if w := do(t, srv, http.MethodPost, "/flush", ""); w.Code != http.StatusOK {
		t.Fatalf("flush = %d: %s", w.Code, w.Body)
	}

	w = do(t, srv, http.MethodGet, "/query?q=q1", "")
	if w.Code != http.StatusOK {
		t.Fatalf("query q1 = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Query     string `json:"query"`
		Watermark uint64 `json:"watermark"`
		Result    []struct {
			Key   uint64 `json:"Key"`
			Count uint64 `json:"Count"`
		} `json:"result"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("q1 response: %v", err)
	}
	if resp.Watermark != 4 || len(resp.Result) != 3 {
		t.Fatalf("q1 = watermark %d, %d groups; want 4, 3", resp.Watermark, len(resp.Result))
	}
	counts := map[uint64]uint64{}
	for _, r := range resp.Result {
		counts[r.Key] = r.Count
	}
	if counts[1] != 2 || counts[2] != 1 || counts[3] != 1 {
		t.Fatalf("q1 counts = %v", counts)
	}

	// A holistic stream answers q3 over the same snapshot state.
	if w := do(t, srv, http.MethodGet, "/query?q=q3", ""); w.Code != http.StatusOK {
		t.Fatalf("query q3 = %d: %s", w.Code, w.Body)
	}
}

func TestQueryErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		target string
		want   int
	}{
		{"/query?q=", http.StatusBadRequest},
		{"/query?q=nonsense", http.StatusBadRequest},
		{"/query?q=q7", http.StatusBadRequest},       // missing lo/hi
		{"/query?q=quantile", http.StatusBadRequest}, // missing p
		{"/query?q=q7&lo=9&hi=3", http.StatusOK},     // empty range is legal
		{"/query?q=q1&extra=1", http.StatusOK},
	}
	for _, c := range cases {
		if w := do(t, srv, http.MethodGet, c.target, ""); w.Code != c.want {
			t.Errorf("GET %s = %d want %d (%s)", c.target, w.Code, c.want, w.Body)
		}
	}
	if w := do(t, srv, http.MethodPost, "/query?q=q1", ""); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /query = %d want 405", w.Code)
	}
	if w := do(t, srv, http.MethodPost, "/ingest", `{bad json`); w.Code != http.StatusBadRequest {
		t.Errorf("bad ingest body = %d want 400", w.Code)
	}
	if w := do(t, srv, http.MethodPost, "/ingest", `{"keys":[1],"vals":[1,2]}`); w.Code != http.StatusBadRequest {
		t.Errorf("more vals than keys = %d want 400", w.Code)
	}
}

func TestUnsupportedQueryOnDistributiveStream(t *testing.T) {
	s := memagg.NewStream(memagg.StreamOptions{Shards: 1, SealRows: 4})
	t.Cleanup(func() { _ = s.Close() })
	srv := newServer(s)
	if w := do(t, srv, http.MethodGet, "/query?q=q3", ""); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("q3 on distributive stream = %d want 422 (%s)", w.Code, w.Body)
	}
}

func TestQueryCanceledContext(t *testing.T) {
	srv, _ := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest(http.MethodGet, "/query?q=q1", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	if w.Code != statusClientClosedRequest {
		t.Fatalf("canceled query = %d want %d (%s)", w.Code, statusClientClosedRequest, w.Body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)

	// Generate some traffic first so the route counters have values.
	do(t, srv, http.MethodPost, "/ingest", `{"keys":[1,2],"vals":[1,2]}`)
	do(t, srv, http.MethodPost, "/flush", "")
	do(t, srv, http.MethodGet, "/query?q=q1", "")

	w := do(t, srv, http.MethodGet, "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE memagg_engine_phase_seconds histogram", // global: engine phases (header even when empty)
		"# TYPE memagg_arena_chunks_total counter",     // global: arena accounting
		"memagg_stream_rows_total 2",                   // stream: ingest counter
		"# TYPE memagg_stream_append_seconds histogram",
		`memagg_http_requests_total{route="/ingest",code="200"} 1`, // server: route counters
		`memagg_http_request_seconds_bucket{route="/query",`,
		"memagg_stream_seals_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Prometheus text format sanity: every non-comment line is
	// "name{labels} value" with a parseable float value.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
	}
}

func TestVarsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	do(t, srv, http.MethodPost, "/ingest", `{"keys":[7],"vals":[1]}`)
	w := do(t, srv, http.MethodGet, "/debug/vars", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", w.Code)
	}
	var vars map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if v, ok := vars["memagg_stream_rows_total"]; !ok || v.(float64) != 1 {
		t.Fatalf("memagg_stream_rows_total = %v (present=%v)", v, ok)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	do(t, srv, http.MethodPost, "/ingest", `{"keys":[1,1,2],"vals":[1,2,3]}`)
	do(t, srv, http.MethodPost, "/flush", "")
	w := do(t, srv, http.MethodGet, "/stats", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/stats = %d", w.Code)
	}
	var st memagg.StreamStats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("/stats not JSON: %v", err)
	}
	if st.Ingested != 3 || st.Watermark != 3 || st.Batches != 1 || st.Seals == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
