// Command aggserve exposes a memagg streaming aggregation over HTTP: a
// minimal serving front-end for the internal/stream subsystem.
//
//	aggserve -addr :8080 -shards 4 -holistic
//
// Endpoints:
//
//	POST /ingest      {"keys":[1,2,1],"vals":[10,20,30]}   append one batch
//	POST /flush                                            visibility barrier
//	GET  /query?q=q1|q2|...|q7|sum|min|max|quantile|mode
//	GET  /stats                                            ingest/merge state
//	GET  /metrics                                          Prometheus text format
//	GET  /debug/vars                                       expvar-style JSON
//
// Query aliases: q1=count_by_key q2=avg_by_key q3=median_by_key q4=count
// q5=avg q6=median q7=range (with lo= and hi=); quantile takes p=0.9.
// Every query runs over a snapshot: a consistent state tagged with the
// row-count watermark it covers, taken without pausing ingest.
//
// /metrics serves three metric groups in one scrape: the process-global
// instruments (engine phase timings, arena accounting), the stream's
// (ingest rows/batches, append latency, backpressure blocked time, seals,
// merges, snapshot staleness), and the server's own per-route request
// counters and latency histograms.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memagg"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "writer shards (0 = one per CPU)")
	holistic := flag.Bool("holistic", false, "retain value multisets (median/quantile/mode queries)")
	seal := flag.Int("seal", 0, "rows per delta before it becomes visible (0 = default)")
	flag.Parse()

	s := memagg.NewStream(memagg.StreamOptions{
		Workload: memagg.Workload{Output: memagg.Vector, Multithreaded: true},
		Shards:   *shards,
		SealRows: *seal,
		Holistic: *holistic,
	})

	srv := &http.Server{Addr: *addr, Handler: newServer(s)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Print("aggserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("aggserve: shutdown: %v", err)
		}
		// In-flight handlers have drained; any that race the close observe
		// ErrClosed (Close is safe against concurrent Append/Flush).
		if err := s.Close(); err != nil {
			log.Printf("aggserve: close: %v", err)
		}
	}()

	log.Printf("aggserve: listening on %s (shards=%d holistic=%v)", *addr, s.Stats().Shards, *holistic)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
