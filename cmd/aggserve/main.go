// Command aggserve exposes a memagg streaming aggregation over HTTP: a
// minimal serving front-end for the internal/stream subsystem.
//
//	aggserve -addr :8080 -shards 4 -holistic
//	aggserve -data-dir /var/lib/memagg -sync always
//
// With -data-dir the stream is durable: every sealed delta is written to a
// write-ahead log before it becomes queryable, checkpoints bound replay,
// and a restart recovers the previous watermark (the boot log reports how
// many rows were recovered and how long it took). -sync picks the fsync
// policy (none | interval | always) and -checkpoint-every the checkpoint
// cadence in rows. If the log becomes unwritable the server degrades to
// read-only: /ingest and /flush return 503 while queries keep serving.
//
// Endpoints (mounted under /v1/; the unversioned paths stay as aliases):
//
//	POST /v1/ingest   append one batch; Content-Type selects the body:
//	                  application/json  {"keys":[1,2,1],"vals":[10,20,30]}
//	                  application/x-memagg-chunk  binary chunk stream —
//	                  the fast path: wire columns decode once and transfer
//	                  into the stream without row materialization (see
//	                  memagg.AppendChunkWire and DESIGN.md §1.2k)
//	POST /v1/flush                                         visibility barrier
//	GET  /v1/query?q=q1|q2|...|q7|sum|min|max|quantile|mode
//	GET  /v1/views                list continuous views; POST registers one
//	GET  /v1/views/{name}         one view's description; DELETE drops it
//	GET  /v1/views/{name}/result  evaluate the standing query (ETag/304)
//	GET  /v1/stats                                         ingest/merge state
//	GET  /v1/metrics                                       Prometheus text format
//	GET  /v1/debug/vars                                    expvar-style JSON
//
// Errors share one JSON envelope: {"error": "...", "code": <status>}.
//
// Query aliases: q1=count_by_key q2=avg_by_key q3=median_by_key q4=count
// q5=avg q6=median q7=range (with lo= and hi=); quantile takes p=0.9.
// Every query runs over a snapshot: a consistent state tagged with the
// row-count watermark it covers, taken without pausing ingest. Responses
// carry `ETag: "<watermark>"`; a request whose If-None-Match matches the
// current watermark gets 304 Not Modified before any query work runs.
// -query-workers sets snapshot query parallelism and -query-cache sizes
// the per-view materialized-result cache (repeated dashboard queries
// against an unchanged view are served from it).
//
// /metrics serves three metric groups in one scrape: the process-global
// instruments (engine phase timings, arena accounting), the stream's
// (ingest rows/batches, append latency, backpressure blocked time, seals,
// merges, snapshot staleness), and the server's own per-route request
// counters and latency histograms.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"memagg"
	"memagg/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "writer shards (0 = one per CPU)")
	holistic := flag.Bool("holistic", false, "retain value multisets (median/quantile/mode queries)")
	seal := flag.Int("seal", 0, "rows per delta before it becomes visible (0 = default)")
	queryWorkers := flag.Int("query-workers", 0, "snapshot query parallelism: delta folds and partition scans (0 = one per CPU)")
	queryCache := flag.Int("query-cache", 0, "per-view result cache entries (0 = default 128, negative = disabled)")
	dataDir := flag.String("data-dir", "", "durability root (WAL + checkpoints); empty = volatile")
	syncPolicy := flag.String("sync", "interval", "WAL fsync policy: none | interval | always")
	checkpointEvery := flag.Int("checkpoint-every", 0,
		"rows between checkpoints (0 = default 1Mi, negative = WAL-only)")
	peers := flag.String("peers", "",
		"comma-separated worker base URLs; when set, run as a cluster router instead of a node")
	maxInflight := flag.Int("max-inflight", 0, "router mode: max in-flight requests per peer (0 = default 4)")
	flag.Parse()

	if *peers != "" {
		runRouter(*addr, *peers, *maxInflight)
		return
	}

	opts := memagg.StreamOptions{
		Workload:          memagg.Workload{Output: memagg.Vector, Multithreaded: true},
		Shards:            *shards,
		SealRows:          *seal,
		QueryWorkers:      *queryWorkers,
		QueryCacheEntries: *queryCache,
		Holistic:          *holistic,
	}
	if *dataDir != "" {
		opts.Durability = memagg.StreamDurability{
			Dir:             *dataDir,
			SyncPolicy:      *syncPolicy,
			CheckpointEvery: *checkpointEvery,
		}
	}
	start := time.Now()
	s, err := memagg.OpenStream(opts)
	if err != nil {
		log.Fatalf("aggserve: open stream: %v", err)
	}
	if *dataDir != "" {
		st := s.Stats()
		log.Printf("aggserve: recovered %d rows (checkpoint watermark %d) from %s in %v",
			st.Watermark, st.CheckpointWatermark, *dataDir, time.Since(start).Round(time.Millisecond))
	}

	srv := &http.Server{Addr: *addr, Handler: newServer(s)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Print("aggserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("aggserve: shutdown: %v", err)
		}
		// In-flight handlers have drained; any that race the close observe
		// ErrClosed and map to 503 (Close is safe against concurrent
		// Append/Flush). On a durable stream Close also seals remaining
		// rows into the WAL and writes a final checkpoint, so the next boot
		// recovers the full watermark without replay.
		if err := s.Close(); err != nil {
			log.Printf("aggserve: close: %v", err)
		}
		if *dataDir != "" {
			st := s.Stats()
			log.Printf("aggserve: final checkpoint at watermark %d (%d checkpoints, %d WAL appends)",
				st.CheckpointWatermark, st.Checkpoints, st.WALAppends)
		}
	}()

	log.Printf("aggserve: listening on %s (shards=%d holistic=%v)", *addr, s.Stats().Shards, *holistic)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

// runRouter serves the cluster-router mode: no local stream — ingest is
// sharded by group-key hash across the peer workers and queries
// scatter-gather their partial sets (see internal/cluster).
func runRouter(addr, peerList string, maxInflight int) {
	var peers []string
	for _, p := range strings.Split(peerList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	rt, err := cluster.NewRouter(cluster.Config{Peers: peers, MaxInflight: maxInflight})
	if err != nil {
		log.Fatalf("aggserve: router: %v", err)
	}
	log.Printf("aggserve: router waiting for %d peers to be ready", len(peers))
	if err := rt.WaitReady(30 * time.Second); err != nil {
		// Start serving anyway: /readyz reports the gap, the breakers
		// shield the missing peers, and the fleet may simply still be
		// booting. Exact queries fail typed until the membership is whole.
		log.Printf("aggserve: router starting degraded: %v", err)
	}
	srv := &http.Server{Addr: addr, Handler: newRouterServer(rt)}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Print("aggserve: router shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("aggserve: router shutdown: %v", err)
		}
	}()
	log.Printf("aggserve: router listening on %s (%d peers)", addr, len(peers))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}
