// Command aggserve exposes a memagg streaming aggregation over HTTP: a
// minimal serving front-end for the internal/stream subsystem.
//
//	aggserve -addr :8080 -shards 4 -holistic
//
// Endpoints:
//
//	POST /ingest  {"keys":[1,2,1],"vals":[10,20,30]}   append one batch
//	POST /flush                                        visibility barrier
//	GET  /query?q=q1|q2|...|q7|sum|min|max|quantile|mode
//	GET  /stats                                        ingest/merge state
//
// Query aliases: q1=count_by_key q2=avg_by_key q3=median_by_key q4=count
// q5=avg q6=median q7=range (with lo= and hi=); quantile takes p=0.9.
// Every query runs over a snapshot: a consistent state tagged with the
// row-count watermark it covers, taken without pausing ingest.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"memagg"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "writer shards (0 = one per CPU)")
	holistic := flag.Bool("holistic", false, "retain value multisets (median/quantile/mode queries)")
	seal := flag.Int("seal", 0, "rows per delta before it becomes visible (0 = default)")
	flag.Parse()

	s := memagg.NewStream(memagg.StreamOptions{
		Workload: memagg.Workload{Output: memagg.Vector, Multithreaded: true},
		Shards:   *shards,
		SealRows: *seal,
		Holistic: *holistic,
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) { handleIngest(s, w, r) })
	mux.HandleFunc("/flush", func(w http.ResponseWriter, r *http.Request) { handleFlush(s, w, r) })
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) { handleQuery(s, w, r) })
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) { writeJSON(w, s.Stats()) })

	srv := &http.Server{Addr: *addr, Handler: mux}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Print("aggserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("aggserve: shutdown: %v", err)
		}
		// In-flight handlers have drained: safe to close the stream (Close
		// must not race Append/Flush).
		if err := s.Close(); err != nil {
			log.Printf("aggserve: close: %v", err)
		}
	}()

	log.Printf("aggserve: listening on %s (shards=%d holistic=%v)", *addr, s.Stats().Shards, *holistic)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

type ingestRequest struct {
	Keys []uint64 `json:"keys"`
	Vals []uint64 `json:"vals"`
}

func handleIngest(s *memagg.Stream, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Vals) > len(req.Keys) {
		httpError(w, http.StatusBadRequest, "more vals than keys")
		return
	}
	if err := s.Append(req.Keys, req.Vals); err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, map[string]any{"appended": len(req.Keys), "ingested": s.Stats().Ingested})
}

func handleFlush(s *memagg.Stream, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if err := s.Flush(); err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, map[string]any{"watermark": s.Stats().Watermark})
}

// queryResponse tags every result with the snapshot watermark it is
// consistent with.
type queryResponse struct {
	Query     string `json:"query"`
	Watermark uint64 `json:"watermark"`
	Result    any    `json:"result"`
}

func handleQuery(s *memagg.Stream, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query().Get("q")
	sn := s.Snapshot()
	var (
		result any
		err    error
	)
	switch q {
	case "q1", "count_by_key":
		result = sn.CountByKey()
	case "q2", "avg_by_key":
		result = sn.AvgByKey()
	case "q3", "median_by_key":
		result, err = sn.MedianByKey()
	case "q4", "count":
		result = sn.Count()
	case "q5", "avg":
		result = sn.Avg()
	case "q6", "median":
		result, err = sn.Median()
	case "q7", "range":
		var lo, hi uint64
		if lo, err = queryUint(r, "lo"); err == nil {
			if hi, err = queryUint(r, "hi"); err == nil {
				result, err = sn.CountRange(lo, hi)
			}
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	case "sum":
		result = sn.SumByKey()
	case "min":
		result = sn.MinByKey()
	case "max":
		result = sn.MaxByKey()
	case "quantile":
		p, perr := strconv.ParseFloat(r.URL.Query().Get("p"), 64)
		if perr != nil {
			httpError(w, http.StatusBadRequest, "quantile needs p=0..1")
			return
		}
		result, err = sn.QuantileByKey(p)
	case "mode":
		result, err = sn.ModeByKey()
	case "":
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	default:
		httpError(w, http.StatusBadRequest, "unknown query "+strconv.Quote(q))
		return
	}
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, memagg.ErrUnsupported) {
			status = http.StatusUnprocessableEntity
		}
		httpError(w, status, err.Error())
		return
	}
	writeJSON(w, queryResponse{Query: q, Watermark: sn.Watermark(), Result: result})
}

func queryUint(r *http.Request, name string) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("range needs %s=", name)
	}
	return strconv.ParseUint(v, 10, 64)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("aggserve: encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
