package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"memagg"
)

func doWithHeader(t *testing.T, srv *server, method, target, key, val string) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest(method, target, nil)
	r.Header.Set(key, val)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	return w
}

// TestViewCRUD walks the /v1/views lifecycle: register, list, read back,
// reject duplicates and bad specs, drop, and 404 after the drop.
func TestViewCRUD(t *testing.T) {
	srv, _ := newTestServer(t)

	w := do(t, srv, http.MethodPost, "/v1/views",
		`{"name":"top","query":"q1","pane_rows":8,"panes":2,"sliding":true}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("register = %d: %s", w.Code, w.Body)
	}

	// Duplicate name.
	w = do(t, srv, http.MethodPost, "/v1/views",
		`{"name":"top","query":"q1","pane_rows":8,"panes":2}`)
	if w.Code != http.StatusConflict {
		t.Fatalf("duplicate register = %d, want 409: %s", w.Code, w.Body)
	}
	// Malformed spec: no panes.
	w = do(t, srv, http.MethodPost, "/v1/views", `{"name":"bad","query":"q1","pane_rows":8}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad spec = %d, want 400: %s", w.Code, w.Body)
	}
	// Unknown query spelling.
	w = do(t, srv, http.MethodPost, "/v1/views",
		`{"name":"bad","query":"q99","pane_rows":8,"panes":1}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown query = %d, want 400: %s", w.Code, w.Body)
	}

	w = do(t, srv, http.MethodGet, "/v1/views", "")
	if w.Code != http.StatusOK {
		t.Fatalf("list = %d: %s", w.Code, w.Body)
	}
	var list struct {
		Views []struct {
			Name  string `json:"name"`
			Query string `json:"query"`
		} `json:"views"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Views) != 1 || list.Views[0].Name != "top" || list.Views[0].Query != "q1" {
		t.Fatalf("list = %+v, want exactly [top q1]", list.Views)
	}

	if w = do(t, srv, http.MethodGet, "/v1/views/top", ""); w.Code != http.StatusOK {
		t.Fatalf("get item = %d: %s", w.Code, w.Body)
	}
	if w = do(t, srv, http.MethodGet, "/v1/views/nope", ""); w.Code != http.StatusNotFound {
		t.Fatalf("get unknown = %d, want 404: %s", w.Code, w.Body)
	}
	if w = do(t, srv, http.MethodDelete, "/v1/views/top", ""); w.Code != http.StatusOK {
		t.Fatalf("delete = %d: %s", w.Code, w.Body)
	}
	if w = do(t, srv, http.MethodDelete, "/v1/views/top", ""); w.Code != http.StatusNotFound {
		t.Fatalf("delete again = %d, want 404: %s", w.Code, w.Body)
	}
	if w = do(t, srv, http.MethodGet, "/v1/views/top/result", ""); w.Code != http.StatusNotFound {
		t.Fatalf("result after delete = %d, want 404: %s", w.Code, w.Body)
	}
}

// TestViewHolisticGate: a quantile view on a non-holistic stream is a
// 422 — the query parses, the stream just can't serve it.
func TestViewHolisticGate(t *testing.T) {
	s := memagg.NewStream(memagg.StreamOptions{Shards: 1, SealRows: 4})
	t.Cleanup(func() { _ = s.Close() })
	srv := newServer(s)
	w := do(t, srv, http.MethodPost, "/v1/views",
		`{"name":"p95","query":"quantile","p":0.95,"pane_rows":8,"panes":1}`)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("holistic view on distributive stream = %d, want 422: %s", w.Code, w.Body)
	}
}

// TestViewResultETag ingests through the view's window and checks the
// result endpoint's conditional-read contract: an unchanged view answers
// If-None-Match with 304, a seal invalidates the tag.
func TestViewResultETag(t *testing.T) {
	srv, _ := newTestServer(t)

	w := do(t, srv, http.MethodPost, "/v1/views",
		`{"name":"counts","query":"q1","pane_rows":8,"panes":2,"sliding":true}`)
	if w.Code != http.StatusCreated {
		t.Fatalf("register = %d: %s", w.Code, w.Body)
	}
	if w = do(t, srv, http.MethodPost, "/ingest", `{"keys":[1,2,1,3],"vals":[10,20,30,40]}`); w.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body)
	}
	if w = do(t, srv, http.MethodPost, "/flush", ""); w.Code != http.StatusOK {
		t.Fatalf("flush = %d: %s", w.Code, w.Body)
	}

	w = do(t, srv, http.MethodGet, "/v1/views/counts/result", "")
	if w.Code != http.StatusOK {
		t.Fatalf("result = %d: %s", w.Code, w.Body)
	}
	etag := w.Header().Get("ETag")
	if etag == "" {
		t.Fatal("result response carries no ETag")
	}
	var res struct {
		Rows      uint64 `json:"rows"`
		WindowEnd uint64 `json:"window_end"`
		Value     []struct {
			Key   uint64 `json:"Key"`
			Count uint64 `json:"Count"`
		} `json:"value"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Rows != 4 || len(res.Value) != 3 {
		t.Fatalf("result = %+v, want 4 rows over 3 groups", res)
	}

	// Unchanged view: conditional read is a 304 with no body.
	r := doWithHeader(t, srv, http.MethodGet, "/v1/views/counts/result", "If-None-Match", etag)
	if r.Code != http.StatusNotModified {
		t.Fatalf("conditional result = %d, want 304: %s", r.Code, r.Body)
	}

	// A new seal bumps the version: the old tag must miss.
	if w = do(t, srv, http.MethodPost, "/ingest", `{"keys":[7,7,7,7],"vals":[1,2,3,4]}`); w.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body)
	}
	if w = do(t, srv, http.MethodPost, "/flush", ""); w.Code != http.StatusOK {
		t.Fatalf("flush = %d: %s", w.Code, w.Body)
	}
	r = doWithHeader(t, srv, http.MethodGet, "/v1/views/counts/result", "If-None-Match", etag)
	if r.Code != http.StatusOK {
		t.Fatalf("stale conditional result = %d, want 200: %s", r.Code, r.Body)
	}
	if r.Header().Get("ETag") == etag {
		t.Fatal("ETag did not change after a seal")
	}
}
