package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"memagg"
)

// Continuous-view CRUD and reads:
//
//	GET    /v1/views               list registered views
//	POST   /v1/views               register a view (JSON spec below)
//	GET    /v1/views/{name}        one view's description
//	DELETE /v1/views/{name}        drop a view
//	GET    /v1/views/{name}/result evaluate the view's standing query
//
// Result responses carry an ETag derived from the view's version counter
// and absorbed watermark, so a poller whose view has not absorbed a seal
// since its last read gets a 304 without any merge work — the HTTP face
// of the view's own result cache.

// viewRequest is the POST /v1/views body: the ViewSpec fields in the
// /v1/query parameter spellings.
type viewRequest struct {
	Name     string  `json:"name"`
	Query    string  `json:"query"`
	P        float64 `json:"p,omitempty"`
	Lo       uint64  `json:"lo,omitempty"`
	Hi       uint64  `json:"hi,omitempty"`
	PaneRows uint64  `json:"pane_rows"`
	Panes    int     `json:"panes"`
	Sliding  bool    `json:"sliding,omitempty"`
}

func (srv *server) handleViews(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, map[string]any{"views": srv.stream.Views()})
	case http.MethodPost:
		var req viewRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
			return
		}
		err := srv.stream.RegisterView(memagg.ViewSpec{
			Name:     req.Name,
			Query:    req.Query,
			P:        req.P,
			Lo:       req.Lo,
			Hi:       req.Hi,
			PaneRows: req.PaneRows,
			Panes:    req.Panes,
			Sliding:  req.Sliding,
		})
		if err != nil {
			httpError(w, viewStatus(err), err.Error())
			return
		}
		info, err := srv.stream.ViewStatus(req.Name)
		if err != nil {
			// Registered but dropped by a concurrent DELETE before the
			// readback — report what the register call achieved.
			httpError(w, http.StatusConflict, err.Error())
			return
		}
		w.WriteHeader(http.StatusCreated)
		writeJSON(w, info)
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// handleViewItem serves /views/{name} and /views/{name}/result (under
// both the /v1 and unversioned mounts).
func (srv *server) handleViewItem(w http.ResponseWriter, r *http.Request) {
	rest := r.URL.Path
	if i := strings.Index(rest, "/views/"); i >= 0 {
		rest = rest[i+len("/views/"):]
	}
	name, sub, _ := strings.Cut(rest, "/")
	if name == "" {
		httpError(w, http.StatusNotFound, "missing view name")
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		info, err := srv.stream.ViewStatus(name)
		if err != nil {
			httpError(w, viewStatus(err), err.Error())
			return
		}
		writeJSON(w, info)
	case sub == "" && r.Method == http.MethodDelete:
		if !srv.stream.DropView(name) {
			httpError(w, http.StatusNotFound, "unknown view "+strconv.Quote(name))
			return
		}
		writeJSON(w, map[string]any{"dropped": name})
	case sub == "result" && r.Method == http.MethodGet:
		srv.handleViewResult(w, r, name)
	default:
		httpError(w, http.StatusNotFound, "unknown view route")
	}
}

func (srv *server) handleViewResult(w http.ResponseWriter, r *http.Request, name string) {
	// A view result is fully determined by the view's fold/evict version
	// and the watermark it has absorbed, so that pair is the entity tag —
	// checked before any pane merge runs.
	info, err := srv.stream.ViewStatus(name)
	if err != nil {
		httpError(w, viewStatus(err), err.Error())
		return
	}
	etag := `"cv` + strconv.FormatUint(info.Version, 10) + "-" +
		strconv.FormatUint(info.Watermark, 10) + `"`
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	res, err := srv.stream.View(name)
	if err != nil {
		httpError(w, viewStatus(err), err.Error())
		return
	}
	// Tag with the version the result actually carries: a seal may have
	// landed between the info read and the evaluation.
	etag = `"cv` + strconv.FormatUint(res.Version, 10) + "-" +
		strconv.FormatUint(res.WindowEnd, 10) + `"`
	w.Header().Set("ETag", etag)
	writeJSON(w, res)
}

// viewStatus maps a view-API error to its HTTP status.
func viewStatus(err error) int {
	switch {
	case errors.Is(err, memagg.ErrViewExists):
		return http.StatusConflict
	case errors.Is(err, memagg.ErrUnknownView):
		return http.StatusNotFound
	case errors.Is(err, memagg.ErrUnsupportedQuery):
		return http.StatusUnprocessableEntity
	case errors.Is(err, memagg.ErrBadView):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}
