package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"memagg"
	"memagg/internal/cluster"
	"memagg/internal/dataset"
)

// wireBatch is one ingest batch in both spellings: a JSON body and the
// equivalent binary chunk-stream body carrying the same rows in one
// chunk, so the two feeding paths see identical batch boundaries (which
// is what makes single-node snapshot state — and therefore the raw query
// response bytes — reproducible between them).
type wireBatch struct {
	keys, vals []uint64
}

func (b wireBatch) jsonBody() string {
	body, err := json.Marshal(map[string][]uint64{"keys": b.keys, "vals": b.vals})
	if err != nil {
		panic(err)
	}
	return string(body)
}

func (b wireBatch) chunkBody() []byte {
	return memagg.AppendChunkWire(nil, memagg.Chunk{Keys: b.keys, Vals: b.vals})
}

// equivBatches builds a deterministic batch sequence with repeated keys,
// value variety, and one short-vals batch (zero-extension on both paths).
func equivBatches() []wireBatch {
	batches := make([]wireBatch, 24)
	for bi := range batches {
		rows := 40 + bi%17
		b := wireBatch{keys: make([]uint64, rows), vals: make([]uint64, rows)}
		for i := 0; i < rows; i++ {
			b.keys[i] = uint64((bi*31 + i*7) % 53)
			b.vals[i] = uint64(bi*1000 + i)
		}
		if bi == 5 {
			b.vals = b.vals[:rows/2] // short vals zero-extend
		}
		batches[bi] = b
	}
	return batches
}

func doChunk(t *testing.T, h http.Handler, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest(http.MethodPost, target, bytes.NewReader(body))
	r.Header.Set("Content-Type", memagg.ChunkContentType)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// equivQueries is the full query surface both gates compare: Q1–Q7 plus
// the non-canonical reductions.
var equivQueries = []string{
	"q1", "q2", "q3", "q4", "q5", "q6", "q7&lo=0&hi=18446744073709551615",
	"sum", "min", "max", "quantile&p=0.9", "mode",
}

// TestIngestEquivalenceJSONBinary is the content-negotiation gate: the
// same batches fed once as JSON and once as binary chunks must produce
// bit-identical responses — same ETag, same body bytes — for every query
// in the set. Shards=1 + DisableMerger + MergeNow make the snapshot
// state construction deterministic, so any divergence is a wire bug,
// not noise.
func TestIngestEquivalenceJSONBinary(t *testing.T) {
	open := func() (*server, *memagg.Stream) {
		s := memagg.NewStream(memagg.StreamOptions{
			Shards: 1, SealRows: 64, Holistic: true, DisableMerger: true,
		})
		t.Cleanup(func() { _ = s.Close() })
		return newServer(s), s
	}
	jsonSrv, jsonStream := open()
	binSrv, binStream := open()

	for _, b := range equivBatches() {
		if w := do(t, jsonSrv, http.MethodPost, "/v1/ingest", b.jsonBody()); w.Code != http.StatusOK {
			t.Fatalf("json ingest = %d: %s", w.Code, w.Body)
		}
		if w := doChunk(t, binSrv, "/v1/ingest", b.chunkBody()); w.Code != http.StatusOK {
			t.Fatalf("binary ingest = %d: %s", w.Code, w.Body)
		}
	}
	for _, srv := range []*server{jsonSrv, binSrv} {
		if w := do(t, srv, http.MethodPost, "/v1/flush", ""); w.Code != http.StatusOK {
			t.Fatalf("flush = %d: %s", w.Code, w.Body)
		}
	}
	jsonStream.MergeNow()
	binStream.MergeNow()

	for _, q := range equivQueries {
		wj := do(t, jsonSrv, http.MethodGet, "/v1/query?q="+q, "")
		wb := do(t, binSrv, http.MethodGet, "/v1/query?q="+q, "")
		if wj.Code != http.StatusOK || wb.Code != http.StatusOK {
			t.Fatalf("q=%s: json %d, binary %d (%s | %s)", q, wj.Code, wb.Code, wj.Body, wb.Body)
		}
		if et1, et2 := wj.Header().Get("ETag"), wb.Header().Get("ETag"); et1 != et2 {
			t.Fatalf("q=%s: ETag %q (json) != %q (binary)", q, et1, et2)
		}
		if !bytes.Equal(wj.Body.Bytes(), wb.Body.Bytes()) {
			t.Fatalf("q=%s responses differ:\njson:   %s\nbinary: %s", q, wj.Body, wb.Body)
		}
	}
}

// TestIngestBinaryMultiChunkBody checks the streaming body shape: several
// chunks back to back in one POST, all appended, trailing clean EOF.
func TestIngestBinaryMultiChunkBody(t *testing.T) {
	srv, _ := newTestServer(t)
	var body []byte
	total := 0
	for _, b := range equivBatches()[:4] {
		body = memagg.AppendChunkWire(body, memagg.Chunk{Keys: b.keys, Vals: b.vals})
		total += len(b.keys)
	}
	w := doChunk(t, srv, "/v1/ingest", body)
	if w.Code != http.StatusOK {
		t.Fatalf("multi-chunk ingest = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Appended int `json:"appended"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Appended != total {
		t.Fatalf("appended %d rows, want %d", resp.Appended, total)
	}
	if w := do(t, srv, http.MethodPost, "/v1/flush", ""); w.Code != http.StatusOK {
		t.Fatalf("flush = %d", w.Code)
	}
	w = do(t, srv, http.MethodGet, "/v1/query?q=q4", "")
	if !strings.Contains(w.Body.String(), fmt.Sprintf(`"result":%d`, total)) {
		t.Fatalf("q4 after multi-chunk ingest: %s", w.Body)
	}
}

// TestIngestBinaryRejectsCorruptBody pins the error contract: a corrupt
// chunk body answers 400 in the shared envelope, with its "code" field.
func TestIngestBinaryRejectsCorruptBody(t *testing.T) {
	srv, _ := newTestServer(t)
	good := wireBatch{keys: []uint64{1, 2, 3}, vals: []uint64{1, 2, 3}}.chunkBody()
	for name, body := range map[string][]byte{
		"truncated": good[:len(good)-3],
		"flipped":   append(append([]byte{}, good[:10]...), append([]byte{0xFF}, good[11:]...)...),
		"junk":      []byte("not a chunk stream"),
	} {
		w := doChunk(t, srv, "/v1/ingest", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s body = %d want 400 (%s)", name, w.Code, w.Body)
		}
		var envelope struct {
			Error string `json:"error"`
			Code  int    `json:"code"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &envelope); err != nil {
			t.Errorf("%s: error body not the envelope: %v (%s)", name, err, w.Body)
		} else if envelope.Code != http.StatusBadRequest || envelope.Error == "" {
			t.Errorf("%s: envelope = %+v", name, envelope)
		}
	}
}

// TestVersionedPathAliases checks the /v1 contract on both server modes:
// versioned and unversioned spellings serve the same handler.
func TestVersionedPathAliases(t *testing.T) {
	srv, _ := newTestServer(t)
	for _, path := range []string{"/healthz", "/v1/healthz", "/stats", "/v1/stats", "/metrics", "/v1/metrics"} {
		if w := do(t, srv, http.MethodGet, path, ""); w.Code != http.StatusOK {
			t.Errorf("GET %s = %d", path, w.Code)
		}
	}
	rsrv := newTestCluster(t, 2)
	for _, path := range []string{"/healthz", "/v1/healthz", "/cluster/stats", "/v1/cluster/stats", "/readyz", "/v1/readyz"} {
		if w := doRouter(t, rsrv, http.MethodGet, path, ""); w.Code != http.StatusOK {
			t.Errorf("router GET %s = %d (%s)", path, w.Code, w.Body)
		}
	}
}

// newEquivCluster builds a 3-node cluster (workers over httptest) and
// returns its router-mode server. Worker state may compact at arbitrary
// times, but cluster query results are merged from gathered partial sets
// and returned sorted by key, so responses are deterministic regardless.
func newEquivCluster(t *testing.T) *routerServer {
	t.Helper()
	peers := make([]string, 3)
	for i := range peers {
		s := memagg.NewStream(memagg.StreamOptions{Shards: 1, SealRows: 64, Holistic: true})
		ts := httptest.NewServer(newServer(s))
		t.Cleanup(func() { ts.Close(); _ = s.Close() })
		peers[i] = ts.URL
	}
	rt, err := cluster.NewRouter(cluster.Config{Peers: peers})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return newRouterServer(rt)
}

// TestClusterIngestEquivalence extends the content-negotiation gate to
// the 3-node scatter path: the same batches through a JSON-fed router
// and a binary-fed router produce bit-identical cluster query responses
// (merged results are sorted by key, so the comparison is exact).
func TestClusterIngestEquivalence(t *testing.T) {
	jsonCluster := newEquivCluster(t)
	binCluster := newEquivCluster(t)

	for _, b := range equivBatches() {
		if w := doRouter(t, jsonCluster, http.MethodPost, "/v1/ingest", b.jsonBody()); w.Code != http.StatusOK {
			t.Fatalf("json cluster ingest = %d: %s", w.Code, w.Body)
		}
		if w := doChunk(t, binCluster, "/v1/ingest", b.chunkBody()); w.Code != http.StatusOK {
			t.Fatalf("binary cluster ingest = %d: %s", w.Code, w.Body)
		}
	}
	for _, srv := range []*routerServer{jsonCluster, binCluster} {
		if w := doRouter(t, srv, http.MethodPost, "/v1/flush", ""); w.Code != http.StatusOK {
			t.Fatalf("cluster flush = %d: %s", w.Code, w.Body)
		}
	}
	for _, q := range equivQueries {
		wj := doRouter(t, jsonCluster, http.MethodGet, "/v1/query?q="+q, "")
		wb := doRouter(t, binCluster, http.MethodGet, "/v1/query?q="+q, "")
		if wj.Code != http.StatusOK || wb.Code != http.StatusOK {
			t.Fatalf("q=%s: json %d, binary %d (%s | %s)", q, wj.Code, wb.Code, wj.Body, wb.Body)
		}
		if !bytes.Equal(wj.Body.Bytes(), wb.Body.Bytes()) {
			t.Fatalf("cluster q=%s responses differ:\njson:   %s\nbinary: %s", q, wj.Body, wb.Body)
		}
	}
}

// TestIngestThroughputGuard is the regression gate on the tentpole's
// point: binary chunk ingest must not be slower than JSON ingest for the
// same rows through the same HTTP server (in practice it is several
// times faster — `-exp ingestwire` quantifies the gap; this guard only
// pins the sign). Wall-clock ratios are noisy, so it runs only under
// MEMAGG_INGEST_GUARD=1 — scripts/ci.sh sets it.
func TestIngestThroughputGuard(t *testing.T) {
	if os.Getenv("MEMAGG_INGEST_GUARD") != "1" {
		t.Skip("set MEMAGG_INGEST_GUARD=1 to run the ingest throughput guard")
	}
	const n, batchLen = 1 << 20, 8192
	spec := dataset.Spec{Kind: dataset.RseqShf, N: n, Cardinality: 1 << 16, Seed: 41}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)

	run := func(binary bool) time.Duration {
		s := memagg.NewStream(memagg.StreamOptions{Shards: 2, SealRows: 1 << 15})
		defer s.Close()
		srv := newServer(s)
		ts := httptest.NewServer(srv)
		defer ts.Close()
		client := &http.Client{}
		start := time.Now()
		for i := 0; i < n; i += batchLen {
			j := min(i+batchLen, n)
			b := wireBatch{keys: keys[i:j], vals: vals[i:j]}
			var (
				body []byte
				ct   string
			)
			if binary {
				body, ct = b.chunkBody(), memagg.ChunkContentType
			} else {
				body, ct = []byte(b.jsonBody()), "application/json"
			}
			resp, err := client.Post(ts.URL+"/v1/ingest", ct, bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest = %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
		return time.Since(start)
	}

	// Warm both paths once, then keep the per-mode minimum of three runs:
	// the least interfered-with run is the honest measurement.
	run(false)
	run(true)
	best := func(binary bool) time.Duration {
		m := time.Duration(1 << 62)
		for r := 0; r < 3; r++ {
			if d := run(binary); d < m {
				m = d
			}
		}
		return m
	}
	jsonTime, binTime := best(false), best(true)
	jsonRate := float64(n) / jsonTime.Seconds()
	binRate := float64(n) / binTime.Seconds()
	t.Logf("json %.0f rows/s, binary %.0f rows/s (%.2fx)", jsonRate, binRate, binRate/jsonRate)
	if binRate < jsonRate {
		t.Fatalf("binary ingest slower than JSON: %.0f vs %.0f rows/s", binRate, jsonRate)
	}
}
