package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"memagg"
	"memagg/internal/obs"
)

// statusClientClosedRequest reports a request whose client disconnected
// before the response was ready (the nginx convention; Go's standard
// status list stops at 511).
const statusClientClosedRequest = 499

// server wires one memagg.Stream to the HTTP API. Every route passes
// through the metrics middleware (per-route request counters by status
// code, per-route latency histograms), and /metrics serves those families
// next to the process-global registry (engine phases, arena accounting)
// and the stream's own (ingest, seal, merge, snapshot instruments).
type server struct {
	stream   *memagg.Stream
	mux      *http.ServeMux
	reg      *obs.Registry
	requests *obs.CounterVec
	latency  *obs.HistogramVec
}

func newServer(s *memagg.Stream) *server {
	reg := obs.NewRegistry()
	srv := &server{
		stream: s,
		mux:    http.NewServeMux(),
		reg:    reg,
		requests: reg.NewCounterVec("memagg_http_requests_total",
			"HTTP requests served, by route and status code.", "route", "code"),
		latency: reg.NewHistogramVec("memagg_http_request_seconds",
			"HTTP request latency, by route.", "route"),
	}
	srv.handle("/ingest", srv.handleIngest)
	srv.handle("/flush", srv.handleFlush)
	srv.handle("/query", srv.handleQuery)
	srv.handle("/stats", srv.handleStats)
	srv.handle("/partials", srv.handlePartials)
	srv.handle("/views", srv.handleViews)
	srv.handle("/views/", srv.handleViewItem)
	srv.handle("/healthz", srv.handleHealthz)
	srv.handle("/readyz", srv.handleReadyz)
	regs := []*obs.Registry{obs.Default, s.MetricsRegistry(), reg}
	srv.mux.Handle("/v1/metrics", obs.Handler(regs...))
	srv.mux.Handle("/metrics", obs.Handler(regs...))
	srv.mux.Handle("/v1/debug/vars", obs.VarsHandler(regs...))
	srv.mux.Handle("/debug/vars", obs.VarsHandler(regs...))
	return srv
}

func (srv *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	srv.mux.ServeHTTP(w, r)
}

// statusWriter captures the status code a handler writes (200 when the
// handler never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// handle registers h behind the metrics middleware, mounted at its
// versioned path /v1<route> with the unversioned route kept as an alias.
// Both spellings share one route label so the metric cardinality (and
// existing dashboards) do not split by prefix.
func (srv *server) handle(route string, h http.HandlerFunc) {
	lat := srv.latency.With(route)
	wrapped := func(w http.ResponseWriter, r *http.Request) {
		mk := obs.Start()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		mk.Tick(lat)
		srv.requests.With(route, strconv.Itoa(sw.status)).Inc()
	}
	srv.mux.HandleFunc("/v1"+route, wrapped)
	srv.mux.HandleFunc(route, wrapped)
}

type ingestRequest struct {
	Keys []uint64 `json:"keys"`
	Vals []uint64 `json:"vals"`
}

func (srv *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if isChunkRequest(r) {
		// Binary chunk stream: decode each wire chunk and transfer its
		// freshly allocated columns straight into the stream — the only
		// copy between socket and delta table is the wire decode itself.
		rows, err := ingestChunks(r.Body, srv.stream.AppendOwnedChunk)
		if err != nil {
			status, msg := chunkStatus(err)
			httpError(w, status, msg)
			return
		}
		writeJSON(w, map[string]any{"appended": rows, "ingested": srv.stream.Stats().Ingested})
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Vals) > len(req.Keys) {
		httpError(w, http.StatusBadRequest, "more vals than keys")
		return
	}
	// The decoder allocated the columns for this request alone, so they
	// transfer to the stream without the AppendChunk copy.
	n := len(req.Keys)
	if err := srv.stream.AppendOwnedChunk(memagg.Chunk{Keys: req.Keys, Vals: req.Vals}); err != nil {
		httpError(w, ingestStatus(err), err.Error())
		return
	}
	writeJSON(w, map[string]any{"appended": n, "ingested": srv.stream.Stats().Ingested})
}

// isChunkRequest reports whether the request negotiated the binary chunk
// content type (parameters ignored). Anything else takes the JSON path.
func isChunkRequest(r *http.Request) bool {
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && mt == memagg.ChunkContentType
}

// ingestChunks drains one binary chunk-stream body into sink (column
// ownership transfers with each chunk) and returns the rows appended.
// Chunks handed off before an error stay applied — per-chunk atomicity,
// the binary analog of the JSON path's per-request batch.
func ingestChunks(body io.Reader, sink func(memagg.Chunk) error) (int, error) {
	br := bufio.NewReaderSize(body, 64<<10)
	rows := 0
	for {
		c, err := memagg.ReadChunk(br)
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return rows, err
		}
		n := c.Rows()
		if err := sink(c); err != nil {
			return rows, err
		}
		rows += n
	}
}

// chunkStatus splits a chunk-ingest failure into its HTTP status:
// wire-grade errors (malformed chunk, torn frame) are the client's 400,
// stream refusals map through ingestStatus.
func chunkStatus(err error) (int, string) {
	if errors.Is(err, memagg.ErrChunkWire) || errors.Is(err, memagg.ErrWALCorrupt) {
		return http.StatusBadRequest, "bad chunk body: " + err.Error()
	}
	return ingestStatus(err), err.Error()
}

// ingestStatus maps an Append/Flush error to its HTTP status: 503 for the
// expected refusals — the stream is draining during shutdown (ErrClosed)
// or has degraded to read-only after a durability fault (ErrDurability) —
// and 500 for anything else. The explicit errors.Is mapping keeps a future
// unexpected error from masquerading as routine unavailability.
func ingestStatus(err error) int {
	if errors.Is(err, memagg.ErrClosed) || errors.Is(err, memagg.ErrDurability) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func (srv *server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if err := srv.stream.Flush(); err != nil {
		httpError(w, ingestStatus(err), err.Error())
		return
	}
	writeJSON(w, map[string]any{"watermark": srv.stream.Stats().Watermark})
}

func (srv *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, srv.stream.Stats())
}

// handlePartials serves this node's full partial-aggregate set in the
// cluster wire format — the worker half of the router's scatter-gather.
// The body is framed and CRC-checked end to end (internal/wal frames), so
// the router detects torn responses; the watermark header names the
// snapshot served.
func (srv *server) handlePartials(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	sn := srv.stream.Snapshot()
	buf := sn.EncodePartials(nil)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Memagg-Watermark", strconv.FormatUint(sn.Watermark(), 10))
	if _, err := w.Write(buf); err != nil {
		log.Printf("aggserve: partials write: %v", err)
	}
}

// handleHealthz is the liveness probe: the process is up and the mux is
// serving. It deliberately checks nothing else — a read-only or closed
// stream is still alive and still answers queries, and restarting it
// would not help.
func (srv *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true})
}

// handleReadyz is the readiness probe: the stream accepts writes — open,
// recovery complete (OpenStream returns only after replay), and not
// degraded to read-only by a durability fault. The cluster router gates
// membership on this, so a degraded node stops receiving sharded ingest
// without being killed.
func (srv *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !srv.stream.Ready() {
		reason := "stream closed"
		if srv.stream.ReadOnly() {
			reason = "durability degraded, read-only"
		}
		httpError(w, http.StatusServiceUnavailable, reason)
		return
	}
	writeJSON(w, map[string]any{"ready": true, "watermark": srv.stream.Stats().Watermark})
}

// queryResponse tags every result with the snapshot watermark it is
// consistent with.
type queryResponse struct {
	Query     string `json:"query"`
	Watermark uint64 `json:"watermark"`
	Result    any    `json:"result"`
}

// outcome is one finished query: result on success, status+message on
// failure (status 0 means success).
type outcome struct {
	result any
	status int
	errMsg string
}

func (srv *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	sn := srv.stream.Snapshot()
	// A query result is fully determined by the snapshot watermark (per
	// URL, which carries the query id and parameters), so the watermark is
	// the entity tag. A client that cached the body at this watermark gets
	// a 304 before any query work runs — the cheapest cache hit there is.
	etag := `"` + strconv.FormatUint(sn.Watermark(), 10) + `"`
	if match := r.Header.Get("If-None-Match"); etagMatches(match, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	done := make(chan outcome, 1)
	go func() { done <- runQuery(sn, q, r.URL.Query()) }()
	select {
	case <-r.Context().Done():
		// The client went away or the server is draining: stop waiting.
		// The snapshot query finishes in the background and is discarded —
		// snapshots are read-only, so there is nothing to undo.
		httpError(w, statusClientClosedRequest, "request canceled: "+r.Context().Err().Error())
	case o := <-done:
		if o.status != 0 {
			httpError(w, o.status, o.errMsg)
			return
		}
		w.Header().Set("ETag", etag)
		writeJSON(w, queryResponse{Query: q, Watermark: sn.Watermark(), Result: o.result})
	}
}

// etagMatches reports whether an If-None-Match header value matches the
// given entity tag: "*" matches anything, and the comma-separated list is
// compared tag by tag. Weak validators (W/ prefix) compare by opaque tag —
// the weak comparison RFC 9110 prescribes for If-None-Match.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, tag := range strings.Split(header, ",") {
		tag = strings.TrimSpace(tag)
		tag = strings.TrimPrefix(tag, "W/")
		if tag == etag {
			return true
		}
	}
	return false
}

// runQuery executes one named query over a pinned snapshot.
func runQuery(sn *memagg.StreamSnapshot, q string, params url.Values) outcome {
	var (
		result any
		err    error
	)
	switch q {
	case "q1", "count_by_key":
		result = sn.CountByKey()
	case "q2", "avg_by_key":
		result = sn.AvgByKey()
	case "q3", "median_by_key":
		result, err = sn.MedianByKey()
	case "q4", "count":
		result = sn.Count()
	case "q5", "avg":
		result = sn.Avg()
	case "q6", "median":
		result, err = sn.Median()
	case "q7", "range":
		lo, lerr := queryUint(params, "lo")
		hi, herr := queryUint(params, "hi")
		if lerr != nil {
			return outcome{status: http.StatusBadRequest, errMsg: lerr.Error()}
		}
		if herr != nil {
			return outcome{status: http.StatusBadRequest, errMsg: herr.Error()}
		}
		result, err = sn.CountRange(lo, hi)
	case "sum":
		result = sn.SumByKey()
	case "min":
		result = sn.MinByKey()
	case "max":
		result = sn.MaxByKey()
	case "quantile":
		p, perr := strconv.ParseFloat(params.Get("p"), 64)
		if perr != nil {
			return outcome{status: http.StatusBadRequest, errMsg: "quantile needs p=0..1"}
		}
		result, err = sn.QuantileByKey(p)
	case "mode":
		result, err = sn.ModeByKey()
	default:
		return outcome{status: http.StatusBadRequest, errMsg: "unknown query " + strconv.Quote(q)}
	}
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, memagg.ErrUnsupportedQuery) {
			status = http.StatusUnprocessableEntity
		}
		return outcome{status: status, errMsg: err.Error()}
	}
	return outcome{result: result}
}

func queryUint(params url.Values, name string) (uint64, error) {
	v := params.Get(name)
	if v == "" {
		return 0, fmt.Errorf("range needs %s=", name)
	}
	return strconv.ParseUint(v, 10, 64)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("aggserve: encode: %v", err)
	}
}

// httpError writes the API's error envelope: {"error": ..., "code": ...},
// code echoing the HTTP status. Every failure on both the single-node and
// router surfaces uses this one shape (clusterError adds detail fields to
// the same envelope).
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{"error": msg, "code": status})
}
