// Command aggquery is a miniature end-to-end aggregation engine: it reads
// a CSV of key[,value] records and executes one of the paper's queries
// (Table 1) with a selectable backend.
//
// Usage:
//
//	aggquery -file sales.csv -query q1 -backend Hash_LP
//	aggquery -file grades.csv -query q3 -backend Spreadsort -limit 20
//	aggquery -file sales.csv -query q7 -backend Btree -lo 500 -hi 1000
//
// Queries: q1 (vector COUNT), q2 (vector AVG), q3 (vector MEDIAN),
// q4 (scalar COUNT), q5 (scalar AVG), q6 (scalar MEDIAN), q7 (vector
// COUNT with a key-range condition); plus the generalized vector
// aggregates sum, min, max, mode, and quantile (with -q).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"memagg"
)

func main() {
	var (
		file    = flag.String("file", "", "input CSV: one key[,value] per line (required; '-' for stdin)")
		query   = flag.String("query", "q1", "q1..q7, sum, min, max, mode, quantile")
		qv      = flag.Float64("q", 0.5, "quantile for -query quantile (0..1)")
		backend = flag.String("backend", "Hash_LP", "algorithm (see -backends)")
		lo      = flag.Uint64("lo", 0, "q7 lower key bound (inclusive)")
		hi      = flag.Uint64("hi", 0, "q7 upper key bound (inclusive)")
		threads = flag.Int("threads", 0, "threads for concurrent backends (0 = GOMAXPROCS)")
		limit   = flag.Int("limit", 0, "print at most this many result rows (0 = all)")
		listBk  = flag.Bool("backends", false, "list backends and exit")
		strMode = flag.Bool("strings", false, "treat keys as strings (backends: see -backends with -strings)")
		prefix  = flag.String("prefix", "", "string mode: key prefix filter for -query q7")
	)
	flag.Parse()

	if *listBk {
		if *strMode {
			for _, b := range memagg.StringBackends() {
				fmt.Println(b)
			}
			return
		}
		for _, b := range memagg.Backends() {
			fmt.Println(b)
		}
		return
	}
	if *file == "" {
		fatalf("-file is required (use '-' for stdin)")
	}

	if *strMode {
		runStringMode(*file, *query, *backend, *prefix, *limit)
		return
	}

	keys, vals, err := readCSV(*file)
	if err != nil {
		fatalf("%v", err)
	}
	if len(keys) == 0 {
		fatalf("no records in %s", *file)
	}

	a, err := memagg.New(memagg.Backend(*backend), memagg.Options{Threads: *threads})
	if err != nil {
		fatalf("%v", err)
	}

	switch strings.ToLower(*query) {
	case "q1":
		printCounts(a.CountByKey(keys), *limit)
	case "q2":
		printValues(a.AvgByKey(keys, vals), *limit)
	case "q3":
		printValues(a.MedianByKey(keys, vals), *limit)
	case "q4":
		fmt.Printf("count\t%d\n", a.Count(keys))
	case "q5":
		fmt.Printf("avg\t%g\n", a.Avg(vals))
	case "q6":
		m, err := a.Median(keys)
		if err != nil {
			fatalf("q6 with %s: %v", *backend, err)
		}
		fmt.Printf("median\t%g\n", m)
	case "q7":
		rows, err := a.CountRange(keys, *lo, *hi)
		if err != nil {
			fatalf("q7 with %s: %v", *backend, err)
		}
		printCounts(rows, *limit)
	case "sum":
		printStats(a.SumByKey(keys, vals), *limit)
	case "min":
		printStats(a.MinByKey(keys, vals), *limit)
	case "max":
		printStats(a.MaxByKey(keys, vals), *limit)
	case "mode":
		printValues(a.ModeByKey(keys, vals), *limit)
	case "quantile":
		printValues(a.QuantileByKey(keys, vals, *qv), *limit)
	default:
		fatalf("unknown query %q", *query)
	}
}

// runStringMode executes the string-keyed queries over a CSV whose key
// column is arbitrary text.
func runStringMode(file, query, backend, prefix string, limit int) {
	keys, vals, err := readStringCSV(file)
	if err != nil {
		fatalf("%v", err)
	}
	if len(keys) == 0 {
		fatalf("no records in %s", file)
	}
	bk := memagg.StringBackend(backend)
	if backend == "Hash_LP" { // default numeric backend: map to string default
		bk = memagg.StrHashLP
	}
	a, err := memagg.NewStrings(bk)
	if err != nil {
		fatalf("%v", err)
	}
	printStrCounts := func(rows []memagg.StringGroupCount) {
		sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
		fmt.Println("key\tcount")
		for i, r := range rows {
			if limit > 0 && i >= limit {
				fmt.Printf("... (%d more rows)\n", len(rows)-limit)
				return
			}
			fmt.Printf("%s\t%d\n", r.Key, r.Count)
		}
	}
	printStrValues := func(rows []memagg.StringGroupValue) {
		sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
		fmt.Println("key\tvalue")
		for i, r := range rows {
			if limit > 0 && i >= limit {
				fmt.Printf("... (%d more rows)\n", len(rows)-limit)
				return
			}
			fmt.Printf("%s\t%g\n", r.Key, r.Value)
		}
	}
	switch strings.ToLower(query) {
	case "q1":
		printStrCounts(a.CountByKey(keys))
	case "q2":
		printStrValues(a.AvgByKey(keys, vals))
	case "q3":
		printStrValues(a.MedianByKey(keys, vals))
	case "q6":
		m, err := a.MedianKey(keys)
		if err != nil {
			fatalf("q6 with %s: %v", bk, err)
		}
		fmt.Printf("median_key\t%s\n", m)
	case "q7":
		rows, err := a.CountByPrefix(keys, prefix)
		if err != nil {
			fatalf("q7 with %s: %v", bk, err)
		}
		printStrCounts(rows)
	default:
		fatalf("string mode supports q1, q2, q3, q6, q7 (got %q)", query)
	}
}

// readStringCSV parses key[,value] lines with a text key column.
func readStringCSV(path string) (keys []string, vals []uint64, err error) {
	var f *os.File
	if path == "-" {
		f = os.Stdin
	} else {
		f, err = os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		keyStr, valStr, hasVal := strings.Cut(line, ",")
		var v uint64
		if hasVal {
			v, err = strconv.ParseUint(strings.TrimSpace(valStr), 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%s: bad value %q", path, valStr)
			}
		}
		keys = append(keys, keyStr)
		vals = append(vals, v)
	}
	return keys, vals, sc.Err()
}

// readCSV parses key[,value] lines; a single non-numeric header line is
// tolerated and skipped.
func readCSV(path string) (keys, vals []uint64, err error) {
	var f *os.File
	if path == "-" {
		f = os.Stdin
	} else {
		f, err = os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		keyStr, valStr, hasVal := strings.Cut(line, ",")
		k, kerr := strconv.ParseUint(strings.TrimSpace(keyStr), 10, 64)
		if kerr != nil {
			if lineNo == 1 {
				continue // header
			}
			return nil, nil, fmt.Errorf("%s:%d: bad key %q", path, lineNo, keyStr)
		}
		var v uint64
		if hasVal {
			v, err = strconv.ParseUint(strings.TrimSpace(valStr), 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("%s:%d: bad value %q", path, lineNo, valStr)
			}
		}
		keys = append(keys, k)
		vals = append(vals, v)
	}
	return keys, vals, sc.Err()
}

func printCounts(rows []memagg.GroupCount, limit int) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	fmt.Println("key\tcount")
	for i, r := range rows {
		if limit > 0 && i >= limit {
			fmt.Printf("... (%d more rows)\n", len(rows)-limit)
			return
		}
		fmt.Printf("%d\t%d\n", r.Key, r.Count)
	}
}

func printStats(rows []memagg.GroupStat, limit int) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	fmt.Println("key\tvalue")
	for i, r := range rows {
		if limit > 0 && i >= limit {
			fmt.Printf("... (%d more rows)\n", len(rows)-limit)
			return
		}
		fmt.Printf("%d\t%d\n", r.Key, r.Value)
	}
}

func printValues(rows []memagg.GroupValue, limit int) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	fmt.Println("key\tvalue")
	for i, r := range rows {
		if limit > 0 && i >= limit {
			fmt.Printf("... (%d more rows)\n", len(rows)-limit)
			return
		}
		fmt.Printf("%d\t%g\n", r.Key, r.Value)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aggquery: "+format+"\n", args...)
	os.Exit(1)
}
