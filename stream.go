package memagg

import (
	"errors"
	"time"

	"memagg/internal/agg"
	"memagg/internal/cluster"
	"memagg/internal/obs"
	"memagg/internal/stream"
	"memagg/internal/wal"
)

// StreamOptions configures a Stream. The zero value is usable: it serves
// distributive and algebraic queries with one shard per CPU.
//
// Workload reuses Recommend's workload model to size the stream instead of
// the batch backend choice: Function == Holistic retains value multisets,
// Multithreaded toggles sharded ingest, and EstimatedGroups sizes the
// merge fan-out so each base partition stays cache-sized. Explicit fields
// override what Workload derives.
type StreamOptions struct {
	// Workload describes the queries this stream will serve; see Recommend.
	Workload Workload

	// Shards is the number of writer shards. <= 0 derives it from the
	// workload: GOMAXPROCS when Workload.Multithreaded, otherwise 1.
	Shards int

	// QueueDepth bounds each shard's ingest queue, in batches; a full queue
	// blocks Append (backpressure, not loss). <= 0 means 8.
	QueueDepth int

	// SealRows is the delta size that triggers publication to the queryable
	// view. Smaller values lower snapshot staleness. <= 0 means 32768.
	SealRows int

	// MergeWorkers is the parallelism of background merge cycles. <= 0
	// means GOMAXPROCS.
	MergeWorkers int

	// QueryWorkers is the parallelism of snapshot queries: the
	// partition-wise fold of sealed deltas into a view's sources and the
	// partition scans of the Q1–Q7 kernels. Snapshots below the serial
	// group-count cutoff scan on the calling goroutine regardless. <= 0
	// means GOMAXPROCS.
	QueryWorkers int

	// QueryCacheEntries bounds the per-view result cache. Snapshots of an
	// unchanged view are immutable, so materialized results are cached on
	// the view keyed by query id and parameters, with single-flight
	// deduplication of concurrent identical queries; any seal or merge
	// starts a fresh cache at the new watermark. 0 means 128 entries;
	// < 0 disables caching.
	QueryCacheEntries int

	// Holistic retains every group's value multiset, enabling
	// MedianByKey/QuantileByKey/ModeByKey on snapshots. Also implied by
	// Workload.Function == Holistic.
	Holistic bool

	// DisableMerger turns background compaction off: sealed deltas stay in
	// the queryable view (snapshot queries fold them partition-wise, once
	// per view) until an explicit MergeNow. For read replicas that want
	// exact control over when fold work happens; not valid with
	// durability, whose checkpoints ride on merge cycles.
	DisableMerger bool

	// Durability enables the write-ahead log and checkpoints. A durable
	// stream must be built with OpenStream (there may be state on disk to
	// recover); NewStream panics when Durability.Dir is set.
	Durability StreamDurability
}

// StreamDurability configures a stream's durability layer. The zero value
// (empty Dir) disables it.
type StreamDurability struct {
	// Dir is the durability root: the WAL lives under Dir/wal, checkpoints
	// under Dir/checkpoint. Empty disables durability.
	Dir string

	// SyncPolicy is the WAL fsync discipline: "none" (page cache decides),
	// "interval" (amortized, the default), or "always" (every seal durable
	// on acknowledgment).
	SyncPolicy string

	// SyncInterval is the "interval" policy's amortization period; <= 0
	// means 100ms.
	SyncInterval time.Duration

	// SegmentBytes is the WAL segment rotation size; <= 0 means 16 MiB.
	SegmentBytes int

	// CheckpointEvery is the checkpoint cadence in rows (how far the base
	// generation may outgrow the last checkpoint before a new one is
	// written). 0 means 1<<20 rows; negative disables checkpoints (WAL-only
	// durability).
	CheckpointEvery int
}

// streamMergeBits sizes the base generation's radix fan-out from the
// expected group count, applying the measured Hash_GLB/Hash_RX crossover
// (`-exp glb`, results_glb.txt): below rxCardinalityCutoff (~64Ki groups)
// the merged table is cache-resident whole and cardinality-driven
// partitioning buys nothing — the same result that routes batch queries
// to Hash_GLB there — so bits 0 defers to the stream's default fan-out
// (sized for merge parallelism, not cache). At and above the crossover
// it targets ~4Ki groups per partition, the cache-sized-table discipline
// Hash_RX uses. The stream clamps to the partitioner's maximum.
func streamMergeBits(estimatedGroups int) int {
	if estimatedGroups < rxCardinalityCutoff {
		return 0
	}
	bits := 0
	for g := estimatedGroups; g > 4096; g >>= 1 {
		bits++
	}
	return bits
}

// Stream is a live streaming aggregation: rows Append-ed in batches become
// visible to Snapshot queries once sealed, while a background merger folds
// sealed state into an immutable, radix-partitioned base generation.
// Append is safe for concurrent producers; Snapshot and Stats are safe
// from any goroutine. See internal/stream for the full design.
type Stream struct {
	s      *stream.Stream
	advice Advice
}

// NewStream starts a volatile streaming aggregation sized by opts. It
// panics if opts enable durability: recovering on-disk state can fail, so
// durable streams go through OpenStream, which returns an error.
func NewStream(opts StreamOptions) *Stream {
	if opts.Durability.Dir != "" {
		panic("memagg: StreamOptions enable durability; use OpenStream, not NewStream")
	}
	s, err := OpenStream(opts)
	if err != nil {
		// Unreachable: only the durability path can fail.
		panic(err)
	}
	return s
}

// OpenStream starts a streaming aggregation sized by opts, recovering
// durable state first when opts.Durability.Dir is set: the latest
// checkpoint loads as the base generation and the WAL suffix past its
// watermark replays, so the stream resumes at exactly the watermark the
// previous process made durable. A torn or corrupt WAL tail is truncated
// (longest valid prefix); a corrupt checkpoint fails with an error
// wrapping ErrWALCorrupt.
func OpenStream(opts StreamOptions) (*Stream, error) {
	holistic := opts.Holistic || opts.Workload.Function == Holistic
	shards := opts.Shards
	if shards <= 0 && !opts.Workload.Multithreaded {
		shards = 1
	}
	cfg := stream.Config{
		Shards:            shards, // <= 0 (multithreaded workload): GOMAXPROCS
		QueueDepth:        opts.QueueDepth,
		SealRows:          opts.SealRows,
		MergeBits:         streamMergeBits(opts.Workload.EstimatedGroups),
		MergeWorkers:      opts.MergeWorkers,
		QueryWorkers:      opts.QueryWorkers,
		QueryCacheEntries: opts.QueryCacheEntries,
		EstimatedGroups:   opts.Workload.EstimatedGroups,
		Holistic:          holistic,
		DisableMerger:     opts.DisableMerger,
	}
	if d := opts.Durability; d.Dir != "" {
		if opts.DisableMerger {
			return nil, errors.New("memagg: DisableMerger is not valid with durability (checkpoints ride on merge cycles)")
		}
		policy, err := wal.ParseSyncPolicy(d.SyncPolicy)
		if err != nil {
			return nil, err
		}
		cfg.Durability = stream.Durability{
			Dir:             d.Dir,
			SyncPolicy:      policy,
			SyncInterval:    d.SyncInterval,
			SegmentBytes:    d.SegmentBytes,
			CheckpointEvery: d.CheckpointEvery,
		}
	}
	s, err := stream.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &Stream{s: s, advice: Recommend(opts.Workload)}, nil
}

// ReadOnly reports whether the stream's durability layer failed and ingest
// is refused (Append/Flush return errors wrapping ErrDurability); queries
// keep serving. Always false for volatile streams.
func (s *Stream) ReadOnly() bool { return s.s.ReadOnly() }

// Advice reports what Recommend selects for this stream's workload — the
// batch backend the paper's experiments favour for the same queries,
// useful when deciding between streaming and batch execution.
func (s *Stream) Advice() Advice { return s.advice }

// Ready reports whether the stream is fit to serve cluster traffic: open
// and not degraded to read-only. It backs readiness probes (/readyz) —
// distinct from liveness, which a closed-but-queryable stream still
// passes.
func (s *Stream) Ready() bool { return !s.s.Closed() && !s.s.ReadOnly() }

// Append ingests one batch of rows: values[i] belongs to keys[i], and a
// short values slice treats missing values as zero (the batch operators'
// convention). The slices are copied; the caller may reuse them.
//
// Deprecated: Append is the row-pair spelling of AppendChunk, kept as a
// thin wrapper for compatibility. New code should spell the batch as a
// columnar Chunk:
//
//	s.AppendChunk(memagg.Chunk{Keys: keys, Vals: values})
//
// or, when the caller owns the slices and will not touch them again
// (decoded wire chunks qualify), skip the copy entirely:
//
//	s.AppendOwnedChunk(memagg.Chunk{Keys: keys, Vals: values})
func (s *Stream) Append(keys, values []uint64) error {
	return s.AppendChunk(Chunk{Keys: keys, Vals: values})
}

// AppendChunk ingests one columnar chunk: c.Vals[i] belongs to
// c.Keys[i], and a short value column zero-extends. The columns are
// copied (into pooled scratch, so a steady producer allocates nothing);
// the caller may reuse them. AppendChunk blocks when the receiving
// shard's queue is full (backpressure, not loss) and returns ErrClosed
// after Close. Rows become visible to snapshots once their delta seals;
// call Flush for an immediate visibility barrier.
func (s *Stream) AppendChunk(c Chunk) error { return s.s.AppendChunk(c, false) }

// AppendOwnedChunk is AppendChunk in ownership-transfer mode: the
// chunk's slices pass to the stream without copying, are folded straight
// into a shard's delta table, and are then recycled through the stream's
// ingest buffer pool. The caller must not touch either column again
// after a successful call, and the columns must not share backing memory
// with anything the caller keeps (ReadChunk's outputs qualify — the
// servers feed decoded wire chunks through this path).
func (s *Stream) AppendOwnedChunk(c Chunk) error { return s.s.AppendChunk(c, true) }

// Flush makes every row this caller appended before the call visible to
// subsequent snapshots.
func (s *Stream) Flush() error { return s.s.Flush() }

// MergeNow synchronously folds every currently sealed delta into the base
// generation — explicit compaction, chiefly for DisableMerger streams.
// Returns false when there was nothing to merge.
func (s *Stream) MergeNow() bool { return s.s.MergeNow() }

// Close seals all remaining rows, folds everything into a final base
// generation, and stops the background goroutines. The stream remains
// queryable after Close. Close is idempotent — a second call returns
// ErrClosed — and safe to call concurrently with Append and Flush
// (in-flight calls complete first; late callers get ErrClosed).
func (s *Stream) Close() error { return s.s.Close() }

// Snapshot pins the current queryable state — every row sealed so far,
// exactly Watermark() of them — without blocking writers or the merger.
func (s *Stream) Snapshot() *StreamSnapshot { return &StreamSnapshot{sn: s.s.Snapshot()} }

// StreamStats is a point-in-time report of a stream's ingest and merge
// state.
type StreamStats struct {
	// Shards and Holistic echo the stream's configuration.
	Shards   int
	Holistic bool

	// Ingested counts rows accepted by Append; Watermark counts rows
	// visible to a snapshot taken now; Staleness is their difference —
	// rows still queued or in unsealed deltas.
	Ingested  uint64
	Watermark uint64
	Staleness uint64

	// Batches counts Append calls that carried rows; Seals counts deltas
	// frozen and published; Snapshots counts Snapshot calls; BlockedNanos
	// is the total time Append spent stalled on full shard queues
	// (backpressure).
	Batches      uint64
	Seals        uint64
	Snapshots    uint64
	BlockedNanos int64

	// SealedPending counts sealed deltas awaiting the merger; Generation
	// counts base generations built; Groups is the current base's group
	// count (unmerged deltas excluded).
	SealedPending int
	Generation    uint64
	Groups        int

	// Merges counts completed merge cycles; MergeTotalNanos and
	// MergeLastNanos time them.
	Merges          uint64
	MergeTotalNanos int64
	MergeLastNanos  int64

	// Result-cache outcomes across every view: queries answered from a
	// view's materialized results, queries that computed and stored them,
	// and entries evicted by the per-view capacity bound.
	QueryCacheHits      uint64
	QueryCacheMisses    uint64
	QueryCacheEvictions uint64

	// Continuous-view state: registered views, live and evicted panes
	// across them, pane folds applied (one per view per seal), and result
	// reads (total and answered from the version cache).
	Views            int
	ViewPanesLive    int
	ViewPanesEvicted uint64
	ViewUpdates      uint64
	ViewReads        uint64
	ViewReadsCached  uint64

	// Durable reports whether the stream runs with a WAL; ReadOnly whether
	// its durability layer failed and ingest is refused. The remaining
	// fields are zero for volatile streams: WAL activity counters and the
	// row count covered by the last durable checkpoint.
	Durable             bool
	ReadOnly            bool
	WALAppends          uint64
	WALFsyncs           uint64
	WALSegmentRotations uint64
	WALSizeBytes        int64
	Checkpoints         uint64
	CheckpointWatermark uint64
}

// Stats reports the stream's current state, read from the same obs-backed
// instruments the stream's /metrics families serve. Safe from any
// goroutine.
func (s *Stream) Stats() StreamStats {
	st := s.s.Stats()
	return StreamStats{
		Shards:              st.Shards,
		Holistic:            st.Holistic,
		Ingested:            st.Ingested,
		Watermark:           st.Watermark,
		Staleness:           st.Staleness,
		Batches:             st.Batches,
		Seals:               st.Seals,
		Snapshots:           st.Snapshots,
		BlockedNanos:        int64(st.Blocked),
		SealedPending:       st.SealedPending,
		Generation:          st.Generation,
		Groups:              st.Groups,
		Merges:              st.Merges,
		MergeTotalNanos:     int64(st.MergeTotal),
		MergeLastNanos:      int64(st.MergeLast),
		QueryCacheHits:      st.QueryCacheHits,
		QueryCacheMisses:    st.QueryCacheMisses,
		QueryCacheEvictions: st.QueryCacheEvictions,
		Views:               st.Views,
		ViewPanesLive:       st.ViewPanesLive,
		ViewPanesEvicted:    st.ViewPanesEvicted,
		ViewUpdates:         st.ViewUpdates,
		ViewReads:           st.ViewReads,
		ViewReadsCached:     st.ViewReadsCached,
		Durable:             st.Durable,
		ReadOnly:            st.ReadOnly,
		WALAppends:          st.WALAppends,
		WALFsyncs:           st.WALFsyncs,
		WALSegmentRotations: st.WALSegmentRotations,
		WALSizeBytes:        st.WALSizeBytes,
		Checkpoints:         st.Checkpoints,
		CheckpointWatermark: st.CheckpointWatermark,
	}
}

// StreamSnapshot answers the full Q1–Q7 query set over one consistent
// point of the stream: every query sees exactly Watermark() rows, no
// matter how long the snapshot is held or what writers do meanwhile.
// Vector row order is unspecified except CountRange (ascending by key).
type StreamSnapshot struct {
	sn *stream.Snapshot
}

// Watermark returns the number of rows this snapshot covers.
func (sn *StreamSnapshot) Watermark() uint64 { return sn.sn.Watermark() }

// Groups returns the number of distinct keys this snapshot covers.
func (sn *StreamSnapshot) Groups() int { return sn.sn.Groups() }

// EncodePartials appends this snapshot's full partial-aggregate set in
// the cluster wire format (internal/cluster) to dst and returns the
// extended slice — what a worker node serves on GET /partials for the
// router's scatter-gather. The set decodes to state Merge-equivalent to
// the snapshot, value multisets included on holistic streams.
func (sn *StreamSnapshot) EncodePartials(dst []byte) []byte {
	return cluster.EncodeSnapshot(dst, sn.sn)
}

// CountByKey executes Q1: one (key, COUNT(*)) row per distinct key.
func (sn *StreamSnapshot) CountByKey() []GroupCount { return toCounts(sn.sn.CountByKey()) }

// AvgByKey executes Q2: one (key, AVG(values)) row per distinct key.
func (sn *StreamSnapshot) AvgByKey() []GroupValue { return toValues(sn.sn.AvgByKey()) }

// MedianByKey executes Q3 (holistic): one (key, MEDIAN(values)) row per
// distinct key. Requires a holistic stream (StreamOptions.Holistic or a
// holistic workload); otherwise ErrUnsupported.
func (sn *StreamSnapshot) MedianByKey() ([]GroupValue, error) {
	rows, err := sn.sn.MedianByKey()
	if err != nil {
		return nil, err
	}
	return toValues(rows), nil
}

// QuantileByKey returns one (key, q-quantile of values) row per distinct
// key by the nearest-rank method. Holistic streams only.
func (sn *StreamSnapshot) QuantileByKey(q float64) ([]GroupValue, error) {
	rows, err := sn.sn.QuantileByKey(q)
	if err != nil {
		return nil, err
	}
	return toValues(rows), nil
}

// ModeByKey returns one (key, most frequent value) row per distinct key.
// Holistic streams only.
func (sn *StreamSnapshot) ModeByKey() ([]GroupValue, error) {
	rows, err := sn.sn.ModeByKey()
	if err != nil {
		return nil, err
	}
	return toValues(rows), nil
}

// Count executes Q4: COUNT(*) over the snapshot — its watermark.
func (sn *StreamSnapshot) Count() uint64 { return sn.sn.Count() }

// Avg executes Q5: AVG over the value column.
func (sn *StreamSnapshot) Avg() float64 { return sn.sn.Avg() }

// Median executes Q6: MEDIAN over the key column. Always supported — the
// snapshot's per-group counts stand in for the ordered enumeration the
// batch hash backends lack.
func (sn *StreamSnapshot) Median() (float64, error) { return sn.sn.Median() }

// CountRange executes Q7: Q1 restricted to lo <= key <= hi, rows
// ascending by key.
func (sn *StreamSnapshot) CountRange(lo, hi uint64) ([]GroupCount, error) {
	rows, err := sn.sn.CountRange(lo, hi)
	if err != nil {
		return nil, err
	}
	return toCounts(rows), nil
}

// SumByKey returns one (key, SUM(values)) row per distinct key.
func (sn *StreamSnapshot) SumByKey() []GroupStat { return toStats(sn.sn.Reduce(agg.OpSum)) }

// MinByKey returns one (key, MIN(values)) row per distinct key.
func (sn *StreamSnapshot) MinByKey() []GroupStat { return toStats(sn.sn.Reduce(agg.OpMin)) }

// MaxByKey returns one (key, MAX(values)) row per distinct key.
func (sn *StreamSnapshot) MaxByKey() []GroupStat { return toStats(sn.sn.Reduce(agg.OpMax)) }

// MetricsRegistry exposes the stream's metric registry for embedding in a
// metrics endpoint: serve it alongside the process-global registry with
// obs.WritePrometheus (see cmd/aggserve). Typed access goes through
// Metrics and Stats instead.
func (s *Stream) MetricsRegistry() *obs.Registry { return s.s.Registry() }

// ErrStreamClosed reports an Append or Flush on a closed stream. Same
// value as ErrClosed.
var ErrStreamClosed = stream.ErrClosed
