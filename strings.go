package memagg

import (
	"fmt"

	"memagg/internal/stragg"
)

// This file extends the public API to string group-by keys — the
// variable-length-key adaptation the paper's Section 3.1 anticipates. The
// same algorithm families apply: hash tables (linear probing, chaining), a
// string adaptive radix tree, and sort-based operators (MSD radix sort and
// Bentley–Sedgewick multikey quicksort). The ordered engines answer the
// string analogs of the ordered queries: lexicographic scalar median and
// prefix-restricted counting (the string form of Q7's range condition).

// StringBackend names a string-keyed algorithm.
type StringBackend string

// String-keyed backends.
const (
	StrHashLP        StringBackend = "StrHash_LP"       // linear probing
	StrHashSC        StringBackend = "StrHash_SC"       // separate chaining
	StrART           StringBackend = "StrART"           // string adaptive radix tree
	StrMSDRadix      StringBackend = "StrMSDRadix"      // MSD radix sort
	StrMultikeyQuick StringBackend = "StrMultikeyQuick" // multikey quicksort
)

// StringBackends lists every string backend.
func StringBackends() []StringBackend {
	return []StringBackend{StrHashLP, StrHashSC, StrART, StrMSDRadix, StrMultikeyQuick}
}

// StringGroupCount is one row of a string-keyed COUNT result.
type StringGroupCount struct {
	Key   string
	Count uint64
}

// StringGroupValue is one row of a string-keyed AVG or MEDIAN result.
type StringGroupValue struct {
	Key   string
	Value float64
}

// StringAggregator executes aggregation queries over string keys with one
// backend. Like Aggregator, it is stateless between calls.
type StringAggregator struct {
	backend StringBackend
	engine  stragg.Engine
}

// NewStrings returns a StringAggregator for the given backend.
func NewStrings(b StringBackend) (*StringAggregator, error) {
	e, err := stragg.ByName(string(b))
	if err != nil {
		return nil, fmt.Errorf("memagg: unknown string backend %q", b)
	}
	return &StringAggregator{backend: b, engine: e}, nil
}

// Backend returns the backend this aggregator runs on.
func (a *StringAggregator) Backend() StringBackend { return a.backend }

// CountByKey returns one (key, COUNT(*)) row per distinct string key.
// Order is lexicographic for sort- and tree-based backends, unspecified
// for hash-based ones.
func (a *StringAggregator) CountByKey(keys []string) []StringGroupCount {
	rows := a.engine.VectorCount(keys)
	out := make([]StringGroupCount, len(rows))
	for i, r := range rows {
		out[i] = StringGroupCount{Key: r.Key, Count: r.Count}
	}
	return out
}

// AvgByKey returns one (key, AVG(values)) row per distinct key.
func (a *StringAggregator) AvgByKey(keys []string, values []uint64) []StringGroupValue {
	return toStrValues(a.engine.VectorAvg(keys, values))
}

// MedianByKey returns one (key, MEDIAN(values)) row per distinct key
// (holistic).
func (a *StringAggregator) MedianByKey(keys []string, values []uint64) []StringGroupValue {
	return toStrValues(a.engine.VectorMedian(keys, values))
}

// MedianKey returns the lexicographic median key (lower middle for even
// counts). Hash backends return ErrUnsupported.
func (a *StringAggregator) MedianKey(keys []string) (string, error) {
	s, err := a.engine.ScalarMedianKey(keys)
	if err != nil {
		return "", ErrUnsupported
	}
	return s, nil
}

// CountByPrefix returns CountByKey restricted to keys starting with
// prefix — the string analog of CountRange. Hash backends return
// ErrUnsupported.
func (a *StringAggregator) CountByPrefix(keys []string, prefix string) ([]StringGroupCount, error) {
	rows, err := a.engine.PrefixCount(keys, prefix)
	if err != nil {
		return nil, ErrUnsupported
	}
	out := make([]StringGroupCount, len(rows))
	for i, r := range rows {
		out[i] = StringGroupCount{Key: r.Key, Count: r.Count}
	}
	return out, nil
}

func toStrValues(rows []stragg.GroupFloat) []StringGroupValue {
	out := make([]StringGroupValue, len(rows))
	for i, r := range rows {
		out[i] = StringGroupValue{Key: r.Key, Value: r.Val}
	}
	return out
}
