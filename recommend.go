package memagg

// This file encodes the paper's Figure 12 decision flow chart: given the
// coordinates of a workload along the six analysis dimensions that matter
// for algorithm choice, Recommend returns the algorithm the paper's
// experiments favour, with the reasoning the paper gives.

// OutputKind is the aggregation output format (Dimension 2).
type OutputKind int

const (
	// Vector output: one row per distinct group-by key.
	Vector OutputKind = iota
	// Scalar output: a single value over the whole input.
	Scalar
)

// FunctionClass categorizes the aggregate function (Dimension 2).
type FunctionClass int

const (
	// Distributive functions (COUNT, SUM, MIN, MAX) can be computed
	// incrementally during the build phase.
	Distributive FunctionClass = iota
	// Algebraic functions (AVG) combine distributive parts and behave like
	// them for algorithm choice.
	Algebraic
	// Holistic functions (MEDIAN, MODE, QUANTILE) need each group's full
	// value set.
	Holistic
)

// Workload describes a query workload for Recommend.
type Workload struct {
	Output   OutputKind
	Function FunctionClass
	// WriteOnceReadOnce is true when the aggregate is computed once and
	// discarded (WORO); false means the built structure is reused across
	// queries (WORM).
	WriteOnceReadOnce bool
	// RangeCondition is true when queries restrict the group-by key to a
	// range (Q7-style).
	RangeCondition bool
	// PrebuiltIndex is true when the structure is already built before the
	// measured queries run (only meaningful with RangeCondition).
	PrebuiltIndex bool
	// Multithreaded is true when the build may use multiple threads
	// (Dimension 6).
	Multithreaded bool
	// EstimatedGroups is the expected group-by cardinality, when known.
	// Zero means unknown and leaves the paper's flow chart unchanged. A
	// known cardinality splits the multithreaded vector branch at the
	// measured crossover (~64Ki groups, `-exp glb`): below it the global
	// shared-table engine Hash_GLB wins — one pass, table cache-resident —
	// while above it Hash_RX's radix partitioning keeps every phase-2
	// table cache-sized where a shared table turns each probe into a
	// shared-memory miss (DESIGN.md §1.2h).
	EstimatedGroups int
}

// rxCardinalityCutoff is the estimated group count at which the measured
// Hash_GLB/Hash_RX crossover falls for multithreaded vector workloads
// (`-exp glb`, results_glb.txt; 1M rows, p=4): below it the global shared
// table wins (1024 groups: Hash_GLB 9.0 ms vs Hash_RX 30.6 ms — the
// partitioning pass buys nothing while the table is cache-resident), at
// 65536 groups they tie (59.5 vs 48.8 ms), and above it the cache-sized
// phase-2 tables of Hash_RX win (262144 groups: 92.4 vs 61.8 ms). The
// cutoff is where a 16 B/group table outgrows the 256 KiB L2 budget the
// radix engine partitions for.
const rxCardinalityCutoff = 1 << 16

// Advice is a Recommend result.
type Advice struct {
	Backend Backend
	Reason  string
}

// Recommend walks the paper's Figure 12 decision flow chart and returns
// the algorithm it selects for the workload, with the paper's rationale.
func Recommend(w Workload) Advice {
	if w.Output == Scalar {
		if w.WriteOnceReadOnce {
			return Advice{Spreadsort,
				"scalar + write-once-read-once: Spreadsort gives the fastest overall runtimes (Figure 9)"}
		}
		return Advice{Judy,
			"scalar + reusable structure: Judy answers repeated ordered queries fastest among the trees (Figure 9)"}
	}
	// Vector output.
	if w.Function == Holistic {
		if w.Multithreaded {
			return Advice{SortBI,
				"vector holistic, multithreaded: sort-based wins and Sort_BI scales best (Figure 11)"}
		}
		return Advice{Spreadsort,
			"vector holistic: sorting groups the values for free; Spreadsort is fastest across the board (Figure 5)"}
	}
	if w.RangeCondition {
		if w.PrebuiltIndex {
			return Advice{Btree,
				"range search on a prebuilt index: linked leaves make Btree's scans far faster (Figure 8)"}
		}
		return Advice{ART,
			"range search including build time: ART's build-time advantage dominates (Figure 8)"}
	}
	if w.Multithreaded {
		if w.EstimatedGroups >= rxCardinalityCutoff {
			return Advice{HashRX,
				"vector distributive, multithreaded, high cardinality: radix partitioning keeps every per-partition table cache-sized where shared tables turn every probe into a shared-memory miss (measured crossover ~64Ki groups, -exp glb)"}
		}
		if w.EstimatedGroups > 0 {
			return Advice{HashGLB,
				"vector distributive, multithreaded, cache-resident cardinality: the morsel-driven global shared table aggregates in one pass where Hash_RX spends an extra scatter pass and Hash_TBBSC serializes on stripe locks (2-3x faster below the ~64Ki-group crossover, -exp glb)"}
		}
		return Advice{HashTBBSC,
			"vector distributive, multithreaded: Hash_TBBSC outperforms the other concurrent algorithms on Q1 (Figure 11)"}
	}
	return Advice{HashLP,
		"vector distributive: Hash_LP's cache-friendly probing wins Q1 at every cardinality (Figure 4)"}
}
