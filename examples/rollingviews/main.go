// Rollingviews: continuous queries over a live stream. Instead of
// recomputing a dashboard's aggregates on every poll, the stream
// maintains named views incrementally: each is a ring of panes fed from
// the seal-publication path, and a read merges the live panes (or hits
// the view's result cache when nothing sealed since the last read). The
// example registers a sliding per-key count and a tumbling p95 quantile,
// feeds readings through in chunks, and polls both views as the windows
// fill, slide, and tumble.
package main

import (
	"fmt"
	"log"

	"memagg"
)

const (
	nReadings = 400_000
	nSensors  = 128
	paneRows  = 50_000
)

func main() {
	sensorIDs, err := memagg.Generate(memagg.RseqShf, nReadings, nSensors, 11)
	if err != nil {
		log.Fatal(err)
	}
	readings := memagg.GenerateValues(nReadings, 11)

	// Holistic stream: the quantile view needs per-group value multisets.
	s := memagg.NewStream(memagg.StreamOptions{Shards: 1, SealRows: paneRows, Holistic: true})
	defer s.Close()

	// A sliding window always covers the last 4 panes; the tumbling
	// window accumulates a 4-pane bucket and drops it whole.
	for _, v := range []memagg.ViewSpec{
		{Name: "active-sensors", Query: "q1", PaneRows: paneRows, Panes: 4, Sliding: true},
		{Name: "p95-hourly", Query: "quantile", P: 0.95, PaneRows: paneRows, Panes: 4},
	} {
		if err := s.RegisterView(v); err != nil {
			log.Fatal(err)
		}
	}

	for off := 0; off < nReadings; off += paneRows {
		if err := s.AppendChunk(memagg.Chunk{
			Keys: sensorIDs[off : off+paneRows],
			Vals: readings[off : off+paneRows],
		}); err != nil {
			log.Fatal(err)
		}
		if err := s.Flush(); err != nil { // seal: both views absorb the pane
			log.Fatal(err)
		}

		counts, err := s.View("active-sensors")
		if err != nil {
			log.Fatal(err)
		}
		p95, err := s.View("p95-hourly")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pane %d: sliding window (%7d, %7d] %d sensors | tumbling p95 window (%7d, %7d] over %d rows\n",
			off/paneRows, counts.WindowStart, counts.WindowEnd, counts.Groups,
			p95.WindowStart, p95.WindowEnd, p95.Rows)
	}

	// Final reads: the sliding window holds the last 4 panes, the
	// tumbling window restarted on pane 4 and holds the current bucket.
	counts, _ := s.View("active-sensors")
	top := counts.Value.([]memagg.GroupCount)[0]
	fmt.Printf("\nsliding count window covers rows (%d, %d]; first group: sensor %d seen %d times\n",
		counts.WindowStart, counts.WindowEnd, top.Key, top.Count)
	for _, info := range s.Views() {
		fmt.Printf("view %-15s %-14s live=%d evicted=%d watermark=%d\n",
			info.Name, info.Query, info.PanesLive, info.PanesEvicted, info.Watermark)
	}
}
