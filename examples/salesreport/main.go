// Salesreport: a heavy-hitter retail workload — the paper's Hhit
// distribution models catalogs where one product dominates sales. The
// example runs the vector COUNT (Q1), vector AVG (Q2) and ranged COUNT
// (Q7) queries a reporting dashboard would issue, on the backends the
// paper's Figure 12 recommends for each.
package main

import (
	"fmt"
	"log"
	"sort"

	"memagg"
)

const (
	nSales    = 2_000_000
	nProducts = 5_000
)

func main() {
	// product_id column: one hot product takes 50% of all sales.
	productIDs, err := memagg.Generate(memagg.HhitShf, nSales, nProducts, 2024)
	if err != nil {
		log.Fatal(err)
	}
	// sale amount column in cents.
	amounts := memagg.GenerateValues(nSales, 2024)

	// Q1 — units sold per product: vector distributive → Hash_LP.
	counter, err := memagg.New(memagg.Recommend(memagg.Workload{
		Output: memagg.Vector, Function: memagg.Distributive,
	}).Backend, memagg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	counts := counter.CountByKey(productIDs)

	sort.Slice(counts, func(i, j int) bool { return counts[i].Count > counts[j].Count })
	fmt.Println("top products by units sold:")
	for _, r := range counts[:5] {
		share := 100 * float64(r.Count) / float64(nSales)
		fmt.Printf("  product %-5d units %-8d share %.1f%%\n", r.Key, r.Count, share)
	}

	// Q2 — average sale amount per product (algebraic, same backend).
	avgs := counter.AvgByKey(productIDs, amounts)
	byKey := make(map[uint64]float64, len(avgs))
	for _, r := range avgs {
		byKey[r.Key] = r.Value
	}
	fmt.Printf("hot product %d average ticket: %.0f cents\n",
		counts[0].Key, byKey[counts[0].Key])

	// Q7 — units sold for the premium catalog range (products 500-1000):
	// a range condition over the group-by key wants a tree backend.
	ranged, err := memagg.New(memagg.Recommend(memagg.Workload{
		Output: memagg.Vector, Function: memagg.Distributive, RangeCondition: true,
	}).Backend, memagg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rows, err := ranged.CountRange(productIDs, 500, 1000)
	if err != nil {
		log.Fatal(err)
	}
	var premium uint64
	for _, r := range rows {
		premium += r.Count
	}
	fmt.Printf("premium range (ids 500-1000): %d products, %d units via %s\n",
		len(rows), premium, ranged.Backend())
}
