// Quickstart: generate a synthetic dataset and run a group-by COUNT with
// two different backends via the public API.
package main

import (
	"fmt"
	"log"

	"memagg"
)

func main() {
	// One million records whose keys follow a Zipfian distribution over
	// ten thousand groups — word frequencies, city sizes, site traffic.
	keys, err := memagg.Generate(memagg.Zipf, 1_000_000, 10_000, 42)
	if err != nil {
		log.Fatal(err)
	}

	// SELECT key, COUNT(*) GROUP BY key — with the paper's fastest
	// distributive backend.
	hash, err := memagg.New(memagg.HashLP, memagg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rows := hash.CountByKey(keys)
	fmt.Printf("distinct groups: %d\n", len(rows))

	// The same query on a sort-based backend returns rows already ordered
	// by key.
	sorted, err := memagg.New(memagg.Spreadsort, memagg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range sorted.CountByKey(keys)[:5] {
		fmt.Printf("key %-4d count %d\n", r.Key, r.Count)
	}

	// Not sure which backend fits? Ask the paper's decision flow chart.
	advice := memagg.Recommend(memagg.Workload{
		Output:   memagg.Vector,
		Function: memagg.Distributive,
	})
	fmt.Printf("recommended: %s — %s\n", advice.Backend, advice.Reason)
}
