// Streammedian: a sliding-locality workload — the paper's moving-cluster
// (MovC) distribution models streaming and spatial applications where the
// active key window drifts over time. Holistic aggregates (medians) cannot
// be computed incrementally, which is exactly where the paper finds
// sort-based aggregation superior; the example shows both the serial
// (Spreadsort) and multithreaded (Sort_BI) recommendations.
package main

import (
	"fmt"
	"log"
	"time"

	"memagg"
)

const (
	nReadings = 2_000_000
	nSensors  = 50_000
)

func main() {
	// sensor_id column whose locality drifts (W = 64 active sensors).
	sensorIDs, err := memagg.Generate(memagg.MovC, nReadings, nSensors, 7)
	if err != nil {
		log.Fatal(err)
	}
	// measurement column.
	readings := memagg.GenerateValues(nReadings, 7)

	// Q3 — per-sensor median reading, serial recommendation.
	serialAdvice := memagg.Recommend(memagg.Workload{
		Output: memagg.Vector, Function: memagg.Holistic,
	})
	serial, err := memagg.New(serialAdvice.Backend, memagg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	medians := serial.MedianByKey(sensorIDs, readings)
	fmt.Printf("%-10s computed %d group medians in %v\n",
		serial.Backend(), len(medians), time.Since(start).Round(time.Millisecond))

	// The same query on the multithreaded recommendation.
	parAdvice := memagg.Recommend(memagg.Workload{
		Output: memagg.Vector, Function: memagg.Holistic, Multithreaded: true,
	})
	parallel, err := memagg.New(parAdvice.Backend, memagg.Options{Threads: 0})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	pmedians := parallel.MedianByKey(sensorIDs, readings)
	fmt.Printf("%-10s computed %d group medians in %v\n",
		parallel.Backend(), len(pmedians), time.Since(start).Round(time.Millisecond))

	// Q6 — the scalar median sensor id tells us where the stream's
	// activity center was overall.
	center, err := serial.Median(sensorIDs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("median active sensor id: %.0f (key range 1..%d)\n", center, nSensors)

	// Spot-check one group against the paper's definition.
	var probe uint64 = medians[len(medians)/2].Key
	fmt.Printf("sensor %d median reading: %.1f\n", probe, lookup(medians, probe))
}

func lookup(rows []memagg.GroupValue, key uint64) float64 {
	for _, r := range rows {
		if r.Key == key {
			return r.Value
		}
	}
	return -1
}
