// Wordcount: the canonical string group-by — COUNT(*) GROUP BY word —
// over a synthetic Zipf-distributed vocabulary (word frequencies follow
// Zipf's law, the distribution the paper's Section 4 uses for exactly this
// reason). Demonstrates the string-keyed API: hash vs radix-tree vs
// radix-sort backends, prefix-restricted counting, and the lexicographic
// median word.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"memagg"
	"memagg/internal/dataset"
)

const (
	nWords = 1_000_000
	vocab  = 20_000
)

// corpus synthesizes word tokens with Zipfian frequency over a vocabulary
// keyed like real tokens ("the-00001" most frequent, long tail after).
func corpus() []string {
	rng := dataset.NewRNG(2026)
	z := dataset.NewZipfSampler(vocab, 1.0) // classic word-frequency exponent
	words := make([]string, nWords)
	for i := range words {
		words[i] = fmt.Sprintf("tok-%05d", z.Sample(rng))
	}
	return words
}

func main() {
	words := corpus()

	for _, b := range memagg.StringBackends() {
		a, err := memagg.NewStrings(b)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rows := a.CountByKey(words)
		fmt.Printf("%-17s %6d distinct words in %v\n",
			b, len(rows), time.Since(start).Round(time.Millisecond))
	}

	// Top five words via the tree backend (already sorted by key; re-rank
	// by count for display).
	art, _ := memagg.NewStrings(memagg.StrART)
	rows := art.CountByKey(words)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Count > rows[j].Count })
	fmt.Println("top words:")
	for _, r := range rows[:5] {
		fmt.Printf("  %-10s %d\n", r.Key, r.Count)
	}

	// Prefix query: how often does each token starting "tok-0001" occur?
	prefixRows, err := art.CountByPrefix(words, "tok-0001")
	if err != nil {
		log.Fatal(err)
	}
	var total uint64
	for _, r := range prefixRows {
		total += r.Count
	}
	fmt.Printf("prefix tok-0001*: %d tokens across %d words\n", total, len(prefixRows))

	median, err := art.MedianKey(words)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lexicographic median token: %s\n", median)
}
