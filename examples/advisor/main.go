// Advisor: walk the paper's Figure 12 decision flow chart over a catalog
// of workload shapes and print which algorithm the study recommends for
// each, with the rationale.
package main

import (
	"fmt"

	"memagg"
)

func main() {
	scenarios := []struct {
		name string
		w    memagg.Workload
	}{
		{"one-off scalar median over a log column",
			memagg.Workload{Output: memagg.Scalar, Function: memagg.Holistic, WriteOnceReadOnce: true}},
		{"repeated percentile queries over a retained index",
			memagg.Workload{Output: memagg.Scalar, Function: memagg.Holistic}},
		{"GROUP BY COUNT for a dashboard tile",
			memagg.Workload{Output: memagg.Vector, Function: memagg.Distributive}},
		{"GROUP BY COUNT on a 16-core ingest node",
			memagg.Workload{Output: memagg.Vector, Function: memagg.Distributive, Multithreaded: true}},
		{"GROUP BY MEDIAN latency per endpoint",
			memagg.Workload{Output: memagg.Vector, Function: memagg.Holistic}},
		{"GROUP BY MEDIAN latency, parallel build",
			memagg.Workload{Output: memagg.Vector, Function: memagg.Holistic, Multithreaded: true}},
		{"COUNT over a key range, index built per query",
			memagg.Workload{Output: memagg.Vector, Function: memagg.Distributive, RangeCondition: true}},
		{"COUNT over a key range on a resident index",
			memagg.Workload{Output: memagg.Vector, Function: memagg.Distributive, RangeCondition: true, PrebuiltIndex: true}},
	}
	for _, s := range scenarios {
		a := memagg.Recommend(s.w)
		fmt.Printf("%-48s → %-11s %s\n", s.name, a.Backend, a.Reason)
	}
}
