// Benchmarks mirroring the paper's evaluation: one benchmark function per
// figure/table (see DESIGN.md's per-experiment index) plus the ablation
// benchmarks for the design choices DESIGN.md calls out.
//
// Benchmark inputs are laptop-scale (the harness in cmd/aggbench
// regenerates the full grids at configurable sizes); each op aggregates a
// full dataset, so compare ns/op across sub-benchmarks, not against the
// paper's absolute numbers.
package memagg_test

import (
	"fmt"
	"testing"

	"memagg"
	"memagg/internal/agg"
	"memagg/internal/art"
	"memagg/internal/btree"
	"memagg/internal/dataset"
	"memagg/internal/hashtbl"
	"memagg/internal/judy"
	"memagg/internal/memsim"
	"memagg/internal/memuse"
	"memagg/internal/xsort"
)

const (
	benchSortN  = 1 << 20 // keys per sort-microbenchmark op
	benchQueryN = 1 << 18 // records per query op
	benchSeed   = 42
)

var benchCards = []int{1 << 10, 1 << 16} // the paper's low/high pair, scaled

// sink defeats dead-code elimination across benchmark loops.
var sink int

// --- Figure 2 ----------------------------------------------------------------

func BenchmarkFig2SortMicro(b *testing.B) {
	dists := []struct {
		name string
		gen  func() []uint64
	}{
		{"Random1to5", func() []uint64 { return dataset.Random(benchSortN, 1, 5, benchSeed) }},
		{"Random1to1M", func() []uint64 { return dataset.Random(benchSortN, 1, 1_000_000, benchSeed) }},
		{"Random1kto1M", func() []uint64 { return dataset.Random(benchSortN, 1_000, 1_000_000, benchSeed) }},
		{"Presorted", func() []uint64 { return dataset.Sequential(benchSortN) }},
		{"Reversed", func() []uint64 { return dataset.Reversed(benchSortN) }},
	}
	sorts := []struct {
		name string
		fn   func([]uint64)
	}{
		{"MSBRadix", xsort.RadixSortMSB},
		{"LSBRadix", xsort.RadixSortLSB},
		{"Introsort", xsort.Introsort},
		{"Spreadsort", xsort.Spreadsort},
		{"Quicksort", xsort.Quicksort},
	}
	for _, d := range dists {
		base := d.gen()
		buf := make([]uint64, len(base))
		for _, s := range sorts {
			b.Run(d.name+"/"+s.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					copy(buf, base)
					s.fn(buf)
				}
			})
		}
	}
}

// --- Figure 3 ----------------------------------------------------------------

func BenchmarkFig3StructMicro(b *testing.B) {
	keys := dataset.Random(benchQueryN, 1, 1_000_000, benchSeed)
	for _, e := range append(agg.Engines(), agg.Ttree()) {
		e := e
		b.Run(e.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink = len(e.VectorCount(keys))
			}
		})
	}
}

// --- Figures 4, 5 --------------------------------------------------------------

func benchQueryGrid(b *testing.B, run func(e agg.Engine, keys, vals []uint64) int) {
	vals := dataset.Values(benchQueryN, benchSeed)
	for _, card := range benchCards {
		keys := dataset.Spec{Kind: dataset.Rseq, N: benchQueryN, Cardinality: card, Seed: benchSeed}.Keys()
		for _, e := range agg.Engines() {
			e := e
			b.Run(fmt.Sprintf("card%d/%s", card, e.Name()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sink = run(e, keys, vals)
				}
			})
		}
	}
}

func BenchmarkFig4Q1(b *testing.B) {
	benchQueryGrid(b, func(e agg.Engine, keys, _ []uint64) int {
		return len(e.VectorCount(keys))
	})
}

func BenchmarkFig5Q3(b *testing.B) {
	benchQueryGrid(b, func(e agg.Engine, keys, vals []uint64) int {
		return len(e.VectorMedian(keys, vals))
	})
}

// --- Figure 6 ----------------------------------------------------------------

func BenchmarkFig6MemSim(b *testing.B) {
	for _, card := range benchCards {
		keys := dataset.Spec{Kind: dataset.Rseq, N: benchQueryN, Cardinality: card, Seed: benchSeed}.Keys()
		for _, thp := range []bool{false, true} {
			paging := "4k"
			if thp {
				paging = "thp"
			}
			for _, m := range memsim.Models() {
				m, thp := m, thp
				b.Run(fmt.Sprintf("card%d/%s/%s", card, paging, m.Name()), func(b *testing.B) {
					b.ReportAllocs()
					var cache, tlb uint64
					for i := 0; i < b.N; i++ {
						h := memsim.NewSkylakeHierarchy()
						h.THP = thp
						m.RunQ1(h, keys)
						cache, tlb = h.CacheMisses(), h.TLBMisses()
					}
					b.ReportMetric(float64(cache), "cache-misses")
					b.ReportMetric(float64(tlb), "dtlb-misses")
				})
			}
		}
	}
}

// --- Tables 6, 7 ----------------------------------------------------------------

func benchMemTable(b *testing.B, op func(e agg.Engine, keys, vals []uint64) any) {
	keys := dataset.Spec{Kind: dataset.Rseq, N: benchQueryN, Cardinality: 1000, Seed: benchSeed}.Keys()
	vals := dataset.Values(benchQueryN, benchSeed)
	for _, e := range agg.Engines() {
		e := e
		b.Run(e.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var u memuse.Usage
			for i := 0; i < b.N; i++ {
				u = memuse.Measure(func() any { return op(e, keys, vals) })
			}
			b.ReportMetric(memuse.MB(u.Retained), "retained-MB")
			b.ReportMetric(memuse.MB(u.Allocated), "allocated-MB")
		})
	}
}

func BenchmarkTab6MemQ1(b *testing.B) {
	benchMemTable(b, func(e agg.Engine, keys, _ []uint64) any {
		return e.VectorCount(keys)
	})
}

func BenchmarkTab7MemQ3(b *testing.B) {
	benchMemTable(b, func(e agg.Engine, keys, vals []uint64) any {
		return e.VectorMedian(keys, vals)
	})
}

// --- Figure 7 ----------------------------------------------------------------

func BenchmarkFig7Distrib(b *testing.B) {
	// Representative engines from each family keep the grid tractable; the
	// harness sweeps all ten.
	engines := []agg.Engine{agg.ART(), agg.Btree(), agg.HashLP(), agg.HashSC(), agg.Spreadsort()}
	for _, card := range benchCards {
		for _, kind := range dataset.Kinds {
			keys := dataset.Spec{Kind: kind, N: benchQueryN, Cardinality: card, Seed: benchSeed}.Keys()
			for _, e := range engines {
				e := e
				b.Run(fmt.Sprintf("card%d/%s/%s", card, kind, e.Name()), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						sink = len(e.VectorCount(keys))
					}
				})
			}
		}
	}
}

// --- Figure 8 ----------------------------------------------------------------

func BenchmarkFig8Range(b *testing.B) {
	card := 1 << 16
	keys := dataset.Spec{Kind: dataset.Rseq, N: benchQueryN, Cardinality: card, Seed: benchSeed}.Keys()

	type tree interface {
		Upsert(uint64) *uint64
		Range(lo, hi uint64, fn func(uint64, *uint64) bool)
	}
	trees := []struct {
		name string
		mk   func() tree
	}{
		{"ART", func() tree { return art.New[uint64]() }},
		{"Judy", func() tree { return judy.New[uint64]() }},
		{"Btree", func() tree { return btree.New[uint64]() }},
	}
	for _, tr := range trees {
		tr := tr
		b.Run("Build/"+tr.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				t := tr.mk()
				for _, k := range keys {
					*t.Upsert(k)++
				}
			}
		})
		prebuilt := tr.mk()
		for _, k := range keys {
			*prebuilt.Upsert(k)++
		}
		for _, pct := range []int{25, 50, 75} {
			hi := uint64(card * pct / 100)
			b.Run(fmt.Sprintf("Search%d/%s", pct, tr.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					groups := 0
					prebuilt.Range(1, hi, func(uint64, *uint64) bool {
						groups++
						return true
					})
					sink = groups
				}
			})
		}
	}
}

// --- Figure 9 ----------------------------------------------------------------

func BenchmarkFig9Q6(b *testing.B) {
	for _, kind := range []dataset.Kind{dataset.Rseq, dataset.RseqShf, dataset.Zipf} {
		keys := dataset.Spec{Kind: kind, N: benchQueryN, Cardinality: 1 << 16, Seed: benchSeed}.Keys()
		for _, e := range agg.ScalarEngines() {
			e := e
			b.Run(fmt.Sprintf("%s/%s", kind, e.Name()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m, err := e.ScalarMedian(keys)
					if err != nil {
						b.Fatal(err)
					}
					sink = int(m)
				}
			})
		}
	}
}

// --- Figure 10 ----------------------------------------------------------------

func BenchmarkFig10ParSort(b *testing.B) {
	base := dataset.Random(benchSortN, 1, 1_000_000, benchSeed)
	buf := make([]uint64, len(base))
	algos := []struct {
		name string
		fn   func([]uint64, int)
	}{
		{"Sort_SS", xsort.SortSS},
		{"Sort_TBB", xsort.SortTBB},
		{"Sort_QSLB", xsort.SortQSLB},
		{"Sort_BI", xsort.SortBI},
	}
	for _, p := range []int{1, 2, 4, 8} {
		for _, alg := range algos {
			alg := alg
			b.Run(fmt.Sprintf("p%d/%s", p, alg.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					copy(buf, base)
					alg.fn(buf, p)
				}
			})
		}
	}
}

// --- Figure 11 ----------------------------------------------------------------

func BenchmarkFig11Scaling(b *testing.B) {
	keys := dataset.Spec{Kind: dataset.Rseq, N: benchQueryN, Cardinality: 1 << 10, Seed: benchSeed}.Keys()
	vals := dataset.Values(benchQueryN, benchSeed)
	for _, p := range []int{1, 2, 4, 8} {
		for _, e := range agg.ConcurrentEngines(p) {
			e := e
			b.Run(fmt.Sprintf("Q1/p%d/%s", p, e.Name()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sink = len(e.VectorCount(keys))
				}
			})
			b.Run(fmt.Sprintf("Q3/p%d/%s", p, e.Name()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sink = len(e.VectorMedian(keys, vals))
				}
			})
		}
	}
}

// --- radix-partition cardinality sweep (DESIGN.md parallel designs) -----------

// BenchmarkRadixCardinalitySweep races the three parallel aggregation
// designs — radix-partitioned (Hash_RX), private tables + merge
// (Hash_PLAT) and the shared structures (Hash_LC, Hash_TBBSC) — across
// group-by cardinality on Q1. The interesting read-out is the crossover:
// Hash_PLAT leads while its local tables stay cache-resident, Hash_RX
// takes over once cardinality pushes the other designs' tables out of
// cache. aggbench -exp rx regenerates the sweep at paper-scale N.
func BenchmarkRadixCardinalitySweep(b *testing.B) {
	const (
		n = 1 << 20
		p = 8
	)
	engines := []agg.Engine{
		agg.HashRX(p), agg.HashPLAT(p), agg.HashLC(p), agg.HashTBBSC(p),
	}
	for card := 1 << 6; card <= n; card <<= 4 {
		keys := dataset.Spec{Kind: dataset.RseqShf, N: n, Cardinality: card, Seed: benchSeed}.Keys()
		for _, e := range engines {
			e := e
			b.Run(fmt.Sprintf("card%d/%s", card, e.Name()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sink = len(e.VectorCount(keys))
				}
			})
		}
	}
}

// --- ablations (DESIGN.md section 4) -------------------------------------------

// BenchmarkAblationMaskVsMod isolates the paper's power-of-two AND-masking
// optimization for Hash_LP against the prime-modulo fallback.
func BenchmarkAblationMaskVsMod(b *testing.B) {
	keys := dataset.Spec{Kind: dataset.RseqShf, N: benchQueryN, Cardinality: 1 << 16, Seed: benchSeed}.Keys()
	b.Run("Mask", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := hashtbl.NewLinearProbe[uint64](len(keys))
			for _, k := range keys {
				*t.Upsert(k)++
			}
			sink = t.Len()
		}
	})
	b.Run("Mod", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := hashtbl.NewLinearProbeMod[uint64](len(keys))
			for _, k := range keys {
				*t.Upsert(k)++
			}
			sink = t.Len()
		}
	})
}

// BenchmarkAblationEarlyVsLate contrasts early aggregation (fold counts
// during the build, Section 3) with late aggregation (buffer all values,
// aggregate during iterate) for a distributive query where early
// aggregation is optional.
func BenchmarkAblationEarlyVsLate(b *testing.B) {
	keys := dataset.Spec{Kind: dataset.Zipf, N: benchQueryN, Cardinality: 1 << 10, Seed: benchSeed}.Keys()
	b.Run("Early", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := hashtbl.NewLinearProbe[uint64](len(keys))
			for _, k := range keys {
				*t.Upsert(k)++
			}
			var total uint64
			t.Iterate(func(_ uint64, v *uint64) bool { total += *v; return true })
			sink = int(total)
		}
	})
	b.Run("Late", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := hashtbl.NewLinearProbe[[]uint64](len(keys))
			for _, k := range keys {
				lst := t.Upsert(k)
				*lst = append(*lst, 1)
			}
			var total uint64
			t.Iterate(func(_ uint64, v *[]uint64) bool { total += uint64(len(*v)); return true })
			sink = int(total)
		}
	})
}

// BenchmarkAblationARTPathCompression measures what ART's compressed
// prefixes buy on small-range keys (long shared prefixes).
func BenchmarkAblationARTPathCompression(b *testing.B) {
	keys := dataset.Random(benchQueryN, 1, 1<<16, benchSeed)
	b.Run("PathCompression", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := art.New[uint64]()
			for _, k := range keys {
				*t.Upsert(k)++
			}
			sink = t.Len()
		}
	})
	b.Run("NoPathCompression", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := art.NewNoPathCompression[uint64]()
			for _, k := range keys {
				*t.Upsert(k)++
			}
			sink = t.Len()
		}
	})
}

// BenchmarkAblationPresortART tests the paper's Section 5.5 suggestion:
// presorting shuffled input before building the ART aggregate.
func BenchmarkAblationPresortART(b *testing.B) {
	keys := dataset.Spec{Kind: dataset.RseqShf, N: benchQueryN, Cardinality: 1 << 16, Seed: benchSeed}.Keys()
	b.Run("Shuffled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := art.New[uint64]()
			for _, k := range keys {
				*t.Upsert(k)++
			}
			sink = t.Len()
		}
	})
	b.Run("PresortThenBuild", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]uint64, len(keys))
		for i := 0; i < b.N; i++ {
			copy(buf, keys)
			xsort.Spreadsort(buf)
			t := art.New[uint64]()
			for _, k := range buf {
				*t.Upsert(k)++
			}
			sink = t.Len()
		}
	})
}

// BenchmarkAblationChainPool contrasts per-node allocation with pooled
// arena allocation for the separate-chaining table.
func BenchmarkAblationChainPool(b *testing.B) {
	keys := dataset.Spec{Kind: dataset.RseqShf, N: benchQueryN, Cardinality: 1 << 16, Seed: benchSeed}.Keys()
	b.Run("PerNode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := hashtbl.NewChained[uint64](len(keys))
			for _, k := range keys {
				*t.Upsert(k)++
			}
			sink = t.Len()
		}
	})
	b.Run("Pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := hashtbl.NewChainedPooled[uint64](len(keys))
			for _, k := range keys {
				*t.Upsert(k)++
			}
			sink = t.Len()
		}
	})
}

// --- public API overhead -------------------------------------------------------

func BenchmarkPublicAPICountByKey(b *testing.B) {
	keys, err := memagg.Generate(memagg.Rseq, benchQueryN, 1<<10, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	a, err := memagg.New(memagg.HashLP, memagg.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = len(a.CountByKey(keys))
	}
}

// --- string-key extension -------------------------------------------------------

func BenchmarkStringBackends(b *testing.B) {
	rng := dataset.NewRNG(benchSeed)
	z := dataset.NewZipfSampler(1<<14, 0.5)
	keys := make([]string, benchQueryN)
	for i := range keys {
		keys[i] = fmt.Sprintf("tok-%05d", z.Sample(rng))
	}
	for _, bk := range memagg.StringBackends() {
		bk := bk
		a, err := memagg.NewStrings(bk)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(bk), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink = len(a.CountByKey(keys))
			}
		})
	}
}

// --- allocator dimension (DESIGN.md D6) ----------------------------------------

// BenchmarkHolisticAlloc sweeps the holistic Q3 across group-by
// cardinality under both allocator settings. allocs/op is the headline
// metric (every sub-benchmark reports it): under go-runtime it scales with
// the group count (each group's value list grows by append), under the
// arena it stays flat — a handful of pooled-chunk allocations regardless
// of cardinality. One untimed warm-up run puts the arena rows in the
// reset-and-reuse steady state.
func BenchmarkHolisticAlloc(b *testing.B) {
	vals := dataset.Values(benchQueryN, benchSeed)
	for _, card := range []int{1 << 10, 1 << 14, 1 << 17} {
		keys := dataset.Spec{Kind: dataset.RseqShf, N: benchQueryN, Cardinality: card, Seed: benchSeed}.Keys()
		for _, al := range agg.Allocators() {
			e := agg.AsReducer(agg.WithAllocator(agg.HashLP(), al))
			b.Run(fmt.Sprintf("card%d/%s", card, al), func(b *testing.B) {
				b.ReportAllocs()
				e.VectorHolistic(keys, vals, agg.MedianFunc)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sink = len(e.VectorHolistic(keys, vals, agg.MedianFunc))
				}
			})
		}
	}
}

// BenchmarkAblationBulkLoadVsUpserts contrasts O(n) bottom-up bulk loading
// of the B+tree from sorted input with top-down upserts — the tree-side
// counterpart of the paper's presort observation (Section 5.5).
func BenchmarkAblationBulkLoadVsUpserts(b *testing.B) {
	n := benchQueryN
	entries := make([]btree.Entry[uint64], n)
	keys := make([]uint64, n)
	for i := range entries {
		k := uint64(i*2 + 1)
		entries[i] = btree.Entry[uint64]{Key: k, Val: 1}
		keys[i] = k
	}
	b.Run("Upserts", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := btree.New[uint64]()
			for _, k := range keys {
				*t.Upsert(k) = 1
			}
			sink = t.Len()
		}
	})
	b.Run("BulkLoad", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = btree.BulkLoad(entries).Len()
		}
	})
}
