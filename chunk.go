package memagg

import (
	"bufio"

	"memagg/internal/agg"
)

// Chunk is the columnar ingest unit: a key column and a value column of
// equal logical length, Vals[i] belonging to Keys[i]. A value column
// shorter than the key column zero-extends, matching the row-pair
// operators' convention; a longer one is invalid (Validate). Chunks are
// the native currency of the whole ingest path — Stream.AppendChunk and
// AppendOwnedChunk consume them directly, the aggserve servers accept
// them on POST /v1/ingest as ChunkContentType bodies, and the cluster
// router scatters them columnar-wise by ring owner.
type Chunk = agg.Chunk

// ChunkContentType is the media type of a binary chunk-stream ingest
// body: zero or more wire-encoded chunks back to back (AppendChunkWire),
// read until clean EOF.
const ChunkContentType = agg.ChunkContentType

// ErrChunkWire marks a structurally invalid chunk wire body: bad magic,
// unknown version, column counts that disagree with the header, or
// inconsistent columns. Frame-level corruption (torn frame, CRC
// mismatch) surfaces as ErrWALCorrupt instead; both mean "discard this
// body".
var ErrChunkWire = agg.ErrChunkWire

// ChunkWireSize returns the encoded size of a chunk with the given row
// count, framing included — what a client sizes its body buffer with.
func ChunkWireSize(rows int) int { return agg.ChunkWireSize(rows) }

// AppendChunkWire appends c's binary wire encoding to dst and returns
// the extended slice. Chunks encode back to back into one body (a chunk
// stream); a short value column is zero-extended on the wire. It panics
// on an invalid chunk (Validate) — encoding one is a programming error.
//
// Wire format (DESIGN.md §1.2k): each chunk is a WAL-framed sequence —
// a "MAGC" header frame carrying version and row count, then the key
// column's frames and the value column's, each frame at most 4 MiB.
// Every frame is CRC32C-checksummed, so a torn or corrupt body is
// detected at the frame where it breaks, never mis-read.
func AppendChunkWire(dst []byte, c Chunk) []byte { return agg.AppendChunkWire(dst, c) }

// ReadChunk reads one wire chunk from br. Both returned columns are
// freshly allocated and full length — safe to hand straight to
// AppendOwnedChunk. io.EOF means a clean end of the chunk stream
// (nothing read); any torn frame, CRC mismatch, or structural violation
// returns an error wrapping ErrWALCorrupt or ErrChunkWire.
func ReadChunk(br *bufio.Reader) (Chunk, error) { return agg.ReadChunk(br) }

// DecodeChunkWire decodes the first wire chunk in src, returning it and
// the bytes consumed — the buffer-at-once form of ReadChunk.
func DecodeChunkWire(src []byte) (Chunk, int, error) { return agg.DecodeChunkWire(src) }
