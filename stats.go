package memagg

import (
	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/obs"
)

// PhaseStat is one engine×phase row of the recorded phase metrics: how
// often the phase ran and its summed duration. Phases follow the paper's
// Section 3 conventions — build (folding records into the structure),
// merge (combining per-worker state, where the design has any), iterate
// (reading the result out).
type PhaseStat struct {
	Engine     string
	Phase      string
	Count      uint64
	TotalNanos int64
}

// ArenaStats reports the allocation layer (Dimension 6): how much chunk
// memory the arenas pulled from the heap versus how often a reset recycled
// it for free.
type ArenaStats struct {
	Chunks     uint64
	ChunkBytes uint64
	Resets     uint64
}

// ProcessStats is the process-wide observability report: every engine
// phase series recorded so far plus the arena accounting. The same numbers
// serve in Prometheus form on cmd/aggserve's /metrics.
type ProcessStats struct {
	// TimingDisabled reports whether the timing instruments are off
	// (counters still record; see the obs overhead guard).
	TimingDisabled bool
	EnginePhases   []PhaseStat
	Arena          ArenaStats
}

// Stats returns the process-wide observability report.
func Stats() ProcessStats {
	phases := agg.PhaseStats()
	out := make([]PhaseStat, len(phases))
	for i, p := range phases {
		out[i] = PhaseStat{Engine: p.Engine, Phase: p.Phase, Count: p.Count, TotalNanos: p.TotalNanos}
	}
	ar := arena.ReadStats()
	return ProcessStats{
		TimingDisabled: obs.Disabled(),
		EnginePhases:   out,
		Arena:          ArenaStats{Chunks: ar.Chunks, ChunkBytes: ar.ChunkBytes, Resets: ar.Resets},
	}
}

// BackendStats is one Aggregator's slice of the phase metrics: the series
// recorded for its engine, across every Aggregator sharing that backend
// (phase metrics are per engine name, process-wide).
type BackendStats struct {
	Backend Backend
	Phases  []PhaseStat
}

// Stats reports the recorded phase timings for this aggregator's engine.
func (a *Aggregator) Stats() BackendStats {
	name := a.engine.Name()
	st := BackendStats{Backend: a.backend}
	for _, p := range agg.PhaseStats() {
		if p.Engine == name {
			st.Phases = append(st.Phases, PhaseStat(p))
		}
	}
	return st
}

// HistogramBucket is one bucket of a latency distribution: the count of
// observations at or below UpperNanos (non-cumulative; UpperNanos -1 is
// the overflow bucket).
type HistogramBucket struct {
	UpperNanos int64
	Count      uint64
}

// LatencyStats is a typed copy of one latency histogram: observation count,
// summed nanoseconds, and the non-empty buckets.
type LatencyStats struct {
	Count      uint64
	TotalNanos uint64
	Buckets    []HistogramBucket
}

func toLatency(s obs.HistogramSnapshot) LatencyStats {
	out := LatencyStats{Count: s.Count, TotalNanos: s.SumNano}
	for i, c := range s.Buckets {
		if c > 0 {
			out.Buckets = append(out.Buckets, HistogramBucket{UpperNanos: obs.BucketBound(i), Count: c})
		}
	}
	return out
}

// StreamMetrics is a Stream's full observability report: the counter-level
// Stats plus the ingest and merge latency distributions — the typed form
// of what the stream's /metrics families serve.
type StreamMetrics struct {
	StreamStats

	// AppendLatency distributes Append call durations (copy, hand-off, any
	// backpressure wait); MergeLatency distributes merge-cycle durations.
	// Both are empty while timing is disabled (obs.SetDisabled); the
	// counters in StreamStats record regardless.
	AppendLatency LatencyStats
	MergeLatency  LatencyStats
}

// Metrics reports the stream's counters and latency distributions. Safe
// from any goroutine.
func (s *Stream) Metrics() StreamMetrics {
	return StreamMetrics{
		StreamStats:   s.Stats(),
		AppendLatency: toLatency(s.s.AppendLatency()),
		MergeLatency:  toLatency(s.s.MergeLatency()),
	}
}
