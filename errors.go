package memagg

import (
	"errors"
	"fmt"

	"memagg/internal/agg"
	"memagg/internal/cview"
	"memagg/internal/stream"
	"memagg/internal/wal"
)

// Sentinel errors. Constructors and queries return errors that wrap these,
// so callers branch with errors.Is instead of string matching:
//
//	if _, err := memagg.New(b, opts); errors.Is(err, memagg.ErrUnknownBackend) { ... }
var (
	// ErrUnknownBackend reports a Backend no constructor recognises —
	// returned (wrapped) by New for a name outside Backends() and by
	// NewIndex for a non-tree backend.
	ErrUnknownBackend = errors.New("memagg: unknown backend")

	// ErrUnknownAllocator reports an Options.Allocator outside Allocators().
	ErrUnknownAllocator = errors.New("memagg: unknown allocator")

	// ErrUnsupportedQuery reports a query the chosen backend cannot
	// execute (hash backends answering Median or CountRange, holistic
	// queries on a distributive stream). It is the same value as
	// ErrUnsupported, under the name the rest of the error set uses.
	ErrUnsupportedQuery = agg.ErrUnsupported

	// ErrClosed reports an Append, Flush or repeated Close on a closed
	// Stream. Identical to ErrStreamClosed.
	ErrClosed = stream.ErrClosed

	// ErrDurability reports that a durable Stream's write-ahead log failed:
	// the stream has degraded to read-only serving, and Append/Flush return
	// errors wrapping this sentinel (with the underlying fault attached).
	ErrDurability = stream.ErrDurability

	// ErrWALCorrupt marks invalid durable state — a torn or bit-flipped
	// WAL record (repaired automatically: recovery truncates to the longest
	// valid prefix) or a damaged checkpoint (OpenStream fails rather than
	// serve wrong aggregates).
	ErrWALCorrupt = wal.ErrWALCorrupt

	// ErrViewExists reports a RegisterView with a name already registered.
	ErrViewExists = cview.ErrExists

	// ErrUnknownView reports a View/ViewStatus of a name never registered
	// (or since dropped).
	ErrUnknownView = cview.ErrUnknown

	// ErrBadView reports an invalid ViewSpec (bad name, zero pane width,
	// pane count out of range, unknown query spelling or parameter).
	ErrBadView = cview.ErrBadSpec
)

// QueryError reports a query an Aggregator's backend cannot execute,
// carrying which backend and which query for error reports that span many
// backends (the harness, the HTTP server). It wraps ErrUnsupportedQuery:
// errors.Is(err, memagg.ErrUnsupportedQuery) holds.
type QueryError struct {
	Backend Backend
	Query   string
	Err     error
}

func (e *QueryError) Error() string {
	return fmt.Sprintf("memagg: %s on backend %s: %v", e.Query, e.Backend, e.Err)
}

func (e *QueryError) Unwrap() error { return e.Err }

// queryErr wraps an engine error in a QueryError naming this aggregator's
// backend.
func (a *Aggregator) queryErr(query string, err error) error {
	return &QueryError{Backend: a.backend, Query: query, Err: err}
}

// wrapped pairs a sentinel with a free-form message: errors.Is matches the
// sentinel while the message stays exactly what the call site wants (the
// sentinel text need not be a prefix of it, which fmt.Errorf("%w ...")
// would require).
type wrapped struct {
	msg string
	err error
}

func (e *wrapped) Error() string { return e.msg }
func (e *wrapped) Unwrap() error { return e.err }

func wrapErr(sentinel error, format string, args ...any) error {
	return &wrapped{msg: fmt.Sprintf(format, args...), err: sentinel}
}
