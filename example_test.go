package memagg_test

import (
	"fmt"

	"memagg"
)

// The basic group-by count: Q1 of the paper.
func ExampleAggregator_CountByKey() {
	agg, _ := memagg.New(memagg.Spreadsort, memagg.Options{})
	keys := []uint64{3, 1, 3, 2, 3, 1}
	for _, row := range agg.CountByKey(keys) { // sort backend: key-ordered
		fmt.Println(row.Key, row.Count)
	}
	// Output:
	// 1 2
	// 2 1
	// 3 3
}

// A holistic aggregate: per-group median (Q3).
func ExampleAggregator_MedianByKey() {
	agg, _ := memagg.New(memagg.Spreadsort, memagg.Options{})
	keys := []uint64{1, 1, 1, 2, 2}
	vals := []uint64{10, 30, 20, 5, 7}
	for _, row := range agg.MedianByKey(keys, vals) {
		fmt.Println(row.Key, row.Value)
	}
	// Output:
	// 1 20
	// 2 6
}

// Range-restricted counting (Q7) needs an ordered backend.
func ExampleAggregator_CountRange() {
	agg, _ := memagg.New(memagg.Btree, memagg.Options{})
	keys := []uint64{5, 6, 7, 8, 6, 7}
	rows, _ := agg.CountRange(keys, 6, 7)
	for _, row := range rows {
		fmt.Println(row.Key, row.Count)
	}
	// Output:
	// 6 2
	// 7 2
}

// The paper's Figure 12 decision flow chart as a function.
func ExampleRecommend() {
	advice := memagg.Recommend(memagg.Workload{
		Output:   memagg.Vector,
		Function: memagg.Holistic,
	})
	fmt.Println(advice.Backend)
	// Output:
	// Spreadsort
}

// A reusable index (write once, read many): build once, query repeatedly.
func ExampleIndex() {
	ix, _ := memagg.NewIndex(memagg.Btree)
	ix.Add([]uint64{10, 20, 20, 30, 30, 30})
	med, _ := ix.Median()
	fmt.Println("median:", med)
	for _, row := range ix.CountRange(20, 30) {
		fmt.Println(row.Key, row.Count)
	}
	// Output:
	// median: 25
	// 20 2
	// 30 3
}

// String group-by keys with prefix filtering.
func ExampleStringAggregator() {
	agg, _ := memagg.NewStrings(memagg.StrART)
	words := []string{"go", "gopher", "go", "rust", "gopher", "go"}
	rows, _ := agg.CountByPrefix(words, "go")
	for _, row := range rows {
		fmt.Println(row.Key, row.Count)
	}
	// Output:
	// go 3
	// gopher 2
}
