package memagg

import (
	"sort"
	"testing"
)

func TestIndexBackendsOnly(t *testing.T) {
	for _, b := range []Backend{ART, Judy, Btree} {
		if _, err := NewIndex(b); err != nil {
			t.Fatalf("NewIndex(%s): %v", b, err)
		}
	}
	for _, b := range []Backend{HashLP, Spreadsort, "bogus"} {
		if _, err := NewIndex(b); err == nil {
			t.Fatalf("NewIndex(%s) should fail", b)
		}
	}
}

func TestIndexIncrementalMatchesOneShot(t *testing.T) {
	keys, _ := Generate(Zipf, 30000, 500, 11)
	oneShot, _ := New(Btree, Options{})
	want := oneShot.CountByKey(keys)

	for _, b := range []Backend{ART, Judy, Btree} {
		ix, _ := NewIndex(b)
		// Feed in three uneven batches plus single records.
		ix.Add(keys[:10000])
		ix.Add(keys[10000:29990])
		for _, k := range keys[29990:] {
			ix.AddRecord(k)
		}
		if ix.Records() != uint64(len(keys)) {
			t.Fatalf("%s: Records=%d", b, ix.Records())
		}
		got := ix.Counts()
		if len(got) != len(want) {
			t.Fatalf("%s: %d groups want %d", b, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: row %d = %v want %v", b, i, got[i], want[i])
			}
		}
		if ix.Groups() != len(want) {
			t.Fatalf("%s: Groups=%d", b, ix.Groups())
		}
	}
}

func TestIndexRepeatedRangeQueries(t *testing.T) {
	keys, _ := Generate(Rseq, 10000, 100, 1)
	ix, _ := NewIndex(Btree)
	ix.Add(keys)
	for _, rg := range [][2]uint64{{1, 100}, {10, 19}, {50, 50}, {101, 200}, {20, 10}} {
		rows := ix.CountRange(rg[0], rg[1])
		want := 0
		if rg[0] <= rg[1] {
			for k := rg[0]; k <= rg[1] && k <= 100; k++ {
				if k >= 1 {
					want++
				}
			}
		}
		if len(rows) != want {
			t.Fatalf("range %v: %d rows want %d", rg, len(rows), want)
		}
		for _, r := range rows {
			if r.Count != 100 {
				t.Fatalf("range %v: key %d count %d", rg, r.Key, r.Count)
			}
		}
	}
}

func TestIndexMedianAndQuantile(t *testing.T) {
	keys, _ := Generate(RseqShf, 100001, 1000, 5)
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	for _, b := range []Backend{ART, Judy, Btree} {
		ix, _ := NewIndex(b)
		ix.Add(keys)
		med, ok := ix.Median()
		if !ok {
			t.Fatalf("%s: empty median", b)
		}
		wantMed := float64(sorted[len(sorted)/2]) // odd count
		if med != wantMed {
			t.Fatalf("%s: median %v want %v", b, med, wantMed)
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
			got, ok := ix.Quantile(q)
			if !ok {
				t.Fatalf("%s: quantile not found", b)
			}
			want := sorted[int(q*float64(len(sorted)-1))]
			if got != want {
				t.Fatalf("%s: q%.2f = %d want %d", b, q, got, want)
			}
		}
	}
}

func TestIndexEmpty(t *testing.T) {
	ix, _ := NewIndex(Judy)
	if _, ok := ix.Median(); ok {
		t.Fatal("median on empty index")
	}
	if _, ok := ix.Quantile(0.5); ok {
		t.Fatal("quantile on empty index")
	}
	if rows := ix.Counts(); len(rows) != 0 {
		t.Fatal("counts on empty index")
	}
}

func TestIndexEvenCountMedian(t *testing.T) {
	ix, _ := NewIndex(Btree)
	ix.Add([]uint64{1, 2, 3, 4})
	med, ok := ix.Median()
	if !ok || med != 2.5 {
		t.Fatalf("median = %v", med)
	}
}
