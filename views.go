package memagg

import (
	"memagg/internal/agg"
	"memagg/internal/cview"
)

// ViewSpec defines a continuous view: a named standing query maintained
// incrementally over a tumbling or sliding window of the stream, in
// watermark (arrival) order. Reading a view costs a merge of its live
// panes — or a pointer load when nothing sealed since the last read —
// instead of a recompute over the window's rows.
type ViewSpec struct {
	// Name identifies the view; non-empty, no '/', at most 128 bytes.
	Name string

	// Query is the standing query by its /v1/query spelling: q1..q7 (or
	// count_by_key, avg_by_key, median_by_key, count, avg, median, range),
	// sum, min, max, quantile, mode. Holistic spellings (q3, quantile,
	// mode) require a holistic stream.
	Query string

	// P is the quantile parameter for Query == "quantile", in [0, 1].
	P float64

	// Lo and Hi bound Query == "q7"/"range" (inclusive).
	Lo, Hi uint64

	// PaneRows is the pane width in watermark rows: pane p covers rows
	// whose visibility watermark lies in (p*PaneRows, (p+1)*PaneRows].
	PaneRows uint64

	// Panes is the window length in panes, in [1, 65536].
	Panes int

	// Sliding selects the window kind: a sliding window always covers the
	// last Panes panes; a tumbling window accumulates the current
	// Panes-pane bucket and drops it whole when the next bucket opens.
	Sliding bool
}

// ViewInfo is a point-in-time description of one continuous view.
type ViewInfo struct {
	Name     string `json:"name"`
	Query    string `json:"query"` // canonical spelling, parameters included
	PaneRows uint64 `json:"pane_rows"`
	Panes    int    `json:"panes"`
	Sliding  bool   `json:"sliding"`

	// StartWatermark is the registration watermark: rows sealed at or
	// below it stay out of every window. Watermark is the last seal the
	// view absorbed.
	StartWatermark uint64 `json:"start_watermark"`
	Watermark      uint64 `json:"watermark"`

	PanesLive    int    `json:"panes_live"`
	PanesEvicted uint64 `json:"panes_evicted"`

	// Version bumps on every pane fold and eviction; with Watermark it
	// keys result caching and HTTP ETags.
	Version uint64 `json:"version"`

	// Truncated reports the window currently overlaps rows a restart
	// could not replay (the WAL was truncated past the view's saved
	// panes); it clears once the window slides past the gap.
	Truncated bool `json:"truncated"`
}

// ViewResult is one evaluation of a view's standing query over its
// current window. Vector results share memory across reads of an
// unchanged view — treat them as read-only.
type ViewResult struct {
	Name  string `json:"name"`
	Query string `json:"query"`

	// The result covers exactly the rows whose visibility watermark lies
	// in (WindowStart, WindowEnd].
	WindowStart uint64 `json:"window_start"`
	WindowEnd   uint64 `json:"window_end"`

	PanesLive int    `json:"panes_live"`
	Rows      uint64 `json:"rows"`
	Groups    int    `json:"groups"`
	Version   uint64 `json:"version"`
	Truncated bool   `json:"truncated"`

	// Value is the query result, by query family: []GroupCount (q1, q7),
	// []GroupValue (q2, q3, quantile, mode), []GroupStat (sum/min/max),
	// uint64 (q4), or float64 (q5, q6).
	Value any `json:"value"`
}

// RegisterView registers a continuous view starting at the current
// watermark: rows already sealed stay out of every window, rows sealed
// after flow in — registration mid-ingest never double-counts. Returns
// ErrViewExists for a duplicate name, ErrBadView for an invalid spec, and
// ErrUnsupportedQuery for a holistic query on a distributive stream. On a
// durable stream the definition persists immediately; pane state rides on
// checkpoints and Close, with the WAL suffix replayed through the same
// fold path on restart.
func (s *Stream) RegisterView(v ViewSpec) error {
	q, err := cview.ParseQuery(v.Query, v.P, v.Lo, v.Hi)
	if err != nil {
		return err
	}
	return s.s.RegisterView(cview.Spec{
		Name:     v.Name,
		Query:    q,
		PaneRows: v.PaneRows,
		Panes:    v.Panes,
		Sliding:  v.Sliding,
	})
}

// View evaluates one continuous view's standing query over its current
// window. The result is identical to the matching snapshot query over
// exactly the window's rows; reads of an unchanged view are served from
// the view's cache.
func (s *Stream) View(name string) (*ViewResult, error) {
	res, err := s.s.ViewResult(name)
	if err != nil {
		return nil, err
	}
	return toViewResult(res), nil
}

// DropView removes a continuous view, reporting whether it existed.
func (s *Stream) DropView(name string) bool { return s.s.DropView(name) }

// Views describes every registered continuous view, sorted by name.
func (s *Stream) Views() []ViewInfo {
	infos := s.s.Views()
	out := make([]ViewInfo, len(infos))
	for i, in := range infos {
		out[i] = toViewInfo(in)
	}
	return out
}

// ViewStatus describes one continuous view without evaluating it.
func (s *Stream) ViewStatus(name string) (ViewInfo, error) {
	in, err := s.s.ViewInfo(name)
	if err != nil {
		return ViewInfo{}, err
	}
	return toViewInfo(in), nil
}

func toViewInfo(in cview.Info) ViewInfo {
	return ViewInfo{
		Name:           in.Spec.Name,
		Query:          in.Spec.Query.String(),
		PaneRows:       in.Spec.PaneRows,
		Panes:          in.Spec.Panes,
		Sliding:        in.Spec.Sliding,
		StartWatermark: in.StartWatermark,
		Watermark:      in.Watermark,
		PanesLive:      in.PanesLive,
		PanesEvicted:   in.PanesEvicted,
		Version:        in.Version,
		Truncated:      in.Truncated,
	}
}

func toViewResult(res *cview.Result) *ViewResult {
	out := &ViewResult{
		Name:        res.Name,
		Query:       res.Query.String(),
		WindowStart: res.WindowStart,
		WindowEnd:   res.WindowEnd,
		PanesLive:   res.PanesLive,
		Rows:        res.Rows,
		Groups:      res.Groups,
		Version:     res.Version,
		Truncated:   res.Truncated,
	}
	switch v := res.Value.(type) {
	case []agg.GroupCount:
		out.Value = toCounts(v)
	case []agg.GroupFloat:
		out.Value = toValues(v)
	case []agg.GroupUint:
		out.Value = toStats(v)
	default:
		out.Value = res.Value // uint64 (q4) or float64 (q5, q6)
	}
	return out
}
