package memagg

import (
	"errors"
	"sort"
	"testing"
)

func TestAllBackendsConstruct(t *testing.T) {
	for _, b := range Backends() {
		a, err := New(b, Options{Threads: 2})
		if err != nil {
			t.Fatalf("New(%s): %v", b, err)
		}
		if a.Backend() != b {
			t.Fatalf("Backend() = %s want %s", a.Backend(), b)
		}
	}
	if _, err := New("bogus", Options{}); err == nil {
		t.Fatal("bogus backend accepted")
	}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	keys, err := Generate(Zipf, 20000, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	vals := GenerateValues(len(keys), 7)

	ref := map[uint64]uint64{}
	for _, k := range keys {
		ref[k]++
	}

	for _, b := range Backends() {
		a, err := New(b, Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		rows := a.CountByKey(keys)
		if len(rows) != len(ref) {
			t.Fatalf("%s: %d groups want %d", b, len(rows), len(ref))
		}
		for _, r := range rows {
			if ref[r.Key] != r.Count {
				t.Fatalf("%s: key %d count %d want %d", b, r.Key, r.Count, ref[r.Key])
			}
		}
		if got := a.Count(keys); got != uint64(len(keys)) {
			t.Fatalf("%s: Count = %d", b, got)
		}
		av := a.AvgByKey(keys, vals)
		md := a.MedianByKey(keys, vals)
		if len(av) != len(ref) || len(md) != len(ref) {
			t.Fatalf("%s: Q2/Q3 group counts wrong", b)
		}
	}
}

func TestMedianAndRangeSupportMatrix(t *testing.T) {
	keys, _ := Generate(Rseq, 10000, 100, 1)
	hashBackends := map[Backend]bool{
		HashSC: true, HashLP: true, HashSparse: true, HashDense: true,
		HashLC: true, HashTBBSC: true, HashPLAT: true, HashRX: true,
		HashGLB: true,
	}
	for _, b := range Backends() {
		a, _ := New(b, Options{})
		_, merr := a.Median(keys)
		_, rerr := a.CountRange(keys, 10, 50)
		if hashBackends[b] {
			if !errors.Is(merr, ErrUnsupported) || !errors.Is(rerr, ErrUnsupported) {
				t.Fatalf("%s: hash backend should reject Q6/Q7 (got %v, %v)", b, merr, rerr)
			}
			continue
		}
		if merr != nil || rerr != nil {
			t.Fatalf("%s: Q6/Q7 failed: %v, %v", b, merr, rerr)
		}
	}
}

func TestCountRangeValues(t *testing.T) {
	keys, _ := Generate(Rseq, 10000, 100, 1) // keys 1..100, 100 each
	a, _ := New(Btree, Options{})
	rows, err := a.CountRange(keys, 10, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows want 10", len(rows))
	}
	for _, r := range rows {
		if r.Count != 100 {
			t.Fatalf("key %d count %d want 100", r.Key, r.Count)
		}
	}
}

func TestMedianValue(t *testing.T) {
	keys := []uint64{5, 1, 9, 3, 7}
	a, _ := New(Spreadsort, Options{})
	got, err := a.Median(keys)
	if err != nil || got != 5 {
		t.Fatalf("Median = %v, %v", got, err)
	}
}

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(Rseq, 0, 10, 1); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := Generate(MovC, 100, 10, 1); err == nil {
		t.Fatal("accepted MovC below window")
	}
	keys, err := Generate(Hhit, 1000, 50, 1)
	if err != nil || len(keys) != 1000 {
		t.Fatalf("Generate: %v", err)
	}
}

func TestOrderedBackendsSortTheirOutput(t *testing.T) {
	keys, _ := Generate(RseqShf, 5000, 200, 3)
	for _, b := range []Backend{ART, Judy, Btree, Introsort, Spreadsort, SortBI} {
		a, _ := New(b, Options{Threads: 2})
		rows := a.CountByKey(keys)
		if !sort.SliceIsSorted(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key }) {
			t.Fatalf("%s: output not key-ordered", b)
		}
	}
}

func TestRecommendFlowChart(t *testing.T) {
	cases := []struct {
		w    Workload
		want Backend
	}{
		// Scalar branch.
		{Workload{Output: Scalar, WriteOnceReadOnce: true}, Spreadsort},
		{Workload{Output: Scalar}, Judy},
		// Vector holistic branch.
		{Workload{Output: Vector, Function: Holistic}, Spreadsort},
		{Workload{Output: Vector, Function: Holistic, Multithreaded: true}, SortBI},
		// Vector distributive with range.
		{Workload{Output: Vector, RangeCondition: true, PrebuiltIndex: true}, Btree},
		{Workload{Output: Vector, RangeCondition: true}, ART},
		// Vector distributive plain.
		{Workload{Output: Vector}, HashLP},
		{Workload{Output: Vector, Function: Algebraic}, HashLP},
		{Workload{Output: Vector, Multithreaded: true}, HashTBBSC},
		// A known estimated cardinality splits the multithreaded vector
		// branch at the measured ~64Ki-group crossover: the global shared
		// table below it, the radix-partitioned engine at and above it.
		// Unknown cardinality keeps the paper's Hash_TBBSC route.
		{Workload{Output: Vector, Multithreaded: true, EstimatedGroups: 1 << 20}, HashRX},
		{Workload{Output: Vector, Function: Algebraic, Multithreaded: true, EstimatedGroups: 1 << 16}, HashRX},
		{Workload{Output: Vector, Multithreaded: true, EstimatedGroups: 1 << 10}, HashGLB},
		{Workload{Output: Vector, Function: Algebraic, Multithreaded: true, EstimatedGroups: (1 << 16) - 1}, HashGLB},
		{Workload{Output: Vector, EstimatedGroups: 1 << 20}, HashLP},
	}
	for i, c := range cases {
		got := Recommend(c.w)
		if got.Backend != c.want {
			t.Errorf("case %d: Recommend = %s want %s", i, got.Backend, c.want)
		}
		if got.Reason == "" {
			t.Errorf("case %d: empty reason", i)
		}
		// Every recommendation must be constructible.
		if _, err := New(got.Backend, Options{}); err != nil {
			t.Errorf("case %d: recommended unknown backend %s", i, got.Backend)
		}
	}
}

func TestExtendedByKeyQueries(t *testing.T) {
	keys, _ := Generate(Zipf, 20000, 300, 9)
	vals := GenerateValues(len(keys), 9)
	// Reference.
	sum := map[uint64]uint64{}
	min := map[uint64]uint64{}
	max := map[uint64]uint64{}
	seen := map[uint64]bool{}
	for i, k := range keys {
		v := vals[i]
		sum[k] += v
		if !seen[k] || v < min[k] {
			min[k] = v
		}
		if !seen[k] || v > max[k] {
			max[k] = v
		}
		seen[k] = true
	}
	for _, b := range []Backend{HashLP, Btree, Spreadsort, HashPLAT, Adaptive, SortBI} {
		a, err := New(b, Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range a.SumByKey(keys, vals) {
			if sum[r.Key] != r.Value {
				t.Fatalf("%s: SumByKey key %d = %d want %d", b, r.Key, r.Value, sum[r.Key])
			}
		}
		for _, r := range a.MinByKey(keys, vals) {
			if min[r.Key] != r.Value {
				t.Fatalf("%s: MinByKey key %d wrong", b, r.Key)
			}
		}
		for _, r := range a.MaxByKey(keys, vals) {
			if max[r.Key] != r.Value {
				t.Fatalf("%s: MaxByKey key %d wrong", b, r.Key)
			}
		}
		// Quantile(1.0) must equal the max; mode must be one of the values.
		maxQ := a.QuantileByKey(keys, vals, 1.0)
		for _, r := range maxQ {
			if uint64(r.Value) != max[r.Key] {
				t.Fatalf("%s: QuantileByKey(1.0) key %d = %v want %d", b, r.Key, r.Value, max[r.Key])
			}
		}
		if rows := a.ModeByKey(keys, vals); len(rows) != len(sum) {
			t.Fatalf("%s: ModeByKey group count wrong", b)
		}
	}
}

func TestStringAggregatorRoundTrip(t *testing.T) {
	keys := []string{"b", "a", "b", "c", "a", "b", ""}
	vals := []uint64{1, 2, 3, 4, 5, 6, 7}
	want := map[string]uint64{"a": 2, "b": 3, "c": 1, "": 1}
	for _, b := range StringBackends() {
		a, err := NewStrings(b)
		if err != nil {
			t.Fatal(err)
		}
		if a.Backend() != b {
			t.Fatalf("Backend() = %s", a.Backend())
		}
		rows := a.CountByKey(keys)
		if len(rows) != len(want) {
			t.Fatalf("%s: %d groups want %d", b, len(rows), len(want))
		}
		for _, r := range rows {
			if want[r.Key] != r.Count {
				t.Fatalf("%s: key %q count %d", b, r.Key, r.Count)
			}
		}
		if len(a.AvgByKey(keys, vals)) != len(want) || len(a.MedianByKey(keys, vals)) != len(want) {
			t.Fatalf("%s: avg/median group counts wrong", b)
		}
		m, err := a.MedianKey(keys)
		if errors.Is(err, ErrUnsupported) {
			if b != StrHashLP && b != StrHashSC {
				t.Fatalf("%s rejected MedianKey", b)
			}
		} else if m != "b" { // sorted: "", a, a, b, b, b, c → index 3
			t.Fatalf("%s: median key %q want b", b, m)
		}
		pr, err := a.CountByPrefix(keys, "b")
		if errors.Is(err, ErrUnsupported) {
			continue
		}
		if len(pr) != 1 || pr[0].Count != 3 {
			t.Fatalf("%s: prefix count %v", b, pr)
		}
	}
	if _, err := NewStrings("bogus"); err == nil {
		t.Fatal("bogus string backend accepted")
	}
}
