package memagg

import (
	"errors"
	"sync"
	"testing"
)

// The error taxonomy must both keep its byte-exact messages (callers match
// on them today) and classify via errors.Is/As.
func TestTypedErrors(t *testing.T) {
	if _, err := New("nope", Options{}); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("New(nope) err = %v; want ErrUnknownBackend", err)
	} else if got, want := err.Error(), `memagg: unknown backend "nope"`; got != want {
		t.Fatalf("New(nope) message = %q; want %q", got, want)
	}

	if _, err := New(HashLP, Options{Allocator: "slab"}); !errors.Is(err, ErrUnknownAllocator) {
		t.Fatalf("New(bad allocator) err = %v; want ErrUnknownAllocator", err)
	} else if got, want := err.Error(), `memagg: unknown allocator "slab"`; got != want {
		t.Fatalf("allocator message = %q; want %q", got, want)
	}

	// NewIndex on a non-tree backend is also an unknown-backend failure.
	if _, err := NewIndex(HashLP); !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("NewIndex(Hash_LP) err = %v; want ErrUnknownBackend", err)
	}

	// A distributive backend cannot answer Median: the failure carries the
	// sentinel plus the backend/query context.
	a, err := New(HashLP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Median([]uint64{1, 2, 3})
	if !errors.Is(err, ErrUnsupportedQuery) {
		t.Fatalf("Median err = %v; want ErrUnsupportedQuery", err)
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("Median err = %T; want *QueryError", err)
	}
	if qe.Backend != HashLP || qe.Query != "Median" {
		t.Fatalf("QueryError = %+v; want backend Hash_LP, query Median", qe)
	}
	// Back-compat: the old sentinel name still matches.
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Median err = %v; want ErrUnsupported (legacy alias)", err)
	}
}

func TestStreamCloseIdempotent(t *testing.T) {
	s := NewStream(StreamOptions{Shards: 2, SealRows: 8})
	if err := s.Close(); err != nil {
		t.Fatalf("first Close = %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v; want ErrClosed", err)
	}
	if err := s.Append([]uint64{1}, []uint64{1}); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Append after Close = %v; want ErrStreamClosed", err)
	}
}

// Concurrent Close racing Append must never panic; each Append either
// lands or reports ErrClosed.
func TestStreamCloseDuringAppends(t *testing.T) {
	s := NewStream(StreamOptions{Shards: 2, SealRows: 16})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			keys := []uint64{1, 2, 3, 4}
			vals := []uint64{1, 1, 1, 1}
			for i := 0; i < 500; i++ {
				if err := s.Append(keys, vals); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("Append = %v", err)
					}
					return
				}
			}
		}()
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	wg.Wait()
}

func TestAggregatorAndProcessStats(t *testing.T) {
	a, err := New(HashLP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.CountByKey([]uint64{1, 2, 2, 3})

	st := a.Stats()
	if st.Backend != HashLP {
		t.Fatalf("Stats().Backend = %v", st.Backend)
	}
	var build bool
	for _, p := range st.Phases {
		if p.Engine != "Hash_LP" {
			t.Fatalf("foreign engine %q in backend stats", p.Engine)
		}
		if p.Phase == "build" && p.Count > 0 && p.TotalNanos > 0 {
			build = true
		}
	}
	if !build {
		t.Fatalf("no recorded build phase for Hash_LP: %+v", st.Phases)
	}

	ps := Stats()
	if ps.TimingDisabled {
		t.Fatal("timing reported disabled in default configuration")
	}
	found := false
	for _, p := range ps.EnginePhases {
		if p.Engine == "Hash_LP" && p.Phase == "build" {
			found = true
		}
	}
	if !found {
		t.Fatalf("process stats missing Hash_LP build: %+v", ps.EnginePhases)
	}
}

func TestStreamMetrics(t *testing.T) {
	s := NewStream(StreamOptions{Shards: 2, SealRows: 4})
	defer s.Close()
	for i := 0; i < 3; i++ {
		if err := s.Append([]uint64{1, 2, 3, 4}, []uint64{1, 1, 1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Ingested != 12 || m.Batches != 3 {
		t.Fatalf("metrics counters = ingested %d batches %d; want 12, 3", m.Ingested, m.Batches)
	}
	if m.AppendLatency.Count != 3 {
		t.Fatalf("AppendLatency.Count = %d; want 3", m.AppendLatency.Count)
	}
	var sum uint64
	for _, b := range m.AppendLatency.Buckets {
		sum += b.Count
	}
	if sum != m.AppendLatency.Count {
		t.Fatalf("bucket counts sum to %d; histogram count %d", sum, m.AppendLatency.Count)
	}
	if s.MetricsRegistry() == nil {
		t.Fatal("MetricsRegistry() = nil")
	}
}
