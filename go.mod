module memagg

go 1.22
