#!/bin/sh
# CI gate. Tier 1 first (build + full test suite), then the race-detector
# pass over the aggregation engines: the concurrent designs — including
# Hash_RX's two-phase radix schedule and the internal/radix partitioner it
# drives — must be data-race-free, not just correct.
set -eux

go build ./...
go vet ./...
go test ./...

go test -race ./internal/agg/... ./internal/radix/... ./internal/morsel/... ./internal/hashtbl/...

# The global shared-table engine's whole correctness story is concurrent:
# CAS-claimed slots, atomic lane folds, growth at batch boundaries. The
# dedicated contended-upsert test and the parallel-vs-serial equivalence
# gate are pinned by name so a rename can't silently drop them from the
# race pass above.
go test -race -run 'TestConcurrentParallelUpsertRace' -count=1 -v ./internal/hashtbl
go test -race -run 'TestGLBParallelReduceMatchesSerial|TestGLBParallelShortValsAndZeroKey' -count=1 -v ./internal/agg

# The streaming subsystem's whole design is concurrent (sharded writers,
# background merger, lock-free snapshot pinning), so its entire suite —
# including the stream-vs-batch equivalence gate — runs under the race
# detector.
go test -race ./internal/stream/...

# Allocs-regression smoke check: the arena-backed holistic Q3 must stay
# within its recorded allocs/op budget (and keep its >=10x margin over the
# go-runtime allocator) — for the serial engines and for Hash_GLB's
# buffer-and-replay holistic path. Catches per-row/per-group allocations
# creeping back into the monomorphized build kernels.
go test -run 'TestQ3AllocBudget|TestGLBAllocBudget' -count=1 ./internal/agg

# Observability overhead guard: the always-on instrumentation in the
# stream ingest hot path must cost <5% vs the timing-disabled baseline
# (DESIGN.md budget: <2%; the guard allows 5% for scheduler noise). The
# test self-skips without the env var so plain `go test ./...` stays
# deterministic.
MEMAGG_OBS_GUARD=1 go test -run 'TestObsOverheadGuard' -count=1 -v ./internal/stream

# Durability subsystem: the WAL and checkpoint packages are exercised by
# concurrent writers (group commit under the view lock, background
# checkpointer, fault-injection trips from any goroutine), so their whole
# suite runs under the race detector, and the kill-and-replay equivalence
# gate — hard-kill via fault injection at arbitrary points, reopen,
# Q1-Q7 must match a never-crashed reference at the recovered watermark —
# is pinned by name so a test rename can't silently drop it.
go test -race ./internal/wal/...
go test -race -run 'TestCrashRecoveryEquivalence|TestCorruptTailRecoversPrefix|FuzzWALRecovery' -count=1 -v ./internal/stream

# WAL overhead guard: with SyncPolicy=none the durable ingest path (raw-row
# mirror, record encode, CRC32C, buffered write) must stay within 15% of a
# fully volatile stream. Same env-gate discipline as the obs guard.
MEMAGG_WAL_GUARD=1 go test -run 'TestWALOverheadGuard' -count=1 -v ./internal/stream

# Snapshot query path: the parallel-vs-serial equivalence gate (Q1-Q7 plus
# quantile/mode byte-equal across worker counts and fold cutoffs against a
# serial reference) and the result-cache contracts (single-flight,
# watermark isolation, eviction) are pinned by name under the race
# detector — the fold single-flight, offset-writing kernels, and cache all
# run concurrently in production.
go test -race -run 'TestQueryParallelSerialEquivalence|TestQueryConcurrentSnapshots|TestQueryCache' -count=1 -v ./internal/stream

# Query overhead guard: the partition-parallel query path at 1 worker must
# stay within 20% of the plain serial path — the morsel dispatch and
# offset bookkeeping may not tax the default single-worker configuration.
MEMAGG_QUERY_GUARD=1 go test -run 'TestQueryOverheadGuard' -count=1 -v ./internal/stream

# Clustered serving: the router, breaker, wire codec, and scatter-gather
# merge are exercised by concurrent producers against live HTTP nodes, so
# the whole package runs under the race detector — and the cluster
# equivalence gate (3 nodes fed concurrently through the router must
# answer Q1-Q7 plus quantile/mode identical to one local stream) and the
# kill-one-worker gate (breaker trips, typed partial-availability errors,
# no hangs) are pinned by name so a rename can't silently drop them.
go test -race ./internal/cluster/...
go test -race -run 'TestClusterEquivalence|TestClusterKillTripsBreaker' -count=1 -v ./internal/cluster
# Consistent-hash movement bound: adding a node to N must move <= K/N keys.
go test -race -run 'TestRingMovementOnAdd' -count=1 -v ./internal/chash

# Columnar chunk ingest (binary wire + zero-copy path). The fuzz harness
# replays its checked-in seed corpus (decode -> re-encode -> identical, or
# a typed error) as part of the package suite; it is pinned by name here so
# a rename can't drop the corpus replay. The content-negotiation gates then
# prove JSON-fed and binary-fed servers answer bit-identical Q1-Q7 (plus
# quantile/mode) — single node and the 3-node scatter path — under the
# race detector, with the ownership-transfer pool recycling exercised
# concurrently.
go test -race -run 'FuzzChunkWire|TestChunkWire|TestChunkStream' -count=1 -v ./internal/agg
go test -race -run 'TestAppendChunkOwnedEquivalence|TestAppendChunkPoolRecycling' -count=1 -v ./internal/stream
go test -race -run 'TestIngestEquivalenceJSONBinary|TestClusterIngestEquivalence|TestIngestBinaryMultiChunkBody|TestIngestBinaryRejectsCorruptBody|TestVersionedPathAliases' -count=1 -v ./cmd/aggserve

# Ingest wire throughput guard: binary chunk ingest must not be slower
# than JSON ingest for the same rows through the same server (the -exp
# ingestwire sweep records the actual gap; this only pins the sign).
MEMAGG_INGEST_GUARD=1 go test -run 'TestIngestThroughputGuard' -count=1 -v ./cmd/aggserve

# Continuous views (internal/cview). The whole package runs under the race
# detector, then the stream-level gates are pinned by name so a rename
# can't silently drop them: window-vs-batch equivalence (every query
# family x window shape must reflect.DeepEqual the batch recompute over
# exactly the window's rows, holistic quantile/mode included), a seal
# landing exactly on a pane boundary, sliding reads racing evictions,
# mid-ingest registration without double-counting, and restart recovery
# in both death modes (hard kill -> WAL-suffix replay, graceful close ->
# PANES snapshot), plus the HTTP CRUD/ETag surface.
go test -race ./internal/cview/...
go test -race -run 'TestCViewBatchEquivalence|TestCViewPaneBoundary|TestCViewEvictionRace|TestCViewRegisterMidIngest|TestCViewRestartReplay|TestCViewDefinitionsPersist' -count=1 -v ./internal/stream
go test -race -run 'TestViewCRUD|TestViewResultETag|TestViewHolisticGate' -count=1 -v ./cmd/aggserve

# Continuous-view overhead guard: ingest with 4 registered views must stay
# within 10% of the same ingest with none — deferred pane maintenance
# keeps the seal path O(1) per view (the -exp cview sweep records what
# reads cost; this pins what ingest pays).
MEMAGG_CVIEW_GUARD=1 go test -run 'TestCViewOverheadGuard' -count=1 -v ./internal/stream
