// Package memagg is an in-memory aggregation library: a complete, tested
// Go implementation of every algorithm, dataset, and experiment from
// "A Six-dimensional Analysis of In-memory Aggregation" (Memarzia, Ray,
// Bhavsar — EDBT 2019).
//
// The package exposes:
//
//   - Aggregator — group-by aggregation (COUNT/AVG/MEDIAN, vector and
//     scalar, with range filtering) over a selectable backend: four
//     hash-table families, three tree families, two serial sorts, and
//     four multithreaded algorithms;
//   - dataset generation (Generate) for the paper's six synthetic key
//     distributions;
//   - Recommend — the paper's Figure 12 decision flow chart as a function:
//     given a workload description, it names the algorithm the paper's
//     experiments favour.
//
// Backends behave identically (the test suite cross-checks every backend
// against a reference model); they differ in speed and memory exactly
// along the six dimensions the paper analyzes. Use Recommend — or run the
// reproduction harness in cmd/aggbench — to pick one for your workload.
package memagg

import (
	"memagg/internal/agg"
	"memagg/internal/dataset"
)

// Backend names an aggregation algorithm using the paper's Table 3/8
// labels.
type Backend string

// Serial backends (Table 3).
const (
	ART        Backend = "ART"         // adaptive radix tree
	Judy       Backend = "Judy"        // Judy-style radix array
	Btree      Backend = "Btree"       // cache-conscious B+tree
	HashSC     Backend = "Hash_SC"     // separate chaining
	HashLP     Backend = "Hash_LP"     // linear probing
	HashSparse Backend = "Hash_Sparse" // sparse quadratic probing
	HashDense  Backend = "Hash_Dense"  // dense quadratic probing
	HashLC     Backend = "Hash_LC"     // concurrent bucketized cuckoo
	Introsort  Backend = "Introsort"   // std::sort-style hybrid sort
	Spreadsort Backend = "Spreadsort"  // Boost spreadsort-style hybrid
	Ttree      Backend = "Ttree"       // T-tree (historical; see Figure 3)
)

// Concurrent backends (Table 8). They honour Options.Threads.
const (
	HashTBBSC Backend = "Hash_TBBSC" // striped separate chaining
	SortBI    Backend = "Sort_BI"    // parallel block sort
	SortQSLB  Backend = "Sort_QSLB"  // load-balanced parallel quicksort
)

// Extension backends beyond the paper's tables (see DESIGN.md):
// partitioned parallel aggregation after the PLAT line of work the paper
// surveys, radix-partitioned parallel aggregation, and the adaptive
// sort/hash hybrid its Section 5.5 suggests.
const (
	HashPLAT Backend = "Hash_PLAT" // thread-local tables + partitioned merge
	HashRX   Backend = "Hash_RX"   // radix-partitioned two-phase aggregation
	HashGLB  Backend = "Hash_GLB"  // morsel-driven global shared table
	Adaptive Backend = "Adaptive"  // samples input, routes to Hash_LP or Spreadsort
)

// Backends lists every selectable backend.
func Backends() []Backend {
	return []Backend{
		ART, Judy, Btree, HashSC, HashLP, HashSparse, HashDense, HashLC,
		Introsort, Spreadsort, Ttree, HashTBBSC, SortBI, SortQSLB,
		HashPLAT, HashRX, HashGLB, Adaptive,
	}
}

// Allocator selects the memory-allocation strategy backing query-lifetime
// state — the paper's Dimension 6, where allocator choice alone swings
// aggregation throughput by large factors.
type Allocator string

const (
	// AllocGoRuntime (the default, also selected by the empty string) uses
	// plain Go heap allocations collected by the GC.
	AllocGoRuntime Allocator = "go-runtime"

	// AllocArena routes hot-path allocations through a pooled bump
	// allocator: holistic per-group value buffers become chunked arena
	// lists and the sort backends' working copies are recycled across
	// queries. Honoured by the hash, tree, sort, Hash_RX and Hash_GLB
	// backends (and Adaptive); the shared-table concurrent backends
	// (Hash_LC, Hash_TBBSC, Hash_PLAT) ignore it — their groups are
	// appended by many workers at once, which a single-owner arena cannot
	// serve. Hash_GLB takes a serial holistic merge under this allocator
	// for the same reason.
	AllocArena Allocator = "arena"
)

// Allocators lists the selectable allocation strategies.
func Allocators() []Allocator { return []Allocator{AllocGoRuntime, AllocArena} }

// Options configures an Aggregator.
type Options struct {
	// Threads sets the build parallelism of the concurrent backends
	// (Hash_TBBSC, Hash_LC, Sort_BI, Sort_QSLB, Hash_PLAT, Hash_RX,
	// Hash_GLB). <= 0 means GOMAXPROCS. Serial backends ignore it.
	Threads int

	// Allocator selects the allocation strategy (Dimension 6). The zero
	// value selects AllocGoRuntime.
	Allocator Allocator
}

// GroupCount is one row of a vector COUNT result.
type GroupCount struct {
	Key   uint64
	Count uint64
}

// GroupValue is one row of a vector AVG or MEDIAN result.
type GroupValue struct {
	Key   uint64
	Value float64
}

// Aggregator executes aggregation queries over one backend. It is
// stateless between calls and safe for concurrent use by multiple
// goroutines (each call builds a private structure).
type Aggregator struct {
	backend Backend
	engine  agg.Engine
}

// New returns an Aggregator for the given backend.
func New(b Backend, opts Options) (*Aggregator, error) {
	e, err := engineFor(b, opts)
	if err != nil {
		return nil, err
	}
	switch opts.Allocator {
	case "", AllocGoRuntime:
		// agg.AllocGoRuntime is the engines' zero value.
	case AllocArena:
		e = agg.WithAllocator(e, agg.AllocArena)
	default:
		return nil, wrapErr(ErrUnknownAllocator, "memagg: unknown allocator %q", opts.Allocator)
	}
	return &Aggregator{backend: b, engine: e}, nil
}

func engineFor(b Backend, opts Options) (agg.Engine, error) {
	switch b {
	case HashTBBSC:
		return agg.HashTBBSC(opts.Threads), nil
	case SortBI:
		return agg.SortBI(opts.Threads), nil
	case SortQSLB:
		return agg.SortQSLB(opts.Threads), nil
	case HashPLAT:
		return agg.HashPLAT(opts.Threads), nil
	case HashRX:
		return agg.HashRX(opts.Threads), nil
	case HashGLB:
		return agg.HashGLB(opts.Threads), nil
	case Adaptive:
		return agg.Adaptive(), nil
	case HashLC:
		threads := opts.Threads
		if threads == 0 {
			threads = 1 // the paper's serial configuration
		}
		return agg.HashLC(threads), nil
	default:
		e, err := agg.ByName(string(b))
		if err != nil {
			return nil, wrapErr(ErrUnknownBackend, "memagg: unknown backend %q", b)
		}
		return e, nil
	}
}

// Backend returns the backend this aggregator runs on.
func (a *Aggregator) Backend() Backend { return a.backend }

// CountByKey executes Q1: one (key, COUNT(*)) row per distinct key.
// Row order is ascending by key for sort- and tree-based backends and
// unspecified for hash-based ones.
func (a *Aggregator) CountByKey(keys []uint64) []GroupCount {
	return toCounts(a.engine.VectorCount(keys))
}

// AvgByKey executes Q2: one (key, AVG(values)) row per distinct key.
// values[i] belongs to keys[i]; a short values slice treats missing
// values as zero.
func (a *Aggregator) AvgByKey(keys, values []uint64) []GroupValue {
	return toValues(a.engine.VectorAvg(keys, values))
}

// MedianByKey executes Q3 (holistic): one (key, MEDIAN(values)) row per
// distinct key.
func (a *Aggregator) MedianByKey(keys, values []uint64) []GroupValue {
	return toValues(a.engine.VectorMedian(keys, values))
}

// Count executes Q4: COUNT(*) over the input.
func (a *Aggregator) Count(keys []uint64) uint64 { return agg.ScalarCount(keys) }

// Avg executes Q5: AVG over a column.
func (a *Aggregator) Avg(values []uint64) float64 { return agg.ScalarAvg(values) }

// Median executes Q6: MEDIAN over the key column. Hash-based backends
// cannot enumerate keys in order: they return a QueryError wrapping
// ErrUnsupportedQuery.
func (a *Aggregator) Median(keys []uint64) (float64, error) {
	v, err := a.engine.ScalarMedian(keys)
	if err != nil {
		return 0, a.queryErr("Median", err)
	}
	return v, nil
}

// CountRange executes Q7: Q1 restricted to lo <= key <= hi. Hash-based
// backends have no native range search: they return a QueryError wrapping
// ErrUnsupportedQuery.
func (a *Aggregator) CountRange(keys []uint64, lo, hi uint64) ([]GroupCount, error) {
	rows, err := a.engine.VectorCountRange(keys, lo, hi)
	if err != nil {
		return nil, a.queryErr("CountRange", err)
	}
	return toCounts(rows), nil
}

// GroupStat is one row of a SUM/MIN/MAX result.
type GroupStat struct {
	Key   uint64
	Value uint64
}

// SumByKey returns one (key, SUM(values)) row per distinct key.
func (a *Aggregator) SumByKey(keys, values []uint64) []GroupStat {
	return toStats(agg.AsReducer(a.engine).VectorReduce(keys, values, agg.OpSum))
}

// MinByKey returns one (key, MIN(values)) row per distinct key.
func (a *Aggregator) MinByKey(keys, values []uint64) []GroupStat {
	return toStats(agg.AsReducer(a.engine).VectorReduce(keys, values, agg.OpMin))
}

// MaxByKey returns one (key, MAX(values)) row per distinct key.
func (a *Aggregator) MaxByKey(keys, values []uint64) []GroupStat {
	return toStats(agg.AsReducer(a.engine).VectorReduce(keys, values, agg.OpMax))
}

// QuantileByKey returns one (key, q-quantile of values) row per distinct
// key, by the nearest-rank method. Holistic: each group's full value set
// is buffered during the build.
func (a *Aggregator) QuantileByKey(keys, values []uint64, q float64) []GroupValue {
	return toValues(agg.AsReducer(a.engine).VectorHolistic(keys, values, agg.QuantileFunc(q)))
}

// ModeByKey returns one (key, most frequent value) row per distinct key.
// Holistic.
func (a *Aggregator) ModeByKey(keys, values []uint64) []GroupValue {
	return toValues(agg.AsReducer(a.engine).VectorHolistic(keys, values, agg.ModeFunc))
}

// ErrUnsupported reports a query the chosen backend cannot execute (see
// Median and CountRange). Same value as ErrUnsupportedQuery.
var ErrUnsupported = agg.ErrUnsupported

// convertRows maps an internal result-row slice onto its public mirror —
// the one copy loop behind every to* converter.
func convertRows[I, O any](rows []I, conv func(I) O) []O {
	out := make([]O, len(rows))
	for i, r := range rows {
		out[i] = conv(r)
	}
	return out
}

func toStats(rows []agg.GroupUint) []GroupStat {
	return convertRows(rows, func(r agg.GroupUint) GroupStat {
		return GroupStat{Key: r.Key, Value: r.Val}
	})
}

func toCounts(rows []agg.GroupCount) []GroupCount {
	return convertRows(rows, func(r agg.GroupCount) GroupCount {
		return GroupCount{Key: r.Key, Count: r.Count}
	})
}

func toValues(rows []agg.GroupFloat) []GroupValue {
	return convertRows(rows, func(r agg.GroupFloat) GroupValue {
		return GroupValue{Key: r.Key, Value: r.Val}
	})
}

// --- dataset generation --------------------------------------------------------

// Distribution names one of the paper's synthetic key distributions
// (Table 4).
type Distribution = dataset.Kind

// The six distributions of Table 4.
const (
	Rseq    = dataset.Rseq    // repeating sequential
	RseqShf = dataset.RseqShf // repeating sequential, shuffled
	Hhit    = dataset.Hhit    // heavy hitter
	HhitShf = dataset.HhitShf // heavy hitter, shuffled
	Zipf    = dataset.Zipf    // Zipfian, e = 0.5
	MovC    = dataset.MovC    // moving cluster, W = 64
)

// Generate produces n keys from the given distribution with the target
// group-by cardinality. Deterministic for fixed arguments. See the
// internal/dataset package for the exact constructions.
func Generate(d Distribution, n, cardinality int, seed uint64) ([]uint64, error) {
	spec := dataset.Spec{Kind: d, N: n, Cardinality: cardinality, Seed: seed}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec.Keys(), nil
}

// GenerateValues produces a deterministic value column (uniform in
// [0, 1e6)) to pair with a generated key column.
func GenerateValues(n int, seed uint64) []uint64 {
	return dataset.Values(n, seed)
}
