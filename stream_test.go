package memagg

import (
	"sort"
	"testing"
)

// TestStreamMatchesAggregator replays a generated dataset through the
// public streaming API and checks every query against the batch Aggregator
// over the same rows.
func TestStreamMatchesAggregator(t *testing.T) {
	keys, err := Generate(RseqShf, 30_000, 2_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	vals := GenerateValues(len(keys), 7)

	s := NewStream(StreamOptions{
		Workload: Workload{
			Output:          Vector,
			Function:        Holistic, // implies value retention
			Multithreaded:   true,
			EstimatedGroups: 2_000,
		},
		SealRows: 4_096,
	})
	for off := 0; off < len(keys); off += 1_000 {
		end := off + 1_000
		if end > len(keys) {
			end = len(keys)
		}
		if err := s.Append(keys[off:end], vals[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()

	batch, err := New(HashLP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(Btree, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if sn.Watermark() != uint64(len(keys)) {
		t.Fatalf("watermark = %d want %d", sn.Watermark(), len(keys))
	}
	checkCounts(t, "Q1", sn.CountByKey(), batch.CountByKey(keys))
	checkValues(t, "Q2", sn.AvgByKey(), batch.AvgByKey(keys, vals))
	med, err := sn.MedianByKey()
	if err != nil {
		t.Fatal(err)
	}
	checkValues(t, "Q3", med, batch.MedianByKey(keys, vals))
	if got, want := sn.Count(), batch.Count(keys); got != want {
		t.Fatalf("Q4 = %d want %d", got, want)
	}
	if got, want := sn.Avg(), batch.Avg(vals); got != want {
		t.Fatalf("Q5 = %v want %v", got, want)
	}
	wantMed, err := tree.Median(keys)
	if err != nil {
		t.Fatal(err)
	}
	gotMed, err := sn.Median()
	if err != nil {
		t.Fatal(err)
	}
	if gotMed != wantMed {
		t.Fatalf("Q6 = %v want %v", gotMed, wantMed)
	}
	wantRange, err := tree.CountRange(keys, 100, 600)
	if err != nil {
		t.Fatal(err)
	}
	gotRange, err := sn.CountRange(100, 600)
	if err != nil {
		t.Fatal(err)
	}
	checkCounts(t, "Q7", gotRange, wantRange)

	q90, err := sn.QuantileByKey(0.9)
	if err != nil {
		t.Fatal(err)
	}
	checkValues(t, "q90", q90, batch.QuantileByKey(keys, vals, 0.9))
	mode, err := sn.ModeByKey()
	if err != nil {
		t.Fatal(err)
	}
	checkValues(t, "mode", mode, batch.ModeByKey(keys, vals))

	sums := sn.SumByKey()
	wantSums := batch.SumByKey(keys, vals)
	sortStats(sums)
	sortStats(wantSums)
	if len(sums) != len(wantSums) {
		t.Fatalf("sum: %d groups want %d", len(sums), len(wantSums))
	}
	for i := range sums {
		if sums[i] != wantSums[i] {
			t.Fatalf("sum[%d] = %+v want %+v", i, sums[i], wantSums[i])
		}
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(keys[:1], vals[:1]); err != ErrStreamClosed {
		t.Fatalf("Append after Close = %v want ErrStreamClosed", err)
	}
	// Queries still serve after Close, now over the merged base.
	checkCounts(t, "Q1 after Close", s.Snapshot().CountByKey(), batch.CountByKey(keys))
}

// TestStreamWorkloadDerivation checks the Workload-driven defaults: a
// non-multithreaded distributive workload gets one shard and no value
// retention (holistic queries unsupported).
func TestStreamWorkloadDerivation(t *testing.T) {
	s := NewStream(StreamOptions{})
	defer s.Close()
	if st := s.Stats(); st.Shards != 1 || st.Holistic {
		t.Fatalf("zero-options stream: shards=%d holistic=%v want 1,false", st.Shards, st.Holistic)
	}
	if err := s.Append([]uint64{1, 2}, []uint64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot().MedianByKey(); err != ErrUnsupported {
		t.Fatalf("MedianByKey on distributive stream = %v want ErrUnsupported", err)
	}

	h := NewStream(StreamOptions{Workload: Workload{Function: Holistic, Multithreaded: true}})
	defer h.Close()
	if st := h.Stats(); !st.Holistic || st.Shards < 1 {
		t.Fatalf("holistic workload: holistic=%v shards=%d", st.Holistic, st.Shards)
	}
	if got := h.Advice().Backend; got != SortBI {
		t.Fatalf("advice for multithreaded holistic = %v want Sort_BI", got)
	}
}

func checkCounts(t *testing.T, label string, got, want []GroupCount) {
	t.Helper()
	sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
	sort.Slice(want, func(i, j int) bool { return want[i].Key < want[j].Key })
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %+v want %+v", label, i, got[i], want[i])
		}
	}
}

func checkValues(t *testing.T, label string, got, want []GroupValue) {
	t.Helper()
	sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
	sort.Slice(want, func(i, j int) bool { return want[i].Key < want[j].Key })
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %+v want %+v", label, i, got[i], want[i])
		}
	}
}

func sortStats(rows []GroupStat) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
}
