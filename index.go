package memagg

import (
	"memagg/internal/art"
	"memagg/internal/btree"
	"memagg/internal/judy"
)

// Index is a reusable, incrementally built aggregation index over a tree
// backend — the paper's "write once, read many" (WORM) workload shape.
// Where Aggregator rebuilds its structure per query (WORO, the paper's
// default methodology), an Index is built once (or fed incrementally) and
// then answers many ordered queries from the same structure: repeated
// range counts (Figure 8's prebuilt-index case, where Btree wins) and
// repeated medians/quantiles (Figure 9's reusable case, where the paper
// recommends Judy).
//
// An Index is not safe for concurrent mutation; build first, then share
// for reads.
type Index struct {
	backend Backend
	tree    countTree
	total   uint64
}

// countTree is the ordered key → count surface the Index builds on.
type countTree interface {
	Upsert(key uint64) *uint64
	Len() int
	Iterate(fn func(key uint64, val *uint64) bool)
	Range(lo, hi uint64, fn func(key uint64, val *uint64) bool)
}

// NewIndex returns an empty index on a tree backend (ART, Judy, or Btree —
// the structures with ordered iteration and native range search).
func NewIndex(b Backend) (*Index, error) {
	var t countTree
	switch b {
	case ART:
		t = art.New[uint64]()
	case Judy:
		t = judy.New[uint64]()
	case Btree:
		t = btree.New[uint64]()
	default:
		return nil, wrapErr(ErrUnknownBackend,
			"memagg: Index requires a tree backend (ART, Judy, Btree), got %q", b)
	}
	return &Index{backend: b, tree: t}, nil
}

// Backend returns the tree backend this index is built on.
func (ix *Index) Backend() Backend { return ix.backend }

// Add folds a batch of keys into the index.
func (ix *Index) Add(keys []uint64) {
	for _, k := range keys {
		*ix.tree.Upsert(k)++
	}
	ix.total += uint64(len(keys))
}

// AddRecord folds a single key into the index.
func (ix *Index) AddRecord(key uint64) {
	*ix.tree.Upsert(key)++
	ix.total++
}

// Groups returns the number of distinct keys indexed.
func (ix *Index) Groups() int { return ix.tree.Len() }

// Records returns the total number of records folded in.
func (ix *Index) Records() uint64 { return ix.total }

// Counts returns the full Q1 result from the prebuilt index, ascending by
// key.
func (ix *Index) Counts() []GroupCount {
	out := make([]GroupCount, 0, ix.tree.Len())
	ix.tree.Iterate(func(k uint64, v *uint64) bool {
		out = append(out, GroupCount{Key: k, Count: *v})
		return true
	})
	return out
}

// CountRange returns the Q7 result for lo <= key <= hi from the prebuilt
// index — no rebuild, one descent plus an ordered scan.
func (ix *Index) CountRange(lo, hi uint64) []GroupCount {
	if lo > hi {
		return nil
	}
	var out []GroupCount
	ix.tree.Range(lo, hi, func(k uint64, v *uint64) bool {
		out = append(out, GroupCount{Key: k, Count: *v})
		return true
	})
	return out
}

// Median returns the Q6 result (median of all indexed keys, averaging the
// two middles for even record counts) from the prebuilt index.
func (ix *Index) Median() (float64, bool) {
	return ix.quantileRanks()
}

// Quantile returns the q-quantile (nearest rank, 0 <= q <= 1) of the
// indexed keys. ok is false for an empty index.
func (ix *Index) Quantile(q float64) (uint64, bool) {
	if ix.total == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(ix.total-1))
	var seen uint64
	var result uint64
	found := false
	ix.tree.Iterate(func(k uint64, c *uint64) bool {
		if rank < seen+*c {
			result = k
			found = true
			return false
		}
		seen += *c
		return true
	})
	return result, found
}

func (ix *Index) quantileRanks() (float64, bool) {
	if ix.total == 0 {
		return 0, false
	}
	r1, r2 := (ix.total-1)/2, ix.total/2
	var seen uint64
	var v1, v2 float64
	got := 0
	ix.tree.Iterate(func(k uint64, c *uint64) bool {
		end := seen + *c
		if r1 >= seen && r1 < end {
			v1 = float64(k)
			got++
		}
		if r2 >= seen && r2 < end {
			v2 = float64(k)
			got++
			return false
		}
		seen = end
		return true
	})
	if got < 2 {
		return 0, false
	}
	return (v1 + v2) / 2, true
}
