package cuckoo

import (
	"sync"
	"testing"
	"testing/quick"

	"memagg/internal/dataset"
)

func TestUpsertAndGetBasic(t *testing.T) {
	m := New[uint64](16)
	for k := uint64(0); k < 100; k++ {
		m.Upsert(k, func(v *uint64, fresh bool) {
			if !fresh {
				t.Errorf("key %d reported as existing on first insert", k)
			}
			*v = k * 3
		})
	}
	if m.Len() != 100 {
		t.Fatalf("Len=%d want 100", m.Len())
	}
	for k := uint64(0); k < 100; k++ {
		var got uint64
		if !m.Get(k, func(v *uint64) { got = *v }) {
			t.Fatalf("key %d missing", k)
		}
		if got != k*3 {
			t.Fatalf("key %d value %d want %d", k, got, k*3)
		}
	}
	if m.Get(1000, nil) {
		t.Fatal("absent key reported present")
	}
}

func TestUpsertCountsAggregation(t *testing.T) {
	m := New[uint64](8)
	keys := dataset.Spec{Kind: dataset.Zipf, N: 50000, Cardinality: 500, Seed: 3}.Keys()
	want := map[uint64]uint64{}
	for _, k := range keys {
		m.Upsert(k, func(v *uint64, _ bool) { *v++ })
		want[k]++
	}
	if m.Len() != len(want) {
		t.Fatalf("Len=%d want %d", m.Len(), len(want))
	}
	got := map[uint64]uint64{}
	m.Iterate(func(k uint64, v *uint64) bool {
		got[k] = *v
		return true
	})
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("key %d count %d want %d", k, got[k], c)
		}
	}
}

func TestGrowthFromTinyTable(t *testing.T) {
	m := New[uint64](1) // force displacement paths and resizes
	const n = 100000
	rng := dataset.NewRNG(11)
	want := map[uint64]uint64{}
	for i := 0; i < n; i++ {
		k := rng.Uint64n(1 << 40)
		m.Upsert(k, func(v *uint64, _ bool) { *v++ })
		want[k]++
	}
	if m.Len() != len(want) {
		t.Fatalf("Len=%d want %d", m.Len(), len(want))
	}
	for k, c := range want {
		var got uint64
		if !m.Get(k, func(v *uint64) { got = *v }) || got != c {
			t.Fatalf("key %d: got %d want %d", k, got, c)
		}
	}
}

func TestLookupTouchesAtMostTwoBuckets(t *testing.T) {
	// Structural invariant of cuckoo hashing: every stored key must reside
	// in one of its two candidate buckets.
	m := New[uint64](64)
	keys := dataset.Random(20000, 1, 1<<50, 5)
	for _, k := range keys {
		m.Upsert(k, func(v *uint64, _ bool) { *v = k })
	}
	checked := 0
	m.Iterate(func(k uint64, _ *uint64) bool {
		b1, b2 := m.twoBuckets(k)
		if findInBucket(&m.buckets[b1], k) < 0 && findInBucket(&m.buckets[b2], k) < 0 {
			t.Fatalf("key %d stored outside its two candidate buckets", k)
		}
		checked++
		return true
	})
	if checked != m.Len() {
		t.Fatalf("iterated %d keys, Len=%d", checked, m.Len())
	}
}

func TestIterateVisitsEachOnce(t *testing.T) {
	m := New[uint64](16)
	for k := uint64(1); k <= 5000; k++ {
		m.Upsert(k, func(v *uint64, _ bool) { *v = k })
	}
	seen := map[uint64]bool{}
	m.Iterate(func(k uint64, _ *uint64) bool {
		if seen[k] {
			t.Fatalf("key %d visited twice", k)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 5000 {
		t.Fatalf("visited %d keys want 5000", len(seen))
	}
}

func TestConcurrentUpserts(t *testing.T) {
	m := New[uint64](64)
	const (
		workers = 8
		perW    = 20000
		keySpan = 1000 // heavy contention
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := dataset.NewRNG(uint64(w))
			for i := 0; i < perW; i++ {
				k := rng.Uint64n(keySpan)
				m.Upsert(k, func(v *uint64, _ bool) { *v++ })
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	m.Iterate(func(_ uint64, v *uint64) bool {
		total += *v
		return true
	})
	if total != workers*perW {
		t.Fatalf("total count %d want %d (lost updates)", total, workers*perW)
	}
}

func TestConcurrentUpsertsWithGrowth(t *testing.T) {
	m := New[uint64](1)
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := dataset.NewRNG(uint64(w) * 7)
			for i := 0; i < 30000; i++ {
				k := rng.Uint64n(1 << 30) // mostly distinct: forces resizes
				m.Upsert(k, func(v *uint64, _ bool) { *v++ })
			}
		}(w)
	}
	wg.Wait()
	var total uint64
	distinct := 0
	m.Iterate(func(_ uint64, v *uint64) bool {
		total += *v
		distinct++
		return true
	})
	if total != 8*30000 {
		t.Fatalf("total %d want %d", total, 8*30000)
	}
	if distinct != m.Len() {
		t.Fatalf("iterate count %d != Len %d", distinct, m.Len())
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	m := New[uint64](1024)
	for k := uint64(0); k < 1000; k++ {
		m.Upsert(k, func(v *uint64, _ bool) { *v = 1 })
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := dataset.NewRNG(uint64(r))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Uint64n(2000)
				m.Get(k, func(v *uint64) {
					if *v == 0 {
						t.Error("observed zero value for present key")
					}
				})
			}
		}(r)
	}
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := dataset.NewRNG(uint64(w) + 100)
			for i := 0; i < 50000; i++ {
				k := rng.Uint64n(2000)
				m.Upsert(k, func(v *uint64, _ bool) { *v++ })
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

func TestQuickPropertyMatchesModel(t *testing.T) {
	f := func(keys []uint64) bool {
		m := New[uint64](2)
		model := map[uint64]uint64{}
		for _, k := range keys {
			k %= 257
			m.Upsert(k, func(v *uint64, _ bool) { *v++ })
			model[k]++
		}
		if m.Len() != len(model) {
			return false
		}
		ok := true
		m.Iterate(func(k uint64, v *uint64) bool {
			if model[k] != *v {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCapAndSizing(t *testing.T) {
	m := New[uint64](10000)
	if m.Cap() < 10000 {
		t.Fatalf("Cap=%d below requested capacity", m.Cap())
	}
	if m.Len() != 0 {
		t.Fatalf("fresh map Len=%d", m.Len())
	}
}

func TestDelete(t *testing.T) {
	m := New[uint64](64)
	for k := uint64(1); k <= 500; k++ {
		m.Upsert(k, func(v *uint64, _ bool) { *v = k })
	}
	for k := uint64(1); k <= 500; k += 2 {
		if !m.Delete(k) {
			t.Fatalf("Delete(%d) reported absent", k)
		}
	}
	if m.Delete(1) || m.Delete(9999) {
		t.Fatal("deleted absent key")
	}
	if m.Len() != 250 {
		t.Fatalf("Len=%d want 250", m.Len())
	}
	for k := uint64(1); k <= 500; k++ {
		want := k%2 == 0
		if got := m.Get(k, nil); got != want {
			t.Fatalf("Get(%d)=%v want %v", k, got, want)
		}
	}
	// Reinsert into freed slots.
	for k := uint64(1); k <= 500; k += 2 {
		m.Upsert(k, func(v *uint64, fresh bool) {
			if !fresh {
				t.Fatalf("key %d not fresh after delete", k)
			}
		})
	}
	if m.Len() != 500 {
		t.Fatalf("Len=%d want 500 after reinsert", m.Len())
	}
}

func TestConcurrentDeletes(t *testing.T) {
	m := New[uint64](1024)
	for k := uint64(0); k < 2000; k++ {
		m.Upsert(k, func(v *uint64, _ bool) { *v = 1 })
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := uint64(w); k < 2000; k += 4 {
				m.Delete(k)
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != 0 {
		t.Fatalf("Len=%d want 0", m.Len())
	}
}
