// Package cuckoo implements a concurrent bucketized cuckoo hash table — the
// analog of Intel's libcuckoo (the paper's Hash_LC).
//
// Layout and algorithm follow the libcuckoo design: 4-slot buckets, two
// independent hash functions, breadth-first search for the shortest
// displacement ("cuckoo") path when both candidate buckets are full, and
// path execution from the far end backwards so that at most one item is in
// flight per move. Concurrency control substitutes the paper's hardware
// transactional memory with striped bucket locks plus a table-wide resize
// guard — the same semantics, software-only (see DESIGN.md substitution 4).
//
// Reads touch at most two buckets, preserving cuckoo hashing's constant
// lookup guarantee. Inserts are slower and less predictable than open
// addressing — the paper's serial microbenchmark (Figure 3) shows exactly
// this, and our implementation reproduces the effect because every
// operation pays the locking protocol even when used from one goroutine.
package cuckoo

import (
	"sync"

	"memagg/internal/hashtbl"
)

const (
	slotsPerBucket = 4
	// maxBFSDepth bounds the displacement path length, as libcuckoo's
	// MAX_BFS_PATH_LEN. Paths longer than this trigger a resize.
	maxBFSDepth = 5
	// lockStripes is the number of bucket lock stripes (power of two).
	lockStripes = 1 << 12
	// maxInsertRetries bounds validation-failure retries before forcing a
	// resize, preventing livelock under heavy contention.
	maxInsertRetries = 16
)

type bucket[V any] struct {
	occ  uint8 // bitmask of occupied slots
	keys [slotsPerBucket]uint64
	vals [slotsPerBucket]V
}

// Map is a concurrent cuckoo hash map from uint64 keys to V.
type Map[V any] struct {
	resizeMu sync.RWMutex // held shared by ops, exclusively by resize
	locks    []sync.Mutex // bucket stripe locks
	buckets  []bucket[V]
	mask     uint64
	size     int64 // guarded by sizeMu
	sizeMu   sync.Mutex
}

// New returns a map pre-sized for capacity elements.
func New[V any](capacity int) *Map[V] {
	nb := hashtbl.NextPow2(maxInt(capacity/slotsPerBucket*5/4, 4))
	m := &Map[V]{
		locks:   make([]sync.Mutex, lockStripes),
		buckets: make([]bucket[V], nb),
		mask:    uint64(nb - 1),
	}
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// twoBuckets returns the candidate bucket indexes for key under the current
// mask. They may coincide.
func (m *Map[V]) twoBuckets(key uint64) (uint64, uint64) {
	return hashtbl.Mix(key) & m.mask, hashtbl.Mix2(key) & m.mask
}

// lockPair acquires the stripes of buckets a and b in stripe order and
// returns an unlock function.
func (m *Map[V]) lockPair(a, b uint64) func() {
	sa, sb := a&(lockStripes-1), b&(lockStripes-1)
	if sa == sb {
		m.locks[sa].Lock()
		return m.locks[sa].Unlock
	}
	if sa > sb {
		sa, sb = sb, sa
	}
	m.locks[sa].Lock()
	m.locks[sb].Lock()
	return func() {
		m.locks[sb].Unlock()
		m.locks[sa].Unlock()
	}
}

// findInBucket returns the slot of key in bkt, or -1.
func findInBucket[V any](bkt *bucket[V], key uint64) int {
	for s := 0; s < slotsPerBucket; s++ {
		if bkt.occ&(1<<s) != 0 && bkt.keys[s] == key {
			return s
		}
	}
	return -1
}

// freeSlot returns the first free slot in bkt, or -1.
func freeSlot[V any](bkt *bucket[V]) int {
	for s := 0; s < slotsPerBucket; s++ {
		if bkt.occ&(1<<s) == 0 {
			return s
		}
	}
	return -1
}

// Len returns the number of stored keys.
func (m *Map[V]) Len() int {
	m.sizeMu.Lock()
	defer m.sizeMu.Unlock()
	return int(m.size)
}

// Cap returns the total slot count.
func (m *Map[V]) Cap() int { return len(m.buckets) * slotsPerBucket }

func (m *Map[V]) addSize(d int64) {
	m.sizeMu.Lock()
	m.size += d
	m.sizeMu.Unlock()
}

// Get calls fn with a pointer to key's value while holding the bucket
// locks, returning false if the key is absent. The pointer must not escape
// fn.
func (m *Map[V]) Get(key uint64, fn func(v *V)) bool {
	m.resizeMu.RLock()
	defer m.resizeMu.RUnlock()
	b1, b2 := m.twoBuckets(key)
	unlock := m.lockPair(b1, b2)
	defer unlock()
	if s := findInBucket(&m.buckets[b1], key); s >= 0 {
		if fn != nil {
			fn(&m.buckets[b1].vals[s])
		}
		return true
	}
	if s := findInBucket(&m.buckets[b2], key); s >= 0 {
		if fn != nil {
			fn(&m.buckets[b2].vals[s])
		}
		return true
	}
	return false
}

// Upsert invokes fn with a pointer to key's value and fresh=true if the key
// was just inserted (the value is the zero V), fresh=false if it existed.
// fn runs under the bucket locks; it must not call back into the map.
// This is the user-defined-upsert interface the paper credits libcuckoo
// with, which lets holistic aggregation append values without a second
// lookup.
func (m *Map[V]) Upsert(key uint64, fn func(v *V, fresh bool)) {
	for {
		ok, seenBuckets := m.tryUpsert(key, fn)
		if ok {
			return
		}
		m.grow(seenBuckets)
	}
}

// tryUpsert performs one optimistic upsert attempt under the shared resize
// guard. ok is false if the table must grow first; seenBuckets is the
// bucket count observed, letting grow detect a concurrent resize.
func (m *Map[V]) tryUpsert(key uint64, fn func(v *V, fresh bool)) (ok bool, seenBuckets int) {
	m.resizeMu.RLock()
	defer m.resizeMu.RUnlock()
	seenBuckets = len(m.buckets)

	for retry := 0; retry < maxInsertRetries; retry++ {
		b1, b2 := m.twoBuckets(key)
		unlock := m.lockPair(b1, b2)
		// Existing key?
		for _, b := range [2]uint64{b1, b2} {
			if s := findInBucket(&m.buckets[b], key); s >= 0 {
				fn(&m.buckets[b].vals[s], false)
				unlock()
				return true, seenBuckets
			}
		}
		// Free slot in either candidate bucket?
		for _, b := range [2]uint64{b1, b2} {
			if s := freeSlot(&m.buckets[b]); s >= 0 {
				bkt := &m.buckets[b]
				bkt.keys[s] = key
				var zero V
				bkt.vals[s] = zero
				bkt.occ |= 1 << s
				fn(&bkt.vals[s], true)
				unlock()
				m.addSize(1)
				return true, seenBuckets
			}
		}
		unlock()
		// Both buckets full: find and execute a displacement path.
		path, found := m.bfsPath(b1, b2)
		if !found {
			return false, seenBuckets // no path within depth: resize
		}
		if m.executePath(path) {
			continue // root now has space (usually); revalidate from top
		}
		// Path validation failed (concurrent mutation): retry.
	}
	return false, seenBuckets // excessive contention: make the table bigger
}

// pathNode describes one displacement step discovered by BFS.
type pathNode struct {
	bucket uint64 // bucket to displace from
	slot   int    // slot within bucket
	key    uint64 // expected key occupying that slot (for validation)
}

// bfsPath searches breadth-first from the two root buckets for the shortest
// sequence of displacements ending at a bucket with a free slot. It returns
// the path root-first. Buckets are examined under their stripe locks, but
// the path is validated again during execution since locks are dropped
// between discovery and execution.
func (m *Map[V]) bfsPath(b1, b2 uint64) ([]pathNode, bool) {
	type qent struct {
		bucket uint64
		parent int32
		slot   int8 // slot displaced in parent to reach here
		key    uint64
		depth  int8
	}
	queue := make([]qent, 0, 2+2*slotsPerBucket*slotsPerBucket*slotsPerBucket)
	queue = append(queue, qent{bucket: b1, parent: -1}, qent{bucket: b2, parent: -1})
	for qi := 0; qi < len(queue); qi++ {
		e := queue[qi]
		// Snapshot the bucket under its lock.
		stripe := e.bucket & (lockStripes - 1)
		m.locks[stripe].Lock()
		bkt := m.buckets[e.bucket] // copy
		m.locks[stripe].Unlock()

		if freeSlot(&bkt) >= 0 && e.parent >= 0 {
			// Reconstruct path root-first, excluding the terminal bucket
			// (which only receives).
			var rev []pathNode
			for i := int32(qi); queue[i].parent >= 0; i = queue[i].parent {
				p := queue[queue[i].parent]
				rev = append(rev, pathNode{
					bucket: p.bucket,
					slot:   int(queue[i].slot),
					key:    queue[i].key,
				})
			}
			path := make([]pathNode, 0, len(rev)+1)
			for i := len(rev) - 1; i >= 0; i-- {
				path = append(path, rev[i])
			}
			// Append terminal receiving bucket as a sentinel node.
			path = append(path, pathNode{bucket: e.bucket, slot: -1})
			return path, true
		}
		if e.depth >= maxBFSDepth {
			continue
		}
		for s := 0; s < slotsPerBucket; s++ {
			if bkt.occ&(1<<s) == 0 {
				continue
			}
			k := bkt.keys[s]
			h1, h2 := hashtbl.Mix(k)&m.mask, hashtbl.Mix2(k)&m.mask
			alt := h1 ^ h2 ^ e.bucket
			if alt == e.bucket {
				continue // both hashes collide; displacement is a no-op
			}
			queue = append(queue, qent{
				bucket: alt,
				parent: int32(qi),
				slot:   int8(s),
				key:    k,
				depth:  e.depth + 1,
			})
		}
	}
	return nil, false
}

// executePath performs the displacements in path from the far end backward,
// validating each move under the corresponding bucket locks. It returns
// false if any validation fails (concurrent mutation invalidated the path).
func (m *Map[V]) executePath(path []pathNode) bool {
	// path[len-1] is the receiving sentinel; moves happen between
	// consecutive nodes, last first.
	for i := len(path) - 2; i >= 0; i-- {
		from, to := path[i], path[i+1]
		unlock := m.lockPair(from.bucket, to.bucket)
		fb, tb := &m.buckets[from.bucket], &m.buckets[to.bucket]
		ts := freeSlot(tb)
		ok := ts >= 0 &&
			fb.occ&(1<<from.slot) != 0 &&
			fb.keys[from.slot] == from.key
		if ok {
			tb.keys[ts] = fb.keys[from.slot]
			tb.vals[ts] = fb.vals[from.slot]
			tb.occ |= 1 << ts
			var zero V
			fb.vals[from.slot] = zero
			fb.occ &^= 1 << from.slot
		}
		unlock()
		if !ok {
			return false
		}
	}
	return true
}

// grow doubles the bucket array under the exclusive resize lock and
// reinserts every entry. seenBuckets is the bucket count the caller
// observed; if another goroutine already resized, grow is a no-op.
func (m *Map[V]) grow(seenBuckets int) {
	m.resizeMu.Lock()
	defer m.resizeMu.Unlock()
	if len(m.buckets) != seenBuckets {
		return
	}
	for {
		old := m.buckets
		nb := len(old) * 2
		m.buckets = make([]bucket[V], nb)
		m.mask = uint64(nb - 1)
		if m.reinsertAll(old) {
			return
		}
		// Extremely unlikely: even the doubled table could not place some
		// key within the displacement budget. Double again.
	}
}

// reinsertAll moves all entries of old into m.buckets (exclusive access
// assumed). Returns false if any entry cannot be placed.
func (m *Map[V]) reinsertAll(old []bucket[V]) bool {
	for bi := range old {
		ob := &old[bi]
		for s := 0; s < slotsPerBucket; s++ {
			if ob.occ&(1<<s) == 0 {
				continue
			}
			if !m.placeSerial(ob.keys[s], ob.vals[s]) {
				return false
			}
		}
	}
	return true
}

// placeSerial inserts key/val assuming exclusive table access, using greedy
// random-walk displacement with a generous bound.
func (m *Map[V]) placeSerial(key uint64, val V) bool {
	k, v := key, val
	for hop := 0; hop < 512; hop++ {
		b1 := hashtbl.Mix(k) & m.mask
		b2 := hashtbl.Mix2(k) & m.mask
		for _, b := range [2]uint64{b1, b2} {
			if s := freeSlot(&m.buckets[b]); s >= 0 {
				m.buckets[b].keys[s] = k
				m.buckets[b].vals[s] = v
				m.buckets[b].occ |= 1 << s
				return true
			}
		}
		// Evict the slot chosen by the hop counter from b1's side.
		victim := hop % slotsPerBucket
		tgt := b1
		if hop%2 == 1 {
			tgt = b2
		}
		bkt := &m.buckets[tgt]
		bkt.keys[victim], k = k, bkt.keys[victim]
		bkt.vals[victim], v = v, bkt.vals[victim]
	}
	return false
}

// Iterate calls fn for every key/value pair. It must not run concurrently
// with writers (the aggregation pipeline iterates strictly after the build
// phase, matching the paper's methodology). fn may mutate the value.
func (m *Map[V]) Iterate(fn func(key uint64, val *V) bool) {
	for bi := range m.buckets {
		bkt := &m.buckets[bi]
		for s := 0; s < slotsPerBucket; s++ {
			if bkt.occ&(1<<s) != 0 {
				if !fn(bkt.keys[s], &bkt.vals[s]) {
					return
				}
			}
		}
	}
}

// Delete removes key, returning whether it was present.
func (m *Map[V]) Delete(key uint64) bool {
	m.resizeMu.RLock()
	defer m.resizeMu.RUnlock()
	b1, b2 := m.twoBuckets(key)
	unlock := m.lockPair(b1, b2)
	defer unlock()
	for _, b := range [2]uint64{b1, b2} {
		if s := findInBucket(&m.buckets[b], key); s >= 0 {
			bkt := &m.buckets[b]
			var zero V
			bkt.vals[s] = zero
			bkt.keys[s] = 0
			bkt.occ &^= 1 << s
			m.addSize(-1) // its own lock; safe under bucket locks
			return true
		}
	}
	return false
}
