package strtree

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"memagg/internal/dataset"
)

func words(n int, seed uint64) []string {
	rng := dataset.NewRNG(seed)
	letters := "abcdef"
	out := make([]string, n)
	for i := range out {
		l := int(rng.Uint64n(10))
		var b strings.Builder
		for j := 0; j < l; j++ {
			b.WriteByte(letters[rng.Uint64n(uint64(len(letters)))])
		}
		out[i] = b.String() // small alphabet: many shared prefixes + dups
	}
	return out
}

func TestUpsertGetBasic(t *testing.T) {
	tr := New[int]()
	keys := []string{"apple", "app", "application", "banana", "", "apply", "b"}
	for i, k := range keys {
		*tr.Upsert(k) = i
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(keys))
	}
	for i, k := range keys {
		v := tr.Get(k)
		if v == nil || *v != i {
			t.Fatalf("Get(%q) wrong", k)
		}
	}
	for _, absent := range []string{"ap", "appl", "applez", "c", "bananaa"} {
		if tr.Get(absent) != nil {
			t.Fatalf("found absent key %q", absent)
		}
	}
}

func TestPrefixOfEachOther(t *testing.T) {
	// The defining variable-length-key hazard: every key a prefix of the
	// next.
	tr := New[uint64]()
	chain := []string{"", "a", "aa", "aaa", "aaaa", "aaaaa"}
	for _, k := range chain {
		*tr.Upsert(k)++
	}
	for _, k := range chain {
		if v := tr.Get(k); v == nil || *v != 1 {
			t.Fatalf("chain key %q wrong", k)
		}
	}
	var got []string
	tr.Iterate(func(k string, _ *uint64) bool {
		got = append(got, k)
		return true
	})
	if !sort.StringsAreSorted(got) || len(got) != len(chain) {
		t.Fatalf("chain iteration = %q", got)
	}
}

func TestIterateLexicographic(t *testing.T) {
	tr := New[uint64]()
	ws := words(30000, 7)
	uniq := map[string]uint64{}
	for _, w := range ws {
		*tr.Upsert(w)++
		uniq[w]++
	}
	if tr.Len() != len(uniq) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(uniq))
	}
	var got []string
	tr.Iterate(func(k string, v *uint64) bool {
		if uniq[k] != *v {
			t.Fatalf("count for %q = %d want %d", k, *v, uniq[k])
		}
		got = append(got, k)
		return true
	})
	if len(got) != len(uniq) {
		t.Fatalf("iterated %d keys want %d", len(got), len(uniq))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("iteration not lexicographic")
	}
}

func TestBinaryKeys(t *testing.T) {
	tr := New[int]()
	keys := []string{"\x00", "\x00\x00", "\xff", "\xff\xfe", "a\x00b", "a"}
	for i, k := range keys {
		*tr.Upsert(k) = i
	}
	for i, k := range keys {
		if v := tr.Get(k); v == nil || *v != i {
			t.Fatalf("binary key %q wrong", k)
		}
	}
}

func TestNodeGrowthThrough256(t *testing.T) {
	tr := New[int]()
	// 256 distinct first bytes under a shared prefix.
	for b := 0; b < 256; b++ {
		*tr.Upsert("p" + string(byte(b))) = b
	}
	for b := 0; b < 256; b++ {
		v := tr.Get("p" + string(byte(b)))
		if v == nil || *v != b {
			t.Fatalf("byte child %d lost", b)
		}
	}
	var got []string
	tr.Iterate(func(k string, _ *int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 256 || !sort.StringsAreSorted(got) {
		t.Fatal("node256 iteration broken")
	}
}

func TestPrefixIterate(t *testing.T) {
	tr := New[uint64]()
	data := []string{"car", "cart", "carbon", "cat", "dog", "", "c", "carbonara"}
	for _, k := range data {
		*tr.Upsert(k)++
	}
	collect := func(p string) []string {
		var out []string
		tr.PrefixIterate(p, func(k string, _ *uint64) bool {
			out = append(out, k)
			return true
		})
		return out
	}
	want := func(p string) []string {
		var out []string
		for _, k := range data {
			if strings.HasPrefix(k, p) {
				out = append(out, k)
			}
		}
		sort.Strings(out)
		return out
	}
	for _, p := range []string{"", "c", "car", "carb", "carbonara", "dog", "x", "carbonaraz"} {
		got := collect(p)
		w := want(p)
		if fmt.Sprint(got) != fmt.Sprint(w) {
			t.Fatalf("PrefixIterate(%q) = %v want %v", p, got, w)
		}
	}
}

func TestPointerStability(t *testing.T) {
	tr := New[uint64]()
	p := tr.Upsert("stable")
	*p = 5
	for _, w := range words(10000, 9) {
		tr.Upsert(w)
	}
	*p++
	if *tr.Get("stable") != 6 {
		t.Fatal("leaf pointer invalidated")
	}
}

func TestQuickPropertyMatchesModel(t *testing.T) {
	f := func(keys []string) bool {
		tr := New[uint64]()
		model := map[string]uint64{}
		for _, k := range keys {
			*tr.Upsert(k)++
			model[k]++
		}
		if tr.Len() != len(model) {
			return false
		}
		ok := true
		prev := ""
		first := true
		tr.Iterate(func(k string, v *uint64) bool {
			if model[k] != *v || (!first && k <= prev) {
				ok = false
			}
			prev, first = k, false
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPrefixIterateMatchesFilter(t *testing.T) {
	f := func(keys []string, prefix string) bool {
		if len(prefix) > 3 {
			prefix = prefix[:3]
		}
		tr := New[struct{}]()
		uniq := map[string]bool{}
		for _, k := range keys {
			tr.Upsert(k)
			uniq[k] = true
		}
		want := 0
		for k := range uniq {
			if strings.HasPrefix(k, prefix) {
				want++
			}
		}
		got := 0
		tr.PrefixIterate(prefix, func(k string, _ *struct{}) bool {
			if !strings.HasPrefix(k, prefix) {
				return false
			}
			got++
			return true
		})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteBasic(t *testing.T) {
	tr := New[int]()
	keys := []string{"apple", "app", "application", "banana", "", "apply", "b"}
	for i, k := range keys {
		*tr.Upsert(k) = i
	}
	for i, k := range keys {
		if i%2 == 0 {
			if !tr.Delete(k) {
				t.Fatalf("Delete(%q) reported absent", k)
			}
		}
	}
	if tr.Delete("nope") || tr.Delete("apple") {
		t.Fatal("deleted absent key")
	}
	for i, k := range keys {
		want := i%2 == 1
		if got := tr.Get(k) != nil; got != want {
			t.Fatalf("Get(%q)=%v want %v", k, got, want)
		}
	}
}

func TestDeleteAllEmptiesTree(t *testing.T) {
	tr := New[uint64]()
	ws := words(20000, 13)
	uniq := map[string]bool{}
	for _, w := range ws {
		tr.Upsert(w)
		uniq[w] = true
	}
	for w := range uniq {
		if !tr.Delete(w) {
			t.Fatalf("Delete(%q) failed", w)
		}
	}
	if tr.Len() != 0 || tr.root != nil {
		t.Fatal("tree not empty")
	}
}

func TestDeletePrefixChain(t *testing.T) {
	tr := New[uint64]()
	chain := []string{"", "a", "aa", "aaa", "aaaa"}
	for _, k := range chain {
		tr.Upsert(k)
	}
	// Remove the middle links; ends must survive with prefixes re-merged.
	tr.Delete("a")
	tr.Delete("aaa")
	for _, k := range []string{"", "aa", "aaaa"} {
		if tr.Get(k) == nil {
			t.Fatalf("survivor %q lost", k)
		}
	}
	for _, k := range []string{"a", "aaa"} {
		if tr.Get(k) != nil {
			t.Fatalf("deleted %q still present", k)
		}
	}
	var got []string
	tr.Iterate(func(k string, _ *uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 3 || !sort.StringsAreSorted(got) {
		t.Fatalf("iteration after chain deletes = %q", got)
	}
}

func TestQuickDeleteMatchesModel(t *testing.T) {
	f := func(ops []string, dels []uint8) bool {
		tr := New[uint64]()
		model := map[string]uint64{}
		for _, k := range ops {
			if len(k) > 5 {
				k = k[:5]
			}
			*tr.Upsert(k)++
			model[k]++
		}
		di := 0
		for k := range model {
			if di < len(dels) && dels[di]%2 == 0 {
				delete(model, k)
				if !tr.Delete(k) {
					return false
				}
			}
			di++
		}
		if tr.Len() != len(model) {
			return false
		}
		ok := true
		tr.Iterate(func(k string, v *uint64) bool {
			if model[k] != *v {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
