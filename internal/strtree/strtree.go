// Package strtree implements an adaptive radix tree over variable-length
// string keys — the extension of the paper's ART that its Section 3.1
// anticipates for string workloads (and that HOT, discussed in Section 7,
// targets).
//
// Layout follows the integer ART (adaptive Node4/16/48/256 with path
// compression), with the one addition variable-length keys demand: a key
// may terminate exactly where another key continues ("a" vs "ab"), so
// every inner node carries an optional end-of-key leaf alongside its byte
// children. Iteration yields the end-of-key leaf before any children,
// giving exact lexicographic order (shorter strings sort before their
// extensions).
//
// Arbitrary byte strings are supported, including embedded NUL bytes and
// the empty string.
package strtree

type leaf[V any] struct {
	key string
	val V
}

// The four adaptive layouts repeat the shared fields (prefix, end,
// numChildren) rather than embedding a header: a generic embedded struct
// cannot reference the node's type parameter for the end leaf.

type node4[V any] struct {
	numChildren int
	prefix      string
	end         *leaf[V]
	keys        [4]byte
	children    [4]any
}

type node16[V any] struct {
	numChildren int
	prefix      string
	end         *leaf[V]
	keys        [16]byte
	children    [16]any
}

type node48[V any] struct {
	numChildren int
	prefix      string
	end         *leaf[V]
	index       [256]uint8
	children    [48]any
}

type node256[V any] struct {
	numChildren int
	prefix      string
	end         *leaf[V]
	children    [256]any
}

// Tree is an adaptive radix tree map from string to V.
type Tree[V any] struct {
	root any
	size int
}

// New returns an empty tree.
func New[V any]() *Tree[V] { return &Tree[V]{} }

// Len returns the number of stored keys.
func (t *Tree[V]) Len() int { return t.size }

// nodeMeta returns pointers to the shared fields of an inner node.
func (t *Tree[V]) nodeMeta(n any) (prefix *string, end **leaf[V], num *int) {
	switch n := n.(type) {
	case *node4[V]:
		return &n.prefix, &n.end, &n.numChildren
	case *node16[V]:
		return &n.prefix, &n.end, &n.numChildren
	case *node48[V]:
		return &n.prefix, &n.end, &n.numChildren
	case *node256[V]:
		return &n.prefix, &n.end, &n.numChildren
	}
	return nil, nil, nil
}

func (t *Tree[V]) findChild(n any, b byte) *any {
	switch n := n.(type) {
	case *node4[V]:
		for i := 0; i < n.numChildren; i++ {
			if n.keys[i] == b {
				return &n.children[i]
			}
		}
	case *node16[V]:
		for i := 0; i < n.numChildren; i++ {
			if n.keys[i] == b {
				return &n.children[i]
			}
		}
	case *node48[V]:
		if idx := n.index[b]; idx != 0 {
			return &n.children[idx-1]
		}
	case *node256[V]:
		if n.children[b] != nil {
			return &n.children[b]
		}
	}
	return nil
}

// addChild inserts child under byte b, growing the layout when full, and
// returns the node to store in the parent slot.
func (t *Tree[V]) addChild(n any, b byte, child any) any {
	switch n := n.(type) {
	case *node4[V]:
		if n.numChildren < 4 {
			i := 0
			for i < n.numChildren && n.keys[i] < b {
				i++
			}
			copy(n.keys[i+1:n.numChildren+1], n.keys[i:n.numChildren])
			copy(n.children[i+1:n.numChildren+1], n.children[i:n.numChildren])
			n.keys[i] = b
			n.children[i] = child
			n.numChildren++
			return n
		}
		g := &node16[V]{numChildren: 4, prefix: n.prefix, end: n.end}
		copy(g.keys[:], n.keys[:])
		copy(g.children[:], n.children[:])
		return t.addChild(g, b, child)
	case *node16[V]:
		if n.numChildren < 16 {
			i := 0
			for i < n.numChildren && n.keys[i] < b {
				i++
			}
			copy(n.keys[i+1:n.numChildren+1], n.keys[i:n.numChildren])
			copy(n.children[i+1:n.numChildren+1], n.children[i:n.numChildren])
			n.keys[i] = b
			n.children[i] = child
			n.numChildren++
			return n
		}
		g := &node48[V]{numChildren: 16, prefix: n.prefix, end: n.end}
		for i := 0; i < 16; i++ {
			g.index[n.keys[i]] = uint8(i + 1)
			g.children[i] = n.children[i]
		}
		return t.addChild(g, b, child)
	case *node48[V]:
		if n.numChildren < 48 {
			n.children[n.numChildren] = child
			n.index[b] = uint8(n.numChildren + 1)
			n.numChildren++
			return n
		}
		g := &node256[V]{numChildren: 48, prefix: n.prefix, end: n.end}
		for bb := 0; bb < 256; bb++ {
			if idx := n.index[bb]; idx != 0 {
				g.children[bb] = n.children[idx-1]
			}
		}
		return t.addChild(g, b, child)
	case *node256[V]:
		n.children[b] = child
		n.numChildren++
		return n
	}
	panic("strtree: addChild on non-inner node")
}

// commonPrefixLen returns the length of the longest common prefix of a and
// b.
func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// Upsert returns a pointer to the value for key, inserting a zero value if
// absent. Pointers remain valid for the life of the tree.
func (t *Tree[V]) Upsert(key string) *V {
	if t.root == nil {
		lf := &leaf[V]{key: key}
		t.root = lf
		t.size++
		return &lf.val
	}
	slot := &t.root
	depth := 0
	for {
		if lf, ok := (*slot).(*leaf[V]); ok {
			if lf.key == key {
				return &lf.val
			}
			// Split the leaf: common suffix-prefix from depth.
			cp := depth + commonPrefixLen(lf.key[depth:], key[depth:])
			nn := &node4[V]{prefix: key[depth:cp]}
			newLf := &leaf[V]{key: key}
			t.attach(nn, lf, cp)
			t.attach(nn, newLf, cp)
			*slot = nn
			t.size++
			return &newLf.val
		}
		prefix, endp, _ := t.nodeMeta(*slot)
		p := *prefix
		rem := key[depth:]
		cl := commonPrefixLen(p, rem)
		if cl < len(p) {
			// The search key diverges inside (or ends within) the
			// compressed prefix: split the prefix.
			nn := &node4[V]{prefix: p[:cl]}
			old := *slot
			oldByte := p[cl]
			*prefix = p[cl+1:]
			nn2 := t.addChild(nn, oldByte, old)
			newLf := &leaf[V]{key: key}
			if cl == len(rem) {
				// Key terminates exactly at the split point.
				n4 := nn2.(*node4[V])
				n4.end = newLf
				*slot = n4
			} else {
				*slot = t.addChild(nn2, rem[cl], newLf)
			}
			t.size++
			return &newLf.val
		}
		depth += len(p)
		if depth == len(key) {
			// Key terminates at this node.
			if *endp == nil {
				lf := &leaf[V]{key: key}
				*endp = lf
				t.size++
				return &lf.val
			}
			return &(*endp).val
		}
		b := key[depth]
		child := t.findChild(*slot, b)
		if child == nil {
			lf := &leaf[V]{key: key}
			*slot = t.addChild(*slot, b, lf)
			t.size++
			return &lf.val
		}
		slot = child
		depth++
	}
}

// attach links lf under nn: as end-of-key leaf if its key ends at cp, else
// as a byte child. nn must have room (fresh node4).
func (t *Tree[V]) attach(nn *node4[V], lf *leaf[V], cp int) {
	if len(lf.key) == cp {
		nn.end = lf
		return
	}
	t.addChild(nn, lf.key[cp], lf)
}

// Get returns a pointer to the value stored for key, or nil.
func (t *Tree[V]) Get(key string) *V {
	n := t.root
	depth := 0
	for n != nil {
		if lf, ok := n.(*leaf[V]); ok {
			if lf.key == key {
				return &lf.val
			}
			return nil
		}
		prefix, endp, _ := t.nodeMeta(n)
		p := *prefix
		rem := key[depth:]
		if len(rem) < len(p) || rem[:len(p)] != p {
			return nil
		}
		depth += len(p)
		if depth == len(key) {
			if *endp != nil {
				return &(*endp).val
			}
			return nil
		}
		child := t.findChild(n, key[depth])
		if child == nil {
			return nil
		}
		n = *child
		depth++
	}
	return nil
}

// Iterate calls fn for every key/value pair in lexicographic order,
// stopping early if fn returns false.
func (t *Tree[V]) Iterate(fn func(key string, val *V) bool) {
	t.iter(t.root, fn)
}

func (t *Tree[V]) iter(n any, fn func(string, *V) bool) bool {
	switch n := n.(type) {
	case nil:
		return true
	case *leaf[V]:
		return fn(n.key, &n.val)
	}
	_, endp, _ := t.nodeMeta(n)
	if *endp != nil {
		if !fn((*endp).key, &(*endp).val) {
			return false
		}
	}
	switch n := n.(type) {
	case *node4[V]:
		for i := 0; i < n.numChildren; i++ {
			if !t.iter(n.children[i], fn) {
				return false
			}
		}
	case *node16[V]:
		for i := 0; i < n.numChildren; i++ {
			if !t.iter(n.children[i], fn) {
				return false
			}
		}
	case *node48[V]:
		for b := 0; b < 256; b++ {
			if idx := n.index[b]; idx != 0 {
				if !t.iter(n.children[idx-1], fn) {
					return false
				}
			}
		}
	case *node256[V]:
		for b := 0; b < 256; b++ {
			if n.children[b] != nil {
				if !t.iter(n.children[b], fn) {
					return false
				}
			}
		}
	}
	return true
}

// PrefixIterate calls fn for every pair whose key starts with prefix, in
// lexicographic order — the string analog of the integer trees' range
// query (Q7 over a key prefix).
func (t *Tree[V]) PrefixIterate(prefix string, fn func(key string, val *V) bool) {
	n := t.root
	depth := 0
	for n != nil {
		if lf, ok := n.(*leaf[V]); ok {
			if len(lf.key) >= len(prefix) && lf.key[:len(prefix)] == prefix {
				fn(lf.key, &lf.val)
			}
			return
		}
		np, _, _ := t.nodeMeta(n)
		p := *np
		rem := prefix[depth:]
		if len(rem) <= len(p) {
			// The whole subtree matches iff the node path extends rem.
			if p[:len(rem)] == rem {
				t.iter(n, fn)
			}
			return
		}
		if rem[:len(p)] != p {
			return
		}
		depth += len(p)
		child := t.findChild(n, prefix[depth])
		if child == nil {
			return
		}
		n = *child
		depth++
	}
}
