package strtree

import (
	"sort"
	"strings"
	"testing"
)

// FuzzTreeMatchesMap drives the string ART with arbitrary key material and
// checks it against a map plus lexicographic iteration order.
func FuzzTreeMatchesMap(f *testing.F) {
	f.Add("a\x00ab\x00abc\x00\x00b")
	f.Add("")
	f.Add("prefix/a\x00prefix/b\x00prefix\x00other")
	f.Fuzz(func(t *testing.T, blob string) {
		keys := strings.Split(blob, "\x00")
		tr := New[uint64]()
		model := map[string]uint64{}
		for _, k := range keys {
			*tr.Upsert(k)++
			model[k]++
		}
		if tr.Len() != len(model) {
			t.Fatalf("Len=%d want %d", tr.Len(), len(model))
		}
		var got []string
		tr.Iterate(func(k string, v *uint64) bool {
			if model[k] != *v {
				t.Fatalf("count for %q", k)
			}
			got = append(got, k)
			return true
		})
		if !sort.StringsAreSorted(got) {
			t.Fatalf("iteration unsorted: %q", got)
		}
		for k := range model {
			if tr.Get(k) == nil {
				t.Fatalf("lost key %q", k)
			}
		}
		// Prefix scans must match a filter for a few derived prefixes.
		for _, k := range keys[:min(3, len(keys))] {
			p := k
			if len(p) > 2 {
				p = p[:2]
			}
			want := 0
			for m := range model {
				if strings.HasPrefix(m, p) {
					want++
				}
			}
			n := 0
			tr.PrefixIterate(p, func(string, *uint64) bool {
				n++
				return true
			})
			if n != want {
				t.Fatalf("prefix %q: %d want %d", p, n, want)
			}
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
