package strtree

// Delete removes key from the tree, returning whether it was present.
// Layouts shrink on the reverse of the growth schedule; a node reduced to
// a single leaf (one child and no end leaf, or an end leaf and no
// children) collapses into that leaf, and a childless-but-ended chain
// folds its prefix exactly as the integer ART does.
func (t *Tree[V]) Delete(key string) bool {
	switch n := t.root.(type) {
	case nil:
		return false
	case *leaf[V]:
		if n.key != key {
			return false
		}
		t.root = nil
		t.size--
		return true
	}
	if !t.deleteRec(&t.root, key, 0) {
		return false
	}
	t.size--
	return true
}

func (t *Tree[V]) deleteRec(slot *any, key string, depth int) bool {
	prefix, endp, _ := t.nodeMeta(*slot)
	p := *prefix
	rem := key[depth:]
	if len(rem) < len(p) || rem[:len(p)] != p {
		return false
	}
	depth += len(p)
	if depth == len(key) {
		if *endp == nil {
			return false
		}
		*endp = nil
		t.maybeCollapse(slot)
		return true
	}
	b := key[depth]
	childSlot := t.findChild(*slot, b)
	if childSlot == nil {
		return false
	}
	if lf, ok := (*childSlot).(*leaf[V]); ok {
		if lf.key != key {
			return false
		}
		t.removeChild(slot, b)
		return true
	}
	return t.deleteRec(childSlot, key, depth+1)
}

// removeChild deletes the child entry for byte b, shrinking the layout and
// collapsing single-entry nodes.
func (t *Tree[V]) removeChild(slot *any, b byte) {
	switch n := (*slot).(type) {
	case *node4[V]:
		i := 0
		for i < n.numChildren && n.keys[i] != b {
			i++
		}
		copy(n.keys[i:n.numChildren-1], n.keys[i+1:n.numChildren])
		copy(n.children[i:n.numChildren-1], n.children[i+1:n.numChildren])
		n.numChildren--
		n.children[n.numChildren] = nil
	case *node16[V]:
		i := 0
		for i < n.numChildren && n.keys[i] != b {
			i++
		}
		copy(n.keys[i:n.numChildren-1], n.keys[i+1:n.numChildren])
		copy(n.children[i:n.numChildren-1], n.children[i+1:n.numChildren])
		n.numChildren--
		n.children[n.numChildren] = nil
		if n.numChildren <= 3 {
			s := &node4[V]{numChildren: n.numChildren, prefix: n.prefix, end: n.end}
			copy(s.keys[:], n.keys[:n.numChildren])
			copy(s.children[:], n.children[:n.numChildren])
			*slot = s
		}
	case *node48[V]:
		idx := n.index[b]
		n.index[b] = 0
		last := uint8(n.numChildren)
		if idx != last {
			for bb := 0; bb < 256; bb++ {
				if n.index[bb] == last {
					n.index[bb] = idx
					break
				}
			}
			n.children[idx-1] = n.children[last-1]
		}
		n.children[last-1] = nil
		n.numChildren--
		if n.numChildren <= 12 {
			s := &node16[V]{numChildren: 0, prefix: n.prefix, end: n.end}
			for bb := 0; bb < 256; bb++ {
				if ix := n.index[bb]; ix != 0 {
					s.keys[s.numChildren] = byte(bb)
					s.children[s.numChildren] = n.children[ix-1]
					s.numChildren++
				}
			}
			*slot = s
		}
	case *node256[V]:
		n.children[b] = nil
		n.numChildren--
		if n.numChildren <= 36 {
			s := &node48[V]{numChildren: 0, prefix: n.prefix, end: n.end}
			for bb := 0; bb < 256; bb++ {
				if n.children[bb] != nil {
					s.children[s.numChildren] = n.children[bb]
					s.index[bb] = uint8(s.numChildren + 1)
					s.numChildren++
				}
			}
			*slot = s
		}
	}
	t.maybeCollapse(slot)
}

// maybeCollapse folds the node at slot when it holds a single entry:
// either only the end-of-key leaf (the node becomes that leaf) or exactly
// one child and no end leaf (the node merges its prefix and radix byte
// into the child).
func (t *Tree[V]) maybeCollapse(slot *any) {
	n4, ok := (*slot).(*node4[V])
	if !ok {
		return
	}
	switch {
	case n4.numChildren == 0 && n4.end != nil:
		*slot = n4.end
	case n4.numChildren == 1 && n4.end == nil:
		child := n4.children[0]
		if lf, isLeaf := child.(*leaf[V]); isLeaf {
			*slot = lf
			return
		}
		cp, _, _ := t.nodeMeta(child)
		// string([]byte{b}), not string(b): the latter UTF-8 encodes the
		// byte as a code point and corrupts keys >= 0x80.
		*cp = n4.prefix + string([]byte{n4.keys[0]}) + *cp
		*slot = child
	}
}
