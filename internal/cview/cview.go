// Package cview is the continuous-view subsystem: named standing queries
// over tumbling or sliding windows of a stream, maintained incrementally
// from the seal-publication path instead of recomputed per read.
//
// A view is a ring of panes in watermark order. A pane is an agg.Partial
// table — the same mergeable state the stream's deltas and generations
// hold — covering PaneRows rows of the publication watermark: pane p owns
// the rows whose visibility watermark falls in (p*W, (p+1)*W]. Sealed
// deltas are folded into panes as they publish (the stream calls OnSeal
// under its view lock, right after the WAL append, so pane assignment
// follows watermark order exactly); a whole delta lands in the pane that
// contains its end watermark — deltas are the stream's atomic unit of
// visibility, so windows advance delta by delta, never splitting one.
//
// Reads merge the live panes with the exact Partial.Merge and run the
// registered query over the merged table, so a view's result is identical
// to the batch query over the rows its window covers (the window-vs-batch
// equivalence gate in internal/stream asserts reflect.DeepEqual,
// holistics included). Results are cached per view keyed by a version
// counter — a read of an unchanged view is a pointer load.
//
// Retention is evaluated when a seal opens a new pane: a sliding window
// of N panes keeps [p-N+1, p]; a tumbling window keeps the current
// N-pane bucket [p - p%N, p] (it accumulates, then drops whole). Evicted
// panes free their tables and arenas wholesale.
//
// Restart recovery is two-layered: view definitions persist on every
// Register/Drop (DEFS), pane state persists with every stream checkpoint
// and at close (PANES), and the WAL suffix replays through the same
// OnSeal hook as live ingest. A view whose replay cannot cover part of
// its window — the log was truncated past its saved state — reports
// Truncated until the window slides past the gap, rather than serving a
// silently short count.
package cview

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/hashtbl"
	"memagg/internal/obs"
)

// Sentinel errors, re-exported by the memagg facade.
var (
	// ErrExists reports a Register with a name already registered.
	ErrExists = errors.New("cview: view already registered")
	// ErrUnknown reports a lookup of a view name never registered (or
	// dropped).
	ErrUnknown = errors.New("cview: unknown view")
	// ErrBadSpec reports an invalid view specification.
	ErrBadSpec = errors.New("cview: invalid view spec")
)

// maxPanes bounds a window's pane count: a ring is merged whole on every
// uncached read, so an absurd count is a config bug, not a bigger window.
const maxPanes = 1 << 16

// Spec defines one continuous view.
type Spec struct {
	// Name identifies the view (Register/Result/Drop key, HTTP path
	// element). Non-empty, no '/', at most 128 bytes.
	Name string

	// Query is the standing query evaluated over the window.
	Query Query

	// PaneRows is the pane width in watermark rows: pane p covers the
	// rows whose publication watermark lies in (p*PaneRows, (p+1)*PaneRows].
	PaneRows uint64

	// Panes is the window length in panes.
	Panes int

	// Sliding selects the window kind: a sliding window always covers the
	// last Panes panes; a tumbling window accumulates the current
	// Panes-pane bucket and drops it whole when the next bucket opens.
	Sliding bool
}

func (sp Spec) validate(holistic bool) error {
	if sp.Name == "" || len(sp.Name) > 128 {
		return fmt.Errorf("%w: name must be 1..128 bytes", ErrBadSpec)
	}
	for i := 0; i < len(sp.Name); i++ {
		if sp.Name[i] == '/' {
			return fmt.Errorf("%w: name must not contain '/'", ErrBadSpec)
		}
	}
	if sp.PaneRows == 0 {
		return fmt.Errorf("%w: PaneRows must be >= 1", ErrBadSpec)
	}
	if sp.Panes < 1 || sp.Panes > maxPanes {
		return fmt.Errorf("%w: Panes must be in [1, %d]", ErrBadSpec, maxPanes)
	}
	if err := sp.Query.validate(); err != nil {
		return err
	}
	if sp.Query.NeedsValues() && !holistic {
		return fmt.Errorf("%s view %q: %w", sp.Query, sp.Name, agg.ErrUnsupported)
	}
	return nil
}

// retentionFloor returns the lowest pane index retained while pane pIdx
// is current.
func (sp Spec) retentionFloor(pIdx uint64) uint64 {
	n := uint64(sp.Panes)
	if sp.Sliding {
		if pIdx >= n-1 {
			return pIdx - (n - 1)
		}
		return 0
	}
	return pIdx - pIdx%n
}

// Fold merges one sealed delta's groups into a pane table. The stream
// supplies it per seal (closing over the delta), so cview never sees
// stream internals; withValues asks for the value multisets too (only
// ever true for views whose query needs them, on holistic streams).
type Fold func(t *hashtbl.LinearProbe[agg.Partial], ar *arena.Arena, withValues bool)

// Metrics is the instrument set a Registry records into; any field (or
// the whole struct) may be nil.
type Metrics struct {
	Updates      *obs.Counter // pane folds applied (at settle, one per view per seal)
	PanesOpened  *obs.Counter
	PanesEvicted *obs.Counter
	Reads        *obs.Counter   // Result calls
	ReadsCached  *obs.Counter   // Result calls answered by the version cache
	UpdateLat    *obs.Histogram // per-settle latency (a batch of deferred folds)
}

// Registry holds a stream's registered views. All methods are safe for
// concurrent use; OnSeal callers must serialize among themselves (the
// stream calls it under its publication lock, which also makes the
// watermark Register observes exact).
type Registry struct {
	holistic bool
	m        *Metrics

	// active mirrors len(views) so the per-seal fast path is one atomic
	// load, not a lock.
	active atomic.Int32

	mu    sync.RWMutex
	views map[string]*View
}

// NewRegistry builds an empty registry. holistic gates value-multiset
// queries; m may be nil.
func NewRegistry(holistic bool, m *Metrics) *Registry {
	return &Registry{holistic: holistic, m: m, views: make(map[string]*View)}
}

// Active reports whether any view is registered — the seal path's cheap
// pre-check.
func (r *Registry) Active() bool { return r.active.Load() > 0 }

// Len returns the number of registered views.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.views)
}

// Register adds a view starting at watermark startWM: rows already sealed
// at registration stay out of every window, rows sealed after flow in —
// no double counting either way.
func (r *Registry) Register(spec Spec, startWM uint64) error {
	if err := spec.validate(r.holistic); err != nil {
		return err
	}
	v := &View{
		spec:       spec,
		withValues: spec.Query.NeedsValues(),
		startWM:    startWM,
		lastWM:     startWM,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.views[spec.Name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, spec.Name)
	}
	r.views[spec.Name] = v
	r.active.Store(int32(len(r.views)))
	return nil
}

// Drop removes a view, reporting whether it existed.
func (r *Registry) Drop(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.views[name]; !ok {
		return false
	}
	delete(r.views, name)
	r.active.Store(int32(len(r.views)))
	return true
}

// OnSeal feeds one sealed delta to every view: the delta covers rows
// (prevWM, endWM] of the publication watermark and carries rows of them.
// Callers serialize OnSeal calls and deliver them in watermark order
// (live publication and WAL replay both do).
func (r *Registry) OnSeal(prevWM, endWM, rows uint64, fold Fold) {
	if !r.Active() {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, v := range r.views {
		v.absorb(r, prevWM, endWM, rows, fold)
	}
}

// NeedSeal reports whether any view still wants a delta ending at endWM —
// the replay path's pre-check, so recovery skips rebuilding deltas no
// view (and no other consumer) needs.
func (r *Registry) NeedSeal(endWM uint64) bool {
	if !r.Active() {
		return false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, v := range r.views {
		v.mu.Lock()
		want := endWM > v.barrier()
		v.mu.Unlock()
		if want {
			return true
		}
	}
	return false
}

// ReplayFloor returns the lowest watermark barrier across views and
// whether any view is registered: recovery must replay WAL records past
// that floor even when a base checkpoint already covers them, because
// views track panes the checkpoint cannot reconstruct.
func (r *Registry) ReplayFloor() (uint64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var (
		floor uint64
		any   bool
	)
	for _, v := range r.views {
		v.mu.Lock()
		b := v.barrier()
		v.mu.Unlock()
		if !any || b < floor {
			floor = b
		}
		any = true
	}
	return floor, any
}

// PanesLive returns the total live pane count across views.
func (r *Registry) PanesLive() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, v := range r.views {
		v.mu.Lock()
		n += len(v.panes)
		v.mu.Unlock()
	}
	return n
}

// Staleness returns the largest gap between the given ingested row count
// and any view's last absorbed watermark — rows ingested but not yet
// reflected in the most lagging view.
func (r *Registry) Staleness(ingested uint64) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var max uint64
	for _, v := range r.views {
		v.mu.Lock()
		wm := v.lastWM
		v.mu.Unlock()
		if ingested > wm && ingested-wm > max {
			max = ingested - wm
		}
	}
	return max
}

// Info is a point-in-time description of one view.
type Info struct {
	Spec           Spec
	StartWatermark uint64 // registration watermark: rows at or below stay out
	Watermark      uint64 // last absorbed seal watermark
	PanesLive      int
	PanesEvicted   uint64
	Version        uint64 // bumps on every fold and eviction
	Truncated      bool   // window currently overlaps a replay gap
}

// Info returns one view's description.
func (r *Registry) Info(name string) (Info, error) {
	r.mu.RLock()
	v, ok := r.views[name]
	r.mu.RUnlock()
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	return v.info(), nil
}

// Infos returns every view's description, sorted by name.
func (r *Registry) Infos() []Info {
	r.mu.RLock()
	views := make([]*View, 0, len(r.views))
	for _, v := range r.views {
		views = append(views, v)
	}
	r.mu.RUnlock()
	out := make([]Info, len(views))
	for i, v := range views {
		out[i] = v.info()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// Result evaluates (or serves cached) one view's standing query over its
// current window.
func (r *Registry) Result(name string) (*Result, error) {
	r.mu.RLock()
	v, ok := r.views[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	if r.m != nil && r.m.Reads != nil {
		r.m.Reads.Inc()
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.cached != nil {
		if r.m != nil && r.m.ReadsCached != nil {
			r.m.ReadsCached.Inc()
		}
		return v.cached, nil
	}
	res := v.compute(r.m)
	v.cached = res
	return res, nil
}

// View is one registered continuous view: its spec, its ring of live
// panes, and the water-level bookkeeping that makes recovery honest.
type View struct {
	spec       Spec
	withValues bool
	startWM    uint64

	mu      sync.Mutex
	panes   []*pane // ascending pane index; all >= the current retention floor
	lastWM  uint64  // watermark of the last absorbed seal (>= startWM)
	evicted uint64
	ver     uint64 // bumps on fold/evict; keys the result cache and ETags

	// gapLo/gapHi record rows (gapLo, gapHi] that can never reach this
	// view: a replayed seal arrived with prevWM past the view's barrier,
	// so the log no longer covers the stretch between them. Results
	// report Truncated while the window overlaps the gap.
	gapLo, gapHi uint64

	cached *Result
}

// pane is one window slot: the merged partial state of every delta whose
// end watermark fell inside it. Maintenance is deferred: absorb only
// queues the seal's fold closure, and the folds run when somebody needs
// the pane's table — a read, a pane snapshot, or the pending cap. That
// keeps the seal-publication path O(1) per view, and a pane evicted
// before it is ever read never pays for its folds at all.
type pane struct {
	idx     uint64
	t       *hashtbl.LinearProbe[agg.Partial]
	ar      *arena.Arena
	rows    uint64
	lastWM  uint64
	pending []Fold
}

// paneTableCap seeds a fresh pane's table; it grows like any delta table.
const paneTableCap = 1 << 8

// maxPendingFolds bounds a pane's deferred-fold queue. Each queued fold
// pins its sealed delta in memory, so a view that is never read must not
// accumulate them without bound: past the cap the ingest path settles
// inline, amortizing the cost it deferred.
const maxPendingFolds = 32

// settle applies the pane's queued folds. Callers hold the owning view's
// mu.
func (p *pane) settle(m *Metrics, withValues bool) {
	if len(p.pending) == 0 {
		return
	}
	mk := obs.Start()
	for _, f := range p.pending {
		f(p.t, p.ar, withValues)
	}
	if m != nil {
		if m.Updates != nil {
			m.Updates.Add(uint64(len(p.pending)))
		}
		if m.UpdateLat != nil {
			mk.Tick(m.UpdateLat)
		}
	}
	for i := range p.pending {
		p.pending[i] = nil
	}
	p.pending = p.pending[:0]
}

// settleAll applies every live pane's pending folds. Callers hold v.mu.
func (v *View) settleAll(m *Metrics) {
	for _, p := range v.panes {
		p.settle(m, v.withValues)
	}
}

// barrier returns the watermark at or below which seals are already
// accounted for (absorbed, or excluded by registration time). Callers
// hold v.mu.
func (v *View) barrier() uint64 {
	if v.lastWM > v.startWM {
		return v.lastWM
	}
	return v.startWM
}

// absorb accounts one sealed delta to the pane containing its end
// watermark, opening the pane (and evicting expired ones) if needed. The
// fold itself is deferred: absorb queues it on the pane and bumps the
// version, so the seal path stays O(1) per view and readers settle on
// demand.
func (v *View) absorb(r *Registry, prevWM, endWM, rows uint64, fold Fold) {
	v.mu.Lock()
	defer v.mu.Unlock()
	bar := v.barrier()
	if endWM <= bar {
		return // already absorbed, or sealed before registration
	}
	if prevWM > bar {
		// Replay skipped (bar, prevWM]: the WAL no longer carries those
		// rows for this view. Record the gap; reads flag Truncated until
		// the window slides wholly past it.
		v.gapLo, v.gapHi = bar, prevWM
	}
	pIdx := (endWM - 1) / v.spec.PaneRows
	cur := v.tail()
	if cur == nil || cur.idx != pIdx {
		cur = v.open(r, pIdx)
	}
	cur.pending = append(cur.pending, fold)
	if len(cur.pending) >= maxPendingFolds {
		cur.settle(r.m, v.withValues)
	}
	cur.rows += rows
	cur.lastWM = endWM
	v.lastWM = endWM
	v.ver++
	v.cached = nil
}

func (v *View) tail() *pane {
	if len(v.panes) == 0 {
		return nil
	}
	return v.panes[len(v.panes)-1]
}

// open appends a fresh pane for pIdx and evicts panes below the new
// retention floor. Callers hold v.mu.
func (v *View) open(r *Registry, pIdx uint64) *pane {
	floor := v.spec.retentionFloor(pIdx)
	drop := 0
	for drop < len(v.panes) && v.panes[drop].idx < floor {
		drop++
	}
	if drop > 0 {
		// Evicted panes free wholesale: the table and arena are the only
		// owners of the pane's state, and any still-pending folds are
		// dropped unrun — work a never-read pane never has to pay.
		copy(v.panes, v.panes[drop:])
		for i := len(v.panes) - drop; i < len(v.panes); i++ {
			v.panes[i] = nil
		}
		v.panes = v.panes[:len(v.panes)-drop]
		v.evicted += uint64(drop)
		if r.m != nil && r.m.PanesEvicted != nil {
			r.m.PanesEvicted.Add(uint64(drop))
		}
	}
	p := &pane{idx: pIdx, t: hashtbl.NewLinearProbe[agg.Partial](paneTableCap), ar: arena.New()}
	v.panes = append(v.panes, p)
	if r.m != nil && r.m.PanesOpened != nil {
		r.m.PanesOpened.Inc()
	}
	return p
}

func (v *View) info() Info {
	v.mu.Lock()
	defer v.mu.Unlock()
	return Info{
		Spec:           v.spec,
		StartWatermark: v.startWM,
		Watermark:      v.lastWM,
		PanesLive:      len(v.panes),
		PanesEvicted:   v.evicted,
		Version:        v.ver,
		Truncated:      v.truncated(),
	}
}

// truncated reports whether the current window still overlaps the
// recorded replay gap. Callers hold v.mu.
func (v *View) truncated() bool {
	if v.gapHi <= v.gapLo {
		return false
	}
	return v.windowStart() < v.gapHi
}

// windowStart returns the window's exclusive lower watermark bound: the
// retention floor's left edge, clamped to the registration watermark.
// Callers hold v.mu.
func (v *View) windowStart() uint64 {
	if len(v.panes) == 0 {
		return v.barrier()
	}
	ws := v.spec.retentionFloor(v.panes[len(v.panes)-1].idx) * v.spec.PaneRows
	if ws < v.startWM {
		ws = v.startWM
	}
	return ws
}
