package cview

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/hashtbl"
	"memagg/internal/wal"
)

// foldRows builds the Fold a seal of the given rows would supply.
func foldRows(keys, vals []uint64) Fold {
	return func(t *hashtbl.LinearProbe[agg.Partial], ar *arena.Arena, withValues bool) {
		for i, k := range keys {
			p := t.Upsert(k)
			p.Observe(vals[i])
			if withValues {
				p.Buffer(ar, vals[i])
			}
		}
	}
}

// seal feeds one synthetic sealed delta covering (prev, prev+len(keys)].
func seal(r *Registry, prev uint64, keys, vals []uint64) uint64 {
	end := prev + uint64(len(keys))
	r.OnSeal(prev, end, uint64(len(keys)), foldRows(keys, vals))
	return end
}

// rows builds n rows cycling over card keys with value = row index.
func rows(start, n int, card uint64) (keys, vals []uint64) {
	keys = make([]uint64, n)
	vals = make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(start+i) % card
		vals[i] = uint64(start + i)
	}
	return keys, vals
}

func sortValue(v any) any {
	switch vv := v.(type) {
	case []agg.GroupCount:
		sort.Slice(vv, func(i, j int) bool { return vv[i].Key < vv[j].Key })
	case []agg.GroupFloat:
		sort.Slice(vv, func(i, j int) bool { return vv[i].Key < vv[j].Key })
	case []agg.GroupUint:
		sort.Slice(vv, func(i, j int) bool { return vv[i].Key < vv[j].Key })
	}
	return v
}

func TestParseQuery(t *testing.T) {
	cases := []struct {
		in   string
		want QueryID
	}{
		{"q1", QCountByKey}, {"count_by_key", QCountByKey},
		{"q2", QAvgByKey}, {"avg_by_key", QAvgByKey},
		{"q3", QMedianByKey}, {"median_by_key", QMedianByKey},
		{"q4", QCount}, {"count", QCount},
		{"q5", QAvg}, {"avg", QAvg},
		{"q6", QMedian}, {"median", QMedian},
		{"q7", QRange}, {"range", QRange},
		{"sum", QReduce}, {"min", QReduce}, {"max", QReduce},
		{"quantile", QQuantile}, {"mode", QMode},
	}
	for _, c := range cases {
		q, err := ParseQuery(c.in, 0.5, 1, 2)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", c.in, err)
		}
		if q.ID != c.want {
			t.Fatalf("ParseQuery(%q) = %v, want id %v", c.in, q.ID, c.want)
		}
	}
	if _, err := ParseQuery("nope", 0, 0, 0); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown query: got %v, want ErrBadSpec", err)
	}
	if _, err := ParseQuery("quantile", 1.5, 0, 0); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("quantile p=1.5: got %v, want ErrBadSpec", err)
	}
	if q, _ := ParseQuery("q7", 0, 10, 20); q.Lo != 10 || q.Hi != 20 {
		t.Fatalf("q7 bounds not carried: %+v", q)
	}
}

func TestSpecValidation(t *testing.T) {
	r := NewRegistry(false, nil)
	ok := Spec{Name: "v", Query: Query{ID: QCountByKey}, PaneRows: 10, Panes: 2}
	bad := []Spec{
		func() Spec { s := ok; s.Name = ""; return s }(),
		func() Spec { s := ok; s.Name = "a/b"; return s }(),
		func() Spec { s := ok; s.Name = string(make([]byte, 129)); return s }(),
		func() Spec { s := ok; s.PaneRows = 0; return s }(),
		func() Spec { s := ok; s.Panes = 0; return s }(),
		func() Spec { s := ok; s.Panes = maxPanes + 1; return s }(),
		func() Spec { s := ok; s.Query = Query{ID: QueryID(99)}; return s }(),
	}
	for i, sp := range bad {
		if err := r.Register(sp, 0); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("bad spec %d: got %v, want ErrBadSpec", i, err)
		}
	}
	// Holistic query on a distributive registry.
	hs := ok
	hs.Query = Query{ID: QQuantile, P: 0.9}
	if err := r.Register(hs, 0); !errors.Is(err, agg.ErrUnsupported) {
		t.Fatalf("holistic on distributive: got %v, want ErrUnsupported", err)
	}
	if err := r.Register(ok, 0); err != nil {
		t.Fatalf("good spec: %v", err)
	}
	if err := r.Register(ok, 0); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate: got %v, want ErrExists", err)
	}
	if _, err := r.Result("ghost"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown result: got %v, want ErrUnknown", err)
	}
	if r.Drop("ghost") {
		t.Fatal("Drop(ghost) = true")
	}
	if !r.Drop("v") {
		t.Fatal("Drop(v) = false")
	}
	if r.Active() {
		t.Fatal("registry active after last drop")
	}
}

func TestRetentionFloor(t *testing.T) {
	cases := []struct {
		panes   int
		sliding bool
		pIdx    uint64
		want    uint64
	}{
		{3, true, 0, 0}, {3, true, 1, 0}, {3, true, 2, 0},
		{3, true, 3, 1}, {3, true, 10, 8},
		{3, false, 0, 0}, {3, false, 2, 0}, {3, false, 3, 3},
		{3, false, 5, 3}, {3, false, 6, 6},
		{1, true, 7, 7}, {1, false, 7, 7},
	}
	for _, c := range cases {
		sp := Spec{Panes: c.panes, Sliding: c.sliding}
		if got := sp.retentionFloor(c.pIdx); got != c.want {
			t.Errorf("retentionFloor(panes=%d sliding=%v, %d) = %d, want %d",
				c.panes, c.sliding, c.pIdx, got, c.want)
		}
	}
}

func TestPaneLifecycleSliding(t *testing.T) {
	r := NewRegistry(false, nil)
	sp := Spec{Name: "s", Query: Query{ID: QCount}, PaneRows: 100, Panes: 2, Sliding: true}
	if err := r.Register(sp, 0); err != nil {
		t.Fatal(err)
	}
	// Three 100-row seals, each landing exactly on a pane boundary.
	wm := uint64(0)
	for i := 0; i < 3; i++ {
		k, v := rows(i*100, 100, 8)
		wm = seal(r, wm, k, v)
	}
	res, err := r.Result("s")
	if err != nil {
		t.Fatal(err)
	}
	// Sliding 2-pane window over panes {1, 2}: rows (100, 300].
	if res.WindowStart != 100 || res.WindowEnd != 300 || res.Rows != 200 {
		t.Fatalf("window = (%d, %d] rows %d, want (100, 300] rows 200",
			res.WindowStart, res.WindowEnd, res.Rows)
	}
	if res.PanesLive != 2 {
		t.Fatalf("PanesLive = %d, want 2", res.PanesLive)
	}
	if got := res.Value.(uint64); got != 200 {
		t.Fatalf("QCount = %d, want 200", got)
	}
	info, err := r.Info("s")
	if err != nil {
		t.Fatal(err)
	}
	if info.PanesEvicted != 1 {
		t.Fatalf("PanesEvicted = %d, want 1", info.PanesEvicted)
	}
}

func TestPaneLifecycleTumbling(t *testing.T) {
	r := NewRegistry(false, nil)
	sp := Spec{Name: "t", Query: Query{ID: QCount}, PaneRows: 100, Panes: 2}
	if err := r.Register(sp, 0); err != nil {
		t.Fatal(err)
	}
	wm := uint64(0)
	check := func(wantStart, wantRows uint64, wantPanes int) {
		t.Helper()
		res, err := r.Result("t")
		if err != nil {
			t.Fatal(err)
		}
		if res.WindowStart != wantStart || res.Rows != wantRows || res.PanesLive != wantPanes {
			t.Fatalf("window (%d, %d] rows %d panes %d, want start %d rows %d panes %d",
				res.WindowStart, res.WindowEnd, res.Rows, res.PanesLive,
				wantStart, wantRows, wantPanes)
		}
	}
	k, v := rows(0, 100, 8)
	wm = seal(r, wm, k, v)
	check(0, 100, 1) // first pane of bucket {0,1}
	k, v = rows(100, 100, 8)
	wm = seal(r, wm, k, v)
	check(0, 200, 2) // bucket full
	k, v = rows(200, 100, 8)
	wm = seal(r, wm, k, v)
	check(200, 100, 1) // bucket {2,3} opened; {0,1} dropped whole
}

// TestSealSpansPanes: a seal whose end watermark lands inside pane 1 but
// whose rows started in pane 0 credits the whole delta to pane 1 — deltas
// are the atomic visibility unit, windows advance delta by delta.
func TestSealSpansPanes(t *testing.T) {
	r := NewRegistry(false, nil)
	sp := Spec{Name: "x", Query: Query{ID: QCount}, PaneRows: 100, Panes: 4, Sliding: true}
	if err := r.Register(sp, 0); err != nil {
		t.Fatal(err)
	}
	k, v := rows(0, 150, 8)
	seal(r, 0, k, v) // (0, 150] → pane (150-1)/100 = 1
	res, err := r.Result("x")
	if err != nil {
		t.Fatal(err)
	}
	if res.PanesLive != 1 || res.Rows != 150 {
		t.Fatalf("panes %d rows %d, want 1 pane holding all 150 rows", res.PanesLive, res.Rows)
	}
	info, _ := r.Info("x")
	if info.Watermark != 150 {
		t.Fatalf("watermark = %d, want 150", info.Watermark)
	}
}

func TestRegistrationBarrier(t *testing.T) {
	r := NewRegistry(false, nil)
	sp := Spec{Name: "late", Query: Query{ID: QCount}, PaneRows: 100, Panes: 8, Sliding: true}
	// Registered at watermark 200: the first two seals are history.
	if err := r.Register(sp, 200); err != nil {
		t.Fatal(err)
	}
	k, v := rows(0, 100, 8)
	seal(r, 0, k, v)   // pre-registration: skipped
	seal(r, 100, k, v) // pre-registration: skipped
	seal(r, 200, k, v) // first absorbed seal
	res, err := r.Result("late")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 100 || res.Value.(uint64) != 100 {
		t.Fatalf("rows = %d value = %v, want 100 (no double count)", res.Rows, res.Value)
	}
	if res.WindowStart < 200 {
		t.Fatalf("WindowStart = %d, want >= 200", res.WindowStart)
	}
}

func TestGapTruncation(t *testing.T) {
	r := NewRegistry(false, nil)
	sp := Spec{Name: "g", Query: Query{ID: QCount}, PaneRows: 100, Panes: 2, Sliding: true}
	if err := r.Register(sp, 0); err != nil {
		t.Fatal(err)
	}
	k, v := rows(0, 100, 8)
	seal(r, 0, k, v)
	// Replay jumps: rows (100, 300] are gone from the log.
	seal(r, 300, k, v)
	res, err := r.Result("g")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("window overlapping a replay gap must report Truncated")
	}
	// Slide past the gap: panes 4,5 → window starts at 400 > gapHi 300.
	seal(r, 400, k, v)
	seal(r, 500, k, v)
	res, err = r.Result("g")
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("window (%d, %d] is past the gap, must not report Truncated",
			res.WindowStart, res.WindowEnd)
	}
}

func TestResultCacheVersioning(t *testing.T) {
	m := &Metrics{}
	r := NewRegistry(false, m)
	sp := Spec{Name: "c", Query: Query{ID: QCountByKey}, PaneRows: 1000, Panes: 1}
	if err := r.Register(sp, 0); err != nil {
		t.Fatal(err)
	}
	k, v := rows(0, 100, 8)
	seal(r, 0, k, v)
	r1, err := r.Result("c")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := r.Result("c")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("unchanged view must serve the identical cached *Result")
	}
	seal(r, 100, k, v)
	r3, err := r.Result("c")
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 || r3.Version == r1.Version {
		t.Fatal("a fold must invalidate the cache and bump the version")
	}
}

func TestPersistRoundTrip(t *testing.T) {
	r := NewRegistry(true, nil)
	specs := []Spec{
		{Name: "counts", Query: Query{ID: QCountByKey}, PaneRows: 100, Panes: 3, Sliding: true},
		{Name: "p90", Query: Query{ID: QQuantile, P: 0.9}, PaneRows: 100, Panes: 2},
		{Name: "sums", Query: Query{ID: QReduce, Op: agg.OpSum}, PaneRows: 250, Panes: 2, Sliding: true},
	}
	for _, sp := range specs {
		if err := r.Register(sp, 0); err != nil {
			t.Fatal(err)
		}
	}
	wm := uint64(0)
	for i := 0; i < 5; i++ {
		k, v := rows(i*100, 100, 16)
		wm = seal(r, wm, k, v)
	}

	fs := wal.NewMemFS()
	if err := r.SaveDefs(fs, "cv"); err != nil {
		t.Fatal(err)
	}
	if err := r.SavePanes(fs, "cv"); err != nil {
		t.Fatal(err)
	}
	saved, err := Load(fs, "cv")
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) != len(specs) {
		t.Fatalf("Load returned %d views, want %d", len(saved), len(specs))
	}
	r2 := NewRegistry(true, nil)
	for _, sv := range saved {
		if err := r2.Restore(sv); err != nil {
			t.Fatal(err)
		}
	}
	for _, sp := range specs {
		a, err := r.Result(sp.Name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r2.Result(sp.Name)
		if err != nil {
			t.Fatal(err)
		}
		if a.WindowStart != b.WindowStart || a.WindowEnd != b.WindowEnd ||
			a.Rows != b.Rows || a.Groups != b.Groups || a.PanesLive != b.PanesLive {
			t.Fatalf("%s: restored shape %+v, want %+v", sp.Name, b, a)
		}
		if !reflect.DeepEqual(sortValue(a.Value), sortValue(b.Value)) {
			t.Fatalf("%s: restored value %v, want %v", sp.Name, b.Value, a.Value)
		}
	}

	// Definitions alone (no PANES): views come back empty at their start
	// watermark, ready for WAL replay.
	fs2 := wal.NewMemFS()
	if err := r.SaveDefs(fs2, "cv"); err != nil {
		t.Fatal(err)
	}
	saved2, err := Load(fs2, "cv")
	if err != nil {
		t.Fatal(err)
	}
	if len(saved2) != len(specs) {
		t.Fatalf("defs-only Load returned %d views, want %d", len(saved2), len(specs))
	}
	for _, sv := range saved2 {
		if len(sv.Panes) != 0 || sv.LastWM != 0 {
			t.Fatalf("defs-only view %q carries pane state: %+v", sv.Spec.Name, sv)
		}
	}

	// Nothing persisted at all.
	if saved, err := Load(wal.NewMemFS(), "cv"); err != nil || saved != nil {
		t.Fatalf("empty dir: got %v, %v", saved, err)
	}
}
