package cview

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/hashtbl"
	"memagg/internal/wal"
)

// Persistence layout, under the stream's durability root:
//
//	<dir>/
//	  DEFS    view definitions: one CRC-framed JSON payload, rewritten
//	          atomically (tmp + rename + dir sync) on every Register/Drop
//	  PANES   pane state: framed binary runs in the checkpoint group
//	          encoding, rewritten by the checkpointer and at Close
//
// DEFS is the authority on which views exist — a view registered after
// the last pane snapshot still comes back (its panes rebuild from the WAL
// suffix through the same OnSeal hook as live ingest). PANES supplies
// state for the views it knows (matched by name and registration
// watermark); replay then tops the panes up past the saved watermark. A
// stale PANES entry for a dropped view is ignored.
const (
	defsName  = "DEFS"
	panesName = "PANES"

	panesMagic   = "magv"
	panesVersion = 1
)

// savedDefs is the DEFS JSON payload.
type savedDefs struct {
	Views []savedDef `json:"views"`
}

type savedDef struct {
	Name     string  `json:"name"`
	QueryID  int     `json:"query_id"`
	Op       int     `json:"op,omitempty"`
	P        float64 `json:"p,omitempty"`
	Lo       uint64  `json:"lo,omitempty"`
	Hi       uint64  `json:"hi,omitempty"`
	PaneRows uint64  `json:"pane_rows"`
	Panes    int     `json:"panes"`
	Sliding  bool    `json:"sliding,omitempty"`
	StartWM  uint64  `json:"start_wm"`
}

func (d savedDef) spec() Spec {
	return Spec{
		Name: d.Name,
		Query: Query{
			ID: QueryID(d.QueryID),
			Op: agg.ReduceOp(d.Op),
			P:  d.P,
			Lo: d.Lo,
			Hi: d.Hi,
		},
		PaneRows: d.PaneRows,
		Panes:    d.Panes,
		Sliding:  d.Sliding,
	}
}

// Saved is one view's recovered definition and (when a pane snapshot
// covered it) pane state, as returned by Load.
type Saved struct {
	Spec    Spec
	StartWM uint64

	// Pane-snapshot state; zero when only the definition survived.
	LastWM       uint64
	GapLo, GapHi uint64
	Evicted      uint64
	Panes        []SavedPane
}

// SavedPane is one persisted pane.
type SavedPane struct {
	Idx    uint64
	Rows   uint64
	LastWM uint64
	Groups []SavedGroup
}

// SavedGroup is one persisted group: the eager distributive folds plus
// the value multiset when the view buffers one.
type SavedGroup struct {
	Key, Count, Sum, Min, Max uint64
	Vals                      []uint64
}

// SaveDefs atomically rewrites the DEFS file with the current view
// definitions.
func (r *Registry) SaveDefs(fs wal.FS, dir string) error {
	r.mu.RLock()
	defs := savedDefs{Views: make([]savedDef, 0, len(r.views))}
	for _, v := range r.views {
		sp := v.spec
		defs.Views = append(defs.Views, savedDef{
			Name:     sp.Name,
			QueryID:  int(sp.Query.ID),
			Op:       int(sp.Query.Op),
			P:        sp.Query.P,
			Lo:       sp.Query.Lo,
			Hi:       sp.Query.Hi,
			PaneRows: sp.PaneRows,
			Panes:    sp.Panes,
			Sliding:  sp.Sliding,
			StartWM:  v.startWM,
		})
	}
	r.mu.RUnlock()
	payload, err := json.Marshal(defs)
	if err != nil {
		return fmt.Errorf("cview: encode defs: %w", err)
	}
	return writeAtomic(fs, dir, defsName, wal.AppendFrame(nil, payload))
}

// panesChunkGroups bounds the groups per PANES frame so one frame stays
// well under wal.MaxFrame even with fat value multisets.
const panesChunkGroups = 1 << 14

// SavePanes atomically rewrites the PANES file with every view's live
// pane state. Called by the stream's checkpointer (before WAL truncation,
// so saved state and surviving log always jointly cover every window) and
// at Close.
func (r *Registry) SavePanes(fs wal.FS, dir string) error {
	r.mu.RLock()
	views := make([]*View, 0, len(r.views))
	for _, v := range r.views {
		views = append(views, v)
	}
	r.mu.RUnlock()

	var buf []byte
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, panesMagic...)
	hdr = append(hdr, panesVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(views)))
	buf = wal.AppendFrame(buf, hdr)
	for _, v := range views {
		buf = v.appendPanes(r.m, buf)
	}
	return writeAtomic(fs, dir, panesName, buf)
}

// appendPanes serializes one view's state: a view-header frame, then per
// pane a pane-header frame followed by its group-run frames. Pending
// folds settle first — the snapshot claims coverage through lastWM, so it
// must actually contain every absorbed seal.
func (v *View) appendPanes(m *Metrics, dst []byte) []byte {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.settleAll(m)
	p := make([]byte, 0, 64+len(v.spec.Name))
	p = binary.LittleEndian.AppendUint32(p, uint32(len(v.spec.Name)))
	p = append(p, v.spec.Name...)
	if v.withValues {
		p = append(p, 1)
	} else {
		p = append(p, 0)
	}
	p = binary.LittleEndian.AppendUint64(p, v.startWM)
	p = binary.LittleEndian.AppendUint64(p, v.lastWM)
	p = binary.LittleEndian.AppendUint64(p, v.gapLo)
	p = binary.LittleEndian.AppendUint64(p, v.gapHi)
	p = binary.LittleEndian.AppendUint64(p, v.evicted)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(v.panes)))
	dst = wal.AppendFrame(dst, p)
	for _, pn := range v.panes {
		dst = pn.append(dst, v.withValues)
	}
	return dst
}

func (pn *pane) append(dst []byte, withValues bool) []byte {
	total := pn.t.Len()
	chunks := (total + panesChunkGroups - 1) / panesChunkGroups
	hdr := make([]byte, 0, 32)
	hdr = binary.LittleEndian.AppendUint64(hdr, pn.idx)
	hdr = binary.LittleEndian.AppendUint64(hdr, pn.rows)
	hdr = binary.LittleEndian.AppendUint64(hdr, pn.lastWM)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(chunks))
	dst = wal.AppendFrame(dst, hdr)

	var (
		payload []byte
		vals    []uint64
		n       int
	)
	flush := func() []byte {
		if n == 0 {
			return dst
		}
		chunk := binary.LittleEndian.AppendUint32(nil, uint32(n))
		chunk = append(chunk, payload...)
		dst = wal.AppendFrame(dst, chunk)
		payload, n = payload[:0], 0
		return dst
	}
	pn.t.Iterate(func(k uint64, p *agg.Partial) bool {
		payload = binary.LittleEndian.AppendUint64(payload, k)
		payload = binary.LittleEndian.AppendUint64(payload, p.Count())
		payload = binary.LittleEndian.AppendUint64(payload, p.Sum())
		mn, _ := p.Min()
		mx, _ := p.Max()
		payload = binary.LittleEndian.AppendUint64(payload, mn)
		payload = binary.LittleEndian.AppendUint64(payload, mx)
		if withValues {
			vals = p.AppendValues(pn.ar, vals[:0])
			payload = binary.LittleEndian.AppendUint32(payload, uint32(len(vals)))
			for _, v := range vals {
				payload = binary.LittleEndian.AppendUint64(payload, v)
			}
		}
		n++
		if n == panesChunkGroups {
			dst = flush()
		}
		return true
	})
	return flush()
}

// Load recovers the persisted view set from dir: definitions from DEFS,
// pane state from PANES where it matches (same name, same registration
// watermark). Either file may be absent — no views, or definitions only.
func Load(fs wal.FS, dir string) ([]Saved, error) {
	defs, err := loadDefs(fs, dir)
	if err != nil || len(defs) == 0 {
		return nil, err
	}
	states, err := loadPanes(fs, dir)
	if err != nil {
		return nil, err
	}
	out := make([]Saved, 0, len(defs))
	for _, d := range defs {
		sv := Saved{Spec: d.spec(), StartWM: d.StartWM}
		if st, ok := states[d.Name]; ok && st.StartWM == d.StartWM {
			sv.LastWM = st.LastWM
			sv.GapLo, sv.GapHi = st.GapLo, st.GapHi
			sv.Evicted = st.Evicted
			sv.Panes = st.Panes
		}
		out = append(out, sv)
	}
	return out, nil
}

func loadDefs(fs wal.FS, dir string) ([]savedDef, error) {
	f, err := fs.Open(filepath.Join(dir, defsName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("cview: open DEFS: %w", err)
	}
	defer f.Close()
	payload, _, err := wal.ReadFrame(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, fmt.Errorf("cview: DEFS: %w", err)
	}
	var defs savedDefs
	if err := json.Unmarshal(payload, &defs); err != nil {
		return nil, fmt.Errorf("cview: decode DEFS: %v: %w", err, wal.ErrWALCorrupt)
	}
	return defs.Views, nil
}

func loadPanes(fs wal.FS, dir string) (map[string]Saved, error) {
	f, err := fs.Open(filepath.Join(dir, panesName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("cview: open PANES: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	hdr, _, err := wal.ReadFrame(r)
	if err != nil {
		return nil, fmt.Errorf("cview: PANES header: %w", err)
	}
	if len(hdr) != 9 || string(hdr[:4]) != panesMagic || hdr[4] != panesVersion {
		return nil, fmt.Errorf("cview: bad PANES header: %w", wal.ErrWALCorrupt)
	}
	nviews := int(binary.LittleEndian.Uint32(hdr[5:9]))
	out := make(map[string]Saved, nviews)
	for i := 0; i < nviews; i++ {
		name, sv, err := readView(r)
		if err != nil {
			return nil, err
		}
		out[name] = sv
	}
	return out, nil
}

func readView(r *bufio.Reader) (string, Saved, error) {
	p, _, err := wal.ReadFrame(r)
	if err != nil {
		return "", Saved{}, fmt.Errorf("cview: PANES view header: %w", err)
	}
	if len(p) < 4 {
		return "", Saved{}, fmt.Errorf("cview: short view header: %w", wal.ErrWALCorrupt)
	}
	nameLen := int(binary.LittleEndian.Uint32(p[:4]))
	if len(p) != 4+nameLen+1+5*8+4 {
		return "", Saved{}, fmt.Errorf("cview: view header size: %w", wal.ErrWALCorrupt)
	}
	name := string(p[4 : 4+nameLen])
	o := 4 + nameLen
	withValues := p[o] == 1
	o++
	var sv Saved
	sv.StartWM = binary.LittleEndian.Uint64(p[o:])
	sv.LastWM = binary.LittleEndian.Uint64(p[o+8:])
	sv.GapLo = binary.LittleEndian.Uint64(p[o+16:])
	sv.GapHi = binary.LittleEndian.Uint64(p[o+24:])
	sv.Evicted = binary.LittleEndian.Uint64(p[o+32:])
	npanes := int(binary.LittleEndian.Uint32(p[o+40:]))
	if npanes < 0 || npanes > maxPanes {
		return "", Saved{}, fmt.Errorf("cview: pane count %d: %w", npanes, wal.ErrWALCorrupt)
	}
	sv.Panes = make([]SavedPane, 0, npanes)
	for i := 0; i < npanes; i++ {
		pn, err := readPane(r, withValues)
		if err != nil {
			return "", Saved{}, err
		}
		sv.Panes = append(sv.Panes, pn)
	}
	return name, sv, nil
}

func readPane(r *bufio.Reader, withValues bool) (SavedPane, error) {
	hdr, _, err := wal.ReadFrame(r)
	if err != nil {
		return SavedPane{}, fmt.Errorf("cview: PANES pane header: %w", err)
	}
	if len(hdr) != 28 {
		return SavedPane{}, fmt.Errorf("cview: pane header size: %w", wal.ErrWALCorrupt)
	}
	pn := SavedPane{
		Idx:    binary.LittleEndian.Uint64(hdr[0:]),
		Rows:   binary.LittleEndian.Uint64(hdr[8:]),
		LastWM: binary.LittleEndian.Uint64(hdr[16:]),
	}
	chunks := int(binary.LittleEndian.Uint32(hdr[24:]))
	for c := 0; c < chunks; c++ {
		p, _, err := wal.ReadFrame(r)
		if err != nil {
			return SavedPane{}, fmt.Errorf("cview: PANES group run: %w", err)
		}
		if len(p) < 4 {
			return SavedPane{}, fmt.Errorf("cview: short group run: %w", wal.ErrWALCorrupt)
		}
		n := int(binary.LittleEndian.Uint32(p[:4]))
		o := 4
		for g := 0; g < n; g++ {
			if len(p)-o < 40 {
				return SavedPane{}, fmt.Errorf("cview: torn group: %w", wal.ErrWALCorrupt)
			}
			sg := SavedGroup{
				Key:   binary.LittleEndian.Uint64(p[o:]),
				Count: binary.LittleEndian.Uint64(p[o+8:]),
				Sum:   binary.LittleEndian.Uint64(p[o+16:]),
				Min:   binary.LittleEndian.Uint64(p[o+24:]),
				Max:   binary.LittleEndian.Uint64(p[o+32:]),
			}
			o += 40
			if withValues {
				if len(p)-o < 4 {
					return SavedPane{}, fmt.Errorf("cview: torn value run: %w", wal.ErrWALCorrupt)
				}
				nv := int(binary.LittleEndian.Uint32(p[o:]))
				o += 4
				if len(p)-o < 8*nv {
					return SavedPane{}, fmt.Errorf("cview: torn value run: %w", wal.ErrWALCorrupt)
				}
				sg.Vals = make([]uint64, nv)
				for j := range sg.Vals {
					sg.Vals[j] = binary.LittleEndian.Uint64(p[o:])
					o += 8
				}
			}
			pn.Groups = append(pn.Groups, sg)
		}
		if o != len(p) {
			return SavedPane{}, fmt.Errorf("cview: group run trailer: %w", wal.ErrWALCorrupt)
		}
	}
	return pn, nil
}

// Restore registers a recovered view with its saved pane state. The WAL
// suffix then replays through OnSeal to cover rows past the saved
// watermark; any stretch the log no longer carries surfaces through the
// view's gap tracking as a Truncated result, never a silent shortfall.
func (r *Registry) Restore(sv Saved) error {
	if err := r.Register(sv.Spec, sv.StartWM); err != nil {
		return err
	}
	r.mu.RLock()
	v := r.views[sv.Spec.Name]
	r.mu.RUnlock()
	v.mu.Lock()
	defer v.mu.Unlock()
	if sv.LastWM > v.lastWM {
		v.lastWM = sv.LastWM
	}
	v.gapLo, v.gapHi = sv.GapLo, sv.GapHi
	v.evicted = sv.Evicted
	for _, spn := range sv.Panes {
		pn := &pane{idx: spn.Idx, rows: spn.Rows, lastWM: spn.LastWM}
		cap := len(spn.Groups)
		if cap < paneTableCap {
			cap = paneTableCap
		}
		pn.t = hashtbl.NewLinearProbe[agg.Partial](cap)
		pn.ar = arena.New()
		for _, sg := range spn.Groups {
			p := pn.t.Upsert(sg.Key)
			*p = agg.RestorePartial(sg.Count, sg.Sum, sg.Min, sg.Max)
			for _, val := range sg.Vals {
				p.Buffer(pn.ar, val)
			}
		}
		v.panes = append(v.panes, pn)
	}
	return nil
}

// writeAtomic writes one file via tmp + rename + dir sync — the same
// commit discipline the WAL manifest and checkpoint CURRENT use.
func writeAtomic(fs wal.FS, dir, name string, data []byte) error {
	if err := fs.MkdirAll(dir); err != nil {
		return fmt.Errorf("cview: mkdir %s: %w", dir, err)
	}
	tmp := filepath.Join(dir, name+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("cview: create %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("cview: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("cview: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cview: close %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("cview: commit %s: %w", name, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("cview: sync dir %s: %w", dir, err)
	}
	return nil
}
