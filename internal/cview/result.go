package cview

import (
	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/hashtbl"
	"memagg/internal/xsort"
)

// Result is one evaluation of a view's standing query over its current
// window. Results are immutable and shared by every read of an unchanged
// view (the version cache); treat vector Values as read-only.
type Result struct {
	Name  string
	Query Query

	// WindowStart is the window's exclusive lower watermark bound and
	// WindowEnd its inclusive upper one: the result covers exactly the
	// rows whose visibility watermark lies in (WindowStart, WindowEnd].
	WindowStart uint64
	WindowEnd   uint64

	PanesLive int
	Rows      uint64
	Groups    int
	Version   uint64

	// Truncated reports the window overlaps a stretch of rows recovery
	// could not replay (see View gap tracking): the result is exact over
	// the rows that survived, but short of the full window.
	Truncated bool

	// Value is the query result: []agg.GroupCount (q1, q7),
	// []agg.GroupFloat (q2, q3, quantile, mode), []agg.GroupUint
	// (sum/min/max), uint64 (q4), or float64 (q5, q6).
	Value any
}

// compute evaluates the view's query over its live panes: merge the panes
// into one combined table (exact Partial.Merge — the same fold the
// stream's merger and snapshots use), then run the kernel. Callers hold
// v.mu; the panes are only ever mutated under it, so the merged table is
// consistent by construction.
func (v *View) compute(m *Metrics) *Result {
	v.settleAll(m)
	res := &Result{
		Name:        v.spec.Name,
		Query:       v.spec.Query,
		WindowStart: v.windowStart(),
		WindowEnd:   v.lastWM,
		PanesLive:   len(v.panes),
		Version:     v.ver,
		Truncated:   v.truncated(),
	}
	bound := 0
	for _, p := range v.panes {
		res.Rows += p.rows
		bound += p.t.Len()
	}
	merged := mergedWindow{withValues: v.withValues}
	if len(v.panes) == 1 {
		// Single live pane: query it directly, no merge copy.
		merged.t, merged.ar = v.panes[0].t, v.panes[0].ar
	} else if len(v.panes) > 1 {
		cap := bound
		if cap < paneTableCap {
			cap = paneTableCap
		}
		merged.t = hashtbl.NewLinearProbe[agg.Partial](cap)
		if v.withValues {
			merged.ar = arena.New()
		}
		for _, p := range v.panes {
			merged.fold(p)
		}
	}
	res.Groups = 0
	if merged.t != nil {
		res.Groups = merged.t.Len()
	}
	res.Value = merged.run(v.spec.Query, res.Rows)
	return res
}

// mergedWindow is the combined table of a window's live panes plus the
// arena its merged value lists live in (nil unless the query needs them).
type mergedWindow struct {
	t          *hashtbl.LinearProbe[agg.Partial]
	ar         *arena.Arena
	withValues bool
}

// fold merges one pane into the combined table, in the blocked-hash form
// the stream's mergeTable uses: groups stage in blocks of
// hashtbl.HashBatch, each block Mix-hashes at once, then probes with
// UpsertH.
func (m *mergedWindow) fold(p *pane) {
	var (
		h  [hashtbl.HashBatch]uint64
		ks [hashtbl.HashBatch]uint64
		ps [hashtbl.HashBatch]*agg.Partial
	)
	n := 0
	one := func(k, hk uint64, src *agg.Partial) {
		np := m.t.UpsertH(k, hk)
		np.Merge(src)
		if m.withValues {
			np.MergeValues(m.ar, src, p.ar)
		}
	}
	p.t.Iterate(func(k uint64, src *agg.Partial) bool {
		ks[n], ps[n] = k, src
		n++
		if n == hashtbl.HashBatch {
			hashtbl.MixBatch(&h, ks[:])
			for j, bk := range ks {
				one(bk, h[j], ps[j])
			}
			n = 0
		}
		return true
	})
	for j := 0; j < n; j++ {
		one(ks[j], hashtbl.Mix(ks[j]), ps[j])
	}
}

// run executes the query kernel over the merged window. The kernels
// mirror the stream's snapshot kernels row for row — same result types,
// same empty-result conventions, same float arithmetic — which is what
// makes the window-vs-batch equivalence gate a reflect.DeepEqual.
func (m *mergedWindow) run(q Query, rows uint64) any {
	switch q.ID {
	case QCountByKey:
		out := make([]agg.GroupCount, 0, m.len())
		m.each(func(k uint64, p *agg.Partial) {
			out = append(out, agg.GroupCount{Key: k, Count: p.Count()})
		})
		return out
	case QAvgByKey:
		out := make([]agg.GroupFloat, 0, m.len())
		m.each(func(k uint64, p *agg.Partial) {
			out = append(out, agg.GroupFloat{Key: k, Val: p.Avg()})
		})
		return out
	case QReduce:
		out := make([]agg.GroupUint, 0, m.len())
		m.each(func(k uint64, p *agg.Partial) {
			out = append(out, agg.GroupUint{Key: k, Val: p.Reduce(q.Op)})
		})
		return out
	case QMedianByKey:
		return m.holistic(agg.MedianFunc)
	case QQuantile:
		return m.holistic(agg.QuantileFunc(q.P))
	case QMode:
		return m.holistic(agg.ModeFunc)
	case QCount:
		return rows
	case QAvg:
		var sum, count uint64
		m.each(func(_ uint64, p *agg.Partial) {
			sum += p.Sum()
			count += p.Count()
		})
		if count == 0 {
			return float64(0)
		}
		return float64(sum) / float64(count)
	case QMedian:
		groups := make([]xsort.KV, 0, m.len())
		var n uint64
		m.each(func(k uint64, p *agg.Partial) {
			c := p.Count()
			groups = append(groups, xsort.KV{K: k, V: c})
			n += c
		})
		if n == 0 {
			return float64(0)
		}
		xsort.IntrosortKV(groups)
		med := float64(keyAtRank(groups, n/2))
		if n%2 == 0 {
			med = (float64(keyAtRank(groups, n/2-1)) + med) / 2
		}
		return med
	case QRange:
		var kv []xsort.KV
		m.each(func(k uint64, p *agg.Partial) {
			if q.Lo <= k && k <= q.Hi {
				kv = append(kv, xsort.KV{K: k, V: p.Count()})
			}
		})
		xsort.IntrosortKV(kv)
		out := make([]agg.GroupCount, len(kv))
		for i, r := range kv {
			out[i] = agg.GroupCount{Key: r.K, Count: r.V}
		}
		return out
	default:
		return nil
	}
}

func (m *mergedWindow) len() int {
	if m.t == nil {
		return 0
	}
	return m.t.Len()
}

func (m *mergedWindow) each(fn func(k uint64, p *agg.Partial)) {
	if m.t == nil {
		return
	}
	m.t.Iterate(func(k uint64, p *agg.Partial) bool {
		fn(k, p)
		return true
	})
}

// holistic runs fn over every group's merged value multiset. The scratch
// buffer is reused across groups because the holistic functions may
// reorder their argument (Median and Quantile select in place).
func (m *mergedWindow) holistic(fn agg.HolisticFunc) []agg.GroupFloat {
	out := make([]agg.GroupFloat, 0, m.len())
	var buf []uint64
	m.each(func(k uint64, p *agg.Partial) {
		buf = p.AppendValues(m.ar, buf[:0])
		out = append(out, agg.GroupFloat{Key: k, Val: fn(buf)})
	})
	return out
}

// keyAtRank returns the key at 0-based rank r of the expansion of the
// key-sorted (key, count) runs — the same walk the snapshot Q6 kernel
// performs.
func keyAtRank(groups []xsort.KV, r uint64) uint64 {
	var cum uint64
	for _, g := range groups {
		cum += g.V
		if r < cum {
			return g.K
		}
	}
	return groups[len(groups)-1].K
}
