package cview

import (
	"fmt"

	"memagg/internal/agg"
)

// QueryID names a standing query — the same set the stream's snapshots
// serve (Q1–Q7 plus the generalized reduce, quantile, and mode).
type QueryID int

const (
	QCountByKey  QueryID = iota + 1 // Q1: (key, COUNT(*)) per key
	QAvgByKey                       // Q2: (key, AVG(val)) per key
	QMedianByKey                    // Q3: (key, MEDIAN(val)) per key; holistic
	QCount                          // Q4: COUNT(*) over the window
	QAvg                            // Q5: AVG(val) over the window
	QMedian                         // Q6: MEDIAN over the key column
	QRange                          // Q7: Q1 restricted to Lo <= key <= Hi, ascending
	QReduce                         // (key, Op(val)) per key for a distributive Op
	QQuantile                       // (key, P-quantile of vals) per key; holistic
	QMode                           // (key, most frequent val) per key; holistic
)

// Query is one standing query: the id plus its parameters (Op for
// QReduce, P for QQuantile, Lo/Hi for QRange; the rest ignore them).
type Query struct {
	ID QueryID
	Op agg.ReduceOp
	P  float64
	Lo uint64
	Hi uint64
}

// ParseQuery resolves the HTTP/CLI query names (the /v1/query spellings)
// into a Query: q1..q7 and their aliases, sum/min/max, quantile (with p),
// mode.
func ParseQuery(q string, p float64, lo, hi uint64) (Query, error) {
	switch q {
	case "q1", "count_by_key":
		return Query{ID: QCountByKey}, nil
	case "q2", "avg_by_key":
		return Query{ID: QAvgByKey}, nil
	case "q3", "median_by_key":
		return Query{ID: QMedianByKey}, nil
	case "q4", "count":
		return Query{ID: QCount}, nil
	case "q5", "avg":
		return Query{ID: QAvg}, nil
	case "q6", "median":
		return Query{ID: QMedian}, nil
	case "q7", "range":
		return Query{ID: QRange, Lo: lo, Hi: hi}, nil
	case "sum":
		return Query{ID: QReduce, Op: agg.OpSum}, nil
	case "min":
		return Query{ID: QReduce, Op: agg.OpMin}, nil
	case "max":
		return Query{ID: QReduce, Op: agg.OpMax}, nil
	case "quantile":
		qq := Query{ID: QQuantile, P: p}
		return qq, qq.validate()
	case "mode":
		return Query{ID: QMode}, nil
	default:
		return Query{}, fmt.Errorf("%w: unknown query %q", ErrBadSpec, q)
	}
}

func (q Query) validate() error {
	switch q.ID {
	case QCountByKey, QAvgByKey, QMedianByKey, QCount, QAvg, QMedian, QRange, QMode:
		return nil
	case QReduce:
		switch q.Op {
		case agg.OpCount, agg.OpSum, agg.OpMin, agg.OpMax:
			return nil
		}
		return fmt.Errorf("%w: unknown reduce op %d", ErrBadSpec, int(q.Op))
	case QQuantile:
		if q.P < 0 || q.P > 1 {
			return fmt.Errorf("%w: quantile p must be in [0, 1], got %v", ErrBadSpec, q.P)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown query id %d", ErrBadSpec, int(q.ID))
	}
}

// NeedsValues reports whether the query consumes value multisets (so the
// view's panes must buffer them, which requires a holistic stream).
func (q Query) NeedsValues() bool {
	switch q.ID {
	case QMedianByKey, QQuantile, QMode:
		return true
	}
	return false
}

// String returns the canonical query spelling (the primary /v1/query
// name), with parameters where they disambiguate.
func (q Query) String() string {
	switch q.ID {
	case QCountByKey:
		return "q1"
	case QAvgByKey:
		return "q2"
	case QMedianByKey:
		return "q3"
	case QCount:
		return "q4"
	case QAvg:
		return "q5"
	case QMedian:
		return "q6"
	case QRange:
		return fmt.Sprintf("q7[%d,%d]", q.Lo, q.Hi)
	case QReduce:
		switch q.Op {
		case agg.OpSum:
			return "sum"
		case agg.OpMin:
			return "min"
		case agg.OpMax:
			return "max"
		default:
			return "count"
		}
	case QQuantile:
		return fmt.Sprintf("quantile(%g)", q.P)
	case QMode:
		return "mode"
	default:
		return fmt.Sprintf("Query(%d)", int(q.ID))
	}
}
