package radix

import (
	"testing"

	"memagg/internal/dataset"
)

// checkPartitioned verifies the structural invariants of a partitioning
// pass against the original input: bounds are a monotone cover of [0, n),
// every tuple sits in the partition its hash selects, key/value pairing is
// preserved, and the permuted columns are a multiset-equal rearrangement.
func checkPartitioned(t *testing.T, pt *Partitioned, keys, vals []uint64) {
	t.Helper()
	n := len(keys)
	p := pt.NumPartitions()
	if p != 1<<uint(pt.Bits) {
		t.Fatalf("NumPartitions = %d want %d", p, 1<<uint(pt.Bits))
	}
	if pt.Bounds[0] != 0 || pt.Bounds[p] != n {
		t.Fatalf("bounds cover [%d, %d) want [0, %d)", pt.Bounds[0], pt.Bounds[p], n)
	}
	for q := 0; q < p; q++ {
		if pt.Bounds[q] > pt.Bounds[q+1] {
			t.Fatalf("bounds not monotone at %d: %d > %d", q, pt.Bounds[q], pt.Bounds[q+1])
		}
		for i, k := range pt.PartKeys(q) {
			if got := PartitionIndex(k, pt.Bits); got != q {
				t.Fatalf("key %d in partition %d, hashes to %d", k, q, got)
			}
			_ = i
		}
	}

	// Multiset equality of (key, value) pairs. Values default to zero when
	// the input value column is short, matching the operators' convention.
	type kv struct{ k, v uint64 }
	want := map[kv]int{}
	for i, k := range keys {
		var v uint64
		if vals != nil && i < len(vals) {
			v = vals[i]
		}
		want[kv{k, v}]++
	}
	got := map[kv]int{}
	for q := 0; q < p; q++ {
		pk, pv := pt.PartKeys(q), pt.PartVals(q)
		for i, k := range pk {
			var v uint64
			if pv != nil {
				v = pv[i]
			}
			got[kv{k, v}]++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("pair multiset: %d distinct pairs want %d", len(got), len(want))
	}
	for pair, c := range want {
		if got[pair] != c {
			t.Fatalf("pair %v: count %d want %d", pair, got[pair], c)
		}
	}
}

func TestPartitionKeysAndValues(t *testing.T) {
	keys := dataset.Spec{Kind: dataset.Zipf, N: 50000, Cardinality: 3000, Seed: 11}.Keys()
	vals := dataset.Values(len(keys), 11)
	for _, bits := range []int{1, 4, 7, MaxBits} {
		for _, workers := range []int{1, 2, 3, 8} {
			pt := Partition(keys, vals, bits, workers)
			if pt.Bits != bits {
				t.Fatalf("bits=%d workers=%d: got Bits=%d", bits, workers, pt.Bits)
			}
			checkPartitioned(t, pt, keys, vals)
		}
	}
}

func TestPartitionKeysOnly(t *testing.T) {
	keys := dataset.Spec{Kind: dataset.RseqShf, N: 20000, Cardinality: 5000, Seed: 3}.Keys()
	pt := Partition(keys, nil, 6, 4)
	if pt.Vals != nil {
		t.Fatal("keys-only partitioning allocated a value column")
	}
	checkPartitioned(t, pt, keys, nil)
	for q := 0; q < pt.NumPartitions(); q++ {
		if pt.PartVals(q) != nil {
			t.Fatalf("partition %d has non-nil vals", q)
		}
	}
}

func TestPartitionShortValueColumn(t *testing.T) {
	keys := dataset.Random(10000, 1, 500, 7)
	vals := dataset.Values(4000, 7) // shorter than keys: rest aggregate as 0
	pt := Partition(keys, vals, 5, 3)
	checkPartitioned(t, pt, keys, vals)
}

// TestPartitionWriteCombiningEdges exercises buffer-flush boundary cases:
// sizes around multiples of the write-combining buffer length, inputs
// smaller than the worker count, and empty input.
func TestPartitionWriteCombiningEdges(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1000} {
		keys := make([]uint64, n)
		vals := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(i % 13)
			vals[i] = uint64(i)
		}
		for _, workers := range []int{1, 4} {
			pt := Partition(keys, vals, 4, workers)
			checkPartitioned(t, pt, keys, vals)
		}
	}
}

// TestPartitionDeterministic checks the documented determinism: same input
// and worker count give identical permuted columns.
func TestPartitionDeterministic(t *testing.T) {
	keys := dataset.Spec{Kind: dataset.Hhit, N: 30000, Cardinality: 1000, Seed: 5}.Keys()
	vals := dataset.Values(len(keys), 5)
	a := Partition(keys, vals, 8, 4)
	b := Partition(keys, vals, 8, 4)
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] || a.Vals[i] != b.Vals[i] {
			t.Fatalf("non-deterministic scatter at %d", i)
		}
	}
}

func TestPartitionBitsClamped(t *testing.T) {
	keys := dataset.Random(1000, 1, 100, 1)
	if pt := Partition(keys, nil, 0, 2); pt.Bits != 1 {
		t.Fatalf("bits=0 clamped to %d want 1", pt.Bits)
	}
	if pt := Partition(keys, nil, 40, 2); pt.Bits != MaxBits {
		t.Fatalf("bits=40 clamped to %d want %d", pt.Bits, MaxBits)
	}
}

func TestPartitionInputNotMutated(t *testing.T) {
	keys := dataset.Random(5000, 1, 1000, 9)
	vals := dataset.Values(len(keys), 9)
	kcopy := append([]uint64(nil), keys...)
	vcopy := append([]uint64(nil), vals...)
	Partition(keys, vals, 6, 4)
	for i := range keys {
		if keys[i] != kcopy[i] || vals[i] != vcopy[i] {
			t.Fatal("Partition mutated its input")
		}
	}
}
