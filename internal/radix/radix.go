// Package radix implements parallel hash-radix partitioning of key (and
// key/value) columns — the cache-conscious first phase of radix-partitioned
// aggregation and the radix-join family of algorithms.
//
// Partitioning splits the input into P = 2^bits partitions by the top bits
// of the shared hash finalizer (hashtbl.Mix), so every occurrence of a key
// lands in exactly one partition. A consumer can then aggregate each
// partition independently: no shared structure, no locks, no merge phase —
// and, because the partitions are disjoint by key, even holistic functions
// (median, mode) work per-partition.
//
// The scatter uses per-worker software write-combining buffers, following
// the radix-join literature: each worker stages tuples for a partition in a
// small cache-line-sized buffer and copies the buffer to the output array
// only when it fills. The random-write traffic is thereby confined to P
// small buffers that stay cache-resident, while the output array sees only
// bulk sequential writes — the difference between a TLB-thrashing scatter
// and a streaming one once P grows past the cache/TLB reach.
package radix

import (
	"sync"

	"memagg/internal/hashtbl"
)

// wcEntries is the number of tuples staged per partition before a bulk
// flush: 8 key words (64 bytes) fill one cache line, so a flush writes
// whole lines of the output array.
const wcEntries = 8

// MaxBits bounds the partitioning fan-out. Beyond 2^12 destinations the
// write-combining buffers themselves outgrow the L2 cache and the scatter
// degrades, which is exactly the effect the buffers exist to avoid.
const MaxBits = 12

// Partitioned is the result of one partitioning pass: a permuted copy of
// the input columns in which partition p occupies the contiguous range
// [Bounds[p], Bounds[p+1]).
type Partitioned struct {
	Keys   []uint64
	Vals   []uint64 // nil when no value column was supplied
	Bounds []int    // len NumPartitions()+1, ascending, Bounds[0] == 0
	Bits   int
}

// NumPartitions returns the fan-out P = 2^Bits.
func (pt *Partitioned) NumPartitions() int { return len(pt.Bounds) - 1 }

// PartKeys returns partition p's key column.
func (pt *Partitioned) PartKeys(p int) []uint64 {
	return pt.Keys[pt.Bounds[p]:pt.Bounds[p+1]]
}

// PartVals returns partition p's value column, or nil when the input had
// no value column.
func (pt *Partitioned) PartVals(p int) []uint64 {
	if pt.Vals == nil {
		return nil
	}
	return pt.Vals[pt.Bounds[p]:pt.Bounds[p+1]]
}

// PartitionIndex returns the partition a key belongs to under the given
// fan-out: the top bits of the mixed hash. The low bits remain free for
// slot selection inside a per-partition hash table, so partition choice
// and probe sequence stay independent.
func PartitionIndex(key uint64, bits int) int {
	return int(hashtbl.Mix(key) >> (64 - uint(bits)))
}

// Partition scatters keys (and, when vals is non-nil, the paired values)
// into 2^bits partitions using the given number of workers. vals may be
// shorter than keys; missing values are treated as zero, matching the
// aggregation operators. bits is clamped to [1, MaxBits]; workers <= 1
// runs the scatter serially (still through the write-combining buffers, so
// the memory behaviour is identical).
//
// The pass is deterministic for fixed inputs and worker count: worker w
// scatters the w-th contiguous input chunk, and within a partition tuples
// appear in chunk order.
func Partition(keys, vals []uint64, bits, workers int) *Partitioned {
	if bits < 1 {
		bits = 1
	}
	if bits > MaxBits {
		bits = MaxBits
	}
	n := len(keys)
	p := 1 << uint(bits)
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = 1
	}

	// Phase A: per-worker histograms over contiguous chunks.
	hists := make([][]int, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			h := make([]int, p)
			lo, hi := n*w/workers, n*(w+1)/workers
			for _, k := range keys[lo:hi] {
				h[PartitionIndex(k, bits)]++
			}
			hists[w] = h
		}(w)
	}
	wg.Wait()

	// Prefix sums: partition-major, worker-minor, so worker w's slice of
	// partition q starts at cursors[w][q] and the partitions are contiguous.
	bounds := make([]int, p+1)
	cursors := make([][]int, workers)
	for w := range cursors {
		cursors[w] = make([]int, p)
	}
	off := 0
	for q := 0; q < p; q++ {
		bounds[q] = off
		for w := 0; w < workers; w++ {
			cursors[w][q] = off
			off += hists[w][q]
		}
	}
	bounds[p] = off

	pt := &Partitioned{
		Keys:   make([]uint64, n),
		Bounds: bounds,
		Bits:   bits,
	}
	if vals != nil {
		pt.Vals = make([]uint64, n)
	}

	// Phase B: scatter through write-combining buffers into the exact
	// offsets computed above. No two workers ever write the same output
	// index, so the phase is lock-free.
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := n*w/workers, n*(w+1)/workers
			scatter(pt, keys, vals, lo, hi, cursors[w])
		}(w)
	}
	wg.Wait()
	return pt
}

// scatter writes keys[lo:hi] (and paired values) to their partitions,
// staging tuples in per-partition write-combining buffers and flushing each
// buffer as a bulk copy when it fills. cur[q] is this worker's next output
// index for partition q and advances as tuples are flushed.
func scatter(pt *Partitioned, keys, vals []uint64, lo, hi int, cur []int) {
	p := pt.NumPartitions()
	bits := pt.Bits
	bufK := make([]uint64, p*wcEntries)
	var bufV []uint64
	if pt.Vals != nil {
		bufV = make([]uint64, p*wcEntries)
	}
	fill := make([]uint8, p)

	for i := lo; i < hi; i++ {
		k := keys[i]
		q := PartitionIndex(k, bits)
		f := int(fill[q])
		base := q * wcEntries
		bufK[base+f] = k
		if bufV != nil {
			var v uint64
			if i < len(vals) {
				v = vals[i]
			}
			bufV[base+f] = v
		}
		f++
		if f == wcEntries {
			dst := cur[q]
			copy(pt.Keys[dst:dst+wcEntries], bufK[base:base+wcEntries])
			if bufV != nil {
				copy(pt.Vals[dst:dst+wcEntries], bufV[base:base+wcEntries])
			}
			cur[q] = dst + wcEntries
			f = 0
		}
		fill[q] = uint8(f)
	}

	// Flush the partial buffers.
	for q := 0; q < p; q++ {
		f := int(fill[q])
		if f == 0 {
			continue
		}
		base := q * wcEntries
		dst := cur[q]
		copy(pt.Keys[dst:dst+f], bufK[base:base+f])
		if bufV != nil {
			copy(pt.Vals[dst:dst+f], bufV[base:base+f])
		}
		cur[q] = dst + f
	}
}
