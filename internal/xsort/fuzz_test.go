package xsort

import (
	"encoding/binary"
	"sort"
	"testing"
)

// bytesToKeys decodes the fuzz input into uint64 keys.
func bytesToKeys(data []byte) []uint64 {
	keys := make([]uint64, 0, len(data)/8+1)
	for len(data) >= 8 {
		keys = append(keys, binary.LittleEndian.Uint64(data))
		data = data[8:]
	}
	if len(data) > 0 {
		var tail [8]byte
		copy(tail[:], data)
		keys = append(keys, binary.LittleEndian.Uint64(tail[:]))
	}
	return keys
}

// FuzzSortsAgree checks every serial sort against the standard library on
// arbitrary byte-derived inputs.
func FuzzSortsAgree(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		keys := bytesToKeys(data)
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, s := range []struct {
			name string
			fn   func([]uint64)
		}{
			{"Quicksort", Quicksort},
			{"Introsort", Introsort},
			{"RadixSortLSB", RadixSortLSB},
			{"RadixSortMSB", RadixSortMSB},
			{"Spreadsort", Spreadsort},
		} {
			got := append([]uint64(nil), keys...)
			s.fn(got)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: mismatch at %d", s.name, i)
				}
			}
		}
	})
}

// FuzzParallelSortsAgree checks the parallel sorts with a thread count
// derived from the input.
func FuzzParallelSortsAgree(f *testing.F) {
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, praw uint8) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		p := int(praw)%8 + 1
		keys := bytesToKeys(data)
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, s := range []struct {
			name string
			fn   func([]uint64, int)
		}{
			{"SortBI", SortBI},
			{"SortQSLB", SortQSLB},
			{"SortTBB", SortTBB},
			{"SortSS", SortSS},
		} {
			got := append([]uint64(nil), keys...)
			s.fn(got, p)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s(p=%d): mismatch at %d", s.name, p, i)
				}
			}
		}
	})
}
