package xsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"memagg/internal/dataset"
)

// serialSorts enumerates every serial uint64 sorting function under test.
var serialSorts = []struct {
	name string
	fn   func([]uint64)
}{
	{"InsertionSort", InsertionSort},
	{"Heapsort", Heapsort},
	{"Quicksort", Quicksort},
	{"Introsort", Introsort},
	{"RadixSortLSB", RadixSortLSB},
	{"RadixSortMSB", RadixSortMSB},
	{"Spreadsort", Spreadsort},
}

// parallelSorts enumerates the parallel uint64 sorting functions.
var parallelSorts = []struct {
	name string
	fn   func([]uint64, int)
}{
	{"SortBI", SortBI},
	{"SortQSLB", SortQSLB},
	{"SortTBB", SortTBB},
	{"SortSS", SortSS},
}

// adversarial inputs exercising edge cases of every algorithm.
func testInputs() map[string][]uint64 {
	rng := dataset.NewRNG(99)
	random := make([]uint64, 10000)
	for i := range random {
		random[i] = rng.Next()
	}
	smallRange := dataset.Random(10000, 1, 5, 1)
	organ := make([]uint64, 0, 10000) // organ pipe: ascending then descending
	for i := 0; i < 5000; i++ {
		organ = append(organ, uint64(i))
	}
	for i := 5000; i > 0; i-- {
		organ = append(organ, uint64(i))
	}
	return map[string][]uint64{
		"empty":        {},
		"single":       {42},
		"two":          {2, 1},
		"allEqual":     dataset.Random(10000, 7, 7, 1),
		"random":       random,
		"smallRange":   smallRange,
		"presorted":    dataset.Sequential(10000),
		"reversed":     dataset.Reversed(10000),
		"organPipe":    organ,
		"withZeros":    append([]uint64{0, 0, 0}, dataset.Random(1000, 0, 3, 2)...),
		"maxUint64":    {^uint64(0), 0, ^uint64(0) - 1, 1},
		"zipfSkew":     dataset.Spec{Kind: dataset.Zipf, N: 10000, Cardinality: 1000, Seed: 3}.Keys(),
		"highCardRand": dataset.Random(20000, 1, 1<<40, 4),
	}
}

func TestSerialSortsCorrect(t *testing.T) {
	for _, s := range serialSorts {
		for name, input := range testInputs() {
			if s.name == "InsertionSort" && len(input) > 10000 {
				continue // quadratic; keep test fast
			}
			a := append([]uint64(nil), input...)
			want := append([]uint64(nil), input...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			s.fn(a)
			if !equalU64(a, want) {
				t.Errorf("%s on %s: wrong order", s.name, name)
			}
		}
	}
}

func TestParallelSortsCorrect(t *testing.T) {
	for _, s := range parallelSorts {
		for name, input := range testInputs() {
			for _, p := range []int{1, 2, 3, 8} {
				a := append([]uint64(nil), input...)
				want := append([]uint64(nil), input...)
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				s.fn(a, p)
				if !equalU64(a, want) {
					t.Errorf("%s(p=%d) on %s: wrong order", s.name, p, name)
				}
			}
		}
	}
}

func TestQuickPropertySerialSortsMatchStdlib(t *testing.T) {
	for _, s := range serialSorts {
		s := s
		f := func(a []uint64) bool {
			got := append([]uint64(nil), a...)
			want := append([]uint64(nil), a...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			s.fn(got)
			return equalU64(got, want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", s.name, err)
		}
	}
}

func TestQuickPropertyParallelSortsMatchStdlib(t *testing.T) {
	for _, s := range parallelSorts {
		s := s
		f := func(a []uint64, praw uint8) bool {
			p := int(praw)%8 + 1
			got := append([]uint64(nil), a...)
			want := append([]uint64(nil), a...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			s.fn(got, p)
			return equalU64(got, want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", s.name, err)
		}
	}
}

func TestParallelSortsLargeInput(t *testing.T) {
	// Exercise the genuinely parallel paths (above parallelMinSize).
	base := dataset.Random(300000, 1, 1<<32, 7)
	want := append([]uint64(nil), base...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for _, s := range parallelSorts {
		for _, p := range []int{2, 4, 7} {
			a := append([]uint64(nil), base...)
			s.fn(a, p)
			if !equalU64(a, want) {
				t.Errorf("%s(p=%d): wrong order on large input", s.name, p)
			}
		}
	}
}

func TestKVSortsCorrect(t *testing.T) {
	kvSorts := []struct {
		name string
		fn   func([]KV)
	}{
		{"InsertionSortKV", InsertionSortKV},
		{"HeapsortKV", HeapsortKV},
		{"QuicksortKV", QuicksortKV},
		{"IntrosortKV", IntrosortKV},
		{"SpreadsortKV", SpreadsortKV},
		{"SortBIKV(4)", func(a []KV) { SortBIKV(a, 4) }},
		{"SortQSLBKV(4)", func(a []KV) { SortQSLBKV(a, 4) }},
	}
	rng := dataset.NewRNG(5)
	sizes := []int{0, 1, 2, 100, 10000, 100000}
	for _, s := range kvSorts {
		for _, n := range sizes {
			if s.name == "InsertionSortKV" && n > 10000 {
				continue
			}
			a := make([]KV, n)
			for i := range a {
				a[i] = KV{K: rng.Uint64n(997), V: uint64(i)}
			}
			want := append([]KV(nil), a...)
			sort.SliceStable(want, func(i, j int) bool { return want[i].K < want[j].K })
			s.fn(a)
			if !IsSortedKV(a) {
				t.Errorf("%s n=%d: keys not sorted", s.name, n)
				continue
			}
			// Key multiset must be preserved and each (K,V) pair intact:
			// compare the multiset of pairs.
			sort.Slice(a, func(i, j int) bool {
				if a[i].K != a[j].K {
					return a[i].K < a[j].K
				}
				return a[i].V < a[j].V
			})
			sort.Slice(want, func(i, j int) bool {
				if want[i].K != want[j].K {
					return want[i].K < want[j].K
				}
				return want[i].V < want[j].V
			})
			for i := range a {
				if a[i] != want[i] {
					t.Errorf("%s n=%d: record multiset changed at %d", s.name, n, i)
					break
				}
			}
		}
	}
}

func TestQuicksortWorstCaseStillSorts(t *testing.T) {
	// Median-of-three killer style input: many equal keys plus sorted runs.
	n := 50000
	a := make([]uint64, n)
	for i := range a {
		a[i] = uint64(i % 3)
	}
	Quicksort(a)
	if !IsSorted(a) {
		t.Fatal("Quicksort failed on many-duplicates input")
	}
}

func TestIntrosortDepthFallback(t *testing.T) {
	// The introsort must remain O(n log n) even on adversarial patterns.
	// We can't observe the heapsort switch directly, but we can confirm
	// correctness on patterns known to degrade quicksort.
	patterns := [][]uint64{
		dataset.Sequential(200000),
		dataset.Reversed(200000),
		dataset.Random(200000, 1, 2, 9),
	}
	for i, a := range patterns {
		Introsort(a)
		if !IsSorted(a) {
			t.Fatalf("pattern %d not sorted", i)
		}
	}
}

func TestMergeInto(t *testing.T) {
	x := []uint64{1, 3, 5}
	y := []uint64{2, 4, 6, 7}
	dst := make([]uint64, 7)
	mergeInto(dst, x, y)
	want := []uint64{1, 2, 3, 4, 5, 6, 7}
	if !equalU64(dst, want) {
		t.Fatalf("mergeInto = %v, want %v", dst, want)
	}
	// Empty sides.
	mergeInto(dst[:3], nil, []uint64{1, 2, 3})
	if !equalU64(dst[:3], []uint64{1, 2, 3}) {
		t.Fatal("mergeInto with empty x failed")
	}
}

func TestChunkBounds(t *testing.T) {
	b := chunkBounds(10, 3)
	if b[0] != 0 || b[len(b)-1] != 10 || len(b) != 4 {
		t.Fatalf("chunkBounds(10,3) = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			t.Fatalf("bounds not monotone: %v", b)
		}
	}
	// All elements covered exactly once by construction (monotone + ends).
}

func TestLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1024: 10}
	for n, want := range cases {
		if got := log2(n); got != want {
			t.Errorf("log2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSortsDoNotAllocateBeyondScratch(t *testing.T) {
	// In-place algorithms must not allocate at all.
	a := dataset.Random(20000, 1, 1<<30, 11)
	for _, s := range []struct {
		name string
		fn   func([]uint64)
	}{
		{"Introsort", Introsort},
		{"Quicksort", Quicksort},
		{"Heapsort", Heapsort},
	} {
		cp := append([]uint64(nil), a...)
		allocs := testing.AllocsPerRun(1, func() { s.fn(cp) })
		if allocs > 0 {
			t.Errorf("%s allocated %.0f times; expected 0", s.name, allocs)
		}
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted(nil) || !IsSorted([]uint64{1}) || !IsSorted([]uint64{1, 1, 2}) {
		t.Fatal("IsSorted false negative")
	}
	if IsSorted([]uint64{2, 1}) {
		t.Fatal("IsSorted false positive")
	}
	if !IsSortedKV([]KV{{1, 9}, {1, 3}, {2, 0}}) || IsSortedKV([]KV{{2, 0}, {1, 0}}) {
		t.Fatal("IsSortedKV wrong")
	}
}

// Fuzz-style deterministic stress across many shapes and sizes.
func TestStressAllSortsManyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := r.Intn(5000)
		a := make([]uint64, n)
		mode := trial % 4
		for i := range a {
			switch mode {
			case 0:
				a[i] = uint64(r.Int63())
			case 1:
				a[i] = uint64(r.Intn(4))
			case 2:
				a[i] = uint64(i)
			case 3:
				a[i] = uint64(n - i)
			}
		}
		want := append([]uint64(nil), a...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, s := range serialSorts {
			got := append([]uint64(nil), a...)
			s.fn(got)
			if !equalU64(got, want) {
				t.Fatalf("trial %d: %s wrong", trial, s.name)
			}
		}
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
