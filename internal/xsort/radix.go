package xsort

import "math/bits"

// RadixSortLSB sorts a in place (using one O(n) scratch buffer) by least
// significant byte first counting sort, one 8-bit digit per pass. Passes
// above the highest set byte of the maximum key are skipped, as are passes
// in which every key shares the same digit, so the cost is O(b*n) where b is
// the number of distinct significant bytes.
func RadixSortLSB(a []uint64) {
	n := len(a)
	if n < 2 {
		return
	}
	var max uint64
	for _, v := range a {
		if v > max {
			max = v
		}
	}
	passes := (bits.Len64(max) + 7) / 8
	if passes == 0 {
		return // all zeros
	}
	buf := make([]uint64, n)
	src, dst := a, buf
	flipped := false
	for pass := 0; pass < passes; pass++ {
		shift := uint(8 * pass)
		var count [256]int
		for _, v := range src {
			count[(v>>shift)&0xff]++
		}
		// Skip passes where all keys share the digit.
		skip := false
		for _, c := range count {
			if c == n {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		sum := 0
		for d := 0; d < 256; d++ {
			c := count[d]
			count[d] = sum
			sum += c
		}
		for _, v := range src {
			d := (v >> shift) & 0xff
			dst[count[d]] = v
			count[d]++
		}
		src, dst = dst, src
		flipped = !flipped
	}
	if flipped {
		copy(a, buf)
	}
}

// RadixSortMSB sorts a in place by most significant byte first radix
// partitioning (American-flag style in-place permutation), recursing into
// each bucket and finishing small buckets with insertion sort.
func RadixSortMSB(a []uint64) {
	if len(a) < 2 {
		return
	}
	var max uint64
	for _, v := range a {
		if v > max {
			max = v
		}
	}
	top := (bits.Len64(max) + 7) / 8 // number of significant bytes
	if top == 0 {
		return
	}
	msbSort(a, uint(8*(top-1)))
}

func msbSort(a []uint64, shift uint) {
	if len(a) <= msbRadixCutoff {
		InsertionSort(a)
		return
	}
	var count [256]int
	for _, v := range a {
		count[(v>>shift)&0xff]++
	}
	var start, end [256]int
	sum := 0
	for d := 0; d < 256; d++ {
		start[d] = sum
		sum += count[d]
		end[d] = sum
	}
	// American-flag permutation: walk each bucket's region, swapping
	// out-of-place elements into their home bucket's next free slot.
	pos := start
	for d := 0; d < 256; d++ {
		for pos[d] < end[d] {
			v := a[pos[d]]
			dv := int((v >> shift) & 0xff)
			for dv != d {
				a[pos[dv]], v = v, a[pos[dv]]
				pos[dv]++
				dv = int((v >> shift) & 0xff)
			}
			a[pos[d]] = v
			pos[d]++
		}
	}
	if shift == 0 {
		return
	}
	for d := 0; d < 256; d++ {
		if end[d]-start[d] > 1 {
			msbSort(a[start[d]:end[d]], shift-8)
		}
	}
}

// Spreadsort sorts a in place following Boost spreadsort's strategy for
// integers: MSB radix-style partitioning into at most 2^11 bins computed
// from the live key range, recursing while partitions remain large and
// switching to Introsort (comparison sorting) once a partition falls to or
// below the cutoff. Uses O(#bins) scratch per recursion level.
func Spreadsort(a []uint64) {
	spreadRec(a)
}

func spreadRec(a []uint64) {
	if len(a) <= spreadCutoff {
		Introsort(a)
		return
	}
	min, max := a[0], a[0]
	for _, v := range a[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min == max {
		return
	}
	logRange := bits.Len64(max - min)
	logDivisor := logRange - spreadMaxSplits
	if logDivisor < 0 {
		logDivisor = 0
	}
	nBins := int((max-min)>>uint(logDivisor)) + 1
	counts := make([]int, nBins)
	for _, v := range a {
		counts[(v-min)>>uint(logDivisor)]++
	}
	starts := make([]int, nBins+1)
	sum := 0
	for b := 0; b < nBins; b++ {
		starts[b] = sum
		sum += counts[b]
	}
	starts[nBins] = sum
	// In-place American-flag permutation over the bins.
	pos := make([]int, nBins)
	copy(pos, starts[:nBins])
	for b := 0; b < nBins; b++ {
		binEnd := starts[b+1]
		for pos[b] < binEnd {
			v := a[pos[b]]
			bv := int((v - min) >> uint(logDivisor))
			for bv != b {
				a[pos[bv]], v = v, a[pos[bv]]
				pos[bv]++
				bv = int((v - min) >> uint(logDivisor))
			}
			a[pos[b]] = v
			pos[b]++
		}
	}
	if logDivisor == 0 {
		return // each bin holds a single key value
	}
	for b := 0; b < nBins; b++ {
		if bin := a[starts[b]:starts[b+1]]; len(bin) > 1 {
			spreadRec(bin)
		}
	}
}
