// Package xsort implements the integer sorting algorithms evaluated by the
// paper: Quicksort, Introsort (std::sort), LSB and MSB Radix Sort, and
// Spreadsort (Boost), plus the four parallel algorithms from the
// multithreaded study (Sort_BI, Sort_QSLB, Sort_TBB, Sort_SS).
//
// All algorithms sort ascending and in place (some use O(n) scratch, noted
// per function). Key-value ("KV") variants sort records by key and carry the
// value along; they back the sort-based vector aggregation operators, which
// need each group's values contiguous after the sort.
package xsort

// KV is a key/value record. Sort-based aggregation sorts records by K so
// that all values of one group become adjacent.
type KV struct {
	K, V uint64
}

// Thresholds, chosen to match the reference implementations' behaviour:
// GCC's introsort switches to insertion sort below 16 elements; our radix
// and spreadsort recursions hand small partitions to comparison sorting.
const (
	insertionCutoff = 16  // introsort/quicksort leaf size
	msbRadixCutoff  = 64  // MSB radix → insertion sort
	spreadCutoff    = 256 // spreadsort partition → introsort
	spreadMaxSplits = 11  // Boost spreadsort default for 32/64-bit integers
)

// InsertionSort sorts a in place in O(n^2) time. Fast for tiny or nearly
// sorted inputs; used as the leaf case of the hybrid sorts.
func InsertionSort(a []uint64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Heapsort sorts a in place in O(n log n) worst case. It is the fallback
// introsort uses when quicksort recursion degenerates.
func Heapsort(a []uint64) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDown(a, 0, end)
	}
}

func siftDown(a []uint64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] > a[child] {
			child++
		}
		if a[root] >= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

// medianOfThree orders a[lo], a[mid], a[hi] and returns the median value.
func medianOfThree(a []uint64, lo, mid, hi int) uint64 {
	if a[mid] < a[lo] {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi] < a[mid] {
		a[hi], a[mid] = a[mid], a[hi]
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
	}
	return a[mid]
}

// hoarePartition partitions a around pivot p and returns the split index s
// such that every element of a[:s] is <= p and every element of a[s:] is
// >= p, with 0 < s < len(a) whenever len(a) >= 2 and p was chosen as a
// median of elements of a.
func hoarePartition(a []uint64, p uint64) int {
	i, j := -1, len(a)
	for {
		for {
			i++
			if a[i] >= p {
				break
			}
		}
		for {
			j--
			if a[j] <= p {
				break
			}
		}
		if i >= j {
			return j + 1
		}
		a[i], a[j] = a[j], a[i]
	}
}

// Quicksort sorts a in place using classic median-of-three quicksort with an
// insertion-sort leaf case. Average O(n log n); the O(n^2) worst case is
// retained deliberately (the paper contrasts it with Introsort's guarantee).
func Quicksort(a []uint64) {
	for len(a) > insertionCutoff {
		p := medianOfThree(a, 0, len(a)/2, len(a)-1)
		s := hoarePartition(a, p)
		// Recurse into the smaller side, loop on the larger, bounding
		// stack depth at O(log n) even in the worst case.
		if s < len(a)-s {
			Quicksort(a[:s])
			a = a[s:]
		} else {
			Quicksort(a[s:])
			a = a[:s]
		}
	}
	InsertionSort(a)
}

// Introsort sorts a in place with the GCC std::sort strategy: quicksort
// until the recursion depth exceeds 2*log2(n), then heapsort the offending
// partition; partitions at or below 16 elements are insertion sorted.
// Worst case O(n log n).
func Introsort(a []uint64) {
	introLoop(a, 2*log2(len(a)))
}

func introLoop(a []uint64, depth int) {
	for len(a) > insertionCutoff {
		if depth == 0 {
			Heapsort(a)
			return
		}
		depth--
		p := medianOfThree(a, 0, len(a)/2, len(a)-1)
		s := hoarePartition(a, p)
		if s < len(a)-s {
			introLoop(a[:s], depth)
			a = a[s:]
		} else {
			introLoop(a[s:], depth)
			a = a[:s]
		}
	}
	InsertionSort(a)
}

// log2 returns floor(log2(n)) for n >= 1, and 0 for n < 1.
func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// IsSorted reports whether a is in ascending order.
func IsSorted(a []uint64) bool {
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			return false
		}
	}
	return true
}
