package xsort

import "sync"

// Key-value variants of the two parallel sorts selected by the paper for the
// multithreaded aggregation operators (Sort_BI and Sort_QSLB). They power
// the parallel sort-based Q3 operator, which must keep each record's value
// attached to its key through the sort.

// SortBIKV sorts records by key using p threads (block sort + parallel
// pairwise merge, as SortBI).
func SortBIKV(a []KV, p int) {
	p = resolveP(p)
	if p <= 1 || len(a) < parallelMinSize {
		IntrosortKV(a)
		return
	}
	bounds := chunkBounds(len(a), p)
	parallelDo(p, func(i int) { IntrosortKV(a[bounds[i]:bounds[i+1]]) })
	mergeRunsKV(a, bounds)
}

func mergeRunsKV(a []KV, bounds []int) {
	buf := make([]KV, len(a))
	src, dst := a, buf
	for len(bounds) > 2 {
		newBounds := make([]int, 1, len(bounds)/2+2)
		var wg sync.WaitGroup
		i := 0
		for ; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			wg.Add(1)
			go func(lo, mid, hi int) {
				defer wg.Done()
				mergeIntoKV(dst[lo:hi], src[lo:mid], src[mid:hi])
			}(lo, mid, hi)
			newBounds = append(newBounds, hi)
		}
		if i+1 < len(bounds) {
			lo, hi := bounds[i], bounds[i+1]
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				copy(dst[lo:hi], src[lo:hi])
			}(lo, hi)
			newBounds = append(newBounds, hi)
		}
		wg.Wait()
		bounds = newBounds
		src, dst = dst, src
	}
	if len(a) > 0 && &src[0] != &a[0] {
		copy(a, src)
	}
}

func mergeIntoKV(dst, x, y []KV) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if x[i].K <= y[j].K {
			dst[k] = x[i]
			i++
		} else {
			dst[k] = y[j]
			j++
		}
		k++
	}
	copy(dst[k:], x[i:])
	copy(dst[k+len(x)-i:], y[j:])
}

// kvPool mirrors qsPool for KV partitions.
type kvPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	stack   [][]KV
	pending int
}

func newKVPool(first []KV) *kvPool {
	p := &kvPool{stack: [][]KV{first}, pending: 1}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (q *kvPool) push(span []KV) {
	q.mu.Lock()
	q.stack = append(q.stack, span)
	q.pending++
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *kvPool) pop() (span []KV, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.stack) == 0 {
		if q.pending == 0 {
			return nil, false
		}
		q.cond.Wait()
	}
	span = q.stack[len(q.stack)-1]
	q.stack = q.stack[:len(q.stack)-1]
	return span, true
}

func (q *kvPool) done() {
	q.mu.Lock()
	q.pending--
	finished := q.pending == 0
	q.mu.Unlock()
	if finished {
		q.cond.Broadcast()
	}
}

// SortQSLBKV sorts records by key with the load-balanced parallel quicksort
// (as SortQSLB).
func SortQSLBKV(a []KV, p int) {
	p = resolveP(p)
	if p <= 1 || len(a) < parallelMinSize {
		IntrosortKV(a)
		return
	}
	pool := newKVPool(a)
	parallelDo(p, func(int) {
		for {
			span, ok := pool.pop()
			if !ok {
				return
			}
			for len(span) > qslbSerialCutoff {
				pv := medianOfThreeKV(span, 0, len(span)/2, len(span)-1)
				s := hoarePartitionKV(span, pv)
				if s < len(span)-s {
					pool.push(span[s:])
					span = span[:s]
				} else {
					pool.push(span[:s])
					span = span[s:]
				}
			}
			IntrosortKV(span)
			pool.done()
		}
	})
}
