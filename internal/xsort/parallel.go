package xsort

import (
	"runtime"
	"sort"
	"sync"
)

// The four parallel sorting algorithms from the paper's multithreaded study
// (Section 5.8, Figure 10), reimplemented with goroutines:
//
//   - SortBI   — Boost block_indirect_sort analog: sort blocks in parallel,
//     then parallel pairwise merging.
//   - SortQSLB — GCC parallel-mode quicksort with load balancing: a shared
//     work pool that idle threads steal partitions from.
//   - SortTBB  — TBB parallel_sort analog: fork/join quicksort that spawns
//     a task per partition while worker tokens are available.
//   - SortSS   — Boost sample_sort analog: splitter-based bucket partition,
//     buckets sorted in parallel.
//
// Every function takes a thread count p; p <= 0 means GOMAXPROCS. With
// p == 1 all of them degrade to serial Introsort, which keeps the Figure 10
// single-thread baselines meaningful.

// parallelMinSize is the input size below which the parallel algorithms fall
// back to serial sorting (thread startup would dominate).
const parallelMinSize = 4096

func resolveP(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// chunkBounds splits n items into p contiguous chunks of near-equal size and
// returns the p+1 chunk boundaries.
func chunkBounds(n, p int) []int {
	bounds := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bounds[i] = n * i / p
	}
	return bounds
}

// parallelDo runs f(0)..f(p-1) on p goroutines and waits for all of them.
func parallelDo(p int, f func(i int)) {
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

// --- SortBI: parallel block sort + merge ------------------------------------

// SortBI sorts a ascending using p threads: the input is cut into p blocks,
// each block is introsorted concurrently, and adjacent sorted runs are then
// merged pairwise in parallel (ping-ponging through one O(n) buffer) until a
// single run remains.
func SortBI(a []uint64, p int) {
	p = resolveP(p)
	if p <= 1 || len(a) < parallelMinSize {
		Introsort(a)
		return
	}
	bounds := chunkBounds(len(a), p)
	parallelDo(p, func(i int) { Introsort(a[bounds[i]:bounds[i+1]]) })
	mergeRuns(a, bounds)
}

// mergeRuns repeatedly merges adjacent sorted runs delimited by bounds until
// a holds one sorted run. Merges within a round run concurrently.
func mergeRuns(a []uint64, bounds []int) {
	buf := make([]uint64, len(a))
	src, dst := a, buf
	for len(bounds) > 2 {
		newBounds := make([]int, 1, len(bounds)/2+2)
		var wg sync.WaitGroup
		i := 0
		for ; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			wg.Add(1)
			go func(lo, mid, hi int) {
				defer wg.Done()
				mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi])
			}(lo, mid, hi)
			newBounds = append(newBounds, hi)
		}
		if i+1 < len(bounds) { // odd run out: copy through
			lo, hi := bounds[i], bounds[i+1]
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				copy(dst[lo:hi], src[lo:hi])
			}(lo, hi)
			newBounds = append(newBounds, hi)
		}
		wg.Wait()
		bounds = newBounds
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// mergeInto merges sorted runs x and y into dst. len(dst) == len(x)+len(y).
func mergeInto(dst, x, y []uint64) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if x[i] <= y[j] {
			dst[k] = x[i]
			i++
		} else {
			dst[k] = y[j]
			j++
		}
		k++
	}
	copy(dst[k:], x[i:])
	copy(dst[k+len(x)-i:], y[j:])
}

// --- SortQSLB: load-balanced parallel quicksort ------------------------------

// qsPool is a mutex-protected LIFO of pending partitions plus termination
// accounting: pending counts partitions that are queued or being processed,
// so workers can distinguish "temporarily empty" from "all work done".
type qsPool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	stack   [][]uint64
	pending int
}

func newQSPool(first []uint64) *qsPool {
	p := &qsPool{stack: [][]uint64{first}, pending: 1}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// push adds a new partition to the pool.
func (q *qsPool) push(span []uint64) {
	q.mu.Lock()
	q.stack = append(q.stack, span)
	q.pending++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop removes a partition, blocking while the pool is empty but work is
// still in flight. ok is false when all work has completed.
func (q *qsPool) pop() (span []uint64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.stack) == 0 {
		if q.pending == 0 {
			return nil, false
		}
		q.cond.Wait()
	}
	span = q.stack[len(q.stack)-1]
	q.stack = q.stack[:len(q.stack)-1]
	return span, true
}

// done marks one popped partition fully processed.
func (q *qsPool) done() {
	q.mu.Lock()
	q.pending--
	finished := q.pending == 0
	q.mu.Unlock()
	if finished {
		q.cond.Broadcast()
	}
}

// qslbSerialCutoff is the partition size below which a QSLB worker sorts
// serially instead of splitting further.
const qslbSerialCutoff = 8192

// SortQSLB sorts a ascending with a load-balanced parallel quicksort: p
// workers share a pool of partitions; each worker repeatedly splits its
// partition, donates one side to the pool, and keeps the other, so idle
// workers always find work while any large partition exists.
func SortQSLB(a []uint64, p int) {
	p = resolveP(p)
	if p <= 1 || len(a) < parallelMinSize {
		Introsort(a)
		return
	}
	pool := newQSPool(a)
	parallelDo(p, func(int) {
		for {
			span, ok := pool.pop()
			if !ok {
				return
			}
			for len(span) > qslbSerialCutoff {
				pv := medianOfThree(span, 0, len(span)/2, len(span)-1)
				s := hoarePartition(span, pv)
				if s < len(span)-s {
					pool.push(span[s:])
					span = span[:s]
				} else {
					pool.push(span[:s])
					span = span[s:]
				}
			}
			Introsort(span)
			pool.done()
		}
	})
}

// --- SortTBB: fork/join task quicksort ---------------------------------------

// tbbSerialCutoff mirrors TBB parallel_sort's grain size.
const tbbSerialCutoff = 2048

// SortTBB sorts a ascending with a fork/join quicksort: each partition step
// spawns a goroutine for one side while worker tokens (p-1 of them) remain,
// processing the other side itself; with no token available it recurses
// serially. This is the TBB task-group structure: eager task creation, no
// explicit load balancing.
func SortTBB(a []uint64, p int) {
	p = resolveP(p)
	if p <= 1 || len(a) < parallelMinSize {
		Introsort(a)
		return
	}
	tokens := make(chan struct{}, p-1)
	var wg sync.WaitGroup
	var rec func(a []uint64)
	rec = func(a []uint64) {
		for len(a) > tbbSerialCutoff {
			pv := medianOfThree(a, 0, len(a)/2, len(a)-1)
			s := hoarePartition(a, pv)
			left, right := a[:s], a[s:]
			select {
			case tokens <- struct{}{}:
				wg.Add(1)
				go func(span []uint64) {
					defer wg.Done()
					rec(span)
					<-tokens
				}(left)
				a = right
			default:
				Introsort(left)
				a = right
			}
		}
		Introsort(a)
	}
	rec(a)
	wg.Wait()
}

// --- SortSS: samplesort -------------------------------------------------------

// ssOversample controls splitter quality: p*ssOversample keys are sampled to
// choose p-1 splitters.
const ssOversample = 32

// SortSS sorts a ascending with samplesort: evenly spaced sample keys choose
// p-1 splitters generalizing the quicksort pivot to p buckets; all records
// are scattered to their bucket in parallel (two-pass count + place through
// an O(n) buffer), and the buckets are sorted concurrently.
func SortSS(a []uint64, p int) {
	p = resolveP(p)
	if p <= 1 || len(a) < parallelMinSize {
		Introsort(a)
		return
	}
	n := len(a)
	// Choose splitters from an evenly spaced sample.
	sampleSize := p * ssOversample
	sample := make([]uint64, sampleSize)
	for i := range sample {
		sample[i] = a[n*i/sampleSize]
	}
	Introsort(sample)
	splitters := make([]uint64, p-1)
	for i := range splitters {
		splitters[i] = sample[(i+1)*ssOversample-1]
	}

	bucketOf := func(v uint64) int {
		return sort.Search(len(splitters), func(i int) bool { return v <= splitters[i] })
	}

	// Pass 1: per-worker, per-bucket counts.
	bounds := chunkBounds(n, p)
	counts := make([][]int, p)
	parallelDo(p, func(w int) {
		c := make([]int, p)
		for _, v := range a[bounds[w]:bounds[w+1]] {
			c[bucketOf(v)]++
		}
		counts[w] = c
	})
	// Global placement offsets: bucket-major, then worker.
	offsets := make([][]int, p)
	sum := 0
	bucketStart := make([]int, p+1)
	for b := 0; b < p; b++ {
		bucketStart[b] = sum
		for w := 0; w < p; w++ {
			if offsets[w] == nil {
				offsets[w] = make([]int, p)
			}
			offsets[w][b] = sum
			sum += counts[w][b]
		}
	}
	bucketStart[p] = n

	// Pass 2: scatter into buf, then sort each bucket concurrently.
	buf := make([]uint64, n)
	parallelDo(p, func(w int) {
		off := offsets[w]
		for _, v := range a[bounds[w]:bounds[w+1]] {
			b := bucketOf(v)
			buf[off[b]] = v
			off[b]++
		}
	})
	parallelDo(p, func(b int) {
		Introsort(buf[bucketStart[b]:bucketStart[b+1]])
	})
	copy(a, buf)
}
