package xsort

import "math/bits"

// Key-value variants of the hybrid sorts. These mirror the uint64 versions
// but move 16-byte records, ordering by K only (V is carried along). The
// sort is not stable; aggregation does not require stability because group
// values are order-insensitive for the paper's aggregate functions.

// InsertionSortKV sorts records by key in O(n^2).
func InsertionSortKV(a []KV) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j].K > v.K {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// HeapsortKV sorts records by key in O(n log n) worst case.
func HeapsortKV(a []KV) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownKV(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDownKV(a, 0, end)
	}
}

func siftDownKV(a []KV, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1].K > a[child].K {
			child++
		}
		if a[root].K >= a[child].K {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

func medianOfThreeKV(a []KV, lo, mid, hi int) uint64 {
	if a[mid].K < a[lo].K {
		a[mid], a[lo] = a[lo], a[mid]
	}
	if a[hi].K < a[mid].K {
		a[hi], a[mid] = a[mid], a[hi]
		if a[mid].K < a[lo].K {
			a[mid], a[lo] = a[lo], a[mid]
		}
	}
	return a[mid].K
}

func hoarePartitionKV(a []KV, p uint64) int {
	i, j := -1, len(a)
	for {
		for {
			i++
			if a[i].K >= p {
				break
			}
		}
		for {
			j--
			if a[j].K <= p {
				break
			}
		}
		if i >= j {
			return j + 1
		}
		a[i], a[j] = a[j], a[i]
	}
}

// QuicksortKV sorts records by key with median-of-three quicksort.
func QuicksortKV(a []KV) {
	for len(a) > insertionCutoff {
		p := medianOfThreeKV(a, 0, len(a)/2, len(a)-1)
		s := hoarePartitionKV(a, p)
		if s < len(a)-s {
			QuicksortKV(a[:s])
			a = a[s:]
		} else {
			QuicksortKV(a[s:])
			a = a[:s]
		}
	}
	InsertionSortKV(a)
}

// IntrosortKV sorts records by key with the std::sort strategy (quicksort,
// heapsort fallback at depth 2*log2(n), insertion sort leaves).
func IntrosortKV(a []KV) {
	introLoopKV(a, 2*log2(len(a)))
}

func introLoopKV(a []KV, depth int) {
	for len(a) > insertionCutoff {
		if depth == 0 {
			HeapsortKV(a)
			return
		}
		depth--
		p := medianOfThreeKV(a, 0, len(a)/2, len(a)-1)
		s := hoarePartitionKV(a, p)
		if s < len(a)-s {
			introLoopKV(a[:s], depth)
			a = a[s:]
		} else {
			introLoopKV(a[s:], depth)
			a = a[:s]
		}
	}
	InsertionSortKV(a)
}

// SpreadsortKV sorts records by key with the Boost spreadsort strategy.
func SpreadsortKV(a []KV) {
	spreadRecKV(a)
}

func spreadRecKV(a []KV) {
	if len(a) <= spreadCutoff {
		IntrosortKV(a)
		return
	}
	min, max := a[0].K, a[0].K
	for _, v := range a[1:] {
		if v.K < min {
			min = v.K
		}
		if v.K > max {
			max = v.K
		}
	}
	if min == max {
		return
	}
	logRange := bits.Len64(max - min)
	logDivisor := logRange - spreadMaxSplits
	if logDivisor < 0 {
		logDivisor = 0
	}
	nBins := int((max-min)>>uint(logDivisor)) + 1
	starts := make([]int, nBins+1)
	counts := make([]int, nBins)
	for _, v := range a {
		counts[(v.K-min)>>uint(logDivisor)]++
	}
	sum := 0
	for b := 0; b < nBins; b++ {
		starts[b] = sum
		sum += counts[b]
	}
	starts[nBins] = sum
	pos := make([]int, nBins)
	copy(pos, starts[:nBins])
	for b := 0; b < nBins; b++ {
		binEnd := starts[b+1]
		for pos[b] < binEnd {
			v := a[pos[b]]
			bv := int((v.K - min) >> uint(logDivisor))
			for bv != b {
				a[pos[bv]], v = v, a[pos[bv]]
				pos[bv]++
				bv = int((v.K - min) >> uint(logDivisor))
			}
			a[pos[b]] = v
			pos[b]++
		}
	}
	if logDivisor == 0 {
		return
	}
	for b := 0; b < nBins; b++ {
		if bin := a[starts[b]:starts[b+1]]; len(bin) > 1 {
			spreadRecKV(bin)
		}
	}
}

// IsSortedKV reports whether a is ascending by key.
func IsSortedKV(a []KV) bool {
	for i := 1; i < len(a); i++ {
		if a[i].K < a[i-1].K {
			return false
		}
	}
	return true
}
