package harness

import (
	"fmt"

	"memagg/internal/agg"
	"memagg/internal/dataset"
)

// maxThreads returns the largest configured thread count — the
// parallel-design experiments compare the engines at full width.
func maxThreads(cfg Config) int {
	p := 1
	for _, t := range cfg.Threads {
		if t > p {
			p = t
		}
	}
	return p
}

// ExtRadix charts the three parallel aggregation designs across group-by
// cardinality: the shared structures (Hash_LC, Hash_TBBSC), the
// private-table merge scheme (Hash_PLAT) and the radix-partitioned engine
// (Hash_RX). The expected shape (DESIGN.md): at low cardinality every
// design's tables are cache-resident and Hash_RX's extra partitioning pass
// is pure overhead; past the point where per-worker tables leave cache the
// shared structures contend, PLAT's merge re-scans p overflowing tables,
// and Hash_RX — whose phase-2 tables stay cache-sized by construction —
// takes over. The Q1 sweep locates that crossover; the Q3 rows show the
// same contest on a holistic function, which the classic partitioned
// schemes of the literature cannot serve at all.
func ExtRadix(cfg Config) error {
	warm()
	p := maxThreads(cfg)
	engines := []agg.Engine{
		agg.HashRX(p), agg.HashPLAT(p), agg.HashLC(p), agg.HashTBBSC(p),
	}
	tw := newTable(cfg.Out, "query", "cardinality", "threads", "algorithm", "time_ms")

	// Q1 over a geometric cardinality sweep, 2^6 .. 2^24 clipped to N.
	for card := 1 << 6; card <= cfg.N && card <= 1<<24; card <<= 2 {
		keys := keysFor(cfg, dataset.RseqShf, card)
		for _, e := range engines {
			el := timeIt(func() { e.VectorCount(keys) })
			fmt.Fprintf(tw, "Q1\t%d\t%d\t%s\t%s\n", card, p, e.Name(), ms(el))
		}
	}

	// Q3 (holistic) at the low/high pair.
	vals := dataset.Values(cfg.N, cfg.Seed)
	low, high := cfg.lowHighCards()
	for _, card := range []int{low, high} {
		keys := keysFor(cfg, dataset.RseqShf, card)
		for _, e := range engines {
			el := timeIt(func() { e.VectorMedian(keys, vals) })
			fmt.Fprintf(tw, "Q3\t%d\t%d\t%s\t%s\n", card, p, e.Name(), ms(el))
		}
	}
	return tw.Flush()
}
