package harness

import (
	"fmt"

	"memagg/internal/agg"
	"memagg/internal/dataset"
	"memagg/internal/stragg"
)

// ExtQ2 runs the Q2 (vector AVG) grid the paper measured but omitted for
// space ("due to space constraints and the similarity between Algebraic
// and Distributive functions, we do not show results for Q2"): the same
// conditions as Figure 4, completing the record.
func ExtQ2(cfg Config) error {
	warm()
	vals := dataset.Values(cfg.N, cfg.Seed)
	tw := newTable(cfg.Out, "dataset", "cardinality", "algorithm", "q2_ms")
	for _, kind := range cfg.Datasets {
		for _, card := range cfg.Cardinalities {
			keys := keysFor(cfg, kind, card)
			for _, e := range agg.Engines() {
				el := timeIt(func() { e.VectorAvg(keys, vals) })
				fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", kind, card, e.Name(), ms(el))
			}
		}
	}
	return tw.Flush()
}

// ExtEngines compares the extension engines with their paper counterparts:
// Hash_PLAT (independent thread-local tables + partitioned merge) against
// the shared-structure concurrent engines on Q1/Q3, and Adaptive against
// its two fixed routes across the cardinality sweep.
func ExtEngines(cfg Config) error {
	warm()
	low, high := cfg.lowHighCards()
	vals := dataset.Values(cfg.N, cfg.Seed)

	// Part 1: PLAT vs shared-structure engines across threads.
	tw := newTable(cfg.Out, "query", "cardinality", "threads", "algorithm", "time_ms")
	for _, card := range []int{low, high} {
		keys := keysFor(cfg, dataset.Rseq, card)
		for _, p := range cfg.Threads {
			engines := append(agg.ConcurrentEngines(p), agg.HashPLAT(p))
			for _, e := range engines {
				el := timeIt(func() { e.VectorCount(keys) })
				fmt.Fprintf(tw, "Q1\t%d\t%d\t%s\t%s\n", card, p, e.Name(), ms(el))
			}
			for _, e := range engines {
				el := timeIt(func() { e.VectorMedian(keys, vals) })
				fmt.Fprintf(tw, "Q3\t%d\t%d\t%s\t%s\n", card, p, e.Name(), ms(el))
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Part 2: Adaptive routing against its fixed endpoints.
	tw2 := newTable(cfg.Out, "dataset", "cardinality", "algorithm", "q1_ms")
	for _, kind := range []dataset.Kind{dataset.RseqShf, dataset.Zipf} {
		for _, card := range cfg.Cardinalities {
			keys := keysFor(cfg, kind, card)
			for _, e := range []agg.Engine{agg.HashLP(), agg.Spreadsort(), agg.Adaptive()} {
				el := timeIt(func() { e.VectorCount(keys) })
				fmt.Fprintf(tw2, "%s\t%d\t%s\t%s\n", kind, card, e.Name(), ms(el))
			}
		}
	}
	return tw2.Flush()
}

// ExtStrings compares the string-key backends on the word-count workload
// (Zipf word frequencies, as Section 4 motivates): Q1 plus the ordered
// queries on the ordered engines.
func ExtStrings(cfg Config) error {
	warm()
	rng := dataset.NewRNG(cfg.Seed)
	card := 1 << 14
	if card > cfg.N {
		card = cfg.N
	}
	z := dataset.NewZipfSampler(uint64(card), dataset.ZipfExponent)
	keys := make([]string, cfg.N)
	for i := range keys {
		keys[i] = fmt.Sprintf("tok-%06d", z.Sample(rng))
	}
	vals := dataset.Values(cfg.N, cfg.Seed)

	tw := newTable(cfg.Out, "query", "algorithm", "time_ms", "groups")
	for _, e := range stragg.Engines() {
		groups := 0
		el := timeIt(func() { groups = len(e.VectorCount(keys)) })
		fmt.Fprintf(tw, "Q1\t%s\t%s\t%d\n", e.Name(), ms(el), groups)
	}
	for _, e := range stragg.Engines() {
		groups := 0
		el := timeIt(func() { groups = len(e.VectorMedian(keys, vals)) })
		fmt.Fprintf(tw, "Q3\t%s\t%s\t%d\n", e.Name(), ms(el), groups)
	}
	for _, e := range stragg.Engines() {
		var err error
		el := timeIt(func() { _, err = e.ScalarMedianKey(keys) })
		if err != nil {
			continue // hash engines: unsupported
		}
		fmt.Fprintf(tw, "Q6\t%s\t%s\t-\n", e.Name(), ms(el))
	}
	for _, e := range stragg.Engines() {
		groups := 0
		var err error
		el := timeIt(func() {
			rows, perr := e.PrefixCount(keys, "tok-0001")
			groups, err = len(rows), perr
		})
		if err != nil {
			continue
		}
		fmt.Fprintf(tw, "Q7\t%s\t%s\t%d\n", e.Name(), ms(el), groups)
	}
	return tw.Flush()
}
