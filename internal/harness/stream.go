package harness

import (
	"fmt"
	"sync"
	"time"

	"memagg/internal/agg"
	"memagg/internal/dataset"
	"memagg/internal/stream"
)

// ExtStream measures the streaming subsystem (internal/stream) along the
// three axes that matter for a serving deployment: ingest throughput as
// writer shards scale, background merge latency, and snapshot staleness
// (rows appended but not yet visible). Each row replays the same
// high-cardinality dataset — cfg.N rows in 4096-row batches, one producer
// goroutine per shard — then flushes and reports the stream's own merge
// accounting. Staleness is sampled concurrently during ingest; its maximum
// bounds how far behind a snapshot taken at any moment could have been.
// On a single-CPU host the shard sweep measures overhead, not speedup:
// producers, shards and the merger time-share one core.
func ExtStream(cfg Config) error {
	warm()
	const batchLen = 4096
	_, high := cfg.lowHighCards()
	spec := dataset.Spec{Kind: dataset.RseqShf, N: cfg.N, Cardinality: high, Seed: cfg.Seed}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), cfg.Seed)

	tw := newTable(cfg.Out, "shards", "rows_per_s", "merges", "avg_merge_ms", "max_stale_rows", "generations", "groups")
	for _, shards := range []int{1, 4, 8} {
		s := stream.New(stream.Config{Shards: shards, QueueDepth: 8, SealRows: 1 << 15})

		// Staleness sampler: polls while producers run.
		stop := make(chan struct{})
		var maxStale uint64
		var samplerWG sync.WaitGroup
		samplerWG.Add(1)
		go func() {
			defer samplerWG.Done()
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if st := s.Stats(); st.Staleness > maxStale {
						maxStale = st.Staleness
					}
				}
			}
		}()

		start := time.Now()
		var wg sync.WaitGroup
		per := len(keys) / shards
		for p := 0; p < shards; p++ {
			lo, hi := p*per, (p+1)*per
			if p == shards-1 {
				hi = len(keys)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for off := lo; off < hi; off += batchLen {
					end := off + batchLen
					if end > hi {
						end = hi
					}
					if err := s.AppendChunk(agg.Chunk{Keys: keys[off:end], Vals: vals[off:end]}, false); err != nil {
						panic(err)
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		if err := s.Flush(); err != nil {
			return err
		}
		elapsed := time.Since(start)
		close(stop)
		samplerWG.Wait()
		if err := s.Close(); err != nil {
			return err
		}

		st := s.Stats()
		avgMerge := time.Duration(0)
		if st.Merges > 0 {
			avgMerge = st.MergeTotal / time.Duration(st.Merges)
		}
		fmt.Fprintf(tw, "%d\t%.0f\t%d\t%s\t%d\t%d\t%d\n",
			shards, float64(len(keys))/elapsed.Seconds(), st.Merges, ms(avgMerge),
			maxStale, st.Generation, st.Groups)
	}
	return tw.Flush()
}
