package harness

import (
	"fmt"
	"os"
	"time"

	"memagg/internal/agg"
	"memagg/internal/dataset"
	"memagg/internal/stream"
	"memagg/internal/wal"
)

// walIngest pushes the whole dataset through a fresh stream — durable
// under dir with the given sync policy when dir is non-empty, volatile
// otherwise — and returns the stream (closed) plus the wall time from
// first Append to Flush return. CheckpointEvery is taken as given so
// the recovery section can choose between WAL-only and checkpointed
// shutdowns.
func walIngest(keys, vals []uint64, dir string, policy wal.SyncPolicy, ckptEvery int) (stream.Stats, time.Duration, error) {
	cfg := stream.Config{Shards: 1, QueueDepth: 8, SealRows: 1 << 14}
	var s *stream.Stream
	var err error
	if dir == "" {
		s = stream.New(cfg)
	} else {
		cfg.Durability = stream.Durability{Dir: dir, SyncPolicy: policy, SegmentBytes: 4 << 20, CheckpointEvery: ckptEvery}
		if s, err = stream.Open(cfg); err != nil {
			return stream.Stats{}, 0, err
		}
	}
	const batchLen = 4096
	start := time.Now()
	for i := 0; i < len(keys); i += batchLen {
		j := i + batchLen
		if j > len(keys) {
			j = len(keys)
		}
		if err := s.AppendChunk(agg.Chunk{Keys: keys[i:j], Vals: vals[i:j]}, false); err != nil {
			return stream.Stats{}, 0, err
		}
	}
	if err := s.Flush(); err != nil {
		return stream.Stats{}, 0, err
	}
	elapsed := time.Since(start)
	st := s.Stats()
	if err := s.Close(); err != nil {
		return stream.Stats{}, 0, err
	}
	return st, elapsed, nil
}

// mrows renders a rows/elapsed rate in million rows per second.
func mrows(rows int, d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(rows)/1e6/d.Seconds())
}

// ExtWAL measures what durability costs the streaming engine (the D6
// question asked of the disk instead of the allocator): first ingest
// throughput under each WAL sync policy against the volatile baseline,
// then recovery time as a function of how much log a crash leaves
// behind. The log lives on the real filesystem (a temp dir) — this is
// the experiment that pays disk prices; the in-tree guard isolates the
// CPU path on a memory FS.
func ExtWAL(cfg Config) error {
	warm()
	_, high := cfg.lowHighCards()
	keys := keysFor(cfg, dataset.RseqShf, high)
	vals := dataset.Values(cfg.N, cfg.Seed)

	root, err := os.MkdirTemp("", "memagg-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	// Section 1: ingest throughput by sync policy. WAL-only
	// (CheckpointEvery < 0) so the table reads as log cost, not
	// checkpoint cost. Volatile first as the baseline row.
	tw := newTable(cfg.Out, "mode", "ingest_ms", "mrows_s", "wal_appends", "fsyncs", "rotations")
	st, el, err := walIngest(keys, vals, "", wal.SyncNone, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "volatile\t%s\t%s\t-\t-\t-\n", ms(el), mrows(cfg.N, el))
	for _, policy := range []wal.SyncPolicy{wal.SyncNone, wal.SyncInterval, wal.SyncAlways} {
		dir := fmt.Sprintf("%s/sync-%s", root, policy)
		st, el, err = walIngest(keys, vals, dir, policy, -1)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "wal sync=%s\t%s\t%s\t%d\t%d\t%d\n",
			policy, ms(el), mrows(cfg.N, el), st.WALAppends, st.WALFsyncs, st.WALSegmentRotations)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Section 2: recovery time vs log size. Each run ingests a prefix of
	// the dataset WAL-only and closes; the reopen must replay the whole
	// log. The last row closes with checkpoints enabled instead — the
	// final checkpoint bounds replay to zero, the shape the graceful-
	// shutdown path always leaves.
	fmt.Fprintln(cfg.Out)
	tw = newTable(cfg.Out, "shutdown", "log_rows", "log_bytes", "recover_ms", "replay_mrows_s")
	recoverRun := func(label, dir string, rows int, ckptEvery int) error {
		if _, _, err := walIngest(keys[:rows], vals[:rows], dir, wal.SyncNone, ckptEvery); err != nil {
			return err
		}
		c := stream.Config{Shards: 1, QueueDepth: 8, SealRows: 1 << 14,
			Durability: stream.Durability{Dir: dir, SyncPolicy: wal.SyncNone, SegmentBytes: 4 << 20, CheckpointEvery: ckptEvery}}
		start := time.Now()
		s, err := stream.Open(c)
		if err != nil {
			return err
		}
		el := time.Since(start)
		st := s.Stats()
		if st.Watermark != uint64(rows) {
			return fmt.Errorf("wal: recovered watermark %d, ingested %d", st.Watermark, rows)
		}
		rate := "-"
		if replayed := rows - int(st.CheckpointWatermark); replayed > 0 {
			rate = mrows(replayed, el)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\n", label, rows, st.WALSizeBytes, ms(el), rate)
		return s.Close()
	}
	for i, rows := range []int{cfg.N / 4, cfg.N / 2, cfg.N} {
		if err := recoverRun("wal-only", fmt.Sprintf("%s/recover-%d", root, i), rows, -1); err != nil {
			return err
		}
	}
	if err := recoverRun("checkpointed", root+"/recover-ckpt", cfg.N, 0); err != nil {
		return err
	}
	return tw.Flush()
}
