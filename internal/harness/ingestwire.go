package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"memagg/internal/agg"
	"memagg/internal/cluster"
	"memagg/internal/dataset"
	"memagg/internal/stream"
)

// ingestWire posts the dataset through a node's /v1/ingest in batches of
// chunkLen rows, each batch encoded by body, and returns the wall time
// and total bytes shipped. One producer: the sweep prices the wire
// encode/decode per path, not producer parallelism, and both paths share
// the bottleneck identically.
func ingestWire(url string, keys, vals []uint64, chunkLen int,
	body func(k, v []uint64) ([]byte, string)) (time.Duration, int64, error) {
	client := &http.Client{}
	var sent int64
	start := time.Now()
	for i := 0; i < len(keys); i += chunkLen {
		j := i + chunkLen
		if j > len(keys) {
			j = len(keys)
		}
		payload, ct := body(keys[i:j], vals[i:j])
		sent += int64(len(payload))
		resp, err := client.Post(url+"/v1/ingest", ct, bytes.NewReader(payload))
		if err != nil {
			return 0, 0, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return 0, 0, fmt.Errorf("ingest status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	return time.Since(start), sent, nil
}

func jsonIngestBody(k, v []uint64) ([]byte, string) {
	payload, err := json.Marshal(map[string][]uint64{"keys": k, "vals": v})
	if err != nil {
		panic(err)
	}
	return payload, "application/json"
}

func chunkIngestBody(k, v []uint64) ([]byte, string) {
	c := agg.Chunk{Keys: k, Vals: v}
	return agg.AppendChunkWire(make([]byte, 0, agg.ChunkWireSize(c.Rows())), c), agg.ChunkContentType
}

// ExtIngestWire measures the ingest wire redesign: the same rows pushed
// through a node's HTTP /v1/ingest as JSON arrays and as binary chunk
// streams, swept over rows and chunk (batch) size. Everything runs over
// loopback on one machine, so the sweep prices serialization and the
// server-side decode path — JSON text parsing into fresh slices versus
// frame-checksummed columns that transfer into the stream without
// copying — rather than network bandwidth. wire_mb records the bytes
// shipped: binary is fixed 16 B/row plus framing, JSON is decimal text
// whose size tracks the magnitude of the values (small keys make it the
// smaller body — the binary win is parse cost, not bytes). speedup is
// binary rows/s over JSON rows/s at the same grid point.
func ExtIngestWire(cfg Config) error {
	warm()
	fmt.Fprintln(cfg.Out, "columnar chunk ingest vs JSON over loopback HTTP (single machine:")
	fmt.Fprintln(cfg.Out, "prices encode+decode, not network; binary is fixed 16 B/row while")
	fmt.Fprintln(cfg.Out, "JSON size tracks value magnitude — the binary win is parse cost)")
	tw := newTable(cfg.Out, "rows", "chunk", "wire", "ingest_ms", "mrows_s", "wire_mb", "speedup")
	for _, rows := range []int{cfg.N / 4, cfg.N} {
		card := 1 << 16
		if card > rows {
			card = rows
		}
		spec := dataset.Spec{Kind: dataset.RseqShf, N: rows, Cardinality: card, Seed: cfg.Seed}
		keys := spec.Keys()
		vals := dataset.Values(len(keys), cfg.Seed)
		for _, chunkLen := range []int{1 << 10, 1 << 13, 1 << 16} {
			var jsonRate float64
			for _, wire := range []string{"json", "chunk"} {
				body := jsonIngestBody
				if wire == "chunk" {
					body = chunkIngestBody
				}
				// Fresh stream per run: no cross-cell state, seals sized so
				// the absorb path runs (not just queueing). Best of 3 — the
				// least interfered-with run is the honest measurement.
				elapsed := time.Duration(1 << 62)
				var sent int64
				for r := 0; r < 3; r++ {
					s := stream.New(stream.Config{Shards: 2, SealRows: 1 << 14})
					ts := httptest.NewServer(cluster.NodeHandler(s))
					el, n, err := ingestWire(ts.URL, keys, vals, chunkLen, body)
					ts.Close()
					if cerr := s.Close(); err == nil {
						err = cerr
					}
					if err != nil {
						return err
					}
					if el < elapsed {
						elapsed, sent = el, n
					}
				}
				rate := float64(rows) / elapsed.Seconds()
				speedup := "-"
				if wire == "json" {
					jsonRate = rate
				} else if jsonRate > 0 {
					speedup = fmt.Sprintf("%.2fx", rate/jsonRate)
				}
				fmt.Fprintf(tw, "%d\t%d\t%s\t%.2f\t%.2f\t%.1f\t%s\n",
					rows, chunkLen, wire,
					float64(elapsed.Microseconds())/1e3, rate/1e6,
					float64(sent)/(1<<20), speedup)
			}
		}
	}
	return tw.Flush()
}
