package harness

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"time"

	"memagg/internal/cluster"
	"memagg/internal/dataset"
	"memagg/internal/stream"
)

// clusterNodes spins up n in-process worker nodes — a full stream behind
// cluster.NodeHandler over a loopback HTTP server each — plus a router
// over them, and returns a teardown. In-process nodes keep the sweep
// self-contained; the protocol is byte-identical to separate aggserve
// processes, so only the network hop is idealized (loopback).
func clusterNodes(n int, cfg stream.Config) (*cluster.Router, func(), error) {
	streams := make([]*stream.Stream, n)
	servers := make([]*httptest.Server, n)
	peers := make([]string, n)
	for i := range streams {
		streams[i] = stream.New(cfg)
		servers[i] = httptest.NewServer(cluster.NodeHandler(streams[i]))
		peers[i] = servers[i].URL
	}
	teardown := func() {
		for i := range streams {
			servers[i].Close()
			streams[i].Close()
		}
	}
	rt, err := cluster.NewRouter(cluster.Config{Peers: peers})
	if err != nil {
		teardown()
		return nil, nil, err
	}
	return rt, teardown, nil
}

// routerIngest pushes the dataset through the router with a few
// concurrent producers (the router shards each batch by key hash and
// ships sub-batches to their owners in parallel), then flushes — the
// same shape as walIngest, one protocol layer up.
func routerIngest(rt *cluster.Router, keys, vals []uint64) (time.Duration, error) {
	const batchLen = 4096
	const producers = 4
	start := time.Now()
	offsets := make(chan int)
	errs := make([]error, producers)
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range offsets {
				j := i + batchLen
				if j > len(keys) {
					j = len(keys)
				}
				if err := rt.Ingest(keys[i:j], vals[i:j]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	for i := 0; i < len(keys); i += batchLen {
		offsets <- i
	}
	close(offsets)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	if err := rt.Flush(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// ExtCluster measures the clustered serving tier: ingest throughput
// through the sharding router and scatter-gather query latency, swept
// over node counts and cardinalities. Everything runs on one machine
// over loopback, so the sweep prices the distribution overhead (JSON
// ingest hops, partial-set transfer, router-side merge) rather than
// demonstrating speedup — the numbers to read are the deltas from the
// nodes=1 row, and rows_ok, which pins exactness (the gathered Q4 must
// equal the rows ingested). Cross-machine scaling is where the ROADMAP's
// distributed tier goes next.
func ExtCluster(cfg Config) error {
	warm()
	low, high := cfg.lowHighCards()
	fmt.Fprintln(cfg.Out, "clustered serving over in-process loopback nodes (single machine:")
	fmt.Fprintln(cfg.Out, "read overhead vs nodes=1, not scaling; holistic=off for the sweep)")
	tw := newTable(cfg.Out, "nodes", "groups", "ingest_ms", "mrows_s", "gather_q1_ms", "rows_ok")
	for _, nodes := range []int{1, 2, 3} {
		for _, card := range []int{low, high} {
			keys := keysFor(cfg, dataset.RseqShf, card)
			vals := dataset.Values(len(keys), cfg.Seed)
			rt, teardown, err := clusterNodes(nodes, stream.Config{Shards: 2, SealRows: 1 << 14})
			if err != nil {
				return err
			}
			elapsed, err := routerIngest(rt, keys, vals)
			if err != nil {
				teardown()
				return err
			}
			// Gather + Q1 latency: the full scatter (every node's partial
			// set over HTTP), router-side merge, and the sorted vector
			// kernel. Min of 3 — the steady-state a dashboard would see.
			var m *cluster.Merged
			gather := time.Duration(1 << 62)
			for r := 0; r < 3; r++ {
				el := timeIt(func() {
					var gerr error
					if m, gerr = rt.Gather(); gerr != nil {
						err = gerr
						return
					}
					m.CountByKey()
				})
				if err != nil {
					teardown()
					return err
				}
				if el < gather {
					gather = el
				}
			}
			rowsOK := m.Count() == uint64(len(keys)) && len(m.Watermark) == nodes
			teardown()
			fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%s\t%v\n",
				nodes, card, ms(elapsed), mrows(len(keys), elapsed), ms(gather), rowsOK)
		}
	}
	return tw.Flush()
}
