package harness

import (
	"fmt"
	"time"

	"memagg/internal/agg"
	"memagg/internal/dataset"
	"memagg/internal/obs"
	"memagg/internal/stream"
)

// phaseKey indexes the recorded phase series by engine and phase.
type phaseKey struct{ engine, phase string }

func phaseTotals() map[phaseKey]agg.PhaseStat {
	out := make(map[phaseKey]agg.PhaseStat)
	for _, p := range agg.PhaseStats() {
		out[phaseKey{p.Engine, p.Phase}] = p
	}
	return out
}

// ExtObs validates the observability layer against the harness's own
// methodology: CountPhases measures an execution's build/merge/iterate
// split externally (the results_rx.txt discipline) and simultaneously
// records it into the engine phase histograms, so the recorded deltas must
// reproduce the externally measured durations exactly — drift would mean
// the always-on instrumentation and the paper-style measurement disagree
// about what a phase is. The second section exercises the stream's ingest
// instruments (rows, batches, seals, merges, append latency) and checks
// them against the known workload shape.
func ExtObs(cfg Config) error {
	warm()
	p := maxThreads(cfg)
	lp, err := agg.ByName("Hash_LP")
	if err != nil {
		return err
	}
	engines := []agg.Engine{lp, agg.Introsort(), agg.HashPLAT(p), agg.HashRX(p)}
	phases := []string{"build", "merge", "iterate"}

	tw := newTable(cfg.Out, "cardinality", "algorithm",
		"build_ms", "merge_ms", "iterate_ms", "external_ms", "drift_ns")
	low, high := cfg.lowHighCards()
	for _, card := range []int{low, high} {
		keys := keysFor(cfg, dataset.RseqShf, card)
		for _, e := range engines {
			before := phaseTotals()
			_, build, iterate, _ := agg.CountPhases(e, keys)
			after := phaseTotals()

			var rec [3]time.Duration
			var recTotal time.Duration
			for i, ph := range phases {
				k := phaseKey{e.Name(), ph}
				rec[i] = time.Duration(after[k].TotalNanos - before[k].TotalNanos)
				recTotal += rec[i]
			}
			external := build + iterate
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%d\n",
				card, e.Name(), ms(rec[0]), ms(rec[1]), ms(rec[2]),
				ms(external), int64(recTotal-external))
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Stream ingest instruments over a known workload: N rows in fixed-size
	// batches through 4 shards. Rows/batches/seals are exact counts, so
	// they are checked, not just printed.
	const batchLen = 4096
	s := stream.New(stream.Config{Shards: 4, SealRows: 1 << 14})
	keys := keysFor(cfg, dataset.RseqShf, low)
	vals := dataset.Values(cfg.N, cfg.Seed)
	for i := 0; i < len(keys); i += batchLen {
		j := i + batchLen
		if j > len(keys) {
			j = len(keys)
		}
		if err := s.AppendChunk(agg.Chunk{Keys: keys[i:j], Vals: vals[i:j]}, false); err != nil {
			return err
		}
	}
	if err := s.Close(); err != nil {
		return err
	}
	st := s.Stats()
	lat := s.AppendLatency()
	wantBatches := uint64((len(keys) + batchLen - 1) / batchLen)
	ok := st.Ingested == uint64(len(keys)) && st.Batches == wantBatches &&
		st.Watermark == st.Ingested && lat.Count == st.Batches
	fmt.Fprintf(cfg.Out,
		"\nstream instruments: rows=%d batches=%d seals=%d merges=%d blocked=%v append_p50<=%v exact=%v\n",
		st.Ingested, st.Batches, st.Seals, st.Merges, st.Blocked,
		histP50(lat), ok)
	if !ok {
		return fmt.Errorf("obs: stream instruments disagree with workload: %+v (append count %d)",
			st, lat.Count)
	}
	return nil
}

// histP50 returns the upper bound of the bucket holding the median
// observation — a bucketed p50, good enough to sanity-read a latency level.
func histP50(s obs.HistogramSnapshot) time.Duration {
	half := (s.Count + 1) / 2
	if half == 0 {
		return 0
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen >= half {
			if b := obs.BucketBound(i); b >= 0 {
				return time.Duration(b)
			}
			return time.Duration(-1)
		}
	}
	return 0
}
