package harness

import (
	"fmt"
	"time"

	"memagg/internal/art"
	"memagg/internal/btree"
	"memagg/internal/cuckoo"
	"memagg/internal/dataset"
	"memagg/internal/hashtbl"
	"memagg/internal/judy"
	"memagg/internal/ttree"
	"memagg/internal/xsort"
)

// Fig2SortMicro reproduces the sorting microbenchmark: five algorithms ×
// five input distributions, time to sort N keys (paper: 10M).
func Fig2SortMicro(cfg Config) error {
	sorts := []struct {
		name string
		fn   func([]uint64)
	}{
		{"MSB Radix Sort", xsort.RadixSortMSB},
		{"LSB Radix Sort", xsort.RadixSortLSB},
		{"Introsort", xsort.Introsort},
		{"Spreadsort", xsort.Spreadsort},
		{"Quicksort", xsort.Quicksort},
	}
	dists := []struct {
		name string
		gen  func() []uint64
	}{
		{"Random(1-5)", func() []uint64 { return dataset.Random(cfg.N, 1, 5, cfg.Seed) }},
		{"Random(1-1M)", func() []uint64 { return dataset.Random(cfg.N, 1, 1_000_000, cfg.Seed) }},
		{"Random(1k-1M)", func() []uint64 { return dataset.Random(cfg.N, 1_000, 1_000_000, cfg.Seed) }},
		{"Presorted Seq", func() []uint64 { return dataset.Sequential(cfg.N) }},
		{"Reversed Seq", func() []uint64 { return dataset.Reversed(cfg.N) }},
	}
	tw := newTable(cfg.Out, "distribution", "algorithm", "sort_ms")
	for _, d := range dists {
		base := d.gen()
		for _, s := range sorts {
			buf := append([]uint64(nil), base...)
			el := timeIt(func() { s.fn(buf) })
			if !xsort.IsSorted(buf) {
				return fmt.Errorf("fig2: %s failed to sort %s", s.name, d.name)
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\n", d.name, s.name, ms(el))
		}
	}
	return tw.Flush()
}

// buildIter is the store-and-lookup surface of Figure 3's microbenchmark.
type buildIter interface {
	Upsert(uint64) *uint64
	Iterate(func(uint64, *uint64) bool)
}

// cuckooAdapter maps the callback-based cuckoo API onto buildIter for the
// microbenchmark.
type cuckooAdapter struct{ m *cuckoo.Map[uint64] }

func (c cuckooAdapter) Upsert(k uint64) *uint64 {
	var p *uint64
	c.m.Upsert(k, func(v *uint64, _ bool) { *v++; p = v })
	return p
}

func (c cuckooAdapter) Iterate(fn func(uint64, *uint64) bool) { c.m.Iterate(fn) }

// fig3Structs enumerates every candidate structure of the Figure 3
// microbenchmark (count-valued), including the Ttree the paper eliminates
// there. Shared with the Table 6 memory study.
func fig3Structs() []struct {
	name string
	mk   func(n int) buildIter
} {
	return []struct {
		name string
		mk   func(n int) buildIter
	}{
		{"ART", func(int) buildIter { return art.New[uint64]() }},
		{"Judy", func(int) buildIter { return judy.New[uint64]() }},
		{"Btree", func(int) buildIter { return btree.New[uint64]() }},
		{"Ttree", func(int) buildIter { return ttree.New[uint64]() }},
		{"Hash_SC", func(n int) buildIter { return hashtbl.NewChained[uint64](n) }},
		{"Hash_LP", func(n int) buildIter { return hashtbl.NewLinearProbe[uint64](n) }},
		{"Hash_Sparse", func(n int) buildIter { return hashtbl.NewSparse[uint64](n) }},
		{"Hash_Dense", func(n int) buildIter { return hashtbl.NewDense[uint64](n) }},
		{"Hash_LC", func(n int) buildIter { return cuckooAdapter{cuckoo.New[uint64](n)} }},
	}
}

// listBuild is one algorithm's Q3-shaped build (per-group value lists),
// used by the Table 7 memory study.
type listBuild struct {
	name  string
	build func(keys, vals []uint64) any
}

// fig3ListStructs returns the hash/tree structures building key → value
// list maps (the Q3 storage shape).
func fig3ListStructs() []listBuild {
	appendAll := func(upsert func(uint64) *[]uint64, keys, vals []uint64) {
		for i, k := range keys {
			lst := upsert(k)
			var v uint64
			if i < len(vals) {
				v = vals[i]
			}
			*lst = append(*lst, v)
		}
	}
	return []listBuild{
		{"ART", func(keys, vals []uint64) any {
			t := art.New[[]uint64]()
			appendAll(t.Upsert, keys, vals)
			return t
		}},
		{"Judy", func(keys, vals []uint64) any {
			t := judy.New[[]uint64]()
			appendAll(t.Upsert, keys, vals)
			return t
		}},
		{"Btree", func(keys, vals []uint64) any {
			t := btree.New[[]uint64]()
			appendAll(t.Upsert, keys, vals)
			return t
		}},
		{"Ttree", func(keys, vals []uint64) any {
			t := ttree.New[[]uint64]()
			appendAll(t.Upsert, keys, vals)
			return t
		}},
		{"Hash_SC", func(keys, vals []uint64) any {
			t := hashtbl.NewChained[[]uint64](len(keys))
			appendAll(t.Upsert, keys, vals)
			return t
		}},
		{"Hash_LP", func(keys, vals []uint64) any {
			t := hashtbl.NewLinearProbe[[]uint64](len(keys))
			appendAll(t.Upsert, keys, vals)
			return t
		}},
		{"Hash_Sparse", func(keys, vals []uint64) any {
			t := hashtbl.NewSparse[[]uint64](len(keys))
			appendAll(t.Upsert, keys, vals)
			return t
		}},
		{"Hash_Dense", func(keys, vals []uint64) any {
			t := hashtbl.NewDense[[]uint64](len(keys))
			appendAll(t.Upsert, keys, vals)
			return t
		}},
		{"Hash_LC", func(keys, vals []uint64) any {
			t := cuckoo.New[[]uint64](len(keys))
			for i, k := range keys {
				var v uint64
				if i < len(vals) {
					v = vals[i]
				}
				t.Upsert(k, func(lst *[]uint64, _ bool) { *lst = append(*lst, v) })
			}
			return t
		}},
	}
}

// Aliases shared with the memory study.
var (
	xsortIntro    = xsort.Introsort
	xsortSpread   = xsort.Spreadsort
	xsortIntroKV  = xsort.IntrosortKV
	xsortSpreadKV = xsort.SpreadsortKV
)

// makeKVPairs zips keys and vals into sortable records.
func makeKVPairs(keys, vals []uint64) []xsort.KV {
	buf := make([]xsort.KV, len(keys))
	for i, k := range keys {
		buf[i].K = k
		if i < len(vals) {
			buf[i].V = vals[i]
		}
	}
	return buf
}

// Fig3StructMicro reproduces the build/iterate microbenchmark over every
// candidate structure, including the Ttree the paper eliminates here.
func Fig3StructMicro(cfg Config) error {
	structs := fig3Structs()
	keys := dataset.Random(cfg.N, 1, 1_000_000, cfg.Seed)
	tw := newTable(cfg.Out, "structure", "build_ms", "iterate_ms")
	for _, s := range structs {
		t := s.mk(len(keys))
		build := timeIt(func() {
			for _, k := range keys {
				if p := t.Upsert(k); p != nil {
					*p++
				}
			}
		})
		var total uint64
		iterate := timeIt(func() {
			t.Iterate(func(_ uint64, v *uint64) bool {
				total += *v
				return true
			})
		})
		_ = total
		fmt.Fprintf(tw, "%s\t%s\t%s\n", s.name, ms(build), ms(iterate))
	}
	return tw.Flush()
}

// Fig10ParSort reproduces the parallel sorting microbenchmark: six
// algorithms × 1..8 threads on Random(1-1M) keys. The serial Introsort and
// Spreadsort rows repeat across thread counts, as in the paper's chart.
func Fig10ParSort(cfg Config) error {
	algos := []struct {
		name string
		fn   func([]uint64, int)
	}{
		{"Introsort", func(a []uint64, _ int) { xsort.Introsort(a) }},
		{"Spreadsort", func(a []uint64, _ int) { xsort.Spreadsort(a) }},
		{"Sort_SS", xsort.SortSS},
		{"Sort_TBB", xsort.SortTBB},
		{"Sort_QSLB", xsort.SortQSLB},
		{"Sort_BI", xsort.SortBI},
	}
	base := dataset.Random(cfg.N, 1, 1_000_000, cfg.Seed)
	tw := newTable(cfg.Out, "threads", "algorithm", "sort_ms")
	for _, p := range cfg.Threads {
		for _, alg := range algos {
			buf := append([]uint64(nil), base...)
			el := timeIt(func() { alg.fn(buf, p) })
			if !xsort.IsSorted(buf) {
				return fmt.Errorf("fig10: %s(p=%d) failed to sort", alg.name, p)
			}
			fmt.Fprintf(tw, "%d\t%s\t%s\n", p, alg.name, ms(el))
		}
	}
	return tw.Flush()
}

// warm discourages lazy-allocation effects from polluting the first
// measured cell of a grid experiment.
func warm() {
	buf := make([]uint64, 1<<16)
	for i := range buf {
		buf[i] = uint64(i)
	}
	xsort.Introsort(buf)
	_ = time.Now()
}
