// Package harness reproduces the paper's evaluation section: one
// experiment per figure and table, each regenerating the corresponding
// rows/series (Section 5). Absolute numbers differ from the paper — this
// is Go on a different machine, and times are wall-clock nanoseconds
// rather than CPU cycles — but each experiment reports the same grid of
// conditions so the paper's comparisons (who wins, by what factor, where
// the crossovers fall) can be checked directly. EXPERIMENTS.md records a
// run of every experiment against the paper's findings.
package harness

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"memagg/internal/dataset"
)

// Config controls an experiment run. The zero value is usable: defaults
// are laptop-scale (the paper's 100M-record datasets shrink to 1M so a
// full suite finishes in minutes; raise N to approach the paper's scale).
type Config struct {
	// N is the dataset size (paper: 100M; default 1M).
	N int
	// Seed drives every dataset generator (default 42).
	Seed uint64
	// Out receives the experiment tables (default os.Stdout).
	Out io.Writer
	// Threads are the thread counts swept by the concurrency experiments
	// (default 1..min(8, GOMAXPROCS)).
	Threads []int
	// Datasets restricts the distribution sweeps (default: all of Table 4).
	Datasets []dataset.Kind
	// Cardinalities restricts the group-by sweeps (default: the paper's
	// 10^2..10^7 clipped to N).
	Cardinalities []int
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	if len(c.Threads) == 0 {
		max := runtime.GOMAXPROCS(0)
		if max > 8 {
			max = 8
		}
		for p := 1; p <= max; p++ {
			c.Threads = append(c.Threads, p)
		}
	}
	if len(c.Datasets) == 0 {
		c.Datasets = dataset.Kinds
	}
	if len(c.Cardinalities) == 0 {
		for _, card := range []int{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000} {
			if card <= c.N {
				c.Cardinalities = append(c.Cardinalities, card)
			}
		}
	}
	return c
}

// lowHighCards picks the experiment pair the paper calls "low" (10^3) and
// "high" (10^6) cardinality, clipped to the configured dataset size.
func (c Config) lowHighCards() (int, int) {
	low := 1000
	if low > c.N {
		low = c.N
	}
	high := 1_000_000
	if high > c.N/10 {
		high = c.N / 10
	}
	if high < low {
		high = low
	}
	return low, high
}

// Experiment is one reproducible figure or table.
type Experiment struct {
	Name  string // harness id, e.g. "fig4"
	Title string // what the paper calls it
	Run   func(cfg Config) error
}

// Experiments lists every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig2", "Figure 2: sort algorithm microbenchmark", Fig2SortMicro},
		{"fig3", "Figure 3: data structure microbenchmark (build/iterate)", Fig3StructMicro},
		{"fig4", "Figure 4: vector aggregation Q1 (COUNT) across cardinalities", Fig4Q1},
		{"fig5", "Figure 5: vector aggregation Q3 (MEDIAN) across cardinalities", Fig5Q3},
		{"fig6", "Figure 6: cache and TLB misses (simulated hierarchy)", Fig6MemSim},
		{"tab6", "Table 6: peak memory usage, Q1", Tab6MemQ1},
		{"tab7", "Table 7: peak memory usage, Q3", Tab7MemQ3},
		{"fig7", "Figure 7: Q1 across key distributions", Fig7Distrib},
		{"fig8", "Figure 8: range-search aggregation Q7", Fig8Range},
		{"fig9", "Figure 9: scalar aggregation Q6 (MEDIAN)", Fig9Q6},
		{"fig10", "Figure 10: parallel sort microbenchmark", Fig10ParSort},
		{"fig11", "Figure 11: multithreaded scaling, Q1/Q3", Fig11Scaling},
		{"q2", "Extension: the Q2 (AVG) grid the paper omitted for space", ExtQ2},
		{"ext", "Extension: Hash_PLAT vs shared structures; Adaptive vs fixed routes", ExtEngines},
		{"rx", "Extension: parallel designs across cardinality (Hash_RX crossover)", ExtRadix},
		{"glb", "Extension: global shared table vs radix partitioning (Hash_GLB crossover)", ExtGLB},
		{"alloc", "Extension: allocator dimension (D6) — go-runtime vs arena", ExtAlloc},
		{"strings", "Extension: string-key backends on a word-count workload", ExtStrings},
		{"stream", "Extension: streaming ingest — shard scaling, merge latency, staleness", ExtStream},
		{"obs", "Extension: observability — recorded phase splits vs external timing", ExtObs},
		{"wal", "Extension: durability — WAL sync-policy cost and recovery time vs log size", ExtWAL},
		{"query", "Extension: snapshot queries — delta folds, parallel kernels, result cache", ExtQuery},
		{"cluster", "Extension: clustered serving — sharded ingest router, exact scatter-gather", ExtCluster},
		{"ingestwire", "Extension: columnar chunk ingest — binary wire vs JSON over HTTP", ExtIngestWire},
		{"cview", "Extension: continuous views — incremental pane reads vs window recompute", ExtCView},
	}
}

// Run executes the named experiment ("all" runs the full suite).
func Run(name string, cfg Config) error {
	cfg = cfg.withDefaults()
	if name == "all" {
		for _, e := range Experiments() {
			if err := runOne(e, cfg); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range Experiments() {
		if e.Name == name {
			return runOne(e, cfg)
		}
	}
	names := make([]string, 0, len(Experiments()))
	for _, e := range Experiments() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return fmt.Errorf("harness: unknown experiment %q (known: %v, all)", name, names)
}

func runOne(e Experiment, cfg Config) error {
	fmt.Fprintf(cfg.Out, "=== %s — %s (n=%d, seed=%d) ===\n", e.Name, e.Title, cfg.N, cfg.Seed)
	start := time.Now()
	err := e.Run(cfg)
	fmt.Fprintf(cfg.Out, "--- %s done in %v ---\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	return err
}

// --- shared helpers ----------------------------------------------------------

// timeIt measures one execution of f.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// newTable starts an aligned output table with the given header cells.
func newTable(out io.Writer, header ...string) *tabwriter.Writer {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	for i, h := range header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	return tw
}

// ms renders a duration in milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6)
}

// keysFor generates the key column for one experimental cell.
func keysFor(cfg Config, kind dataset.Kind, card int) []uint64 {
	return dataset.Spec{Kind: kind, N: cfg.N, Cardinality: card, Seed: cfg.Seed}.Keys()
}
