package harness

import (
	"fmt"

	"memagg/internal/agg"
	"memagg/internal/dataset"
)

// ExtGLB charts the global shared-table engine (Hash_GLB) against the
// radix-partitioned engine (Hash_RX) and the lock-striped shared table
// (Hash_TBBSC) across cores × group-by cardinality × skew — the contest
// "Global Hash Tables Strike Back!" stages against the partition-first
// orthodoxy. The expected shape (DESIGN.md §1.2h): while the shared table
// stays cache-resident, Hash_GLB's one-pass build beats Hash_RX, which
// spends an entire extra pass scattering rows it could already have
// aggregated; once the table outgrows cache, every Hash_GLB probe is a
// shared-memory miss and Hash_RX's cache-sized phase-2 tables win the
// rematch. The Q1 cardinality sweep locates that crossover per thread
// count; the skew rows probe the lock-free lanes' worst case (every worker
// hammering a few hot slots) against Hash_TBBSC's stripe locks and
// Hash_RX's partition isolation; the Q3 rows run the same contest on a
// holistic function, where Hash_GLB's buffer-and-replay merge meets
// Hash_RX's partition-local value lists. Recommend's Hash_GLB/Hash_RX
// routing and the stream's merge sizing both cite the crossover this
// experiment measures (results_glb.txt).
func ExtGLB(cfg Config) error {
	warm()
	tw := newTable(cfg.Out, "query", "dataset", "cardinality", "threads", "algorithm", "time_ms")

	engines := func(p int) []agg.Engine {
		return []agg.Engine{agg.HashGLB(p), agg.HashRX(p), agg.HashTBBSC(p)}
	}

	// Q1 across cores × cardinality, uniform keys: the crossover grid.
	for _, p := range cfg.Threads {
		for card := 1 << 8; card <= cfg.N && card <= 1<<22; card <<= 2 {
			keys := keysFor(cfg, dataset.RseqShf, card)
			for _, e := range engines(p) {
				el := timeIt(func() { e.VectorCount(keys) })
				fmt.Fprintf(tw, "Q1\t%s\t%d\t%d\t%s\t%s\n",
					dataset.RseqShf, card, p, e.Name(), ms(el))
			}
		}
	}

	// Q1 under skew at full width: heavy hitters concentrate the atomic
	// traffic on a few shared slots — the adversarial case for a global
	// table, the natural case for morsel dispatch.
	p := maxThreads(cfg)
	low, high := cfg.lowHighCards()
	for _, kind := range []dataset.Kind{dataset.HhitShf, dataset.Zipf} {
		for _, card := range []int{low, high} {
			keys := keysFor(cfg, kind, card)
			for _, e := range engines(p) {
				el := timeIt(func() { e.VectorCount(keys) })
				fmt.Fprintf(tw, "Q1\t%s\t%d\t%d\t%s\t%s\n", kind, card, p, e.Name(), ms(el))
			}
		}
	}

	// Q3 (holistic) at the low/high pair: buffer-and-replay vs the
	// partition-local lists of Hash_RX vs the striped lists of Hash_TBBSC.
	vals := dataset.Values(cfg.N, cfg.Seed)
	for _, card := range []int{low, high} {
		keys := keysFor(cfg, dataset.RseqShf, card)
		for _, e := range engines(p) {
			el := timeIt(func() { e.VectorMedian(keys, vals) })
			fmt.Fprintf(tw, "Q3\t%s\t%d\t%d\t%s\t%s\n",
				dataset.RseqShf, card, p, e.Name(), ms(el))
		}
	}
	return tw.Flush()
}
