package harness

import (
	"fmt"
	"memagg/internal/art"
	"memagg/internal/btree"
	"memagg/internal/dataset"
	"memagg/internal/judy"
	"memagg/internal/memsim"
	"memagg/internal/memuse"
)

// Fig6MemSim reproduces the cache/TLB study on the simulated Skylake
// hierarchy: every algorithm model runs Q1 and Q3 over the Rseq dataset at
// low and high cardinality, reporting last-level cache misses and D-TLB
// (second-level) misses.
func Fig6MemSim(cfg Config) error {
	low, high := cfg.lowHighCards()
	// Two paging regimes: 4 KB pages, and transparent huge pages as on the
	// paper's Ubuntu 16.04 testbed (which backs the large tables with 2 MB
	// pages — without it the hash tables' n-sized arrays dominate the TLB).
	tw := newTable(cfg.Out, "query", "algorithm", "cardinality", "paging",
		"cache_misses", "dtlb_misses")
	for _, q := range []struct {
		name string
		run  func(m memsim.Model, h *memsim.Hierarchy, keys []uint64)
	}{
		{"Q1", func(m memsim.Model, h *memsim.Hierarchy, keys []uint64) { m.RunQ1(h, keys) }},
		{"Q3", func(m memsim.Model, h *memsim.Hierarchy, keys []uint64) { m.RunQ3(h, keys) }},
	} {
		for _, card := range []int{low, high} {
			keys := keysFor(cfg, dataset.Rseq, card)
			for _, thp := range []bool{false, true} {
				paging := "4k"
				if thp {
					paging = "thp"
				}
				for _, m := range memsim.Models() {
					h := memsim.NewSkylakeHierarchy()
					h.THP = thp
					q.run(m, h, keys)
					fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%d\t%d\n",
						q.name, m.Name(), card, paging, h.CacheMisses(), h.TLBMisses())
				}
			}
		}
	}
	return tw.Flush()
}

// memSizes returns the Table 6/7 dataset-size sweep (10^5..10^8) clipped to
// the configured N.
func memSizes(cfg Config) []int {
	var out []int
	for _, n := range []int{100_000, 1_000_000, 10_000_000, 100_000_000} {
		if n <= cfg.N {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{cfg.N}
	}
	return out
}

// Tab6MemQ1 reproduces the Q1 peak-memory table: Rseq at 10^3 groups,
// sweeping the dataset size. "retained" is the live footprint of the built
// aggregation structure (the paper's steady-state ordering); "allocated"
// is total build-phase allocation including transient resize copies (the
// peak-RSS spikes the paper attributes to Hash_Dense).
func Tab6MemQ1(cfg Config) error {
	return memTable(cfg, memBuildsQ1())
}

// Tab7MemQ3 reproduces the Q3 peak-memory table over the same sweep. Q3
// stores every value, so footprints exceed Table 6's — most dramatically
// for the hash tables, as the paper reports.
func Tab7MemQ3(cfg Config) error {
	return memTable(cfg, memBuildsQ3())
}

// memBuild builds one algorithm's aggregation structure and returns it so
// memuse can observe its live footprint.
type memBuild struct {
	name  string
	build func(keys, vals []uint64) any
}

func memBuildsQ1() []memBuild {
	countStruct := func(mk func(n int) buildIter) func(keys, _ []uint64) any {
		return func(keys, _ []uint64) any {
			t := mk(len(keys))
			for _, k := range keys {
				if p := t.Upsert(k); p != nil {
					*p++
				}
			}
			return t
		}
	}
	sortStruct := func(fn func([]uint64)) func(keys, _ []uint64) any {
		return func(keys, _ []uint64) any {
			buf := append([]uint64(nil), keys...)
			fn(buf)
			return buf
		}
	}
	var out []memBuild
	for _, s := range fig3Structs() {
		out = append(out, memBuild{s.name, countStruct(s.mk)})
	}
	out = append(out,
		memBuild{"Introsort", sortStruct(xsortIntro)},
		memBuild{"Spreadsort", sortStruct(xsortSpread)},
	)
	return out
}

func memBuildsQ3() []memBuild {
	listStruct := func(build func(keys, vals []uint64) any) func(keys, vals []uint64) any {
		return build
	}
	var out []memBuild
	for _, s := range fig3ListStructs() {
		out = append(out, memBuild{s.name, listStruct(s.build)})
	}
	out = append(out,
		memBuild{"Introsort", func(keys, vals []uint64) any {
			buf := makeKVPairs(keys, vals)
			xsortIntroKV(buf)
			return buf
		}},
		memBuild{"Spreadsort", func(keys, vals []uint64) any {
			buf := makeKVPairs(keys, vals)
			xsortSpreadKV(buf)
			return buf
		}},
	)
	return out
}

func memTable(cfg Config, builds []memBuild) error {
	tw := newTable(cfg.Out, "n", "algorithm", "retained_mb", "allocated_mb")
	card := 1000
	for _, n := range memSizes(cfg) {
		sub := cfg
		sub.N = n
		if card > n {
			card = n
		}
		keys := keysFor(sub, dataset.Rseq, card)
		vals := dataset.Values(n, cfg.Seed)
		for _, b := range builds {
			u := memuse.Measure(func() any { return b.build(keys, vals) })
			fmt.Fprintf(tw, "%d\t%s\t%.2f\t%.2f\n",
				n, b.name, memuse.MB(u.Retained), memuse.MB(u.Allocated))
		}
	}
	return tw.Flush()
}

// rangeTree is the prebuilt-index surface Figure 8 measures.
type rangeTree interface {
	Upsert(uint64) *uint64
	Range(lo, hi uint64, fn func(uint64, *uint64) bool)
}

// Fig8Range reproduces the range-search study on the tree structures:
// build time at low and high cardinality, then search time for ranges
// covering 25%, 50% and 75% of the key space on the prebuilt tree
// (smaller ranges first, as in the paper).
func Fig8Range(cfg Config) error {
	trees := []struct {
		name string
		mk   func() rangeTree
	}{
		{"ART", func() rangeTree { return art.New[uint64]() }},
		{"Judy", func() rangeTree { return judy.New[uint64]() }},
		{"Btree", func() rangeTree { return btree.New[uint64]() }},
	}
	low, high := cfg.lowHighCards()
	btw := newTable(cfg.Out, "tree", "cardinality", "build_ms")
	type built struct {
		name string
		card int
		t    rangeTree
	}
	var prebuilt []built
	for _, card := range []int{low, high} {
		keys := keysFor(cfg, dataset.Rseq, card)
		for _, tr := range trees {
			t := tr.mk()
			el := timeIt(func() {
				for _, k := range keys {
					*t.Upsert(k)++
				}
			})
			fmt.Fprintf(btw, "%s\t%d\t%s\n", tr.name, card, ms(el))
			prebuilt = append(prebuilt, built{tr.name, card, t})
		}
	}
	if err := btw.Flush(); err != nil {
		return err
	}

	stw := newTable(cfg.Out, "tree", "cardinality", "range_pct", "search_us", "groups")
	for _, b := range prebuilt {
		for _, pct := range []int{25, 50, 75} {
			hi := uint64(b.card * pct / 100)
			if hi < 1 {
				hi = 1
			}
			groups := 0
			var total uint64
			el := timeIt(func() {
				b.t.Range(1, hi, func(_ uint64, v *uint64) bool {
					groups++
					total += *v
					return true
				})
			})
			_ = total
			fmt.Fprintf(stw, "%s\t%d\t%d%%\t%.2f\t%d\n",
				b.name, b.card, pct, float64(el.Nanoseconds())/1e3, groups)
		}
	}
	return stw.Flush()
}
