package harness

import (
	"fmt"
	"runtime"
	"time"

	"memagg/internal/agg"
	"memagg/internal/dataset"
	"memagg/internal/stream"
)

// layeredQueryStream builds a deterministic snapshot-query subject: one
// writer shard fed serially with the merger disabled, the first rows
// explicitly compacted into a base generation and the last
// deltas×sealRows rows left as sealed deltas the first query must fold.
func layeredQueryStream(cfg stream.Config, keys, vals []uint64, deltas, sealRows int) (*stream.Stream, error) {
	cfg.Shards = 1
	cfg.SealRows = sealRows
	cfg.DisableMerger = true
	s := stream.New(cfg)
	baseRows := len(keys) - deltas*sealRows
	if baseRows < 0 {
		baseRows = 0
	}
	appendAll := func(lo, hi int) error {
		const batchLen = 4096
		for off := lo; off < hi; off += batchLen {
			end := off + batchLen
			if end > hi {
				end = hi
			}
			if err := s.AppendChunk(agg.Chunk{Keys: keys[off:end], Vals: vals[off:end]}, false); err != nil {
				return err
			}
		}
		return s.Flush()
	}
	if baseRows > 0 {
		if err := appendAll(0, baseRows); err != nil {
			return nil, err
		}
		s.MergeNow()
	}
	if baseRows < len(keys) {
		if err := appendAll(baseRows, len(keys)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ExtQuery measures the snapshot query path (PR 7) along its three axes:
// query workers, group count, and how many sealed deltas the view pins.
//
// The first table sweeps workers × cardinality × sealed-delta count and
// reports, per cell, the cold first query (partition-wise delta fold +
// scan), the warm query (fold memoized on the view — pure scan), and a
// result-cache hit. The second table locates the serial-fallback
// crossover: over a fully merged view it times the same warm Q1 with the
// kernels forced serial versus forced parallel across group counts; the
// smallest count where parallel stops losing is the value
// Config.QuerySerialCutoff should default to on this host. On a
// single-CPU host every worker count time-shares one core, so parallel
// rows measure dispatch overhead, not speedup, and the crossover
// degenerates to "serial everywhere".
func ExtQuery(cfg Config) error {
	warm()
	low, high := cfg.lowHighCards()
	const sealRows = 1 << 13

	tw := newTable(cfg.Out, "workers", "groups", "sealed_deltas", "cold_ms", "warm_ms", "cached_ns")
	for _, workers := range []int{1, 2, 8} {
		for _, card := range []int{low, high} {
			keys := keysFor(cfg, dataset.RseqShf, card)
			vals := dataset.Values(len(keys), cfg.Seed)
			for _, deltas := range []int{0, 8, 32} {
				scfg := stream.Config{MergeBits: 6, QueryWorkers: workers, QueryCacheEntries: -1}
				s, err := layeredQueryStream(scfg, keys, vals, deltas, sealRows)
				if err != nil {
					return err
				}
				// Ingest leaves collectable garbage behind; collect it now so
				// the GC doesn't land inside a timed query.
				runtime.GC()
				cold := timeIt(func() { s.Snapshot().CountByKey() })
				warmT := time.Duration(1 << 62)
				for r := 0; r < 3; r++ {
					runtime.GC()
					if el := timeIt(func() { s.Snapshot().CountByKey() }); el < warmT {
						warmT = el
					}
				}
				if err := s.Close(); err != nil {
					return err
				}

				scfg.QueryCacheEntries = 0 // default cache on
				c, err := layeredQueryStream(scfg, keys, vals, deltas, sealRows)
				if err != nil {
					return err
				}
				c.Snapshot().CountByKey() // miss: fold + scan + insert
				hit := time.Duration(1 << 62)
				for r := 0; r < 5; r++ {
					if el := timeIt(func() { c.Snapshot().CountByKey() }); el < hit {
						hit = el
					}
				}
				if err := c.Close(); err != nil {
					return err
				}
				fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%s\t%d\n",
					workers, card, deltas, ms(cold), ms(warmT), hit.Nanoseconds())
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(cfg.Out, "\nserial-fallback crossover (fully merged view, warm, Q1; min of 5):")
	tw = newTable(cfg.Out, "groups", "serial_us", "par8_us", "par/serial")
	var cards []int
	var ratios []float64
	for _, card := range []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		if card > cfg.N {
			break
		}
		keys := keysFor(cfg, dataset.RseqShf, card)
		vals := dataset.Values(len(keys), cfg.Seed)
		timeMode := func(cutoff int) (time.Duration, error) {
			s, err := layeredQueryStream(stream.Config{MergeBits: 6, QueryWorkers: 8,
				QueryCacheEntries: -1, QuerySerialCutoff: cutoff}, keys, vals, 0, sealRows)
			if err != nil {
				return 0, err
			}
			defer s.Close()
			s.Snapshot().CountByKey()
			best := time.Duration(1 << 62)
			for r := 0; r < 5; r++ {
				if el := timeIt(func() { s.Snapshot().CountByKey() }); el < best {
					best = el
				}
			}
			return best, nil
		}
		serial, err := timeMode(1 << 30)
		if err != nil {
			return err
		}
		par, err := timeMode(-1)
		if err != nil {
			return err
		}
		ratio := float64(par) / float64(serial)
		cards = append(cards, card)
		ratios = append(ratios, ratio)
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.2f\n",
			card, float64(serial.Nanoseconds())/1e3, float64(par.Nanoseconds())/1e3, ratio)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// The cutoff is the smallest group count from which parallel stays at
	// or under serial for every larger count too — a single noisy win at a
	// tiny size (tens of microseconds) must not move it.
	crossover := 0
	for i := len(cards) - 1; i >= 0; i-- {
		if ratios[i] > 1.02 {
			break
		}
		crossover = cards[i]
	}
	if crossover > 0 {
		fmt.Fprintf(cfg.Out, "measured cutoff: parallel sustains parity with serial from ~%d groups\n", crossover)
	} else {
		fmt.Fprintln(cfg.Out, "measured cutoff: parallel never sustained parity in this sweep (expected on a single-CPU host)")
	}
	return nil
}
