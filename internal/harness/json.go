package harness

import (
	"encoding/json"
	"time"

	"memagg/internal/agg"
)

// JSONRow is one engine's Q1 timing in a RunJSON report. When PhaseSplit
// is false the engine's operator fuses the phases and TotalMS is the only
// meaningful number (BuildMS repeats it, IterateMS is zero).
type JSONRow struct {
	Algorithm  string  `json:"algorithm"`
	Threads    int     `json:"threads"`
	BuildMS    float64 `json:"build_ms"`
	IterateMS  float64 `json:"iterate_ms"`
	TotalMS    float64 `json:"total_ms"`
	Groups     int     `json:"groups"`
	PhaseSplit bool    `json:"phase_split"`
}

// JSONReport is the single object RunJSON emits: the run's conditions plus
// one row per engine.
type JSONReport struct {
	Query       string    `json:"query"`
	N           int       `json:"n"`
	Dataset     string    `json:"dataset"`
	Cardinality int       `json:"cardinality"`
	Seed        uint64    `json:"seed"`
	Engines     []JSONRow `json:"engines"`
}

// RunJSON measures Q1 with the build/iterate phase split over every serial
// engine plus the concurrent and extension engines at the widest configured
// thread count, and writes the result to cfg.Out as one JSON object —
// machine-readable output for scripting (aggbench -json). The cell is the
// first configured dataset and cardinality.
func RunJSON(cfg Config) error {
	cfg = cfg.withDefaults()
	warm()
	kind := cfg.Datasets[0]
	card := cfg.Cardinalities[0]
	p := maxThreads(cfg)
	keys := keysFor(cfg, kind, card)

	report := JSONReport{
		Query:       "Q1",
		N:           cfg.N,
		Dataset:     kind.String(),
		Cardinality: card,
		Seed:        cfg.Seed,
	}
	addRow := func(e agg.Engine, threads int) {
		rows, build, iterate, ok := agg.CountPhases(e, keys)
		report.Engines = append(report.Engines, JSONRow{
			Algorithm:  e.Name(),
			Threads:    threads,
			BuildMS:    msFloat(build),
			IterateMS:  msFloat(iterate),
			TotalMS:    msFloat(build + iterate),
			Groups:     len(rows),
			PhaseSplit: ok,
		})
	}
	for _, e := range agg.Engines() {
		addRow(e, 1)
	}
	for _, e := range agg.ConcurrentEngines(p) {
		addRow(e, p)
	}
	addRow(agg.HashPLAT(p), p)
	addRow(agg.Adaptive(), 1)

	enc := json.NewEncoder(cfg.Out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

func msFloat(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}
