package harness

import (
	"fmt"

	"memagg/internal/agg"
	"memagg/internal/dataset"
)

// Fig4Q1 reproduces the Q1 (vector COUNT) grid: every Table 4 distribution
// × the cardinality sweep × the ten serial algorithms.
func Fig4Q1(cfg Config) error {
	warm()
	tw := newTable(cfg.Out, "dataset", "cardinality", "algorithm", "q1_ms")
	for _, kind := range cfg.Datasets {
		for _, card := range cfg.Cardinalities {
			keys := keysFor(cfg, kind, card)
			for _, e := range agg.Engines() {
				var groups int
				el := timeIt(func() { groups = len(e.VectorCount(keys)) })
				if err := checkGroups(kind, groups, card); err != nil {
					return fmt.Errorf("fig4 %s/%s: %w", kind, e.Name(), err)
				}
				fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", kind, card, e.Name(), ms(el))
			}
		}
	}
	return tw.Flush()
}

// Fig5Q3 reproduces the Q3 (vector MEDIAN) grid over the same conditions.
func Fig5Q3(cfg Config) error {
	warm()
	vals := dataset.Values(cfg.N, cfg.Seed)
	tw := newTable(cfg.Out, "dataset", "cardinality", "algorithm", "q3_ms")
	for _, kind := range cfg.Datasets {
		for _, card := range cfg.Cardinalities {
			keys := keysFor(cfg, kind, card)
			for _, e := range agg.Engines() {
				var groups int
				el := timeIt(func() { groups = len(e.VectorMedian(keys, vals)) })
				if err := checkGroups(kind, groups, card); err != nil {
					return fmt.Errorf("fig5 %s/%s: %w", kind, e.Name(), err)
				}
				fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", kind, card, e.Name(), ms(el))
			}
		}
	}
	return tw.Flush()
}

// Fig7Distrib reproduces the distribution-sensitivity study: Q1 across all
// six distributions at the paper's low (10^3) and high (10^6) group
// cardinalities.
func Fig7Distrib(cfg Config) error {
	warm()
	low, high := cfg.lowHighCards()
	tw := newTable(cfg.Out, "cardinality", "dataset", "algorithm", "q1_ms")
	for _, card := range []int{low, high} {
		for _, kind := range cfg.Datasets {
			keys := keysFor(cfg, kind, card)
			for _, e := range agg.Engines() {
				el := timeIt(func() { e.VectorCount(keys) })
				fmt.Fprintf(tw, "%d\t%s\t%s\t%s\n", card, kind, e.Name(), ms(el))
			}
		}
	}
	return tw.Flush()
}

// Fig9Q6 reproduces the scalar-median study: Q6 across distributions and
// cardinalities for the tree- and sort-based algorithms.
func Fig9Q6(cfg Config) error {
	warm()
	tw := newTable(cfg.Out, "dataset", "cardinality", "algorithm", "q6_ms")
	for _, kind := range cfg.Datasets {
		for _, card := range cfg.Cardinalities {
			keys := keysFor(cfg, kind, card)
			want := -1.0
			for _, e := range agg.ScalarEngines() {
				var got float64
				el := timeIt(func() {
					var err error
					got, err = e.ScalarMedian(keys)
					if err != nil {
						panic(err)
					}
				})
				if want < 0 {
					want = got
				} else if got != want {
					return fmt.Errorf("fig9 %s/%s: median %v disagrees with %v",
						kind, e.Name(), got, want)
				}
				fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", kind, card, e.Name(), ms(el))
			}
		}
	}
	return tw.Flush()
}

// Fig11Scaling reproduces the multithreaded study: Q1 and Q3 on Rseq at
// low and high cardinality, sweeping thread counts over the four
// concurrent algorithms.
func Fig11Scaling(cfg Config) error {
	warm()
	low, high := cfg.lowHighCards()
	vals := dataset.Values(cfg.N, cfg.Seed)
	tw := newTable(cfg.Out, "query", "cardinality", "threads", "algorithm", "time_ms")
	for _, card := range []int{low, high} {
		keys := keysFor(cfg, dataset.Rseq, card)
		for _, p := range cfg.Threads {
			for _, e := range agg.ConcurrentEngines(p) {
				el := timeIt(func() { e.VectorCount(keys) })
				fmt.Fprintf(tw, "Q1\t%d\t%d\t%s\t%s\n", card, p, e.Name(), ms(el))
			}
		}
		for _, p := range cfg.Threads {
			for _, e := range agg.ConcurrentEngines(p) {
				el := timeIt(func() { e.VectorMedian(keys, vals) })
				fmt.Fprintf(tw, "Q3\t%d\t%d\t%s\t%s\n", card, p, e.Name(), ms(el))
			}
		}
	}
	return tw.Flush()
}

// checkGroups sanity-checks a vector result's group count: deterministic
// distributions must realize the target cardinality exactly; probabilistic
// ones must not exceed it.
func checkGroups(kind dataset.Kind, groups, card int) error {
	switch kind {
	case dataset.Rseq, dataset.RseqShf, dataset.Hhit, dataset.HhitShf:
		if groups != card {
			return fmt.Errorf("got %d groups, want %d", groups, card)
		}
	case dataset.MovC:
		if groups > card+dataset.MovCWindow {
			return fmt.Errorf("got %d groups, cap %d", groups, card+dataset.MovCWindow)
		}
	default:
		if groups > card {
			return fmt.Errorf("got %d groups, cap %d", groups, card)
		}
	}
	return nil
}
