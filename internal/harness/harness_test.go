package harness

import (
	"bytes"
	"strings"
	"testing"

	"memagg/internal/dataset"
)

// tinyConfig keeps experiment runs fast enough for the unit-test suite.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{
		N:             20000,
		Seed:          7,
		Out:           buf,
		Threads:       []int{1, 2},
		Datasets:      []dataset.Kind{dataset.Rseq, dataset.Zipf},
		Cardinalities: []int{100, 1000},
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(e.Name, tinyConfig(&buf)); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			out := buf.String()
			if !strings.Contains(out, e.Name) {
				t.Fatalf("%s: missing banner in output", e.Name)
			}
			if len(strings.Split(out, "\n")) < 5 {
				t.Fatalf("%s: suspiciously short output:\n%s", e.Name, out)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig99", tinyConfig(&buf)); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	if err := Run("all", cfg); err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments() {
		if !strings.Contains(buf.String(), e.Title) {
			t.Fatalf("suite output missing %s", e.Name)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.N != 1_000_000 || c.Seed != 42 || c.Out == nil {
		t.Fatal("defaults not applied")
	}
	if len(c.Threads) == 0 || c.Threads[0] != 1 {
		t.Fatal("thread defaults wrong")
	}
	if len(c.Datasets) != len(dataset.Kinds) {
		t.Fatal("dataset defaults wrong")
	}
	for _, card := range c.Cardinalities {
		if card > c.N {
			t.Fatal("cardinality exceeds N")
		}
	}
	low, high := c.lowHighCards()
	if low != 1000 || high != 100_000 {
		t.Fatalf("lowHighCards = %d, %d", low, high)
	}
}

func TestCheckGroups(t *testing.T) {
	if err := checkGroups(dataset.Rseq, 10, 10); err != nil {
		t.Fatal(err)
	}
	if err := checkGroups(dataset.Rseq, 9, 10); err == nil {
		t.Fatal("missed wrong deterministic cardinality")
	}
	if err := checkGroups(dataset.Zipf, 8, 10); err != nil {
		t.Fatal("probabilistic undershoot should pass")
	}
	if err := checkGroups(dataset.Zipf, 11, 10); err == nil {
		t.Fatal("probabilistic overshoot should fail")
	}
}
