package harness

import (
	"fmt"
	"time"

	"memagg/internal/agg"
	"memagg/internal/cview"
	"memagg/internal/dataset"
	"memagg/internal/stream"
)

// ExtCView measures the continuous-view subsystem (internal/cview): what
// a standing query costs to read incrementally versus recomputing its
// window from scratch, as the window grows in panes.
//
// Each row ingests the dataset through a single-shard stream one seal per
// pane, with a sliding q1 view of `panes` panes registered up front. After
// every seal it takes one incremental read (settle the pane's deferred
// folds, merge the live panes, run the kernel) and one recompute (feed the
// window's rows into a fresh single-shard stream, flush, query — what a
// caller without views would do per poll). Both sides answer over exactly
// the same rows; the experiment reports the per-read averages and their
// ratio. Incremental wins grow with the window: recompute touches every
// row in the window per read, the view only merges pane tables — the
// acceptance gate below asserts >= 5x at 16 panes.
func ExtCView(cfg Config) error {
	warm()
	// A standing view earns its keep when panes compress: each read merges
	// panes (O(panes x groups)) where recompute replays rows (O(window)).
	// Dashboard-style workloads aggregate wide panes into few groups, so
	// the sweep fixes cardinality at 256 against 8k-row panes.
	const paneRows = 1 << 13
	const card = 256

	tw := newTable(cfg.Out, "panes", "groups", "window_rows", "incr_read_us", "recompute_us", "speedup")
	for _, panes := range []int{4, 8, 16, 32} {
		rows := (panes + 4) * paneRows // enough seals to fill and slide the window
		if rows > cfg.N {
			rows = cfg.N
		}
		spec := dataset.Spec{Kind: dataset.RseqShf, N: rows, Cardinality: card, Seed: cfg.Seed}
		keys := spec.Keys()
		vals := dataset.Values(len(keys), cfg.Seed)

		s := stream.New(stream.Config{Shards: 1, QueueDepth: 8, SealRows: 1 << 30, MergeBits: 4})
		if err := s.RegisterView(cview.Spec{
			Name:     "w",
			Query:    cview.Query{ID: cview.QCountByKey},
			PaneRows: paneRows,
			Panes:    panes,
			Sliding:  true,
		}); err != nil {
			return err
		}

		var incr, recompute time.Duration
		var reads int
		for off := 0; off < len(keys); off += paneRows {
			end := off + paneRows
			if end > len(keys) {
				end = len(keys)
			}
			if err := s.AppendChunk(agg.Chunk{Keys: keys[off:end], Vals: vals[off:end]}, false); err != nil {
				return err
			}
			if err := s.Flush(); err != nil { // one seal = one pane
				return err
			}

			res, err := func() (*cview.Result, error) {
				defer func(t0 time.Time) { incr += time.Since(t0) }(time.Now())
				return s.ViewResult("w")
			}()
			if err != nil {
				return err
			}

			// Recompute: what the window costs without the view. The rows
			// are sliced straight from the dataset by the view's own window
			// bounds, so both sides aggregate identical input.
			lo, hi := res.WindowStart, res.WindowEnd
			t0 := time.Now()
			r := stream.New(stream.Config{Shards: 1, QueueDepth: 8, SealRows: 1 << 30, MergeBits: 4})
			if err := r.AppendChunk(agg.Chunk{Keys: keys[lo:hi], Vals: vals[lo:hi]}, false); err != nil {
				return err
			}
			if err := r.Flush(); err != nil {
				return err
			}
			got := r.Snapshot().CountByKey()
			recompute += time.Since(t0)
			if err := r.Close(); err != nil {
				return err
			}
			if len(got) != res.Groups {
				return fmt.Errorf("cview: incremental read saw %d groups, recompute %d", res.Groups, len(got))
			}
			reads++
		}
		if err := s.Close(); err != nil {
			return err
		}

		incrUs := float64(incr.Microseconds()) / float64(reads)
		recompUs := float64(recompute.Microseconds()) / float64(reads)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.1f\t%.1f\t%.1fx\n",
			panes, card, uint64(panes)*paneRows, incrUs, recompUs, recompUs/incrUs)
	}
	return tw.Flush()
}
