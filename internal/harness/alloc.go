package harness

import (
	"fmt"
	"runtime"

	"memagg/internal/agg"
	"memagg/internal/dataset"
)

// ExtAlloc charts the allocator dimension (the paper's Dimension 6): the
// same engines running the same queries under the go-runtime allocator and
// the arena layer (internal/arena). The paper's §6 finding is that the
// allocator alone swings aggregation throughput by large factors; here the
// contrast is sharpest on the holistic Q3, whose per-group value buffers
// dominate the allocation profile — under the arena they collapse into a
// handful of pooled chunk allocations, and in the steady state (arenas are
// reset and reused across queries) into almost none.
//
// Each cell reports wall time plus the allocation profile of one query
// execution (heap objects allocated, MB allocated, GC cycles triggered),
// measured as runtime.MemStats deltas around the run. One untimed warm-up
// run per cell populates the arena/slice pools so the arena rows show the
// reuse steady state rather than first-touch chunk faults.
func ExtAlloc(cfg Config) error {
	warm()
	type mkEngine struct {
		name string
		mk   func() agg.Engine
	}
	engines := []mkEngine{
		{"Hash_LP", agg.HashLP},
		{"Hash_SC", agg.HashSC},
		{"ART", agg.ART},
		{"Btree", agg.Btree},
		{"Spreadsort", agg.Spreadsort},
		{"Hash_RX", func() agg.Engine { return agg.HashRX(maxThreads(cfg)) }},
	}

	vals := dataset.Values(cfg.N, cfg.Seed)
	low, high := cfg.lowHighCards()
	tw := newTable(cfg.Out, "query", "cardinality", "algorithm", "allocator",
		"time_ms", "allocs", "alloc_mb", "gcs")

	cell := func(query string, card int, keys []uint64, e agg.Engine, run func()) {
		run() // warm-up: populates pools, sizes arenas
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		el := timeIt(run)
		runtime.ReadMemStats(&m1)
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%d\t%.1f\t%d\n",
			query, card, e.Name(), agg.EngineAllocator(e), ms(el),
			m1.Mallocs-m0.Mallocs,
			float64(m1.TotalAlloc-m0.TotalAlloc)/(1<<20),
			m1.NumGC-m0.NumGC)
	}

	// Q3 (holistic MEDIAN) — the allocation-bound query — at the low/high
	// cardinality pair.
	for _, card := range []int{low, high} {
		keys := keysFor(cfg, dataset.RseqShf, card)
		for _, me := range engines {
			for _, al := range agg.Allocators() {
				e := agg.WithAllocator(me.mk(), al)
				cell("Q3", card, keys, e, func() { agg.AsReducer(e).VectorHolistic(keys, vals, agg.MedianFunc) })
			}
		}
	}

	// Q1 (COUNT) at high cardinality: distributive, so the allocator moves
	// little — the contrast row that shows the effect is holistic-specific.
	keys := keysFor(cfg, dataset.RseqShf, high)
	for _, me := range engines {
		for _, al := range agg.Allocators() {
			e := agg.WithAllocator(me.mk(), al)
			cell("Q1", high, keys, e, func() { e.VectorCount(keys) })
		}
	}
	return tw.Flush()
}
