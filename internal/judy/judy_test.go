package judy

import (
	"sort"
	"testing"
	"testing/quick"

	"memagg/internal/dataset"
)

func TestUpsertGetBasic(t *testing.T) {
	tr := New[uint64]()
	for k := uint64(0); k < 10000; k++ {
		*tr.Upsert(k) = k * 3
	}
	if tr.Len() != 10000 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for k := uint64(0); k < 10000; k++ {
		v := tr.Get(k)
		if v == nil || *v != k*3 {
			t.Fatalf("Get(%d) wrong", k)
		}
	}
	if tr.Get(1<<40) != nil {
		t.Fatal("found absent key")
	}
}

func TestNodeFormPromotion(t *testing.T) {
	tr := New[uint64]()
	// 256 dense final bytes force linear → bitmap → full promotions.
	for k := uint64(0); k < 256; k++ {
		tr.Upsert(k)
	}
	var sawLinear, sawBitmap, sawFull bool
	var walk func(n any)
	walk = func(n any) {
		switch n := n.(type) {
		case *linear[uint64]:
			sawLinear = true
			for i := 0; i < n.n; i++ {
				walk(n.children[i])
			}
		case *bitmapN[uint64]:
			sawBitmap = true
			for _, c := range n.children {
				walk(c)
			}
		case *fullN[uint64]:
			sawFull = true
			for b := 0; b < 256; b++ {
				if n.children[b] != nil {
					walk(n.children[b])
				}
			}
		}
	}
	walk(tr.root)
	if !sawFull {
		t.Fatal("256 dense children did not reach the full node form")
	}
	// Build a second tree exercising the smaller forms: two groups of five
	// keys give a linear root (2 children) over linear leaf parents, and a
	// third group of 20 keys forms one bitmap node.
	tr2 := New[uint64]()
	for k := uint64(0); k < 5; k++ {
		tr2.Upsert(k)
		tr2.Upsert(256 + k)
	}
	for k := uint64(512); k < 532; k++ {
		tr2.Upsert(k)
	}
	walk(tr2.root)
	if !sawLinear || !sawBitmap {
		t.Fatalf("node forms missed: linear=%v bitmap=%v", sawLinear, sawBitmap)
	}
}

func TestBitmapRank(t *testing.T) {
	n := &bitmapN[uint64]{}
	for _, b := range []byte{3, 64, 65, 130, 255} {
		n.bits[b>>6] |= 1 << (b & 63)
	}
	cases := map[byte]int{0: 0, 3: 0, 4: 1, 64: 1, 65: 2, 66: 3, 130: 3, 131: 4, 255: 4}
	for b, want := range cases {
		if got := n.bmRank(b); got != want {
			t.Errorf("bmRank(%d)=%d want %d", b, got, want)
		}
	}
}

func TestIterateSortedAcrossDistributions(t *testing.T) {
	for _, kind := range dataset.Kinds {
		tr := New[uint64]()
		keys := dataset.Spec{Kind: kind, N: 20000, Cardinality: 1500, Seed: 4}.Keys()
		uniq := map[uint64]bool{}
		for _, k := range keys {
			*tr.Upsert(k)++
			uniq[k] = true
		}
		var got []uint64
		tr.Iterate(func(k uint64, _ *uint64) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(uniq) {
			t.Fatalf("%v: iterated %d want %d", kind, len(got), len(uniq))
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("%v: iteration not sorted", kind)
		}
	}
}

func TestRangeMatchesFilter(t *testing.T) {
	tr := New[uint64]()
	keys := dataset.Random(30000, 1, 100000, 8)
	uniq := map[uint64]bool{}
	for _, k := range keys {
		tr.Upsert(k)
		uniq[k] = true
	}
	for _, rg := range [][2]uint64{{500, 700}, {0, 99}, {99999, 1 << 40}, {50, 50}} {
		want := 0
		for k := range uniq {
			if k >= rg[0] && k <= rg[1] {
				want++
			}
		}
		got := 0
		prev := uint64(0)
		first := true
		tr.Range(rg[0], rg[1], func(k uint64, _ *uint64) bool {
			if k < rg[0] || k > rg[1] {
				t.Fatalf("range [%d,%d] yielded %d", rg[0], rg[1], k)
			}
			if !first && k <= prev {
				t.Fatal("range not ascending")
			}
			prev, first = k, false
			got++
			return true
		})
		if got != want {
			t.Fatalf("range [%d,%d]: %d keys want %d", rg[0], rg[1], got, want)
		}
	}
}

func TestExtremeKeys(t *testing.T) {
	tr := New[uint64]()
	keys := []uint64{0, 1, ^uint64(0), 1 << 63, 1<<63 - 1, 42}
	for _, k := range keys {
		*tr.Upsert(k) = k + 5
	}
	for _, k := range keys {
		v := tr.Get(k)
		if v == nil || *v != k+5 {
			t.Fatalf("extreme key %d wrong", k)
		}
	}
}

func TestPointerStability(t *testing.T) {
	tr := New[uint64]()
	p := tr.Upsert(77)
	*p = 1
	for k := uint64(0); k < 10000; k++ {
		tr.Upsert(k)
	}
	*p++
	if *tr.Get(77) != 2 {
		t.Fatal("leaf pointer invalidated")
	}
}

func TestQuickPropertyMatchesModel(t *testing.T) {
	f := func(keys []uint64) bool {
		tr := New[uint64]()
		model := map[uint64]uint64{}
		for _, k := range keys {
			*tr.Upsert(k)++
			model[k]++
		}
		if tr.Len() != len(model) {
			return false
		}
		ok := true
		prev, first := uint64(0), true
		tr.Iterate(func(k uint64, v *uint64) bool {
			if model[k] != *v || (!first && k <= prev) {
				ok = false
			}
			prev, first = k, false
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
