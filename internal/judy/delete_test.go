package judy

import (
	"testing"
	"testing/quick"

	"memagg/internal/dataset"
)

func TestDeleteBasic(t *testing.T) {
	tr := New[uint64]()
	for k := uint64(0); k < 1000; k++ {
		*tr.Upsert(k) = k
	}
	for k := uint64(0); k < 1000; k += 2 {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) reported absent", k)
		}
	}
	if tr.Delete(5000) {
		t.Fatal("deleted absent key")
	}
	if tr.Len() != 500 {
		t.Fatalf("Len=%d want 500", tr.Len())
	}
	for k := uint64(0); k < 1000; k++ {
		want := k%2 == 1
		if got := tr.Get(k) != nil; got != want {
			t.Fatalf("Get(%d)=%v want %v", k, got, want)
		}
	}
}

func TestDeleteAllEmptiesTree(t *testing.T) {
	tr := New[uint64]()
	keys := dataset.Random(20000, 1, 1<<40, 5)
	uniq := map[uint64]bool{}
	for _, k := range keys {
		tr.Upsert(k)
		uniq[k] = true
	}
	for k := range uniq {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if tr.Len() != 0 || tr.root != nil {
		t.Fatal("tree not empty after deleting all keys")
	}
}

func TestDeleteDemotesNodeForms(t *testing.T) {
	tr := New[uint64]()
	for k := uint64(0); k < 256; k++ {
		tr.Upsert(k) // full node at the last level
	}
	for k := uint64(3); k < 256; k++ {
		tr.Delete(k)
	}
	// Three survivors: must have demoted full → bitmap → linear.
	if _, ok := tr.root.(*linear[uint64]); !ok {
		t.Fatalf("root is %T, want *linear after demotion", tr.root)
	}
	for k := uint64(0); k < 3; k++ {
		if tr.Get(k) == nil {
			t.Fatalf("survivor %d lost", k)
		}
	}
	tr.Delete(0)
	tr.Delete(1)
	if _, ok := tr.root.(*leaf[uint64]); !ok {
		t.Fatalf("root is %T, want collapsed *leaf", tr.root)
	}
}

func TestDeletePreservesSortedIteration(t *testing.T) {
	tr := New[uint64]()
	keys := dataset.Spec{Kind: dataset.Zipf, N: 30000, Cardinality: 3000, Seed: 8}.Keys()
	model := map[uint64]bool{}
	for _, k := range keys {
		tr.Upsert(k)
		model[k] = true
	}
	i := 0
	for k := range model {
		if i%2 == 0 {
			tr.Delete(k)
			delete(model, k)
		}
		i++
	}
	var prev uint64
	first := true
	count := 0
	tr.Iterate(func(k uint64, _ *uint64) bool {
		if !model[k] {
			t.Fatalf("deleted key %d still iterated", k)
		}
		if !first && k <= prev {
			t.Fatal("iteration order broken after deletes")
		}
		prev, first = k, false
		count++
		return true
	})
	if count != len(model) {
		t.Fatalf("iterated %d keys want %d", count, len(model))
	}
}

func TestQuickDeleteMatchesModel(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := New[uint64]()
		model := map[uint64]uint64{}
		for _, op := range ops {
			k := uint64(op % 300)
			if (op/300)%3 == 0 {
				delete(model, k)
				tr.Delete(k)
			} else {
				*tr.Upsert(k)++
				model[k]++
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		ok := true
		tr.Iterate(func(k uint64, v *uint64) bool {
			if model[k] != *v {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
