package judy

// Delete removes key from the tree, returning whether it was present.
// Node forms demote on the reverse of the promotion schedule (full →
// bitmap → linear), and a linear node left with a single child collapses
// into that child with the radix byte folded into the child's prefix.
func (t *Tree[V]) Delete(key uint64) bool {
	switch n := t.root.(type) {
	case nil:
		return false
	case *leaf[V]:
		if n.key != key {
			return false
		}
		t.root = nil
		t.size--
		return true
	}
	if !t.deleteRec(&t.root, key, 0) {
		return false
	}
	t.size--
	return true
}

func (t *Tree[V]) deleteRec(slot *any, key uint64, depth int) bool {
	h := t.hdr(*slot)
	for i := 0; i < h.prefixLen; i++ {
		if h.prefix[i] != keyByte(key, depth+i) {
			return false
		}
	}
	depth += h.prefixLen
	b := keyByte(key, depth)
	childSlot := t.findChild(*slot, b)
	if childSlot == nil {
		return false
	}
	if lf, ok := (*childSlot).(*leaf[V]); ok {
		if lf.key != key {
			return false
		}
		t.removeChild(slot, b)
		return true
	}
	return t.deleteRec(childSlot, key, depth+1)
}

func (t *Tree[V]) removeChild(slot *any, b byte) {
	switch n := (*slot).(type) {
	case *linear[V]:
		i := 0
		for i < n.n && n.keys[i] != b {
			i++
		}
		copy(n.keys[i:n.n-1], n.keys[i+1:n.n])
		copy(n.children[i:n.n-1], n.children[i+1:n.n])
		n.n--
		n.children[n.n] = nil
		if n.n == 1 {
			t.collapseLinear(slot, n)
		}
	case *bitmapN[V]:
		r := n.bmRank(b)
		n.bits[b>>6] &^= 1 << (b & 63)
		copy(n.children[r:], n.children[r+1:])
		n.children[len(n.children)-1] = nil
		n.children = n.children[:len(n.children)-1]
		if len(n.children) <= linearCap {
			s := &linear[V]{header: n.header}
			j := 0
			for bb := 0; bb < 256 && j < len(n.children); bb++ {
				if n.bmHas(byte(bb)) {
					s.keys[j] = byte(bb)
					s.children[j] = n.children[j]
					j++
				}
			}
			s.n = j
			*slot = s
			if s.n == 1 {
				t.collapseLinear(slot, s)
			}
		}
	case *fullN[V]:
		n.children[b] = nil
		n.n--
		if n.n <= bitmapToFull-8 {
			s := &bitmapN[V]{header: n.header}
			s.children = make([]any, 0, n.n)
			for bb := 0; bb < 256; bb++ {
				if n.children[bb] != nil {
					s.bits[bb>>6] |= 1 << (bb & 63)
					s.children = append(s.children, n.children[bb])
				}
			}
			*slot = s
		}
	}
}

// collapseLinear replaces a one-child linear node with its child, merging
// prefixes (Judy always path-compresses).
func (t *Tree[V]) collapseLinear(slot *any, n *linear[V]) {
	child := n.children[0]
	if _, isLeaf := child.(*leaf[V]); isLeaf {
		*slot = child
		return
	}
	ch := t.hdr(child)
	var merged [keyLen]byte
	m := copy(merged[:], n.prefix[:n.prefixLen])
	merged[m] = n.keys[0]
	m++
	m += copy(merged[m:], ch.prefix[:ch.prefixLen])
	ch.prefix = merged
	ch.prefixLen = m
	*slot = child
}
