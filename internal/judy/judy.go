// Package judy implements a Judy-array-like structure (the paper's Judy):
// a 256-way radix trie over big-endian uint64 bytes whose nodes adapt among
// three forms — a small sorted linear node (≤ 7 children, one cache line of
// keys), a bitmap node (256-bit occupancy bitmap plus a packed child
// array), and an uncompressed full node (256 child pointers) — together
// with path compression of single-descendant runs.
//
// Doug Baskins' original Judy applies ~20 compression techniques tuned to
// 64-byte cache lines; the three node forms plus path compression here are
// the load-bearing ones for the paper's workloads: they reproduce Judy's
// memory frugality relative to hash tables (Tables 6-7) and its ordered
// iteration (the property that makes it the paper's pick for reusable
// scalar-median indexes, Figure 9/12).
package judy

import "math/bits"

const keyLen = 8

func keyByte(k uint64, d int) byte {
	return byte(k >> (8 * (keyLen - 1 - d)))
}

// linearCap is the maximum fanout of the linear node form. Seven children
// keeps the byte array plus count within a single cache line.
const linearCap = 7

// bitmapToFull is the fanout at which a bitmap node is promoted to an
// uncompressed full node: past this density the packed array's shifting
// costs outweigh the pointer savings.
const bitmapToFull = 48

type header struct {
	prefixLen int
	prefix    [keyLen]byte
}

type leaf[V any] struct {
	key uint64
	val V
}

type linear[V any] struct {
	header
	n        int
	keys     [linearCap]byte // sorted
	children [linearCap]any
}

type bitmapN[V any] struct {
	header
	bits     [4]uint64 // 256-bit occupancy
	children []any     // packed, ordered by byte value
}

type fullN[V any] struct {
	header
	n        int
	children [256]any
}

// Tree is a Judy-style radix map from uint64 to V.
type Tree[V any] struct {
	root any
	size int
}

// New returns an empty tree.
func New[V any]() *Tree[V] { return &Tree[V]{} }

// Len returns the number of stored keys.
func (t *Tree[V]) Len() int { return t.size }

func (t *Tree[V]) hdr(n any) *header {
	switch n := n.(type) {
	case *linear[V]:
		return &n.header
	case *bitmapN[V]:
		return &n.header
	case *fullN[V]:
		return &n.header
	}
	return nil
}

// bmRank returns the packed index for byte b, i.e. the number of set bits
// below b.
func (n *bitmapN[V]) bmRank(b byte) int {
	w, bit := int(b>>6), uint(b&63)
	r := bits.OnesCount64(n.bits[w] & (1<<bit - 1))
	for i := 0; i < w; i++ {
		r += bits.OnesCount64(n.bits[i])
	}
	return r
}

func (n *bitmapN[V]) bmHas(b byte) bool {
	return n.bits[b>>6]>>(b&63)&1 == 1
}

// findChild returns a pointer to the child slot for byte b, or nil.
func (t *Tree[V]) findChild(n any, b byte) *any {
	switch n := n.(type) {
	case *linear[V]:
		for i := 0; i < n.n; i++ {
			if n.keys[i] == b {
				return &n.children[i]
			}
		}
	case *bitmapN[V]:
		if n.bmHas(b) {
			return &n.children[n.bmRank(b)]
		}
	case *fullN[V]:
		if n.children[b] != nil {
			return &n.children[b]
		}
	}
	return nil
}

// addChild inserts child under byte b, promoting the node form when full,
// and returns the node that should occupy the parent slot.
func (t *Tree[V]) addChild(n any, b byte, child any) any {
	switch n := n.(type) {
	case *linear[V]:
		if n.n < linearCap {
			i := 0
			for i < n.n && n.keys[i] < b {
				i++
			}
			copy(n.keys[i+1:n.n+1], n.keys[i:n.n])
			copy(n.children[i+1:n.n+1], n.children[i:n.n])
			n.keys[i] = b
			n.children[i] = child
			n.n++
			return n
		}
		g := &bitmapN[V]{header: n.header}
		g.children = make([]any, 0, linearCap+1)
		for i := 0; i < n.n; i++ {
			g.bits[n.keys[i]>>6] |= 1 << (n.keys[i] & 63)
			g.children = append(g.children, n.children[i])
		}
		return t.addChild(g, b, child)
	case *bitmapN[V]:
		if len(n.children) >= bitmapToFull {
			g := &fullN[V]{header: n.header, n: len(n.children)}
			i := 0
			for bb := 0; bb < 256; bb++ {
				if n.bmHas(byte(bb)) {
					g.children[bb] = n.children[i]
					i++
				}
			}
			return t.addChild(g, b, child)
		}
		r := n.bmRank(b)
		n.bits[b>>6] |= 1 << (b & 63)
		n.children = append(n.children, nil)
		copy(n.children[r+1:], n.children[r:])
		n.children[r] = child
		return n
	case *fullN[V]:
		n.children[b] = child
		n.n++
		return n
	}
	panic("judy: addChild on non-inner node")
}

// newInner returns a linear node covering prefix bytes kb[from:to].
func newInner[V any](kb [keyLen]byte, from, to int) *linear[V] {
	n := &linear[V]{}
	n.prefixLen = to - from
	copy(n.prefix[:], kb[from:to])
	return n
}

// Upsert returns a pointer to the value for key, inserting a zero value if
// absent. Pointers remain valid for the life of the tree.
func (t *Tree[V]) Upsert(key uint64) *V {
	var kb [keyLen]byte
	for i := range kb {
		kb[i] = keyByte(key, i)
	}
	if t.root == nil {
		lf := &leaf[V]{key: key}
		t.root = lf
		t.size++
		return &lf.val
	}
	slot := &t.root
	depth := 0
	for {
		if lf, ok := (*slot).(*leaf[V]); ok {
			if lf.key == key {
				return &lf.val
			}
			var ob [keyLen]byte
			for i := range ob {
				ob[i] = keyByte(lf.key, i)
			}
			d := depth
			for ob[d] == kb[d] {
				d++
			}
			nn := newInner[V](kb, depth, d)
			newLf := &leaf[V]{key: key}
			t.addChild(nn, ob[d], lf)
			t.addChild(nn, kb[d], newLf)
			*slot = nn
			t.size++
			return &newLf.val
		}
		h := t.hdr(*slot)
		mismatch := -1
		for i := 0; i < h.prefixLen; i++ {
			if h.prefix[i] != kb[depth+i] {
				mismatch = i
				break
			}
		}
		if mismatch >= 0 {
			nn := newInner[V](kb, depth, depth+mismatch)
			old := *slot
			oldByte := h.prefix[mismatch]
			rem := h.prefixLen - mismatch - 1
			copy(h.prefix[:], h.prefix[mismatch+1:mismatch+1+rem])
			h.prefixLen = rem
			lf := &leaf[V]{key: key}
			t.addChild(nn, oldByte, old)
			t.addChild(nn, kb[depth+mismatch], lf)
			*slot = nn
			t.size++
			return &lf.val
		}
		depth += h.prefixLen
		b := kb[depth]
		child := t.findChild(*slot, b)
		if child == nil {
			lf := &leaf[V]{key: key}
			*slot = t.addChild(*slot, b, lf)
			t.size++
			return &lf.val
		}
		slot = child
		depth++
	}
}

// Get returns a pointer to the value stored for key, or nil.
func (t *Tree[V]) Get(key uint64) *V {
	n := t.root
	depth := 0
	for n != nil {
		if lf, ok := n.(*leaf[V]); ok {
			if lf.key == key {
				return &lf.val
			}
			return nil
		}
		h := t.hdr(n)
		for i := 0; i < h.prefixLen; i++ {
			if h.prefix[i] != keyByte(key, depth+i) {
				return nil
			}
		}
		depth += h.prefixLen
		child := t.findChild(n, keyByte(key, depth))
		if child == nil {
			return nil
		}
		n = *child
		depth++
	}
	return nil
}

// Iterate calls fn for every key/value pair in ascending key order,
// stopping early if fn returns false.
func (t *Tree[V]) Iterate(fn func(key uint64, val *V) bool) {
	t.iter(t.root, fn)
}

func (t *Tree[V]) iter(n any, fn func(uint64, *V) bool) bool {
	switch n := n.(type) {
	case nil:
		return true
	case *leaf[V]:
		return fn(n.key, &n.val)
	case *linear[V]:
		for i := 0; i < n.n; i++ {
			if !t.iter(n.children[i], fn) {
				return false
			}
		}
	case *bitmapN[V]:
		for _, c := range n.children {
			if !t.iter(c, fn) {
				return false
			}
		}
	case *fullN[V]:
		for b := 0; b < 256; b++ {
			if n.children[b] != nil {
				if !t.iter(n.children[b], fn) {
					return false
				}
			}
		}
	}
	return true
}

// Range calls fn for every pair with lo <= key <= hi in ascending order,
// pruning subtrees outside the interval via the radix structure.
func (t *Tree[V]) Range(lo, hi uint64, fn func(key uint64, val *V) bool) {
	t.rng(t.root, 0, 0, lo, hi, fn)
}

func (t *Tree[V]) rng(n any, acc uint64, depth int, lo, hi uint64, fn func(uint64, *V) bool) bool {
	switch n := n.(type) {
	case nil:
		return true
	case *leaf[V]:
		if n.key < lo {
			return true
		}
		if n.key > hi {
			return false
		}
		return fn(n.key, &n.val)
	}
	h := t.hdr(n)
	for i := 0; i < h.prefixLen; i++ {
		acc |= uint64(h.prefix[i]) << (8 * (keyLen - 1 - depth - i))
	}
	depth += h.prefixLen
	if !intersects(acc, depth, lo, hi) {
		return treeMax(acc, depth) < lo
	}
	desc := func(b byte, child any) bool {
		ca := acc | uint64(b)<<(8*(keyLen-1-depth))
		if !intersects(ca, depth+1, lo, hi) {
			return treeMax(ca, depth+1) < lo
		}
		return t.rng(child, ca, depth+1, lo, hi, fn)
	}
	switch n := n.(type) {
	case *linear[V]:
		for i := 0; i < n.n; i++ {
			if !desc(n.keys[i], n.children[i]) {
				return false
			}
		}
	case *bitmapN[V]:
		i := 0
		for bb := 0; bb < 256; bb++ {
			if n.bmHas(byte(bb)) {
				if !desc(byte(bb), n.children[i]) {
					return false
				}
				i++
			}
		}
	case *fullN[V]:
		for bb := 0; bb < 256; bb++ {
			if n.children[bb] != nil {
				if !desc(byte(bb), n.children[bb]) {
					return false
				}
			}
		}
	}
	return true
}

func treeMax(acc uint64, depth int) uint64 {
	if depth >= keyLen {
		return acc
	}
	return acc | (uint64(1)<<(8*(keyLen-depth)) - 1)
}

func intersects(acc uint64, depth int, lo, hi uint64) bool {
	return treeMax(acc, depth) >= lo && acc <= hi
}
