// Package hashtbl implements the serial hash tables the paper evaluates as
// aggregation backends:
//
//   - LinearProbe  — the paper's custom "Hash_LP": open addressing, linear
//     probing, power-of-two capacity with AND masking (plus the documented
//     modulo fallback mode).
//   - Dense        — Google dense_hash_map analog ("Hash_Dense"): open
//     addressing with triangular quadratic probing and a low maximum load
//     factor, trading memory for speed.
//   - Sparse       — Google sparse_hash_map analog ("Hash_Sparse"):
//     quadratic probing over bitmap-compressed groups storing only occupied
//     slots, trading speed for memory.
//   - Chained      — std::unordered_map analog ("Hash_SC"): separate
//     chaining with pointer-linked nodes (with an optional pooled-arena
//     allocation mode used by the allocation ablation study).
//
// All tables map uint64 keys to a generic value type V and expose the same
// core surface: Upsert (insert-or-find returning a value pointer, the
// primitive aggregation builds on), Get, Delete, Len, and Iterate.
//
// Value pointers returned by Upsert/Get are invalidated by the next
// mutating call (the table may grow); aggregation uses them immediately.
package hashtbl

import "math/bits"

// Mix is the shared 64-bit hash finalizer (the splitmix64/Murmur3 mixer).
// It is exported so that other packages (cuckoo, chash, memsim) hash keys
// identically, making probe-sequence comparisons across tables meaningful.
func Mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Mix2 is a second, independent finalizer used where two hash functions are
// required (cuckoo hashing).
func Mix2(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashBatch is the rows-per-block of the batched-hash build loops shared
// by the aggregation kernels (internal/agg), the streaming hot loops
// (internal/stream) and the concurrent table: large enough to hide the
// multiply latency of Mix, small enough that the hash buffer stays in
// registers/L1.
const HashBatch = 32

// MixBatch fills h with the Mix hashes of the keys in b, which must hold
// exactly HashBatch keys. Filling the buffer first, then probing, lets the
// hash multiply chains of a whole block overlap each other and the probes'
// dependent cache misses instead of serializing row by row.
func MixBatch(h *[HashBatch]uint64, b []uint64) {
	_ = b[HashBatch-1]
	for j, k := range b {
		h[j] = Mix(k)
	}
}

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len64(uint64(n-1))
}

// nextPrime returns a prime >= n, used by the modulo-fallback table sizing
// the paper describes for its custom linear-probing table.
func nextPrime(n int) int {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for !isPrime(n) {
		n += 2
	}
	return n
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}
