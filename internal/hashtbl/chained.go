package hashtbl

// Chained is the std::unordered_map analog (Hash_SC): separate chaining
// with singly linked bucket chains. Insert is fast and growth only relinks
// chains (nodes are never moved), but every chain hop is a dependent
// pointer load — the data-locality cost the paper highlights for separate
// chaining.
//
// Two allocation modes exist:
//
//   - per-node allocation (NewChained), matching the C++ container's one
//     heap node per element, and
//   - pooled arena allocation (NewChainedPooled), which block-allocates
//     nodes to amortize allocator pressure. The allocation ablation
//     benchmark contrasts the two.
type Chained[V any] struct {
	buckets []*chainNode[V]
	mask    uint64
	size    int
	grow    int

	pooled bool
	pool   []chainNode[V] // current allocation block (pooled mode)
}

type chainNode[V any] struct {
	key  uint64
	next *chainNode[V]
	val  V
}

// chainPoolBlock is the arena block size in nodes for pooled mode.
const chainPoolBlock = 1024

// NewChained returns a separate-chaining table pre-sized for capacity
// elements, one heap allocation per inserted node.
func NewChained[V any](capacity int) *Chained[V] {
	t := &Chained[V]{}
	t.alloc(NextPow2(maxInt(capacity, 16)))
	return t
}

// NewChainedPooled returns a table that allocates nodes from arena blocks.
func NewChainedPooled[V any](capacity int) *Chained[V] {
	t := &Chained[V]{pooled: true}
	t.alloc(NextPow2(maxInt(capacity, 16)))
	return t
}

func (t *Chained[V]) alloc(buckets int) {
	t.buckets = make([]*chainNode[V], buckets)
	t.mask = uint64(buckets - 1)
	t.grow = buckets // max load factor 1.0, as libstdc++
}

// Len returns the number of stored keys.
func (t *Chained[V]) Len() int { return t.size }

// Cap returns the bucket count.
func (t *Chained[V]) Cap() int { return len(t.buckets) }

func (t *Chained[V]) newNode(key uint64, next *chainNode[V]) *chainNode[V] {
	if !t.pooled {
		return &chainNode[V]{key: key, next: next}
	}
	if len(t.pool) == 0 {
		t.pool = make([]chainNode[V], chainPoolBlock)
	}
	n := &t.pool[0]
	t.pool = t.pool[1:]
	n.key = key
	n.next = next
	return n
}

// Upsert returns a pointer to the value for key, inserting a zero value if
// absent. Unlike the open-addressing tables, the pointer remains valid for
// the life of the table (nodes never move), matching std::unordered_map's
// reference stability.
func (t *Chained[V]) Upsert(key uint64) *V {
	b := Mix(key) & t.mask
	for n := t.buckets[b]; n != nil; n = n.next {
		if n.key == key {
			return &n.val
		}
	}
	if t.size >= t.grow {
		t.rehash(len(t.buckets) * 2)
		b = Mix(key) & t.mask
	}
	n := t.newNode(key, t.buckets[b])
	t.buckets[b] = n
	t.size++
	return &n.val
}

// Get returns a pointer to the value stored for key, or nil.
func (t *Chained[V]) Get(key uint64) *V {
	for n := t.buckets[Mix(key)&t.mask]; n != nil; n = n.next {
		if n.key == key {
			return &n.val
		}
	}
	return nil
}

// Delete removes key, returning whether it was present.
func (t *Chained[V]) Delete(key uint64) bool {
	b := Mix(key) & t.mask
	for pp := &t.buckets[b]; *pp != nil; pp = &(*pp).next {
		if (*pp).key == key {
			*pp = (*pp).next
			t.size--
			return true
		}
	}
	return false
}

// Iterate calls fn for every key/value pair, stopping early on false.
func (t *Chained[V]) Iterate(fn func(key uint64, val *V) bool) {
	for _, n := range t.buckets {
		for ; n != nil; n = n.next {
			if !fn(n.key, &n.val) {
				return
			}
		}
	}
}

func (t *Chained[V]) rehash(buckets int) {
	old := t.buckets
	t.buckets = make([]*chainNode[V], buckets)
	t.mask = uint64(buckets - 1)
	t.grow = buckets
	for _, n := range old {
		for n != nil {
			next := n.next
			b := Mix(n.key) & t.mask
			n.next = t.buckets[b]
			t.buckets[b] = n
			n = next
		}
	}
}
