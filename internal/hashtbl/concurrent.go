package hashtbl

import (
	"sync"
	"sync/atomic"
)

// Concurrent is an aggregation-tuned concurrent linear-probing hash table:
// the single global shared structure behind the morsel-driven Hash_GLB
// engine ("Global Hash Tables Strike Back!", arxiv 2505.04153, argues this
// design point against radix partitioning on modern many-core).
//
// The table separates the two halves of an aggregation upsert so each can
// use the cheapest possible synchronization:
//
//   - Slot claiming is lock-free. Keys live in one open-addressed array
//     probed linearly (same discipline as LinearProbe); an empty slot is
//     claimed by a single CompareAndSwap of the key word, which doubles as
//     the slot's publication — any worker that subsequently reads the key
//     sees a fully claimed slot, because the slot's identity IS the key
//     word. Losing a claim race re-reads the slot (the winner may have
//     inserted the same key) and otherwise probes on.
//
//   - Aggregate state lives in per-slot "lanes": a fixed number of uint64
//     words per slot, updated by the caller with atomic adds (COUNT, SUM,
//     AVG's sum+count) or CAS loops against a lattice identity (MIN seeded
//     with ^0, MAX with 0). Because every update is commutative and the
//     readout happens after the build joins, no update ever needs the
//     slot's history — the whole build is wait-free per lane word.
//
//   - Non-commutative updates (appending to a group's holistic value list)
//     take a striped fallback: DoLocked serializes on one of NumStripes
//     slot-striped mutexes, so unrelated groups proceed in parallel while
//     same-group appends are ordered. The Hash_GLB engine uses it only in
//     the once-per-build holistic merge, never in the row loop.
//
// Growth is cooperative and batch-granular. Workers bracket each morsel
// with BeginBatch/EndBatch (a read-lock on the table identity); BeginBatch
// checks the claim count and, past the 3/4-load threshold, takes the write
// lock — quiescing in-flight morsels — doubles the arrays and rehashes.
// Slot indices are therefore stable within a batch, never across batches.
// Sizing guarantees the overshoot is safe: a grow decision is only
// observed at batch boundaries, so up to slack = workers × morsel-rows
// claims can land past the threshold; NewConcurrent keeps slots >= 8 ×
// slack, bounding the worst-case load at 3/4 + 1/8 = 7/8 — LinearProbe's
// maximum. Pre-sizing from a cardinality estimate (the engine's
// EstimatedGroups path) makes growth the exception, not the steady state.
//
// Key 0 uses a dedicated zero cell, as in LinearProbe: the zero slot is
// Cap() (one past the last probe slot), and the lane arrays carry one
// extra slot for it.
type Concurrent struct {
	// mu guards the identity of keys/vals: batches hold it shared, growth
	// exclusive. Lane and key words are only ever touched with atomics
	// while shared.
	mu   sync.RWMutex
	keys []uint64
	vals []uint64 // (len(keys)+1) * lanes words, slot-major; nil if lanes == 0
	mask uint64

	lanes    int
	laneInit []uint64 // per-lane identity written to empty slots (nil = zeros)
	slack    int      // max claims that may land past the grow threshold

	size    atomic.Int64 // claimed slots, excluding the zero cell
	growAt  int64        // claim count that triggers doubling (3/4 load)
	hasZero atomic.Bool

	stripes [NumStripes]paddedMutex
}

// NumStripes is the size of the striped-lock fallback: enough stripes that
// workers appending to distinct groups rarely collide, few enough that the
// mutex array stays cache-resident.
const NumStripes = 128

type paddedMutex struct {
	sync.Mutex
	_ [56]byte // pad to a cache line so stripe locks don't false-share
}

const (
	ctMaxLoadNum = 3
	ctMaxLoadDen = 4
)

// NewConcurrent returns a table pre-sized for capacity groups with the
// given number of lane words per slot (lanes may be 0 for claim-only use,
// e.g. the holistic path). laneInit, when non-nil, is the per-lane value
// empty slots start from — the fold's identity element (^0 for MIN);
// nil means zeros. slack is the maximum number of claims that can land
// between two growth checks — workers × morsel-rows for a morsel-driven
// build — and bounds the post-threshold overshoot (see the type comment).
func NewConcurrent(capacity, lanes int, laneInit []uint64, slack int) *Concurrent {
	if lanes > 0 && laneInit != nil && len(laneInit) != lanes {
		panic("hashtbl: laneInit length does not match lanes")
	}
	if slack < 1 {
		slack = 1
	}
	slots := NextPow2(maxInt(maxInt(capacity*ctMaxLoadDen/ctMaxLoadNum, 8*slack), 1024))
	t := &Concurrent{lanes: lanes, laneInit: laneInit, slack: slack}
	t.alloc(slots)
	return t
}

func (t *Concurrent) alloc(slots int) {
	t.keys = make([]uint64, slots)
	t.mask = uint64(slots - 1)
	t.growAt = int64(slots * ctMaxLoadNum / ctMaxLoadDen)
	if t.lanes == 0 {
		return
	}
	t.vals = make([]uint64, (slots+1)*t.lanes)
	if t.laneInit == nil {
		return
	}
	needInit := false
	for _, v := range t.laneInit {
		if v != 0 {
			needInit = true
			break
		}
	}
	if !needInit {
		return
	}
	for s := 0; s <= slots; s++ {
		copy(t.vals[s*t.lanes:(s+1)*t.lanes], t.laneInit)
	}
}

// BeginBatch opens one batch of claims/updates: it grows the table first
// if the last batch round pushed it past the load threshold, then takes
// the table identity shared and returns the current lane array. Slot
// indices obtained inside the batch index into exactly this array and are
// invalid after EndBatch (growth may relocate them). Every worker must
// pair BeginBatch with EndBatch; updates outside a batch race with growth.
func (t *Concurrent) BeginBatch() []uint64 {
	if t.size.Load() >= t.loadGrowAt() {
		t.growLocked()
	}
	t.mu.RLock()
	return t.vals
}

// EndBatch closes a batch opened by BeginBatch.
func (t *Concurrent) EndBatch() { t.mu.RUnlock() }

// loadGrowAt reads the grow threshold under the shared lock (it changes
// only under the exclusive lock, during growth).
func (t *Concurrent) loadGrowAt() int64 {
	t.mu.RLock()
	g := t.growAt
	t.mu.RUnlock()
	return g
}

// growLocked doubles the table. Taking the exclusive lock waits out every
// in-flight batch, so the rehash sees a quiescent table and can use plain
// loads/stores. Double-checked: concurrent workers that also observed the
// threshold find it already raised and return.
func (t *Concurrent) growLocked() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.size.Load() < t.growAt {
		return
	}
	oldKeys, oldVals := t.keys, t.vals
	oldCap := len(oldKeys)
	t.alloc(oldCap * 2)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := Mix(k) & t.mask
		for t.keys[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		if t.lanes > 0 {
			copy(t.vals[int(j)*t.lanes:(int(j)+1)*t.lanes], oldVals[i*t.lanes:(i+1)*t.lanes])
		}
	}
	if t.lanes > 0 {
		// The zero cell rides along: old slot oldCap -> new slot len(keys).
		copy(t.vals[len(t.keys)*t.lanes:], oldVals[oldCap*t.lanes:(oldCap+1)*t.lanes])
	}
}

// UpsertSlotH returns the slot for key (hash h, which must be Mix(key)),
// claiming an empty slot with a CAS when the key is new. The caller must
// hold an open batch; the returned slot indexes the lane array that batch's
// BeginBatch returned, at slot*Lanes(). The zero key maps to the dedicated
// zero cell, Cap().
func (t *Concurrent) UpsertSlotH(key, h uint64) int {
	if key == 0 {
		if !t.hasZero.Load() {
			t.hasZero.Store(true)
		}
		return len(t.keys)
	}
	i := h & t.mask
	for {
		k := atomic.LoadUint64(&t.keys[i])
		if k == key {
			return int(i)
		}
		if k == 0 {
			if atomic.CompareAndSwapUint64(&t.keys[i], 0, key) {
				t.size.Add(1)
				return int(i)
			}
			// Lost the claim race; the winner may have inserted our key.
			if atomic.LoadUint64(&t.keys[i]) == key {
				return int(i)
			}
		}
		i = (i + 1) & t.mask
	}
}

// GetSlot returns the slot holding key, or -1 when absent. Quiescent-read
// helper for the post-build phases (holistic merge, tests): it takes no
// lock and uses plain loads, so callers must ensure no batch is open.
func (t *Concurrent) GetSlot(key uint64) int {
	if key == 0 {
		if t.hasZero.Load() {
			return len(t.keys)
		}
		return -1
	}
	i := Mix(key) & t.mask
	for {
		k := t.keys[i]
		if k == key {
			return int(i)
		}
		if k == 0 {
			return -1
		}
		i = (i + 1) & t.mask
	}
}

// DoLocked runs fn holding the stripe lock for slot — the serialization
// fallback for non-commutative per-group updates (value-list appends).
// Calls for the same slot are mutually exclusive; calls for slots on
// different stripes run in parallel.
func (t *Concurrent) DoLocked(slot int, fn func()) {
	m := &t.stripes[slot&(NumStripes-1)]
	m.Lock()
	fn()
	m.Unlock()
}

// Len returns the number of stored keys, including the zero cell. Exact
// only when no batch is open.
func (t *Concurrent) Len() int {
	n := int(t.size.Load())
	if t.hasZero.Load() {
		n++
	}
	return n
}

// Cap returns the number of probe slots (the zero cell excluded — it is
// addressed as slot Cap()).
func (t *Concurrent) Cap() int { return len(t.keys) }

// Lanes returns the number of lane words per slot.
func (t *Concurrent) Lanes() int { return t.lanes }

// Vals returns the current lane array. Quiescent-read helper for the
// post-build emit phase; invalidated by growth like any slot index.
func (t *Concurrent) Vals() []uint64 { return t.vals }

// Iterate calls fn for every claimed slot (the zero cell first, when
// claimed), in unspecified order, stopping early if fn returns false.
// Quiescent-read helper: callers must ensure no batch is open.
func (t *Concurrent) Iterate(fn func(slot int, key uint64) bool) {
	if t.hasZero.Load() {
		if !fn(len(t.keys), 0) {
			return
		}
	}
	for i, k := range t.keys {
		if k != 0 {
			if !fn(i, k) {
				return
			}
		}
	}
}
