package hashtbl

import "math/bits"

// Sparse is the Google sparse_hash_map analog (Hash_Sparse): logically an
// open-addressing table with the same triangular quadratic probing as
// Dense, but physically organized as bitmap-compressed groups of 64 slots
// that store only their occupied entries. Memory overhead is ~2 bits per
// empty slot instead of a full entry, which is why the paper measures it
// close to the trees and sorts — at the cost of a popcount-indexed indirect
// access and a memmove per insert.
type Sparse[V any] struct {
	groups []sparseGroup[V]
	mask   uint64 // logical capacity - 1
	size   int
	used   int // full + tombstoned logical slots
	grow   int
}

type sparseGroup[V any] struct {
	occupied uint64 // bit b set: logical slot b holds entries[rank(b)]
	deleted  uint64 // bit b set: logical slot b is a tombstone (no entry)
	keys     []uint64
	vals     []V
}

// sparseMaxLoad is sparse_hash_map's default 0.8 maximum occupancy.
const (
	sparseMaxLoadNum = 4
	sparseMaxLoadDen = 5
)

// NewSparse returns a table pre-sized for capacity elements.
func NewSparse[V any](capacity int) *Sparse[V] {
	slots := NextPow2(maxInt(capacity*sparseMaxLoadDen/sparseMaxLoadNum, 64))
	t := &Sparse[V]{}
	t.alloc(slots)
	return t
}

func (t *Sparse[V]) alloc(slots int) {
	t.groups = make([]sparseGroup[V], slots/64)
	t.mask = uint64(slots - 1)
	t.grow = slots * sparseMaxLoadNum / sparseMaxLoadDen
	t.size = 0
	t.used = 0
}

// Len returns the number of stored keys.
func (t *Sparse[V]) Len() int { return t.size }

// Cap returns the logical slot count.
func (t *Sparse[V]) Cap() int { return len(t.groups) * 64 }

// rank returns the packed index of logical bit b within the group bitmap.
func rank(bitmap uint64, b uint) int {
	return bits.OnesCount64(bitmap & (1<<b - 1))
}

// Upsert returns a pointer to the value for key, inserting a zero value if
// absent. The pointer is valid until the next mutating call.
func (t *Sparse[V]) Upsert(key uint64) *V {
	if t.used >= t.grow {
		t.rehash(len(t.groups) * 64 * 2)
	}
	i := Mix(key) & t.mask
	insertAt := int64(-1)
	for step := uint64(1); ; step++ {
		g := &t.groups[i>>6]
		b := uint(i & 63)
		switch {
		case g.occupied>>b&1 == 1:
			if r := rank(g.occupied, b); g.keys[r] == key {
				return &g.vals[r]
			}
		case g.deleted>>b&1 == 1:
			if insertAt < 0 {
				insertAt = int64(i)
			}
		default: // truly empty: key is absent, insert now
			if insertAt < 0 {
				insertAt = int64(i)
				t.used++
			}
			return t.insertAtSlot(uint64(insertAt), key)
		}
		i = (i + step) & t.mask
	}
}

// insertAtSlot places key into logical slot i, which must be empty or a
// tombstone, and returns the value pointer.
func (t *Sparse[V]) insertAtSlot(i, key uint64) *V {
	g := &t.groups[i>>6]
	b := uint(i & 63)
	g.deleted &^= 1 << b
	r := rank(g.occupied, b)
	g.occupied |= 1 << b
	g.keys = append(g.keys, 0)
	copy(g.keys[r+1:], g.keys[r:])
	g.keys[r] = key
	var zero V
	g.vals = append(g.vals, zero)
	copy(g.vals[r+1:], g.vals[r:])
	g.vals[r] = zero
	t.size++
	return &g.vals[r]
}

// Get returns a pointer to the value stored for key, or nil.
func (t *Sparse[V]) Get(key uint64) *V {
	i := Mix(key) & t.mask
	for step := uint64(1); ; step++ {
		g := &t.groups[i>>6]
		b := uint(i & 63)
		switch {
		case g.occupied>>b&1 == 1:
			if r := rank(g.occupied, b); g.keys[r] == key {
				return &g.vals[r]
			}
		case g.deleted>>b&1 == 1:
			// tombstone: keep probing
		default:
			return nil
		}
		i = (i + step) & t.mask
	}
}

// Delete removes key, returning whether it was present. The slot becomes a
// tombstone and its entry storage is released.
func (t *Sparse[V]) Delete(key uint64) bool {
	i := Mix(key) & t.mask
	for step := uint64(1); ; step++ {
		g := &t.groups[i>>6]
		b := uint(i & 63)
		switch {
		case g.occupied>>b&1 == 1:
			r := rank(g.occupied, b)
			if g.keys[r] != key {
				break
			}
			copy(g.keys[r:], g.keys[r+1:])
			g.keys = g.keys[:len(g.keys)-1]
			copy(g.vals[r:], g.vals[r+1:])
			var zero V
			g.vals[len(g.vals)-1] = zero
			g.vals = g.vals[:len(g.vals)-1]
			g.occupied &^= 1 << b
			g.deleted |= 1 << b
			t.size--
			return true
		case g.deleted>>b&1 == 1:
			// keep probing
		default:
			return false
		}
		i = (i + step) & t.mask
	}
}

// Iterate calls fn for every key/value pair, stopping early on false.
func (t *Sparse[V]) Iterate(fn func(key uint64, val *V) bool) {
	for gi := range t.groups {
		g := &t.groups[gi]
		for r := range g.keys {
			if !fn(g.keys[r], &g.vals[r]) {
				return
			}
		}
	}
}

func (t *Sparse[V]) rehash(slots int) {
	old := t.groups
	t.alloc(slots)
	for gi := range old {
		g := &old[gi]
		for r, k := range g.keys {
			i := Mix(k) & t.mask
			for step := uint64(1); ; step++ {
				ng := &t.groups[i>>6]
				b := uint(i & 63)
				if ng.occupied>>b&1 == 0 {
					t.used++
					nr := rank(ng.occupied, b)
					ng.occupied |= 1 << b
					ng.keys = append(ng.keys, 0)
					copy(ng.keys[nr+1:], ng.keys[nr:])
					ng.keys[nr] = k
					var zero V
					ng.vals = append(ng.vals, zero)
					copy(ng.vals[nr+1:], ng.vals[nr:])
					ng.vals[nr] = g.vals[r]
					t.size++
					break
				}
				i = (i + step) & t.mask
			}
		}
	}
}
