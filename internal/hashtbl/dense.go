package hashtbl

// Dense is the Google dense_hash_map analog (Hash_Dense): open addressing
// with triangular quadratic probing over a flat power-of-two array, growing
// at a 0.5 maximum load factor. It prioritizes probe speed over memory:
// the table always holds at least 2x the slots its contents need, and a
// resize transiently holds both the old and new arrays — the source of the
// outsized peak-memory numbers the paper reports for this table.
//
// Deletion uses tombstones, mirroring dense_hash_map's deleted-key scheme
// (realized here as a per-slot state byte instead of a reserved key value,
// so the full uint64 key domain remains usable).
type Dense[V any] struct {
	keys   []uint64
	vals   []V
	states []uint8 // slotEmpty, slotFull, slotDeleted
	mask   uint64
	size   int // full slots
	used   int // full + deleted slots (drives growth)
	grow   int
}

const (
	slotEmpty uint8 = iota
	slotFull
	slotDeleted
)

// denseMaxLoad is dense_hash_map's default: grow when half full.
const (
	denseMaxLoadNum = 1
	denseMaxLoadDen = 2
)

// NewDense returns a table pre-sized for capacity elements.
func NewDense[V any](capacity int) *Dense[V] {
	slots := NextPow2(maxInt(capacity*denseMaxLoadDen/denseMaxLoadNum, 32))
	t := &Dense[V]{}
	t.alloc(slots)
	return t
}

func (t *Dense[V]) alloc(slots int) {
	t.keys = make([]uint64, slots)
	t.vals = make([]V, slots)
	t.states = make([]uint8, slots)
	t.mask = uint64(slots - 1)
	t.grow = slots * denseMaxLoadNum / denseMaxLoadDen
	t.size = 0
	t.used = 0
}

// Len returns the number of stored keys.
func (t *Dense[V]) Len() int { return t.size }

// Cap returns the number of slots.
func (t *Dense[V]) Cap() int { return len(t.keys) }

// probe visits slots h, h+1, h+3, h+6, ... (triangular numbers), which
// covers every slot of a power-of-two table exactly once.

// Upsert returns a pointer to the value for key, inserting a zero value if
// absent. The pointer is valid until the next mutating call.
func (t *Dense[V]) Upsert(key uint64) *V {
	if t.used >= t.grow {
		t.rehash(len(t.keys) * 2)
	}
	i := Mix(key) & t.mask
	insertAt := -1
	for step := uint64(1); ; step++ {
		switch t.states[i] {
		case slotFull:
			if t.keys[i] == key {
				return &t.vals[i]
			}
		case slotDeleted:
			if insertAt < 0 {
				insertAt = int(i)
			}
		case slotEmpty:
			if insertAt < 0 {
				insertAt = int(i)
				t.used++ // consuming a virgin slot
			}
			t.keys[insertAt] = key
			t.states[insertAt] = slotFull
			t.size++
			return &t.vals[insertAt]
		}
		i = (i + step) & t.mask
	}
}

// Get returns a pointer to the value stored for key, or nil.
func (t *Dense[V]) Get(key uint64) *V {
	i := Mix(key) & t.mask
	for step := uint64(1); ; step++ {
		switch t.states[i] {
		case slotFull:
			if t.keys[i] == key {
				return &t.vals[i]
			}
		case slotEmpty:
			return nil
		}
		i = (i + step) & t.mask
	}
}

// Delete removes key, returning whether it was present.
func (t *Dense[V]) Delete(key uint64) bool {
	i := Mix(key) & t.mask
	for step := uint64(1); ; step++ {
		switch t.states[i] {
		case slotFull:
			if t.keys[i] == key {
				var zero V
				t.states[i] = slotDeleted
				t.keys[i] = 0
				t.vals[i] = zero
				t.size--
				return true
			}
		case slotEmpty:
			return false
		}
		i = (i + step) & t.mask
	}
}

// Iterate calls fn for every key/value pair, stopping early on false.
func (t *Dense[V]) Iterate(fn func(key uint64, val *V) bool) {
	for i, s := range t.states {
		if s == slotFull {
			if !fn(t.keys[i], &t.vals[i]) {
				return
			}
		}
	}
}

func (t *Dense[V]) rehash(slots int) {
	oldKeys, oldVals, oldStates := t.keys, t.vals, t.states
	t.alloc(slots)
	for i, s := range oldStates {
		if s != slotFull {
			continue
		}
		j := Mix(oldKeys[i]) & t.mask
		for step := uint64(1); t.states[j] == slotFull; step++ {
			j = (j + step) & t.mask
		}
		t.keys[j] = oldKeys[i]
		t.vals[j] = oldVals[i]
		t.states[j] = slotFull
		t.size++
		t.used++
	}
}
