package hashtbl

// LinearProbe is the paper's custom linear-probing hash table (Hash_LP):
// open addressing in one contiguous slot array, probing forward in steps of
// one. The default mode keeps a power-of-two capacity so the slot index is
// computed with a bitwise AND; the paper's fallback mode (for memory-tight
// cases) uses a prime capacity with a modulo reduction and exists here both
// for fidelity and for the mask-vs-mod ablation benchmark.
//
// Key 0 is supported: slot emptiness is encoded by key 0 plus a separate
// dedicated cell for the zero key, keeping the hot probe loop to a single
// array access per slot.
//
// Average-case insert and lookup are O(1); the worst case degrades to O(n)
// under primary clustering, which is exactly the behaviour the paper's
// skewed datasets exercise.
type LinearProbe[V any] struct {
	keys []uint64
	vals []V
	mask uint64 // capacity-1 when useMask, else unused
	size int    // occupied slots, excluding the zero key
	grow int    // size threshold that triggers doubling

	useMask bool
	modCap  uint64 // prime capacity when !useMask

	hasZero bool
	zeroVal V
}

// lpMaxLoadNum/lpMaxLoadDen give the 7/8 maximum load factor.
const (
	lpMaxLoadNum = 7
	lpMaxLoadDen = 8
)

// NewLinearProbe returns a table pre-sized for capacity elements
// (power-of-two slots, AND masking). The paper sizes tables to the dataset
// size since the group-by cardinality is unknown in advance.
func NewLinearProbe[V any](capacity int) *LinearProbe[V] {
	slots := NextPow2(maxInt(capacity*lpMaxLoadDen/lpMaxLoadNum, 16))
	t := &LinearProbe[V]{useMask: true}
	t.alloc(slots)
	return t
}

// NewLinearProbeMod returns a table in the paper's fallback mode: capacity
// rounded up to a prime and slot selection via modulo. Memory-exact but
// slower per probe; used by the mask-vs-mod ablation.
func NewLinearProbeMod[V any](capacity int) *LinearProbe[V] {
	slots := nextPrime(maxInt(capacity*lpMaxLoadDen/lpMaxLoadNum, 17))
	t := &LinearProbe[V]{useMask: false}
	t.alloc(slots)
	return t
}

func (t *LinearProbe[V]) alloc(slots int) {
	t.keys = make([]uint64, slots)
	t.vals = make([]V, slots)
	if t.useMask {
		t.mask = uint64(slots - 1)
	} else {
		t.modCap = uint64(slots)
	}
	t.grow = slots * lpMaxLoadNum / lpMaxLoadDen
	t.size = 0
}

// slot maps a hash to a starting slot index.
func (t *LinearProbe[V]) slot(h uint64) uint64 {
	if t.useMask {
		return h & t.mask
	}
	return h % t.modCap
}

// next advances a probe index by one with wraparound.
func (t *LinearProbe[V]) next(i uint64) uint64 {
	if t.useMask {
		return (i + 1) & t.mask
	}
	i++
	if i == t.modCap {
		return 0
	}
	return i
}

// Len returns the number of stored keys.
func (t *LinearProbe[V]) Len() int {
	if t.hasZero {
		return t.size + 1
	}
	return t.size
}

// Cap returns the number of slots, a proxy for the table's memory footprint.
func (t *LinearProbe[V]) Cap() int { return len(t.keys) }

// Upsert returns a pointer to the value for key, inserting a zero value if
// the key is absent. The pointer is valid until the next mutating call.
func (t *LinearProbe[V]) Upsert(key uint64) *V {
	return t.UpsertH(key, Mix(key))
}

// UpsertH is Upsert with a caller-supplied hash (which must be Mix(key)).
// The build kernels batch hash computation over blocks of rows — filling a
// small hash buffer first, then probing — so the multiply chains of Mix
// overlap across rows instead of serializing with each probe's dependent
// loads; this is the entry point that makes the batching possible.
func (t *LinearProbe[V]) UpsertH(key, h uint64) *V {
	if key == 0 {
		t.hasZero = true
		return &t.zeroVal
	}
	if t.size >= t.grow {
		t.rehash(len(t.keys) * 2)
	}
	i := t.slot(h)
	for {
		k := t.keys[i]
		if k == key {
			return &t.vals[i]
		}
		if k == 0 {
			t.keys[i] = key
			t.size++
			return &t.vals[i]
		}
		i = t.next(i)
	}
}

// Get returns a pointer to the value stored for key, or nil if absent.
func (t *LinearProbe[V]) Get(key uint64) *V {
	if key == 0 {
		if t.hasZero {
			return &t.zeroVal
		}
		return nil
	}
	i := t.slot(Mix(key))
	for {
		k := t.keys[i]
		if k == key {
			return &t.vals[i]
		}
		if k == 0 {
			return nil
		}
		i = t.next(i)
	}
}

// Delete removes key, returning whether it was present. Uses backward-shift
// deletion, so no tombstones accumulate and probe sequences stay compact.
func (t *LinearProbe[V]) Delete(key uint64) bool {
	if key == 0 {
		had := t.hasZero
		t.hasZero = false
		var zero V
		t.zeroVal = zero
		return had
	}
	i := t.slot(Mix(key))
	for {
		k := t.keys[i]
		if k == 0 {
			return false
		}
		if k == key {
			break
		}
		i = t.next(i)
	}
	// Backward-shift: pull displaced successors into the hole.
	var zero V
	j := i
	for {
		j = t.next(j)
		k := t.keys[j]
		if k == 0 {
			break
		}
		h := t.slot(Mix(k))
		// Element at j may fill the hole at i iff its home slot h does not
		// lie in the cyclic interval (i, j].
		if t.dist(h, j) >= t.dist(i, j) {
			t.keys[i] = k
			t.vals[i] = t.vals[j]
			i = j
		}
	}
	t.keys[i] = 0
	t.vals[i] = zero
	t.size--
	return true
}

// dist returns the cyclic distance from a to b (number of next() steps).
func (t *LinearProbe[V]) dist(a, b uint64) uint64 {
	if t.useMask {
		return (b - a) & t.mask
	}
	if b >= a {
		return b - a
	}
	return t.modCap - a + b
}

// Iterate calls fn for every key/value pair, in unspecified order, stopping
// early if fn returns false. The value pointer may be used to update the
// stored value in place.
func (t *LinearProbe[V]) Iterate(fn func(key uint64, val *V) bool) {
	if t.hasZero {
		if !fn(0, &t.zeroVal) {
			return
		}
	}
	for i, k := range t.keys {
		if k != 0 {
			if !fn(k, &t.vals[i]) {
				return
			}
		}
	}
}

func (t *LinearProbe[V]) rehash(slots int) {
	oldKeys, oldVals := t.keys, t.vals
	if !t.useMask {
		slots = nextPrime(slots)
	}
	t.alloc(slots)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := t.slot(Mix(k))
		for t.keys[j] != 0 {
			j = t.next(j)
		}
		t.keys[j] = k
		t.vals[j] = oldVals[i]
		t.size++
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
