package hashtbl

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// ctUpsert is the test-side serial upsert helper: one batch per call.
func ctUpsert(t *Concurrent, key uint64) int {
	t.BeginBatch()
	s := t.UpsertSlotH(key, Mix(key))
	t.EndBatch()
	return s
}

// TestConcurrentSerialVsMap builds a COUNT aggregation serially through the
// concurrent table and checks it against a Go map, including the zero key
// and enough distinct keys to force several growth doublings.
func TestConcurrentSerialVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := NewConcurrent(16, 1, nil, 1)
	ref := make(map[uint64]uint64)
	for i := 0; i < 60_000; i++ {
		k := uint64(rng.Intn(5000)) // zero key included
		vals := tbl.BeginBatch()
		s := tbl.UpsertSlotH(k, Mix(k))
		vals[s]++
		tbl.EndBatch()
		ref[k]++
	}
	if tbl.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tbl.Len(), len(ref))
	}
	got := make(map[uint64]uint64, tbl.Len())
	vals := tbl.Vals()
	tbl.Iterate(func(slot int, key uint64) bool {
		got[key] = vals[slot]
		return true
	})
	if len(got) != len(ref) {
		t.Fatalf("iterated %d groups, want %d", len(got), len(ref))
	}
	for k, v := range ref {
		if got[k] != v {
			t.Fatalf("key %d: count %d, want %d", k, got[k], v)
		}
	}
}

// TestConcurrentParallelUpsertRace is the dedicated N-writer race test:
// workers hammer overlapping key ranges with batched COUNT updates (atomic
// adds on the count lane) while growth fires repeatedly, then the table is
// iterated after the build joins. Run under -race this exercises the
// claim-CAS, the lost-race re-check, batch-boundary growth, and the
// quiescent readout together.
func TestConcurrentParallelUpsertRace(t *testing.T) {
	const (
		workers = 8
		perW    = 40_000
		keys    = 3000 // heavy overlap across workers
		batch   = 512
	)
	// Deliberately undersized so several growths happen mid-build.
	tbl := NewConcurrent(64, 1, nil, workers*batch)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			ks := make([]uint64, batch)
			for done := 0; done < perW; {
				n := batch
				if perW-done < n {
					n = perW - done
				}
				for i := 0; i < n; i++ {
					ks[i] = uint64(rng.Intn(keys))
				}
				vals := tbl.BeginBatch()
				for _, k := range ks[:n] {
					s := tbl.UpsertSlotH(k, Mix(k))
					atomic.AddUint64(&vals[s], 1)
				}
				tbl.EndBatch()
				done += n
			}
		}(w)
	}
	wg.Wait()

	var total uint64
	seen := make(map[uint64]bool)
	vals := tbl.Vals()
	tbl.Iterate(func(slot int, key uint64) bool {
		if seen[key] {
			t.Fatalf("key %d iterated twice", key)
		}
		seen[key] = true
		total += vals[slot]
		return true
	})
	if want := uint64(workers * perW); total != want {
		t.Fatalf("total count = %d, want %d (lost updates)", total, want)
	}
	if len(seen) > keys {
		t.Fatalf("%d distinct keys iterated, key space is %d", len(seen), keys)
	}
}

// TestConcurrentMinSentinel checks the laneInit path: a MIN lane seeded
// with ^0 folds correctly regardless of claim/update interleaving, and the
// sentinel survives growth (re-applied to fresh slots, values re-homed).
func TestConcurrentMinSentinel(t *testing.T) {
	const workers = 4
	tbl := NewConcurrent(8, 1, []uint64{^uint64(0)}, 64)
	rng := rand.New(rand.NewSource(42))
	type kv struct{ k, v uint64 }
	rows := make([]kv, 20_000)
	ref := make(map[uint64]uint64)
	for i := range rows {
		k, v := uint64(rng.Intn(700)), uint64(rng.Intn(1<<30))+1
		rows[i] = kv{k, v}
		if old, ok := ref[k]; !ok || v < old {
			ref[k] = v
		}
	}
	var wg sync.WaitGroup
	per := len(rows) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if w == workers-1 {
			hi = len(rows)
		}
		wg.Add(1)
		go func(part []kv) {
			defer wg.Done()
			for off := 0; off < len(part); off += 256 {
				end := off + 256
				if end > len(part) {
					end = len(part)
				}
				vals := tbl.BeginBatch()
				for _, r := range part[off:end] {
					s := tbl.UpsertSlotH(r.k, Mix(r.k))
					for {
						cur := atomic.LoadUint64(&vals[s])
						if r.v >= cur || atomic.CompareAndSwapUint64(&vals[s], cur, r.v) {
							break
						}
					}
				}
				tbl.EndBatch()
			}
		}(rows[lo:hi])
	}
	wg.Wait()

	vals := tbl.Vals()
	got := make(map[uint64]uint64)
	tbl.Iterate(func(slot int, key uint64) bool {
		got[key] = vals[slot]
		return true
	})
	if len(got) != len(ref) {
		t.Fatalf("%d groups, want %d", len(got), len(ref))
	}
	for k, want := range ref {
		if got[k] != want {
			t.Fatalf("key %d: min %d, want %d", k, got[k], want)
		}
	}
}

// TestConcurrentDoLockedStriping checks the striped fallback serializes
// same-slot calls: concurrent unsynchronized increments through DoLocked
// must not lose updates.
func TestConcurrentDoLockedStriping(t *testing.T) {
	tbl := NewConcurrent(16, 0, nil, 1)
	slots := []int{3, 3 + NumStripes, 7, 900} // two share a stripe
	counts := make(map[int]*int)
	for _, s := range slots {
		counts[s] = new(int)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				s := slots[(w+i)%len(slots)]
				tbl.DoLocked(s, func() { *counts[s]++ })
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += *c
	}
	if total != 8*10_000 {
		t.Fatalf("total = %d, want %d (lost locked updates)", total, 8*10_000)
	}
}

// TestConcurrentZeroLanes covers the claim-only configuration (lanes == 0)
// used by paths that keep values outside the table.
func TestConcurrentZeroLanes(t *testing.T) {
	tbl := NewConcurrent(4, 0, nil, 1)
	if tbl.Vals() != nil {
		t.Fatal("lanes=0 table allocated a lane array")
	}
	for k := uint64(0); k < 3000; k++ {
		ctUpsert(tbl, k)
	}
	if tbl.Len() != 3000 {
		t.Fatalf("Len = %d, want 3000", tbl.Len())
	}
	if s := tbl.GetSlot(0); s != tbl.Cap() {
		t.Fatalf("zero key slot = %d, want zero cell %d", s, tbl.Cap())
	}
	if s := tbl.GetSlot(999_999); s != -1 {
		t.Fatalf("absent key slot = %d, want -1", s)
	}
}

// TestConcurrentGetSlotAfterGrowth checks GetSlot agrees with UpsertSlotH
// once the build is quiescent, across growth relocations.
func TestConcurrentGetSlotAfterGrowth(t *testing.T) {
	tbl := NewConcurrent(4, 1, nil, 1)
	for k := uint64(1); k <= 5000; k++ {
		vals := tbl.BeginBatch()
		vals[tbl.UpsertSlotH(k, Mix(k))] = k * 10
		tbl.EndBatch()
	}
	vals := tbl.Vals()
	for k := uint64(1); k <= 5000; k++ {
		s := tbl.GetSlot(k)
		if s < 0 {
			t.Fatalf("key %d lost after growth", k)
		}
		if vals[s] != k*10 {
			t.Fatalf("key %d: val %d, want %d", k, vals[s], k*10)
		}
	}
}
