package hashtbl

import (
	"testing"
	"testing/quick"

	"memagg/internal/dataset"
)

// table is the common surface every hash table under test implements.
type table interface {
	Upsert(uint64) *uint64
	Get(uint64) *uint64
	Delete(uint64) bool
	Len() int
	Cap() int
	Iterate(func(uint64, *uint64) bool)
}

func makers() map[string]func(capacity int) table {
	return map[string]func(int) table{
		"LinearProbe":    func(c int) table { return NewLinearProbe[uint64](c) },
		"LinearProbeMod": func(c int) table { return NewLinearProbeMod[uint64](c) },
		"Dense":          func(c int) table { return NewDense[uint64](c) },
		"Sparse":         func(c int) table { return NewSparse[uint64](c) },
		"Chained":        func(c int) table { return NewChained[uint64](c) },
		"ChainedPooled":  func(c int) table { return NewChainedPooled[uint64](c) },
	}
}

func TestUpsertGetBasic(t *testing.T) {
	for name, mk := range makers() {
		tb := mk(16)
		for k := uint64(1); k <= 100; k++ {
			*tb.Upsert(k) = k * 10
		}
		if tb.Len() != 100 {
			t.Errorf("%s: Len=%d want 100", name, tb.Len())
		}
		for k := uint64(1); k <= 100; k++ {
			v := tb.Get(k)
			if v == nil || *v != k*10 {
				t.Errorf("%s: Get(%d) wrong", name, k)
			}
		}
		if tb.Get(101) != nil {
			t.Errorf("%s: Get(absent) != nil", name)
		}
	}
}

func TestUpsertIsIdempotentPerKey(t *testing.T) {
	for name, mk := range makers() {
		tb := mk(8)
		for i := 0; i < 50; i++ {
			*tb.Upsert(7)++
		}
		if tb.Len() != 1 {
			t.Errorf("%s: repeated Upsert created %d entries", name, tb.Len())
		}
		if v := tb.Get(7); v == nil || *v != 50 {
			t.Errorf("%s: count aggregation via Upsert broken", name)
		}
	}
}

func TestZeroKeySupported(t *testing.T) {
	for name, mk := range makers() {
		tb := mk(8)
		*tb.Upsert(0) = 42
		if v := tb.Get(0); v == nil || *v != 42 {
			t.Errorf("%s: zero key lost", name)
		}
		if tb.Len() != 1 {
			t.Errorf("%s: Len=%d want 1 after zero-key insert", name, tb.Len())
		}
		found := false
		tb.Iterate(func(k uint64, v *uint64) bool {
			if k == 0 && *v == 42 {
				found = true
			}
			return true
		})
		if !found {
			t.Errorf("%s: zero key missing from iteration", name)
		}
		if !tb.Delete(0) || tb.Get(0) != nil {
			t.Errorf("%s: zero key delete broken", name)
		}
	}
}

func TestGrowthPreservesContents(t *testing.T) {
	for name, mk := range makers() {
		tb := mk(4) // force many rehashes
		const n = 20000
		keys := dataset.Random(n, 1, 1<<50, 77)
		want := map[uint64]uint64{}
		for _, k := range keys {
			*tb.Upsert(k)++
			want[k]++
		}
		if tb.Len() != len(want) {
			t.Errorf("%s: Len=%d want %d", name, tb.Len(), len(want))
		}
		for k, c := range want {
			v := tb.Get(k)
			if v == nil || *v != c {
				t.Errorf("%s: key %d count wrong after growth", name, k)
				break
			}
		}
	}
}

func TestIterateVisitsEachKeyOnce(t *testing.T) {
	for name, mk := range makers() {
		tb := mk(64)
		want := map[uint64]uint64{}
		rng := dataset.NewRNG(5)
		for i := 0; i < 5000; i++ {
			k := rng.Uint64n(2000)
			*tb.Upsert(k) = k + 1
			want[k] = k + 1
		}
		got := map[uint64]uint64{}
		tb.Iterate(func(k uint64, v *uint64) bool {
			if _, dup := got[k]; dup {
				t.Errorf("%s: key %d visited twice", name, k)
			}
			got[k] = *v
			return true
		})
		if len(got) != len(want) {
			t.Errorf("%s: iterated %d keys, want %d", name, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("%s: key %d value %d want %d", name, k, got[k], v)
				break
			}
		}
	}
}

func TestIterateEarlyStop(t *testing.T) {
	for name, mk := range makers() {
		tb := mk(16)
		for k := uint64(1); k <= 100; k++ {
			tb.Upsert(k)
		}
		visits := 0
		tb.Iterate(func(uint64, *uint64) bool {
			visits++
			return visits < 5
		})
		if visits != 5 {
			t.Errorf("%s: early stop visited %d, want 5", name, visits)
		}
	}
}

func TestDeleteThenLookup(t *testing.T) {
	for name, mk := range makers() {
		tb := mk(16)
		keys := dataset.Random(2000, 1, 500, 3)
		present := map[uint64]bool{}
		for _, k := range keys {
			tb.Upsert(k)
			present[k] = true
		}
		// Delete every third distinct key.
		i := 0
		for k := range present {
			if i%3 == 0 {
				if !tb.Delete(k) {
					t.Errorf("%s: Delete(%d) reported absent", name, k)
				}
				present[k] = false
			}
			i++
		}
		if tb.Delete(99999) {
			t.Errorf("%s: Delete of absent key returned true", name)
		}
		for k, p := range present {
			got := tb.Get(k) != nil
			if got != p {
				t.Errorf("%s: after deletes Get(%d)=%v want %v", name, k, got, p)
			}
		}
		n := 0
		for _, p := range present {
			if p {
				n++
			}
		}
		if tb.Len() != n {
			t.Errorf("%s: Len=%d want %d after deletes", name, tb.Len(), n)
		}
	}
}

func TestDeleteBackwardShiftClusters(t *testing.T) {
	// Regression for linear probing backward-shift: build a long collision
	// cluster, delete from its middle, and verify every survivor is still
	// reachable.
	tb := NewLinearProbe[uint64](8)
	var cluster []uint64
	// Find keys that collide into a small range by brute force.
	for k := uint64(1); len(cluster) < 20; k++ {
		if Mix(k)&15 < 4 {
			cluster = append(cluster, k)
		}
	}
	for _, k := range cluster {
		*tb.Upsert(k) = k
	}
	for i := 0; i < len(cluster); i += 2 {
		tb.Delete(cluster[i])
	}
	for i, k := range cluster {
		want := i%2 == 1
		if got := tb.Get(k) != nil; got != want {
			t.Fatalf("cluster key %d: present=%v want %v", k, got, want)
		}
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	for name, mk := range makers() {
		tb := mk(16)
		for k := uint64(1); k <= 200; k++ {
			tb.Upsert(k)
		}
		for k := uint64(1); k <= 200; k++ {
			tb.Delete(k)
		}
		if tb.Len() != 0 {
			t.Errorf("%s: Len=%d want 0 after full delete", name, tb.Len())
		}
		for k := uint64(1); k <= 200; k++ {
			*tb.Upsert(k) = k
		}
		if tb.Len() != 200 {
			t.Errorf("%s: reinsert after delete lost keys: Len=%d", name, tb.Len())
		}
		for k := uint64(1); k <= 200; k++ {
			if v := tb.Get(k); v == nil || *v != k {
				t.Errorf("%s: reinserted key %d wrong", name, k)
				break
			}
		}
	}
}

func TestQuickPropertyMatchesMapModel(t *testing.T) {
	for name, mk := range makers() {
		mk := mk
		f := func(ops []uint16) bool {
			tb := mk(4)
			model := map[uint64]uint64{}
			for _, op := range ops {
				key := uint64(op % 64) // small key space → collisions + deletes
				switch (op / 64) % 3 {
				case 0, 1: // upsert-increment twice as likely
					*tb.Upsert(key)++
					model[key]++
				case 2:
					delete(model, key)
					tb.Delete(key)
				}
			}
			if tb.Len() != len(model) {
				return false
			}
			ok := true
			tb.Iterate(func(k uint64, v *uint64) bool {
				if model[k] != *v {
					ok = false
				}
				return ok
			})
			return ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCapReflectsSizingPolicy(t *testing.T) {
	// Hash_Dense must reserve at least 2x; Hash_LP about 8/7x; Sparse 5/4x.
	lp := NewLinearProbe[uint64](1000)
	if lp.Cap() < 1000*8/7 {
		t.Errorf("LinearProbe cap %d below load-factor reserve", lp.Cap())
	}
	d := NewDense[uint64](1000)
	if d.Cap() < 2000 {
		t.Errorf("Dense cap %d below 2x reserve", d.Cap())
	}
	s := NewSparse[uint64](1000)
	if s.Cap() < 1250 {
		t.Errorf("Sparse cap %d below 1.25x reserve", s.Cap())
	}
	if got := NextPow2(1000); got != 1024 {
		t.Errorf("NextPow2(1000)=%d", got)
	}
	if got := NextPow2(1024); got != 1024 {
		t.Errorf("NextPow2(1024)=%d", got)
	}
}

func TestNextPrime(t *testing.T) {
	cases := map[int]int{1: 2, 2: 2, 3: 3, 4: 5, 17: 17, 18: 19, 100: 101}
	for n, want := range cases {
		if got := nextPrime(n); got != want {
			t.Errorf("nextPrime(%d)=%d want %d", n, got, want)
		}
	}
}

func TestMixersDiffer(t *testing.T) {
	// Mix and Mix2 must behave as independent functions for cuckoo hashing.
	same := 0
	for k := uint64(0); k < 1000; k++ {
		if Mix(k)&1023 == Mix2(k)&1023 {
			same++
		}
	}
	if same > 20 { // expect ~1 collision in 1024 buckets
		t.Fatalf("Mix and Mix2 agree on %d of 1000 keys; too correlated", same)
	}
}
