package cluster

import (
	"bytes"
	"errors"
	"sort"
	"testing"

	"memagg/internal/agg"
	"memagg/internal/stream"
	"memagg/internal/wal"
)

// buildStream ingests a deterministic dataset and returns the stream
// (flushed, so every row is visible) plus the expected per-group state.
func buildStream(t *testing.T, holistic bool, rows int) (*stream.Stream, map[uint64][]uint64) {
	t.Helper()
	s := stream.New(stream.Config{Shards: 2, SealRows: 1024, Holistic: holistic})
	t.Cleanup(func() { s.Close() })
	want := make(map[uint64][]uint64)
	keys := make([]uint64, 0, 512)
	vals := make([]uint64, 0, 512)
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < rows; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		k := rng >> 33 % 257
		v := rng % 1000
		keys = append(keys, k)
		vals = append(vals, v)
		want[k] = append(want[k], v)
		if len(keys) == 512 {
			if err := s.Append(keys, vals); err != nil {
				t.Fatalf("append: %v", err)
			}
			keys, vals = keys[:0], vals[:0]
		}
	}
	if err := s.Append(keys, vals); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return s, want
}

func decodeAll(t *testing.T, buf []byte) (setHeader, map[uint64]*mgroup) {
	t.Helper()
	groups := make(map[uint64]*mgroup)
	hdr, err := DecodePartialSet(bytes.NewReader(buf), func(k uint64, p *agg.Partial, vals []uint64) error {
		g := groups[k]
		if g == nil {
			g = &mgroup{}
			groups[k] = g
		}
		g.p.Merge(p)
		g.vals = append(g.vals, vals...)
		return nil
	})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return hdr, groups
}

// TestPartialSetRoundTrip: a holistic snapshot encodes and decodes to
// exactly the ingested per-group state — eager folds and multisets.
func TestPartialSetRoundTrip(t *testing.T) {
	const rows = 20_000
	s, want := buildStream(t, true, rows)
	sn := s.Snapshot()
	buf := EncodeSnapshot(nil, sn)

	hdr, groups := decodeAll(t, buf)
	if !hdr.Holistic {
		t.Error("holistic flag lost")
	}
	if hdr.Watermark != uint64(rows) {
		t.Errorf("watermark %d, want %d", hdr.Watermark, rows)
	}
	if len(groups) != len(want) {
		t.Fatalf("decoded %d groups, want %d", len(groups), len(want))
	}
	for k, vals := range want {
		g := groups[k]
		if g == nil {
			t.Fatalf("group %d missing", k)
		}
		var count, sum uint64
		min, max := vals[0], vals[0]
		for _, v := range vals {
			count++
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		gmin, _ := g.p.Min()
		gmax, _ := g.p.Max()
		if g.p.Count() != count || g.p.Sum() != sum || gmin != min || gmax != max {
			t.Fatalf("group %d eager state mismatch", k)
		}
		got := append([]uint64(nil), g.vals...)
		exp := append([]uint64(nil), vals...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(exp, func(i, j int) bool { return exp[i] < exp[j] })
		if len(got) != len(exp) {
			t.Fatalf("group %d: %d vals, want %d", k, len(got), len(exp))
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("group %d multiset mismatch at %d", k, i)
			}
		}
	}
}

// TestPartialSetDistributive: without holistic mode the set carries no
// value multisets and says so in its header.
func TestPartialSetDistributive(t *testing.T) {
	s, want := buildStream(t, false, 5_000)
	buf := EncodeSnapshot(nil, s.Snapshot())
	hdr, groups := decodeAll(t, buf)
	if hdr.Holistic {
		t.Error("holistic flag set on distributive stream")
	}
	if len(groups) != len(want) {
		t.Fatalf("decoded %d groups, want %d", len(groups), len(want))
	}
	for k, g := range groups {
		if len(g.vals) != 0 {
			t.Fatalf("group %d carries %d buffered values", k, len(g.vals))
		}
	}
}

// TestPartialSetChunking: sets larger than the chunk target split into
// multiple frames and still decode whole.
func TestPartialSetChunking(t *testing.T) {
	old := chunkTarget
	chunkTarget = 1 << 10
	defer func() { chunkTarget = old }()

	s, want := buildStream(t, true, 10_000)
	buf := EncodeSnapshot(nil, s.Snapshot())
	_, groups := decodeAll(t, buf)
	if len(groups) != len(want) {
		t.Fatalf("decoded %d groups, want %d", len(groups), len(want))
	}
}

// TestPartialSetRejectsCorruption: bit flips and truncations anywhere in
// the stream fail the decode with a typed error — never a silent
// mis-merge.
func TestPartialSetRejectsCorruption(t *testing.T) {
	s, _ := buildStream(t, true, 2_000)
	buf := EncodeSnapshot(nil, s.Snapshot())

	decode := func(b []byte) error {
		_, err := DecodePartialSet(bytes.NewReader(b), func(uint64, *agg.Partial, []uint64) error { return nil })
		return err
	}
	if err := decode(buf); err != nil {
		t.Fatalf("clean set: %v", err)
	}
	// Flip one byte at a spread of offsets: each must surface as a frame
	// CRC failure (or, for length bytes, a framing error).
	for _, off := range []int{0, 5, 9, 30, len(buf) / 2, len(buf) - 1} {
		bad := append([]byte(nil), buf...)
		bad[off] ^= 0x40
		err := decode(bad)
		if err == nil {
			t.Fatalf("flip at %d: decode accepted corrupt set", off)
		}
		if !errors.Is(err, wal.ErrWALCorrupt) && !errors.Is(err, ErrBadSet) && !errors.Is(err, agg.ErrPartialWire) {
			t.Fatalf("flip at %d: untyped error %v", off, err)
		}
	}
	// Truncations: a short stream is an error, not a short result.
	for _, n := range []int{3, 12, len(buf) / 3, len(buf) - 1} {
		if err := decode(buf[:n]); err == nil {
			t.Fatalf("truncate to %d: decode accepted torn set", n)
		}
	}
}

// TestSetHeaderRejects: bad magic and unknown versions are refused up
// front.
func TestSetHeaderRejects(t *testing.T) {
	good := appendSetHeader(nil, setHeader{Holistic: true, Watermark: 7, Groups: 3})
	// Payload starts after the 8-byte frame header (u32 len + u32 crc).
	for _, mut := range []struct {
		name string
		off  int
	}{{"magic", 8}, {"version", 12}} {
		bad := append([]byte(nil), good...)
		bad[mut.off] ^= 0xFF
		// Recompute nothing: the CRC catches it first, which is fine — the
		// decode must fail either way.
		_, err := DecodePartialSet(bytes.NewReader(bad), func(uint64, *agg.Partial, []uint64) error { return nil })
		if err == nil {
			t.Fatalf("%s mutation accepted", mut.name)
		}
	}
	// A syntactically valid frame with a wrong version: re-frame by hand.
	payload := make([]byte, 22)
	copy(payload, setMagic[:])
	payload[4] = setVersion + 1
	framed := wal.AppendFrame(nil, payload)
	_, err := DecodePartialSet(bytes.NewReader(framed), func(uint64, *agg.Partial, []uint64) error { return nil })
	if !errors.Is(err, ErrBadSet) {
		t.Fatalf("unknown version: %v, want ErrBadSet", err)
	}
}
