package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/stream"
	"memagg/internal/wal"
)

// Partial-set wire format — what a node streams to the router on
// GET /partials. It reuses the WAL's self-validating frame codec
// (internal/wal: u32 length + u32 CRC32C + payload), so every chunk is
// integrity-checked and a truncated response is detected, not mis-read:
//
//	frame 0 (header):  "MAGP" u8:version u8:flags u64:watermark u64:groups
//	frame 1..k (chunk): u32:ngroups, then ngroups agg.Partial wire records
//
// flags bit0 = holistic (value multisets present). Chunks are cut near
// chunkTarget so neither side ever buffers the whole set; the header's
// group count tells the decoder when the set is complete, so there is no
// trailer — a short stream is a framing error.

// setVersion is the partial-set wire version. Bump on layout change; the
// decoder rejects versions it does not speak.
const setVersion = 1

// chunkTarget is the soft payload bound a chunk frame is cut at. Well
// under wal.MaxFrame, sized so a chunk amortizes framing overhead while
// keeping decoder buffers modest. A var so tests can force multi-chunk
// sets without megarow fixtures.
var chunkTarget = 4 << 20

const setFlagHolistic = 1

var setMagic = [4]byte{'M', 'A', 'G', 'P'}

// ErrBadSet marks a structurally invalid partial set: bad magic, unknown
// version, or a stream that disagrees with its own header. Frame-level
// corruption surfaces as wal.ErrWALCorrupt and record-level corruption as
// agg.ErrPartialWire; all three mean "discard this response".
var ErrBadSet = errors.New("cluster: malformed partial set")

// setHeader is the decoded header frame.
type setHeader struct {
	Holistic  bool
	Watermark uint64
	Groups    uint64
}

func appendSetHeader(dst []byte, h setHeader) []byte {
	buf := make([]byte, 0, 22)
	buf = append(buf, setMagic[:]...)
	buf = append(buf, setVersion)
	var flags byte
	if h.Holistic {
		flags |= setFlagHolistic
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, h.Watermark)
	buf = binary.LittleEndian.AppendUint64(buf, h.Groups)
	return wal.AppendFrame(dst, buf)
}

func decodeSetHeader(payload []byte) (setHeader, error) {
	if len(payload) != 22 {
		return setHeader{}, fmt.Errorf("header frame is %d bytes: %w", len(payload), ErrBadSet)
	}
	if [4]byte(payload[:4]) != setMagic {
		return setHeader{}, fmt.Errorf("bad magic %q: %w", payload[:4], ErrBadSet)
	}
	if payload[4] != setVersion {
		return setHeader{}, fmt.Errorf("unknown version %d: %w", payload[4], ErrBadSet)
	}
	return setHeader{
		Holistic:  payload[5]&setFlagHolistic != 0,
		Watermark: binary.LittleEndian.Uint64(payload[6:14]),
		Groups:    binary.LittleEndian.Uint64(payload[14:22]),
	}, nil
}

// EncodeSnapshot appends the full partial set of sn to dst and returns
// the extended slice: every group's merged partial, including buffered
// value multisets when the stream retains them. The result decodes to
// state Merge-equivalent to the snapshot — the node side of /partials.
func EncodeSnapshot(dst []byte, sn *stream.Snapshot) []byte {
	dst = appendSetHeader(dst, setHeader{
		Holistic:  sn.HolisticEnabled(),
		Watermark: sn.Watermark(),
		Groups:    uint64(sn.Groups()),
	})
	chunk := make([]byte, 4, chunkTarget/4)
	n := uint32(0)
	flush := func() {
		if n == 0 {
			return
		}
		binary.LittleEndian.PutUint32(chunk[:4], n)
		dst = wal.AppendFrame(dst, chunk)
		chunk = chunk[:4]
		n = 0
	}
	sn.EachGroup(func(k uint64, p *agg.Partial, ar *arena.Arena) {
		chunk = agg.AppendPartialWire(chunk, k, p, ar)
		n++
		if len(chunk) >= chunkTarget {
			flush()
		}
	})
	flush()
	return dst
}

// DecodePartialSet reads one partial set from r, invoking fn for every
// group record. vals aliases an internal buffer valid only during the
// call — copy (or Partial.Buffer into an arena) to retain. Returns the
// header (watermark, holistic flag) once the stream checks out end to
// end; any framing, record, or count mismatch fails the whole set.
func DecodePartialSet(r io.Reader, fn func(key uint64, p *agg.Partial, vals []uint64) error) (setHeader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	payload, _, err := wal.ReadFrame(br)
	if err != nil {
		return setHeader{}, fmt.Errorf("cluster: partial set header: %w", err)
	}
	hdr, err := decodeSetHeader(payload)
	if err != nil {
		return setHeader{}, err
	}
	var got uint64
	for got < hdr.Groups {
		payload, _, err := wal.ReadFrame(br)
		if err != nil {
			return setHeader{}, fmt.Errorf("cluster: partial set chunk after %d/%d groups: %w", got, hdr.Groups, err)
		}
		if len(payload) < 4 {
			return setHeader{}, fmt.Errorf("cluster: chunk of %d bytes: %w", len(payload), ErrBadSet)
		}
		n := binary.LittleEndian.Uint32(payload[:4])
		body := payload[4:]
		for i := uint32(0); i < n; i++ {
			key, p, vals, used, err := agg.DecodePartialWire(body)
			if err != nil {
				return setHeader{}, fmt.Errorf("cluster: group record %d: %w", got, err)
			}
			if err := fn(key, &p, vals); err != nil {
				return setHeader{}, err
			}
			body = body[used:]
			got++
		}
		if len(body) != 0 {
			return setHeader{}, fmt.Errorf("cluster: %d trailing chunk bytes: %w", len(body), ErrBadSet)
		}
	}
	if got != hdr.Groups {
		return setHeader{}, fmt.Errorf("cluster: set has %d groups, header says %d: %w", got, hdr.Groups, ErrBadSet)
	}
	return hdr, nil
}
