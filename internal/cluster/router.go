package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"memagg/internal/agg"
	"memagg/internal/chash"
	"memagg/internal/obs"
)

// Config parameterizes a Router. Peers is the static membership — base
// URLs of the worker nodes, in ring order (index = node id). The zero
// value of every other field selects a sensible default.
type Config struct {
	// Peers are the worker base URLs ("http://host:port"). Membership is
	// static for the life of the router; order defines node ids and the
	// watermark vector layout.
	Peers []string

	// Replicas is the consistent-hash virtual node count per peer.
	// Default chash.DefaultReplicas (128).
	Replicas int

	// MaxInflight bounds concurrent in-flight requests per peer
	// (backpressure: a slow peer queues its own work without starving
	// the others). Default 4.
	MaxInflight int

	// Retries is how many times a transiently failed request is retried
	// (total attempts = Retries+1). Default 3.
	Retries int

	// RetryBackoff is the first retry's delay; it doubles per retry.
	// Default 25ms.
	RetryBackoff time.Duration

	// BreakerThreshold is the consecutive transient-failure count that
	// trips a peer's circuit breaker open. Default 5.
	BreakerThreshold int

	// BreakerCooldown is how long a tripped breaker rejects requests
	// before admitting one half-open probe. Default 1s.
	BreakerCooldown time.Duration

	// Client issues the HTTP requests. Default: a client with a 30s
	// overall timeout (bounds a hung peer; the breaker handles repeats).
	Client *http.Client

	// Test seams (in-package tests only).
	now   func() time.Time
	sleep func(time.Duration)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Replicas <= 0 {
		out.Replicas = chash.DefaultReplicas
	}
	if out.MaxInflight <= 0 {
		out.MaxInflight = 4
	}
	if out.Retries < 0 {
		out.Retries = 0
	} else if out.Retries == 0 {
		out.Retries = 3
	}
	if out.RetryBackoff <= 0 {
		out.RetryBackoff = 25 * time.Millisecond
	}
	if out.BreakerThreshold <= 0 {
		out.BreakerThreshold = 5
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = time.Second
	}
	if out.Client == nil {
		out.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if out.now == nil {
		out.now = time.Now
	}
	if out.sleep == nil {
		out.sleep = time.Sleep
	}
	return out
}

// peer is the router's per-node state: the bounded in-flight window and
// the circuit breaker.
type peer struct {
	url      string
	inflight chan struct{}
	brk      *breaker
}

// Router shards ingest across the peer set by consistent group-key hash
// and answers queries by scatter-gathering partial aggregates. Safe for
// concurrent use; one Router per cluster.
type Router struct {
	cfg   Config
	ring  *chash.Ring
	peers []*peer
	m     *metrics
}

// NewRouter builds a router over cfg.Peers. Errors when the membership
// is empty.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: no peers configured")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:  cfg,
		ring: chash.NewRing(len(cfg.Peers), cfg.Replicas),
		m:    newMetrics(),
	}
	for _, u := range cfg.Peers {
		p := &peer{
			url:      u,
			inflight: make(chan struct{}, cfg.MaxInflight),
			brk:      newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.now),
		}
		rt.peers = append(rt.peers, p)
		rt.m.brkState.With(u).Set(breakerClosed)
	}
	return rt, nil
}

// Peers returns the membership base URLs in node-id order.
func (rt *Router) Peers() []string { return rt.cfg.Peers }

// Owner returns the node id owning the given group key.
func (rt *Router) Owner(key uint64) int { return rt.ring.Owner(key) }

// Registry exposes the router's metrics registry for /metrics serving.
func (rt *Router) Registry() *obs.Registry { return rt.m.reg }

// errBreakerOpen is the underlying cause inside a PeerError when the
// peer's breaker rejected the request locally.
var errBreakerOpen = errors.New("circuit breaker open")

// transientStatus reports whether an HTTP status indicates a condition a
// retry may fix: server-side failures and explicit backpressure. Other
// non-2xx statuses are permanent — the peer is alive and rejected the
// request, so retrying (and tripping the breaker) would be wrong.
func transientStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// recordState refreshes the peer's breaker-state gauge.
func (rt *Router) recordState(p *peer) {
	rt.m.brkState.With(p.url).Set(int64(p.brk.state()))
}

// do runs one logical request against p with the full failure protocol:
// breaker gate, bounded in-flight window, retry with doubling backoff on
// transient failures. build must return a fresh request per attempt
// (bodies are single-use). On success the response (status 2xx) is
// returned with its body open — the caller owns closing it. On failure
// the returned error is a *PeerError.
func (rt *Router) do(p *peer, op string, build func() (*http.Request, error)) (*http.Response, error) {
	fail := func(err error) (*http.Response, error) {
		rt.m.errors.With(p.url, op).Inc()
		return nil, &PeerError{Peer: p.url, Op: op, Err: err}
	}
	p.inflight <- struct{}{}
	defer func() { <-p.inflight }()

	backoff := rt.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= rt.cfg.Retries; attempt++ {
		if attempt > 0 {
			rt.m.retries.With(p.url).Inc()
			rt.cfg.sleep(backoff)
			backoff *= 2
		}
		if !p.brk.allow() {
			rt.recordState(p)
			if lastErr == nil {
				lastErr = errBreakerOpen
			}
			return fail(lastErr)
		}
		req, err := build()
		if err != nil {
			return fail(err) // programming error, not a peer failure
		}
		rt.m.requests.With(p.url, op).Inc()
		mk := obs.Start()
		resp, err := rt.cfg.Client.Do(req)
		if err != nil {
			lastErr = err
			if p.brk.failure() {
				rt.m.brkTrips.With(p.url).Inc()
			}
			rt.recordState(p)
			continue
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			p.brk.success()
			rt.recordState(p)
			mk.Tick(rt.m.latency.With(p.url))
			return resp, nil
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		lastErr = fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		if !transientStatus(resp.StatusCode) {
			// The peer is alive and answered; this is our request's
			// problem. Clear the failure run and stop retrying.
			p.brk.success()
			rt.recordState(p)
			return fail(lastErr)
		}
		if p.brk.failure() {
			rt.m.brkTrips.With(p.url).Inc()
		}
		rt.recordState(p)
	}
	return fail(lastErr)
}

// ingestBody is the node /ingest JSON request, matching cmd/aggserve's
// format so a router can front stock aggserve worker processes.
type ingestBody struct {
	Keys []uint64 `json:"keys"`
	Vals []uint64 `json:"vals"`
}

// Ingest shards one batch of row pairs across the peers — the row-pair
// spelling of IngestChunk, kept for callers that have not adopted the
// columnar form.
func (rt *Router) Ingest(keys, vals []uint64) error {
	return rt.IngestChunk(agg.Chunk{Keys: keys, Vals: vals})
}

// IngestChunk scatters one columnar chunk across the peers by group-key
// hash: one partition pass computes every row's ring owner, the columns
// split into exactly-sized per-peer chunks, and each peer receives one
// binary chunk-stream POST (the wire format its /v1/ingest decodes
// without JSON parsing). Returns nil when every owner acknowledged its
// rows; otherwise the joined *PeerError set — rows for healthy peers are
// still applied (at-least-once per sub-chunk; the stream's append is
// atomic per call, so a failed peer's rows are simply absent until
// re-sent).
func (rt *Router) IngestChunk(c agg.Chunk) error {
	if err := c.Validate(); err != nil {
		return err
	}
	n := len(rt.peers)
	rows := c.Rows()
	// One Owner pass over the key column; the owner vector then drives an
	// exactly-presized columnar split — no re-hash, no append growth.
	owners := make([]uint16, rows)
	counts := make([]int, n)
	for i, k := range c.Keys {
		o := rt.ring.Owner(k)
		owners[i] = uint16(o)
		counts[o]++
	}
	parts := make([]agg.Chunk, n)
	for o, cnt := range counts {
		if cnt > 0 {
			parts[o] = agg.Chunk{Keys: make([]uint64, 0, cnt), Vals: make([]uint64, 0, cnt)}
		}
	}
	for i, o := range owners {
		p := &parts[o]
		p.Keys = append(p.Keys, c.Keys[i])
		v := uint64(0)
		if i < len(c.Vals) {
			v = c.Vals[i]
		}
		p.Vals = append(p.Vals, v)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, part := range parts {
		if part.Rows() == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part agg.Chunk) {
			defer wg.Done()
			errs[i] = rt.postChunk(rt.peers[i], part)
			if errs[i] == nil {
				rt.m.rows.Add(uint64(part.Rows()))
				rt.m.batches.Inc()
			}
		}(i, part)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// postChunk ships one chunk to a peer as a binary chunk-stream body on
// /v1/ingest. The body is encoded once; retries re-read the same bytes.
func (rt *Router) postChunk(p *peer, c agg.Chunk) error {
	payload := agg.AppendChunkWire(make([]byte, 0, agg.ChunkWireSize(c.Rows())), c)
	resp, err := rt.do(p, "ingest", func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, p.url+"/v1/ingest", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", agg.ChunkContentType)
		return req, nil
	})
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// Flush broadcasts a flush (seal shard buffers into a sealed delta) to
// every peer, making all previously acknowledged rows visible to the
// next Gather.
func (rt *Router) Flush() error {
	errs := make([]error, len(rt.peers))
	var wg sync.WaitGroup
	for i, p := range rt.peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			errs[i] = rt.postJSON(p, "flush", "/flush", nil)
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (rt *Router) postJSON(p *peer, op, path string, body any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	resp, err := rt.do(p, op, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, p.url+path, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, nil
	})
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return nil
}

// Gather scatter-gathers every peer's partial set and merges them into
// one exact cluster-wide Merged state. All peers must answer: partial
// coverage would silently drop groups, so any unreachable peer fails the
// whole gather with a *PartialAvailabilityError.
func (rt *Router) Gather() (*Merged, error) {
	rt.m.queries.Inc()
	n := len(rt.peers)
	sets := make([]*peerSet, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, p := range rt.peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			sets[i], errs[i] = rt.fetchPartials(p)
		}(i, p)
	}
	wg.Wait()
	var pae PartialAvailabilityError
	for i, err := range errs {
		if err != nil {
			pae.Missing = append(pae.Missing, rt.peers[i].url)
			pae.Errs = append(pae.Errs, err)
		}
	}
	if len(pae.Missing) > 0 {
		rt.m.queryErrs.Inc()
		return nil, &pae
	}
	merged := newMerged(n)
	for i, set := range sets {
		merged.Watermark[i] = set.hdr.Watermark
		if i == 0 {
			merged.Holistic = set.hdr.Holistic
		} else {
			merged.Holistic = merged.Holistic && set.hdr.Holistic
		}
		merged.fold(set)
	}
	return merged, nil
}

// peerSet is one peer's decoded partial set.
type peerSet struct {
	hdr    setHeader
	groups map[uint64]*mgroup
}

// fetchPartials GETs and decodes one peer's /partials stream. Decode
// errors are transport-grade failures (a torn or corrupt response) and
// surface as *PeerError like any other unreachable-peer condition.
func (rt *Router) fetchPartials(p *peer) (*peerSet, error) {
	resp, err := rt.do(p, "partials", func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, p.url+"/partials", nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	set := &peerSet{groups: make(map[uint64]*mgroup)}
	hdr, err := DecodePartialSet(resp.Body, func(key uint64, pr *agg.Partial, vals []uint64) error {
		g := set.groups[key]
		if g == nil {
			g = &mgroup{}
			set.groups[key] = g
		}
		g.p.Merge(pr)
		g.vals = append(g.vals, vals...)
		return nil
	})
	if err != nil {
		rt.m.errors.With(p.url, "partials").Inc()
		return nil, &PeerError{Peer: p.url, Op: "partials", Err: err}
	}
	set.hdr = hdr
	return set, nil
}

// Ready probes every peer's /readyz. nil means the whole membership is
// ready (recovery complete, not degraded); otherwise the joined
// *PeerError set names the stragglers. The router's caller gates cluster
// traffic on this — /readyz is the membership contract.
func (rt *Router) Ready() error {
	errs := make([]error, len(rt.peers))
	var wg sync.WaitGroup
	for i, p := range rt.peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			resp, err := rt.do(p, "readyz", func() (*http.Request, error) {
				return http.NewRequest(http.MethodGet, p.url+"/readyz", nil)
			})
			if err != nil {
				errs[i] = err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// WaitReady polls Ready until it succeeds or the timeout elapses.
func (rt *Router) WaitReady(timeout time.Duration) error {
	deadline := rt.cfg.now().Add(timeout)
	for {
		err := rt.Ready()
		if err == nil {
			return nil
		}
		if rt.cfg.now().After(deadline) {
			return fmt.Errorf("cluster: not ready after %v: %w", timeout, err)
		}
		rt.cfg.sleep(25 * time.Millisecond)
	}
}

// PeerStats is one peer's router-side health summary — the /cluster/stats
// row.
type PeerStats struct {
	Peer     string `json:"peer"`
	Breaker  string `json:"breaker"` // "closed", "open", "half-open"
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Retries  uint64 `json:"retries"`
	Trips    uint64 `json:"breaker_trips"`
	Inflight int    `json:"inflight"`
}

func breakerName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Stats summarizes per-peer request and breaker health.
func (rt *Router) Stats() []PeerStats {
	ops := []string{"ingest", "flush", "partials", "readyz"}
	out := make([]PeerStats, len(rt.peers))
	for i, p := range rt.peers {
		st := PeerStats{
			Peer:     p.url,
			Breaker:  breakerName(p.brk.state()),
			Retries:  rt.m.retries.With(p.url).Value(),
			Trips:    rt.m.brkTrips.With(p.url).Value(),
			Inflight: len(p.inflight),
		}
		for _, op := range ops {
			st.Requests += rt.m.requests.With(p.url, op).Value()
			st.Errors += rt.m.errors.With(p.url, op).Value()
		}
		out[i] = st
	}
	return out
}

// IngestRows returns the total rows successfully sharded — the harness's
// throughput numerator.
func (rt *Router) IngestRows() uint64 { return rt.m.rows.Value() }
