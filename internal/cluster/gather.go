package cluster

import (
	"sort"

	"memagg/internal/agg"
)

// mgroup is one group's cluster-wide merged state: the eager distributive
// fold plus the concatenated value multiset (holistic mode only). Routing
// keeps groups node-disjoint, so folding a gather is normally pure
// insertion; Merge keeps it exact even if a group ever has state on two
// nodes.
type mgroup struct {
	p    agg.Partial
	vals []uint64
}

// Merged is one consistent cluster-wide aggregate state: every group's
// merged partial, tagged with the composed watermark vector it reflects.
// Its query kernels answer the paper's Q1–Q7 (plus quantile and mode)
// with results exactly equal to a single stream that ingested every row —
// the distributive/algebraic cases by Partial.Merge, the holistic cases
// because median/quantile/mode are multiset functions, indifferent to the
// order the per-node value lists concatenate in.
//
// Vector results are returned sorted ascending by key: gather order is
// peer order and map iteration, so sorting is what makes the output
// deterministic (the tree-engine convention; single-node hash results are
// unordered and must be sorted for comparison anyway).
type Merged struct {
	// Watermark is the composed cluster watermark this state reflects:
	// element i is peer i's snapshot watermark.
	Watermark Watermark

	// Holistic reports whether value multisets were retained on every
	// peer — the gate for MedianByKey/QuantileByKey/ModeByKey.
	Holistic bool

	groups map[uint64]*mgroup
	keys   []uint64 // sorted, built lazily
}

func newMerged(peers int) *Merged {
	return &Merged{
		Watermark: make(Watermark, peers),
		groups:    make(map[uint64]*mgroup),
	}
}

// fold merges one peer's decoded set into the cluster state.
func (m *Merged) fold(set *peerSet) {
	for k, g := range set.groups {
		dst := m.groups[k]
		if dst == nil {
			m.groups[k] = g
			continue
		}
		dst.p.Merge(&g.p)
		dst.vals = append(dst.vals, g.vals...)
	}
	m.keys = nil
}

// sortedKeys returns every group key ascending, built once.
func (m *Merged) sortedKeys() []uint64 {
	if m.keys == nil {
		m.keys = make([]uint64, 0, len(m.groups))
		for k := range m.groups {
			m.keys = append(m.keys, k)
		}
		sort.Slice(m.keys, func(i, j int) bool { return m.keys[i] < m.keys[j] })
	}
	return m.keys
}

// Groups returns the number of distinct keys across the cluster.
func (m *Merged) Groups() int { return len(m.groups) }

// CountByKey executes Q1: one (key, COUNT(*)) row per distinct key,
// ascending by key.
func (m *Merged) CountByKey() []agg.GroupCount {
	keys := m.sortedKeys()
	out := make([]agg.GroupCount, len(keys))
	for i, k := range keys {
		out[i] = agg.GroupCount{Key: k, Count: m.groups[k].p.Count()}
	}
	return out
}

// AvgByKey executes Q2: one (key, AVG(val)) row per distinct key,
// ascending by key.
func (m *Merged) AvgByKey() []agg.GroupFloat {
	keys := m.sortedKeys()
	out := make([]agg.GroupFloat, len(keys))
	for i, k := range keys {
		out[i] = agg.GroupFloat{Key: k, Val: m.groups[k].p.Avg()}
	}
	return out
}

// Reduce executes the generalized distributive vector query for op,
// ascending by key.
func (m *Merged) Reduce(op agg.ReduceOp) []agg.GroupUint {
	keys := m.sortedKeys()
	out := make([]agg.GroupUint, len(keys))
	for i, k := range keys {
		out[i] = agg.GroupUint{Key: k, Val: m.groups[k].p.Reduce(op)}
	}
	return out
}

// HolisticByKey executes the generalized holistic vector query: one
// (key, fn(values)) row per distinct key, ascending. agg.ErrUnsupported
// when the cluster does not retain value multisets. fn may reorder each
// group's (router-owned) value slice in place.
func (m *Merged) HolisticByKey(fn agg.HolisticFunc) ([]agg.GroupFloat, error) {
	if !m.Holistic {
		return nil, agg.ErrUnsupported
	}
	keys := m.sortedKeys()
	out := make([]agg.GroupFloat, len(keys))
	for i, k := range keys {
		out[i] = agg.GroupFloat{Key: k, Val: fn(m.groups[k].vals)}
	}
	return out, nil
}

// MedianByKey executes Q3 (holistic): per-key median.
func (m *Merged) MedianByKey() ([]agg.GroupFloat, error) {
	return m.HolisticByKey(agg.MedianFunc)
}

// QuantileByKey executes the nearest-rank q-quantile per distinct key.
func (m *Merged) QuantileByKey(q float64) ([]agg.GroupFloat, error) {
	return m.HolisticByKey(agg.QuantileFunc(q))
}

// ModeByKey executes the most-frequent-value query per distinct key.
func (m *Merged) ModeByKey() ([]agg.GroupFloat, error) {
	return m.HolisticByKey(agg.ModeFunc)
}

// Count executes Q4: COUNT(*) over the cluster — the watermark total.
func (m *Merged) Count() uint64 { return m.Watermark.Total() }

// Avg executes Q5: AVG over the value column, as one division of the
// exact cluster-wide sum by the exact count — bit-identical to the
// single-node kernel, which computes the same two integers.
func (m *Merged) Avg() float64 {
	var sum, count uint64
	for _, g := range m.groups {
		sum += g.p.Sum()
		count += g.p.Count()
	}
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}

// Median executes Q6: MEDIAN over the key column, exact via the sorted
// (key, count) walk — the same nearest-rank(s) arithmetic as the
// single-node kernel.
func (m *Merged) Median() (float64, error) {
	keys := m.sortedKeys()
	var n uint64
	for _, g := range m.groups {
		n += g.p.Count()
	}
	if n == 0 {
		return 0, nil
	}
	rank := func(r uint64) uint64 {
		var cum uint64
		for _, k := range keys {
			cum += m.groups[k].p.Count()
			if r < cum {
				return k
			}
		}
		return keys[len(keys)-1]
	}
	med := float64(rank(n / 2))
	if n%2 == 0 {
		med = (float64(rank(n/2-1)) + med) / 2
	}
	return med, nil
}

// CountRange executes Q7: Q1 restricted to lo <= key <= hi, ascending by
// key. The error is always nil; the signature matches the engines'.
func (m *Merged) CountRange(lo, hi uint64) ([]agg.GroupCount, error) {
	keys := m.sortedKeys()
	var out []agg.GroupCount
	for _, k := range keys {
		if k < lo || k > hi {
			continue
		}
		out = append(out, agg.GroupCount{Key: k, Count: m.groups[k].p.Count()})
	}
	return out, nil
}
