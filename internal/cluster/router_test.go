package cluster

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"memagg/internal/agg"
	"memagg/internal/stream"
)

// testCluster spins up n in-process worker nodes (stream + NodeHandler
// over httptest) and a router over them with test-friendly timings.
func testCluster(t *testing.T, n int, cfg stream.Config) (*Router, []*stream.Stream, []*httptest.Server) {
	t.Helper()
	streams := make([]*stream.Stream, n)
	servers := make([]*httptest.Server, n)
	peers := make([]string, n)
	for i := range streams {
		streams[i] = stream.New(cfg)
		servers[i] = httptest.NewServer(NodeHandler(streams[i]))
		peers[i] = servers[i].URL
	}
	t.Cleanup(func() {
		for i := range streams {
			servers[i].Close()
			streams[i].Close()
		}
	})
	rt, err := NewRouter(Config{
		Peers:        peers,
		RetryBackoff: time.Millisecond,
		sleep:        func(time.Duration) {}, // no real backoff in tests
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return rt, streams, servers
}

// testRows builds a deterministic skewed dataset: keys in [0, card),
// vals in [0, 1000).
func testRows(rows, card int) (keys, vals []uint64) {
	keys = make([]uint64, rows)
	vals = make([]uint64, rows)
	rng := uint64(0x243F6A8885A308D3)
	for i := range keys {
		rng = rng*6364136223846793005 + 1442695040888963407
		keys[i] = rng >> 33 % uint64(card)
		vals[i] = rng % 1000
	}
	return keys, vals
}

func sortQ1(a []agg.GroupCount) []agg.GroupCount {
	out := append([]agg.GroupCount(nil), a...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func sortQF(a []agg.GroupFloat) []agg.GroupFloat {
	out := append([]agg.GroupFloat(nil), a...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func sortQU(a []agg.GroupUint) []agg.GroupUint {
	out := append([]agg.GroupUint(nil), a...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// TestClusterEquivalence is the exactness gate: three worker nodes fed
// concurrently through the router answer every query of the paper's set
// — including the holistic Q3/quantile/mode, which no sketch-based
// system gets exact — identically to one local stream over the same
// rows. Pinned in scripts/ci.sh under -race.
func TestClusterEquivalence(t *testing.T) {
	const (
		rows  = 40_000
		card  = 1_500
		batch = 1_000
	)
	cfg := stream.Config{Shards: 2, SealRows: 2048, Holistic: true}
	rt, _, _ := testCluster(t, 3, cfg)

	local := stream.New(cfg)
	defer local.Close()

	keys, vals := testRows(rows, card)

	// Concurrent ingest through the router: 4 workers, disjoint batches.
	var wg sync.WaitGroup
	batches := make(chan int)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for off := range batches {
				end := off + batch
				if end > rows {
					end = rows
				}
				if err := rt.Ingest(keys[off:end], vals[off:end]); err != nil {
					t.Errorf("router ingest: %v", err)
					return
				}
			}
		}()
	}
	for off := 0; off < rows; off += batch {
		batches <- off
	}
	close(batches)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if err := local.Append(keys, vals); err != nil {
		t.Fatalf("local append: %v", err)
	}
	if err := rt.Flush(); err != nil {
		t.Fatalf("router flush: %v", err)
	}
	if err := local.Flush(); err != nil {
		t.Fatalf("local flush: %v", err)
	}

	m, err := rt.Gather()
	if err != nil {
		t.Fatalf("gather: %v", err)
	}
	sn := local.Snapshot()

	// Watermark composition: the vector sums to the row count, the ETag
	// carries every element.
	if got := m.Watermark.Total(); got != rows {
		t.Fatalf("cluster watermark total %d, want %d", got, rows)
	}
	if len(m.Watermark) != 3 {
		t.Fatalf("watermark vector has %d elements, want 3", len(m.Watermark))
	}
	etag := m.Watermark.ETag()
	if !strings.HasPrefix(etag, `"c`) || strings.Count(etag, ".") != 2 {
		t.Fatalf("malformed cluster ETag %q", etag)
	}

	// Q1 count by key.
	if got, want := m.CountByKey(), sortQ1(sn.CountByKey()); !reflect.DeepEqual(got, want) {
		t.Error("Q1 CountByKey diverged")
	}
	// Q2 avg by key.
	if got, want := m.AvgByKey(), sortQF(sn.AvgByKey()); !reflect.DeepEqual(got, want) {
		t.Error("Q2 AvgByKey diverged")
	}
	// Generalized distributive reduces.
	for _, op := range []agg.ReduceOp{agg.OpCount, agg.OpSum, agg.OpMin, agg.OpMax} {
		if got, want := m.Reduce(op), sortQU(sn.Reduce(op)); !reflect.DeepEqual(got, want) {
			t.Errorf("Reduce(%v) diverged", op)
		}
	}
	// Q3 median by key (holistic).
	gotMed, err := m.MedianByKey()
	if err != nil {
		t.Fatalf("cluster MedianByKey: %v", err)
	}
	wantMed, err := sn.MedianByKey()
	if err != nil {
		t.Fatalf("local MedianByKey: %v", err)
	}
	if !reflect.DeepEqual(gotMed, sortQF(wantMed)) {
		t.Error("Q3 MedianByKey diverged")
	}
	// Quantile and mode (holistic).
	gotQ, err := m.QuantileByKey(0.9)
	if err != nil {
		t.Fatalf("cluster QuantileByKey: %v", err)
	}
	wantQ, err := sn.QuantileByKey(0.9)
	if err != nil {
		t.Fatalf("local QuantileByKey: %v", err)
	}
	if !reflect.DeepEqual(gotQ, sortQF(wantQ)) {
		t.Error("QuantileByKey(0.9) diverged")
	}
	gotMode, err := m.ModeByKey()
	if err != nil {
		t.Fatalf("cluster ModeByKey: %v", err)
	}
	wantMode, err := sn.ModeByKey()
	if err != nil {
		t.Fatalf("local ModeByKey: %v", err)
	}
	if !reflect.DeepEqual(gotMode, sortQF(wantMode)) {
		t.Error("ModeByKey diverged")
	}
	// Q4 scalar count.
	if got, want := m.Count(), sn.Count(); got != want {
		t.Errorf("Q4 Count %d, want %d", got, want)
	}
	// Q5 scalar avg — bit-identical float.
	if got, want := m.Avg(), sn.Avg(); got != want {
		t.Errorf("Q5 Avg %v, want %v", got, want)
	}
	// Q6 scalar key median.
	gotM, _ := m.Median()
	wantM, err := sn.Median()
	if err != nil {
		t.Fatalf("local Median: %v", err)
	}
	if gotM != wantM {
		t.Errorf("Q6 Median %v, want %v", gotM, wantM)
	}
	// Q7 count range.
	gotR, _ := m.CountRange(card/4, 3*card/4)
	wantR, err := sn.CountRange(card/4, 3*card/4)
	if err != nil {
		t.Fatalf("local CountRange: %v", err)
	}
	if !reflect.DeepEqual(gotR, wantR) {
		t.Error("Q7 CountRange diverged")
	}
	if m.Groups() == 0 {
		t.Error("cluster has no groups")
	}
}

// TestClusterKillTripsBreaker: killing one worker mid-ingest trips its
// circuit breaker; subsequent ingests fail fast with the typed peer
// error, and queries report partial availability instead of hanging or
// silently dropping the dead node's groups.
func TestClusterKillTripsBreaker(t *testing.T) {
	rt, _, servers := testCluster(t, 3, stream.Config{Shards: 1, SealRows: 1024})
	keys, vals := testRows(6_000, 500)

	// Healthy warm-up.
	if err := rt.Ingest(keys[:2000], vals[:2000]); err != nil {
		t.Fatalf("warm-up ingest: %v", err)
	}

	// Kill node 1 and keep ingesting: batches owned by the dead peer must
	// fail with typed errors, and repeated failures must trip its breaker.
	servers[1].Close()
	var sawPeerErr bool
	for off := 2000; off < 6000; off += 1000 {
		err := rt.Ingest(keys[off:off+1000], vals[off:off+1000])
		if err == nil {
			t.Fatal("ingest to a killed peer succeeded")
		}
		if !errors.Is(err, ErrPeerUnavailable) {
			t.Fatalf("ingest error %v does not wrap ErrPeerUnavailable", err)
		}
		var pe *PeerError
		if errors.As(err, &pe) {
			sawPeerErr = true
			if pe.Peer != rt.Peers()[1] {
				t.Fatalf("failure attributed to %s, want %s", pe.Peer, rt.Peers()[1])
			}
		}
	}
	if !sawPeerErr {
		t.Fatal("no typed *PeerError surfaced")
	}

	// The breaker must now be open for the dead peer (default threshold 5
	// is well under the attempts above) and closed for the healthy ones.
	stats := rt.Stats()
	if stats[1].Breaker != "open" {
		t.Fatalf("dead peer breaker %q, want open (stats: %+v)", stats[1].Breaker, stats)
	}
	if stats[1].Trips == 0 {
		t.Fatal("no breaker trips recorded")
	}
	for _, i := range []int{0, 2} {
		if stats[i].Breaker != "closed" {
			t.Fatalf("healthy peer %d breaker %q, want closed", i, stats[i].Breaker)
		}
	}

	// Fail-fast: with the breaker open, an ingest touching the dead peer
	// returns immediately (no dials, no retries of a known-dead peer).
	start := time.Now()
	err := rt.Ingest(keys[:2000], vals[:2000])
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("post-trip ingest error %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("post-trip ingest took %v — breaker is not failing fast", d)
	}

	// Queries: exactness demands all owners, so the gather fails with the
	// typed partial-availability error naming the dead peer.
	_, err = rt.Gather()
	var pa *PartialAvailabilityError
	if !errors.As(err, &pa) {
		t.Fatalf("gather error %v, want *PartialAvailabilityError", err)
	}
	if len(pa.Missing) != 1 || pa.Missing[0] != rt.Peers()[1] {
		t.Fatalf("missing peers %v, want [%s]", pa.Missing, rt.Peers()[1])
	}
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatal("partial availability does not wrap ErrPeerUnavailable")
	}
}

// TestRouterReadyGating: Ready reflects every peer's /readyz — a closed
// stream (not ready, still alive for /healthz) fails the membership
// check with a typed error.
func TestRouterReadyGating(t *testing.T) {
	rt, streams, _ := testCluster(t, 2, stream.Config{Shards: 1})
	if err := rt.WaitReady(5 * time.Second); err != nil {
		t.Fatalf("healthy cluster not ready: %v", err)
	}
	// Close node 0's stream: its /readyz must flip to 503 while /healthz
	// keeps answering (the process is alive).
	streams[0].Close()
	err := rt.Ready()
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("Ready on degraded cluster: %v, want ErrPeerUnavailable", err)
	}
	resp, herr := http.Get(rt.Peers()[0] + "/healthz")
	if herr != nil {
		t.Fatalf("healthz on closed-stream node: %v", herr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
}

// TestRouterShardsByOwner: every key lands on the ring owner the router
// reports — the property that makes per-node partial sets disjoint.
func TestRouterShardsByOwner(t *testing.T) {
	rt, streams, _ := testCluster(t, 3, stream.Config{Shards: 1, SealRows: 512})
	keys, vals := testRows(9_000, 300)
	if err := rt.Ingest(keys, vals); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := rt.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// Each node must hold only keys the ring says it owns.
	for i, s := range streams {
		for _, gc := range s.Snapshot().CountByKey() {
			if own := rt.Owner(gc.Key); own != i {
				t.Fatalf("key %d on node %d, owner is %d", gc.Key, i, own)
			}
		}
	}
}
