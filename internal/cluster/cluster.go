// Package cluster is the multi-node serving mode: a router that shards
// ingest across N worker nodes and answers queries by scatter-gathering
// partial aggregates — with results bit-identical to a single-node stream
// over the same rows.
//
// The design composes three mechanisms the repo already proved in
// isolation, which is exactly why distribution is correct for free here:
//
//   - Routing (internal/chash.Ring). Every row is routed by its group
//     key's consistent hash, so each node owns a disjoint slice of the
//     group space. Consistent hashing bounds rebalancing: growing N to
//     N+1 moves ~1/(N+1) of the keys (TestRingMovementOnAdd), the
//     property the ROADMAP's WAL-shipping failover will lean on.
//
//   - Exact merging (agg.Partial). A query gathers each node's partials
//     for its owned groups and folds them with Partial.Merge — exact for
//     every distributive ReduceOp, algebraic avg, and (because holistic
//     functions are order-insensitive over the merged multiset) exact for
//     Q3/Q5–Q7 holistics too. Key-disjoint routing makes the merge a
//     concatenation in the common case, but the merge is *correct* even
//     when a group transiently has state on two nodes (mid-rebalance), so
//     correctness never depends on routing history.
//
//   - Watermark composition (the WAL's LSN discipline). Each node's
//     snapshot watermark counts the rows it has made visible; the router
//     composes the per-node watermarks into a cluster watermark — the
//     full vector for the entity tag, the minimum as the summary bound.
//     Because nodes own disjoint keys, any combination of per-node
//     snapshots is a consistent cluster state (each group's result
//     reflects an exact prefix of its node's ingest), so scatter-gather
//     needs no cross-node coordination to be consistent.
//
// The wire format reuses the WAL's self-validating frame codec
// (length + CRC32C + payload, internal/wal.AppendFrame/ReadFrame) around
// sequences of agg.Partial wire records — the same chunked-run framing
// the checkpoint subsystem writes to disk, pointed at a socket.
//
// Failure handling: every peer has a bounded in-flight window, transient
// errors retry with exponential backoff, and consecutive failures trip a
// per-peer circuit breaker. A tripped peer makes the router answer with
// typed partial-availability errors — the cluster-level analog of the
// stream's sticky read-only degradation: fail fast and explicitly, never
// hang, never serve silently wrong (partial) results.
package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrPeerUnavailable marks a peer the router cannot currently reach:
// its circuit breaker is open, or every retry of a request failed.
// Errors returned by Ingest, Flush, and Gather wrap it.
var ErrPeerUnavailable = errors.New("cluster: peer unavailable")

// PeerError reports a failed operation against one peer, wrapping
// ErrPeerUnavailable plus the underlying transport or status error.
type PeerError struct {
	Peer string // base URL
	Op   string // "ingest", "flush", "partials", "readyz"
	Err  error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("cluster: %s on %s: %v", e.Op, e.Peer, e.Err)
}

func (e *PeerError) Unwrap() error { return ErrPeerUnavailable }

// Cause returns the underlying error (the transport failure or HTTP
// status) — Unwrap is reserved for the ErrPeerUnavailable sentinel so
// errors.Is stays the routing contract.
func (e *PeerError) Cause() error { return e.Err }

// PartialAvailabilityError reports a scatter-gather that could not reach
// every node: exact cluster results need all owners, so the query fails
// as a whole, naming the missing peers. Wraps ErrPeerUnavailable.
type PartialAvailabilityError struct {
	Missing []string // unreachable peer base URLs
	Errs    []error  // one per missing peer
}

func (e *PartialAvailabilityError) Error() string {
	return fmt.Sprintf("cluster: partial availability: %d peer(s) unreachable (%s)",
		len(e.Missing), strings.Join(e.Missing, ", "))
}

func (e *PartialAvailabilityError) Unwrap() error { return ErrPeerUnavailable }

// Watermark is the composed cluster watermark: element i is node i's
// snapshot watermark (rows that node has made visible), in membership
// order. Because nodes own disjoint group-key slices, any vector of
// per-node watermarks describes one consistent cluster state.
type Watermark []uint64

// Total returns the total row count across the cluster — the cluster
// analog of a single stream's watermark (and of Q4).
func (w Watermark) Total() uint64 {
	var t uint64
	for _, v := range w {
		t += v
	}
	return t
}

// Min returns the minimum per-node watermark — the "every node has made
// at least this many of its rows visible" summary bound.
func (w Watermark) Min() uint64 {
	if len(w) == 0 {
		return 0
	}
	m := w[0]
	for _, v := range w[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ETag renders the vector as an HTTP entity tag: a query result over the
// cluster is fully determined by the per-node watermarks (per query URL),
// so the composed vector is the validator — exactly the single-node
// watermark-as-ETag contract, lifted to the fleet.
func (w Watermark) ETag() string {
	var b strings.Builder
	b.WriteByte('"')
	b.WriteByte('c')
	for i, v := range w {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(v, 10))
	}
	b.WriteByte('"')
	return b.String()
}
