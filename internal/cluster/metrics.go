package cluster

import (
	"memagg/internal/obs"
)

// metrics is the router's per-instance instrumentation: one family per
// concern, peer-labelled series materialized on first use. Lives in the
// router's own obs.Registry so two routers in one process (tests, the
// harness) never share a counter — the Stream's convention.
type metrics struct {
	reg *obs.Registry

	requests  *obs.CounterVec   // cluster_peer_requests_total{peer,op}
	errors    *obs.CounterVec   // cluster_peer_errors_total{peer,op}
	retries   *obs.CounterVec   // cluster_peer_retries_total{peer}
	latency   *obs.HistogramVec // cluster_peer_request_nanos{peer}
	brkState  *obs.GaugeVec     // cluster_breaker_state{peer}
	brkTrips  *obs.CounterVec   // cluster_breaker_trips_total{peer}
	rows      *obs.Counter      // cluster_ingest_rows_total
	batches   *obs.Counter      // cluster_ingest_batches_total
	queries   *obs.Counter      // cluster_gather_total
	queryErrs *obs.Counter      // cluster_gather_errors_total
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		reg: reg,
		requests: reg.NewCounterVec("cluster_peer_requests_total",
			"Requests issued to a peer, by operation.", "peer", "op"),
		errors: reg.NewCounterVec("cluster_peer_errors_total",
			"Requests to a peer that failed after retries, by operation.", "peer", "op"),
		retries: reg.NewCounterVec("cluster_peer_retries_total",
			"Retry attempts against a peer (transient failures).", "peer"),
		latency: reg.NewHistogramVec("cluster_peer_request_nanos",
			"Latency of successful peer requests.", "peer"),
		brkState: reg.NewGaugeVec("cluster_breaker_state",
			"Circuit breaker state per peer: 0 closed, 1 open, 2 half-open.", "peer"),
		brkTrips: reg.NewCounterVec("cluster_breaker_trips_total",
			"Times a peer's circuit breaker tripped open.", "peer"),
		rows: reg.NewCounter("cluster_ingest_rows_total",
			"Rows the router accepted and sharded to peers."),
		batches: reg.NewCounter("cluster_ingest_batches_total",
			"Per-peer sub-batches the router shipped."),
		queries: reg.NewCounter("cluster_gather_total",
			"Scatter-gather query fan-outs started."),
		queryErrs: reg.NewCounter("cluster_gather_errors_total",
			"Scatter-gathers that failed (partial availability or decode)."),
	}
}
