package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"mime"
	"net/http"
	"strconv"

	"memagg/internal/agg"
	"memagg/internal/stream"
	"memagg/internal/wal"
)

// NodeHandler serves one worker node's cluster surface over a Stream,
// every route mounted under /v1/ with the unversioned path kept as an
// alias:
//
//	POST /v1/ingest    append rows; Content-Type negotiates the body:
//	                   application/x-memagg-chunk (binary chunk stream,
//	                   the fast path — decoded columns transfer straight
//	                   into the stream, zero copies) or JSON
//	                   {"keys":[...],"vals":[...]}
//	POST /v1/flush     seal shard buffers into a sealed delta
//	GET  /v1/partials  the node's full partial set (EncodeSnapshot wire)
//	GET  /v1/healthz   liveness: the process is up and serving
//	GET  /v1/readyz    readiness: open and not durability-degraded
//
// The request/response shapes match cmd/aggserve, so a Router fronts
// stock aggserve worker processes and these in-process handlers (tests,
// the harness) interchangeably.
func NodeHandler(s *stream.Stream) http.Handler {
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		mux.HandleFunc("/v1"+route, h)
		mux.HandleFunc(route, h) // unversioned alias
	}
	handle("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			nodeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if isChunkBody(r) {
			rows, err := ingestChunkStream(r.Body, func(c agg.Chunk) error {
				return s.AppendChunk(c, true)
			})
			if err != nil {
				status, msg := chunkIngestStatus(err, nodeStatus)
				nodeError(w, status, msg)
				return
			}
			nodeJSON(w, map[string]any{"appended": rows})
			return
		}
		var req ingestBody
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			nodeError(w, http.StatusBadRequest, "bad ingest body: "+err.Error())
			return
		}
		if len(req.Vals) > len(req.Keys) {
			nodeError(w, http.StatusBadRequest, "more vals than keys")
			return
		}
		// The decoder allocated the columns for this request alone, so they
		// transfer to the stream without the AppendChunk copy.
		n := len(req.Keys)
		if err := s.AppendChunk(agg.Chunk{Keys: req.Keys, Vals: req.Vals}, true); err != nil {
			nodeError(w, nodeStatus(err), err.Error())
			return
		}
		nodeJSON(w, map[string]any{"appended": n})
	})
	handle("/flush", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			nodeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if err := s.Flush(); err != nil {
			nodeError(w, nodeStatus(err), err.Error())
			return
		}
		nodeJSON(w, map[string]any{"flushed": true})
	})
	handle("/partials", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			nodeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		sn := s.Snapshot()
		// Encode fully before writing: the status line must not precede a
		// failure, and the watermark header documents the snapshot served.
		buf := EncodeSnapshot(nil, sn)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Memagg-Watermark", strconv.FormatUint(sn.Watermark(), 10))
		w.Write(buf)
	})
	handle("/healthz", func(w http.ResponseWriter, r *http.Request) {
		nodeJSON(w, map[string]any{"ok": true})
	})
	handle("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Closed() {
			nodeError(w, http.StatusServiceUnavailable, "stream closed")
			return
		}
		if st := s.Stats(); st.ReadOnly {
			nodeError(w, http.StatusServiceUnavailable, "durability degraded, read-only")
			return
		}
		nodeJSON(w, map[string]any{"ready": true})
	})
	return mux
}

// isChunkBody reports whether the request negotiated the binary chunk
// content type. Parameters (charset etc.) are ignored; a malformed
// Content-Type falls through to the JSON path, whose decoder rejects it
// with a useful message.
func isChunkBody(r *http.Request) bool {
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && mt == agg.ChunkContentType
}

// ingestChunkStream drains one binary chunk-stream body, handing each
// decoded chunk to sink (ownership transfers with it), and returns the
// total rows appended. Chunks already handed off before an error stay
// applied — the same at-least-once-per-batch semantics the JSON path has
// per request.
func ingestChunkStream(body io.Reader, sink func(agg.Chunk) error) (int, error) {
	br := bufio.NewReaderSize(body, 64<<10)
	rows := 0
	for {
		c, err := agg.ReadChunk(br)
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return rows, err
		}
		n := c.Rows()
		if err := sink(c); err != nil {
			return rows, err
		}
		rows += n
	}
}

// chunkIngestStatus splits a chunk-ingest failure into its HTTP status:
// wire-grade errors (malformed chunk, torn frame) are the client's 400;
// anything else came from the stream and maps via streamStatus.
func chunkIngestStatus(err error, streamStatus func(error) int) (int, string) {
	if errors.Is(err, agg.ErrChunkWire) || errors.Is(err, wal.ErrWALCorrupt) {
		return http.StatusBadRequest, "bad chunk body: " + err.Error()
	}
	return streamStatus(err), err.Error()
}

// nodeStatus maps a stream error to its HTTP status: 503 for conditions
// the router may retry or route around (closed, degraded), 500 otherwise
// — the same mapping cmd/aggserve uses, so breakers see one vocabulary.
func nodeStatus(err error) int {
	if errors.Is(err, stream.ErrClosed) || errors.Is(err, stream.ErrDurability) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func nodeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// nodeError writes the API's error envelope: {"error": ..., "code": ...},
// code echoing the HTTP status — the same shape cmd/aggserve's httpError
// writes, so clients parse one envelope across node and router surfaces.
func nodeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"error": msg, "code": code})
}
