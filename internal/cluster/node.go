package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"memagg/internal/stream"
)

// NodeHandler serves one worker node's cluster surface over a Stream:
//
//	POST /ingest    JSON {"keys":[...],"vals":[...]} — append a batch
//	POST /flush     seal shard buffers into a sealed delta
//	GET  /partials  the node's full partial set (EncodeSnapshot wire)
//	GET  /healthz   liveness: the process is up and serving
//	GET  /readyz    readiness: open and not durability-degraded
//
// The request/response shapes match cmd/aggserve, so a Router fronts
// stock aggserve worker processes and these in-process handlers (tests,
// the harness) interchangeably.
func NodeHandler(s *stream.Stream) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			nodeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req ingestBody
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			nodeError(w, http.StatusBadRequest, "bad ingest body: "+err.Error())
			return
		}
		if len(req.Vals) > len(req.Keys) {
			nodeError(w, http.StatusBadRequest, "more vals than keys")
			return
		}
		if err := s.Append(req.Keys, req.Vals); err != nil {
			nodeError(w, nodeStatus(err), err.Error())
			return
		}
		nodeJSON(w, map[string]any{"appended": len(req.Keys)})
	})
	mux.HandleFunc("/flush", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			nodeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if err := s.Flush(); err != nil {
			nodeError(w, nodeStatus(err), err.Error())
			return
		}
		nodeJSON(w, map[string]any{"flushed": true})
	})
	mux.HandleFunc("/partials", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			nodeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		sn := s.Snapshot()
		// Encode fully before writing: the status line must not precede a
		// failure, and the watermark header documents the snapshot served.
		buf := EncodeSnapshot(nil, sn)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Memagg-Watermark", strconv.FormatUint(sn.Watermark(), 10))
		w.Write(buf)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		nodeJSON(w, map[string]any{"ok": true})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Closed() {
			nodeError(w, http.StatusServiceUnavailable, "stream closed")
			return
		}
		if st := s.Stats(); st.ReadOnly {
			nodeError(w, http.StatusServiceUnavailable, "durability degraded, read-only")
			return
		}
		nodeJSON(w, map[string]any{"ready": true})
	})
	return mux
}

// nodeStatus maps a stream error to its HTTP status: 503 for conditions
// the router may retry or route around (closed, degraded), 500 otherwise
// — the same mapping cmd/aggserve uses, so breakers see one vocabulary.
func nodeStatus(err error) int {
	if errors.Is(err, stream.ErrClosed) || errors.Is(err, stream.ErrDurability) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func nodeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func nodeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
