package cluster

import (
	"sync"
	"time"
)

// breaker is a per-peer circuit breaker. Consecutive transient failures
// beyond the threshold open the circuit; while open, requests are
// rejected locally (fail fast — no goroutine parks on a dead peer's
// connect timeout). After the cooldown one probe request is admitted
// (half-open); its outcome closes or re-opens the circuit.
//
// The router owns one breaker per peer and consults it before every
// attempt. Mutex-guarded: breaker decisions are a handful of loads per
// request, noise next to the request itself.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test seam

	mu       sync.Mutex
	failures int       // consecutive transient failures while closed
	openedAt time.Time // zero when closed
	probing  bool      // a half-open probe is in flight
}

// Breaker states as reported by state() and the breaker-state gauge.
const (
	breakerClosed   = 0
	breakerOpen     = 1
	breakerHalfOpen = 2
)

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a request may be attempted now. In the open
// state it admits exactly one probe once the cooldown has elapsed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openedAt.IsZero() {
		return true
	}
	if b.probing || b.now().Sub(b.openedAt) < b.cooldown {
		return false
	}
	b.probing = true
	return true
}

// success records a completed request: any success fully closes the
// circuit and clears the failure run.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.openedAt = time.Time{}
	b.probing = false
}

// failure records a transient failure. Returns true when this failure
// tripped the circuit open (closed->open or a failed half-open probe).
func (b *breaker) failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.openedAt.IsZero() {
		// Failed probe (or a straggler request racing the trip): restart
		// the cooldown. Only a probe's failure counts as a (re-)trip.
		tripped := b.probing
		b.openedAt = b.now()
		b.probing = false
		return tripped
	}
	b.failures++
	if b.failures < b.threshold {
		return false
	}
	b.openedAt = b.now()
	b.failures = 0
	return true
}

// state returns the breaker's current state constant.
func (b *breaker) state() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.openedAt.IsZero():
		return breakerClosed
	case b.probing || b.now().Sub(b.openedAt) >= b.cooldown:
		return breakerHalfOpen
	default:
		return breakerOpen
	}
}
