package cluster

import (
	"testing"
	"time"
)

// fakeClock is the breaker test clock: advanced by hand, never wall time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return newBreaker(threshold, cooldown, clk.now), clk
}

// TestBreakerTripsAtThreshold: consecutive failures below the threshold
// keep the circuit closed; the threshold-th trips it open.
func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if tripped := b.failure(); tripped {
			t.Fatalf("failure %d tripped early", i+1)
		}
		if !b.allow() {
			t.Fatalf("closed breaker rejected after %d failures", i+1)
		}
	}
	if !b.failure() {
		t.Fatal("threshold failure did not trip")
	}
	if b.state() != breakerOpen {
		t.Fatalf("state %d, want open", b.state())
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

// TestBreakerSuccessResetsRun: a success clears the consecutive-failure
// count, so intermittent failures never trip.
func TestBreakerSuccessResetsRun(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 10; i++ {
		b.failure()
		b.failure()
		b.success()
	}
	if b.state() != breakerClosed {
		t.Fatalf("state %d, want closed", b.state())
	}
}

// TestBreakerHalfOpenProbe: after the cooldown exactly one probe is
// admitted; its success closes the circuit, its failure re-opens it for
// another full cooldown.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.failure() // trips immediately at threshold 1
	if b.allow() {
		t.Fatal("admitted during cooldown")
	}
	clk.advance(time.Second)
	if b.state() != breakerHalfOpen {
		t.Fatalf("state %d, want half-open", b.state())
	}
	if !b.allow() {
		t.Fatal("probe rejected after cooldown")
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted")
	}

	// Failed probe: back to open, cooldown restarts.
	if !b.failure() {
		t.Fatal("failed probe did not count as a re-trip")
	}
	if b.allow() {
		t.Fatal("admitted right after failed probe")
	}
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("probe rejected after second cooldown")
	}

	// Successful probe: fully closed again.
	b.success()
	if b.state() != breakerClosed {
		t.Fatalf("state %d, want closed", b.state())
	}
	if !b.allow() {
		t.Fatal("closed breaker rejected")
	}
}
