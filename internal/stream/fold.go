package stream

import (
	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/hashtbl"
	"memagg/internal/morsel"
	"memagg/internal/obs"
	"memagg/internal/radix"
)

// srcPartial locates one delta group during a fold: the partial plus the
// arena its buffered values live in.
type srcPartial struct {
	p  *agg.Partial
	ar *arena.Arena
}

// foldParts folds base plus the sealed deltas ds into per-partition
// tables, the shared core of the merger's generation builds and the
// snapshot query path. The deltas' groups are flattened into key/index
// columns and scattered with the Hash_RX partitioner (radix.Partition) by
// the base generation's MergeBits; each partition is then rebuilt
// independently — copy of the base partition, then the delta groups that
// landed there — across workers on the morsel partition cursor. Partitions
// that received no delta groups are shared with the base unchanged (both
// are immutable, so structural sharing is free): a query that lands just
// after a small seal rebuilds only the partitions the delta touched, not
// the whole base.
func (s *Stream) foldParts(base *generation, ds []*delta, workers int) []table {
	bits := s.cfg.MergeBits
	holistic := s.cfg.Holistic

	total := 0
	for _, d := range ds {
		total += d.t.Len()
	}
	keys := make([]uint64, 0, total)
	idxs := make([]uint64, 0, total)
	refs := make([]srcPartial, 0, total)
	for _, d := range ds {
		ar := d.ar
		d.t.Iterate(func(k uint64, p *agg.Partial) bool {
			keys = append(keys, k)
			idxs = append(idxs, uint64(len(refs)))
			refs = append(refs, srcPartial{p: p, ar: ar})
			return true
		})
	}

	pt := radix.Partition(keys, idxs, bits, workers)
	p := pt.NumPartitions()
	parts := make([]table, p)
	morsel.Parts(p, workers, func(_, q int) {
		var bp table
		baseLen := 0
		if base != nil {
			bp = base.parts[q]
			if bp.t != nil {
				baseLen = bp.t.Len()
			}
		}
		pk, pi := pt.PartKeys(q), pt.PartVals(q)
		if len(pk) == 0 {
			parts[q] = bp // untouched: share with the base
			return
		}
		nt := table{
			t:  hashtbl.NewLinearProbe[agg.Partial](baseLen + len(pk)),
			ar: arena.New(),
		}
		if bp.t != nil {
			mergeTable(nt, bp, holistic)
		}
		// The delta groups land via the same blocked-hash loop as the
		// batch kernels: pk is a plain column, so the blocks need no
		// staging.
		var h [hashtbl.HashBatch]uint64
		j := 0
		for ; j+hashtbl.HashBatch <= len(pk); j += hashtbl.HashBatch {
			bk := pk[j : j+hashtbl.HashBatch : j+hashtbl.HashBatch]
			hashtbl.MixBatch(&h, bk)
			for jj, k := range bk {
				r := refs[pi[j+jj]]
				np := nt.t.UpsertH(k, h[jj])
				np.Merge(r.p)
				if holistic {
					np.MergeValues(nt.ar, r.p, r.ar)
				}
			}
		}
		for ; j < len(pk); j++ {
			r := refs[pi[j]]
			np := nt.t.Upsert(pk[j])
			np.Merge(r.p)
			if holistic {
				np.MergeValues(nt.ar, r.p, r.ar)
			}
		}
		parts[q] = nt
	})
	return parts
}

// sources returns the view's key-disjoint source tables, folding on first
// use. With no unmerged deltas the base generation's partitions serve
// directly (zero copy); otherwise the first query over any snapshot of
// this view runs the partition-wise fold at the stream's query
// parallelism, and every later snapshot of the view reuses the result.
func (v *view) sources(s *Stream) []table {
	v.fold.Do(func() {
		if len(v.sealed) == 0 {
			if v.base != nil {
				v.srcs = v.base.parts
			}
			return
		}
		mk := obs.Start()
		v.srcs = s.foldParts(v.base, v.sealed, s.cfg.QueryWorkers)
		mk.Tick(s.m.queryFoldLat)
	})
	return v.srcs
}
