package stream

import (
	"testing"

	"memagg/internal/wal"
)

// FuzzWALRecovery is the end-to-end recovery fuzzer: a valid WAL is
// damaged at a fuzzed position (bit-flip and/or truncation of one
// segment), then a stream is opened over the wreckage. The contract
// under test: recovery never panics, never errors on segment damage,
// and the recovered aggregates are exactly those of the longest input
// prefix the log still proves — never a wrong answer for any key.
func FuzzWALRecovery(f *testing.F) {
	f.Add(uint16(0), byte(0x01), uint16(0))
	f.Add(uint16(500), byte(0x80), uint16(0))
	f.Add(uint16(0), byte(0), uint16(9))
	f.Add(uint16(2000), byte(0xff), uint16(33))
	f.Add(uint16(65535), byte(0x10), uint16(65535))

	const (
		rows = 600
		mod  = 23
	)
	f.Fuzz(func(t *testing.T, pos uint16, xor byte, cut uint16) {
		// Build the reference log directly: one multi-row record per
		// "delta" of 40 rows, watermark = rows appended so far. Writing
		// through the wal package (not a live stream) keeps each fuzz
		// execution deterministic and cheap.
		fs := wal.NewMemFS()
		l, err := wal.Open("data/wal", wal.Options{FS: fs, SyncPolicy: wal.SyncAlways, SegmentBytes: 2048}, nil)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]uint64, rows)
		vals := make([]uint64, rows)
		for i := range keys {
			keys[i] = uint64(i % mod)
			vals[i] = uint64(i)*7 + 1
		}
		const deltaRows = 40
		for lo := 0; lo < rows; lo += deltaRows {
			hi := lo + deltaRows
			rec := wal.Record{EndWatermark: uint64(hi), Keys: keys[lo:hi], Vals: vals[lo:hi]}
			if err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		l.Close()

		// Damage one segment at the fuzzed offset.
		names, err := fs.ReadDir("data/wal")
		if err != nil {
			t.Fatal(err)
		}
		var segs []string
		for _, name := range names {
			if name != "MANIFEST" {
				segs = append(segs, name)
			}
		}
		var total int
		sizes := make([]int, len(segs))
		for i, name := range segs {
			sizes[i] = len(fs.Bytes("data/wal/" + name))
			total += sizes[i]
		}
		off := int(pos) % total
		seg := 0
		for off >= sizes[seg] {
			off -= sizes[seg]
			seg++
		}
		name := "data/wal/" + segs[seg]
		data := fs.Bytes(name)
		if xor != 0 {
			data[off] ^= xor
		}
		if cut != 0 {
			data = data[:len(data)-int(cut)%len(data)]
		}
		fs.SetBytes(name, data)

		// Recover. CheckpointEvery -1 keeps this WAL-only, so the whole
		// recovered state is what the damaged log proves.
		cfg := Config{
			Shards: 1, QueueDepth: 4, SealRows: 64, MergeBits: 4, Holistic: true,
			Durability: Durability{Dir: "data", FS: fs, SyncPolicy: wal.SyncNone, CheckpointEvery: -1},
		}
		s, err := Open(cfg)
		if err != nil {
			t.Fatalf("recovery errored instead of truncating: %v", err)
		}
		defer s.Close()

		sn := s.Snapshot()
		w := sn.Watermark()
		if w > rows || w%deltaRows != 0 {
			t.Fatalf("recovered watermark %d: not a record boundary of a %d-row log", w, rows)
		}
		if w == 0 {
			if n := sn.Count(); n != 0 {
				t.Fatalf("empty recovery reports %d rows", n)
			}
			return
		}
		checkAgainstBatch(t, "recovered", sn, keys[:w], vals[:w])
	})
}
