package stream

import (
	"sync"
	"testing"

	"memagg/internal/agg"
)

// TestAppendChunkOwnedEquivalence feeds the same rows through the copying
// and ownership-transfer paths and requires identical aggregate state —
// including the zero-extension of a short value column, which the owned
// path must materialize itself (the transferred slice cannot be grown in
// place).
func TestAppendChunkOwnedEquivalence(t *testing.T) {
	const batches, rows = 50, 200
	mk := func(b int) agg.Chunk {
		c := agg.Chunk{Keys: make([]uint64, rows), Vals: make([]uint64, rows-b%7)}
		for i := range c.Keys {
			c.Keys[i] = uint64((b*rows + i) % 97)
			if i < len(c.Vals) {
				c.Vals[i] = uint64(b + i)
			}
		}
		return c
	}

	copied := New(Config{Shards: 1, SealRows: 1 << 9})
	owned := New(Config{Shards: 1, SealRows: 1 << 9})
	for b := 0; b < batches; b++ {
		if err := copied.AppendChunk(mk(b), false); err != nil {
			t.Fatal(err)
		}
		if err := owned.AppendChunk(mk(b), true); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []*Stream{copied, owned} {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	a, b := copied.Snapshot(), owned.Snapshot()
	if a.Watermark() != b.Watermark() || a.Groups() != b.Groups() {
		t.Fatalf("watermark/groups: copied %d/%d, owned %d/%d",
			a.Watermark(), a.Groups(), b.Watermark(), b.Groups())
	}
	ra, rb := a.Reduce(agg.OpSum), b.Reduce(agg.OpSum)
	sums := make(map[uint64]uint64, len(ra))
	for _, g := range ra {
		sums[g.Key] = g.Val
	}
	for _, g := range rb {
		if sums[g.Key] != g.Val {
			t.Fatalf("key %d: copied sum %d, owned sum %d", g.Key, sums[g.Key], g.Val)
		}
	}
}

// TestAppendChunkPoolRecycling hammers concurrent producers through both
// chunk paths on a multi-shard stream so the buffer pool recycles across
// shards while the race detector watches; the row accounting at the end
// catches any chunk lost or double-counted through the pool.
func TestAppendChunkPoolRecycling(t *testing.T) {
	s := New(Config{Shards: 4, QueueDepth: 2, SealRows: 512})
	const producers, batches, rows = 4, 60, 128
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				c := agg.Chunk{Keys: make([]uint64, rows), Vals: make([]uint64, rows)}
				for i := range c.Keys {
					c.Keys[i] = uint64(i % 31)
					c.Vals[i] = 1
				}
				// Alternate modes so pooled buffers flow between the
				// copying path and ownership transfer.
				if err := s.AppendChunk(c, b%2 == 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := uint64(producers * batches * rows)
	if st := s.Stats(); st.Ingested != want || st.Watermark != want {
		t.Fatalf("ingested/watermark = %d/%d want %d", st.Ingested, st.Watermark, want)
	}
	var total uint64
	for _, g := range s.Snapshot().Reduce(agg.OpSum) {
		total += g.Val
	}
	if total != want {
		t.Fatalf("sum of vals = %d want %d", total, want)
	}
}

// TestAppendChunkRejectsInvalid pins the Validate contract at the stream
// boundary: a value column longer than the key column is refused.
func TestAppendChunkRejectsInvalid(t *testing.T) {
	s := New(Config{Shards: 1})
	defer s.Close()
	err := s.AppendChunk(agg.Chunk{Keys: []uint64{1}, Vals: []uint64{1, 2}}, false)
	if err == nil {
		t.Fatal("invalid chunk accepted")
	}
	if st := s.Stats(); st.Ingested != 0 {
		t.Fatalf("rejected chunk counted: ingested = %d", st.Ingested)
	}
}
