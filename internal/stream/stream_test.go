package stream

import (
	"sync"
	"testing"
	"time"

	"memagg/internal/agg"
)

// TestBackpressureBlocksNotDrops is the bounded-queue contract: with a
// stalled shard and a full queue, Append BLOCKS — it neither returns an
// error nor drops rows — and unblocks as soon as the shard drains. Every
// appended row must be accounted for at the end.
func TestBackpressureBlocksNotDrops(t *testing.T) {
	gate := make(chan struct{})
	var stalled sync.Once
	entered := make(chan struct{})
	s := New(Config{
		Shards:     1,
		QueueDepth: 1,
		SealRows:   1 << 20, // never seal on size; only Flush seals
		testBatchHook: func() {
			stalled.Do(func() {
				close(entered)
				<-gate
			})
		},
	})

	keys := []uint64{1, 2, 3}
	vals := []uint64{10, 20, 30}

	// Batch 1 occupies the shard goroutine (the hook stalls it), batch 2
	// fills the depth-1 queue.
	if err := s.Append(keys, vals); err != nil {
		t.Fatal(err)
	}
	<-entered
	if err := s.Append(keys, vals); err != nil {
		t.Fatal(err)
	}

	// Batch 3 has nowhere to go: Append must block.
	done := make(chan error, 1)
	go func() { done <- s.Append(keys, vals) }()
	select {
	case err := <-done:
		t.Fatalf("Append returned (%v) with a full queue; want it to block", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Drain the shard: the blocked Append must complete promptly.
	close(gate)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Append still blocked after the shard drained")
	}

	// Nothing was dropped: after a flush every appended row is visible.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	want := uint64(3 * len(keys))
	if st.Ingested != want || st.Watermark != want {
		t.Fatalf("ingested/watermark = %d/%d want %d/%d", st.Ingested, st.Watermark, want, want)
	}
	var total uint64
	for _, g := range s.Snapshot().CountByKey() {
		total += g.Count
	}
	if total != want {
		t.Fatalf("rows visible to snapshot = %d want %d", total, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWatermarkMonotonic hammers a small-seal stream with concurrent
// producers while a poller checks that the watermark never moves backwards
// (across seal installs AND merge installs) and never overtakes the
// ingested count.
func TestWatermarkMonotonic(t *testing.T) {
	s := New(Config{Shards: 2, QueueDepth: 2, SealRows: 256, MergeBits: 4})

	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		var last uint64
		for {
			st := s.Stats()
			if st.Watermark < last {
				panic("watermark moved backwards")
			}
			if st.Watermark > st.Ingested {
				panic("watermark overtook ingested")
			}
			last = st.Watermark
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	const producers, batches, batchLen = 3, 40, 100
	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			keys := make([]uint64, batchLen)
			vals := make([]uint64, batchLen)
			for b := 0; b < batches; b++ {
				for i := range keys {
					keys[i] = uint64(p*batches*batchLen + b*batchLen + i)
					vals[i] = uint64(i)
				}
				if err := s.Append(keys, vals); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	prodWG.Wait()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	pollWG.Wait()

	want := uint64(producers * batches * batchLen)
	if st := s.Stats(); st.Watermark != want {
		t.Fatalf("watermark after flush = %d want %d", st.Watermark, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close folds everything into one final generation.
	st := s.Stats()
	if st.SealedPending != 0 {
		t.Fatalf("sealed deltas after Close = %d want 0", st.SealedPending)
	}
	if st.Groups != int(want) {
		t.Fatalf("groups after Close = %d want %d (all keys distinct)", st.Groups, want)
	}
}

// TestClosedStream checks the Close contract: second Close, Append and
// Flush all return ErrClosed, while Snapshot/Stats keep serving.
func TestClosedStream(t *testing.T) {
	s := New(Config{Shards: 1})
	if err := s.Append([]uint64{7, 7, 9}, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != ErrClosed {
		t.Fatalf("second Close = %v want ErrClosed", err)
	}
	if err := s.Append([]uint64{1}, []uint64{1}); err != ErrClosed {
		t.Fatalf("Append after Close = %v want ErrClosed", err)
	}
	if err := s.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close = %v want ErrClosed", err)
	}
	sn := s.Snapshot()
	if sn.Watermark() != 3 || sn.Groups() != 2 {
		t.Fatalf("post-Close snapshot watermark/groups = %d/%d want 3/2", sn.Watermark(), sn.Groups())
	}
}

// TestAppendZeroExtendsVals mirrors the batch operators' short-vals
// convention: missing values aggregate as zero.
func TestAppendZeroExtendsVals(t *testing.T) {
	s := New(Config{Shards: 1})
	if err := s.Append([]uint64{5, 5, 5}, []uint64{4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(nil, nil); err != nil { // empty batch is a no-op
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	rows := sn.Reduce(agg.OpSum)
	if len(rows) != 1 || rows[0].Key != 5 || rows[0].Val != 4 {
		t.Fatalf("sum rows = %+v want [{5 4}]", rows)
	}
	if sn.Count() != 3 {
		t.Fatalf("count = %d want 3", sn.Count())
	}
}
