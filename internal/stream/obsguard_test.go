package stream

import (
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"memagg/internal/dataset"
	"memagg/internal/obs"
)

// ingestOnce pushes the whole dataset through a fresh stream with one
// producer per shard and returns the wall time from first Append to Flush
// return. SealRows is set past the dataset so no seal/merge cycles run:
// the guard isolates the Append hot path, where the timing instruments
// live, from the background pipeline's scheduling noise.
func ingestOnce(tb testing.TB, keys, vals []uint64, shards, batchLen int) time.Duration {
	s := New(Config{Shards: shards, QueueDepth: 8, SealRows: 1 << 21, MergeBits: 6})
	defer func() {
		if err := s.Close(); err != nil {
			tb.Fatal(err)
		}
	}()
	start := time.Now()
	var wg sync.WaitGroup
	per := len(keys) / shards
	for p := 0; p < shards; p++ {
		lo, hi := p*per, (p+1)*per
		if p == shards-1 {
			hi = len(keys)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i += batchLen {
				j := i + batchLen
				if j > hi {
					j = hi
				}
				if err := s.Append(keys[i:j], vals[i:j]); err != nil {
					tb.Error(err)
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if err := s.Flush(); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start)
}

// TestObsOverheadGuard proves the timing instrumentation is cheap: it
// ingests the same workload with the timing layer on and off
// (obs.SetDisabled) and fails when the instrumented run is more than 5%
// slower than the disabled one (budget: <2% expected, 5% allowed for
// scheduler noise). Wall-clock ratios are inherently noisy, so the guard
// only runs when MEMAGG_OBS_GUARD=1 — scripts/ci.sh sets it; a plain
// `go test ./...` skips.
func TestObsOverheadGuard(t *testing.T) {
	if os.Getenv("MEMAGG_OBS_GUARD") != "1" {
		t.Skip("set MEMAGG_OBS_GUARD=1 to run the obs overhead guard")
	}
	const shards, batchLen = 1, 4096
	spec := dataset.Spec{Kind: dataset.RseqShf, N: 1_000_000, Cardinality: 100_000, Seed: 71}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)

	// One writer shard keeps the run near-deterministic (no producer/merger
	// time-sharing to randomize the clock); a GC before each run stops one
	// mode from paying the other's garbage. Warm both paths once, then keep
	// the per-mode minimum: the least interfered-with run is the honest
	// cost of each configuration.
	ingestOnce(t, keys, vals, shards, batchLen)
	measure := func(rounds int) float64 {
		best := map[bool]time.Duration{}
		for r := 0; r < rounds; r++ {
			for _, disabled := range []bool{false, true} {
				obs.SetDisabled(disabled)
				runtime.GC()
				el := ingestOnce(t, keys, vals, shards, batchLen)
				if cur, ok := best[disabled]; !ok || el < cur {
					best[disabled] = el
				}
			}
		}
		ratio := float64(best[false]) / float64(best[true])
		t.Logf("instrumented=%v disabled=%v ratio=%.4f", best[false], best[true], ratio)
		return ratio
	}
	defer obs.SetDisabled(false)

	ratio := measure(7)
	if ratio > 1.05 {
		// A real regression reproduces; a scheduler hiccup does not. Confirm
		// over a longer pass before failing.
		ratio = measure(14)
	}
	if ratio > 1.05 {
		t.Fatalf("instrumented ingest is %.1f%% slower than disabled (budget 5%%, confirmed twice)",
			(ratio-1)*100)
	}
}

// BenchmarkStreamIngestDisabled is BenchmarkStreamIngest's counterpart
// with the timing instruments off — diff the two to read the overhead
// directly:
//
//	go test ./internal/stream/ -bench 'StreamIngest(Disabled)?/shards=4' -benchtime 1000000x
func BenchmarkStreamIngestDisabled(b *testing.B) {
	obs.SetDisabled(true)
	defer obs.SetDisabled(false)
	BenchmarkStreamIngest(b)
}
