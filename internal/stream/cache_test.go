package stream

import (
	"reflect"
	"sync"
	"testing"

	"memagg/internal/agg"
	"memagg/internal/dataset"
)

func cacheTestData(n, card int, seed uint64) ([]uint64, []uint64) {
	spec := dataset.Spec{Kind: dataset.RseqShf, N: n, Cardinality: card, Seed: seed}
	keys := spec.Keys()
	return keys, dataset.Values(len(keys), seed)
}

// TestQueryCacheSingleFlight proves concurrent identical queries against
// snapshots of one view compute once: every goroutine gets the exact
// cached rows (the same backing array), and the miss counter records a
// single compute.
func TestQueryCacheSingleFlight(t *testing.T) {
	keys, vals := cacheTestData(30_000, 5_000, 101)
	s := layeredStream(t, Config{SealRows: 1 << 12, MergeBits: 5}, keys, vals, len(keys)/2)
	defer s.Close()

	const goroutines = 16
	results := make([][]agg.GroupCount, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = s.Snapshot().CountByKey()
		}(g)
	}
	wg.Wait()

	first := results[0]
	if len(first) == 0 {
		t.Fatal("empty Q1 result")
	}
	for g, r := range results {
		if &r[0] != &first[0] || len(r) != len(first) {
			t.Fatalf("goroutine %d got a different slice than the cached one", g)
		}
	}
	st := s.Stats()
	if st.QueryCacheMisses != 1 {
		t.Errorf("misses = %d, want 1 (single-flight)", st.QueryCacheMisses)
	}
	if st.QueryCacheHits != goroutines-1 {
		t.Errorf("hits = %d, want %d", st.QueryCacheHits, goroutines-1)
	}
}

// TestQueryCacheWatermarkIsolation proves cached results never cross
// watermarks: a snapshot taken before new rows seal keeps serving its
// exact original rows, while a snapshot of the advanced view computes
// fresh results at the new watermark.
func TestQueryCacheWatermarkIsolation(t *testing.T) {
	keys, vals := cacheTestData(20_000, 4_000, 102)
	s := layeredStream(t, Config{SealRows: 1 << 11, MergeBits: 5}, keys, vals, len(keys)/2)
	defer s.Close()

	oldSn := s.Snapshot()
	oldRows := oldSn.CountByKey()
	oldWM := oldSn.Watermark()

	// Advance the stream: the new seal installs a new view with a fresh
	// cache at a higher watermark.
	extra := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := s.Append(extra, extra); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	newSn := s.Snapshot()
	if newSn.Watermark() != oldWM+uint64(len(extra)) {
		t.Fatalf("new watermark %d, want %d", newSn.Watermark(), oldWM+uint64(len(extra)))
	}
	newRows := newSn.CountByKey()
	if len(newRows) > 0 && len(oldRows) > 0 && &newRows[0] == &oldRows[0] {
		t.Fatal("new view served the old view's cached slice")
	}
	var newTotal uint64
	for _, r := range newRows {
		newTotal += r.Count
	}
	if newTotal != newSn.Watermark() {
		t.Fatalf("new Q1 total %d != new watermark %d", newTotal, newSn.Watermark())
	}

	// The old snapshot still answers from its own view's cache: the very
	// same slice, still consistent with the old watermark.
	again := oldSn.CountByKey()
	if &again[0] != &oldRows[0] {
		t.Fatal("old snapshot recomputed instead of serving its cached rows")
	}
	var oldTotal uint64
	for _, r := range again {
		oldTotal += r.Count
	}
	if oldTotal != oldWM {
		t.Fatalf("old Q1 total %d != old watermark %d", oldTotal, oldWM)
	}
}

// TestQueryCacheParamsKeyed proves parameterized queries occupy distinct
// cache slots: different CountRange bounds and quantiles must not collide.
func TestQueryCacheParamsKeyed(t *testing.T) {
	keys, vals := cacheTestData(10_000, 2_000, 103)
	s := layeredStream(t, Config{SealRows: 1 << 11, MergeBits: 5, Holistic: true},
		keys, vals, len(keys)/2)
	defer s.Close()
	sn := s.Snapshot()

	full, err := sn.CountRange(0, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("empty full-range result")
	}
	// Split at the median key of the full result so the narrow range is a
	// strict subset regardless of the key domain.
	narrow, err := sn.CountRange(0, full[len(full)/2].Key)
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow) >= len(full) {
		t.Fatalf("narrow range (%d rows) not narrower than full (%d): params collided?",
			len(narrow), len(full))
	}
	p50, err := sn.QuantileByKey(0.5)
	if err != nil {
		t.Fatal(err)
	}
	p99, err := sn.QuantileByKey(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p50, p99) {
		t.Fatal("p50 and p99 identical: quantile parameter not in the cache key")
	}
}

// TestQueryCacheEviction proves the per-view capacity bound: with a
// 2-entry cache, a third distinct query evicts the oldest, and re-running
// the evicted query recomputes (a fresh miss, equal rows).
func TestQueryCacheEviction(t *testing.T) {
	keys, vals := cacheTestData(10_000, 2_000, 104)
	s := layeredStream(t, Config{SealRows: 1 << 11, MergeBits: 5, QueryCacheEntries: 2},
		keys, vals, len(keys)/2)
	defer s.Close()
	sn := s.Snapshot()

	q1 := sn.CountByKey()    // miss 1
	_ = sn.AvgByKey()        // miss 2 (cache full)
	_ = sn.Reduce(agg.OpSum) // miss 3, evicts Q1
	st := s.Stats()
	if st.QueryCacheEvictions == 0 {
		t.Fatalf("no evictions after %d distinct queries in a 2-entry cache", 3)
	}
	q1again := sn.CountByKey() // recompute: fresh rows, equal values
	if &q1again[0] == &q1[0] {
		t.Fatal("evicted query served the old slice")
	}
	if !reflect.DeepEqual(q1again, q1) {
		t.Fatal("recomputed Q1 differs from the original")
	}
	if got := s.Stats().QueryCacheMisses; got != 4 {
		t.Errorf("misses = %d, want 4 (three initial + one post-eviction)", got)
	}
}

// TestQueryCacheDisabled proves QueryCacheEntries < 0 turns memoization
// off: repeated queries allocate fresh results and the counters stay
// untouched.
func TestQueryCacheDisabled(t *testing.T) {
	keys, vals := cacheTestData(10_000, 2_000, 105)
	s := layeredStream(t, Config{SealRows: 1 << 11, MergeBits: 5, QueryCacheEntries: -1},
		keys, vals, len(keys)/2)
	defer s.Close()
	sn := s.Snapshot()

	a := sn.CountByKey()
	b := sn.CountByKey()
	if &a[0] == &b[0] {
		t.Fatal("cache disabled but queries share a slice")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("repeated queries disagree")
	}
	st := s.Stats()
	if st.QueryCacheHits != 0 || st.QueryCacheMisses != 0 {
		t.Errorf("cache counters moved while disabled: hits=%d misses=%d",
			st.QueryCacheHits, st.QueryCacheMisses)
	}
}
