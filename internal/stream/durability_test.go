package stream

import (
	"errors"
	"fmt"
	"testing"

	"memagg/internal/dataset"
	"memagg/internal/wal"
)

// durableConfig is the crash-gate configuration: one shard so publication
// order equals append order (recovered watermark W ⇒ exactly the first W
// input rows), small seals so a run exercises many WAL records, sync-always
// so every published seal is durable, and a low checkpoint cadence so runs
// cross checkpoint boundaries.
func durableConfig(fs wal.FS, checkpointEvery int) Config {
	return Config{
		Shards:     1,
		QueueDepth: 4,
		SealRows:   512,
		MergeBits:  4,
		Holistic:   true,
		Durability: Durability{
			Dir:             "data",
			FS:              fs,
			SyncPolicy:      wal.SyncAlways,
			SegmentBytes:    8 << 10, // force rotations
			CheckpointEvery: checkpointEvery,
		},
	}
}

// gateData is the input the recovery tests replay: a skewed key set with
// enough rows for several seals, rotations and checkpoints.
func gateData() ([]uint64, []uint64) {
	spec := dataset.Spec{Kind: dataset.Zipf, N: 12_000, Cardinality: 300, Seed: 71}
	keys := spec.Keys()
	return keys, dataset.Values(len(keys), spec.Seed)
}

// ingestUntilError appends keys/vals in fixed-size batches with periodic
// flushes, stopping at the first error (the degradation point when a fault
// is armed). Returns the error, nil when the whole input went in.
func ingestUntilError(s *Stream, keys, vals []uint64) error {
	const batchRows = 300
	for off := 0; off < len(keys); off += batchRows {
		end := off + batchRows
		if end > len(keys) {
			end = len(keys)
		}
		if err := s.Append(keys[off:end], vals[off:end]); err != nil {
			return err
		}
		if (off/batchRows)%3 == 2 {
			if err := s.Flush(); err != nil {
				return err
			}
		}
	}
	return s.Flush()
}

// checkRecoveredPrefix reopens the durability dir and asserts the
// recovered state is byte-for-byte the aggregate of the first W input rows
// for the recovered watermark W — the crash-recovery equivalence property.
func checkRecoveredPrefix(t *testing.T, label string, fs wal.FS, checkpointEvery int, keys, vals []uint64) uint64 {
	t.Helper()
	s, err := Open(durableConfig(fs, checkpointEvery))
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer s.Close()
	sn := s.Snapshot()
	w := sn.Watermark()
	if w > uint64(len(keys)) {
		t.Fatalf("%s: recovered watermark %d exceeds input %d", label, w, len(keys))
	}
	if w == 0 {
		if n := sn.Count(); n != 0 {
			t.Fatalf("%s: empty watermark but %d rows visible", label, n)
		}
		return 0
	}
	checkAgainstBatch(t, label, sn, keys[:w], vals[:w])
	return w
}

func TestDurableRoundTrip(t *testing.T) {
	keys, vals := gateData()
	fs := wal.NewMemFS()
	s, err := Open(durableConfig(fs, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if err := ingestUntilError(s, keys, vals); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if !st.Durable || st.ReadOnly {
		t.Fatalf("stats: Durable=%v ReadOnly=%v", st.Durable, st.ReadOnly)
	}
	if st.WALAppends == 0 || st.WALFsyncs == 0 {
		t.Fatalf("no WAL activity recorded: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Graceful close wrote a final checkpoint covering everything.
	if cw := s.Stats().CheckpointWatermark; cw != uint64(len(keys)) {
		t.Fatalf("final checkpoint watermark %d, want %d", cw, len(keys))
	}
	if w := checkRecoveredPrefix(t, "round-trip", fs, 3000, keys, vals); w != uint64(len(keys)) {
		t.Fatalf("recovered watermark %d, want full %d", w, len(keys))
	}
}

func TestWALOnlyRecovery(t *testing.T) {
	// CheckpointEvery < 0: no checkpoints at all, recovery replays the
	// entire log.
	keys, vals := gateData()
	fs := wal.NewMemFS()
	s, err := Open(durableConfig(fs, -1))
	if err != nil {
		t.Fatal(err)
	}
	if err := ingestUntilError(s, keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Checkpoints != 0 || st.CheckpointWatermark != 0 {
		t.Fatalf("WAL-only stream checkpointed: %+v", st)
	}
	if w := checkRecoveredPrefix(t, "wal-only", fs, -1, keys, vals); w != uint64(len(keys)) {
		t.Fatalf("recovered watermark %d, want full %d", w, len(keys))
	}
}

func TestReopenContinueReopen(t *testing.T) {
	// Restart mid-stream: checkpoint + WAL suffix must compose with rows
	// ingested after the reopen.
	keys, vals := gateData()
	half := len(keys) / 2
	fs := wal.NewMemFS()

	s, err := Open(durableConfig(fs, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if err := ingestUntilError(s, keys[:half], vals[:half]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(durableConfig(fs, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if w := s2.Snapshot().Watermark(); w != uint64(half) {
		t.Fatalf("watermark after reopen %d, want %d", w, half)
	}
	if err := ingestUntilError(s2, keys[half:], vals[half:]); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	if w := checkRecoveredPrefix(t, "reopen-continue", fs, 3000, keys, vals); w != uint64(len(keys)) {
		t.Fatalf("recovered watermark %d, want full %d", w, len(keys))
	}
}

// TestCrashRecoveryEquivalence is the kill-and-replay gate: a fault is
// injected at many different points — WAL writes, fsyncs, renames (which
// hit both segment-rotation manifests and checkpoint CURRENT swaps), with
// and without torn writes — and after each simulated crash the reopened
// stream must answer every Q1–Q7 exactly as a batch engine over the first
// W input rows, where W is whatever watermark recovery reports. The fault
// filesystem fails everything after the trip, so the bytes the reopen sees
// are exactly the bytes that reached "disk" before the crash.
func TestCrashRecoveryEquivalence(t *testing.T) {
	keys, vals := gateData()
	type scenario struct {
		op      wal.Op
		n       int
		partial bool
	}
	var scenarios []scenario
	for _, n := range []int{1, 2, 5, 12, 30} {
		scenarios = append(scenarios, scenario{op: wal.OpWrite, n: n})
	}
	scenarios = append(scenarios,
		scenario{op: wal.OpWrite, n: 3, partial: true},
		scenario{op: wal.OpWrite, n: 17, partial: true},
		scenario{op: wal.OpSync, n: 1},
		scenario{op: wal.OpSync, n: 8},
		// Renames: 1 hits the WAL's opening manifest swap; later counts hit
		// rotation manifests and checkpoint CURRENT swaps mid-run.
		scenario{op: wal.OpRename, n: 1},
		scenario{op: wal.OpRename, n: 2},
		scenario{op: wal.OpRename, n: 4},
		scenario{op: wal.OpCreate, n: 3},
	)

	for _, sc := range scenarios {
		label := fmt.Sprintf("crash/%v-%d/partial=%v", sc.op, sc.n, sc.partial)
		t.Run(label, func(t *testing.T) {
			mem := wal.NewMemFS()
			efs := wal.NewErrFS(mem)
			efs.SetPartialWrites(sc.partial)
			efs.FailAfter(sc.op, sc.n)

			s, err := Open(durableConfig(efs, 3000))
			if err != nil {
				// The fault fired during Open itself (e.g. the opening
				// manifest swap): nothing was acknowledged, recovery from
				// the untouched FS must yield the empty stream.
				if w := checkRecoveredPrefix(t, label, mem, 3000, keys, vals); w != 0 {
					t.Fatalf("rows recovered from a stream that never opened: %d", w)
				}
				return
			}
			ingestErr := ingestUntilError(s, keys, vals)
			if ingestErr != nil && !errors.Is(ingestErr, ErrDurability) {
				t.Fatalf("ingest failed with non-durability error: %v", ingestErr)
			}
			if ingestErr != nil {
				// Degraded, not closed: snapshots must still serve.
				if !s.ReadOnly() {
					t.Fatal("ingest refused but ReadOnly() is false")
				}
				_ = s.Snapshot().Count()
				if !s.Stats().ReadOnly {
					t.Fatal("Stats().ReadOnly is false on a degraded stream")
				}
			}
			// Close releases goroutines; the tripped FS swallows any further
			// writes, so this is equivalent to a hard kill as far as the
			// recovered bytes are concerned.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			w := checkRecoveredPrefix(t, label, mem, 3000, keys, vals)
			if ingestErr == nil && w != uint64(len(keys)) {
				t.Fatalf("no fault observed during ingest but only %d/%d rows recovered", w, len(keys))
			}
		})
	}
}

// TestCorruptTailRecoversPrefix bit-flips the tail of a closed stream's
// WAL and asserts recovery serves the longest valid prefix — never an
// error, never wrong aggregates.
func TestCorruptTailRecoversPrefix(t *testing.T) {
	keys, vals := gateData()
	fs := wal.NewMemFS()
	s, err := Open(durableConfig(fs, -1)) // WAL-only: the log is the state
	if err != nil {
		t.Fatal(err)
	}
	if err := ingestUntilError(s, keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Find the last (active) segment and flip a byte near its end.
	segs, err := fs.ReadDir("data/wal")
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, n := range segs {
		if n != "MANIFEST" && (last == "" || n > last) {
			last = n
		}
	}
	name := "data/wal/" + last
	data := fs.Bytes(name)
	if len(data) == 0 {
		t.Fatalf("empty active segment %s", name)
	}
	data[len(data)-9] ^= 0x20
	fs.SetBytes(name, data)

	w := checkRecoveredPrefix(t, "corrupt-tail", fs, -1, keys, vals)
	if w == 0 || w >= uint64(len(keys)) {
		t.Fatalf("corrupt tail recovered watermark %d of %d, want a proper prefix", w, len(keys))
	}
}

// TestDegradedStreamKeepsServing pins down the graceful-degradation
// contract: after the WAL becomes unwritable, Append and Flush fail with
// ErrDurability (carrying the cause), queries and Stats keep working, and
// Close still succeeds.
func TestDegradedStreamKeepsServing(t *testing.T) {
	keys, vals := gateData()
	mem := wal.NewMemFS()
	efs := wal.NewErrFS(mem)
	s, err := Open(durableConfig(efs, -1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(keys[:1000], vals[:1000]); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before := s.Snapshot().Watermark()

	efs.Cut() // disk dies now
	// Drive ingest until the seal path observes the failure.
	var ingestErr error
	for i := 0; i < 100 && ingestErr == nil; i++ {
		if err := s.Append(keys[:600], vals[:600]); err != nil {
			ingestErr = err
			break
		}
		ingestErr = s.Flush()
	}
	if !errors.Is(ingestErr, ErrDurability) {
		t.Fatalf("ingest after disk failure: %v, want ErrDurability", ingestErr)
	}
	if !errors.Is(ingestErr, wal.ErrInjected) {
		t.Fatalf("degradation cause not carried: %v", ingestErr)
	}
	if !s.ReadOnly() {
		t.Fatal("ReadOnly() false after degradation")
	}
	if w := s.Snapshot().Watermark(); w < before {
		t.Fatalf("watermark went backwards after degradation: %d < %d", w, before)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Whatever was durable before the cut recovers cleanly.
	w := checkRecoveredPrefix(t, "degraded", mem, -1, keys, vals)
	if w < before {
		t.Fatalf("recovered %d rows, want at least the %d acknowledged before the cut", w, before)
	}
}

// TestHolisticMismatchRejected: a checkpoint written with holistic state
// cannot be opened by a non-holistic config (or vice versa) — the state
// shapes differ, and silently dropping value multisets would corrupt Q3.
func TestHolisticMismatchRejected(t *testing.T) {
	keys, vals := gateData()
	fs := wal.NewMemFS()
	s, err := Open(durableConfig(fs, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if err := ingestUntilError(s, keys[:3000], vals[:3000]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := durableConfig(fs, 3000)
	cfg.Holistic = false
	if _, err := Open(cfg); err == nil {
		t.Fatal("non-holistic Open of a holistic checkpoint succeeded")
	}
}

// TestNewPanicsOnDurableConfig: the volatile constructor must refuse a
// durable config instead of silently ignoring state on disk.
func TestNewPanicsOnDurableConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a durable config")
		}
	}()
	New(Config{Durability: Durability{Dir: "data"}})
}

// TestCheckpointAheadOfWALRecovery reproduces the sync=none crash shape:
// the fsync'd checkpoint survived but the WAL's unsynced tail did not, so
// on reopen the checkpoint watermark is ahead of the recovered log. The
// reopened stream must restart the log at the checkpoint baseline —
// otherwise rows acknowledged (even fsync'd) after the reopen sit past a
// watermark gap that the NEXT recovery reads as corruption and silently
// truncates.
func TestCheckpointAheadOfWALRecovery(t *testing.T) {
	keys, vals := gateData()
	mem := wal.NewMemFS()
	s, err := Open(durableConfig(mem, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if err := ingestUntilError(s, keys, vals); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // final checkpoint at len(keys)
		t.Fatal(err)
	}

	// Simulate the lost tail: replace the WAL with a log whose last record
	// sits far below the checkpoint watermark. (Its content is covered by
	// the checkpoint, so replay ignores it — only the watermark matters.)
	names, err := mem.ReadDir("data/wal")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if err := mem.Remove("data/wal/" + n); err != nil {
			t.Fatal(err)
		}
	}
	l, err := wal.Open("data/wal", wal.Options{FS: mem, SyncPolicy: wal.SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stale := wal.Record{EndWatermark: 512, Keys: make([]uint64, 512), Vals: make([]uint64, 512)}
	if err := l.Append(stale); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: checkpoint watermark len(keys), log watermark 512. Ingest
	// more (fewer rows than the checkpoint cadence, so no background
	// checkpoint runs), then hard-kill — no graceful final checkpoint.
	const extra = 2000
	efs := wal.NewErrFS(mem)
	s2, err := Open(durableConfig(efs, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if w := s2.Snapshot().Watermark(); w != uint64(len(keys)) {
		t.Fatalf("reopened watermark %d, want checkpoint %d", w, len(keys))
	}
	if err := ingestUntilError(s2, keys[:extra], vals[:extra]); err != nil {
		t.Fatal(err)
	}
	efs.Cut()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Every post-reopen row was acknowledged under sync=always: the second
	// recovery must serve all of them, not truncate at the gap.
	keys2 := append(append([]uint64{}, keys...), keys[:extra]...)
	vals2 := append(append([]uint64{}, vals...), vals[:extra]...)
	w := checkRecoveredPrefix(t, "checkpoint-ahead", mem, 3000, keys2, vals2)
	if w != uint64(len(keys2)) {
		t.Fatalf("recovered watermark %d, want %d: acknowledged rows lost after checkpoint-ahead reopen", w, len(keys2))
	}
}
