package stream

import (
	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/hashtbl"
)

// table pairs a partial-aggregate hash table with the arena its holistic
// value lists live in. A table is mutated by exactly one goroutine (its
// shard before sealing, the merger while building a generation) and is
// immutable once it appears in a view.
type table struct {
	t  *hashtbl.LinearProbe[agg.Partial]
	ar *arena.Arena
}

// mergeTable folds every group of src into dst — the table-granularity form
// of agg.Partial.Merge, used by the merger (base partition → new partition)
// and by snapshots (combining a view's sources). Iteration delivers one
// group per callback, so the batched-hash discipline of the lpBuild*
// kernels takes a staging buffer here: groups accumulate in blocks of
// hashtbl.HashBatch, each full block is Mix-hashed at once and probed with
// UpsertH, and the final short block hashes row by row.
func mergeTable(dst, src table, holistic bool) {
	var (
		h  [hashtbl.HashBatch]uint64
		ks [hashtbl.HashBatch]uint64
		ps [hashtbl.HashBatch]*agg.Partial
	)
	n := 0
	fold := func(k, hk uint64, p *agg.Partial) {
		np := dst.t.UpsertH(k, hk)
		np.Merge(p)
		if holistic {
			np.MergeValues(dst.ar, p, src.ar)
		}
	}
	src.t.Iterate(func(k uint64, p *agg.Partial) bool {
		ks[n], ps[n] = k, p
		n++
		if n == hashtbl.HashBatch {
			hashtbl.MixBatch(&h, ks[:])
			for j, bk := range ks {
				fold(bk, h[j], ps[j])
			}
			n = 0
		}
		return true
	})
	for j := 0; j < n; j++ {
		fold(ks[j], hashtbl.Mix(ks[j]), ps[j])
	}
}

// delta is one shard's in-progress (then sealed) table plus its row count.
// On durable streams it also mirrors the raw rows (keys/vals, in arrival
// order): the seal's WAL record carries rows, not aggregate state, so a
// replay rebuilds the exact delta. publish drops the mirror once the
// record is in the log.
type delta struct {
	table
	rows       uint64
	keys, vals []uint64
}

// deltaTableCap seeds a fresh delta's table when the stream has no
// cardinality estimate; LinearProbe doubles as groups arrive, so a
// low-cardinality delta stays tiny while a high-cardinality one amortizes
// its growth. With Config.EstimatedGroups set, deltaSeed sizes the table
// up front instead — a high-cardinality delta otherwise pays ~log2(groups/
// 1024) rehash passes before its first seal (BenchmarkStreamIngest
// documents the before/after).
const deltaTableCap = 1 << 10

// deltaSeed returns the capacity a fresh delta table is created with:
// the configured estimate, capped by SealRows (a delta cannot hold more
// groups than rows before it seals).
func (sh *shard) deltaSeed() int {
	est := sh.s.cfg.EstimatedGroups
	if est <= 0 {
		return deltaTableCap
	}
	if est > sh.s.cfg.SealRows {
		est = sh.s.cfg.SealRows
	}
	if est < deltaTableCap {
		return deltaTableCap
	}
	return est
}

// shard is one writer: a goroutine draining a bounded batch queue into a
// private delta, sealing it into the shared view when it reaches the
// threshold. Only the shard goroutine touches cur.
type shard struct {
	s   *Stream
	ch  chan batch
	cur *delta
	// spareKeys/spareVals are the previous delta's raw-row mirror arrays,
	// handed back by publish once the WAL record is written; the next
	// delta appends into them instead of growing fresh slices.
	spareKeys, spareVals []uint64
}

func (sh *shard) run() {
	defer sh.s.shardWG.Done()
	for b := range sh.ch {
		if hook := sh.s.cfg.testBatchHook; hook != nil {
			hook()
		}
		if b.ack != nil {
			sh.seal()
			b.ack <- struct{}{}
			continue
		}
		sh.absorb(b)
		sh.s.recycleBatch(b) // absorbed: the backing memory is free to reuse
		if sh.cur.rows >= uint64(sh.s.cfg.SealRows) {
			sh.seal()
		}
	}
	sh.seal() // Close: publish whatever is left
}

// absorb folds one batch into the current delta. The holistic check is
// hoisted out of the row loop, kernels-style, and both loops run in
// hashtbl.HashBatch-blocked form — fill a block of Mix hashes first, then
// probe with UpsertH — exactly like the batch engines' lpBuild* kernels:
// the hash multiplies of a block overlap each other and the probes'
// dependent cache misses instead of serializing row by row.
func (sh *shard) absorb(b batch) {
	if sh.cur == nil {
		sh.cur = &delta{table: table{
			t:  hashtbl.NewLinearProbe[agg.Partial](sh.deltaSeed()),
			ar: arena.New(),
		}}
		if sh.s.dur != nil {
			sh.cur.keys, sh.cur.vals = sh.spareKeys[:0], sh.spareVals[:0]
			sh.spareKeys, sh.spareVals = nil, nil
		}
	}
	t := sh.cur.t
	var h [hashtbl.HashBatch]uint64
	i := 0
	if sh.s.cfg.Holistic {
		ar := sh.cur.ar
		for ; i+hashtbl.HashBatch <= len(b.keys); i += hashtbl.HashBatch {
			bk := b.keys[i : i+hashtbl.HashBatch : i+hashtbl.HashBatch]
			bv := b.vals[i : i+hashtbl.HashBatch : i+hashtbl.HashBatch]
			hashtbl.MixBatch(&h, bk)
			for j, k := range bk {
				p := t.UpsertH(k, h[j])
				p.Observe(bv[j])
				p.Buffer(ar, bv[j])
			}
		}
		for ; i < len(b.keys); i++ {
			p := t.Upsert(b.keys[i])
			p.Observe(b.vals[i])
			p.Buffer(ar, b.vals[i])
		}
	} else {
		for ; i+hashtbl.HashBatch <= len(b.keys); i += hashtbl.HashBatch {
			bk := b.keys[i : i+hashtbl.HashBatch : i+hashtbl.HashBatch]
			bv := b.vals[i : i+hashtbl.HashBatch : i+hashtbl.HashBatch]
			hashtbl.MixBatch(&h, bk)
			for j, k := range bk {
				t.UpsertH(k, h[j]).Observe(bv[j])
			}
		}
		for ; i < len(b.keys); i++ {
			t.Upsert(b.keys[i]).Observe(b.vals[i])
		}
	}
	sh.cur.rows += uint64(len(b.keys))
	if sh.s.dur != nil {
		sh.cur.keys = append(sh.cur.keys, b.keys...)
		sh.cur.vals = append(sh.cur.vals, b.vals...)
	}
}

// seal freezes the current delta and publishes it into the queryable view.
// From here on the delta is immutable: the shard starts a fresh one and the
// merger/snapshots only read the sealed state.
func (sh *shard) seal() {
	if sh.cur == nil || sh.cur.rows == 0 {
		return
	}
	d := sh.cur
	sh.cur = nil
	sh.s.m.seals.Inc()
	sh.spareKeys, sh.spareVals = sh.s.publish(d)
}
