package stream

import (
	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/hashtbl"
)

// table pairs a partial-aggregate hash table with the arena its holistic
// value lists live in. A table is mutated by exactly one goroutine (its
// shard before sealing, the merger while building a generation) and is
// immutable once it appears in a view.
type table struct {
	t  *hashtbl.LinearProbe[agg.Partial]
	ar *arena.Arena
}

// mergeTable folds every group of src into dst — the table-granularity form
// of agg.Partial.Merge, used by the merger (base partition → new partition)
// and by snapshots (combining a view's sources).
func mergeTable(dst, src table, holistic bool) {
	src.t.Iterate(func(k uint64, p *agg.Partial) bool {
		np := dst.t.Upsert(k)
		np.Merge(p)
		if holistic {
			np.MergeValues(dst.ar, p, src.ar)
		}
		return true
	})
}

// delta is one shard's in-progress (then sealed) table plus its row count.
// On durable streams it also mirrors the raw rows (keys/vals, in arrival
// order): the seal's WAL record carries rows, not aggregate state, so a
// replay rebuilds the exact delta. publish drops the mirror once the
// record is in the log.
type delta struct {
	table
	rows       uint64
	keys, vals []uint64
}

// deltaTableCap seeds a fresh delta's table small; LinearProbe doubles as
// groups arrive, so a low-cardinality delta stays tiny while a
// high-cardinality one amortizes its growth.
const deltaTableCap = 1 << 10

// shard is one writer: a goroutine draining a bounded batch queue into a
// private delta, sealing it into the shared view when it reaches the
// threshold. Only the shard goroutine touches cur.
type shard struct {
	s   *Stream
	ch  chan batch
	cur *delta
	// spareKeys/spareVals are the previous delta's raw-row mirror arrays,
	// handed back by publish once the WAL record is written; the next
	// delta appends into them instead of growing fresh slices.
	spareKeys, spareVals []uint64
}

func (sh *shard) run() {
	defer sh.s.shardWG.Done()
	for b := range sh.ch {
		if hook := sh.s.cfg.testBatchHook; hook != nil {
			hook()
		}
		if b.ack != nil {
			sh.seal()
			b.ack <- struct{}{}
			continue
		}
		sh.absorb(b)
		if sh.cur.rows >= uint64(sh.s.cfg.SealRows) {
			sh.seal()
		}
	}
	sh.seal() // Close: publish whatever is left
}

// absorb folds one batch into the current delta. The holistic check is
// hoisted out of the row loop, kernels-style: the hot path is one Upsert
// plus one eager fold per row.
func (sh *shard) absorb(b batch) {
	if sh.cur == nil {
		sh.cur = &delta{table: table{
			t:  hashtbl.NewLinearProbe[agg.Partial](deltaTableCap),
			ar: arena.New(),
		}}
		if sh.s.dur != nil {
			sh.cur.keys, sh.cur.vals = sh.spareKeys[:0], sh.spareVals[:0]
			sh.spareKeys, sh.spareVals = nil, nil
		}
	}
	t := sh.cur.t
	if sh.s.cfg.Holistic {
		ar := sh.cur.ar
		for i, k := range b.keys {
			p := t.Upsert(k)
			p.Observe(b.vals[i])
			p.Buffer(ar, b.vals[i])
		}
	} else {
		for i, k := range b.keys {
			t.Upsert(k).Observe(b.vals[i])
		}
	}
	sh.cur.rows += uint64(len(b.keys))
	if sh.s.dur != nil {
		sh.cur.keys = append(sh.cur.keys, b.keys...)
		sh.cur.vals = append(sh.cur.vals, b.vals...)
	}
}

// seal freezes the current delta and publishes it into the queryable view.
// From here on the delta is immutable: the shard starts a fresh one and the
// merger/snapshots only read the sealed state.
func (sh *shard) seal() {
	if sh.cur == nil || sh.cur.rows == 0 {
		return
	}
	d := sh.cur
	sh.cur = nil
	sh.s.m.seals.Inc()
	sh.spareKeys, sh.spareVals = sh.s.publish(d)
}
