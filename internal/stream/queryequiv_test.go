package stream

import (
	"reflect"
	"sync"
	"testing"

	"memagg/internal/agg"
	"memagg/internal/dataset"
)

// layeredStream builds a deterministic base + sealed-delta layering: one
// writer shard fed serially (delta content and iteration order are then a
// pure function of the input), merger disabled so the layering cannot
// shift underneath the test. The first baseRows rows are sealed and
// explicitly compacted into a base generation; the rest stay as sealed
// deltas of cfg.SealRows each. Two calls with the same cfg knobs and data
// produce views with identical tables in identical order, so query
// results can be compared bit for bit across query configurations.
func layeredStream(tb testing.TB, cfg Config, keys, vals []uint64, baseRows int) *Stream {
	tb.Helper()
	cfg.Shards = 1
	cfg.DisableMerger = true
	s := New(cfg)
	appendAll := func(lo, hi int) {
		const batchLen = 1000
		for off := lo; off < hi; off += batchLen {
			end := off + batchLen
			if end > hi {
				end = hi
			}
			if err := s.Append(keys[off:end], vals[off:end]); err != nil {
				tb.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			tb.Fatal(err)
		}
	}
	if baseRows > len(keys) {
		baseRows = len(keys)
	}
	if baseRows > 0 {
		appendAll(0, baseRows)
		s.MergeNow()
	}
	if baseRows < len(keys) {
		appendAll(baseRows, len(keys))
	}
	return s
}

// snapshotResults is every Q1–Q7 result (plus the extended reduce and
// holistic forms) over one snapshot, for whole-struct comparison.
type snapshotResults struct {
	Watermark  uint64
	Groups     int
	GroupBound int
	Q1         []agg.GroupCount
	Q2         []agg.GroupFloat
	Sum        []agg.GroupUint
	Min        []agg.GroupUint
	Max        []agg.GroupUint
	Q3         []agg.GroupFloat
	P90        []agg.GroupFloat
	Mode       []agg.GroupFloat
	Q4         uint64
	Q5         float64
	Q6         float64
	Q7Mid      []agg.GroupCount
	Q7Full     []agg.GroupCount
}

func queryAll(tb testing.TB, sn *Snapshot, lo, hi uint64) snapshotResults {
	tb.Helper()
	r := snapshotResults{
		Watermark:  sn.Watermark(),
		Groups:     sn.Groups(),
		GroupBound: sn.GroupBound(),
		Q1:         sn.CountByKey(),
		Q2:         sn.AvgByKey(),
		Sum:        sn.Reduce(agg.OpSum),
		Min:        sn.Reduce(agg.OpMin),
		Max:        sn.Reduce(agg.OpMax),
		Q4:         sn.Count(),
		Q5:         sn.Avg(),
	}
	var err error
	if r.Q3, err = sn.MedianByKey(); err != nil {
		tb.Fatal(err)
	}
	if r.P90, err = sn.QuantileByKey(0.9); err != nil {
		tb.Fatal(err)
	}
	if r.Mode, err = sn.ModeByKey(); err != nil {
		tb.Fatal(err)
	}
	if r.Q6, err = sn.Median(); err != nil {
		tb.Fatal(err)
	}
	if r.Q7Mid, err = sn.CountRange(lo, hi); err != nil {
		tb.Fatal(err)
	}
	if r.Q7Full, err = sn.CountRange(0, ^uint64(0)); err != nil {
		tb.Fatal(err)
	}
	return r
}

// TestQueryParallelSerialEquivalence is the parallel-vs-serial gate: the
// same deterministic view layering queried at worker counts 1/2/8 and
// with the serial cutoff forced both ways must produce results
// bit-identical to the maximally serial configuration — including row
// order, since the partition-wise fold and the offset-writing kernels are
// deterministic for a fixed view. Caching is disabled so every
// configuration computes its own results.
func TestQueryParallelSerialEquivalence(t *testing.T) {
	defer func(c int) { serialQueryCutoff = c }(serialQueryCutoff)

	specs := []dataset.Spec{
		{Kind: dataset.RseqShf, N: 90_000, Cardinality: 25_000, Seed: 91},
		{Kind: dataset.Zipf, N: 60_000, Cardinality: 4_000, Seed: 92},
		{Kind: dataset.HhitShf, N: 40_000, Cardinality: 3_000, Seed: 93},
	}
	for _, spec := range specs {
		keys := spec.Keys()
		vals := dataset.Values(len(keys), spec.Seed)
		lo := uint64(0)
		hi := ^uint64(0) / 2 // roughly half the hashed key domain
		cfg := Config{SealRows: 1 << 13, MergeBits: 5, Holistic: true,
			QueryCacheEntries: -1, QueryWorkers: 1}

		// Reference: one worker, cutoff above any group count — every
		// kernel takes the serial path over the same folded sources.
		serialQueryCutoff = 1 << 30
		ref := layeredStream(t, cfg, keys, vals, len(keys)/2)
		want := queryAll(t, ref.Snapshot(), lo, hi)
		if err := ref.Close(); err != nil {
			t.Fatal(err)
		}
		if want.Q4 != uint64(len(keys)) {
			t.Fatalf("%v: reference watermark %d, want %d", spec, want.Q4, len(keys))
		}

		for _, workers := range []int{1, 2, 8} {
			for _, cutoff := range []int{0, 1 << 30} {
				cfg.QueryWorkers = workers
				serialQueryCutoff = cutoff
				s := layeredStream(t, cfg, keys, vals, len(keys)/2)
				got := queryAll(t, s.Snapshot(), lo, hi)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%v: workers=%d cutoff=%d: results differ from serial reference",
						spec, workers, cutoff)
				}
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestQueryDeterministicAcrossSnapshots checks the other identity the
// cache relies on: two snapshots of one view share the fold and produce
// identical results (same rows, same order) whether or not the cache is
// on, and repeated queries on one snapshot are stable.
func TestQueryDeterministicAcrossSnapshots(t *testing.T) {
	spec := dataset.Spec{Kind: dataset.RseqShf, N: 50_000, Cardinality: 12_000, Seed: 94}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)
	for _, cacheEntries := range []int{-1, 0} {
		s := layeredStream(t, Config{SealRows: 1 << 12, MergeBits: 5, Holistic: true,
			QueryCacheEntries: cacheEntries}, keys, vals, len(keys)/3)
		a := queryAll(t, s.Snapshot(), 10, 1<<60)
		b := queryAll(t, s.Snapshot(), 10, 1<<60)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("cache=%d: two snapshots of one view disagree", cacheEntries)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestQueryConcurrentSnapshots hammers one live stream with concurrent
// snapshot queries while ingest and merging run — the race-detector
// coverage for the parallel fold (view single-flight), the partition
// scans, and the result cache. Every observed snapshot must be internally
// consistent: Q1 row total == Q4 == watermark.
func TestQueryConcurrentSnapshots(t *testing.T) {
	spec := dataset.Spec{Kind: dataset.RseqShf, N: 60_000, Cardinality: 15_000, Seed: 95}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)
	s := New(Config{Shards: 2, SealRows: 1 << 11, MergeBits: 5, Holistic: true, QueryWorkers: 4})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				sn := s.Snapshot()
				var total uint64
				for _, r := range sn.CountByKey() {
					total += r.Count
				}
				if total != sn.Count() {
					panic("Q1 total != Q4")
				}
				if _, err := sn.Median(); err != nil {
					panic(err)
				}
				if _, err := sn.CountRange(1<<10, 1<<62); err != nil {
					panic(err)
				}
				sn.Avg()
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	const batchLen = 977
	for off := 0; off < len(keys); off += batchLen {
		end := off + batchLen
		if end > len(keys) {
			end = len(keys)
		}
		if err := s.Append(keys[off:end], vals[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	if sn.Watermark() != uint64(len(keys)) {
		t.Fatalf("final watermark %d, want %d", sn.Watermark(), len(keys))
	}
}
