package stream

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"memagg/internal/agg"
	"memagg/internal/dataset"
)

// equivSpecs mirrors the batch gate's coverage: uniform and skewed key
// distributions at low and high group-by cardinality.
func equivSpecs() []dataset.Spec {
	return []dataset.Spec{
		{Kind: dataset.RseqShf, N: 2_000, Cardinality: 97, Seed: 61},
		{Kind: dataset.Zipf, N: 20_000, Cardinality: 500, Seed: 62},
		{Kind: dataset.RseqShf, N: 60_000, Cardinality: 20_000, Seed: 63},
		{Kind: dataset.HhitShf, N: 60_000, Cardinality: 5_000, Seed: 64},
	}
}

func sortedQ1(rows []agg.GroupCount) []agg.GroupCount {
	out := append([]agg.GroupCount(nil), rows...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func sortedQF(rows []agg.GroupFloat) []agg.GroupFloat {
	out := append([]agg.GroupFloat(nil), rows...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func sortedQU(rows []agg.GroupUint) []agg.GroupUint {
	out := append([]agg.GroupUint(nil), rows...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// replay feeds keys/vals into the stream in random-size batches, taking
// snapshots concurrently with ingest and checking their internal
// consistency (Q1 row total == Q4 == watermark at all times).
func replay(t *testing.T, s *Stream, keys, vals []uint64, seed int64) {
	t.Helper()
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			sn := s.Snapshot()
			var total uint64
			for _, g := range sn.CountByKey() {
				total += g.Count
			}
			if total != sn.Count() || total != sn.Watermark() {
				panic("inconsistent snapshot: Q1 total != watermark")
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	for off := 0; off < len(keys); {
		n := 1 + rng.Intn(2000)
		if off+n > len(keys) {
			n = len(keys) - off
		}
		if err := s.Append(keys[off:off+n], vals[off:off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	snapWG.Wait()
}

// checkAgainstBatch compares every Q1–Q7 readout of sn against the batch
// engines over the same rows: Hash_LP as the hash-side reference, Btree
// for the inherently ordered Q6/Q7.
func checkAgainstBatch(t *testing.T, label string, sn *Snapshot, keys, vals []uint64) {
	t.Helper()
	ref := agg.HashLP()
	tree := agg.Btree()

	if sn.Watermark() != uint64(len(keys)) {
		t.Fatalf("%s: watermark = %d want %d", label, sn.Watermark(), len(keys))
	}
	wantQ1 := sortedQ1(ref.VectorCount(keys))
	if gotQ1 := sortedQ1(sn.CountByKey()); len(gotQ1) != len(wantQ1) {
		t.Fatalf("%s: Q1 %d groups want %d", label, len(gotQ1), len(wantQ1))
	} else {
		for i := range gotQ1 {
			if gotQ1[i] != wantQ1[i] {
				t.Fatalf("%s: Q1[%d] = %+v want %+v", label, i, gotQ1[i], wantQ1[i])
			}
		}
	}
	wantQ2 := sortedQF(ref.VectorAvg(keys, vals))
	gotQ2 := sortedQF(sn.AvgByKey())
	for i := range gotQ2 {
		if gotQ2[i] != wantQ2[i] {
			t.Fatalf("%s: Q2[%d] = %+v want %+v", label, i, gotQ2[i], wantQ2[i])
		}
	}
	wantQ3 := sortedQF(ref.VectorMedian(keys, vals))
	q3, err := sn.MedianByKey()
	if err != nil {
		t.Fatalf("%s: Q3: %v", label, err)
	}
	gotQ3 := sortedQF(q3)
	for i := range gotQ3 {
		if gotQ3[i] != wantQ3[i] {
			t.Fatalf("%s: Q3[%d] = %+v want %+v", label, i, gotQ3[i], wantQ3[i])
		}
	}
	if got, want := sn.Count(), agg.ScalarCount(keys); got != want {
		t.Fatalf("%s: Q4 = %d want %d", label, got, want)
	}
	if got, want := sn.Avg(), agg.ScalarAvg(vals); got != want {
		t.Fatalf("%s: Q5 = %v want %v", label, got, want)
	}
	wantQ6, err := tree.ScalarMedian(keys)
	if err != nil {
		t.Fatalf("%s: batch Q6: %v", label, err)
	}
	gotQ6, err := sn.Median()
	if err != nil {
		t.Fatalf("%s: Q6: %v", label, err)
	}
	if gotQ6 != wantQ6 {
		t.Fatalf("%s: Q6 = %v want %v", label, gotQ6, wantQ6)
	}
	lo := keys[len(keys)/3]
	hi := lo + 500
	wantQ7, err := tree.VectorCountRange(keys, lo, hi)
	if err != nil {
		t.Fatalf("%s: batch Q7: %v", label, err)
	}
	gotQ7, err := sn.CountRange(lo, hi)
	if err != nil {
		t.Fatalf("%s: Q7: %v", label, err)
	}
	if len(gotQ7) != len(wantQ7) {
		t.Fatalf("%s: Q7 %d rows want %d", label, len(gotQ7), len(wantQ7))
	}
	for i := range gotQ7 {
		if gotQ7[i] != wantQ7[i] {
			t.Fatalf("%s: Q7[%d] = %+v want %+v", label, i, gotQ7[i], wantQ7[i])
		}
	}
	for _, op := range []agg.ReduceOp{agg.OpSum, agg.OpMin, agg.OpMax} {
		want := sortedQU(agg.AsReducer(ref).VectorReduce(keys, vals, op))
		got := sortedQU(sn.Reduce(op))
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: reduce(%v)[%d] = %+v want %+v", label, op, i, got[i], want[i])
			}
		}
	}
}

// TestStreamMatchesBatchEngines is the stream-vs-batch equivalence gate:
// replaying a dataset through the stream in random batch sizes — with
// snapshots taken concurrently during ingest — must produce exactly the
// batch engines' Q1–Q7 answers at the final watermark, both before the
// final merge (snapshot over base + sealed deltas) and after Close (one
// fully merged generation). Run under -race this also validates the
// view-swapping protocol.
func TestStreamMatchesBatchEngines(t *testing.T) {
	for _, spec := range equivSpecs() {
		keys := spec.Keys()
		vals := dataset.Values(len(keys), spec.Seed)
		for _, shards := range []int{1, 3} {
			s := New(Config{
				Shards:     shards,
				QueueDepth: 4,
				SealRows:   1 << 12, // several seals and merge cycles per spec
				MergeBits:  5,
				Holistic:   true,
			})
			replay(t, s, keys, vals, int64(spec.Seed))

			// Flushed but possibly unmerged: snapshot folds sealed deltas.
			label := spec.String() + "/shards=" + string(rune('0'+shards)) + "/flushed"
			checkAgainstBatch(t, label, s.Snapshot(), keys, vals)

			// Closed: everything folded into one final base generation.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			label = spec.String() + "/shards=" + string(rune('0'+shards)) + "/closed"
			checkAgainstBatch(t, label, s.Snapshot(), keys, vals)
		}
	}
}

// TestHolisticDisabled checks the non-holistic configuration: distributive
// queries work, holistic ones report agg.ErrUnsupported (the value
// multisets were never retained).
func TestHolisticDisabled(t *testing.T) {
	s := New(Config{Shards: 1})
	if err := s.Append([]uint64{1, 1, 2}, []uint64{3, 5, 7}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	if _, err := sn.MedianByKey(); err != agg.ErrUnsupported {
		t.Fatalf("MedianByKey without Holistic = %v want ErrUnsupported", err)
	}
	if _, err := sn.Holistic(agg.QuantileFunc(0.9)); err != agg.ErrUnsupported {
		t.Fatalf("Holistic without Holistic = %v want ErrUnsupported", err)
	}
	rows := sortedQ1(sn.CountByKey())
	if len(rows) != 2 || rows[0].Count != 2 || rows[1].Count != 1 {
		t.Fatalf("Q1 = %+v", rows)
	}
}
