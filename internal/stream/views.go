package stream

import (
	"fmt"
	"path/filepath"
	"sync"

	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/cview"
	"memagg/internal/hashtbl"
)

// Continuous views (internal/cview) hang off the stream's seal-publication
// path: publish calls foldViews under viewMu, right after the WAL append,
// so every view absorbs sealed deltas in exactly watermark order — live
// ingest and WAL replay drive the same hook. On durable streams the view
// definitions persist under Dir/cview on every Register/Drop, and the
// checkpointer snapshots pane state there before each WAL truncation (plus
// once more at Close), so a restart recovers views from the snapshot and
// the replayed log suffix.

// RegisterView registers a continuous view starting at the current
// watermark: rows already sealed stay out of every window, rows sealed
// after flow in. Taking viewMu makes the start watermark exact — no seal
// can publish between the watermark read and the registration.
func (s *Stream) RegisterView(spec cview.Spec) error {
	s.viewMu.Lock()
	err := s.views.Register(spec, s.view.Load().watermark)
	s.viewMu.Unlock()
	if err != nil {
		return err
	}
	if s.dur != nil {
		if err := s.views.SaveDefs(s.dur.fs, s.cviewDir()); err != nil {
			s.views.Drop(spec.Name)
			return fmt.Errorf("stream: persist view definitions: %w", err)
		}
	}
	return nil
}

// DropView removes a continuous view, reporting whether it existed.
func (s *Stream) DropView(name string) bool {
	if !s.views.Drop(name) {
		return false
	}
	if s.dur != nil {
		// Best effort: a stale definition re-registers an empty view on the
		// next boot, which the caller can drop again.
		_ = s.views.SaveDefs(s.dur.fs, s.cviewDir())
	}
	return true
}

// Views describes every registered continuous view, sorted by name.
func (s *Stream) Views() []cview.Info { return s.views.Infos() }

// ViewInfo describes one continuous view.
func (s *Stream) ViewInfo(name string) (cview.Info, error) { return s.views.Info(name) }

// ViewResult evaluates one continuous view's standing query over its
// current window (served from the view's version-keyed cache when nothing
// sealed since the last read).
func (s *Stream) ViewResult(name string) (*cview.Result, error) { return s.views.Result(name) }

// foldViews feeds one sealed delta to every registered view. Called under
// viewMu by publish (after logSeal — same ordering the WAL records) and by
// recovery's replay loop; d covers watermark rows (prevWM, endWM].
//
// Views defer the fold (absorb only queues it), so the seal path pays one
// closure allocation per view here; the digest below makes the eventual
// folds share one table scan and one hash pass no matter how many views
// settle this seal.
func (s *Stream) foldViews(prevWM, endWM uint64, d *delta) {
	dig := &sealDigest{src: d.table}
	s.views.OnSeal(prevWM, endWM, d.rows, dig.fold)
}

// sealDigest lazily extracts one sealed delta's groups into dense arrays —
// keys, precomputed hashes, partial refs — shared by every view that
// settles this seal. The delta table's slot scan and the key hashing
// happen once; each view's settle is then a tight upsert+merge loop.
// materialize runs under once: views settle under their own locks, so two
// can race here. The source delta is immutable after sealing (the merger
// and snapshot folds already read it concurrently), so the extracted
// partial refs stay valid for the digest's whole life.
type sealDigest struct {
	once sync.Once
	src  table
	keys []uint64
	hs   []uint64
	ps   []*agg.Partial
}

func (g *sealDigest) materialize() {
	n := g.src.t.Len()
	g.keys = make([]uint64, 0, n)
	g.ps = make([]*agg.Partial, 0, n)
	g.src.t.Iterate(func(k uint64, p *agg.Partial) bool {
		g.keys = append(g.keys, k)
		g.ps = append(g.ps, p)
		return true
	})
	g.hs = make([]uint64, len(g.keys))
	var h [hashtbl.HashBatch]uint64
	i := 0
	for ; i+hashtbl.HashBatch <= len(g.keys); i += hashtbl.HashBatch {
		hashtbl.MixBatch(&h, g.keys[i:i+hashtbl.HashBatch])
		copy(g.hs[i:], h[:])
	}
	for ; i < len(g.keys); i++ {
		g.hs[i] = hashtbl.Mix(g.keys[i])
	}
}

func (g *sealDigest) fold(t *hashtbl.LinearProbe[agg.Partial], ar *arena.Arena, withValues bool) {
	g.once.Do(g.materialize)
	for i, k := range g.keys {
		np := t.UpsertH(k, g.hs[i])
		np.Merge(g.ps[i])
		if withValues {
			np.MergeValues(ar, g.ps[i], g.src.ar)
		}
	}
}

// cviewDir is the continuous-view persistence root on a durable stream.
func (s *Stream) cviewDir() string { return filepath.Join(s.cfg.Durability.Dir, "cview") }

// saveViewPanes snapshots pane state on a durable stream; failures are
// tolerated the same way checkpoint failures are (the WAL still covers
// every row, and gap tracking reports anything a later truncation costs).
func (s *Stream) saveViewPanes() {
	if s.dur == nil || !s.views.Active() {
		return
	}
	_ = s.views.SavePanes(s.dur.fs, s.cviewDir())
}
