package stream

import (
	"os"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"memagg/internal/dataset"
	"memagg/internal/wal"
)

// walIngestOnce pushes the whole dataset through a fresh stream —
// durable when fs is non-nil, volatile otherwise — and returns the
// wall time from first Append to Flush return. Unlike the obs guard's
// ingestOnce, SealRows is small enough that seals (and therefore WAL
// appends) actually happen: the guard measures the logging path, not
// just the Append hot loop. The log lives on a MemFS so the measured
// cost is the WAL code path itself (row mirror, encode, CRC, write) —
// on a real disk, kernel writeback lands on later rounds at the page
// cache's whim and would randomize a wall-clock ratio; sustained
// on-disk throughput by sync policy is the harness's job (-exp wal).
// CheckpointEvery is negative so neither mode pays checkpoint I/O, and
// Close (final checkpoint, fsync) is excluded from the timed window.
func walIngestOnce(tb testing.TB, keys, vals []uint64, fs wal.FS, batchLen int) time.Duration {
	cfg := Config{Shards: 1, QueueDepth: 8, SealRows: 1 << 14, MergeBits: 6}
	var s *Stream
	if fs == nil {
		s = New(cfg)
	} else {
		cfg.Durability = Durability{Dir: "guard", FS: fs, SyncPolicy: wal.SyncNone, CheckpointEvery: -1}
		var err error
		if s, err = Open(cfg); err != nil {
			tb.Fatal(err)
		}
	}
	defer func() {
		if err := s.Close(); err != nil {
			tb.Fatal(err)
		}
	}()
	start := time.Now()
	for i := 0; i < len(keys); i += batchLen {
		j := i + batchLen
		if j > len(keys) {
			j = len(keys)
		}
		if err := s.Append(keys[i:j], vals[i:j]); err != nil {
			tb.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		tb.Fatal(err)
	}
	// Wait for the merger to drain before stopping the clock. On one CPU
	// the background merge time-shares with ingest at the scheduler's
	// whim; ending the window at Flush would time a random fraction of
	// the merge work. Draining it makes each run's window the full,
	// deterministic cost of its configuration.
	for len(s.view.Load().sealed) > 0 {
		time.Sleep(200 * time.Microsecond)
	}
	return time.Since(start)
}

// TestWALOverheadGuard proves the no-fsync durability tier is cheap
// enough to leave on: the same workload ingested with a SyncPolicy=none
// WAL must stay within 15% of a fully volatile stream. The WAL path adds
// a raw-row mirror per delta plus an encode+buffered-write per seal, all
// off the producer's critical path except the mirror append — 15% is the
// ceiling the issue sets, not the expectation. Wall-clock ratios are
// noisy, so the guard only runs when MEMAGG_WAL_GUARD=1 — scripts/ci.sh
// sets it; a plain `go test ./...` skips.
func TestWALOverheadGuard(t *testing.T) {
	if os.Getenv("MEMAGG_WAL_GUARD") != "1" {
		t.Skip("set MEMAGG_WAL_GUARD=1 to run the WAL overhead guard")
	}
	const batchLen = 4096
	spec := dataset.Spec{Kind: dataset.RseqShf, N: 1_000_000, Cardinality: 100_000, Seed: 71}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)

	// GC pauses land on whichever run happens to cross a heap-growth
	// threshold; with collection off and an explicit GC between runs,
	// every run starts from the same clean heap and none is interrupted.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	// Same protocol as the obs guard: one writer shard, GC before each
	// run, warm both paths once, keep the per-mode minimum. Each durable
	// round gets a fresh MemFS so no run pays replay for the last.
	walIngestOnce(t, keys, vals, nil, batchLen)
	walIngestOnce(t, keys, vals, wal.NewMemFS(), batchLen)
	measure := func(rounds int) float64 {
		best := map[bool]time.Duration{}
		for r := 0; r < rounds; r++ {
			for _, durable := range []bool{true, false} {
				var fs wal.FS
				if durable {
					fs = wal.NewMemFS()
				}
				runtime.GC()
				el := walIngestOnce(t, keys, vals, fs, batchLen)
				if cur, ok := best[durable]; !ok || el < cur {
					best[durable] = el
				}
			}
		}
		ratio := float64(best[true]) / float64(best[false])
		t.Logf("durable=%v volatile=%v ratio=%.4f", best[true], best[false], ratio)
		return ratio
	}

	ratio := measure(5)
	if ratio > 1.15 {
		// A real regression reproduces; a scheduler hiccup does not.
		// Confirm over a longer pass before failing.
		ratio = measure(10)
	}
	if ratio > 1.15 {
		t.Fatalf("SyncPolicy=none durable ingest is %.1f%% slower than volatile (budget 15%%, confirmed twice)",
			(ratio-1)*100)
	}
}
