package stream

import (
	"os"
	"runtime"
	"testing"
	"time"

	"memagg/internal/agg"
	"memagg/internal/dataset"
)

// queryOnce runs one full pass of the vector kernels (Q1, Q2, SUM-reduce)
// over a fresh snapshot of a pre-built stream and returns the wall time.
// The caller controls serialQueryCutoff and cfg.QueryWorkers; caching is
// off in the guard's streams, so every pass really scans.
func queryOnce(tb testing.TB, s *Stream) time.Duration {
	tb.Helper()
	sn := s.Snapshot()
	start := time.Now()
	if r := sn.CountByKey(); len(r) == 0 {
		tb.Fatal("empty Q1")
	}
	sn.AvgByKey()
	sn.Reduce(agg.OpSum)
	return time.Since(start)
}

// TestQueryOverheadGuard proves the parallel query machinery is free when
// it cannot help: the partition-parallel path at one worker (cutoff
// forced off) must not be materially slower than the plain serial path
// (cutoff forced past every group count) on the same view. The morsel
// dispatch and offset bookkeeping should cost low single digits; 20% is
// allowed for scheduler noise, confirmed twice like the obs guard.
// Wall-clock ratios are noisy, so the guard only runs when
// MEMAGG_QUERY_GUARD=1 — scripts/ci.sh sets it; plain `go test ./...`
// skips.
func TestQueryOverheadGuard(t *testing.T) {
	if os.Getenv("MEMAGG_QUERY_GUARD") != "1" {
		t.Skip("set MEMAGG_QUERY_GUARD=1 to run the query overhead guard")
	}
	defer func(c int) { serialQueryCutoff = c }(serialQueryCutoff)

	spec := dataset.Spec{Kind: dataset.RseqShf, N: 1_000_000, Cardinality: 65_536, Seed: 72}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)
	// One stream, fully merged (no per-query fold, no sealed deltas): the
	// guard isolates the scan path. Cache off so repeated passes compute.
	s := layeredStream(t, Config{SealRows: 1 << 14, MergeBits: 6,
		QueryWorkers: 1, QueryCacheEntries: -1}, keys, vals, len(keys))
	defer func() {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	// Warm both paths, then keep the per-mode minimum of interleaved runs:
	// the least interfered-with run is the honest cost of each path.
	const parallelPath, serialPath = 0, 1 << 30
	for _, cutoff := range []int{parallelPath, serialPath} {
		serialQueryCutoff = cutoff
		queryOnce(t, s)
	}
	measure := func(rounds int) float64 {
		best := map[int]time.Duration{}
		for r := 0; r < rounds; r++ {
			for _, cutoff := range []int{parallelPath, serialPath} {
				serialQueryCutoff = cutoff
				runtime.GC()
				el := queryOnce(t, s)
				if cur, ok := best[cutoff]; !ok || el < cur {
					best[cutoff] = el
				}
			}
		}
		ratio := float64(best[parallelPath]) / float64(best[serialPath])
		t.Logf("parallel-path=%v serial-path=%v ratio=%.4f",
			best[parallelPath], best[serialPath], ratio)
		return ratio
	}

	ratio := measure(7)
	if ratio > 1.20 {
		// A real regression reproduces; a scheduler hiccup does not.
		ratio = measure(14)
	}
	if ratio > 1.20 {
		t.Fatalf("parallel query path at 1 worker is %.1f%% slower than serial (budget 20%%, confirmed twice)",
			(ratio-1)*100)
	}
}
