package stream

import (
	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/morsel"
	"memagg/internal/obs"
	"memagg/internal/xsort"
)

// Snapshot is a consistent, immutable read view of the stream: the base
// generation plus every delta sealed before the snapshot was taken, pinned
// by a single atomic pointer load. All queries over one snapshot see
// exactly Watermark() rows — ingest and merging proceed untouched
// underneath, and the pinned state is reclaimed by the GC when the last
// snapshot referencing it is dropped.
//
// Query results use the hash-engine conventions of internal/agg: vector
// row order is unspecified (sort if you need order — CountRange, which is
// inherently ordered, returns ascending keys), and results are identical
// to running the corresponding batch engine over the same rows.
//
// A Snapshot is safe for concurrent use. Query state is shared at the
// view level, not the snapshot level: the first query over a view that
// pins unmerged deltas folds them partition-wise into key-disjoint
// sources (in parallel at Config.QueryWorkers), vector kernels scan those
// partitions in parallel above a serial group-count cutoff, and on a
// cache-enabled stream materialized results are memoized on the view —
// keyed by query id and parameters, single-flight — so every snapshot of
// an unchanged view shares both the fold and the results. Cached vector
// results are shared slices; treat them as read-only.
type Snapshot struct {
	s *Stream
	v *view
}

// Snapshot pins the current view. Never blocks writers or the merger.
func (s *Stream) Snapshot() *Snapshot {
	s.m.snapshots.Inc()
	return &Snapshot{s: s, v: s.view.Load()}
}

// Watermark returns the number of rows this snapshot covers. Every query
// result is exactly consistent with these rows.
func (sn *Snapshot) Watermark() uint64 { return sn.v.watermark }

// serialQueryCutoff is the group count below which query kernels scan on
// the calling goroutine: under it the whole result fits comfortably in
// cache and the partition scan finishes in microseconds, so worker
// goroutine startup would dominate (measured with `-exp query`; a var so
// the equivalence gate can force both paths).
var serialQueryCutoff = 1 << 13

// sources returns key-disjoint tables jointly holding every group,
// folding the view's sealed deltas partition-wise on first use (see
// view.sources). Entries with a nil table hold no groups.
func (sn *Snapshot) sources() []table { return sn.v.sources(sn.s) }

// partOffsets returns each source's exclusive start offset in a result
// slice laid out partition by partition, plus the total group count.
// Writing through these offsets lets parallel kernels fill one pre-sized
// result with no per-worker buffers or concat — and makes the output
// deterministic: partition order, table iteration order within each.
func partOffsets(srcs []table) (offs []int, total int) {
	offs = make([]int, len(srcs))
	for q, tb := range srcs {
		offs[q] = total
		if tb.t != nil {
			total += tb.t.Len()
		}
	}
	return offs, total
}

// queryWorkers returns the parallelism for a scan over total groups:
// the configured query workers, or 1 below the serial cutoff
// (Config.QuerySerialCutoff when set, the measured default otherwise).
func (sn *Snapshot) queryWorkers(total int) int {
	cutoff := sn.s.cfg.QuerySerialCutoff
	if cutoff == 0 {
		cutoff = serialQueryCutoff
	}
	if cutoff > 0 && total < cutoff {
		return 1
	}
	return sn.s.cfg.QueryWorkers
}

// scan runs body over every non-empty source partition, in parallel when
// the snapshot is past the serial cutoff, and records the scan phase.
func (sn *Snapshot) scan(srcs []table, total int, body func(worker, q int)) {
	mk := obs.Start()
	morsel.Parts(len(srcs), sn.queryWorkers(total), func(w, q int) {
		if srcs[q].t != nil {
			body(w, q)
		}
	})
	mk.Tick(sn.s.m.queryScanLat)
}

// eachGroup visits every group exactly once with its fully merged partial
// and the arena its buffered values live in — the serial walk behind the
// scalar kernels' fallbacks and any caller that needs no parallelism.
func (sn *Snapshot) eachGroup(fn func(k uint64, p *agg.Partial, ar *arena.Arena)) {
	for _, tb := range sn.sources() {
		if tb.t == nil {
			continue
		}
		ar := tb.ar
		tb.t.Iterate(func(k uint64, p *agg.Partial) bool {
			fn(k, p, ar)
			return true
		})
	}
}

// EachGroup visits every group exactly once with its fully merged partial
// and the arena its buffered values live in — the export the cluster
// transport (internal/cluster) serializes from. The visited partials are
// the snapshot's live state: read-only, valid while the snapshot is held.
func (sn *Snapshot) EachGroup(fn func(k uint64, p *agg.Partial, ar *arena.Arena)) {
	sn.eachGroup(fn)
}

// HolisticEnabled reports whether this snapshot's stream retains value
// multisets (median/quantile/mode queries answerable).
func (sn *Snapshot) HolisticEnabled() bool { return sn.s.cfg.Holistic }

// Groups returns the number of distinct keys the snapshot covers. This is
// the exact count, which requires the delta fold when unmerged deltas are
// pinned (keys may repeat across layers); for pre-sizing, GroupBound is
// free.
func (sn *Snapshot) Groups() int {
	_, total := partOffsets(sn.sources())
	return total
}

// GroupBound returns a cheap upper bound on Groups — base groups plus
// sealed delta groups, without cross-layer deduplication. It never
// triggers the delta fold, so result pre-sizing can use it at zero cost.
func (sn *Snapshot) GroupBound() int { return sn.v.groupBound }

// CountByKey executes Q1: one (key, COUNT(*)) row per distinct key.
func (sn *Snapshot) CountByKey() []agg.GroupCount {
	return cached(sn, qkey{id: qidQ1}, sn.countByKey)
}

func (sn *Snapshot) countByKey() []agg.GroupCount {
	srcs := sn.sources()
	offs, total := partOffsets(srcs)
	out := make([]agg.GroupCount, total)
	sn.scan(srcs, total, func(_, q int) {
		i := offs[q]
		srcs[q].t.Iterate(func(k uint64, p *agg.Partial) bool {
			out[i] = agg.GroupCount{Key: k, Count: p.Count()}
			i++
			return true
		})
	})
	return out
}

// AvgByKey executes Q2: one (key, AVG(val)) row per distinct key, computed
// as one float64 division of the exact integer sum — bit-identical to the
// batch engines.
func (sn *Snapshot) AvgByKey() []agg.GroupFloat {
	return cached(sn, qkey{id: qidQ2}, func() []agg.GroupFloat {
		srcs := sn.sources()
		offs, total := partOffsets(srcs)
		out := make([]agg.GroupFloat, total)
		sn.scan(srcs, total, func(_, q int) {
			i := offs[q]
			srcs[q].t.Iterate(func(k uint64, p *agg.Partial) bool {
				out[i] = agg.GroupFloat{Key: k, Val: p.Avg()}
				i++
				return true
			})
		})
		return out
	})
}

// Reduce executes the generalized distributive vector query: one
// (key, op(val)) row per distinct key, for any ReduceOp.
func (sn *Snapshot) Reduce(op agg.ReduceOp) []agg.GroupUint {
	return cached(sn, qkey{id: qidReduce, op: op}, func() []agg.GroupUint {
		srcs := sn.sources()
		offs, total := partOffsets(srcs)
		out := make([]agg.GroupUint, total)
		sn.scan(srcs, total, func(_, q int) {
			i := offs[q]
			srcs[q].t.Iterate(func(k uint64, p *agg.Partial) bool {
				out[i] = agg.GroupUint{Key: k, Val: p.Reduce(op)}
				i++
				return true
			})
		})
		return out
	})
}

// Holistic executes the generalized holistic vector query: one
// (key, fn(group's values)) row per distinct key. Requires Config.Holistic;
// otherwise the value multisets were not retained and the query returns
// agg.ErrUnsupported. An arbitrary fn cannot key the result cache — use
// MedianByKey/QuantileByKey/ModeByKey for the cached forms.
func (sn *Snapshot) Holistic(fn agg.HolisticFunc) ([]agg.GroupFloat, error) {
	if !sn.s.cfg.Holistic {
		return nil, agg.ErrUnsupported
	}
	return sn.holistic(fn), nil
}

func (sn *Snapshot) holistic(fn agg.HolisticFunc) []agg.GroupFloat {
	srcs := sn.sources()
	offs, total := partOffsets(srcs)
	out := make([]agg.GroupFloat, total)
	workers := sn.queryWorkers(total)
	scratch := make([][]uint64, workers)
	mk := obs.Start()
	morsel.Parts(len(srcs), workers, func(w, q int) {
		if srcs[q].t == nil {
			return
		}
		i, ar, buf := offs[q], srcs[q].ar, scratch[w]
		srcs[q].t.Iterate(func(k uint64, p *agg.Partial) bool {
			buf = p.AppendValues(ar, buf[:0])
			out[i] = agg.GroupFloat{Key: k, Val: fn(buf)}
			i++
			return true
		})
		scratch[w] = buf
	})
	mk.Tick(sn.s.m.queryScanLat)
	return out
}

// cachedHolistic routes one named holistic query through the result cache
// after the shared Holistic support check.
func (sn *Snapshot) cachedHolistic(k qkey, fn agg.HolisticFunc) ([]agg.GroupFloat, error) {
	if !sn.s.cfg.Holistic {
		return nil, agg.ErrUnsupported
	}
	return cached(sn, k, func() []agg.GroupFloat { return sn.holistic(fn) }), nil
}

// MedianByKey executes Q3 (holistic): one (key, MEDIAN(val)) row per
// distinct key. Requires Config.Holistic.
func (sn *Snapshot) MedianByKey() ([]agg.GroupFloat, error) {
	return sn.cachedHolistic(qkey{id: qidQ3}, agg.MedianFunc)
}

// QuantileByKey executes the nearest-rank q-quantile per distinct key.
// Requires Config.Holistic.
func (sn *Snapshot) QuantileByKey(q float64) ([]agg.GroupFloat, error) {
	return sn.cachedHolistic(qkey{id: qidQuantile, f: q}, agg.QuantileFunc(q))
}

// ModeByKey executes the most-frequent-value query per distinct key.
// Requires Config.Holistic.
func (sn *Snapshot) ModeByKey() ([]agg.GroupFloat, error) {
	return sn.cachedHolistic(qkey{id: qidMode}, agg.ModeFunc)
}

// Count executes Q4: COUNT(*) over the snapshot — the watermark itself.
func (sn *Snapshot) Count() uint64 { return sn.v.watermark }

// Avg executes Q5: AVG over the value column, as one float64 division of
// the exact total sum by the exact row count. Per-partition integer
// partial sums merge exactly, so the parallel result is bit-identical to
// the serial one.
func (sn *Snapshot) Avg() float64 {
	return cached(sn, qkey{id: qidQ5}, func() float64 {
		srcs := sn.sources()
		_, total := partOffsets(srcs)
		workers := sn.queryWorkers(total)
		// One cache line per worker: the partial sums are written in the
		// scan's hot loop.
		type sumCount struct {
			sum, count uint64
			_          [6]uint64
		}
		parts := make([]sumCount, workers)
		sn.scan(srcs, total, func(w, q int) {
			sum, count := parts[w].sum, parts[w].count
			srcs[q].t.Iterate(func(_ uint64, p *agg.Partial) bool {
				sum += p.Sum()
				count += p.Count()
				return true
			})
			parts[w].sum, parts[w].count = sum, count
		})
		mk := obs.Start()
		var sum, count uint64
		for _, pc := range parts {
			sum += pc.sum
			count += pc.count
		}
		mk.Tick(sn.s.m.queryMergeLat)
		if count == 0 {
			return 0
		}
		return float64(sum) / float64(count)
	})
}

// Median executes Q6: MEDIAN over the key column. Unlike the batch hash
// engines — which cannot enumerate keys in order and return ErrUnsupported
// — the snapshot's per-group counts make the scalar median exact: gather
// the (key, count) pairs partition-parallel, sort them by key through
// internal/xsort, and walk cumulative counts to the middle rank(s).
func (sn *Snapshot) Median() (float64, error) {
	return cached(sn, qkey{id: qidQ6}, func() float64 {
		srcs := sn.sources()
		offs, total := partOffsets(srcs)
		groups := make([]xsort.KV, total)
		var n uint64
		workers := sn.queryWorkers(total)
		counts := make([]uint64, workers*8) // one cache line per worker
		sn.scan(srcs, total, func(w, q int) {
			i, rows := offs[q], counts[w*8]
			srcs[q].t.Iterate(func(k uint64, p *agg.Partial) bool {
				c := p.Count()
				groups[i] = xsort.KV{K: k, V: c}
				rows += c
				i++
				return true
			})
			counts[w*8] = rows
		})
		for w := 0; w < workers; w++ {
			n += counts[w*8]
		}
		if n == 0 {
			return 0
		}
		mk := obs.Start()
		sortKV(groups, workers)
		m := float64(keyAtRank(groups, n/2))
		if n%2 == 0 {
			m = (float64(keyAtRank(groups, n/2-1)) + m) / 2
		}
		mk.Tick(sn.s.m.queryMergeLat)
		return m
	}), nil
}

// sortKV orders records ascending by key via internal/xsort: the parallel
// block-introsort merge when both the input and the worker budget warrant
// it, serial introsort otherwise (the Fig2/Fig10-measured routing).
func sortKV(a []xsort.KV, workers int) {
	if workers > 1 && len(a) >= serialQueryCutoff {
		xsort.SortBIKV(a, workers)
		return
	}
	xsort.IntrosortKV(a)
}

// keyAtRank returns the key at 0-based rank r of the expansion of the
// key-sorted (key, count) runs.
func keyAtRank(groups []xsort.KV, r uint64) uint64 {
	var cum uint64
	for _, g := range groups {
		cum += g.V
		if r < cum {
			return g.K
		}
	}
	return groups[len(groups)-1].K
}

// CountRange executes Q7: Q1 restricted to lo <= key <= hi, rows ascending
// by key (the tree-engine convention — a range query is inherently
// ordered). Matching rows collect into per-worker buffers pre-sized by the
// group bound and the range's width, then one xsort pass orders the
// concatenation (hash partitions interleave key ranges, so a global sort
// is needed regardless). The error is always nil; the signature matches
// the batch engines'.
func (sn *Snapshot) CountRange(lo, hi uint64) ([]agg.GroupCount, error) {
	return cached(sn, qkey{id: qidQ7, lo: lo, hi: hi}, func() []agg.GroupCount {
		srcs := sn.sources()
		_, total := partOffsets(srcs)
		workers := sn.queryWorkers(total)
		// Selectivity guess: no more groups can match than the bound says
		// exist, and no more than the range has distinct keys (width 0
		// means the full uint64 domain).
		hint := sn.GroupBound()
		if width := hi - lo + 1; width != 0 && width < uint64(hint) {
			hint = int(width)
		}
		bufs := make([][]xsort.KV, workers)
		sn.scan(srcs, total, func(w, q int) {
			buf := bufs[w]
			if buf == nil {
				buf = make([]xsort.KV, 0, hint/workers+1)
			}
			srcs[q].t.Iterate(func(k uint64, p *agg.Partial) bool {
				if lo <= k && k <= hi {
					buf = append(buf, xsort.KV{K: k, V: p.Count()})
				}
				return true
			})
			bufs[w] = buf
		})
		mk := obs.Start()
		n := 0
		for _, b := range bufs {
			n += len(b)
		}
		rows := make([]xsort.KV, 0, n)
		for _, b := range bufs {
			rows = append(rows, b...)
		}
		sortKV(rows, workers)
		out := make([]agg.GroupCount, len(rows))
		for i, r := range rows {
			out[i] = agg.GroupCount{Key: r.K, Count: r.V}
		}
		mk.Tick(sn.s.m.queryMergeLat)
		return out
	}), nil
}
