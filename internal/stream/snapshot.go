package stream

import (
	"sort"
	"sync"

	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/hashtbl"
)

// Snapshot is a consistent, immutable read view of the stream: the base
// generation plus every delta sealed before the snapshot was taken, pinned
// by a single atomic pointer load. All queries over one snapshot see
// exactly Watermark() rows — ingest and merging proceed untouched
// underneath, and the pinned state is reclaimed by the GC when the last
// snapshot referencing it is dropped.
//
// Query results use the hash-engine conventions of internal/agg: vector
// row order is unspecified (sort if you need order — CountRange, which is
// inherently ordered, returns ascending keys), and results are identical
// to running the corresponding batch engine over the same rows.
//
// A Snapshot is safe for concurrent use; the first query over a snapshot
// that pins unmerged deltas folds them into a private combined table
// (cached for the snapshot's remaining queries).
type Snapshot struct {
	s *Stream
	v *view

	once sync.Once
	srcs []table // disjoint by key: base partitions, or one combined table
}

// Snapshot pins the current view. Never blocks writers or the merger.
func (s *Stream) Snapshot() *Snapshot {
	s.m.snapshots.Inc()
	return &Snapshot{s: s, v: s.view.Load()}
}

// Watermark returns the number of rows this snapshot covers. Every query
// result is exactly consistent with these rows.
func (sn *Snapshot) Watermark() uint64 { return sn.v.watermark }

// sources returns key-disjoint tables jointly holding every group. With no
// unmerged deltas the base generation's partitions serve directly (zero
// copy); otherwise the first caller folds base plus deltas into one
// combined table, reusing the merger's table fold.
func (sn *Snapshot) sources() []table {
	sn.once.Do(func() {
		v := sn.v
		if len(v.sealed) == 0 {
			if v.base != nil {
				sn.srcs = v.base.parts
			}
			return
		}
		hint := 0
		if v.base != nil {
			hint = v.base.groups
		}
		for _, d := range v.sealed {
			hint += d.t.Len()
		}
		comb := table{t: hashtbl.NewLinearProbe[agg.Partial](hint), ar: arena.New()}
		holistic := sn.s.cfg.Holistic
		if v.base != nil {
			for _, tb := range v.base.parts {
				if tb.t != nil {
					mergeTable(comb, tb, holistic)
				}
			}
		}
		for _, d := range v.sealed {
			mergeTable(comb, d.table, holistic)
		}
		sn.srcs = []table{comb}
	})
	return sn.srcs
}

// eachGroup visits every group exactly once with its fully merged partial
// and the arena its buffered values live in.
func (sn *Snapshot) eachGroup(fn func(k uint64, p *agg.Partial, ar *arena.Arena)) {
	for _, tb := range sn.sources() {
		if tb.t == nil {
			continue
		}
		ar := tb.ar
		tb.t.Iterate(func(k uint64, p *agg.Partial) bool {
			fn(k, p, ar)
			return true
		})
	}
}

// Groups returns the number of distinct keys the snapshot covers.
func (sn *Snapshot) Groups() int {
	n := 0
	for _, tb := range sn.sources() {
		if tb.t != nil {
			n += tb.t.Len()
		}
	}
	return n
}

// CountByKey executes Q1: one (key, COUNT(*)) row per distinct key.
func (sn *Snapshot) CountByKey() []agg.GroupCount {
	out := make([]agg.GroupCount, 0, sn.Groups())
	sn.eachGroup(func(k uint64, p *agg.Partial, _ *arena.Arena) {
		out = append(out, agg.GroupCount{Key: k, Count: p.Count()})
	})
	return out
}

// AvgByKey executes Q2: one (key, AVG(val)) row per distinct key, computed
// as one float64 division of the exact integer sum — bit-identical to the
// batch engines.
func (sn *Snapshot) AvgByKey() []agg.GroupFloat {
	out := make([]agg.GroupFloat, 0, sn.Groups())
	sn.eachGroup(func(k uint64, p *agg.Partial, _ *arena.Arena) {
		out = append(out, agg.GroupFloat{Key: k, Val: p.Avg()})
	})
	return out
}

// Reduce executes the generalized distributive vector query: one
// (key, op(val)) row per distinct key, for any ReduceOp.
func (sn *Snapshot) Reduce(op agg.ReduceOp) []agg.GroupUint {
	out := make([]agg.GroupUint, 0, sn.Groups())
	sn.eachGroup(func(k uint64, p *agg.Partial, _ *arena.Arena) {
		out = append(out, agg.GroupUint{Key: k, Val: p.Reduce(op)})
	})
	return out
}

// Holistic executes the generalized holistic vector query: one
// (key, fn(group's values)) row per distinct key. Requires Config.Holistic;
// otherwise the value multisets were not retained and the query returns
// agg.ErrUnsupported.
func (sn *Snapshot) Holistic(fn agg.HolisticFunc) ([]agg.GroupFloat, error) {
	if !sn.s.cfg.Holistic {
		return nil, agg.ErrUnsupported
	}
	out := make([]agg.GroupFloat, 0, sn.Groups())
	var scratch []uint64
	sn.eachGroup(func(k uint64, p *agg.Partial, ar *arena.Arena) {
		scratch = p.AppendValues(ar, scratch[:0])
		out = append(out, agg.GroupFloat{Key: k, Val: fn(scratch)})
	})
	return out, nil
}

// MedianByKey executes Q3 (holistic): one (key, MEDIAN(val)) row per
// distinct key. Requires Config.Holistic.
func (sn *Snapshot) MedianByKey() ([]agg.GroupFloat, error) {
	return sn.Holistic(agg.MedianFunc)
}

// Count executes Q4: COUNT(*) over the snapshot — the watermark itself.
func (sn *Snapshot) Count() uint64 { return sn.v.watermark }

// Avg executes Q5: AVG over the value column, as one float64 division of
// the exact total sum by the exact row count.
func (sn *Snapshot) Avg() float64 {
	var sum, count uint64
	sn.eachGroup(func(_ uint64, p *agg.Partial, _ *arena.Arena) {
		sum += p.Sum()
		count += p.Count()
	})
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}

// Median executes Q6: MEDIAN over the key column. Unlike the batch hash
// engines — which cannot enumerate keys in order and return ErrUnsupported
// — the snapshot's per-group counts make the scalar median exact: sort the
// (key, count) pairs and walk cumulative counts to the middle rank(s).
func (sn *Snapshot) Median() (float64, error) {
	groups := make([]agg.GroupCount, 0, sn.Groups())
	var n uint64
	sn.eachGroup(func(k uint64, p *agg.Partial, _ *arena.Arena) {
		groups = append(groups, agg.GroupCount{Key: k, Count: p.Count()})
		n += p.Count()
	})
	if n == 0 {
		return 0, nil
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })
	if n%2 == 1 {
		return float64(keyAtRank(groups, n/2)), nil
	}
	lo := keyAtRank(groups, n/2-1)
	hi := keyAtRank(groups, n/2)
	return (float64(lo) + float64(hi)) / 2, nil
}

// keyAtRank returns the key at 0-based rank r of the expansion of the
// sorted (key, count) runs.
func keyAtRank(groups []agg.GroupCount, r uint64) uint64 {
	var cum uint64
	for _, g := range groups {
		cum += g.Count
		if r < cum {
			return g.Key
		}
	}
	return groups[len(groups)-1].Key
}

// CountRange executes Q7: Q1 restricted to lo <= key <= hi, rows ascending
// by key (the tree-engine convention — a range query is inherently
// ordered). The error is always nil; the signature matches the batch
// engines'.
func (sn *Snapshot) CountRange(lo, hi uint64) ([]agg.GroupCount, error) {
	var out []agg.GroupCount
	sn.eachGroup(func(k uint64, p *agg.Partial, _ *arena.Arena) {
		if lo <= k && k <= hi {
			out = append(out, agg.GroupCount{Key: k, Count: p.Count()})
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
