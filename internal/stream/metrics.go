package stream

import (
	"memagg/internal/cview"
	"memagg/internal/obs"
)

// metrics is one Stream's instrument set, backed by a private obs.Registry
// so independent streams (tests, multiple embedded servers) never share a
// counter. Serve it next to the process-global registry with
// obs.WritePrometheus(w, obs.Default, s.Registry()).
//
// The counters double as the stream's load-bearing bookkeeping — the
// watermark/staleness arithmetic and Stats read them — so they record
// unconditionally; only the latency histograms honour obs.SetDisabled
// (that split is what the ingest overhead guard measures).
type metrics struct {
	reg *obs.Registry

	rows      *obs.Counter // rows accepted by Append
	batches   *obs.Counter // Append calls that carried rows
	blockedNs *obs.Counter // nanoseconds Append spent blocked on full queues
	seals     *obs.Counter // deltas frozen and published
	merges    *obs.Counter // merge cycles completed
	mergeNs   *obs.Counter // total merge-cycle nanoseconds
	snapshots *obs.Counter // snapshots taken
	lastMerge *obs.Gauge   // duration of the most recent merge cycle (ns)

	appendLat *obs.Histogram // Append call latency
	mergeLat  *obs.Histogram // merge cycle duration

	// Query-path instruments: the per-view result cache's outcome counters
	// and the three phases a snapshot query decomposes into — fold (sealed
	// deltas into per-partition sources, once per view), scan (the
	// partition-parallel kernel walk), and merge (the serial tail: scalar
	// partial merges, ordered sorts).
	qcacheHits   *obs.Counter
	qcacheMisses *obs.Counter
	qcacheEvicts *obs.Counter

	queryFoldLat  *obs.Histogram
	queryScanLat  *obs.Histogram
	queryMergeLat *obs.Histogram

	// Durability instruments. Registered unconditionally (a volatile stream
	// just leaves them at zero) so the scrape shape is stable; the wal
	// package records into them via the Metrics view walMetrics builds.
	walAppends      *obs.Counter // WAL records appended (one per seal)
	walAppendBytes  *obs.Counter // framed WAL bytes appended
	walSyncs        *obs.Counter // WAL fsyncs
	walRotations    *obs.Counter // WAL segment rotations
	walSegsDropped  *obs.Counter // WAL segments dropped by checkpoint truncation
	walReplayedRows *obs.Counter // rows replayed from the WAL at Open
	ckpts           *obs.Counter // checkpoints committed

	walSyncLat  *obs.Histogram // WAL fsync latency
	ckptLat     *obs.Histogram // checkpoint write+commit duration
	recoveryLat *obs.Histogram // Open recovery duration (load + replay)

	// Continuous-view instruments (internal/cview): the counters record
	// through the cview.Metrics view cviewMetrics builds; the update
	// histogram times the per-seal fold across all registered views.
	cviewUpdates      *obs.Counter
	cviewPanesOpened  *obs.Counter
	cviewPanesEvicted *obs.Counter
	cviewReads        *obs.Counter
	cviewReadsCached  *obs.Counter
	cviewUpdateLat    *obs.Histogram
}

func newMetrics(s *Stream) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		rows: reg.NewCounter("memagg_stream_rows_total",
			"Rows accepted by Append."),
		batches: reg.NewCounter("memagg_stream_batches_total",
			"Append calls that carried rows."),
		blockedNs: reg.NewCounter("memagg_stream_append_blocked_nanos_total",
			"Nanoseconds Append spent blocked on full shard queues (backpressure)."),
		seals: reg.NewCounter("memagg_stream_seals_total",
			"Delta seals: frozen shard tables published into the queryable view."),
		merges: reg.NewCounter("memagg_stream_merges_total",
			"Merge cycles folding sealed deltas into a base generation."),
		mergeNs: reg.NewCounter("memagg_stream_merge_nanos_total",
			"Total merge-cycle duration in nanoseconds."),
		snapshots: reg.NewCounter("memagg_stream_snapshots_total",
			"Snapshots taken."),
		lastMerge: reg.NewGauge("memagg_stream_merge_last_nanos",
			"Duration of the most recent merge cycle in nanoseconds."),
		appendLat: reg.NewHistogram("memagg_stream_append_seconds",
			"Append call latency (copy, hand-off, and any backpressure wait)."),
		mergeLat: reg.NewHistogram("memagg_stream_merge_seconds",
			"Merge cycle duration (delta flatten, scatter, partition folds)."),
		qcacheHits: reg.NewCounter("memagg_stream_query_cache_hits_total",
			"Snapshot queries answered from a view's result cache."),
		qcacheMisses: reg.NewCounter("memagg_stream_query_cache_misses_total",
			"Snapshot queries that computed and populated a view's result cache."),
		qcacheEvicts: reg.NewCounter("memagg_stream_query_cache_evictions_total",
			"Result-cache entries evicted by the per-view capacity bound."),
		queryFoldLat: reg.NewHistogram("memagg_stream_query_fold_seconds",
			"Partition-wise fold of sealed deltas into a view's query sources (once per view)."),
		queryScanLat: reg.NewHistogram("memagg_stream_query_scan_seconds",
			"Partition scan phase of a snapshot query kernel."),
		queryMergeLat: reg.NewHistogram("memagg_stream_query_merge_seconds",
			"Serial tail of a snapshot query: scalar partial merges and ordered sorts."),
		walAppends: reg.NewCounter("memagg_wal_appends_total",
			"WAL records appended (one group-committed record per seal)."),
		walAppendBytes: reg.NewCounter("memagg_wal_append_bytes_total",
			"Framed bytes appended to the WAL."),
		walSyncs: reg.NewCounter("memagg_wal_fsyncs_total",
			"WAL fsync calls."),
		walRotations: reg.NewCounter("memagg_wal_segment_rotations_total",
			"WAL segment rotations."),
		walSegsDropped: reg.NewCounter("memagg_wal_segments_dropped_total",
			"WAL segments dropped after a checkpoint made their rows durable."),
		walReplayedRows: reg.NewCounter("memagg_wal_replayed_rows_total",
			"Rows replayed from the WAL during recovery."),
		ckpts: reg.NewCounter("memagg_wal_checkpoints_total",
			"Checkpoints committed (CURRENT swapped)."),
		walSyncLat: reg.NewHistogram("memagg_wal_fsync_seconds",
			"WAL fsync latency."),
		ckptLat: reg.NewHistogram("memagg_wal_checkpoint_seconds",
			"Checkpoint duration (partition runs, META, CURRENT swap)."),
		recoveryLat: reg.NewHistogram("memagg_wal_recovery_seconds",
			"Recovery duration at Open (checkpoint load plus WAL replay)."),
		cviewUpdates: reg.NewCounter("memagg_cview_updates_total",
			"Continuous-view pane folds applied (one per registered view per seal)."),
		cviewPanesOpened: reg.NewCounter("memagg_cview_panes_opened_total",
			"Continuous-view panes opened."),
		cviewPanesEvicted: reg.NewCounter("memagg_cview_panes_evicted_total",
			"Continuous-view panes evicted by window retention."),
		cviewReads: reg.NewCounter("memagg_cview_reads_total",
			"Continuous-view result reads."),
		cviewReadsCached: reg.NewCounter("memagg_cview_reads_cached_total",
			"Continuous-view reads answered from the version cache (view unchanged)."),
		cviewUpdateLat: reg.NewHistogram("memagg_cview_update_seconds",
			"Per-seal continuous-view update latency (all registered views' pane folds)."),
	}
	// View-derived state is served as scrape-time gauges rather than
	// double-maintained counters: the view pointer already is the truth.
	reg.NewGaugeFunc("memagg_stream_watermark_rows",
		"Rows visible to a snapshot taken now.", func() int64 {
			return int64(s.view.Load().watermark)
		})
	reg.NewGaugeFunc("memagg_stream_staleness_rows",
		"Rows ingested but not yet visible (queued or in unsealed deltas).",
		func() int64 {
			ing, wm := m.rows.Value(), s.view.Load().watermark
			if ing > wm {
				return int64(ing - wm)
			}
			return 0
		})
	reg.NewGaugeFunc("memagg_stream_sealed_pending",
		"Sealed deltas awaiting merge.", func() int64 {
			return int64(len(s.view.Load().sealed))
		})
	reg.NewGaugeFunc("memagg_stream_generation",
		"Sequence number of the current base generation.", func() int64 {
			if v := s.view.Load(); v.base != nil {
				return int64(v.base.seq)
			}
			return 0
		})
	reg.NewGaugeFunc("memagg_stream_groups",
		"Groups in the current base generation (unmerged deltas excluded).",
		func() int64 {
			if v := s.view.Load(); v.base != nil {
				return int64(v.base.groups)
			}
			return 0
		})
	reg.NewGaugeFunc("memagg_stream_readonly",
		"1 when the durability layer failed and the stream refuses ingest.",
		func() int64 {
			if s.dur != nil && s.dur.degraded.Load() {
				return 1
			}
			return 0
		})
	reg.NewGaugeFunc("memagg_wal_checkpoint_watermark_rows",
		"Rows covered by the last durable checkpoint.", func() int64 {
			if s.dur != nil {
				return int64(s.dur.lastCkptWM.Load())
			}
			return 0
		})
	// The view registry is attached right after newMetrics returns, so the
	// gauge closures nil-check it (a scrape can only race the constructor,
	// never observe a stream without it afterwards).
	reg.NewGaugeFunc("memagg_cview_views",
		"Registered continuous views.", func() int64 {
			if s.views == nil {
				return 0
			}
			return int64(s.views.Len())
		})
	reg.NewGaugeFunc("memagg_cview_panes_live",
		"Live panes across all continuous views.", func() int64 {
			if s.views == nil {
				return 0
			}
			return int64(s.views.PanesLive())
		})
	reg.NewGaugeFunc("memagg_cview_staleness_rows",
		"Rows ingested but not yet absorbed by the most lagging continuous view.",
		func() int64 {
			if s.views == nil || !s.views.Active() {
				return 0
			}
			return int64(s.views.Staleness(m.rows.Value()))
		})
	return m
}

// cviewMetrics assembles the cview.Metrics view over the stream's
// registry instruments.
func (m *metrics) cviewMetrics() *cview.Metrics {
	return &cview.Metrics{
		Updates:      m.cviewUpdates,
		PanesOpened:  m.cviewPanesOpened,
		PanesEvicted: m.cviewPanesEvicted,
		Reads:        m.cviewReads,
		ReadsCached:  m.cviewReadsCached,
	}
}

// Registry exposes the stream's private metric registry for serving.
func (s *Stream) Registry() *obs.Registry { return s.m.reg }

// AppendLatency returns the Append-call latency histogram's current state.
func (s *Stream) AppendLatency() obs.HistogramSnapshot { return s.m.appendLat.Snapshot() }

// MergeLatency returns the merge-cycle duration histogram's current state.
func (s *Stream) MergeLatency() obs.HistogramSnapshot { return s.m.mergeLat.Snapshot() }
