package stream

import "memagg/internal/obs"

// metrics is one Stream's instrument set, backed by a private obs.Registry
// so independent streams (tests, multiple embedded servers) never share a
// counter. Serve it next to the process-global registry with
// obs.WritePrometheus(w, obs.Default, s.Registry()).
//
// The counters double as the stream's load-bearing bookkeeping — the
// watermark/staleness arithmetic and Stats read them — so they record
// unconditionally; only the latency histograms honour obs.SetDisabled
// (that split is what the ingest overhead guard measures).
type metrics struct {
	reg *obs.Registry

	rows      *obs.Counter // rows accepted by Append
	batches   *obs.Counter // Append calls that carried rows
	blockedNs *obs.Counter // nanoseconds Append spent blocked on full queues
	seals     *obs.Counter // deltas frozen and published
	merges    *obs.Counter // merge cycles completed
	mergeNs   *obs.Counter // total merge-cycle nanoseconds
	snapshots *obs.Counter // snapshots taken
	lastMerge *obs.Gauge   // duration of the most recent merge cycle (ns)

	appendLat *obs.Histogram // Append call latency
	mergeLat  *obs.Histogram // merge cycle duration
}

func newMetrics(s *Stream) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		rows: reg.NewCounter("memagg_stream_rows_total",
			"Rows accepted by Append."),
		batches: reg.NewCounter("memagg_stream_batches_total",
			"Append calls that carried rows."),
		blockedNs: reg.NewCounter("memagg_stream_append_blocked_nanos_total",
			"Nanoseconds Append spent blocked on full shard queues (backpressure)."),
		seals: reg.NewCounter("memagg_stream_seals_total",
			"Delta seals: frozen shard tables published into the queryable view."),
		merges: reg.NewCounter("memagg_stream_merges_total",
			"Merge cycles folding sealed deltas into a base generation."),
		mergeNs: reg.NewCounter("memagg_stream_merge_nanos_total",
			"Total merge-cycle duration in nanoseconds."),
		snapshots: reg.NewCounter("memagg_stream_snapshots_total",
			"Snapshots taken."),
		lastMerge: reg.NewGauge("memagg_stream_merge_last_nanos",
			"Duration of the most recent merge cycle in nanoseconds."),
		appendLat: reg.NewHistogram("memagg_stream_append_seconds",
			"Append call latency (copy, hand-off, and any backpressure wait)."),
		mergeLat: reg.NewHistogram("memagg_stream_merge_seconds",
			"Merge cycle duration (delta flatten, scatter, partition folds)."),
	}
	// View-derived state is served as scrape-time gauges rather than
	// double-maintained counters: the view pointer already is the truth.
	reg.NewGaugeFunc("memagg_stream_watermark_rows",
		"Rows visible to a snapshot taken now.", func() int64 {
			return int64(s.view.Load().watermark)
		})
	reg.NewGaugeFunc("memagg_stream_staleness_rows",
		"Rows ingested but not yet visible (queued or in unsealed deltas).",
		func() int64 {
			ing, wm := m.rows.Value(), s.view.Load().watermark
			if ing > wm {
				return int64(ing - wm)
			}
			return 0
		})
	reg.NewGaugeFunc("memagg_stream_sealed_pending",
		"Sealed deltas awaiting merge.", func() int64 {
			return int64(len(s.view.Load().sealed))
		})
	reg.NewGaugeFunc("memagg_stream_generation",
		"Sequence number of the current base generation.", func() int64 {
			if v := s.view.Load(); v.base != nil {
				return int64(v.base.seq)
			}
			return 0
		})
	reg.NewGaugeFunc("memagg_stream_groups",
		"Groups in the current base generation (unmerged deltas excluded).",
		func() int64 {
			if v := s.view.Load(); v.base != nil {
				return int64(v.base.groups)
			}
			return 0
		})
	return m
}

// Registry exposes the stream's private metric registry for serving.
func (s *Stream) Registry() *obs.Registry { return s.m.reg }

// AppendLatency returns the Append-call latency histogram's current state.
func (s *Stream) AppendLatency() obs.HistogramSnapshot { return s.m.appendLat.Snapshot() }

// MergeLatency returns the merge-cycle duration histogram's current state.
func (s *Stream) MergeLatency() obs.HistogramSnapshot { return s.m.mergeLat.Snapshot() }
