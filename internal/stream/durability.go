package stream

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/cview"
	"memagg/internal/hashtbl"
	"memagg/internal/wal"
	"memagg/internal/wal/checkpoint"
)

// ErrDurability marks errors caused by the durability layer failing: once
// the WAL cannot be written the stream degrades to read-only serving, and
// every subsequent Append/Flush returns an error wrapping this sentinel
// (with the underlying fault attached). Snapshots and Stats keep working.
var ErrDurability = errors.New("stream: durability degraded, serving read-only")

// Durability configures the stream's write-ahead log and checkpoints. The
// zero value (empty Dir) disables durability entirely.
type Durability struct {
	// Dir is the durability root. The stream keeps the WAL under Dir/wal
	// and checkpoints under Dir/checkpoint. Empty disables durability.
	Dir string

	// FS is the filesystem the log and checkpoints write through; nil means
	// the OS filesystem. Tests inject wal.MemFS / wal.ErrFS here.
	FS wal.FS

	// SyncPolicy is the WAL fsync discipline (none | interval | always).
	SyncPolicy wal.SyncPolicy

	// SyncInterval is SyncPolicy=interval's amortization period; <= 0 means
	// the wal package default (100ms).
	SyncInterval time.Duration

	// SegmentBytes is the WAL segment rotation size; <= 0 means the wal
	// package default (16 MiB).
	SegmentBytes int

	// CheckpointEvery is the checkpoint cadence in rows: a checkpoint is
	// taken when the base generation has grown this many rows past the last
	// one. 0 means 1<<20 rows; negative disables checkpointing entirely
	// (WAL-only durability — recovery replays the whole log).
	CheckpointEvery int
}

// Enabled reports whether the config asks for durability.
func (d Durability) Enabled() bool { return d.Dir != "" }

const defaultCheckpointEvery = 1 << 20

// durable is a Stream's durability state: the open log, the checkpointer,
// and the degradation latch.
type durable struct {
	fs        wal.FS
	log       *wal.Log
	ckptDir   string
	ckptEvery uint64 // 0 = checkpointing disabled

	ckWake chan struct{}
	ckWG   sync.WaitGroup

	lastCkptWM atomic.Uint64 // watermark of the last durable checkpoint
	ckptSeq    atomic.Uint64

	// degraded latches on the first WAL failure: the on-disk tail may be
	// torn, so no further appends are attempted and ingest is refused.
	degraded atomic.Bool
	causeMu  sync.Mutex
	cause    error
}

func (d *durable) degrade(err error) {
	d.causeMu.Lock()
	if d.cause == nil {
		d.cause = err
	}
	d.causeMu.Unlock()
	d.degraded.Store(true)
}

// degradedErr returns the Append/Flush error for a degraded stream.
func (d *durable) degradedErr() error {
	d.causeMu.Lock()
	cause := d.cause
	d.causeMu.Unlock()
	if cause == nil {
		return ErrDurability
	}
	return fmt.Errorf("%w: %w", ErrDurability, cause)
}

// ReadOnly reports whether the durability layer has failed and the stream
// refuses ingest (it keeps serving snapshots).
func (s *Stream) ReadOnly() bool {
	return s.dur != nil && s.dur.degraded.Load()
}

// Open starts a stream like New and, when cfg.Durability is enabled,
// recovers existing state first: the latest durable checkpoint is loaded
// as the base generation, the WAL suffix past its watermark is replayed
// into sealed deltas, and the log is left open for the write-ahead path.
// A corrupt WAL tail is truncated (longest-valid-prefix recovery); a
// corrupt checkpoint is an error wrapping wal.ErrWALCorrupt — it never
// silently drops acknowledged rows.
func Open(cfg Config) (*Stream, error) {
	cfg = cfg.withDefaults()
	if !cfg.Durability.Enabled() {
		s := newStream(cfg)
		s.start()
		return s, nil
	}
	dcfg := cfg.Durability
	fs := dcfg.FS
	if fs == nil {
		fs = wal.OSFS{}
	}
	start := time.Now()

	ckptDir := filepath.Join(dcfg.Dir, "checkpoint")
	meta, parts, err := checkpoint.Load(fs, ckptDir)
	if err != nil {
		return nil, fmt.Errorf("stream: load checkpoint: %w", err)
	}
	var (
		base   *generation
		ckptWM uint64
	)
	if meta != nil {
		if meta.Holistic != cfg.Holistic {
			return nil, fmt.Errorf("stream: checkpoint holistic=%v, config holistic=%v: state mismatch",
				meta.Holistic, cfg.Holistic)
		}
		// The checkpoint's radix fan-out is baked into its partition runs;
		// the recovered stream adopts it so partition indexes keep lining up.
		cfg.MergeBits = meta.Bits
		base = restoreGeneration(meta, parts, cfg.Holistic)
		ckptWM = meta.Watermark
	}

	s := newStream(cfg)
	every := uint64(defaultCheckpointEvery)
	switch {
	case dcfg.CheckpointEvery > 0:
		every = uint64(dcfg.CheckpointEvery)
	case dcfg.CheckpointEvery < 0:
		every = 0
	}
	s.dur = &durable{fs: fs, ckptDir: ckptDir, ckptEvery: every, ckWake: make(chan struct{}, 1)}
	s.dur.lastCkptWM.Store(ckptWM)
	if meta != nil {
		s.dur.ckptSeq.Store(meta.Seq)
	}

	// Continuous views come back in two layers: the definitions file
	// re-registers every view at its original start watermark (with any
	// snapshotted panes), then WAL replay below folds the log suffix through
	// the same per-seal hook live ingest uses — panes the snapshot already
	// covers are skipped by the views' own watermark barriers.
	saved, err := cview.Load(fs, s.cviewDir())
	if err != nil {
		return nil, fmt.Errorf("stream: load continuous views: %w", err)
	}
	for _, sv := range saved {
		if err := s.views.Restore(sv); err != nil {
			return nil, fmt.Errorf("stream: restore continuous view %q: %w", sv.Spec.Name, err)
		}
	}

	// Replay the WAL suffix: each surviving record is one sealed delta,
	// rebuilt exactly as its shard built it the first time. Records at or
	// below the checkpoint watermark are already folded into the base, but
	// still feed any continuous view whose panes lag them. SkipBelow prunes
	// whole segments only when no view needs their records either.
	var sealed []*delta
	skipBelow := ckptWM
	if wm, need := s.views.ReplayFloor(); need && wm < skipBelow {
		skipBelow = wm
	}
	replay := func(r wal.Record) error {
		end := r.EndWatermark
		prev := end - uint64(len(r.Keys))
		feed := s.views.Active() && s.views.NeedSeal(end)
		if end <= ckptWM && !feed {
			return nil
		}
		d := replayDelta(r.Keys, r.Vals, cfg.Holistic)
		if feed {
			s.foldViews(prev, end, d)
		}
		if end > ckptWM {
			sealed = append(sealed, d)
		}
		return nil
	}
	log, err := wal.Open(filepath.Join(dcfg.Dir, "wal"), wal.Options{
		FS:           fs,
		SyncPolicy:   dcfg.SyncPolicy,
		SyncInterval: dcfg.SyncInterval,
		SegmentBytes: dcfg.SegmentBytes,
		SkipBelow:    skipBelow,
		Metrics:      s.m.walMetrics(),
	}, replay)
	if err != nil {
		return nil, err
	}
	// A checkpoint ahead of the recovered log means a crash lost the WAL's
	// unsynced tail (possible under sync=none/interval) while the fsync'd
	// checkpoint survived. The stream adopts the checkpoint watermark, so
	// the log must restart from the same baseline: appending past the gap
	// would trip the next recovery's continuity check and truncate rows
	// acknowledged after this boot.
	if ckptWM > log.LastWatermark() {
		if err := log.ResetBaseline(ckptWM); err != nil {
			_ = log.Close()
			return nil, fmt.Errorf("stream: align WAL to checkpoint watermark: %w", err)
		}
	}
	s.dur.log = log

	wm := ckptWM
	for _, d := range sealed {
		wm += d.rows
	}
	s.view.Store(s.newView(base, sealed, wm))

	s.start()
	if len(sealed) > 0 {
		s.wake <- struct{}{}
	}
	s.m.recoveryLat.Observe(time.Since(start))
	return s, nil
}

// restoreGeneration rebuilds a base generation from a checkpoint's
// partition runs.
func restoreGeneration(meta *checkpoint.Meta, parts [][]checkpoint.Group, holistic bool) *generation {
	g := &generation{
		parts: make([]table, len(parts)),
		bits:  meta.Bits,
		rows:  meta.Watermark,
		seq:   meta.Seq,
	}
	for q, groups := range parts {
		if len(groups) == 0 {
			continue
		}
		tb := table{t: hashtbl.NewLinearProbe[agg.Partial](len(groups)), ar: arena.New()}
		for _, gr := range groups {
			p := tb.t.Upsert(gr.Key)
			*p = agg.RestorePartial(gr.Count, gr.Sum, gr.Min, gr.Max)
			if holistic {
				for _, v := range gr.Vals {
					p.Buffer(tb.ar, v)
				}
			}
		}
		g.groups += tb.t.Len()
		g.parts[q] = tb
	}
	return g
}

// replayDelta rebuilds one sealed delta from a WAL record's raw rows — the
// same fold absorb performs on the ingest path. Replayed deltas carry no
// raw-row mirror: their record is already in the log.
func replayDelta(keys, vals []uint64, holistic bool) *delta {
	d := &delta{table: table{
		t:  hashtbl.NewLinearProbe[agg.Partial](deltaTableCap),
		ar: arena.New(),
	}}
	for i, k := range keys {
		p := d.t.Upsert(k)
		p.Observe(vals[i])
		if holistic {
			p.Buffer(d.ar, vals[i])
		}
	}
	d.rows = uint64(len(keys))
	return d
}

// logSeal is publish's write-ahead step, called under viewMu before the
// sealed delta becomes visible: the record carries the delta's raw rows and
// the watermark the install is about to publish, so WAL order is exactly
// seal-publication order and the watermark doubles as the log sequence
// number. All of the delta's batches commit as this one record — one write,
// at most one fsync: the group-commit path. A failed append degrades the
// stream; the delta is still published (visible until the process exits,
// like every pre-durability row) but ingest stops accepting new rows.
func (s *Stream) logSeal(d *delta, endWM uint64) (spareKeys, spareVals []uint64) {
	if s.dur == nil {
		return nil, nil
	}
	// The mirror's only job is this append, and Append copies the record
	// into the log's own buffer before returning — so the backing arrays
	// are handed back to the shard for its next delta.
	spareKeys, spareVals = d.keys, d.vals
	d.keys, d.vals = nil, nil
	if s.dur.degraded.Load() {
		return spareKeys, spareVals
	}
	err := s.dur.log.Append(wal.Record{EndWatermark: endWM, Keys: spareKeys, Vals: spareVals})
	if err != nil {
		s.dur.degrade(err)
	}
	return spareKeys, spareVals
}

// checkpointLoop runs checkpoints in the background, one per doorbell
// ring. It owns no ingest-path state: checkpointOnce pins an immutable
// view, so ingest, seals and merges proceed untouched while it writes.
func (s *Stream) checkpointLoop() {
	defer s.dur.ckWG.Done()
	for range s.dur.ckWake {
		s.checkpointOnce()
	}
}

// maybeCheckpoint rings the checkpointer when the base generation has
// outgrown the last checkpoint by the configured cadence. Called by the
// merger after each install.
func (s *Stream) maybeCheckpoint(g *generation) {
	d := s.dur
	if d == nil || d.ckptEvery == 0 {
		return
	}
	if g.rows-d.lastCkptWM.Load() < d.ckptEvery {
		return
	}
	select {
	case d.ckWake <- struct{}{}:
	default:
	}
}

// checkpointOnce serializes the current base generation as a checkpoint
// and truncates the WAL below its watermark. The base is immutable, so the
// whole write happens off the ingest path. Checkpoint failures do not
// degrade the stream — the WAL still covers every acknowledged row — but a
// degraded stream writes no checkpoints: its base may already contain rows
// the torn log tail never made durable, and checkpointing them would claim
// a watermark the log cannot back.
func (s *Stream) checkpointOnce() {
	d := s.dur
	if d.degraded.Load() {
		return
	}
	base := s.view.Load().base
	if base == nil || base.rows <= d.lastCkptWM.Load() {
		return
	}
	start := time.Now()
	meta := checkpoint.Meta{
		Seq:       d.ckptSeq.Add(1),
		Watermark: base.rows,
		Bits:      base.bits,
		Holistic:  s.cfg.Holistic,
	}
	w, err := checkpoint.NewWriter(d.fs, d.ckptDir, meta)
	if err != nil {
		return
	}
	for q := range base.parts {
		tb := base.parts[q]
		err := w.WritePartition(q, func(yield func(checkpoint.Group)) {
			if tb.t == nil {
				return
			}
			tb.t.Iterate(func(k uint64, p *agg.Partial) bool {
				g := checkpoint.Group{Key: k, Count: p.Count(), Sum: p.Sum()}
				g.Min, _ = p.Min()
				g.Max, _ = p.Max()
				if s.cfg.Holistic {
					g.Vals = p.AppendValues(tb.ar, nil)
				}
				yield(g)
				return true
			})
		})
		if err != nil {
			w.Abort()
			return
		}
	}
	if err := w.Commit(); err != nil {
		w.Abort()
		return
	}
	d.lastCkptWM.Store(base.rows)
	s.m.ckpts.Inc()
	s.m.ckptLat.Observe(time.Since(start))
	// Snapshot continuous-view pane state before dropping any log segments:
	// the truncated records are the only other source those panes could
	// rebuild from.
	s.saveViewPanes()
	// Sealed segments fully below the checkpoint are now redundant.
	_ = d.log.TruncateBelow(base.rows)
}

// closeDurability finishes the durability layer during Close: stop the
// checkpointer, take a final checkpoint (the merger has already folded
// everything into the base, so a reopen loads it and replays nothing), and
// close the log. A degraded or checkpoint-disabled stream skips the final
// checkpoint.
func (s *Stream) closeDurability() {
	d := s.dur
	if d == nil {
		return
	}
	close(d.ckWake)
	d.ckWG.Wait()
	if d.ckptEvery != 0 {
		s.checkpointOnce()
	}
	if !d.degraded.Load() {
		s.saveViewPanes()
	}
	_ = d.log.Close()
}

// walMetrics assembles the wal.Metrics view over the stream's registry
// instruments.
func (m *metrics) walMetrics() *wal.Metrics {
	return &wal.Metrics{
		Appends:      m.walAppends,
		AppendBytes:  m.walAppendBytes,
		Syncs:        m.walSyncs,
		Rotations:    m.walRotations,
		SegsDropped:  m.walSegsDropped,
		ReplayedRows: m.walReplayedRows,
		SyncLat:      m.walSyncLat,
	}
}
