package stream

import "time"

// generation is one immutable base: the fold of every delta sealed before
// it was built, radix-partitioned into 2^bits disjoint tables (partition q
// holds the keys whose radix.PartitionIndex is q). Disjointness is what
// lets merge cycles rebuild partitions independently and in parallel, and
// lets snapshots iterate partitions knowing each group appears exactly
// once.
type generation struct {
	parts  []table // len 2^bits; a partition with no groups has a nil table
	bits   int
	rows   uint64
	groups int
	seq    uint64
}

// mergerLoop is the background folder: each doorbell ring merges every
// sealed delta pending at that moment into a new base generation. After
// Close drains the shards, the final loop folds whatever remains, so a
// closed stream's view is a single base generation. With the merger
// disabled the loop only drains the doorbell; sealed deltas stay in the
// view (snapshot queries fold them per view) until an explicit MergeNow.
func (s *Stream) mergerLoop() {
	defer s.mergerWG.Done()
	if s.cfg.DisableMerger {
		for range s.wake {
		}
		return
	}
	for range s.wake {
		s.mergeOnce()
	}
	for s.mergeOnce() {
	}
}

// MergeNow synchronously folds every currently sealed delta into a new
// base generation — explicit compaction for merger-disabled streams (and
// a deterministic layering tool for benchmarks). Safe to call at any
// time; it serializes with the background merger. Returns false when
// there was nothing to merge.
func (s *Stream) MergeNow() bool { return s.mergeOnce() }

// mergeOnce folds the currently sealed deltas (a prefix of the view's
// sealed list — seals only append) into a new generation and installs the
// updated view. Returns false when there was nothing to merge. mergeMu
// serializes whole cycles: the load-build-install sequence assumes the
// sealed prefix it folded is still the view's prefix at install time,
// which concurrent cycles (background merger racing MergeNow) would break.
func (s *Stream) mergeOnce() bool {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	v := s.view.Load()
	n := len(v.sealed)
	if n == 0 {
		return false
	}
	start := time.Now()
	g := s.buildGeneration(v.base, v.sealed[:n])
	elapsed := time.Since(start)

	s.viewMu.Lock()
	cur := s.view.Load()
	// cur.sealed extends v.sealed (installs serialize through viewMu and
	// seals append), so the unmerged suffix is everything past the prefix
	// we just folded. The watermark is unchanged: merging moves rows
	// between layers of the view, it does not add any.
	s.install(s.newView(g, cur.sealed[n:], cur.watermark))
	s.viewMu.Unlock()

	s.m.merges.Inc()
	s.m.mergeNs.Add(uint64(elapsed))
	s.m.lastMerge.Set(int64(elapsed))
	s.m.mergeLat.Observe(elapsed)
	s.maybeCheckpoint(g)
	return true
}

// buildGeneration folds base plus the sealed deltas ds into a fresh
// generation via the shared partition-wise fold (foldParts) at the
// merger's parallelism, then derives the generation bookkeeping.
func (s *Stream) buildGeneration(base *generation, ds []*delta) *generation {
	parts := s.foldParts(base, ds, s.cfg.MergeWorkers)

	g := &generation{parts: parts, bits: s.cfg.MergeBits, seq: 1}
	if base != nil {
		g.rows = base.rows
		g.seq = base.seq + 1
	}
	for _, d := range ds {
		g.rows += d.rows
	}
	for _, tb := range parts {
		if tb.t != nil {
			g.groups += tb.t.Len()
		}
	}
	return g
}
