package stream

import (
	"sync"
	"sync/atomic"
	"time"

	"memagg/internal/agg"
	"memagg/internal/arena"
	"memagg/internal/hashtbl"
	"memagg/internal/radix"
)

// generation is one immutable base: the fold of every delta sealed before
// it was built, radix-partitioned into 2^bits disjoint tables (partition q
// holds the keys whose radix.PartitionIndex is q). Disjointness is what
// lets merge cycles rebuild partitions independently and in parallel, and
// lets snapshots iterate partitions knowing each group appears exactly
// once.
type generation struct {
	parts  []table // len 2^bits; a partition with no groups has a nil table
	bits   int
	rows   uint64
	groups int
	seq    uint64
}

// mergerLoop is the background folder: each doorbell ring merges every
// sealed delta pending at that moment into a new base generation. After
// Close drains the shards, the final loop folds whatever remains, so a
// closed stream's view is a single base generation.
func (s *Stream) mergerLoop() {
	defer s.mergerWG.Done()
	for range s.wake {
		s.mergeOnce()
	}
	for s.mergeOnce() {
	}
}

// mergeOnce folds the currently sealed deltas (a prefix of the view's
// sealed list — seals only append) into a new generation and installs the
// updated view. Returns false when there was nothing to merge.
func (s *Stream) mergeOnce() bool {
	v := s.view.Load()
	n := len(v.sealed)
	if n == 0 {
		return false
	}
	start := time.Now()
	g := s.buildGeneration(v.base, v.sealed[:n])
	elapsed := time.Since(start)

	s.viewMu.Lock()
	cur := s.view.Load()
	// cur.sealed extends v.sealed (installs serialize through viewMu and
	// seals append), so the unmerged suffix is everything past the prefix
	// we just folded. The watermark is unchanged: merging moves rows
	// between layers of the view, it does not add any.
	s.install(&view{base: g, sealed: cur.sealed[n:], watermark: cur.watermark})
	s.viewMu.Unlock()

	s.m.merges.Inc()
	s.m.mergeNs.Add(uint64(elapsed))
	s.m.lastMerge.Set(int64(elapsed))
	s.m.mergeLat.Observe(elapsed)
	s.maybeCheckpoint(g)
	return true
}

// srcPartial locates one delta group during a merge: the partial plus the
// arena its buffered values live in.
type srcPartial struct {
	p  *agg.Partial
	ar *arena.Arena
}

// buildGeneration folds base plus the sealed deltas ds into a fresh
// generation. The deltas' groups are flattened into key/index columns and
// scattered with the Hash_RX partitioner (radix.Partition); each partition
// is then rebuilt independently — copy of the base partition, then the
// delta groups that landed there — across MergeWorkers. Partitions that
// received no delta groups are shared with the previous generation
// unchanged (both are immutable, so structural sharing is free).
func (s *Stream) buildGeneration(base *generation, ds []*delta) *generation {
	bits := s.cfg.MergeBits
	holistic := s.cfg.Holistic

	total := 0
	for _, d := range ds {
		total += d.t.Len()
	}
	keys := make([]uint64, 0, total)
	idxs := make([]uint64, 0, total)
	refs := make([]srcPartial, 0, total)
	for _, d := range ds {
		ar := d.ar
		d.t.Iterate(func(k uint64, p *agg.Partial) bool {
			keys = append(keys, k)
			idxs = append(idxs, uint64(len(refs)))
			refs = append(refs, srcPartial{p: p, ar: ar})
			return true
		})
	}

	pt := radix.Partition(keys, idxs, bits, s.cfg.MergeWorkers)
	p := pt.NumPartitions()
	parts := make([]table, p)
	eachPartition(s.cfg.MergeWorkers, p, func(q int) {
		var bp table
		baseLen := 0
		if base != nil {
			bp = base.parts[q]
			if bp.t != nil {
				baseLen = bp.t.Len()
			}
		}
		pk, pi := pt.PartKeys(q), pt.PartVals(q)
		if len(pk) == 0 {
			parts[q] = bp // untouched: share with the previous generation
			return
		}
		nt := table{
			t:  hashtbl.NewLinearProbe[agg.Partial](baseLen + len(pk)),
			ar: arena.New(),
		}
		if bp.t != nil {
			mergeTable(nt, bp, holistic)
		}
		// The delta groups land via the same blocked-hash loop as the
		// batch kernels: pk is a plain column, so the blocks need no
		// staging.
		var h [hashtbl.HashBatch]uint64
		j := 0
		for ; j+hashtbl.HashBatch <= len(pk); j += hashtbl.HashBatch {
			bk := pk[j : j+hashtbl.HashBatch : j+hashtbl.HashBatch]
			hashtbl.MixBatch(&h, bk)
			for jj, k := range bk {
				r := refs[pi[j+jj]]
				np := nt.t.UpsertH(k, h[jj])
				np.Merge(r.p)
				if holistic {
					np.MergeValues(nt.ar, r.p, r.ar)
				}
			}
		}
		for ; j < len(pk); j++ {
			r := refs[pi[j]]
			np := nt.t.Upsert(pk[j])
			np.Merge(r.p)
			if holistic {
				np.MergeValues(nt.ar, r.p, r.ar)
			}
		}
		parts[q] = nt
	})

	g := &generation{parts: parts, bits: bits, seq: 1}
	if base != nil {
		g.rows = base.rows
		g.seq = base.seq + 1
	}
	for _, d := range ds {
		g.rows += d.rows
	}
	for _, tb := range parts {
		if tb.t != nil {
			g.groups += tb.t.Len()
		}
	}
	return g
}

// eachPartition runs f(q) for every partition q in [0, p) across workers
// with dynamic assignment (an atomic cursor), so a heavy partition occupies
// one worker while the rest drain the queue — the same skew-absorbing
// schedule Hash_RX uses for its phase-2 builds.
func eachPartition(workers, p int, f func(q int)) {
	if workers > p {
		workers = p
	}
	if workers <= 1 {
		for q := 0; q < p; q++ {
			f(q)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				q := int(next.Add(1)) - 1
				if q >= p {
					return
				}
				f(q)
			}
		}()
	}
	wg.Wait()
}
