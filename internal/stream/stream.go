// Package stream is the streaming aggregation subsystem: it maintains the
// repo's aggregate queries while rows keep arriving, instead of requiring a
// complete dataset up front like the batch engines in internal/agg.
//
// The design is a miniature LSM for aggregate state, built from three
// pieces the repo already has:
//
//   - Sharded ingest. N writer shards each own a private delta table
//     (hashtbl.LinearProbe over agg.Partial — every group's distributive
//     folds maintained eagerly, plus arena-backed value lists when holistic
//     queries are enabled). Appends are batched and flow through a bounded
//     channel per shard: when a shard falls behind, Append blocks — the
//     backpressure contract; rows are never dropped.
//
//   - Sealed deltas and merged generations. When a delta reaches the seal
//     threshold its shard freezes it and publishes it into the queryable
//     view; a background merger folds batches of sealed deltas into a new
//     immutable base generation, radix-partitioned by internal/radix so the
//     fold parallelizes over disjoint key partitions (the Hash_RX
//     discipline: every key lives in exactly one partition, so partitions
//     merge independently with no locks). Partitions untouched by a merge
//     cycle are shared structurally with the previous generation.
//
//   - Snapshot queries. Snapshot atomically pins the current view — one
//     base generation plus the sealed deltas not yet merged — with a plain
//     atomic pointer load: no stop-the-world, no reader/writer locks.
//     Everything a view references is immutable, so readers compute any
//     Q1–Q7 result consistent with the view's row-count watermark while
//     writers and the merger proceed; superseded state is reclaimed by the
//     garbage collector once the last snapshot drops it (GC is the epoch
//     scheme).
//
// Mergeability is what makes the whole scheme sound: agg.Partial.Merge is
// exact for every distributive ReduceOp and for the algebraic avg, and the
// holistic functions are order-insensitive over the merged value multiset,
// so any interleaving of shards, seals and merges yields results identical
// to a batch engine run over the same rows (the stream-vs-batch equivalence
// gate in equiv_test.go checks exactly that).
package stream

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"memagg/internal/agg"
	"memagg/internal/cview"
	"memagg/internal/obs"
	"memagg/internal/radix"
)

// ErrClosed is returned by Append and Flush after Close.
var ErrClosed = errors.New("stream: closed")

// Config sizes a Stream. The zero value is usable; every field has a
// sensible default.
type Config struct {
	// Shards is the number of writer shards (private delta tables fed by
	// independent queues). <= 0 uses GOMAXPROCS.
	Shards int

	// QueueDepth bounds each shard's ingest channel, in batches. A full
	// queue blocks Append — backpressure, not loss. <= 0 means 8.
	QueueDepth int

	// SealRows is the delta size (rows) that triggers a seal: the shard
	// freezes the delta, publishes it to the queryable view, and starts a
	// fresh one. Smaller values lower snapshot staleness but merge more
	// often. <= 0 means 32768.
	SealRows int

	// MergeBits is the radix fan-out of the base generation: groups are
	// partitioned by the top MergeBits of the shared hash finalizer, and
	// merge cycles rebuild only the partitions that received delta rows.
	// Fixed for the stream's lifetime. <= 0 means 6 (64 partitions);
	// clamped to [1, radix.MaxBits].
	MergeBits int

	// MergeWorkers is the parallelism of a merge cycle (the radix scatter
	// and the per-partition folds). <= 0 uses GOMAXPROCS.
	MergeWorkers int

	// EstimatedGroups is the expected group-by cardinality of the stream
	// (Section 3.2's "cardinality is unknown up front" knob, surfaced).
	// It seeds each shard's delta table — capped at SealRows, since a
	// delta can never hold more groups than rows — so a well-estimated
	// stream's deltas skip their doubling cascade. <= 0 keeps the small
	// default seed (growth amortizes it for low-cardinality streams).
	EstimatedGroups int

	// QueryWorkers is the parallelism of snapshot queries: the
	// partition-wise fold of sealed deltas into a view's sources and the
	// partition scans of the query kernels. Snapshots whose group count
	// falls below the serial cutoff scan on the calling goroutine
	// regardless, so tiny views never pay goroutine overhead. <= 0 uses
	// GOMAXPROCS.
	QueryWorkers int

	// QueryCacheEntries bounds the per-view result cache: snapshots of one
	// view are immutable, so materialized query results are cached on the
	// view keyed by query id and parameters, with single-flight so
	// concurrent identical queries compute once. A new view (any seal or
	// merge moves the watermark) starts a fresh cache; superseded caches
	// die with their views. 0 means 128 entries; < 0 disables caching.
	// Cached vector results are shared slices — treat them as read-only
	// (the memagg facade copies on conversion).
	QueryCacheEntries int

	// QuerySerialCutoff overrides the group count below which query
	// kernels scan serially on the calling goroutine. 0 keeps the
	// measured default (see serialQueryCutoff); < 0 forces the parallel
	// path at every size; a huge value forces the serial path. Mainly a
	// measurement knob — the harness uses it to locate the crossover.
	QuerySerialCutoff int

	// Holistic retains every group's value multiset (arena-backed lists),
	// enabling median/quantile/mode snapshot queries at the memory cost
	// holistic functions always carry. Off, holistic queries return
	// agg.ErrUnsupported.
	Holistic bool

	// DisableMerger turns the background merger off: sealed deltas
	// accumulate in the view and snapshot queries fold them partition-wise
	// per view instead. Compaction then happens only through explicit
	// MergeNow calls — the manual-compaction mode the query benchmarks and
	// read-replica deployments use. Not meant for durable streams
	// (checkpoints ride on merge cycles).
	DisableMerger bool

	// Durability enables the write-ahead log and checkpoints (see the
	// Durability type). Streams with durability enabled must be built with
	// Open, which recovers existing state; New panics on a durable config.
	Durability Durability

	// testBatchHook, when set, runs in the shard goroutine for every batch
	// received. Test-only: it lets the backpressure test stall a shard
	// deterministically.
	testBatchHook func()
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.SealRows <= 0 {
		c.SealRows = 1 << 15
	}
	if c.MergeBits <= 0 {
		c.MergeBits = 6
	}
	if c.MergeBits > radix.MaxBits {
		c.MergeBits = radix.MaxBits
	}
	if c.MergeWorkers <= 0 {
		c.MergeWorkers = runtime.GOMAXPROCS(0)
	}
	if c.QueryWorkers <= 0 {
		c.QueryWorkers = runtime.GOMAXPROCS(0)
	}
	if c.QueryCacheEntries == 0 {
		c.QueryCacheEntries = 128
	}
	return c
}

// Stream is a live streaming aggregation: Append feeds it, Snapshot reads
// it. Append is safe for concurrent use by multiple producers; Snapshot and
// Stats are safe from any goroutine at any time; Close is idempotent and
// safe to race with Append and Flush (concurrent callers get ErrClosed).
type Stream struct {
	cfg    Config
	shards []*shard
	m      *metrics
	dur    *durable        // nil when durability is disabled
	views  *cview.Registry // continuous views, fed from publish

	// view is the queryable state: an immutable (base, sealed deltas,
	// watermark) triple swapped atomically. viewMu serializes installs
	// (seals and merge publications); readers never take it.
	view   atomic.Pointer[view]
	viewMu sync.Mutex

	wake    chan struct{} // merger doorbell (capacity 1)
	mergeMu sync.Mutex    // serializes merge cycles (background merger vs MergeNow)

	// bufs recycles batch backing arrays between the shards (which retire
	// a batch once absorbed) and the copying Append path (which needs a
	// fresh scratch buffer per call) — with a steady producer the copy
	// path stops allocating. Ownership-transferred chunk columns join the
	// same pool after absorption.
	bufs sync.Pool

	rr     atomic.Uint64 // round-robin shard cursor
	closed atomic.Bool

	// closeMu fences Append/Flush (read side) against Close (write side):
	// Close cannot close the shard channels while a send is in flight, and
	// a call that loses the race observes closed and returns ErrClosed
	// instead of panicking on a closed channel.
	closeMu sync.RWMutex

	shardWG  sync.WaitGroup
	mergerWG sync.WaitGroup
}

// view is one immutable queryable state. watermark is the number of rows
// the view covers: base.rows plus the sealed deltas' rows. Rows still in
// shard queues or unsealed deltas are not yet visible.
//
// Query state hangs off the view rather than the Snapshot: everything a
// view references is immutable, so the partition-wise fold of its sealed
// deltas (srcs) and the materialized results keyed by its watermark
// (cache) are computed once and shared by every snapshot that pins the
// view, no matter how many are taken. Both die with the view.
type view struct {
	base      *generation
	sealed    []*delta
	watermark uint64

	// groupBound is a cheap upper bound on the view's distinct-key count:
	// base groups plus every sealed delta's group count, without deduping
	// across layers. Pre-sizing reads it so sizing a result slice never
	// forces the delta fold.
	groupBound int

	// fold guards srcs: the view's key-disjoint source tables. With no
	// sealed deltas the base partitions serve directly (zero copy, set
	// eagerly); otherwise the first query folds base + deltas partition by
	// partition (see foldParts).
	fold sync.Once
	srcs []table

	// cache is the watermark-keyed result cache (nil when disabled).
	cache *queryCache
}

// newView builds a view over the given layers, deriving the group bound
// and attaching a fresh result cache. Every view the stream installs goes
// through here.
func (s *Stream) newView(base *generation, sealed []*delta, watermark uint64) *view {
	v := &view{base: base, sealed: sealed, watermark: watermark}
	if base != nil {
		v.groupBound = base.groups
	}
	for _, d := range sealed {
		v.groupBound += d.t.Len()
	}
	if n := s.cfg.QueryCacheEntries; n > 0 {
		v.cache = newQueryCache(n)
	}
	return v
}

// batch is one ingest unit: either rows (keys/vals, equal length) or a
// flush marker (ack non-nil). After its shard absorbs it the batch's
// backing memory is dead and recycles into the stream's buffer pool: buf
// is the single allocation behind a copied batch (keys and vals are its
// halves — recycle buf, never the halves, or the pool would hand out
// aliasing buffers), while an ownership-transferred chunk's columns
// (owned) recycle individually.
type batch struct {
	keys, vals []uint64
	buf        []uint64
	owned      bool
	ack        chan<- struct{}
}

// New starts a volatile stream: Shards writer goroutines plus one merger.
// A config with durability enabled must go through Open (there may be
// state on disk to recover); New panics on one.
func New(cfg Config) *Stream {
	if cfg.Durability.Enabled() {
		panic("stream: config enables durability; use Open, not New")
	}
	s := newStream(cfg.withDefaults())
	s.start()
	return s
}

// newStream builds a stream without starting its goroutines, so Open can
// install recovered state into the view first. cfg must already have
// defaults applied.
func newStream(cfg Config) *Stream {
	s := &Stream{cfg: cfg, wake: make(chan struct{}, 1)}
	s.m = newMetrics(s)
	s.views = cview.NewRegistry(cfg.Holistic, s.m.cviewMetrics())
	s.view.Store(s.newView(nil, nil, 0))
	return s
}

// start launches the shard writers, the merger, and (when durable) the
// checkpointer.
func (s *Stream) start() {
	s.shards = make([]*shard, s.cfg.Shards)
	for i := range s.shards {
		sh := &shard{s: s, ch: make(chan batch, s.cfg.QueueDepth)}
		s.shards[i] = sh
		s.shardWG.Add(1)
		go sh.run()
	}
	s.mergerWG.Add(1)
	go s.mergerLoop()
	if s.dur != nil {
		s.dur.ckWG.Add(1)
		go s.checkpointLoop()
	}
}

// Append ingests one batch of rows: vals[i] belongs to keys[i], and a short
// vals slice zero-extends, matching the batch operators. The batch is
// copied (the caller may reuse its slices). It is the row-pair form of
// AppendChunk — one ingest code path underneath.
func (s *Stream) Append(keys, vals []uint64) error {
	return s.AppendChunk(agg.Chunk{Keys: keys, Vals: vals}, false)
}

// AppendChunk ingests one columnar chunk and hands it to one shard,
// round-robin; if that shard's queue is full, AppendChunk blocks until
// the shard drains — rows are never dropped. Rows become visible to
// snapshots once their delta seals (see Flush).
//
// With owned false the columns are copied (the caller may reuse them),
// into a pooled scratch buffer so a steady producer allocates nothing.
// With owned true the chunk's slices transfer to the stream — zero copy:
// the receiving shard folds them straight into its delta table and then
// recycles them through the same pool the copying path draws from. The
// caller must not touch either column again, and the columns must not
// overlap each other (distinct allocations, or disjoint ranges of one).
// A short value column zero-extends in both modes.
func (s *Stream) AppendChunk(c agg.Chunk, owned bool) error {
	if err := c.Validate(); err != nil {
		return err
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if s.dur != nil && s.dur.degraded.Load() {
		return s.dur.degradedErr()
	}
	n := len(c.Keys)
	if n == 0 {
		return nil
	}
	mk := obs.Start()
	b := batch{owned: owned}
	if owned {
		b.keys, b.vals = c.Keys, c.Vals
		if len(b.vals) < n {
			// Zero-extend the transferred value column; the grown slice is
			// ours either way.
			nv := make([]uint64, n)
			copy(nv, c.Vals)
			b.vals = nv
		}
	} else {
		buf := s.getBuf(2 * n)
		b.keys, b.vals, b.buf = buf[:n:n], buf[n:], buf
		copy(b.keys, c.Keys)
		m := copy(b.vals, c.Vals)
		clear(b.vals[m:]) // pooled buffers come back dirty
	}
	// Count before the send: a fast shard may seal these rows the moment
	// they land, and the watermark must never be observed ahead of the
	// ingested count (rows waiting in a queue are "ingested, not visible").
	s.m.rows.Add(uint64(n))
	s.m.batches.Inc()
	sh := s.shards[int(s.rr.Add(1)-1)%len(s.shards)]
	select {
	case sh.ch <- b:
	default:
		// Queue full: the backpressure path. Time the blocking send so the
		// blocked-nanos counter exposes how long producers stall. The fast
		// path above pays only a channel try-send for this accounting.
		start := time.Now()
		sh.ch <- b
		s.m.blockedNs.Add(uint64(time.Since(start)))
	}
	mk.Tick(s.m.appendLat)
	return nil
}

// getBuf returns a scratch buffer of length n from the recycle pool, or
// a fresh one when the pool is empty or its head is too small.
func (s *Stream) getBuf(n int) []uint64 {
	if v := s.bufs.Get(); v != nil {
		if b := *(v.(*[]uint64)); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]uint64, n)
}

// putBuf returns a retired buffer to the recycle pool.
func (s *Stream) putBuf(b []uint64) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	s.bufs.Put(&b)
}

// recycleBatch retires an absorbed batch's backing memory into the pool.
// A copied batch recycles its single backing allocation; an
// ownership-transferred chunk recycles each column.
func (s *Stream) recycleBatch(b batch) {
	if b.buf != nil {
		s.putBuf(b.buf)
		return
	}
	if b.owned {
		s.putBuf(b.keys)
		s.putBuf(b.vals)
	}
}

// Flush seals every shard's current delta and returns once the rows of all
// batches this caller appended before the call are visible to snapshots
// (the per-shard queues are FIFO, so the flush markers drain behind them).
// It does not wait for the merger; sealed deltas are already queryable.
func (s *Stream) Flush() error {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if s.dur != nil && s.dur.degraded.Load() {
		return s.dur.degradedErr()
	}
	ack := make(chan struct{}, len(s.shards))
	for _, sh := range s.shards {
		sh.ch <- batch{ack: ack}
	}
	for range s.shards {
		<-ack
	}
	return nil
}

// Close seals all remaining rows, waits for the merger to fold every
// sealed delta into a final base generation, and stops the background
// goroutines. The stream stays queryable (Snapshot/Stats) after Close;
// further Append/Flush calls return ErrClosed, as does a second Close —
// it is idempotent and safe to call concurrently with Append and Flush
// (in-flight calls complete first; late callers get ErrClosed).
func (s *Stream) Close() error {
	s.closeMu.Lock()
	if !s.closed.CompareAndSwap(false, true) {
		s.closeMu.Unlock()
		return ErrClosed
	}
	// With the write lock held no Append/Flush send is in flight and none
	// can start (they observe closed under the read lock), so closing the
	// shard channels cannot race a send.
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.closeMu.Unlock()
	s.shardWG.Wait()
	close(s.wake)
	s.mergerWG.Wait()
	s.closeDurability()
	return nil
}

// Closed reports whether Close has begun: the stream refuses ingest but
// keeps serving snapshots. With ReadOnly it feeds readiness probes
// (/readyz in cmd/aggserve) — a closed or degraded node should leave the
// ingest rotation while staying queryable.
func (s *Stream) Closed() bool { return s.closed.Load() }

// install publishes nv as the current view. Callers hold viewMu. The
// watermark is append-only state, so it must never move backwards — a
// regression here would hand snapshots an inconsistent row count.
func (s *Stream) install(nv *view) {
	if cur := s.view.Load(); cur != nil && nv.watermark < cur.watermark {
		panic("stream: watermark moved backwards")
	}
	s.view.Store(nv)
}

// publish appends a freshly sealed delta to the view (making its rows
// visible) and rings the merger's doorbell. With durability enabled the
// delta's record hits the WAL first, still under viewMu — write-ahead: by
// the time a snapshot can observe the rows, the log already carries them.
func (s *Stream) publish(d *delta) (spareKeys, spareVals []uint64) {
	s.viewMu.Lock()
	v := s.view.Load()
	endWM := v.watermark + d.rows
	spareKeys, spareVals = s.logSeal(d, endWM)
	sealed := make([]*delta, len(v.sealed)+1)
	copy(sealed, v.sealed)
	sealed[len(v.sealed)] = d
	s.install(s.newView(v.base, sealed, endWM))
	// Continuous views absorb the delta under the same lock: pane
	// assignment follows publication (= WAL) order exactly, and a view
	// registered at watermark w sees precisely the seals past w.
	if s.views.Active() {
		s.foldViews(v.watermark, endWM, d)
	}
	s.viewMu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return spareKeys, spareVals
}

// Stats is a point-in-time report of the stream's ingest and merge state.
type Stats struct {
	Shards   int
	Holistic bool

	// Ingested counts rows accepted by Append; Watermark counts rows
	// visible to a Snapshot taken now; Staleness is their difference (rows
	// still in shard queues or unsealed deltas).
	Ingested  uint64
	Watermark uint64
	Staleness uint64

	// Batches counts Append calls that carried rows; Seals counts deltas
	// frozen and published; Snapshots counts Snapshot calls; Blocked is
	// the total time Append spent stalled on full shard queues
	// (backpressure).
	Batches   uint64
	Seals     uint64
	Snapshots uint64
	Blocked   time.Duration

	// SealedPending is the number of sealed deltas awaiting merge;
	// Generation counts base generations built; Groups is the group count
	// of the current base (excluding unmerged deltas).
	SealedPending int
	Generation    uint64
	Groups        int

	// Merges counts merge cycles; MergeTotal/MergeLast time them.
	Merges     uint64
	MergeTotal time.Duration
	MergeLast  time.Duration

	// Result-cache outcomes across every view: queries answered from a
	// view's materialized results, queries that computed them, and entries
	// evicted by the per-view capacity bound.
	QueryCacheHits      uint64
	QueryCacheMisses    uint64
	QueryCacheEvictions uint64

	// Continuous-view state: registered views, live panes across them,
	// pane evictions, per-view-per-seal fold updates, and reads (total and
	// answered from the version cache).
	Views            int
	ViewPanesLive    int
	ViewPanesEvicted uint64
	ViewUpdates      uint64
	ViewReads        uint64
	ViewReadsCached  uint64

	// Durable reports whether the stream runs with a WAL; ReadOnly whether
	// the durability layer failed and ingest is refused. The remaining
	// fields are zero for volatile streams. CheckpointWatermark is the row
	// count covered by the last durable checkpoint (recovery loads it and
	// replays only the WAL suffix past it).
	Durable             bool
	ReadOnly            bool
	WALAppends          uint64
	WALFsyncs           uint64
	WALSegmentRotations uint64
	WALSizeBytes        int64
	Checkpoints         uint64
	CheckpointWatermark uint64
}

// Stats reports the stream's current state, read from the same obs-backed
// instruments /metrics serves. Safe from any goroutine.
func (s *Stream) Stats() Stats {
	v := s.view.Load()
	ing := s.m.rows.Value()
	st := Stats{
		Shards:        len(s.shards),
		Holistic:      s.cfg.Holistic,
		Ingested:      ing,
		Watermark:     v.watermark,
		Batches:       s.m.batches.Value(),
		Seals:         s.m.seals.Value(),
		Snapshots:     s.m.snapshots.Value(),
		Blocked:       time.Duration(s.m.blockedNs.Value()),
		SealedPending: len(v.sealed),
		Merges:        s.m.merges.Value(),
		MergeTotal:    time.Duration(s.m.mergeNs.Value()),
		MergeLast:     time.Duration(s.m.lastMerge.Value()),

		QueryCacheHits:      s.m.qcacheHits.Value(),
		QueryCacheMisses:    s.m.qcacheMisses.Value(),
		QueryCacheEvictions: s.m.qcacheEvicts.Value(),

		Views:            s.views.Len(),
		ViewPanesLive:    s.views.PanesLive(),
		ViewPanesEvicted: s.m.cviewPanesEvicted.Value(),
		ViewUpdates:      s.m.cviewUpdates.Value(),
		ViewReads:        s.m.cviewReads.Value(),
		ViewReadsCached:  s.m.cviewReadsCached.Value(),
	}
	if ing > v.watermark {
		st.Staleness = ing - v.watermark
	}
	if v.base != nil {
		st.Generation = v.base.seq
		st.Groups = v.base.groups
	}
	if s.dur != nil {
		st.Durable = true
		st.ReadOnly = s.dur.degraded.Load()
		st.WALAppends = s.m.walAppends.Value()
		st.WALFsyncs = s.m.walSyncs.Value()
		st.WALSegmentRotations = s.m.walRotations.Value()
		if s.dur.log != nil {
			st.WALSizeBytes = s.dur.log.SizeBytes()
		}
		st.Checkpoints = s.m.ckpts.Value()
		st.CheckpointWatermark = s.dur.lastCkptWM.Load()
	}
	return st
}
