package stream

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"memagg/internal/agg"
	"memagg/internal/cview"
	"memagg/internal/dataset"
	"memagg/internal/obs"
	"memagg/internal/wal"
)

// viewConfig is the deterministic continuous-view subject: one shard fed
// serially with a seal threshold past the dataset, so every Flush seals
// exactly the batches appended since the last one — seal boundaries are
// batch boundaries, and the test knows each pane's exact row range.
func viewConfig() Config {
	return Config{Shards: 1, QueueDepth: 8, SealRows: 1 << 20, MergeBits: 4, Holistic: true}
}

// viewFeed drives a stream one seal at a time and remembers each seal's
// end watermark, so tests can reconstruct any view's exact window rows.
type viewFeed struct {
	s          *Stream
	keys, vals []uint64
	fed        int
	ends       []uint64
}

func (f *viewFeed) seal(t *testing.T, n int) {
	t.Helper()
	if err := f.s.Append(f.keys[f.fed:f.fed+n], f.vals[f.fed:f.fed+n]); err != nil {
		t.Fatal(err)
	}
	if err := f.s.Flush(); err != nil {
		t.Fatal(err)
	}
	f.fed += n
	f.ends = append(f.ends, uint64(f.fed))
}

// testFloor replicates the retention rule independently of cview: the
// lowest retained pane index while pane pIdx is current.
func testFloor(sp cview.Spec, pIdx uint64) uint64 {
	n := uint64(sp.Panes)
	if sp.Sliding {
		if pIdx >= n-1 {
			return pIdx - (n - 1)
		}
		return 0
	}
	return pIdx - pIdx%n
}

// windowRows reconstructs the rows a view's window covers from the seal
// history: the same pane arithmetic cview applies, computed independently.
func (f *viewFeed) windowRows(sp cview.Spec, startWM uint64) (wk, wv []uint64, wstart uint64) {
	tail := uint64(0)
	for _, end := range f.ends {
		if end > startWM {
			tail = end
		}
	}
	if tail == 0 {
		return nil, nil, startWM
	}
	floor := testFloor(sp, (tail-1)/sp.PaneRows)
	wstart = floor * sp.PaneRows
	if wstart < startWM {
		wstart = startWM
	}
	prev := uint64(0)
	for _, end := range f.ends {
		if end > startWM && (end-1)/sp.PaneRows >= floor {
			wk = append(wk, f.keys[prev:end]...)
			wv = append(wv, f.vals[prev:end]...)
		}
		prev = end
	}
	return wk, wv, wstart
}

// refValue runs q over a fresh volatile stream holding exactly the window
// rows — the batch recompute the view must match bit for bit.
func refValue(t *testing.T, q cview.Query, wk, wv []uint64) any {
	t.Helper()
	s := New(viewConfig())
	defer s.Close()
	if len(wk) > 0 {
		if err := s.Append(wk, wv); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	sn := s.Snapshot()
	var (
		out any
		err error
	)
	switch q.ID {
	case cview.QCountByKey:
		out = sn.CountByKey()
	case cview.QAvgByKey:
		out = sn.AvgByKey()
	case cview.QMedianByKey:
		out, err = sn.MedianByKey()
	case cview.QCount:
		out = sn.Count()
	case cview.QAvg:
		out = sn.Avg()
	case cview.QMedian:
		out, err = sn.Median()
	case cview.QRange:
		out, err = sn.CountRange(q.Lo, q.Hi)
	case cview.QReduce:
		out = sn.Reduce(q.Op)
	case cview.QQuantile:
		out, err = sn.QuantileByKey(q.P)
	case cview.QMode:
		out, err = sn.ModeByKey()
	default:
		t.Fatalf("unhandled query %v", q)
	}
	if err != nil {
		t.Fatalf("reference %v: %v", q, err)
	}
	return out
}

// sortedValue key-sorts vector results in place so hash-order outputs
// compare with reflect.DeepEqual; scalars pass through.
func sortedValue(v any) any {
	switch vv := v.(type) {
	case []agg.GroupCount:
		return sortedQ1(vv)
	case []agg.GroupFloat:
		return sortedQF(vv)
	case []agg.GroupUint:
		return sortedQU(vv)
	}
	return v
}

func equivQueries() []cview.Query {
	return []cview.Query{
		{ID: cview.QCountByKey},
		{ID: cview.QAvgByKey},
		{ID: cview.QMedianByKey},
		{ID: cview.QCount},
		{ID: cview.QAvg},
		{ID: cview.QMedian},
		{ID: cview.QRange, Lo: 20, Hi: 200},
		{ID: cview.QReduce, Op: agg.OpSum},
		{ID: cview.QReduce, Op: agg.OpMin},
		{ID: cview.QReduce, Op: agg.OpMax},
		{ID: cview.QQuantile, P: 0.9},
		{ID: cview.QMode},
	}
}

// TestCViewBatchEquivalence is the window-vs-batch gate: for every query
// × window shape, after every phase of ingest, the view's incrementally
// maintained result must reflect.DeepEqual the batch recompute over
// exactly the rows its window covers — holistic quantile and mode
// included. Batch sizes both cross pane boundaries and land exactly on
// them.
func TestCViewBatchEquivalence(t *testing.T) {
	windows := []struct {
		paneRows uint64
		panes    int
		sliding  bool
	}{
		{500, 4, true},
		{500, 4, false},
		{777, 3, true},
		{250, 2, false},
	}
	spec := dataset.Spec{Kind: dataset.Zipf, N: 6_000, Cardinality: 300, Seed: 81}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)

	s := New(viewConfig())
	defer s.Close()
	queries := equivQueries()
	specs := make([]cview.Spec, 0, len(windows)*len(queries))
	for wi, w := range windows {
		for qi, q := range queries {
			sp := cview.Spec{
				Name:     fmt.Sprintf("w%d-q%d", wi, qi),
				Query:    q,
				PaneRows: w.paneRows,
				Panes:    w.panes,
				Sliding:  w.sliding,
			}
			if err := s.RegisterView(sp); err != nil {
				t.Fatal(err)
			}
			specs = append(specs, sp)
		}
	}

	feed := &viewFeed{s: s, keys: keys, vals: vals}
	verify := func(phase string) {
		t.Helper()
		for _, sp := range specs {
			res, err := s.ViewResult(sp.Name)
			if err != nil {
				t.Fatal(err)
			}
			wk, wv, wstart := feed.windowRows(sp, 0)
			if res.WindowStart != wstart || res.Rows != uint64(len(wk)) {
				t.Fatalf("%s %s: window (%d, %d] rows %d, want start %d rows %d",
					phase, sp.Name, res.WindowStart, res.WindowEnd, res.Rows, wstart, len(wk))
			}
			want := refValue(t, sp.Query, wk, wv)
			if !reflect.DeepEqual(sortedValue(res.Value), sortedValue(want)) {
				t.Fatalf("%s %s (%s over %d rows): view %v, batch %v",
					phase, sp.Name, sp.Query, len(wk), res.Value, want)
			}
		}
	}

	// Mixed seal sizes: exact pane multiples (500, 250, 1000), boundary
	// stragglers, and sizes that span panes outright.
	sizes := []int{500, 250, 250, 300, 777, 123, 500, 1000, 57, 443, 250}
	for i, n := range sizes {
		if feed.fed+n > len(keys) {
			break
		}
		feed.seal(t, n)
		if i == 4 {
			verify("mid")
		}
	}
	verify("final")
}

// TestCViewPaneBoundary pins the boundary rule: a seal ending exactly at
// watermark (p+1)*PaneRows belongs to pane p — it completes the pane, it
// does not open the next one.
func TestCViewPaneBoundary(t *testing.T) {
	spec := dataset.Spec{Kind: dataset.RseqShf, N: 600, Cardinality: 37, Seed: 82}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)

	s := New(viewConfig())
	defer s.Close()
	if err := s.RegisterView(cview.Spec{Name: "slide", Query: cview.Query{ID: cview.QCount},
		PaneRows: 100, Panes: 2, Sliding: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterView(cview.Spec{Name: "tumble", Query: cview.Query{ID: cview.QCount},
		PaneRows: 100, Panes: 1}); err != nil {
		t.Fatal(err)
	}
	feed := &viewFeed{s: s, keys: keys, vals: vals}

	check := func(name string, panesLive int, rows, wstart uint64) {
		t.Helper()
		res, err := s.ViewResult(name)
		if err != nil {
			t.Fatal(err)
		}
		if res.PanesLive != panesLive || res.Rows != rows || res.WindowStart != wstart {
			t.Fatalf("%s: panes %d rows %d start %d, want %d/%d/%d",
				name, res.PanesLive, res.Rows, res.WindowStart, panesLive, rows, wstart)
		}
	}

	feed.seal(t, 100) // end 100 → pane (100-1)/100 = 0: boundary seal stays in pane 0
	check("slide", 1, 100, 0)
	check("tumble", 1, 100, 0)

	feed.seal(t, 100) // end 200 → pane 1
	check("slide", 2, 200, 0)  // sliding keeps panes {0,1}
	check("tumble", 1, 100, 100) // 1-pane tumble drops pane 0 whole

	feed.seal(t, 100) // end 300 → pane 2
	check("slide", 2, 200, 100)
	check("tumble", 1, 100, 200)

	info, err := s.ViewInfo("tumble")
	if err != nil {
		t.Fatal(err)
	}
	if info.PanesEvicted != 2 {
		t.Fatalf("tumble evicted %d panes, want 2", info.PanesEvicted)
	}
}

// TestCViewRegisterMidIngest: a view registered after rows have sealed
// starts at the registration watermark — none of the earlier rows leak in
// (no double counting), and its first window matches the batch recompute
// over only the rows sealed after registration.
func TestCViewRegisterMidIngest(t *testing.T) {
	spec := dataset.Spec{Kind: dataset.Zipf, N: 1_200, Cardinality: 64, Seed: 83}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)

	s := New(viewConfig())
	defer s.Close()
	feed := &viewFeed{s: s, keys: keys, vals: vals}
	feed.seal(t, 500)

	sp := cview.Spec{Name: "late", Query: cview.Query{ID: cview.QCountByKey},
		PaneRows: 10_000, Panes: 1}
	if err := s.RegisterView(sp); err != nil {
		t.Fatal(err)
	}
	startWM := uint64(feed.fed)

	feed.seal(t, 300)
	feed.seal(t, 400)
	res, err := s.ViewResult("late")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 700 || res.WindowStart != startWM {
		t.Fatalf("window (%d, %d] rows %d, want (%d, %d] rows 700",
			res.WindowStart, res.WindowEnd, res.Rows, startWM, len(keys))
	}
	wk, wv, _ := feed.windowRows(sp, startWM)
	want := refValue(t, sp.Query, wk, wv)
	if !reflect.DeepEqual(sortedValue(res.Value), sortedValue(want)) {
		t.Fatalf("mid-ingest view diverged from batch over post-registration rows")
	}
	info, err := s.ViewInfo("late")
	if err != nil {
		t.Fatal(err)
	}
	if info.StartWatermark != startWM {
		t.Fatalf("StartWatermark = %d, want %d", info.StartWatermark, startWM)
	}
}

// TestCViewEvictionRace runs sliding-window reads, listings and stats
// concurrently with ingest that continually opens and evicts panes; the
// race detector checks the locking, the body checks every read is
// internally consistent (Q1 counts sum to the window row count).
func TestCViewEvictionRace(t *testing.T) {
	s := New(Config{Shards: 1, QueueDepth: 8, SealRows: 1 << 20, MergeBits: 4})
	defer s.Close()
	if err := s.RegisterView(cview.Spec{Name: "race", Query: cview.Query{ID: cview.QCountByKey},
		PaneRows: 200, Panes: 2, Sliding: true}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterView(cview.Spec{Name: "race-t", Query: cview.Query{ID: cview.QCount},
		PaneRows: 300, Panes: 3}); err != nil {
		t.Fatal(err)
	}

	spec := dataset.Spec{Kind: dataset.RseqShf, N: 40_000, Cardinality: 500, Seed: 84}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				res, err := s.ViewResult("race")
				if err != nil {
					t.Error(err)
					return
				}
				var total uint64
				for _, g := range res.Value.([]agg.GroupCount) {
					total += g.Count
				}
				if total != res.Rows || res.WindowEnd < res.WindowStart {
					t.Errorf("inconsistent read: rows %d counted %d window (%d, %d]",
						res.Rows, total, res.WindowStart, res.WindowEnd)
					return
				}
				s.Views()
				s.Stats()
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}

	for off := 0; off < len(keys); off += 100 {
		end := off + 100
		if err := s.Append(keys[off:end], vals[off:end]); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil { // one seal per batch: panes churn
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	info, err := s.ViewInfo("race")
	if err != nil {
		t.Fatal(err)
	}
	if info.PanesEvicted == 0 {
		t.Fatal("race ran without a single eviction — the test exercised nothing")
	}
}

// TestCViewRestartReplay proves view state survives both death modes of a
// durable stream. Hard kill (no Close, no pane snapshot): views rebuild
// from DEFS plus full WAL replay through the same fold path as live
// ingest. Graceful close: the final checkpoint truncates the WAL, so the
// reopened views must come back from the PANES snapshot instead.
func TestCViewRestartReplay(t *testing.T) {
	keys, vals := gateData()
	specs := []cview.Spec{
		{Name: "counts", Query: cview.Query{ID: cview.QCountByKey}, PaneRows: 600, Panes: 3, Sliding: true},
		{Name: "p90", Query: cview.Query{ID: cview.QQuantile, P: 0.9}, PaneRows: 500, Panes: 2},
	}
	run := func(t *testing.T, ckptEvery int, graceful bool) {
		mem := wal.NewMemFS()
		efs := wal.NewErrFS(mem)
		s, err := Open(durableConfig(efs, ckptEvery))
		if err != nil {
			t.Fatal(err)
		}
		for _, sp := range specs {
			if err := s.RegisterView(sp); err != nil {
				t.Fatal(err)
			}
		}
		if err := ingestUntilError(s, keys, vals); err != nil {
			t.Fatal(err)
		}
		before := make(map[string]*cview.Result, len(specs))
		for _, sp := range specs {
			res, err := s.ViewResult(sp.Name)
			if err != nil {
				t.Fatal(err)
			}
			before[sp.Name] = res
		}
		if graceful {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if s.Stats().CheckpointWatermark != uint64(len(keys)) {
				t.Fatal("graceful close did not checkpoint everything")
			}
		} else {
			// Hard kill: cut the FS so nothing else reaches storage, then
			// Close only to stop the goroutines — sync=always means every
			// seal is already in the log, and the cut swallows the shutdown
			// checkpoint and pane snapshot exactly like a kill would.
			efs.Cut()
			_ = s.Close()
		}

		s2, err := Open(durableConfig(mem, ckptEvery))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer s2.Close()
		views := s2.Views()
		if len(views) != len(specs) {
			t.Fatalf("recovered %d views, want %d", len(views), len(specs))
		}
		for _, sp := range specs {
			res, err := s2.ViewResult(sp.Name)
			if err != nil {
				t.Fatal(err)
			}
			want := before[sp.Name]
			if res.Truncated {
				t.Fatalf("%s: recovered view reports Truncated", sp.Name)
			}
			if res.WindowStart != want.WindowStart || res.WindowEnd != want.WindowEnd ||
				res.Rows != want.Rows || res.Groups != want.Groups {
				t.Fatalf("%s: recovered window (%d, %d] rows %d groups %d, want (%d, %d] rows %d groups %d",
					sp.Name, res.WindowStart, res.WindowEnd, res.Rows, res.Groups,
					want.WindowStart, want.WindowEnd, want.Rows, want.Groups)
			}
			if !reflect.DeepEqual(sortedValue(res.Value), sortedValue(want.Value)) {
				t.Fatalf("%s: recovered result diverged from pre-restart result", sp.Name)
			}
		}
	}
	t.Run("kill-wal-replay", func(t *testing.T) { run(t, -1, false) })
	t.Run("kill-with-checkpoints", func(t *testing.T) { run(t, 3000, false) })
	t.Run("graceful-panes-snapshot", func(t *testing.T) { run(t, 3000, true) })
}

// TestCViewDefinitionsPersist: a Register/Drop pair alone (no pane state,
// no ingest) must survive a restart — DEFS is the authority.
func TestCViewDefinitionsPersist(t *testing.T) {
	fs := wal.NewMemFS()
	s, err := Open(durableConfig(fs, -1))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"keep", "drop"} {
		if err := s.RegisterView(cview.Spec{Name: name, Query: cview.Query{ID: cview.QCount},
			PaneRows: 100, Panes: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if !s.DropView("drop") {
		t.Fatal("DropView(drop) = false")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(durableConfig(fs, -1))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	views := s2.Views()
	if len(views) != 1 || views[0].Spec.Name != "keep" {
		t.Fatalf("recovered views %+v, want exactly [keep]", views)
	}
}

// ingestWithViews is the overhead-guard workload: a full ingest run with
// seals happening (unlike the obs guard, the per-seal view fold is
// exactly what's being priced), with or without 4 registered views.
func ingestWithViews(tb testing.TB, keys, vals []uint64, views bool) time.Duration {
	s := New(Config{Shards: 1, QueueDepth: 8, SealRows: 1 << 14, MergeBits: 6})
	defer func() {
		if err := s.Close(); err != nil {
			tb.Fatal(err)
		}
	}()
	if views {
		for i, q := range []cview.Query{
			{ID: cview.QCountByKey},
			{ID: cview.QReduce, Op: agg.OpSum},
			{ID: cview.QAvgByKey},
			{ID: cview.QCount},
		} {
			if err := s.RegisterView(cview.Spec{Name: fmt.Sprintf("g%d", i), Query: q,
				PaneRows: 1 << 15, Panes: 4, Sliding: true}); err != nil {
				tb.Fatal(err)
			}
		}
	}
	const batchLen = 4096
	start := time.Now()
	for i := 0; i < len(keys); i += batchLen {
		j := i + batchLen
		if j > len(keys) {
			j = len(keys)
		}
		if err := s.Append(keys[i:j], vals[i:j]); err != nil {
			tb.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start)
}

// TestCViewOverheadGuard prices the seal-path hook: ingest with 4
// registered distributive views must stay within 10% of the same ingest
// with none. The per-seal fold is O(delta groups), amortized over
// SealRows rows — the budget holds with plenty of slack; wall-clock
// ratios are noisy, so the guard is env-gated like the other guards.
func TestCViewOverheadGuard(t *testing.T) {
	if os.Getenv("MEMAGG_CVIEW_GUARD") != "1" {
		t.Skip("set MEMAGG_CVIEW_GUARD=1 to run the continuous-view overhead guard")
	}
	spec := dataset.Spec{Kind: dataset.RseqShf, N: 1_000_000, Cardinality: 512, Seed: 85}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)

	obs.SetDisabled(false)
	ingestWithViews(t, keys, vals, false) // warm
	measure := func(rounds int) float64 {
		best := map[bool]time.Duration{}
		for r := 0; r < rounds; r++ {
			for _, views := range []bool{true, false} {
				runtime.GC()
				el := ingestWithViews(t, keys, vals, views)
				if cur, ok := best[views]; !ok || el < cur {
					best[views] = el
				}
			}
		}
		ratio := float64(best[true]) / float64(best[false])
		t.Logf("views=%v none=%v ratio=%.4f", best[true], best[false], ratio)
		return ratio
	}
	ratio := measure(7)
	if ratio > 1.10 {
		ratio = measure(14)
	}
	if ratio > 1.10 {
		t.Fatalf("ingest with 4 views is %.1f%% slower than without (budget 10%%, confirmed twice)",
			(ratio-1)*100)
	}
}

// TestCViewStats checks the view families surface through Stats.
func TestCViewStats(t *testing.T) {
	s := New(viewConfig())
	defer s.Close()
	if err := s.RegisterView(cview.Spec{Name: "st", Query: cview.Query{ID: cview.QCount},
		PaneRows: 100, Panes: 2, Sliding: true}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(86))
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Uint64() % 32
	}
	if err := s.Append(keys, keys); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ViewResult("st"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ViewResult("st"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Views != 1 || st.ViewPanesLive == 0 || st.ViewUpdates == 0 {
		t.Fatalf("stats missing view families: %+v", st)
	}
	if st.ViewReads != 2 || st.ViewReadsCached != 1 {
		t.Fatalf("reads=%d cached=%d, want 2/1", st.ViewReads, st.ViewReadsCached)
	}
}
