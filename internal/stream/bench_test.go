package stream

import (
	"sync"
	"testing"

	"memagg/internal/dataset"
)

// BenchmarkStreamIngest measures end-to-end ingest throughput (Append →
// seal → merge, flushed at the end) on a 1M-row / 100k-group workload, with
// as many producer goroutines as shards. b.N counts ROWS; the rows/s metric
// is the headline number for EXPERIMENTS.md.
//
//	go test ./internal/stream/ -bench StreamIngest -benchtime 1000000x
func BenchmarkStreamIngest(b *testing.B) {
	const groups, batchLen = 100_000, 4096
	spec := dataset.Spec{Kind: dataset.RseqShf, N: 1_000_000, Cardinality: groups, Seed: 71}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)

	for _, shards := range []int{1, 4, 8} {
		b.Run(benchName(shards), func(b *testing.B) {
			s := New(Config{Shards: shards, QueueDepth: 8, SealRows: 1 << 15, MergeBits: 6})
			b.ResetTimer()

			// Split b.N rows across one producer per shard; each producer
			// appends batchLen-row slices of the dataset, wrapping as needed.
			var wg sync.WaitGroup
			per := b.N / shards
			for p := 0; p < shards; p++ {
				n := per
				if p == shards-1 {
					n = b.N - per*(shards-1)
				}
				wg.Add(1)
				go func(p, n int) {
					defer wg.Done()
					off := (p * per) % len(keys)
					for n > 0 {
						m := batchLen
						if m > n {
							m = n
						}
						if off+m > len(keys) {
							off = 0
						}
						if err := s.Append(keys[off:off+m], vals[off:off+m]); err != nil {
							b.Error(err)
							return
						}
						off += m
						n -= m
					}
				}(p, n)
			}
			wg.Wait()
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "rows/s")
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func benchName(shards int) string {
	return "shards=" + string(rune('0'+shards))
}
