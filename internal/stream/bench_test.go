package stream

import (
	"sync"
	"testing"

	"memagg/internal/dataset"
)

// BenchmarkStreamIngest measures end-to-end ingest throughput (Append →
// seal → merge, flushed at the end) on a 1M-row / 100k-group workload, with
// as many producer goroutines as shards. b.N counts ROWS; the rows/s metric
// is the headline number for EXPERIMENTS.md.
//
// The est=y variants set Config.EstimatedGroups so each delta table is
// seeded near its final size instead of growing from the 1<<10 default —
// at SealRows = 1<<15 and ~100k-group data the unseeded delta rehashes
// through five doublings (1Ki → 32Ki slots) before every seal, all of it
// on the shard's critical path. Before/after on this workload (1 shard,
// single-core container, 1M rows): 4.3M rows/s unseeded → 6.0M rows/s
// seeded — ~40% more ingest throughput from sizing alone, the same
// EstimatedGroups discipline the batch engines apply via estimateGroups.
//
//	go test ./internal/stream/ -bench StreamIngest -benchtime 1000000x
func BenchmarkStreamIngest(b *testing.B) {
	const groups, batchLen = 100_000, 4096
	spec := dataset.Spec{Kind: dataset.RseqShf, N: 1_000_000, Cardinality: groups, Seed: 71}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)

	for _, cfg := range []struct {
		shards int
		est    int
	}{{1, 0}, {1, groups}, {4, 0}, {4, groups}, {8, 0}, {8, groups}} {
		b.Run(benchName(cfg.shards, cfg.est > 0), func(b *testing.B) {
			shards := cfg.shards
			s := New(Config{Shards: shards, QueueDepth: 8, SealRows: 1 << 15,
				MergeBits: 6, EstimatedGroups: cfg.est})
			b.ResetTimer()

			// Split b.N rows across one producer per shard; each producer
			// appends batchLen-row slices of the dataset, wrapping as needed.
			var wg sync.WaitGroup
			per := b.N / shards
			for p := 0; p < shards; p++ {
				n := per
				if p == shards-1 {
					n = b.N - per*(shards-1)
				}
				wg.Add(1)
				go func(p, n int) {
					defer wg.Done()
					off := (p * per) % len(keys)
					for n > 0 {
						m := batchLen
						if m > n {
							m = n
						}
						if off+m > len(keys) {
							off = 0
						}
						if err := s.Append(keys[off:off+m], vals[off:off+m]); err != nil {
							b.Error(err)
							return
						}
						off += m
						n -= m
					}
				}(p, n)
			}
			wg.Wait()
			if err := s.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "rows/s")
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSnapshotQuery measures the snapshot query path on a 1M-row /
// 64Ki-group layered view (half merged into the base, half pinned as
// sealed deltas). Variants cover the axes the tentpole added:
//
//	fold=cold  — every iteration builds a fresh identical stream, so the
//	             per-iteration cost includes the partition-wise delta fold
//	fold=warm  — one stream, fold memoized on the view, cache disabled:
//	             the pure scan cost
//	cached     — one stream with the result cache on: post-first
//	             iterations are cache hits
//
// serial forces the pre-PR path (cutoff above every group count); par=N
// runs the partition-parallel kernels at N workers.
//
//	go test ./internal/stream/ -bench SnapshotQuery -benchtime 20x
func BenchmarkSnapshotQuery(b *testing.B) {
	defer func(c int) { serialQueryCutoff = c }(serialQueryCutoff)
	spec := dataset.Spec{Kind: dataset.RseqShf, N: 1_000_000, Cardinality: 1 << 16, Seed: 73}
	keys := spec.Keys()
	vals := dataset.Values(len(keys), spec.Seed)
	base := Config{SealRows: 1 << 14, MergeBits: 6}

	q1 := func(b *testing.B, s *Stream) {
		if r := s.Snapshot().CountByKey(); len(r) != 1<<16 {
			b.Fatalf("Q1 rows = %d", len(r))
		}
	}
	for _, bc := range []struct {
		name    string
		workers int
		cutoff  int
		cache   int
	}{
		{"serial", 1, 1 << 30, -1},
		{"par=2", 2, 0, -1},
		{"par=8", 8, 0, -1},
	} {
		cfg := base
		cfg.QueryWorkers = bc.workers
		cfg.QueryCacheEntries = bc.cache
		serialQueryCutoff = bc.cutoff
		b.Run("fold=cold/"+bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := layeredStream(b, cfg, keys, vals, len(keys)/2)
				b.StartTimer()
				q1(b, s)
				b.StopTimer()
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("fold=warm/"+bc.name, func(b *testing.B) {
			s := layeredStream(b, cfg, keys, vals, len(keys)/2)
			q1(b, s) // fold + first scan outside the timer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q1(b, s)
			}
			b.StopTimer()
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
	serialQueryCutoff = 0
	cfg := base
	cfg.QueryWorkers = 8
	b.Run("cached/par=8", func(b *testing.B) {
		s := layeredStream(b, cfg, keys, vals, len(keys)/2)
		q1(b, s) // miss: fold + scan + insert
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q1(b, s)
		}
		b.StopTimer()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

func benchName(shards int, seeded bool) string {
	name := "shards=" + string(rune('0'+shards))
	if seeded {
		return name + "/est=y"
	}
	return name + "/est=n"
}
