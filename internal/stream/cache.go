package stream

import (
	"sync"

	"memagg/internal/agg"
)

// qid names one cacheable snapshot query. Together with the parameter
// fields of qkey it identifies a materialized result on a view.
type qid uint8

const (
	qidQ1       qid = iota // CountByKey
	qidQ2                  // AvgByKey
	qidQ3                  // MedianByKey
	qidReduce              // Reduce(op)
	qidQuantile            // Holistic(QuantileFunc(f))
	qidMode                // Holistic(ModeFunc)
	qidQ5                  // Avg (scalar)
	qidQ6                  // Median (scalar)
	qidQ7                  // CountRange(lo, hi)
	qidGroups              // Groups
)

// qkey is one cache slot: the query id plus every parameter that shapes
// its result. The watermark is not part of the key — the cache itself
// lives on the view, so a new watermark is a new cache and results can
// never cross views.
type qkey struct {
	id     qid
	op     agg.ReduceOp
	f      float64
	lo, hi uint64
}

// qentry is one materialized (or in-flight) result. done closes when val
// is set; waiters block on it, which is the single-flight: concurrent
// identical queries find the entry the first caller installed and wait
// for its compute instead of repeating it.
type qentry struct {
	done chan struct{}
	val  any
}

// queryCache memoizes snapshot query results for one view. Entries are
// bounded; at capacity the oldest entry is evicted (views are short-lived
// under steady ingest — every seal supersedes them — so FIFO is as good
// as LRU here and needs no per-hit bookkeeping).
type queryCache struct {
	cap   int
	mu    sync.Mutex
	m     map[qkey]*qentry
	order []qkey
}

func newQueryCache(cap int) *queryCache {
	return &queryCache{cap: cap, m: make(map[qkey]*qentry)}
}

// do returns the cached value for k, computing it via compute on the
// first call. Exactly one caller computes; the rest wait on the entry.
// The hit/miss/evict counters land in the stream's metrics registry.
func (c *queryCache) do(m *metrics, k qkey, compute func() any) any {
	c.mu.Lock()
	if e, ok := c.m[k]; ok {
		c.mu.Unlock()
		m.qcacheHits.Inc()
		<-e.done
		return e.val
	}
	e := &qentry{done: make(chan struct{})}
	if len(c.m) >= c.cap {
		// Evict the oldest slot. An in-flight victim stays valid for its
		// waiters (they hold the entry pointer); it just becomes
		// invisible to new lookups, which recompute.
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.m, victim)
		m.qcacheEvicts.Inc()
	}
	c.m[k] = e
	c.order = append(c.order, k)
	c.mu.Unlock()
	m.qcacheMisses.Inc()
	defer close(e.done) // set even if compute panics, so waiters unblock
	e.val = compute()
	return e.val
}

// cached runs compute through the snapshot's view cache (straight through
// when caching is disabled). Vector results come back as shared slices:
// every hit returns the same backing array, so callers must treat them as
// read-only — the memagg facade's row converters copy before the result
// leaves the package.
func cached[T any](sn *Snapshot, k qkey, compute func() T) T {
	c := sn.v.cache
	if c == nil {
		return compute()
	}
	return c.do(sn.s.m, k, func() any { return compute() }).(T)
}
