package ttree

import (
	"sort"
	"testing"
	"testing/quick"

	"memagg/internal/dataset"
)

// checkInvariants verifies AVL balance, node key ordering, subtree bounds,
// and that size matches the entry count.
func checkInvariants[V any](t *testing.T, tr *Tree[V]) {
	t.Helper()
	count := 0
	var walk func(nd *node[V], lo, hi uint64, hasLo, hasHi bool) int
	walk = func(nd *node[V], lo, hi uint64, hasLo, hasHi bool) int {
		if nd == nil {
			return 0
		}
		if nd.n < 1 {
			t.Fatal("empty node in tree")
		}
		for i := 1; i < nd.n; i++ {
			if nd.keys[i-1] >= nd.keys[i] {
				t.Fatal("node keys out of order")
			}
		}
		if hasLo && nd.keys[0] <= lo {
			t.Fatalf("node min %d violates lower bound %d", nd.keys[0], lo)
		}
		if hasHi && nd.keys[nd.n-1] >= hi {
			t.Fatalf("node max %d violates upper bound %d", nd.keys[nd.n-1], hi)
		}
		count += nd.n
		lh := walk(nd.left, lo, nd.keys[0], hasLo, true)
		rh := walk(nd.right, nd.keys[nd.n-1], hi, true, hasHi)
		if nd.height != 1+max(lh, rh) {
			t.Fatalf("stale height %d (want %d)", nd.height, 1+max(lh, rh))
		}
		if lh-rh > 1 || rh-lh > 1 {
			t.Fatalf("AVL imbalance: lh=%d rh=%d", lh, rh)
		}
		return nd.height
	}
	walk(tr.root, 0, 0, false, false)
	if count != tr.size {
		t.Fatalf("size %d but %d entries", tr.size, count)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestUpsertGetSequential(t *testing.T) {
	tr := New[uint64]()
	for k := uint64(1); k <= 5000; k++ {
		*tr.Upsert(k) = k + 7
	}
	checkInvariants(t, tr)
	for k := uint64(1); k <= 5000; k++ {
		v := tr.Get(k)
		if v == nil || *v != k+7 {
			t.Fatalf("Get(%d) wrong", k)
		}
	}
	if tr.Get(0) != nil || tr.Get(5001) != nil {
		t.Fatal("absent key found")
	}
}

func TestUpsertRandomWithDuplicates(t *testing.T) {
	tr := New[uint64]()
	keys := dataset.Spec{Kind: dataset.HhitShf, N: 30000, Cardinality: 2000, Seed: 2}.Keys()
	want := map[uint64]uint64{}
	for _, k := range keys {
		*tr.Upsert(k)++
		want[k]++
	}
	checkInvariants(t, tr)
	if tr.Len() != len(want) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(want))
	}
	for k, c := range want {
		v := tr.Get(k)
		if v == nil || *v != c {
			t.Fatalf("key %d wrong", k)
		}
	}
}

func TestIterateSorted(t *testing.T) {
	tr := New[uint64]()
	keys := dataset.Random(20000, 1, 1<<33, 8)
	uniq := map[uint64]bool{}
	for _, k := range keys {
		tr.Upsert(k)
		uniq[k] = true
	}
	var got []uint64
	tr.Iterate(func(k uint64, _ *uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(uniq) {
		t.Fatalf("iterated %d want %d", len(got), len(uniq))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("iteration not sorted")
	}
}

func TestIterateEarlyStop(t *testing.T) {
	tr := New[uint64]()
	for k := uint64(1); k <= 500; k++ {
		tr.Upsert(k)
	}
	n := 0
	tr.Iterate(func(uint64, *uint64) bool { n++; return n < 9 })
	if n != 9 {
		t.Fatalf("visited %d want 9", n)
	}
}

func TestRange(t *testing.T) {
	tr := New[uint64]()
	for k := uint64(0); k < 3000; k += 3 {
		tr.Upsert(k)
	}
	var got []uint64
	tr.Range(100, 200, func(k uint64, _ *uint64) bool {
		got = append(got, k)
		return true
	})
	var want []uint64
	for k := uint64(102); k <= 198; k += 3 {
		want = append(want, k)
	}
	if len(got) != len(want) {
		t.Fatalf("range %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("range[%d]=%d want %d", i, got[i], want[i])
		}
	}
}

func TestBalancedHeight(t *testing.T) {
	tr := New[struct{}]()
	const n = 200000
	for k := uint64(0); k < n; k++ { // adversarial ascending insert
		tr.Upsert(k)
	}
	checkInvariants(t, tr)
	// ~n/nodeCap nodes in an AVL tree: height <= 1.45*log2(nodes)+2.
	if tr.Height() > 22 {
		t.Fatalf("height %d too tall (rotation bug?)", tr.Height())
	}
}

func TestQuickPropertyMatchesModel(t *testing.T) {
	f := func(keys []uint16) bool {
		tr := New[uint64]()
		model := map[uint64]uint64{}
		for _, kr := range keys {
			k := uint64(kr % 512)
			*tr.Upsert(k)++
			model[k]++
		}
		if tr.Len() != len(model) {
			return false
		}
		ok := true
		tr.Iterate(func(k uint64, v *uint64) bool {
			if model[k] != *v {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
