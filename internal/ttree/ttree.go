// Package ttree implements the T-tree of Lehman and Carey (1986) — the
// paper's Ttree. A T-tree is an AVL-balanced binary tree whose nodes each
// hold a sorted array of entries, proposed as a main-memory replacement for
// the disk-oriented B-tree.
//
// The paper's microbenchmark (Figure 3, Section 3.4) finds the T-tree
// uncompetitive on modern processors — binary branching plus per-node
// arrays give it the cache behaviour of a binary tree without the fanout of
// a B+tree — and drops it from the main experiments. It is implemented
// here so that result is reproducible, not because you should use it.
package ttree

// nodeCap is the entry capacity per node. Lehman and Carey used tens of
// entries per node; 32 matches our B+tree leaf size for a fair comparison.
const nodeCap = 32

type node[V any] struct {
	left, right *node[V]
	height      int
	n           int
	keys        [nodeCap]uint64
	vals        [nodeCap]V
}

// Tree is a T-tree map from uint64 to V.
type Tree[V any] struct {
	root *node[V]
	size int
}

// New returns an empty tree.
func New[V any]() *Tree[V] { return &Tree[V]{} }

// Len returns the number of stored keys.
func (t *Tree[V]) Len() int { return t.size }

// Height returns the height of the underlying AVL structure.
func (t *Tree[V]) Height() int { return height(t.root) }

func height[V any](nd *node[V]) int {
	if nd == nil {
		return 0
	}
	return nd.height
}

// search returns the index of the first key in nd >= key.
func (nd *node[V]) search(key uint64) int {
	lo, hi := 0, nd.n
	for lo < hi {
		mid := (lo + hi) / 2
		if nd.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns a pointer to the value stored for key, or nil. The classic
// T-tree search: descend by comparing against each node's bounding
// [min, max] interval, then binary search inside the bounding node.
func (t *Tree[V]) Get(key uint64) *V {
	nd := t.root
	for nd != nil {
		switch {
		case key < nd.keys[0]:
			nd = nd.left
		case key > nd.keys[nd.n-1]:
			nd = nd.right
		default:
			i := nd.search(key)
			if i < nd.n && nd.keys[i] == key {
				return &nd.vals[i]
			}
			return nil
		}
	}
	return nil
}

// Upsert ensures key is present (inserting a zero value if absent) and
// returns a pointer to its value. The pointer is valid until the next
// mutating call: inserts shift entries within nodes and may displace
// minimums into other nodes.
func (t *Tree[V]) Upsert(key uint64) *V {
	var inserted bool
	t.root, inserted = t.insert(t.root, key)
	if inserted {
		t.size++
	}
	return t.Get(key)
}

// insert ensures key exists under nd, returning the new subtree root and
// whether a new entry was created.
func (t *Tree[V]) insert(nd *node[V], key uint64) (*node[V], bool) {
	if nd == nil {
		n := &node[V]{height: 1, n: 1}
		n.keys[0] = key
		return n, true
	}
	switch {
	case key < nd.keys[0]:
		// Not bounded here. If there is room and no left subtree, this node
		// is the greatest lower bound leaf: absorb the key.
		if nd.left == nil && nd.n < nodeCap {
			nd.insertAt(0, key)
			return nd, true
		}
		var ins bool
		nd.left, ins = t.insert(nd.left, key)
		return rebalance(nd), ins

	case key > nd.keys[nd.n-1]:
		if nd.right == nil && nd.n < nodeCap {
			nd.insertAt(nd.n, key)
			return nd, true
		}
		var ins bool
		nd.right, ins = t.insert(nd.right, key)
		return rebalance(nd), ins

	default:
		// Bounding node.
		i := nd.search(key)
		if i < nd.n && nd.keys[i] == key {
			return nd, false
		}
		if nd.n < nodeCap {
			nd.insertAt(i, key)
			return nd, true
		}
		// Full: displace the minimum into the left subtree, making room.
		minKey, minVal := nd.keys[0], nd.vals[0]
		copy(nd.keys[:nd.n-1], nd.keys[1:nd.n])
		copy(nd.vals[:nd.n-1], nd.vals[1:nd.n])
		nd.n--
		nd.insertAt(i-1, key) // i >= 1 because key > old keys[0]
		var grew bool
		nd.left, grew = t.insertEntry(nd.left, minKey, minVal)
		_ = grew
		return rebalance(nd), true
	}
}

// insertEntry inserts an existing key/value pair (displaced minimum) into
// the subtree rooted at nd. The key is strictly smaller than every key in
// the ancestor node, so it becomes a new maximum along the right spine.
func (t *Tree[V]) insertEntry(nd *node[V], key uint64, val V) (*node[V], bool) {
	if nd == nil {
		n := &node[V]{height: 1, n: 1}
		n.keys[0] = key
		n.vals[0] = val
		return n, true
	}
	if key > nd.keys[nd.n-1] {
		if nd.right == nil && nd.n < nodeCap {
			nd.insertAt(nd.n, key)
			nd.vals[nd.n-1] = val
			return nd, true
		}
		var grew bool
		nd.right, grew = t.insertEntry(nd.right, key, val)
		return rebalance(nd), grew
	}
	if key < nd.keys[0] {
		// Defensive: a displaced minimum is strictly greater than every key
		// of the subtree it is pushed into, so this branch should be
		// unreachable; handle it anyway to keep the structure sound.
		if nd.left == nil && nd.n < nodeCap {
			nd.insertAt(0, key)
			nd.vals[0] = val
			return nd, true
		}
		var grew bool
		nd.left, grew = t.insertEntry(nd.left, key, val)
		return rebalance(nd), grew
	}
	// The displaced minimum can equal nothing below (keys are unique and it
	// came from above all of them), so reaching here means it bounds into
	// this node; insert in place, possibly cascading another displacement.
	i := nd.search(key)
	if nd.n < nodeCap {
		nd.insertAt(i, key)
		nd.vals[i] = val
		return nd, true
	}
	minKey, minVal := nd.keys[0], nd.vals[0]
	copy(nd.keys[:nd.n-1], nd.keys[1:nd.n])
	copy(nd.vals[:nd.n-1], nd.vals[1:nd.n])
	nd.n--
	nd.insertAt(i-1, key)
	nd.vals[i-1] = val
	var grew bool
	nd.left, grew = t.insertEntry(nd.left, minKey, minVal)
	return rebalance(nd), grew
}

// insertAt shifts entries right and writes key at index i with a zero
// value.
func (nd *node[V]) insertAt(i int, key uint64) {
	copy(nd.keys[i+1:nd.n+1], nd.keys[i:nd.n])
	copy(nd.vals[i+1:nd.n+1], nd.vals[i:nd.n])
	nd.keys[i] = key
	var zero V
	nd.vals[i] = zero
	nd.n++
}

// --- AVL rebalancing ---------------------------------------------------------

func rebalance[V any](nd *node[V]) *node[V] {
	nd.fixHeight()
	switch bf := height(nd.left) - height(nd.right); {
	case bf > 1:
		if height(nd.left.left) < height(nd.left.right) {
			nd.left = rotateLeft(nd.left)
		}
		return rotateRight(nd)
	case bf < -1:
		if height(nd.right.right) < height(nd.right.left) {
			nd.right = rotateRight(nd.right)
		}
		return rotateLeft(nd)
	}
	return nd
}

func (nd *node[V]) fixHeight() {
	l, r := height(nd.left), height(nd.right)
	if l > r {
		nd.height = l + 1
	} else {
		nd.height = r + 1
	}
}

func rotateRight[V any](nd *node[V]) *node[V] {
	l := nd.left
	nd.left = l.right
	l.right = nd
	nd.fixHeight()
	l.fixHeight()
	return l
}

func rotateLeft[V any](nd *node[V]) *node[V] {
	r := nd.right
	nd.right = r.left
	r.left = nd
	nd.fixHeight()
	r.fixHeight()
	return r
}

// Iterate calls fn for every key/value pair in ascending key order,
// stopping early if fn returns false.
func (t *Tree[V]) Iterate(fn func(key uint64, val *V) bool) {
	iter(t.root, fn)
}

func iter[V any](nd *node[V], fn func(uint64, *V) bool) bool {
	if nd == nil {
		return true
	}
	if !iter(nd.left, fn) {
		return false
	}
	for i := 0; i < nd.n; i++ {
		if !fn(nd.keys[i], &nd.vals[i]) {
			return false
		}
	}
	return iter(nd.right, fn)
}

// Range calls fn for every pair with lo <= key <= hi in ascending order.
func (t *Tree[V]) Range(lo, hi uint64, fn func(key uint64, val *V) bool) {
	rangeIter(t.root, lo, hi, fn)
}

func rangeIter[V any](nd *node[V], lo, hi uint64, fn func(uint64, *V) bool) bool {
	if nd == nil {
		return true
	}
	if lo < nd.keys[0] {
		if !rangeIter(nd.left, lo, hi, fn) {
			return false
		}
	}
	for i := 0; i < nd.n; i++ {
		k := nd.keys[i]
		if k < lo {
			continue
		}
		if k > hi {
			return false
		}
		if !fn(k, &nd.vals[i]) {
			return false
		}
	}
	if hi > nd.keys[nd.n-1] {
		return rangeIter(nd.right, lo, hi, fn)
	}
	return true
}
