package wal

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS for tests and fuzzing: the same semantics the
// log relies on from a real filesystem (atomic rename, append, truncate),
// with direct access to file bytes so tests flip bits and cut tails
// without touching disk. A MemFS survives "reopening" — recovery tests
// crash a stream through an ErrFS wrapper and reopen the same MemFS to
// see exactly the bytes that made it out before the fault.
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

type memFile struct {
	mu   sync.Mutex
	data []byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}, dirs: map[string]bool{"": true, ".": true}}
}

func clean(name string) string { return filepath.Clean(name) }

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := clean(dir)
	for d != "." && d != string(filepath.Separator) {
		m.dirs[d] = true
		d = filepath.Dir(d)
	}
	return nil
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[clean(name)] = f
	return &memHandle{f: f}, nil
}

func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[clean(name)]
	if !ok {
		return nil, fmt.Errorf("memfs: open %s: %w", name, errNotExist)
	}
	return &memHandle{f: f}, nil
}

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[clean(name)]
	if !ok {
		return nil, fmt.Errorf("memfs: open %s: %w", name, errNotExist)
	}
	return &memHandle{f: f, appendMode: true}, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[clean(oldname)]
	if !ok {
		return fmt.Errorf("memfs: rename %s: %w", oldname, errNotExist)
	}
	delete(m.files, clean(oldname))
	m.files[clean(newname)] = f
	return nil
}

// SyncDir is a no-op: MemFS directory entries are always "durable".
func (m *MemFS) SyncDir(string) error { return nil }

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[clean(name)]; !ok {
		return fmt.Errorf("memfs: remove %s: %w", name, errNotExist)
	}
	delete(m.files, clean(name))
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := clean(dir) + string(filepath.Separator)
	var names []string
	for p := range m.files {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], string(filepath.Separator)) {
			names = append(names, p[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	f, ok := m.files[clean(name)]
	m.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("memfs: stat %s: %w", name, errNotExist)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.data)), nil
}

// Bytes returns a copy of name's current content, or nil when absent —
// the test hook for corrupting a log (flip a byte, cut the tail, write it
// back with SetBytes).
func (m *MemFS) Bytes(name string) []byte {
	m.mu.Lock()
	f, ok := m.files[clean(name)]
	m.mu.Unlock()
	if !ok {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.data...)
}

// SetBytes replaces name's content, creating the file if needed.
func (m *MemFS) SetBytes(name string, data []byte) {
	m.mu.Lock()
	f, ok := m.files[clean(name)]
	if !ok {
		f = &memFile{}
		m.files[clean(name)] = f
	}
	m.mu.Unlock()
	f.mu.Lock()
	f.data = append([]byte(nil), data...)
	f.mu.Unlock()
}

// memHandle is one open descriptor: a private read offset over the shared
// content. Writes go to the end in append mode (the only write mode the
// log uses on existing files) or at the handle's offset for Create'd
// files, which the log writes strictly sequentially.
type memHandle struct {
	f          *memFile
	off        int
	appendMode bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if h.off >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.off:])
	h.off += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error { return nil }

func (h *memHandle) Truncate(size int64) error {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	if int(size) < len(h.f.data) {
		h.f.data = h.f.data[:size]
	}
	return nil
}

func (h *memHandle) Close() error { return nil }
