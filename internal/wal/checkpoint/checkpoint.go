// Package checkpoint serializes a stream's sealed base generation as
// radix-partitioned runs of encoded partial aggregates — the disk-resident
// form of the Hash_RX partitioning discipline the literature's spill
// formats converge on: each run holds the groups of one radix partition,
// written and read with purely sequential I/O, so recovery rebuilds the
// partitions independently and the WAL only needs to retain the suffix
// past the checkpoint's watermark.
//
// Layout of a checkpoint root:
//
//	root/
//	  CURRENT           names the durable checkpoint dir, swapped atomically
//	  ckpt-00000003/
//	    part-0000.run   one run per radix partition, one or more frames
//	    part-0001.run   ...
//	    META            framed: seq, watermark, groups, bits, holistic
//
// Every file reuses the WAL's [length | CRC32C | payload] frame. A run is
// a sequence of frames, each carrying the partition index and a slice of
// its groups: large partitions chunk across frames so no frame approaches
// wal.MaxFrame (which ReadFrame rejects as corrupt). A half-written
// checkpoint can never be mistaken for a valid one: the CURRENT swap
// happens only after every run and META are written and synced (files and
// directories both), and a load validates every frame before handing
// state back.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"memagg/internal/wal"
)

// Meta identifies one checkpoint.
type Meta struct {
	// Seq is the checkpoint sequence number (monotonic per stream).
	Seq uint64
	// Watermark is the number of rows the checkpoint covers: recovery
	// replays the WAL records past it.
	Watermark uint64
	// Groups is the total group count across partitions.
	Groups uint64
	// Bits is the radix fan-out of the partitioning; there are 1<<Bits
	// partition runs. A stream recovering from this checkpoint adopts
	// these bits for its base generation.
	Bits int
	// Holistic records whether the runs carry value multisets.
	Holistic bool
}

// Parts returns the number of partition runs.
func (m Meta) Parts() int { return 1 << m.Bits }

// Group is one group's serialized state: the eager distributive folds
// plus, for holistic checkpoints, the buffered value multiset.
type Group struct {
	Key                  uint64
	Count, Sum, Min, Max uint64
	Vals                 []uint64
}

const (
	currentName = "CURRENT"
	metaName    = "META"
	metaMagic   = "mckp"
	metaVersion = 1
)

func ckptDirName(seq uint64) string { return fmt.Sprintf("ckpt-%08d", seq) }

func partName(q int) string { return fmt.Sprintf("part-%04d.run", q) }

// Writer writes one checkpoint: NewWriter creates the directory, one
// WritePartition call per partition streams the runs, and Commit writes
// META and atomically swaps CURRENT. Nothing is visible to Load until
// Commit returns nil.
type Writer struct {
	fs     wal.FS
	root   string
	dir    string
	meta   Meta
	groups uint64
	buf    []byte
}

// NewWriter starts checkpoint meta.Seq under root.
func NewWriter(fs wal.FS, root string, meta Meta) (*Writer, error) {
	w := &Writer{fs: fs, root: root, dir: filepath.Join(root, ckptDirName(meta.Seq)), meta: meta}
	if err := fs.MkdirAll(w.dir); err != nil {
		return nil, fmt.Errorf("checkpoint: mkdir: %w", err)
	}
	return w, nil
}

// partChunkBytes is the flush threshold for a run's frames: once the
// pending payload crosses it, the frame is written and a new one started,
// so a run of any size stays far below wal.MaxFrame per frame.
const partChunkBytes = 4 << 20

// WritePartition writes partition q's run as one or more frames. groups
// yields each group once, in any order; a nil groups writes an empty run
// (partitions with no groups still get a file, so a load can distinguish
// "empty" from "missing"). Vals are encoded only for holistic
// checkpoints. A single group too large to fit one frame (over
// wal.MaxFrame of encoded values) fails the write — the caller skips the
// checkpoint and the WAL keeps covering the data.
func (w *Writer) WritePartition(q int, groups func(yield func(Group))) error {
	f, err := w.fs.Create(filepath.Join(w.dir, partName(q)))
	if err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", partName(q), err)
	}
	p := &partWriter{w: w, f: f, q: q, payload: make([]byte, frameRunHeader, 1024)}
	if groups != nil {
		groups(p.add)
	}
	// The trailing flush also writes the run's only frame when the
	// partition is empty.
	if p.err == nil && (p.n > 0 || p.frames == 0) {
		p.flush()
	}
	if p.err != nil {
		f.Close()
		return p.err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", partName(q), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", partName(q), err)
	}
	return nil
}

// frameRunHeader is each run frame's payload header: partition index,
// then the count of groups in this frame.
const frameRunHeader = 8

// partWriter streams one partition run, chunking groups into frames.
type partWriter struct {
	w       *Writer
	f       wal.File
	q       int
	n       uint32 // groups in the pending frame
	frames  int
	payload []byte
	err     error
}

func (p *partWriter) add(g Group) {
	if p.err != nil {
		return
	}
	size := 40
	if p.w.meta.Holistic {
		size += 4 + 8*len(g.Vals)
	}
	// A group that would push the frame past the hard limit goes into a
	// frame of its own; only a group alone too big for any frame fails (in
	// flush).
	if p.n > 0 && len(p.payload)+size > wal.MaxFrame {
		if p.flush(); p.err != nil {
			return
		}
	}
	var rec [40]byte
	binary.LittleEndian.PutUint64(rec[0:8], g.Key)
	binary.LittleEndian.PutUint64(rec[8:16], g.Count)
	binary.LittleEndian.PutUint64(rec[16:24], g.Sum)
	binary.LittleEndian.PutUint64(rec[24:32], g.Min)
	binary.LittleEndian.PutUint64(rec[32:40], g.Max)
	p.payload = append(p.payload, rec[:]...)
	if p.w.meta.Holistic {
		var nv [4]byte
		binary.LittleEndian.PutUint32(nv[:], uint32(len(g.Vals)))
		p.payload = append(p.payload, nv[:]...)
		for _, v := range g.Vals {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], v)
			p.payload = append(p.payload, b[:]...)
		}
	}
	p.n++
	p.w.groups++
	if len(p.payload) >= partChunkBytes {
		p.flush()
	}
}

func (p *partWriter) flush() {
	if len(p.payload) > wal.MaxFrame {
		// Only a single monster group can get here (the chunk threshold is
		// far below MaxFrame): it cannot be framed readably, so the
		// checkpoint must not commit.
		p.err = fmt.Errorf("checkpoint: partition %d: group of %d bytes exceeds max frame %d",
			p.q, len(p.payload), wal.MaxFrame)
		return
	}
	binary.LittleEndian.PutUint32(p.payload[0:4], uint32(p.q))
	binary.LittleEndian.PutUint32(p.payload[4:8], p.n)
	p.w.buf = wal.AppendFrame(p.w.buf[:0], p.payload)
	if _, err := p.f.Write(p.w.buf); err != nil {
		p.err = fmt.Errorf("checkpoint: write %s: %w", partName(p.q), err)
		return
	}
	p.frames++
	p.n = 0
	p.payload = p.payload[:frameRunHeader]
}

// writeFile creates name under the checkpoint dir, writes data, syncs and
// closes — every byte durable before Commit's CURRENT swap can reference
// it.
func (w *Writer) writeFile(name string, data []byte) error {
	f, err := w.fs.Create(filepath.Join(w.dir, name))
	if err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: write %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", name, err)
	}
	return nil
}

// Commit writes META, then swaps CURRENT to this checkpoint — the atomic
// publication point — and removes superseded checkpoint directories.
func (w *Writer) Commit() error {
	payload := make([]byte, 0, 64)
	payload = append(payload, metaMagic...)
	payload = append(payload, metaVersion)
	var b [8]byte
	for _, v := range []uint64{w.meta.Seq, w.meta.Watermark, w.groups} {
		binary.LittleEndian.PutUint64(b[:], v)
		payload = append(payload, b[:]...)
	}
	payload = append(payload, byte(w.meta.Bits))
	if w.meta.Holistic {
		payload = append(payload, 1)
	} else {
		payload = append(payload, 0)
	}
	if err := w.writeFile(metaName, wal.AppendFrame(nil, payload)); err != nil {
		return err
	}
	// Before CURRENT can reference the checkpoint, its directory entries
	// (runs, META) and the root's entry for the directory itself must be
	// durable — the files' own fsyncs pin their bytes, not their names.
	if err := w.fs.SyncDir(w.dir); err != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", err)
	}
	if err := w.fs.SyncDir(w.root); err != nil {
		return fmt.Errorf("checkpoint: sync root: %w", err)
	}

	tmp := filepath.Join(w.root, currentName+".tmp")
	if err := w.writeFileAt(tmp, []byte(ckptDirName(w.meta.Seq)+"\n")); err != nil {
		return err
	}
	if err := w.fs.Rename(tmp, filepath.Join(w.root, currentName)); err != nil {
		return fmt.Errorf("checkpoint: swap CURRENT: %w", err)
	}
	// The rename is the commit point in memory; this sync makes it the
	// commit point on disk.
	if err := w.fs.SyncDir(w.root); err != nil {
		return fmt.Errorf("checkpoint: sync root: %w", err)
	}
	removeStale(w.fs, w.root, ckptDirName(w.meta.Seq))
	return nil
}

// writeFileAt is writeFile with an absolute path (for CURRENT.tmp, which
// lives in the root rather than the checkpoint dir).
func (w *Writer) writeFileAt(path string, data []byte) error {
	f, err := w.fs.Create(path)
	if err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: sync %s: %w", path, err)
	}
	return f.Close()
}

// Abort removes a checkpoint that will not be committed (a fault midway):
// best effort, the uncommitted directory is ignorable garbage either way.
func (w *Writer) Abort() { removeDir(w.fs, w.dir) }

// removeStale deletes every ckpt-* directory under root except keep.
func removeStale(fs wal.FS, root, keep string) {
	names, err := fs.ReadDir(root)
	if err != nil {
		return
	}
	for _, n := range names {
		if strings.HasPrefix(n, "ckpt-") && n != keep {
			removeDir(fs, filepath.Join(root, n))
		}
	}
}

// removeDir removes a directory's files then the directory itself, best
// effort (the FS interface has no recursive remove).
func removeDir(fs wal.FS, dir string) {
	if names, err := fs.ReadDir(dir); err == nil {
		for _, n := range names {
			_ = fs.Remove(filepath.Join(dir, n))
		}
	}
	_ = fs.Remove(dir)
}

// Load reads the durable checkpoint under root. It returns (nil, nil,
// nil) only when no checkpoint exists (CURRENT absent); a checkpoint that
// fails validation returns an error wrapping wal.ErrWALCorrupt — the
// caller decides whether to fail recovery or start empty. Any other
// CURRENT open error fails the load: treating a transient I/O or
// permission error as "no checkpoint" would boot an empty stream while
// the WAL below the checkpoint watermark is already truncated.
func Load(fs wal.FS, root string) (*Meta, [][]Group, error) {
	f, err := fs.Open(filepath.Join(root, currentName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil, nil // no checkpoint yet
		}
		return nil, nil, fmt.Errorf("checkpoint: open CURRENT: %w", err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: read CURRENT: %w", err)
	}
	dir := filepath.Join(root, strings.TrimSpace(string(data)))

	meta, err := loadMeta(fs, dir)
	if err != nil {
		return nil, nil, err
	}
	parts := make([][]Group, meta.Parts())
	for q := range parts {
		groups, err := loadPartition(fs, dir, q, meta.Holistic)
		if err != nil {
			return nil, nil, err
		}
		parts[q] = groups
	}
	return meta, parts, nil
}

func loadMeta(fs wal.FS, dir string) (*Meta, error) {
	payload, err := readFramedFile(fs, filepath.Join(dir, metaName))
	if err != nil {
		return nil, err
	}
	if len(payload) != 31 || string(payload[:4]) != metaMagic || payload[4] != metaVersion {
		return nil, fmt.Errorf("checkpoint: bad META: %w", wal.ErrWALCorrupt)
	}
	m := &Meta{
		Seq:       binary.LittleEndian.Uint64(payload[5:13]),
		Watermark: binary.LittleEndian.Uint64(payload[13:21]),
		Groups:    binary.LittleEndian.Uint64(payload[21:29]),
		Bits:      int(payload[29]),
		Holistic:  payload[30] == 1,
	}
	if m.Bits < 1 || m.Bits > 16 {
		return nil, fmt.Errorf("checkpoint: META bits %d: %w", m.Bits, wal.ErrWALCorrupt)
	}
	return m, nil
}

func loadPartition(fs wal.FS, dir string, q int, holistic bool) ([]Group, error) {
	f, err := fs.Open(filepath.Join(dir, partName(q)))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %v: %w", partName(q), err, wal.ErrWALCorrupt)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var groups []Group
	frames := 0
	for {
		payload, _, err := wal.ReadFrame(r)
		if err == io.EOF {
			if frames == 0 {
				return nil, fmt.Errorf("checkpoint: empty run %s: %w", partName(q), wal.ErrWALCorrupt)
			}
			return groups, nil
		}
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %s: %w", partName(q), err)
		}
		frames++
		groups, err = decodeRunFrame(groups, payload, q, holistic)
		if err != nil {
			return nil, err
		}
	}
}

// decodeRunFrame parses one run frame's groups, appending to groups.
func decodeRunFrame(groups []Group, payload []byte, q int, holistic bool) ([]Group, error) {
	if len(payload) < frameRunHeader || int(binary.LittleEndian.Uint32(payload[0:4])) != q {
		return nil, fmt.Errorf("checkpoint: bad run header %s: %w", partName(q), wal.ErrWALCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(payload[4:8]))
	body := payload[frameRunHeader:]
	if groups == nil {
		groups = make([]Group, 0, n)
	}
	for i := 0; i < n; i++ {
		if len(body) < 40 {
			return nil, fmt.Errorf("checkpoint: short run %s: %w", partName(q), wal.ErrWALCorrupt)
		}
		g := Group{
			Key:   binary.LittleEndian.Uint64(body[0:8]),
			Count: binary.LittleEndian.Uint64(body[8:16]),
			Sum:   binary.LittleEndian.Uint64(body[16:24]),
			Min:   binary.LittleEndian.Uint64(body[24:32]),
			Max:   binary.LittleEndian.Uint64(body[32:40]),
		}
		body = body[40:]
		if holistic {
			if len(body) < 4 {
				return nil, fmt.Errorf("checkpoint: short run %s: %w", partName(q), wal.ErrWALCorrupt)
			}
			nv := int(binary.LittleEndian.Uint32(body[0:4]))
			body = body[4:]
			if len(body) < 8*nv {
				return nil, fmt.Errorf("checkpoint: short run %s: %w", partName(q), wal.ErrWALCorrupt)
			}
			g.Vals = make([]uint64, nv)
			for j := range g.Vals {
				g.Vals[j] = binary.LittleEndian.Uint64(body[8*j:])
			}
			body = body[8*nv:]
		}
		groups = append(groups, g)
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("checkpoint: trailing bytes in %s: %w", partName(q), wal.ErrWALCorrupt)
	}
	return groups, nil
}

// readFramedFile reads a whole single-frame file, validating its CRC.
func readFramedFile(fs wal.FS, path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %v: %w", path, err, wal.ErrWALCorrupt)
	}
	defer f.Close()
	payload, _, err := wal.ReadFrame(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return payload, nil
}
