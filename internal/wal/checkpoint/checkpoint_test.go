package checkpoint

import (
	"encoding/binary"
	"errors"
	"path/filepath"
	"testing"

	"memagg/internal/wal"
)

// writeCheckpoint writes a full checkpoint with deterministic content:
// partition q holds groups with keys q*100+i for i in [0, q+1).
func writeCheckpoint(t *testing.T, fs wal.FS, root string, meta Meta) {
	t.Helper()
	w, err := NewWriter(fs, root, meta)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < meta.Parts(); q++ {
		q := q
		err := w.WritePartition(q, func(yield func(Group)) {
			for i := 0; i <= q; i++ {
				g := Group{
					Key:   uint64(q*100 + i),
					Count: uint64(i + 1),
					Sum:   uint64(10 * (i + 1)),
					Min:   uint64(i),
					Max:   uint64(i + 9),
				}
				if meta.Holistic {
					g.Vals = []uint64{uint64(i), uint64(i + 1), uint64(i + 2)}
				}
				yield(g)
			}
		})
		if err != nil {
			t.Fatalf("partition %d: %v", q, err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func checkLoaded(t *testing.T, meta *Meta, parts [][]Group, want Meta) {
	t.Helper()
	if meta == nil {
		t.Fatal("no checkpoint loaded")
	}
	if meta.Seq != want.Seq || meta.Watermark != want.Watermark ||
		meta.Bits != want.Bits || meta.Holistic != want.Holistic {
		t.Fatalf("meta %+v, want %+v", *meta, want)
	}
	if len(parts) != want.Parts() {
		t.Fatalf("%d partitions, want %d", len(parts), want.Parts())
	}
	for q, groups := range parts {
		if len(groups) != q+1 {
			t.Fatalf("partition %d: %d groups, want %d", q, len(groups), q+1)
		}
		for i, g := range groups {
			if g.Key != uint64(q*100+i) || g.Count != uint64(i+1) || g.Sum != uint64(10*(i+1)) {
				t.Fatalf("partition %d group %d: %+v", q, i, g)
			}
			if want.Holistic {
				if len(g.Vals) != 3 || g.Vals[0] != uint64(i) {
					t.Fatalf("partition %d group %d vals: %v", q, i, g.Vals)
				}
			} else if g.Vals != nil {
				t.Fatalf("non-holistic checkpoint carried vals: %v", g.Vals)
			}
		}
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	for _, holistic := range []bool{false, true} {
		fs := wal.NewMemFS()
		meta := Meta{Seq: 3, Watermark: 12345, Bits: 2, Holistic: holistic}
		writeCheckpoint(t, fs, "ck", meta)
		got, parts, err := Load(fs, "ck")
		if err != nil {
			t.Fatalf("holistic=%v: %v", holistic, err)
		}
		checkLoaded(t, got, parts, meta)
	}
}

func TestLoadEmptyRoot(t *testing.T) {
	meta, parts, err := Load(wal.NewMemFS(), "nothing")
	if meta != nil || parts != nil || err != nil {
		t.Fatalf("empty root: %v %v %v, want all nil", meta, parts, err)
	}
}

func TestCommitSupersedesPrevious(t *testing.T) {
	fs := wal.NewMemFS()
	writeCheckpoint(t, fs, "ck", Meta{Seq: 1, Watermark: 100, Bits: 1})
	writeCheckpoint(t, fs, "ck", Meta{Seq: 2, Watermark: 200, Bits: 1})
	meta, parts, err := Load(fs, "ck")
	if err != nil {
		t.Fatal(err)
	}
	checkLoaded(t, meta, parts, Meta{Seq: 2, Watermark: 200, Bits: 1})
	// The superseded directory is gone.
	if names, _ := fs.ReadDir("ck"); len(names) != 0 {
		for _, n := range names {
			if n == ckptDirName(1) {
				t.Fatalf("stale checkpoint dir survived: %v", names)
			}
		}
	}
}

func TestUncommittedCheckpointInvisible(t *testing.T) {
	fs := wal.NewMemFS()
	writeCheckpoint(t, fs, "ck", Meta{Seq: 1, Watermark: 100, Bits: 1})
	// A second checkpoint that crashes before Commit: runs written, no
	// CURRENT swap.
	w, err := NewWriter(fs, "ck", Meta{Seq: 2, Watermark: 200, Bits: 1})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 2; q++ {
		if err := w.WritePartition(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	// No Commit. Load still sees checkpoint 1.
	meta, parts, err := Load(fs, "ck")
	if err != nil {
		t.Fatal(err)
	}
	checkLoaded(t, meta, parts, Meta{Seq: 1, Watermark: 100, Bits: 1})
}

func TestCorruptRunDetected(t *testing.T) {
	fs := wal.NewMemFS()
	meta := Meta{Seq: 1, Watermark: 50, Bits: 2}
	writeCheckpoint(t, fs, "ck", meta)
	name := filepath.Join("ck", ckptDirName(1), partName(2))
	data := fs.Bytes(name)
	if data == nil {
		t.Fatal("run file missing")
	}
	data[len(data)-1] ^= 0x01
	fs.SetBytes(name, data)
	if _, _, err := Load(fs, "ck"); !errors.Is(err, wal.ErrWALCorrupt) {
		t.Fatalf("load of corrupt run: %v, want ErrWALCorrupt", err)
	}
}

func TestCorruptMetaDetected(t *testing.T) {
	fs := wal.NewMemFS()
	writeCheckpoint(t, fs, "ck", Meta{Seq: 1, Watermark: 50, Bits: 1})
	name := filepath.Join("ck", ckptDirName(1), metaName)
	data := fs.Bytes(name)
	data[len(data)-3] ^= 0xff
	fs.SetBytes(name, data)
	if _, _, err := Load(fs, "ck"); !errors.Is(err, wal.ErrWALCorrupt) {
		t.Fatalf("load of corrupt META: %v, want ErrWALCorrupt", err)
	}
}

func TestMissingRunDetected(t *testing.T) {
	fs := wal.NewMemFS()
	writeCheckpoint(t, fs, "ck", Meta{Seq: 1, Watermark: 50, Bits: 2})
	if err := fs.Remove(filepath.Join("ck", ckptDirName(1), partName(1))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(fs, "ck"); !errors.Is(err, wal.ErrWALCorrupt) {
		t.Fatalf("load with missing run: %v, want ErrWALCorrupt", err)
	}
}

func TestFaultDuringCommitKeepsPrevious(t *testing.T) {
	mem := wal.NewMemFS()
	writeCheckpoint(t, mem, "ck", Meta{Seq: 1, Watermark: 100, Bits: 1})
	// Checkpoint 2 dies on the CURRENT rename — the commit point itself.
	efs := wal.NewErrFS(mem)
	efs.FailAfter(wal.OpRename, 1)
	w, err := NewWriter(efs, "ck", Meta{Seq: 2, Watermark: 200, Bits: 1})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 2; q++ {
		if err := w.WritePartition(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("commit across fault: %v, want ErrInjected", err)
	}
	// Reload on the inner FS: checkpoint 1 intact.
	meta, parts, err := Load(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	checkLoaded(t, meta, parts, Meta{Seq: 1, Watermark: 100, Bits: 1})
}

func TestLoadFailsOnCurrentOpenError(t *testing.T) {
	// A CURRENT that exists but cannot be opened is NOT "no checkpoint":
	// booting empty would silently drop every checkpointed row (the WAL
	// below the watermark is already truncated).
	mem := wal.NewMemFS()
	writeCheckpoint(t, mem, "ck", Meta{Seq: 1, Watermark: 100, Bits: 1})
	efs := wal.NewErrFS(mem)
	efs.FailAfter(wal.OpOpen, 1)
	if _, _, err := Load(efs, "ck"); !errors.Is(err, wal.ErrInjected) {
		t.Fatalf("Load with failing CURRENT open: %v, want ErrInjected", err)
	}
}

func TestLargePartitionChunksAcrossFrames(t *testing.T) {
	fs := wal.NewMemFS()
	meta := Meta{Seq: 1, Watermark: 7, Bits: 1}
	w, err := NewWriter(fs, "ck", meta)
	if err != nil {
		t.Fatal(err)
	}
	const n = 150_000 // 150k groups x 40 B = 6 MB: crosses partChunkBytes
	err = w.WritePartition(0, func(yield func(Group)) {
		for i := 0; i < n; i++ {
			yield(Group{Key: uint64(i), Count: 1, Sum: uint64(2 * i), Min: uint64(i), Max: uint64(i)})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePartition(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// The run really is chunked: its first frame ends before the file does.
	data := fs.Bytes(filepath.Join("ck", ckptDirName(1), partName(0)))
	first := 8 + int(binary.LittleEndian.Uint32(data[0:4]))
	if first >= len(data) {
		t.Fatalf("run fit one frame (%d of %d bytes): chunking not exercised", first, len(data))
	}
	got, parts, err := Load(fs, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 1 || got.Groups != n {
		t.Fatalf("meta %+v, want seq 1 with %d groups", *got, n)
	}
	if len(parts[0]) != n || len(parts[1]) != 0 {
		t.Fatalf("partition sizes %d/%d, want %d/0", len(parts[0]), len(parts[1]), n)
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		g := parts[0][i]
		if g.Key != uint64(i) || g.Count != 1 || g.Sum != uint64(2*i) || g.Min != uint64(i) {
			t.Fatalf("group %d: %+v", i, g)
		}
	}
}

func TestOversizedGroupFailsCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates ~130 MB")
	}
	// A single group whose encoding cannot fit one frame must fail the
	// write (so the checkpoint is skipped and the WAL keeps the data),
	// never commit a run that ReadFrame will reject as corrupt.
	fs := wal.NewMemFS()
	w, err := NewWriter(fs, "ck", Meta{Seq: 1, Watermark: 1, Bits: 1, Holistic: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, wal.MaxFrame/8+1)
	err = w.WritePartition(0, func(yield func(Group)) {
		yield(Group{Key: 1, Count: uint64(len(vals)), Vals: vals})
	})
	if err == nil {
		t.Fatal("oversized group framed without error")
	}
}
