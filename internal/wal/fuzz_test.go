package wal

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReadFrame throws arbitrary bytes at the frame reader: it must never
// panic, never return a payload that fails its own CRC contract, and must
// round-trip everything AppendFrame produces.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, []byte("hello")))
	f.Add(AppendFrame(AppendFrame(nil, []byte("a")), []byte("bb")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	torn := AppendFrame(nil, []byte("torn tail"))
	f.Add(torn[:len(torn)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		off := 0
		for {
			payload, n, err := ReadFrame(r)
			if err == io.EOF {
				if off != len(data) {
					t.Fatalf("clean EOF at %d of %d bytes", off, len(data))
				}
				return
			}
			if err != nil {
				if !errors.Is(err, ErrWALCorrupt) {
					t.Fatalf("non-corrupt error: %v", err)
				}
				return // recovery truncates here
			}
			// A frame the reader accepts must re-encode to the same bytes.
			reframed := AppendFrame(nil, payload)
			if !bytes.Equal(reframed, data[off:off+n]) {
				t.Fatalf("accepted frame at %d does not round-trip", off)
			}
			off += n
		}
	})
}

// FuzzRecordDecode: arbitrary frame payloads must never panic the record
// decoder, and every accepted record must round-trip through encodeRecord.
func FuzzRecordDecode(f *testing.F) {
	valid := encodeRecord(nil, Record{EndWatermark: 3, Keys: []uint64{1, 2, 3}, Vals: []uint64{9, 8, 7}})
	f.Add(valid[frameHeader:]) // the framed payload
	f.Add([]byte{recordRows})
	f.Add([]byte{recordRows, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeRecord(payload)
		if err != nil {
			if !errors.Is(err, ErrWALCorrupt) {
				t.Fatalf("non-corrupt decode error: %v", err)
			}
			return
		}
		if len(rec.Keys) != len(rec.Vals) {
			t.Fatalf("accepted record with %d keys, %d vals", len(rec.Keys), len(rec.Vals))
		}
		re := encodeRecord(nil, rec)
		if !bytes.Equal(re[frameHeader:], payload) {
			t.Fatal("accepted record does not round-trip")
		}
	})
}

// buildFuzzLog writes a deterministic log of n single-row records
// (key=i%37, val=i) and returns the filesystem plus the segment file
// names, oldest first.
func buildFuzzLog(t *testing.T, n int) (*MemFS, []string) {
	t.Helper()
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs, SyncPolicy: SyncAlways, SegmentBytes: 1024}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := Record{EndWatermark: uint64(i + 1), Keys: []uint64{uint64(i % 37)}, Vals: []uint64{uint64(i)}}
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	names, err := fs.ReadDir("wal")
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, name := range names {
		if _, ok := segSeq(name); ok {
			segs = append(segs, name)
		}
	}
	return fs, segs
}

// FuzzLogRecovery mutates one byte and/or truncates one segment of a
// valid multi-segment log at fuzzed positions, then recovers: Open must
// never panic, must succeed, and must replay a strict prefix of the
// original records — the longest-valid-prefix contract.
func FuzzLogRecovery(f *testing.F) {
	f.Add(uint16(0), byte(0x01), uint16(0))
	f.Add(uint16(100), byte(0xff), uint16(0))
	f.Add(uint16(0), byte(0), uint16(5))
	f.Add(uint16(900), byte(0x40), uint16(17))
	f.Add(uint16(65535), byte(0x80), uint16(65535))

	const rows = 120
	f.Fuzz(func(t *testing.T, pos uint16, xor byte, cut uint16) {
		fs, segs := buildFuzzLog(t, rows)
		if len(segs) < 2 {
			t.Fatalf("want a multi-segment log, got %d segments", len(segs))
		}

		// Spread the fuzzed offsets across the whole log: pick the segment
		// by position, then mutate within it.
		var total int
		sizes := make([]int, len(segs))
		for i, name := range segs {
			sizes[i] = len(fs.Bytes("wal/" + name))
			total += sizes[i]
		}
		off := int(pos) % total
		seg := 0
		for off >= sizes[seg] {
			off -= sizes[seg]
			seg++
		}
		name := "wal/" + segs[seg]
		data := fs.Bytes(name)
		if xor != 0 {
			data[off] ^= xor
		}
		if cut != 0 {
			keep := len(data) - int(cut)%len(data)
			data = data[:keep]
		}
		fs.SetBytes(name, data)

		var replayed []Record
		l, err := Open("wal", Options{FS: fs}, func(r Record) error {
			replayed = append(replayed, r)
			return nil
		})
		if err != nil {
			t.Fatalf("recovery errored instead of truncating: %v", err)
		}
		defer l.Close()

		if len(replayed) > rows {
			t.Fatalf("replayed %d records from a %d-record log", len(replayed), rows)
		}
		for i, r := range replayed {
			if r.EndWatermark != uint64(i+1) || len(r.Keys) != 1 ||
				r.Keys[0] != uint64(i%37) || r.Vals[0] != uint64(i) {
				t.Fatalf("record %d not the original prefix: %+v", i, r)
			}
		}
		if got := l.LastWatermark(); got != uint64(len(replayed)) {
			t.Fatalf("recovered watermark %d after %d records", got, len(replayed))
		}
		// The repaired log must accept appends at the recovered watermark.
		next := uint64(len(replayed)) + 1
		if err := l.Append(Record{EndWatermark: next, Keys: []uint64{1}, Vals: []uint64{2}}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
