package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"memagg/internal/obs"
)

// SyncPolicy controls when appended records are fsync'd.
type SyncPolicy int

const (
	// SyncNone never fsyncs on append: the OS page cache decides. Fastest;
	// a crash can lose every record since the last rotation.
	SyncNone SyncPolicy = iota
	// SyncInterval fsyncs when at least SyncInterval has passed since the
	// last sync, amortizing the fsync over many appends. A crash loses at
	// most the records of the last interval.
	SyncInterval
	// SyncAlways fsyncs every append: a record acknowledged is a record
	// durable. The policy the crash-recovery gate assumes.
	SyncAlways
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	}
	return "?"
}

// ParseSyncPolicy maps the flag spelling ("none", "interval", "always")
// to its SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none":
		return SyncNone, nil
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (none|interval|always)", s)
}

// Metrics is the log's optional instrument set; nil disables recording.
// The stream wires these into its per-stream obs registry so /metrics
// exposes the WAL next to the ingest pipeline.
type Metrics struct {
	Appends      *obs.Counter   // records appended
	AppendBytes  *obs.Counter   // framed bytes appended
	Syncs        *obs.Counter   // fsync calls
	Rotations    *obs.Counter   // segment rotations
	SegsDropped  *obs.Counter   // segments removed by truncation
	ReplayedRows *obs.Counter   // rows handed to replay at Open
	SyncLat      *obs.Histogram // fsync latency
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func add(c *obs.Counter, n uint64) {
	if c != nil {
		c.Add(n)
	}
}

func observe(h *obs.Histogram, d time.Duration) {
	if h != nil {
		h.Observe(d)
	}
}

// Options configures a Log. The zero value is usable: OS filesystem, no
// fsync, 16 MiB segments.
type Options struct {
	// FS is the filesystem to write through; nil means OSFS.
	FS FS
	// SyncPolicy is the fsync discipline; see the constants.
	SyncPolicy SyncPolicy
	// SyncInterval is SyncInterval's amortization period. <= 0 means 100ms.
	SyncInterval time.Duration
	// SegmentBytes rotates the active segment when it would exceed this
	// size. <= 0 means 16 MiB.
	SegmentBytes int
	// SkipBelow lets recovery skip whole sealed segments whose final
	// watermark is at or below this value (rows already covered by a
	// checkpoint): they are not even opened.
	SkipBelow uint64
	// Metrics receives the log's instruments; nil disables them.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	return o
}

const manifestName = "MANIFEST"

// segment is one manifest entry. endWM is the watermark after the
// segment's last record — exact for sealed segments (recorded at
// rotation), advisory for the active (last) one.
type segment struct {
	name  string
	endWM uint64
}

// Log is a segmented append-only record log. Append/Sync/TruncateBelow/
// Close are safe for concurrent use (the stream appends from seal
// publication while the checkpointer truncates).
type Log struct {
	fs   FS
	dir  string
	opts Options

	mu         sync.Mutex
	segs       []segment // oldest first; last is active
	seq        uint64    // sequence number of the active segment
	active     File
	activeSize int64
	lastWM     uint64
	lastSync   time.Time
	buf        []byte
	broken     error // sticky: a failed write leaves the tail torn
	closed     bool
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.wal", seq) }

func segSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	n, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	return n, err == nil
}

// Open opens (or creates) the log in dir, replaying every valid record —
// in order — through replay, and returns the log positioned to append
// after the last valid record. Recovery truncates the log at the first
// torn or corrupt frame: the bytes after it are unreachable garbage from
// a crashed write, so the longest valid prefix is the log. replay may
// return an error wrapping ErrWALCorrupt to reject a record (watermark
// discontinuity against recovered state); the log is truncated there too.
// Any other replay error aborts Open.
func Open(dir string, opts Options, replay func(Record) error) (*Log, error) {
	opts = opts.withDefaults()
	l := &Log{fs: opts.FS, dir: dir, opts: opts}
	if err := l.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	segs, err := l.readManifest()
	if err != nil {
		return nil, err
	}
	if segs == nil {
		// Fresh log: one empty segment, manifest established before the
		// first append so a crash right here recovers an empty log.
		l.seq = 1
		l.segs = []segment{{name: segName(1)}}
		f, err := l.fs.Create(join(dir, segName(1)))
		if err != nil {
			return nil, fmt.Errorf("wal: create segment: %w", err)
		}
		l.active = f
		if err := l.writeManifest(); err != nil {
			return nil, err
		}
		return l, nil
	}
	if err := l.recover(segs, replay); err != nil {
		return nil, err
	}
	l.removeOrphans()
	return l, nil
}

// recover scans the manifest's segments in order, replays valid records,
// repairs the tail, and leaves the last segment open for appends.
func (l *Log) recover(segs []segment, replay func(Record) error) error {
	valid := make([]segment, 0, len(segs))
	truncated := false
	for i, sg := range segs {
		if truncated {
			// Everything after the first corruption is dead: remove.
			_ = l.fs.Remove(join(l.dir, sg.name))
			continue
		}
		// A sealed segment fully below the checkpoint needs no scan: its
		// rows are durable in the checkpoint and the next truncation will
		// drop it.
		if i < len(segs)-1 && sg.endWM > 0 && sg.endWM <= l.opts.SkipBelow {
			if sg.endWM > l.lastWM {
				l.lastWM = sg.endWM
			}
			valid = append(valid, sg)
			continue
		}
		end, endWM, err := l.scanSegment(sg.name, replay)
		if err != nil {
			if !errors.Is(err, ErrWALCorrupt) {
				return err
			}
			// Corrupt or torn tail: cut this segment at the last valid
			// frame and drop everything after it.
			if terr := l.truncateSegment(sg.name, end); terr != nil {
				return terr
			}
			truncated = true
		}
		if endWM > l.lastWM {
			l.lastWM = endWM
		}
		sg.endWM = endWM
		valid = append(valid, sg)
	}
	if len(valid) == 0 {
		valid = []segment{{name: segName(1)}}
		if _, err := l.fs.Create(join(l.dir, segName(1))); err != nil {
			return fmt.Errorf("wal: create segment: %w", err)
		}
	}
	l.segs = valid
	last := valid[len(valid)-1]
	if seq, ok := segSeq(last.name); ok {
		l.seq = seq
	}
	f, err := l.fs.OpenAppend(join(l.dir, last.name))
	if err != nil {
		return fmt.Errorf("wal: open active segment: %w", err)
	}
	l.active = f
	if size, err := l.fs.Size(join(l.dir, last.name)); err == nil {
		l.activeSize = size
	}
	return l.writeManifest()
}

// scanSegment replays name's valid records. It returns the byte offset
// one past the last valid frame, the watermark of the last valid record,
// and an ErrWALCorrupt-wrapping error when the scan ended early (torn or
// corrupt frame, watermark discontinuity, or replay rejection). A missing
// segment file reports offset 0 and corruption.
func (l *Log) scanSegment(name string, replay func(Record) error) (int64, uint64, error) {
	f, err := l.fs.Open(join(l.dir, name))
	if err != nil {
		return 0, 0, fmt.Errorf("wal: segment %s missing: %w", name, ErrWALCorrupt)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var off int64
	var lastWM uint64
	first := true
	for {
		payload, n, err := ReadFrame(r)
		if err == io.EOF {
			return off, lastWM, nil
		}
		if err != nil {
			return off, lastWM, err
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return off, lastWM, err
		}
		// Watermark continuity: each record advances the watermark by
		// exactly its row count. The first record of the scan has no
		// predecessor to check against (earlier records may live in
		// skipped segments or the checkpoint).
		if prev := l.lastWM; !first || prev > 0 {
			base := lastWM
			if first {
				base = prev
			}
			if rec.EndWatermark != base+uint64(rec.Rows()) {
				return off, lastWM, fmt.Errorf("wal: watermark gap at %s+%d: %w", name, off, ErrWALCorrupt)
			}
		}
		if replay != nil {
			add(l.opts.Metrics.replayedRows(), uint64(rec.Rows()))
			if err := replay(rec); err != nil {
				if errors.Is(err, ErrWALCorrupt) {
					return off, lastWM, err
				}
				return off, lastWM, fmt.Errorf("wal: replay: %w", err)
			}
		}
		first = false
		lastWM = rec.EndWatermark
		off += int64(n)
	}
}

// replayedRows is the nil-safe accessor for Metrics.ReplayedRows.
func (m *Metrics) replayedRows() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.ReplayedRows
}

// truncateSegment cuts name to size bytes.
func (l *Log) truncateSegment(name string, size int64) error {
	f, err := l.fs.OpenAppend(join(l.dir, name))
	if err != nil {
		return fmt.Errorf("wal: truncate %s: %w", name, err)
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("wal: truncate %s: %w", name, err)
	}
	return f.Sync()
}

// removeOrphans deletes segment files a crashed rotation or truncation
// left outside the manifest. Best effort.
func (l *Log) removeOrphans() {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return
	}
	live := map[string]bool{manifestName: true}
	for _, sg := range l.segs {
		live[sg.name] = true
	}
	for _, n := range names {
		if _, ok := segSeq(n); ok && !live[n] {
			_ = l.fs.Remove(join(l.dir, n))
		}
	}
}

// readManifest parses the manifest, returning nil (no error) when the log
// directory is fresh.
func (l *Log) readManifest() ([]segment, error) {
	f, err := l.fs.Open(join(l.dir, manifestName))
	if err != nil {
		if errors.Is(err, errNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: open manifest: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("wal: read manifest: %w", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] != "memagg-wal v1" {
		return nil, fmt.Errorf("wal: bad manifest header: %w", ErrWALCorrupt)
	}
	var segs []segment
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("wal: bad manifest line %q: %w", line, ErrWALCorrupt)
		}
		wm, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("wal: bad manifest line %q: %w", line, ErrWALCorrupt)
		}
		segs = append(segs, segment{name: fields[0], endWM: wm})
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("wal: empty manifest: %w", ErrWALCorrupt)
	}
	return segs, nil
}

// writeManifest swaps in a manifest listing l.segs: written to a temp
// file, synced, then renamed over MANIFEST — the atomic commit point of
// rotations and truncations.
func (l *Log) writeManifest() error {
	var b strings.Builder
	b.WriteString("memagg-wal v1\n")
	for _, sg := range l.segs {
		fmt.Fprintf(&b, "%s %d\n", sg.name, sg.endWM)
	}
	tmp := join(l.dir, manifestName+".tmp")
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if _, err := f.Write([]byte(b.String())); err != nil {
		f.Close()
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if err := l.fs.Rename(tmp, join(l.dir, manifestName)); err != nil {
		return fmt.Errorf("wal: manifest swap: %w", err)
	}
	// The rename committed the manifest in memory; the directory fsync
	// makes the commit — and any segment files created alongside it —
	// survive power loss.
	if err := l.fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: manifest dir sync: %w", err)
	}
	return nil
}

// Append frames and writes one record, rotating the segment and syncing
// as the options dictate. An error is sticky: the on-disk tail may be
// torn, so every subsequent Append fails too and the caller must degrade
// (recovery will repair the tail).
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: closed")
	}
	if l.broken != nil {
		return l.broken
	}
	l.buf = encodeRecord(l.buf[:0], r)
	if l.activeSize > 0 && l.activeSize+int64(len(l.buf)) > int64(l.opts.SegmentBytes) {
		if err := l.rotate(); err != nil {
			l.broken = err
			return err
		}
	}
	if _, err := l.active.Write(l.buf); err != nil {
		l.broken = fmt.Errorf("wal: append: %w", err)
		return l.broken
	}
	l.activeSize += int64(len(l.buf))
	l.lastWM = r.EndWatermark
	m := l.opts.Metrics
	if m != nil {
		inc(m.Appends)
		add(m.AppendBytes, uint64(len(l.buf)))
	}
	switch l.opts.SyncPolicy {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncInterval {
			return l.syncLocked()
		}
	}
	return nil
}

func (l *Log) syncLocked() error {
	start := time.Now()
	if err := l.active.Sync(); err != nil {
		l.broken = fmt.Errorf("wal: sync: %w", err)
		return l.broken
	}
	l.lastSync = time.Now()
	m := l.opts.Metrics
	if m != nil {
		inc(m.Syncs)
		observe(m.SyncLat, time.Since(start))
	}
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.broken != nil {
		return l.broken
	}
	return l.syncLocked()
}

// rotate seals the active segment (sync, record its end watermark) and
// starts a fresh one, committing the new list with a manifest swap before
// any record lands in the new file.
func (l *Log) rotate() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	l.segs[len(l.segs)-1].endWM = l.lastWM
	l.seq++
	name := segName(l.seq)
	f, err := l.fs.Create(join(l.dir, name))
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	l.segs = append(l.segs, segment{name: name})
	l.active = f
	l.activeSize = 0
	if err := l.writeManifest(); err != nil {
		return err
	}
	if m := l.opts.Metrics; m != nil {
		inc(m.Rotations)
	}
	return nil
}

// TruncateBelow drops every sealed segment whose records all fall at or
// below wm — the cleanup after a checkpoint made those rows durable
// elsewhere. The manifest swap commits the drop before any file is
// removed, so a crash mid-truncation leaves only ignorable orphans.
func (l *Log) TruncateBelow(wm uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	keep := l.segs[:0:0]
	var drop []string
	for i, sg := range l.segs {
		if i < len(l.segs)-1 && sg.endWM > 0 && sg.endWM <= wm {
			drop = append(drop, sg.name)
			continue
		}
		keep = append(keep, sg)
	}
	if len(drop) == 0 {
		return nil
	}
	l.segs = keep
	if err := l.writeManifest(); err != nil {
		return err
	}
	for _, name := range drop {
		_ = l.fs.Remove(join(l.dir, name))
	}
	if m := l.opts.Metrics; m != nil {
		add(m.SegsDropped, uint64(len(drop)))
	}
	return nil
}

// ResetBaseline discards every segment and starts a fresh one whose
// appends begin at watermark wm. Recovery calls it when a durable
// checkpoint is ahead of the recovered log (under SyncPolicy none or
// interval, a crash can lose the log's unsynced tail while the fsync'd
// checkpoint survives): every surviving record is already folded into the
// checkpoint, and appending past the watermark gap would read as
// corruption to the next recovery's continuity check — which would
// truncate rows acknowledged after this recovery. A wm at or below the
// log's last watermark is a no-op.
func (l *Log) ResetBaseline(wm uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: closed")
	}
	if l.broken != nil {
		return l.broken
	}
	if wm <= l.lastWM {
		return nil
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	old := make([]string, len(l.segs))
	for i, sg := range l.segs {
		old[i] = sg.name
	}
	l.seq++
	name := segName(l.seq)
	f, err := l.fs.Create(join(l.dir, name))
	if err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	l.segs = []segment{{name: name}}
	l.active = f
	l.activeSize = 0
	l.lastWM = wm
	// Same crash discipline as rotation and truncation: the manifest swap
	// commits the new list, then the superseded files become removable
	// orphans (records at or below wm are durable in the checkpoint either
	// way).
	if err := l.writeManifest(); err != nil {
		return err
	}
	for _, n := range old {
		_ = l.fs.Remove(join(l.dir, n))
	}
	if m := l.opts.Metrics; m != nil {
		add(m.SegsDropped, uint64(len(old)))
	}
	return nil
}

// LastWatermark returns the end watermark of the last record appended or
// recovered.
func (l *Log) LastWatermark() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastWM
}

// SizeBytes returns the log's total on-disk size.
func (l *Log) SizeBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, sg := range l.segs {
		if n, err := l.fs.Size(join(l.dir, sg.name)); err == nil {
			total += n
		}
	}
	return total
}

// Segments returns the number of live segments.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Close syncs (best effort under SyncNone is still a sync — closing is
// rare) and closes the active segment. The log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.broken == nil {
		err = l.active.Sync()
	}
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	return err
}
