package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"slices"
)

// Frame layout — every durable write in the subsystem (log records,
// checkpoint runs, checkpoint META) uses the same self-validating frame:
//
//	offset  size  field
//	0       4     payload length n, little-endian uint32
//	4       4     CRC32C (Castagnoli) of the payload
//	8       n     payload
//
// A frame is valid iff the full n bytes are present and their CRC32C
// matches. A short header, a short payload, or a CRC mismatch all mean
// the same thing to recovery: the log ends at the previous frame.
const frameHeader = 8

// MaxFrame bounds a frame's payload so a corrupt length field cannot ask
// the reader to allocate gigabytes: 64 MiB is ~100x the largest frame the
// stream writes (a seal record of SealRows rows). Writers that frame
// variable-size payloads (checkpoint partition runs) must chunk below it —
// ReadFrame rejects anything larger as corrupt.
const MaxFrame = 64 << 20

// castagnoli is the CRC32C polynomial table — the variant with hardware
// support on both x86 (SSE4.2) and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the frame checksum (CRC32C) of payload — exported so
// writers that build frames in place inside a larger buffer (the chunk
// and checkpoint codecs) compute the same sum ReadFrame verifies.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// AppendFrame appends the frame for payload to dst and returns it.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ReadFrame reads one frame from r. It returns the payload and the total
// bytes consumed. io.EOF with n == 0 is a clean end of input; any torn or
// invalid frame returns an error wrapping ErrWALCorrupt — callers
// truncate at the offset where the failed read started.
func ReadFrame(r *bufio.Reader) (payload []byte, n int, err error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF // clean end: no partial header
		}
		return nil, 0, fmt.Errorf("frame header: %v: %w", err, ErrWALCorrupt)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, 0, fmt.Errorf("torn frame header: %w", ErrWALCorrupt)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length == 0 || length > MaxFrame {
		return nil, 0, fmt.Errorf("frame length %d: %w", length, ErrWALCorrupt)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("torn frame payload: %w", ErrWALCorrupt)
	}
	if crc := crc32.Checksum(payload, castagnoli); crc != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, 0, fmt.Errorf("frame CRC mismatch: %w", ErrWALCorrupt)
	}
	return payload, frameHeader + int(length), nil
}

// Record is one logical log entry: the raw rows of one sealed delta,
// stamped with the stream watermark after the seal published. Replaying
// records in order reproduces the exact publication sequence, so the
// watermark doubles as the log sequence number — record k's EndWatermark
// is the total row count once records 1..k are applied.
type Record struct {
	// EndWatermark is the stream watermark after this record's rows are
	// visible: previous record's EndWatermark + len(Keys).
	EndWatermark uint64
	// Keys and Vals are the record's rows; equal length.
	Keys, Vals []uint64
}

// Rows returns the number of rows the record carries.
func (r Record) Rows() int { return len(r.Keys) }

// Record payload layout (inside a frame):
//
//	offset  size  field
//	0       1     kind (recordRows)
//	1       8     end watermark, little-endian uint64
//	9       4     row count n, little-endian uint32
//	13      8n    keys, little-endian uint64 each
//	13+8n   8n    vals, little-endian uint64 each
const (
	recordRows       = 1
	recordHeaderSize = 13
)

// encodeRecord appends r's framed encoding to dst. It builds the frame
// in place — payload first, header backfilled — so a caller reusing dst
// across appends (Log.Append does) allocates nothing on the hot path.
func encodeRecord(dst []byte, r Record) []byte {
	n := len(r.Keys)
	payloadLen := recordHeaderSize + 16*n
	start := len(dst)
	dst = slices.Grow(dst, frameHeader+payloadLen)[:start+frameHeader+payloadLen]
	payload := dst[start+frameHeader:]
	payload[0] = recordRows
	binary.LittleEndian.PutUint64(payload[1:9], r.EndWatermark)
	binary.LittleEndian.PutUint32(payload[9:13], uint32(n))
	off := recordHeaderSize
	for _, k := range r.Keys {
		binary.LittleEndian.PutUint64(payload[off:], k)
		off += 8
	}
	for _, v := range r.Vals {
		binary.LittleEndian.PutUint64(payload[off:], v)
		off += 8
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// decodeRecord parses a frame payload into a Record.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) < recordHeaderSize || payload[0] != recordRows {
		return Record{}, fmt.Errorf("record header: %w", ErrWALCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(payload[9:13]))
	if len(payload) != recordHeaderSize+16*n {
		return Record{}, fmt.Errorf("record size %d for %d rows: %w", len(payload), n, ErrWALCorrupt)
	}
	r := Record{
		EndWatermark: binary.LittleEndian.Uint64(payload[1:9]),
		Keys:         make([]uint64, n),
		Vals:         make([]uint64, n),
	}
	off := recordHeaderSize
	for i := range r.Keys {
		r.Keys[i] = binary.LittleEndian.Uint64(payload[off:])
		off += 8
	}
	for i := range r.Vals {
		r.Vals[i] = binary.LittleEndian.Uint64(payload[off:])
		off += 8
	}
	return r, nil
}
