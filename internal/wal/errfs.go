package wal

import (
	"errors"
	"sync"
)

// Op classifies the filesystem operations ErrFS can fail.
type Op int

const (
	OpCreate Op = iota
	OpOpen
	OpWrite
	OpSync
	OpRename
	OpRemove
	numOps
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	}
	return "?"
}

// ErrInjected is the error every tripped ErrFS operation returns.
var ErrInjected = errors.New("wal: injected fault")

// ErrFS is the failpoint filesystem: it wraps any FS and, once armed,
// fails the nth operation of a chosen kind — and every mutating operation
// after it. That "fail forever after the trip" semantic is the crash
// model: when a disk dies or a process is killed, nothing after the fault
// reaches storage, so the bytes visible at recovery are exactly the bytes
// written before the trip. Arming OpWrite with PartialWrites simulates a
// torn write: the tripping write persists only its first half, leaving a
// torn frame for recovery to truncate.
//
// ErrFS is safe for concurrent use (the log and the checkpointer write
// from different goroutines).
type ErrFS struct {
	inner FS

	mu            sync.Mutex
	countdown     [numOps]int // 0 = disarmed; n = trip on the nth op
	tripped       bool
	partialWrites bool
}

// NewErrFS wraps inner with no faults armed.
func NewErrFS(inner FS) *ErrFS { return &ErrFS{inner: inner} }

// FailAfter arms the fault: the nth subsequent operation of kind op (1 =
// the very next one) fails with ErrInjected, and the ErrFS stays tripped —
// all later mutating operations fail too.
func (e *ErrFS) FailAfter(op Op, n int) {
	e.mu.Lock()
	e.countdown[op] = n
	e.mu.Unlock()
}

// SetPartialWrites makes the tripping write persist the first half of its
// buffer before failing (a torn write), instead of nothing.
func (e *ErrFS) SetPartialWrites(v bool) {
	e.mu.Lock()
	e.partialWrites = v
	e.mu.Unlock()
}

// Cut trips the ErrFS immediately: every subsequent operation fails.
func (e *ErrFS) Cut() {
	e.mu.Lock()
	e.tripped = true
	e.mu.Unlock()
}

// Tripped reports whether the fault has fired.
func (e *ErrFS) Tripped() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tripped
}

// step advances op's countdown. It returns (fail, partial): fail when this
// operation must error, partial when a tripping write should persist its
// first half.
func (e *ErrFS) step(op Op) (bool, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tripped {
		return true, false
	}
	if e.countdown[op] > 0 {
		e.countdown[op]--
		if e.countdown[op] == 0 {
			e.tripped = true
			return true, e.partialWrites && op == OpWrite
		}
	}
	return false, false
}

func (e *ErrFS) MkdirAll(dir string) error { return e.inner.MkdirAll(dir) }

func (e *ErrFS) Create(name string) (File, error) {
	if fail, _ := e.step(OpCreate); fail {
		return nil, ErrInjected
	}
	f, err := e.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: e, f: f}, nil
}

func (e *ErrFS) Open(name string) (File, error) {
	if fail, _ := e.step(OpOpen); fail {
		return nil, ErrInjected
	}
	return e.inner.Open(name)
}

func (e *ErrFS) OpenAppend(name string) (File, error) {
	if fail, _ := e.step(OpOpen); fail {
		return nil, ErrInjected
	}
	f, err := e.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: e, f: f}, nil
}

func (e *ErrFS) Rename(oldname, newname string) error {
	if fail, _ := e.step(OpRename); fail {
		return ErrInjected
	}
	return e.inner.Rename(oldname, newname)
}

// SyncDir shares OpSync's countdown: a directory fsync is a sync as far
// as a dying disk is concerned.
func (e *ErrFS) SyncDir(dir string) error {
	if fail, _ := e.step(OpSync); fail {
		return ErrInjected
	}
	return e.inner.SyncDir(dir)
}

func (e *ErrFS) Remove(name string) error {
	if fail, _ := e.step(OpRemove); fail {
		return ErrInjected
	}
	return e.inner.Remove(name)
}

func (e *ErrFS) ReadDir(dir string) ([]string, error) { return e.inner.ReadDir(dir) }

func (e *ErrFS) Size(name string) (int64, error) { return e.inner.Size(name) }

// errFile intercepts the write-side File operations.
type errFile struct {
	fs *ErrFS
	f  File
}

func (f *errFile) Read(p []byte) (int, error) { return f.f.Read(p) }

func (f *errFile) Write(p []byte) (int, error) {
	fail, partial := f.fs.step(OpWrite)
	if fail {
		if partial && len(p) > 1 {
			n, _ := f.f.Write(p[:len(p)/2])
			return n, ErrInjected
		}
		return 0, ErrInjected
	}
	return f.f.Write(p)
}

func (f *errFile) Sync() error {
	if fail, _ := f.fs.step(OpSync); fail {
		return ErrInjected
	}
	return f.f.Sync()
}

func (f *errFile) Truncate(size int64) error {
	if fail, _ := f.fs.step(OpWrite); fail {
		return ErrInjected
	}
	return f.f.Truncate(size)
}

func (f *errFile) Close() error { return f.f.Close() }
