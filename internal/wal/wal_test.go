package wal

import (
	"errors"
	"testing"
)

// appendRows appends n single-row records to l, continuing from watermark
// wm, and returns the new watermark. Row i carries key=i, val=i*10 so a
// replay can verify content, not just count.
func appendRows(t *testing.T, l *Log, wm uint64, n int) uint64 {
	t.Helper()
	for i := 0; i < n; i++ {
		wm++
		rec := Record{EndWatermark: wm, Keys: []uint64{wm}, Vals: []uint64{wm * 10}}
		if err := l.Append(rec); err != nil {
			t.Fatalf("append at wm %d: %v", wm, err)
		}
	}
	return wm
}

// collectReplay returns a replay func that gathers every record's rows.
func collectReplay(keys *[]uint64) func(Record) error {
	return func(r Record) error {
		*keys = append(*keys, r.Keys...)
		return nil
	}
}

// checkPrefix asserts keys are exactly 1..n.
func checkPrefix(t *testing.T, keys []uint64, n int) {
	t.Helper()
	if len(keys) != n {
		t.Fatalf("replayed %d rows, want %d", len(keys), n)
	}
	for i, k := range keys {
		if k != uint64(i+1) {
			t.Fatalf("row %d: key %d, want %d", i, k, i+1)
		}
	}
}

func TestAppendReopenReplay(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs, SyncPolicy: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wm := appendRows(t, l, 0, 100)
	if got := l.LastWatermark(); got != wm {
		t.Fatalf("LastWatermark %d, want %d", got, wm)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var keys []uint64
	l2, err := Open("wal", Options{FS: fs}, collectReplay(&keys))
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, keys, 100)
	if got := l2.LastWatermark(); got != 100 {
		t.Fatalf("recovered watermark %d, want 100", got)
	}
	// The reopened log keeps accepting appends where it left off.
	appendRows(t, l2, 100, 10)
	l2.Close()

	keys = nil
	l3, err := Open("wal", Options{FS: fs}, collectReplay(&keys))
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, keys, 110)
	l3.Close()
}

func TestRotationAndTruncateBelow(t *testing.T) {
	fs := NewMemFS()
	// ~32 bytes per 1-row record: rotate every few records.
	l, err := Open("wal", Options{FS: fs, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, l, 0, 50)
	if n := l.Segments(); n < 3 {
		t.Fatalf("got %d segments, want rotation to have produced several", n)
	}
	segsBefore := l.Segments()
	if err := l.TruncateBelow(25); err != nil {
		t.Fatal(err)
	}
	if n := l.Segments(); n >= segsBefore {
		t.Fatalf("TruncateBelow dropped nothing: %d -> %d segments", segsBefore, n)
	}
	l.Close()

	// Replay after truncation starts past the dropped segments; SkipBelow
	// mirrors the checkpoint watermark so continuity starts clean.
	var keys []uint64
	l2, err := Open("wal", Options{FS: fs, SkipBelow: 25}, collectReplay(&keys))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(keys) == 0 || keys[len(keys)-1] != 50 {
		t.Fatalf("replay after truncation ended at %v, want tail ending in 50", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[i-1]+1 {
			t.Fatalf("replay gap: %d then %d", keys[i-1], keys[i])
		}
	}
	if got := l2.LastWatermark(); got != 50 {
		t.Fatalf("recovered watermark %d, want 50", got)
	}
}

func TestCorruptTailTruncates(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs, SyncPolicy: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, l, 0, 20)
	l.Close()

	// Flip one bit in the last record's payload: CRC fails, recovery keeps
	// the 19-record prefix.
	name := join("wal", segName(1))
	data := fs.Bytes(name)
	data[len(data)-1] ^= 0x40
	fs.SetBytes(name, data)

	var keys []uint64
	l2, err := Open("wal", Options{FS: fs}, collectReplay(&keys))
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, keys, 19)
	// The tail was repaired: appends continue from the recovered watermark.
	appendRows(t, l2, 19, 5)
	l2.Close()

	keys = nil
	l3, err := Open("wal", Options{FS: fs}, collectReplay(&keys))
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, keys, 24)
	l3.Close()
}

func TestTornTailTruncates(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs, SyncPolicy: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, l, 0, 10)
	l.Close()

	// Cut mid-frame: a torn final write.
	name := join("wal", segName(1))
	data := fs.Bytes(name)
	fs.SetBytes(name, data[:len(data)-7])

	var keys []uint64
	l2, err := Open("wal", Options{FS: fs}, collectReplay(&keys))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkPrefix(t, keys, 9)
}

func TestCorruptMiddleDropsLaterSegments(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs, SegmentBytes: 128}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, l, 0, 40)
	if l.Segments() < 3 {
		t.Fatalf("want >=3 segments, got %d", l.Segments())
	}
	l.Close()

	// Corrupt the first record of the first segment: the whole log after
	// that point is unreachable — prefix semantics, not per-segment repair.
	name := join("wal", segName(1))
	data := fs.Bytes(name)
	data[frameHeader+1] ^= 0xff
	fs.SetBytes(name, data)

	var keys []uint64
	l2, err := Open("wal", Options{FS: fs}, collectReplay(&keys))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(keys) != 0 {
		t.Fatalf("replayed %d rows past a corrupt first record, want 0", len(keys))
	}
	if l2.Segments() != 1 {
		t.Fatalf("later segments kept after mid-log corruption: %d live", l2.Segments())
	}
}

func TestWatermarkGapTruncates(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs, SyncPolicy: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, l, 0, 5)
	// A record whose watermark skips ahead: individually valid frame, but
	// recovery must reject it for breaking continuity.
	if err := l.Append(Record{EndWatermark: 99, Keys: []uint64{99}, Vals: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	var keys []uint64
	l2, err := Open("wal", Options{FS: fs}, collectReplay(&keys))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkPrefix(t, keys, 5)
	if got := l2.LastWatermark(); got != 5 {
		t.Fatalf("recovered watermark %d, want 5", got)
	}
}

func TestInjectedWriteFailureIsSticky(t *testing.T) {
	mem := NewMemFS()
	efs := NewErrFS(mem)
	l, err := Open("wal", Options{FS: efs, SyncPolicy: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the 6th record write (manifest writes go through Create'd
	// handles too, so count actual record appends by arming late).
	appendRows(t, l, 0, 5)
	efs.FailAfter(OpWrite, 1)
	err = l.Append(Record{EndWatermark: 6, Keys: []uint64{6}, Vals: []uint64{60}})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("append after arming: %v, want ErrInjected", err)
	}
	// Sticky: the log refuses further appends even though the fault fired.
	if err := l.Append(Record{EndWatermark: 7, Keys: []uint64{7}, Vals: []uint64{70}}); err == nil {
		t.Fatal("append after a failed write succeeded; torn tail would go undetected")
	}
	l.Close()

	// Reopen on the pristine inner FS: the 5 durable records survive.
	var keys []uint64
	l2, err := Open("wal", Options{FS: mem}, collectReplay(&keys))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkPrefix(t, keys, 5)
}

func TestInjectedPartialWriteLeavesTornTail(t *testing.T) {
	mem := NewMemFS()
	efs := NewErrFS(mem)
	l, err := Open("wal", Options{FS: efs, SyncPolicy: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, l, 0, 8)
	efs.SetPartialWrites(true)
	efs.FailAfter(OpWrite, 1)
	if err := l.Append(Record{EndWatermark: 9, Keys: []uint64{9}, Vals: []uint64{90}}); err == nil {
		t.Fatal("tripping append succeeded")
	}
	l.Close()

	// Half a frame landed; recovery truncates it and keeps the 8-prefix.
	var keys []uint64
	l2, err := Open("wal", Options{FS: mem}, collectReplay(&keys))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkPrefix(t, keys, 8)
}

func TestSyncPolicyParse(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"none", SyncNone, true},
		{"interval", SyncInterval, true},
		{"", SyncInterval, true},
		{"always", SyncAlways, true},
		{"sometimes", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, p := range []SyncPolicy{SyncNone, SyncInterval, SyncAlways} {
		back, err := ParseSyncPolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round trip %v: got %v, %v", p, back, err)
		}
	}
}

func TestMultiRowRecords(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs, SyncPolicy: SyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Records of varying width, as real seals produce.
	wm := uint64(0)
	widths := []int{1, 7, 1000, 3, 64}
	for _, w := range widths {
		keys := make([]uint64, w)
		vals := make([]uint64, w)
		for i := range keys {
			keys[i] = wm + uint64(i) + 1
			vals[i] = (wm + uint64(i) + 1) * 10
		}
		wm += uint64(w)
		if err := l.Append(Record{EndWatermark: wm, Keys: keys, Vals: vals}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	var keys, vals []uint64
	l2, err := Open("wal", Options{FS: fs}, func(r Record) error {
		if len(r.Keys) != len(r.Vals) {
			t.Fatalf("record keys/vals mismatch: %d vs %d", len(r.Keys), len(r.Vals))
		}
		keys = append(keys, r.Keys...)
		vals = append(vals, r.Vals...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	checkPrefix(t, keys, int(wm))
	for i, v := range vals {
		if v != keys[i]*10 {
			t.Fatalf("row %d: val %d, want %d", i, v, keys[i]*10)
		}
	}
}

func TestResetBaseline(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs, SyncPolicy: SyncAlways, SegmentBytes: 256}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendRows(t, l, 0, 30) // tiny segments: several rotations
	if n := l.Segments(); n < 2 {
		t.Fatalf("expected multiple segments, got %d", n)
	}
	// At or below the current watermark: a no-op.
	if err := l.ResetBaseline(30); err != nil {
		t.Fatal(err)
	}
	if got := l.LastWatermark(); got != 30 {
		t.Fatalf("no-op reset moved watermark to %d", got)
	}
	// The checkpoint-ahead case: every surviving record is covered by the
	// checkpoint, so the log restarts empty at the checkpoint watermark.
	if err := l.ResetBaseline(50); err != nil {
		t.Fatal(err)
	}
	if got := l.LastWatermark(); got != 50 {
		t.Fatalf("reset watermark %d, want 50", got)
	}
	if n := l.Segments(); n != 1 {
		t.Fatalf("reset kept %d segments, want 1", n)
	}
	appendRows(t, l, 50, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery accepts the fresh baseline: no watermark-gap truncation.
	var keys []uint64
	l2, err := Open("wal", Options{FS: fs, SkipBelow: 50}, collectReplay(&keys))
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.LastWatermark(); got != 55 {
		t.Fatalf("recovered watermark %d, want 55", got)
	}
	if len(keys) != 5 || keys[0] != 51 || keys[4] != 55 {
		t.Fatalf("replayed rows %v, want 51..55", keys)
	}
	l2.Close()
}
