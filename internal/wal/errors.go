package wal

import (
	"errors"
	"os"
)

// ErrWALCorrupt reports on-disk state that fails validation: a bad CRC, an
// impossible frame length, a record that breaks watermark continuity, or
// checkpoint files that do not decode. Recovery treats a corrupt *tail* as
// a clean end of log (truncate and continue with the valid prefix); it is
// only surfaced as an error when the corruption makes the recovered state
// unusable (a corrupt checkpoint, a manifest that cannot be parsed).
var ErrWALCorrupt = errors.New("wal: corrupt record")

// errNotExist mirrors os.ErrNotExist so MemFS errors branch identically.
var errNotExist = os.ErrNotExist
