// Package wal is the durability layer's write-ahead log: a segmented
// append-only log of CRC32C-framed records, the on-disk half of the
// streaming subsystem's crash story (internal/stream). The format follows
// the spill discipline the aggregation literature converges on — partial
// aggregates and their source rows persist as sequential, partition-at-a-
// time runs, so both the write path (group-committed seal records) and
// the recovery path (one forward scan) are purely sequential I/O.
//
// Layout of a log directory:
//
//	dir/
//	  MANIFEST          current segment list, swapped atomically
//	  seg-00000001.wal  framed records, oldest first
//	  seg-00000002.wal  ...
//
// Records are framed [length | CRC32C | payload]; a torn or corrupt frame
// ends recovery at the last intact record (the tail is truncated), so a
// crash mid-write always yields the longest valid prefix — never a panic,
// never a wrong record.
//
// All file access goes through the FS interface so tests inject faults
// (ErrFS) or run against memory (MemFS); production uses OSFS.
package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem the log and checkpointer write through. It exists
// for failpoint-style fault injection: ErrFS wraps any FS and makes the
// nth write/sync/rename fail, which is how the crash-recovery tests
// simulate dying disks and kill -9 at arbitrary points. OSFS is the real
// thing; MemFS backs tests and fuzzing.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenAppend opens an existing name for writing at the end; Truncate
	// may first cut a torn tail.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname — the commit point
	// of every manifest and checkpoint swap.
	Rename(oldname, newname string) error
	// SyncDir fsyncs dir itself. A rename or create only updates the
	// directory's entry list in memory; the entry survives power loss only
	// once the directory is synced, so every commit path (manifest swap,
	// checkpoint CURRENT swap) follows its rename with a SyncDir.
	SyncDir(dir string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDir lists the names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Size reports name's length in bytes.
	Size(name string) (int64, error)
}

// File is one open log or checkpoint file.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes written data to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to size bytes (tail repair during recovery).
	Truncate(size int64) error
	Close() error
}

// OSFS is the production FS: the operating system's filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OSFS) Open(name string) (File, error) { return os.Open(name) }

func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_APPEND, 0o644)
}

func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Size(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// join builds FS paths; every FS implementation uses the host separator.
func join(elem ...string) string { return filepath.Join(elem...) }
