package art

import (
	"testing"
	"testing/quick"

	"memagg/internal/dataset"
)

func TestDeleteBasic(t *testing.T) {
	for name, mk := range trees() {
		tr := mk()
		for k := uint64(0); k < 1000; k++ {
			*tr.Upsert(k) = k
		}
		for k := uint64(0); k < 1000; k += 2 {
			if !tr.Delete(k) {
				t.Fatalf("%s: Delete(%d) reported absent", name, k)
			}
		}
		if tr.Delete(5000) {
			t.Fatalf("%s: deleted absent key", name)
		}
		if tr.Len() != 500 {
			t.Fatalf("%s: Len=%d want 500", name, tr.Len())
		}
		for k := uint64(0); k < 1000; k++ {
			want := k%2 == 1
			if got := tr.Get(k) != nil; got != want {
				t.Fatalf("%s: Get(%d)=%v want %v", name, k, got, want)
			}
		}
	}
}

func TestDeleteAllLeavesEmptyTree(t *testing.T) {
	tr := New[uint64]()
	keys := dataset.Random(20000, 1, 1<<45, 9)
	uniq := map[uint64]bool{}
	for _, k := range keys {
		tr.Upsert(k)
		uniq[k] = true
	}
	for k := range uniq {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) failed", k)
		}
	}
	if tr.Len() != 0 || tr.root != nil {
		t.Fatalf("tree not empty: len=%d root=%v", tr.Len(), tr.root)
	}
}

func TestDeleteShrinksNodeForms(t *testing.T) {
	tr := New[uint64]()
	for k := uint64(0); k < 256; k++ {
		tr.Upsert(k) // builds a Node256 at the last level
	}
	for k := uint64(2); k < 256; k++ {
		tr.Delete(k) // down to 2 children: must shrink through 48/16 to 4
	}
	if _, ok := tr.root.(*node4[uint64]); !ok {
		t.Fatalf("root is %T, want *node4 after shrink", tr.root)
	}
	if tr.Get(0) == nil || tr.Get(1) == nil {
		t.Fatal("survivors lost during shrink")
	}
	tr.Delete(1)
	if _, ok := tr.root.(*leaf[uint64]); !ok {
		t.Fatalf("root is %T, want collapsed *leaf", tr.root)
	}
}

func TestDeleteCollapseMergesPrefix(t *testing.T) {
	tr := New[uint64]()
	// Three keys sharing 6 leading zero bytes; removing one of the two
	// keys under the deeper split must merge prefixes and keep the other
	// reachable.
	tr.Upsert(0x0101)
	tr.Upsert(0x0102)
	tr.Upsert(0x0201)
	if !tr.Delete(0x0102) {
		t.Fatal("delete failed")
	}
	if tr.Get(0x0101) == nil || tr.Get(0x0201) == nil {
		t.Fatal("prefix merge lost surviving keys")
	}
	// Iteration must remain sorted and complete.
	var got []uint64
	tr.Iterate(func(k uint64, _ *uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 2 || got[0] != 0x0101 || got[1] != 0x0201 {
		t.Fatalf("iteration after collapse = %v", got)
	}
}

func TestQuickDeleteMatchesModel(t *testing.T) {
	for name, mk := range trees() {
		mk := mk
		f := func(ops []uint16) bool {
			tr := mk()
			model := map[uint64]uint64{}
			for _, op := range ops {
				k := uint64(op % 200)
				if (op/200)%3 == 0 {
					delete(model, k)
					tr.Delete(k)
				} else {
					*tr.Upsert(k)++
					model[k]++
				}
			}
			if tr.Len() != len(model) {
				return false
			}
			ok := true
			tr.Iterate(func(k uint64, v *uint64) bool {
				if model[k] != *v {
					ok = false
				}
				return ok
			})
			return ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	tr := New[uint64]()
	keys := dataset.Spec{Kind: dataset.Zipf, N: 20000, Cardinality: 2000, Seed: 3}.Keys()
	for _, k := range keys {
		tr.Upsert(k)
	}
	before := tr.Len()
	for _, k := range keys[:5000] {
		tr.Delete(k)
	}
	for _, k := range keys {
		*tr.Upsert(k) = k
	}
	if tr.Len() != before {
		t.Fatalf("Len=%d want %d after churn", tr.Len(), before)
	}
	for _, k := range keys {
		if v := tr.Get(k); v == nil || *v != k {
			t.Fatalf("key %d wrong after churn", k)
		}
	}
}
