package art

// Delete removes key from the tree, returning whether it was present.
// Node layouts shrink on the reverse of the growth schedule (Node256 →
// Node48 → Node16 → Node4), and a Node4 left with a single child collapses
// into that child, folding its radix byte into the child's compressed
// prefix — the inverse of the insert path's prefix split. In the
// no-path-compression configuration single-child chains are legal, so only
// the leaf-collapse applies.
func (t *Tree[V]) Delete(key uint64) bool {
	switch n := t.root.(type) {
	case nil:
		return false
	case *leaf[V]:
		if n.key != key {
			return false
		}
		t.root = nil
		t.size--
		return true
	}
	if !t.deleteRec(&t.root, key, 0) {
		return false
	}
	t.size--
	return true
}

func (t *Tree[V]) deleteRec(slot *any, key uint64, depth int) bool {
	h := t.hdr(*slot)
	for i := 0; i < h.prefixLen; i++ {
		if h.prefix[i] != keyByte(key, depth+i) {
			return false
		}
	}
	depth += h.prefixLen
	b := keyByte(key, depth)
	childSlot := t.findChild(*slot, b)
	if childSlot == nil {
		return false
	}
	if lf, ok := (*childSlot).(*leaf[V]); ok {
		if lf.key != key {
			return false
		}
		t.removeChild(slot, b)
		return true
	}
	if !t.deleteRec(childSlot, key, depth+1) {
		return false
	}
	// The child may itself have collapsed to a single entry; if it became
	// a one-child Node4 it has already folded itself (removeChild handles
	// that inside the child's own frame via the slot pointer).
	return true
}

// removeChild deletes the entry for byte b from the inner node at slot,
// shrinking or collapsing the node as needed.
func (t *Tree[V]) removeChild(slot *any, b byte) {
	switch n := (*slot).(type) {
	case *node4[V]:
		i := 0
		for i < n.numChildren && n.keys[i] != b {
			i++
		}
		copy(n.keys[i:n.numChildren-1], n.keys[i+1:n.numChildren])
		copy(n.children[i:n.numChildren-1], n.children[i+1:n.numChildren])
		n.numChildren--
		n.children[n.numChildren] = nil
		if n.numChildren == 1 {
			t.collapseNode4(slot, n)
		}
	case *node16[V]:
		i := 0
		for i < n.numChildren && n.keys[i] != b {
			i++
		}
		copy(n.keys[i:n.numChildren-1], n.keys[i+1:n.numChildren])
		copy(n.children[i:n.numChildren-1], n.children[i+1:n.numChildren])
		n.numChildren--
		n.children[n.numChildren] = nil
		if n.numChildren <= 3 {
			s := &node4[V]{header: n.header}
			copy(s.keys[:], n.keys[:n.numChildren])
			copy(s.children[:], n.children[:n.numChildren])
			*slot = s
		}
	case *node48[V]:
		idx := n.index[b] // caller guarantees presence
		n.index[b] = 0
		last := uint8(n.numChildren)
		if idx != last {
			// Keep the child array packed: move the last child into the
			// freed slot and rewire its index entry.
			for bb := 0; bb < 256; bb++ {
				if n.index[bb] == last {
					n.index[bb] = idx
					break
				}
			}
			n.children[idx-1] = n.children[last-1]
		}
		n.children[last-1] = nil
		n.numChildren--
		if n.numChildren <= 12 {
			s := &node16[V]{header: n.header}
			j := 0
			for bb := 0; bb < 256; bb++ {
				if ix := n.index[bb]; ix != 0 {
					s.keys[j] = byte(bb)
					s.children[j] = n.children[ix-1]
					j++
				}
			}
			*slot = s
		}
	case *node256[V]:
		n.children[b] = nil
		n.numChildren--
		if n.numChildren <= 36 {
			s := &node48[V]{header: n.header}
			j := 0
			for bb := 0; bb < 256; bb++ {
				if n.children[bb] != nil {
					s.children[j] = n.children[bb]
					s.index[bb] = uint8(j + 1)
					j++
				}
			}
			*slot = s
		}
	}
}

// collapseNode4 replaces a one-child Node4 with its child. A leaf child
// substitutes directly (it stores the full key); an inner child absorbs
// the node's prefix plus the linking byte into its own prefix when path
// compression is on.
func (t *Tree[V]) collapseNode4(slot *any, n *node4[V]) {
	child := n.children[0]
	if _, isLeaf := child.(*leaf[V]); isLeaf {
		*slot = child
		return
	}
	if !t.pathComp {
		return // chains are the representation; leave the node in place
	}
	ch := t.hdr(child)
	var merged [keyLen]byte
	m := copy(merged[:], n.prefix[:n.prefixLen])
	merged[m] = n.keys[0]
	m++
	m += copy(merged[m:], ch.prefix[:ch.prefixLen])
	ch.prefix = merged
	ch.prefixLen = m
	*slot = child
}
