// Package art implements the Adaptive Radix Tree of Leis, Kemper and
// Neumann (ICDE 2013) — the paper's ART.
//
// Keys are uint64, radix-decomposed into 8 big-endian bytes, so the tree is
// at most 8 levels deep regardless of how many keys it holds. Inner nodes
// adapt among four layouts as their fanout grows (Node4 → Node16 → Node48 →
// Node256), and path compression collapses single-child chains into a
// per-node prefix, which keeps memory per key low at high cardinality —
// and, as the paper's Figure 6 observes, makes ART's cache behaviour
// degrade when unordered high-cardinality input creates many small nodes.
//
// The original uses SIMD to search Node16; Go has no stable intrinsics, so
// Node16 uses a branch-free linear scan (DESIGN.md substitution 3).
//
// Iteration yields keys in ascending order — the property that lets a radix
// tree answer ordered and range queries that hash tables cannot (Q6/Q7).
package art

// keyLen is the fixed key length in bytes (uint64, big-endian).
const keyLen = 8

// keyByte extracts byte d (0 = most significant) of key k.
func keyByte(k uint64, d int) byte {
	return byte(k >> (8 * (keyLen - 1 - d)))
}

// header carries the fields shared by all inner node layouts.
type header struct {
	numChildren int
	prefixLen   int
	prefix      [keyLen]byte // path-compressed bytes preceding this node
}

type leaf[V any] struct {
	key uint64
	val V
}

type node4[V any] struct {
	header
	keys     [4]byte // sorted ascending for in-order iteration
	children [4]any
}

type node16[V any] struct {
	header
	keys     [16]byte // sorted ascending
	children [16]any
}

type node48[V any] struct {
	header
	index    [256]uint8 // 0 = absent, else child slot + 1
	children [48]any
}

type node256[V any] struct {
	header
	children [256]any
}

// Tree is an adaptive radix tree map from uint64 to V.
type Tree[V any] struct {
	root     any
	size     int
	pathComp bool
}

// New returns an empty tree with path compression enabled (the standard
// ART configuration).
func New[V any]() *Tree[V] { return &Tree[V]{pathComp: true} }

// NewNoPathCompression returns a tree that materializes every radix level
// as a chain of Node4s instead of storing compressed prefixes. Only used by
// the path-compression ablation benchmark.
func NewNoPathCompression[V any]() *Tree[V] { return &Tree[V]{} }

// Len returns the number of stored keys.
func (t *Tree[V]) Len() int { return t.size }

func (t *Tree[V]) hdr(n any) *header {
	switch n := n.(type) {
	case *node4[V]:
		return &n.header
	case *node16[V]:
		return &n.header
	case *node48[V]:
		return &n.header
	case *node256[V]:
		return &n.header
	}
	return nil
}

// findChild returns a pointer to the child slot for byte b, or nil.
func (t *Tree[V]) findChild(n any, b byte) *any {
	switch n := n.(type) {
	case *node4[V]:
		for i := 0; i < n.numChildren; i++ {
			if n.keys[i] == b {
				return &n.children[i]
			}
		}
	case *node16[V]:
		// Branch-free-ish scan standing in for the original's SIMD compare.
		for i := 0; i < n.numChildren; i++ {
			if n.keys[i] == b {
				return &n.children[i]
			}
		}
	case *node48[V]:
		if idx := n.index[b]; idx != 0 {
			return &n.children[idx-1]
		}
	case *node256[V]:
		if n.children[b] != nil {
			return &n.children[b]
		}
	}
	return nil
}

// addChild inserts child under byte b, growing the node layout if full.
// It returns the node that should occupy the parent slot afterwards.
func (t *Tree[V]) addChild(n any, b byte, child any) any {
	switch n := n.(type) {
	case *node4[V]:
		if n.numChildren < 4 {
			i := 0
			for i < n.numChildren && n.keys[i] < b {
				i++
			}
			copy(n.keys[i+1:n.numChildren+1], n.keys[i:n.numChildren])
			copy(n.children[i+1:n.numChildren+1], n.children[i:n.numChildren])
			n.keys[i] = b
			n.children[i] = child
			n.numChildren++
			return n
		}
		g := &node16[V]{header: n.header}
		copy(g.keys[:], n.keys[:])
		copy(g.children[:], n.children[:])
		return t.addChild(g, b, child)
	case *node16[V]:
		if n.numChildren < 16 {
			i := 0
			for i < n.numChildren && n.keys[i] < b {
				i++
			}
			copy(n.keys[i+1:n.numChildren+1], n.keys[i:n.numChildren])
			copy(n.children[i+1:n.numChildren+1], n.children[i:n.numChildren])
			n.keys[i] = b
			n.children[i] = child
			n.numChildren++
			return n
		}
		g := &node48[V]{header: n.header}
		for i := 0; i < 16; i++ {
			g.index[n.keys[i]] = uint8(i + 1)
			g.children[i] = n.children[i]
		}
		return t.addChild(g, b, child)
	case *node48[V]:
		if n.numChildren < 48 {
			n.children[n.numChildren] = child
			n.index[b] = uint8(n.numChildren + 1)
			n.numChildren++
			return n
		}
		g := &node256[V]{header: n.header}
		for b2 := 0; b2 < 256; b2++ {
			if idx := n.index[b2]; idx != 0 {
				g.children[b2] = n.children[idx-1]
			}
		}
		g.numChildren = 48
		return t.addChild(g, b, child)
	case *node256[V]:
		n.children[b] = child
		n.numChildren++
		return n
	}
	panic("art: addChild on non-inner node")
}

// newInner returns a Node4 covering prefix bytes kb[from:to] for key path
// kb. With path compression the prefix is stored in the node; without it, a
// chain of empty Node4s is materialized and the innermost node returned
// along with the outermost (the one to link into the parent).
func (t *Tree[V]) newInner(kb [keyLen]byte, from, to int) (outer, inner *node4[V]) {
	n := &node4[V]{}
	if t.pathComp {
		n.prefixLen = to - from
		copy(n.prefix[:], kb[from:to])
		return n, n
	}
	outer = n
	cur := n
	for d := from; d < to; d++ {
		next := &node4[V]{}
		cur.keys[0] = kb[d]
		cur.children[0] = next
		cur.numChildren = 1
		cur = next
	}
	return outer, cur
}

// Upsert returns a pointer to the value for key, inserting a zero value if
// absent. The pointer remains valid for the life of the tree (leaves never
// move; node growth copies child pointers only).
func (t *Tree[V]) Upsert(key uint64) *V {
	var kb [keyLen]byte
	for i := 0; i < keyLen; i++ {
		kb[i] = keyByte(key, i)
	}
	if t.root == nil {
		lf := &leaf[V]{key: key}
		t.root = lf
		t.size++
		return &lf.val
	}
	slot := &t.root
	depth := 0
	for {
		switch n := (*slot).(type) {
		case *leaf[V]:
			if n.key == key {
				return &n.val
			}
			// Lazy expansion: split the leaf at the first differing byte.
			var ob [keyLen]byte
			for i := 0; i < keyLen; i++ {
				ob[i] = keyByte(n.key, i)
			}
			d := depth
			for ob[d] == kb[d] {
				d++ // keys differ, so d < keyLen is guaranteed
			}
			outer, innerN := t.newInner(kb, depth, d)
			lf := &leaf[V]{key: key}
			t.addChild(innerN, ob[d], n)
			t.addChild(innerN, kb[d], lf)
			*slot = outer
			t.size++
			return &lf.val
		default:
			h := t.hdr(*slot)
			// Compare the compressed prefix.
			mismatch := -1
			for i := 0; i < h.prefixLen; i++ {
				if h.prefix[i] != kb[depth+i] {
					mismatch = i
					break
				}
			}
			if mismatch >= 0 {
				// Split the prefix at the mismatch point.
				outer, innerN := t.newInner(kb, depth, depth+mismatch)
				old := *slot
				oldByte := h.prefix[mismatch]
				// Trim the old node's prefix past the split byte.
				rem := h.prefixLen - mismatch - 1
				copy(h.prefix[:], h.prefix[mismatch+1:mismatch+1+rem])
				h.prefixLen = rem
				lf := &leaf[V]{key: key}
				t.addChild(innerN, oldByte, old)
				t.addChild(innerN, kb[depth+mismatch], lf)
				*slot = outer
				t.size++
				return &lf.val
			}
			depth += h.prefixLen
			b := kb[depth]
			child := t.findChild(*slot, b)
			if child == nil {
				lf := &leaf[V]{key: key}
				*slot = t.addChild(*slot, b, lf)
				t.size++
				return &lf.val
			}
			slot = child
			depth++
		}
	}
}

// Get returns a pointer to the value stored for key, or nil.
func (t *Tree[V]) Get(key uint64) *V {
	n := t.root
	depth := 0
	for n != nil {
		if lf, ok := n.(*leaf[V]); ok {
			if lf.key == key {
				return &lf.val
			}
			return nil
		}
		h := t.hdr(n)
		for i := 0; i < h.prefixLen; i++ {
			if h.prefix[i] != keyByte(key, depth+i) {
				return nil
			}
		}
		depth += h.prefixLen
		child := t.findChild(n, keyByte(key, depth))
		if child == nil {
			return nil
		}
		n = *child
		depth++
	}
	return nil
}

// Iterate calls fn for every key/value pair in ascending key order,
// stopping early if fn returns false.
func (t *Tree[V]) Iterate(fn func(key uint64, val *V) bool) {
	t.iter(t.root, fn)
}

func (t *Tree[V]) iter(n any, fn func(uint64, *V) bool) bool {
	switch n := n.(type) {
	case nil:
		return true
	case *leaf[V]:
		return fn(n.key, &n.val)
	case *node4[V]:
		for i := 0; i < n.numChildren; i++ {
			if !t.iter(n.children[i], fn) {
				return false
			}
		}
	case *node16[V]:
		for i := 0; i < n.numChildren; i++ {
			if !t.iter(n.children[i], fn) {
				return false
			}
		}
	case *node48[V]:
		for b := 0; b < 256; b++ {
			if idx := n.index[b]; idx != 0 {
				if !t.iter(n.children[idx-1], fn) {
					return false
				}
			}
		}
	case *node256[V]:
		for b := 0; b < 256; b++ {
			if n.children[b] != nil {
				if !t.iter(n.children[b], fn) {
					return false
				}
			}
		}
	}
	return true
}

// Range calls fn for every pair with lo <= key <= hi in ascending order,
// stopping early if fn returns false. Subtrees whose reachable key interval
// cannot intersect [lo, hi] are pruned using the radix structure.
func (t *Tree[V]) Range(lo, hi uint64, fn func(key uint64, val *V) bool) {
	t.rng(t.root, 0, 0, lo, hi, fn)
}

// rng walks node n whose path so far fixes the top `depth` bytes of every
// reachable key to the corresponding bytes of acc.
func (t *Tree[V]) rng(n any, acc uint64, depth int, lo, hi uint64, fn func(uint64, *V) bool) bool {
	switch n := n.(type) {
	case nil:
		return true
	case *leaf[V]:
		if n.key < lo {
			return true
		}
		if n.key > hi {
			return false // keys arrive in order; past hi means done
		}
		return fn(n.key, &n.val)
	}
	h := t.hdr(n)
	for i := 0; i < h.prefixLen; i++ {
		acc |= uint64(h.prefix[i]) << (8 * (keyLen - 1 - depth - i))
	}
	depth += h.prefixLen
	if !subtreeIntersects(acc, depth, lo, hi) {
		// Entirely below lo → skip but continue siblings; entirely above
		// hi → stop the whole walk.
		return subtreeMax(acc, depth) < lo
	}
	desc := func(b byte, child any) bool {
		childAcc := acc | uint64(b)<<(8*(keyLen-1-depth))
		if !subtreeIntersects(childAcc, depth+1, lo, hi) {
			return subtreeMax(childAcc, depth+1) < lo
		}
		return t.rng(child, childAcc, depth+1, lo, hi, fn)
	}
	switch n := n.(type) {
	case *node4[V]:
		for i := 0; i < n.numChildren; i++ {
			if !desc(n.keys[i], n.children[i]) {
				return false
			}
		}
	case *node16[V]:
		for i := 0; i < n.numChildren; i++ {
			if !desc(n.keys[i], n.children[i]) {
				return false
			}
		}
	case *node48[V]:
		for b := 0; b < 256; b++ {
			if idx := n.index[b]; idx != 0 {
				if !desc(byte(b), n.children[idx-1]) {
					return false
				}
			}
		}
	case *node256[V]:
		for b := 0; b < 256; b++ {
			if n.children[b] != nil {
				if !desc(byte(b), n.children[b]) {
					return false
				}
			}
		}
	}
	return true
}

// subtreeMin/Max give the smallest and largest key reachable under a path
// that fixes the top `depth` bytes of acc.
func subtreeMin(acc uint64, depth int) uint64 {
	return acc // remaining bytes zero
}

func subtreeMax(acc uint64, depth int) uint64 {
	if depth >= keyLen {
		return acc
	}
	return acc | (uint64(1)<<(8*(keyLen-depth)) - 1)
}

func subtreeIntersects(acc uint64, depth int, lo, hi uint64) bool {
	return subtreeMax(acc, depth) >= lo && subtreeMin(acc, depth) <= hi
}
