package art

import (
	"sort"
	"testing"
	"testing/quick"

	"memagg/internal/dataset"
)

func trees() map[string]func() *Tree[uint64] {
	return map[string]func() *Tree[uint64]{
		"pathComp":   New[uint64],
		"noPathComp": NewNoPathCompression[uint64],
	}
}

func TestUpsertGetBasic(t *testing.T) {
	for name, mk := range trees() {
		tr := mk()
		for k := uint64(0); k < 10000; k++ {
			*tr.Upsert(k) = k + 1
		}
		if tr.Len() != 10000 {
			t.Errorf("%s: Len=%d", name, tr.Len())
		}
		for k := uint64(0); k < 10000; k++ {
			v := tr.Get(k)
			if v == nil || *v != k+1 {
				t.Fatalf("%s: Get(%d) wrong", name, k)
			}
		}
		if tr.Get(99999999) != nil {
			t.Errorf("%s: found absent key", name)
		}
	}
}

func TestSparseKeysForceAllNodeTypes(t *testing.T) {
	// Keys spread over the full 64-bit space create deep prefixes; dense
	// low bytes grow nodes through 4→16→48→256.
	tr := New[uint64]()
	var keys []uint64
	rng := dataset.NewRNG(3)
	for i := 0; i < 300; i++ {
		base := rng.Next() &^ 0xffff // random high bits
		for b := uint64(0); b < 300; b += 7 {
			keys = append(keys, base|b)
		}
	}
	for i, k := range keys {
		*tr.Upsert(k) = uint64(i)
	}
	for i, k := range keys {
		v := tr.Get(k)
		// Later duplicates overwrite earlier; find last index for k.
		if v == nil {
			t.Fatalf("key %d missing", k)
		}
		_ = i
	}
	// Count node types to prove adaptivity actually engaged.
	var n4, n16, n48, n256 int
	var walk func(n any)
	walk = func(n any) {
		switch n := n.(type) {
		case *node4[uint64]:
			n4++
			for i := 0; i < n.numChildren; i++ {
				walk(n.children[i])
			}
		case *node16[uint64]:
			n16++
			for i := 0; i < n.numChildren; i++ {
				walk(n.children[i])
			}
		case *node48[uint64]:
			n48++
			for b := 0; b < 256; b++ {
				if idx := n.index[b]; idx != 0 {
					walk(n.children[idx-1])
				}
			}
		case *node256[uint64]:
			n256++
			for b := 0; b < 256; b++ {
				if n.children[b] != nil {
					walk(n.children[b])
				}
			}
		}
	}
	walk(tr.root)
	if n4 == 0 || n16 == 0 || n48 == 0 {
		t.Fatalf("node mix n4=%d n16=%d n48=%d n256=%d; adaptivity not exercised",
			n4, n16, n48, n256)
	}
}

func TestNode256Reached(t *testing.T) {
	tr := New[uint64]()
	for k := uint64(0); k < 256; k++ {
		tr.Upsert(k) // all under one parent at the last byte
	}
	found256 := false
	var walk func(n any)
	walk = func(n any) {
		switch n := n.(type) {
		case *node4[uint64]:
			for i := 0; i < n.numChildren; i++ {
				walk(n.children[i])
			}
		case *node16[uint64]:
			for i := 0; i < n.numChildren; i++ {
				walk(n.children[i])
			}
		case *node48[uint64]:
			for b := 0; b < 256; b++ {
				if idx := n.index[b]; idx != 0 {
					walk(n.children[idx-1])
				}
			}
		case *node256[uint64]:
			found256 = true
		}
	}
	walk(tr.root)
	if !found256 {
		t.Fatal("256 dense keys did not produce a Node256")
	}
}

func TestIterateSortedAllDistributions(t *testing.T) {
	for name, mk := range trees() {
		for _, kind := range dataset.Kinds {
			tr := mk()
			spec := dataset.Spec{Kind: kind, N: 20000, Cardinality: 1500, Seed: 7}
			keys := spec.Keys()
			uniq := map[uint64]bool{}
			for _, k := range keys {
				*tr.Upsert(k)++
				uniq[k] = true
			}
			var got []uint64
			tr.Iterate(func(k uint64, _ *uint64) bool {
				got = append(got, k)
				return true
			})
			if len(got) != len(uniq) {
				t.Fatalf("%s/%v: iterated %d want %d", name, kind, len(got), len(uniq))
			}
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("%s/%v: iteration not sorted", name, kind)
			}
		}
	}
}

func TestIterateEarlyStop(t *testing.T) {
	tr := New[uint64]()
	for k := uint64(1); k <= 1000; k++ {
		tr.Upsert(k)
	}
	n := 0
	tr.Iterate(func(uint64, *uint64) bool { n++; return n < 4 })
	if n != 4 {
		t.Fatalf("visited %d", n)
	}
}

func TestUpsertPointerStability(t *testing.T) {
	// ART leaves never move, so Upsert pointers stay valid across inserts —
	// unlike the open-addressing tables.
	tr := New[uint64]()
	p := tr.Upsert(42)
	*p = 7
	for k := uint64(1000); k < 5000; k++ {
		tr.Upsert(k)
	}
	if *p != 7 || *tr.Get(42) != 7 {
		t.Fatal("leaf value moved")
	}
	*p = 9
	if *tr.Get(42) != 9 {
		t.Fatal("stale pointer")
	}
}

func TestRange(t *testing.T) {
	for name, mk := range trees() {
		tr := mk()
		for k := uint64(0); k < 100000; k += 5 {
			*tr.Upsert(k) = k
		}
		var got []uint64
		tr.Range(1001, 2004, func(k uint64, v *uint64) bool {
			if *v != k {
				t.Fatalf("%s: value mismatch", name)
			}
			got = append(got, k)
			return true
		})
		var want []uint64
		for k := uint64(1005); k <= 2000; k += 5 {
			want = append(want, k)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: range %d keys want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: range[%d]=%d want %d", name, i, got[i], want[i])
			}
		}
	}
}

func TestRangeFullAndEmpty(t *testing.T) {
	tr := New[uint64]()
	keys := dataset.Random(5000, 1, 1<<45, 2)
	uniq := map[uint64]bool{}
	for _, k := range keys {
		tr.Upsert(k)
		uniq[k] = true
	}
	n := 0
	tr.Range(0, ^uint64(0), func(uint64, *uint64) bool { n++; return true })
	if n != len(uniq) {
		t.Fatalf("full range visited %d want %d", n, len(uniq))
	}
	n = 0
	tr.Range(1<<50, 1<<51, func(uint64, *uint64) bool { n++; return true })
	if n != 0 {
		t.Fatalf("empty range visited %d", n)
	}
}

func TestRangeBoundaryInclusive(t *testing.T) {
	tr := New[uint64]()
	for _, k := range []uint64{10, 20, 30} {
		tr.Upsert(k)
	}
	var got []uint64
	tr.Range(10, 30, func(k uint64, _ *uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("inclusive bounds broken: %v", got)
	}
}

func TestExtremeDomainKeys(t *testing.T) {
	tr := New[uint64]()
	keys := []uint64{0, 1, ^uint64(0), ^uint64(0) - 1, 1 << 63, 1<<63 - 1}
	for _, k := range keys {
		*tr.Upsert(k) = k ^ 0xabc
	}
	for _, k := range keys {
		v := tr.Get(k)
		if v == nil || *v != k^0xabc {
			t.Fatalf("extreme key %d wrong", k)
		}
	}
}

func TestQuickPropertyMatchesModel(t *testing.T) {
	for name, mk := range trees() {
		mk := mk
		f := func(keys []uint64) bool {
			tr := mk()
			model := map[uint64]uint64{}
			for _, k := range keys {
				*tr.Upsert(k)++
				model[k]++
			}
			if tr.Len() != len(model) {
				return false
			}
			ok := true
			prev := uint64(0)
			first := true
			tr.Iterate(func(k uint64, v *uint64) bool {
				if model[k] != *v {
					ok = false
				}
				if !first && k <= prev {
					ok = false
				}
				prev, first = k, false
				return ok
			})
			return ok
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestQuickPropertyRangeMatchesFilter(t *testing.T) {
	f := func(keys []uint64, lo, hi uint64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		tr := New[uint64]()
		uniq := map[uint64]bool{}
		for _, k := range keys {
			tr.Upsert(k)
			uniq[k] = true
		}
		want := 0
		for k := range uniq {
			if k >= lo && k <= hi {
				want++
			}
		}
		got := 0
		tr.Range(lo, hi, func(k uint64, _ *uint64) bool {
			if k < lo || k > hi {
				return false
			}
			got++
			return true
		})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPathCompressionReducesNodes(t *testing.T) {
	count := func(tr *Tree[uint64]) int {
		n := 0
		var walk func(x any)
		walk = func(x any) {
			switch x := x.(type) {
			case *node4[uint64]:
				n++
				for i := 0; i < x.numChildren; i++ {
					walk(x.children[i])
				}
			case *node16[uint64]:
				n++
				for i := 0; i < x.numChildren; i++ {
					walk(x.children[i])
				}
			case *node48[uint64]:
				n++
				for b := 0; b < 256; b++ {
					if idx := x.index[b]; idx != 0 {
						walk(x.children[idx-1])
					}
				}
			case *node256[uint64]:
				n++
				for b := 0; b < 256; b++ {
					if x.children[b] != nil {
						walk(x.children[b])
					}
				}
			}
		}
		walk(tr.root)
		return n
	}
	// Small-range keys share six leading zero bytes, so every leaf split
	// creates a long common prefix — chains without compression.
	keys := dataset.Random(2000, 1, 1<<16, 6)
	a, b := New[uint64](), NewNoPathCompression[uint64]()
	for _, k := range keys {
		a.Upsert(k)
		b.Upsert(k)
	}
	ca, cb := count(a), count(b)
	if ca >= cb {
		t.Fatalf("path compression did not reduce node count: %d vs %d", ca, cb)
	}
}
