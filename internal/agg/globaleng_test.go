package agg

import (
	"testing"

	"memagg/internal/dataset"
)

// glbParallelSpecs sit above glbSerialCutoff so the morsel-driven shared-
// table path runs, in skewed and uniform shapes (the heavy-hitter kinds
// concentrate atomic traffic on a few slots — the worst case for the
// lock-free lanes).
func glbParallelSpecs() []dataset.Spec {
	n := 3 * glbSerialCutoff
	return []dataset.Spec{
		{Kind: dataset.RseqShf, N: n, Cardinality: 1 << 7, Seed: 3},
		{Kind: dataset.RseqShf, N: n, Cardinality: 1 << 14, Seed: 4},
		{Kind: dataset.HhitShf, N: n, Cardinality: 1 << 10, Seed: 5},
		{Kind: dataset.Zipf, N: n, Cardinality: 1 << 10, Seed: 6},
	}
}

// TestGLBParallelReduceMatchesSerial pins the morsel-driven path of every
// distributive kernel (COUNT/SUM/MIN/MAX, plus AVG through VectorAvg)
// against the engine's own serial fallback on inputs above the cutoff:
// the lock-free lane folds must agree with the single-threaded reference
// exactly, group for group. Runs under -race in scripts/ci.sh.
func TestGLBParallelReduceMatchesSerial(t *testing.T) {
	for _, spec := range glbParallelSpecs() {
		keys := spec.Keys()
		vals := dataset.Values(len(keys), spec.Seed)
		par := AsReducer(HashGLB(8))
		ser := AsReducer(HashGLB(1)) // workers()==1 forces the serial fallback
		for _, op := range []ReduceOp{OpCount, OpSum, OpMin, OpMax} {
			want := refReduce(keys, vals, op)
			got := par.VectorReduce(keys, vals, op)
			if len(got) != len(want) {
				t.Fatalf("%v/%s: %d groups want %d", spec, op, len(got), len(want))
			}
			for _, g := range got {
				if want[g.Key] != g.Val {
					t.Fatalf("%v/%s: key %d = %d want %d", spec, op, g.Key, g.Val, want[g.Key])
				}
			}
		}
		// AVG: parallel and serial must agree bit for bit — both divide
		// the same exact uint64 sums once.
		wantAvg := map[uint64]float64{}
		for _, g := range ser.(Engine).VectorAvg(keys, vals) {
			wantAvg[g.Key] = g.Val
		}
		for _, g := range par.(Engine).VectorAvg(keys, vals) {
			if wantAvg[g.Key] != g.Val {
				t.Fatalf("%v/AVG: key %d = %v want %v", spec, g.Key, g.Val, wantAvg[g.Key])
			}
		}
	}
}

// TestGLBParallelShortValsAndZeroKey pins the two edge paths of the morsel
// loop: a values column shorter than keys (the tail zero-extends through
// valueAt, and whole blocks past len(vals) take the row path) and key 0
// (the table's dedicated zero cell).
func TestGLBParallelShortValsAndZeroKey(t *testing.T) {
	n := 2 * glbSerialCutoff
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i % 97) // includes key 0
	}
	vals := dataset.Values(n/2, 11) // half the column missing
	par := AsReducer(HashGLB(8))
	for _, op := range []ReduceOp{OpSum, OpMin, OpMax} {
		want := refReduce(keys, vals, op)
		got := par.VectorReduce(keys, vals, op)
		if len(got) != len(want) {
			t.Fatalf("%s: %d groups want %d", op, len(got), len(want))
		}
		for _, g := range got {
			if want[g.Key] != g.Val {
				t.Fatalf("%s: key %d = %d want %d", op, g.Key, g.Val, want[g.Key])
			}
		}
	}
}
