package agg

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sort"
	"testing"

	"memagg/internal/arena"
)

// buildPartial observes (and, with ar non-nil, buffers) vals into a fresh
// partial.
func buildPartial(ar *arena.Arena, vals []uint64) *Partial {
	p := &Partial{}
	for _, v := range vals {
		p.Observe(v)
		if ar != nil {
			p.Buffer(ar, v)
		}
	}
	return p
}

func TestPartialWireRoundTrip(t *testing.T) {
	ar := arena.New()
	cases := [][]uint64{
		nil,
		{0},
		{42},
		{1, 2, 3, 4, 5},
		{^uint64(0), 0, ^uint64(0) - 1},
	}
	for _, vals := range cases {
		p := buildPartial(ar, vals)
		enc := AppendPartialWire(nil, 9001, p, ar)
		if want := PartialWireSize(len(vals)); len(enc) != want {
			t.Fatalf("encoded %d values to %d bytes, want %d", len(vals), len(enc), want)
		}
		key, got, gotVals, n, err := DecodePartialWire(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
		if key != 9001 {
			t.Fatalf("key = %d", key)
		}
		if got.Count() != p.Count() || got.Sum() != p.Sum() {
			t.Fatalf("eager state mismatch: %+v vs %+v", got, *p)
		}
		gmin, gok := got.Min()
		pmin, pok := p.Min()
		if gok != pok || gmin != pmin {
			t.Fatalf("min mismatch")
		}
		if len(gotVals) != len(vals) {
			t.Fatalf("vals = %v want %v", gotVals, vals)
		}
		for i := range vals {
			if gotVals[i] != vals[i] {
				t.Fatalf("vals = %v want %v", gotVals, vals)
			}
		}
		// Re-encoding the decoded form is byte-identical.
		if re := AppendRestoredWire(nil, key, &got, gotVals); !bytes.Equal(re, enc) {
			t.Fatalf("re-encode differs:\n%x\n%x", re, enc)
		}
	}
}

func TestPartialWireDistributiveSkipsValues(t *testing.T) {
	p := buildPartial(nil, nil)
	p.Observe(5)
	p.Observe(11)
	enc := AppendPartialWire(nil, 7, p, nil)
	if len(enc) != PartialWireSize(0) {
		t.Fatalf("distributive encoding carries values: %d bytes", len(enc))
	}
	_, got, vals, _, err := DecodePartialWire(enc)
	if err != nil || len(vals) != 0 || got.Count() != 2 || got.Sum() != 16 {
		t.Fatalf("decode: %+v vals=%v err=%v", got, vals, err)
	}
}

func TestPartialWireRejectsMalformed(t *testing.T) {
	ar := arena.New()
	valid := AppendPartialWire(nil, 1, buildPartial(ar, []uint64{3, 9}), ar)
	for name, corrupt := range map[string][]byte{
		"short header":    valid[:10],
		"truncated vals":  valid[:len(valid)-4],
		"empty":           nil,
		"min above max":   mutate(valid, 24, 100, 32, 1), // min=100, max=1
		"vals beyond cnt": mutate(valid, 8, 1, 40, 2),    // count=1, nvals=2
		"ghost state":     mutate(valid, 8, 0, 40, 0),    // count=0, sum stays
	} {
		if _, _, _, _, err := DecodePartialWire(corrupt); !errors.Is(err, ErrPartialWire) {
			t.Errorf("%s: err = %v, want ErrPartialWire", name, err)
		}
	}
}

// mutate overwrites two little-endian fields of a copy of enc: offset a
// gets va (8 bytes), offset b gets vb (8 bytes for value offsets, 4 for
// the nvals field at 40).
func mutate(enc []byte, a int, va uint64, b int, vb uint64) []byte {
	out := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint64(out[a:], va)
	if b == 40 {
		binary.LittleEndian.PutUint32(out[b:], uint32(vb))
	} else {
		binary.LittleEndian.PutUint64(out[b:], vb)
	}
	return out
}

// FuzzPartialWire is the partial-codec fuzzer the cluster transport leans
// on (the fifth fuzzer, alongside the WAL's four): arbitrary bytes must
// decode to either an error or a record that (a) re-encodes byte-identical
// — the round-trip property — and (b) merges after decode exactly as it
// would have merged before encode, eager state and value multiset both.
func FuzzPartialWire(f *testing.F) {
	ar := arena.New()
	f.Add(AppendPartialWire(nil, 3, buildPartial(ar, []uint64{1, 5, 5, 2}), ar))
	f.Add(AppendPartialWire(nil, 0, buildPartial(nil, nil), nil))
	two := AppendPartialWire(nil, 8, buildPartial(ar, []uint64{7}), ar)
	two = AppendPartialWire(two, 8, buildPartial(ar, []uint64{9, 11}), ar)
	f.Add(two)
	f.Add([]byte("not a partial record at all, just text"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode a stream of records; stop at the first malformed one (a
		// framed transport would have rejected the rest by CRC anyway).
		type rec struct {
			key  uint64
			p    Partial
			vals []uint64
		}
		var recs []rec
		for off := 0; off < len(data); {
			key, p, vals, n, err := DecodePartialWire(data[off:])
			if err != nil {
				break
			}
			// Round trip: re-encoding reproduces the exact input bytes.
			re := AppendRestoredWire(nil, key, &p, vals)
			if !bytes.Equal(re, data[off:off+n]) {
				t.Fatalf("re-encode differs at offset %d:\n in %x\nout %x", off, data[off:off+n], re)
			}
			recs = append(recs, rec{key, p, vals})
			off += n
		}
		if len(recs) < 2 {
			return
		}
		// Merge-after-decode == merge-before-encode: folding the decoded
		// partials must equal decoding an encoding of the fold — so a
		// router merging shipped partials gets exactly the state a single
		// node holding all the rows would ship.
		var after Partial
		var afterVals []uint64
		for _, r := range recs {
			after.Merge(&r.p)
			afterVals = append(afterVals, r.vals...)
		}
		enc := AppendRestoredWire(nil, recs[0].key, &after, afterVals)
		_, dec, decVals, _, err := DecodePartialWire(enc)
		if err != nil {
			// Merge sums counts and concatenates values, so validity is
			// preserved; any error here is a codec bug. (Count overflow
			// wrapping to a count below len(vals) is the one exception a
			// fuzzer can hit — tolerate only that exact case.)
			if after.Count() < uint64(len(afterVals)) {
				return
			}
			t.Fatalf("merged record failed to decode: %v", err)
		}
		if dec.Count() != after.Count() || dec.Sum() != after.Sum() {
			t.Fatalf("merged eager state diverged: %+v vs %+v", dec, after)
		}
		dmin, dok := dec.Min()
		amin, aok := after.Min()
		dmax, _ := dec.Max()
		amax, _ := after.Max()
		if dok != aok || dmin != amin || dmax != amax {
			t.Fatalf("merged min/max diverged")
		}
		sort.Slice(decVals, func(i, j int) bool { return decVals[i] < decVals[j] })
		sort.Slice(afterVals, func(i, j int) bool { return afterVals[i] < afterVals[j] })
		if len(decVals) != len(afterVals) {
			t.Fatalf("merged multiset size diverged: %d vs %d", len(decVals), len(afterVals))
		}
		for i := range decVals {
			if decVals[i] != afterVals[i] {
				t.Fatalf("merged multiset diverged at %d", i)
			}
		}
	})
}
