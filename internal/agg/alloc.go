package agg

import (
	"fmt"

	"memagg/internal/arena"
	"memagg/internal/xsort"
)

// Allocator selects the paper's Dimension 6 — the memory-allocation
// strategy backing query-lifetime state. Its §6 experiments show allocator
// choice alone swings aggregation throughput by large factors; here the
// same knob contrasts the Go runtime allocator with the arena layer.
type Allocator int

const (
	// AllocGoRuntime is the default: every per-group buffer and scratch
	// slice is a plain heap allocation, collected by the GC.
	AllocGoRuntime Allocator = iota

	// AllocArena routes the hot-path allocations through internal/arena:
	// holistic per-group value lists become chunked, pointer-free arena
	// lists (hash, tree and radix engines), and the sort engines' large
	// copy/zip buffers are recycled across queries. Arenas are pooled and
	// reset between queries, so the steady state allocates almost nothing
	// and the GC has almost nothing to scan.
	AllocArena
)

// String returns the harness label for the allocator.
func (a Allocator) String() string {
	switch a {
	case AllocGoRuntime:
		return "go-runtime"
	case AllocArena:
		return "arena"
	default:
		return fmt.Sprintf("Allocator(%d)", int(a))
	}
}

// Allocators lists the settings of the allocator dimension, sweep order.
func Allocators() []Allocator { return []Allocator{AllocGoRuntime, AllocArena} }

// Shared reset-and-reuse pools. arenas hands a private arena to each query
// (and to each worker inside the partitioned engines — the per-worker
// shards); the slice pools recycle the sort engines' contiguous buffers.
var (
	arenas  arena.Pool
	u64Pool arena.SlicePool[uint64]
	kvPool  arena.SlicePool[xsort.KV]
)

// WithAllocator returns a copy of e configured to allocate with al. The
// hash, tree, sort, radix (Hash_RX) and global shared-table (Hash_GLB)
// engines honour the knob, as does Adaptive (it forwards the allocator to
// the engines it routes between). Hash_GLB honours it on the holistic path
// only, where the parallel striped replay degrades to a serial replay into
// one pooled arena — a single-owner arena cannot take concurrent appends.
// The shared-table concurrent engines (Hash_LC, Hash_TBBSC) and Hash_PLAT
// are returned unchanged: their groups are appended by many workers at
// once, which a single-owner arena cannot serve (DESIGN.md discusses the
// concurrent-arena extension).
func WithAllocator(e Engine, al Allocator) Engine {
	switch eng := e.(type) {
	case *hashEngine:
		c := *eng
		c.alloc = al
		return &c
	case *treeEngine:
		c := *eng
		c.alloc = al
		return &c
	case *sortEngine:
		c := *eng
		c.alloc = al
		return &c
	case *radixEngine:
		c := *eng
		c.alloc = al
		return &c
	case *globalEngine:
		c := *eng
		c.alloc = al
		return &c
	case *adaptiveEngine:
		c := *eng
		c.hash = WithAllocator(eng.hash, al)
		c.sort = WithAllocator(eng.sort, al)
		return &c
	default:
		return e
	}
}

// EngineAllocator reports the allocator an engine is configured with.
func EngineAllocator(e Engine) Allocator {
	switch eng := e.(type) {
	case *hashEngine:
		return eng.alloc
	case *treeEngine:
		return eng.alloc
	case *sortEngine:
		return eng.alloc
	case *radixEngine:
		return eng.alloc
	case *globalEngine:
		return eng.alloc
	case *adaptiveEngine:
		return EngineAllocator(eng.hash)
	default:
		return AllocGoRuntime
	}
}
