package agg

import (
	"math/bits"
	"sync/atomic"

	"memagg/internal/arena"
	"memagg/internal/hashtbl"
	"memagg/internal/obs"
	"memagg/internal/radix"
)

// radixEngine is the radix-partitioned parallel aggregation engine
// ("Hash_RX"): the third classic parallel design point next to the shared
// structures of Table 8 (Hash_LC, Hash_TBBSC) and the private-table PLAT
// scheme (plat.go).
//
// Phase 1 partitions the input by hash radix into P = 2^bits partitions
// (internal/radix: per-worker write-combining buffers keep the scatter
// sequential-write friendly). Phase 2 hands whole partitions to workers;
// each builds an independent cache-sized linear-probing table over its
// partition. Because every occurrence of a key lands in exactly one
// partition there is nothing to merge and nothing to lock — which also
// means holistic queries (Q3) work naturally, unlike the classic
// partitioned schemes the paper rules out for holistic functions.
//
// The trade against the other designs: Hash_RX pays an extra full pass
// over the data (the partitioning scatter) to buy phase-2 tables that fit
// in cache. At low group-by cardinality the local tables of Hash_PLAT are
// already cache-resident and the extra pass is pure overhead; at high
// cardinality PLAT's p overlapping tables overflow cache and its merge
// re-scans every one of them, while Hash_RX keeps working on small
// disjoint tables — the crossover the radix-aggregation literature
// predicts, measurable with `aggbench -exp rx`.
type radixEngine struct {
	threads int
	alloc   Allocator
}

// HashRX returns the radix-partitioned parallel engine ("Hash_RX")
// building with the given number of goroutines (<= 0 uses GOMAXPROCS).
func HashRX(threads int) Engine {
	return &radixEngine{threads: threads}
}

func (e *radixEngine) Name() string       { return "Hash_RX" }
func (e *radixEngine) Category() Category { return HashBased }

func (e *radixEngine) workers() int {
	if e.threads <= 0 {
		return defaultWorkers()
	}
	return e.threads
}

const (
	// rxSerialCutoff is the input size below which the two-pass schedule
	// cannot recoup the partitioning scatter and a single serial table
	// build runs instead.
	rxSerialCutoff = 1 << 15

	// rxSampleSize is the input prefix inspected by the cardinality
	// estimate (same scale as the Adaptive engine's sample).
	rxSampleSize = 1 << 15

	// rxTableBudget is the target phase-2 table footprint in bytes:
	// L2-sized, so each partition's build stays cache-resident — the whole
	// point of partitioning first.
	rxTableBudget = 1 << 18

	// rxSlotBytes approximates one occupied table slot (8-byte key +
	// 8-byte aggregate state) for the footprint estimate.
	rxSlotBytes = 16

	// rxMinBits keeps enough partitions for phase-2 load balancing even
	// when the estimated cardinality is tiny.
	rxMinBits = 4
)

// estimateGroups guesses the group-by cardinality from a prefix sample,
// reusing the sizeHint philosophy (Section 3.2: cardinality is unknown up
// front). A saturated sample — few distinct keys — indicates a small key
// domain; otherwise the distinct ratio is scaled to the full input.
func estimateGroups(keys []uint64) int {
	n := len(keys)
	if n == 0 {
		return 0
	}
	s := n
	if s > rxSampleSize {
		s = rxSampleSize
	}
	seen := hashtbl.NewLinearProbe[struct{}](s)
	for _, k := range keys[:s] {
		seen.Upsert(k)
	}
	d := seen.Len()
	if s == n {
		return d
	}
	if d < s/2 {
		// The sample repeats keys heavily: the domain is close to d.
		return 2 * d
	}
	return int(float64(n) * float64(d) / float64(s))
}

// chooseBits picks the radix fan-out so each phase-2 table lands near the
// cache budget, with at least enough partitions to keep every worker busy
// (4 per worker for load balancing under skew), clamped to the
// partitioner's limits.
func chooseBits(n, workers, estGroups int) int {
	perTable := rxTableBudget / rxSlotBytes // target groups per partition
	p := hashtbl.NextPow2((estGroups + perTable - 1) / perTable)
	b := bits.Len(uint(p)) - 1
	if minP := hashtbl.NextPow2(4 * workers); p < minP {
		b = bits.Len(uint(minP)) - 1
	}
	if b < rxMinBits {
		b = rxMinBits
	}
	if b > radix.MaxBits {
		b = radix.MaxBits
	}
	// Never fan out so far that average partitions get trivially small.
	for b > rxMinBits && n>>uint(b) < 1024 {
		b--
	}
	return b
}

// rxRun is the generic two-phase schedule shared by every query class.
// buildPart aggregates one partition (whole keys live in exactly one
// partition, so the results concatenate without a merge). Small inputs and
// single-thread configurations take the serial fallback: buildPart over
// the whole input as one partition, which keeps both code paths
// behaviourally identical.
func rxRun[R any](e *radixEngine, keys, vals []uint64, buildPart func(pkeys, pvals []uint64) []R) []R {
	ph := phasesFor(e.Name())
	m := obs.Start()
	workers := e.workers()
	if len(keys) < rxSerialCutoff || workers == 1 {
		// The serial fallback fuses build and emit inside buildPart; the
		// whole duration is recorded as build (CountPhases reports the
		// finer split when asked).
		out := buildPart(keys, vals)
		m.Tick(ph.build)
		return out
	}
	bits := chooseBits(len(keys), workers, estimateGroups(keys))
	pt := radix.Partition(keys, vals, bits, workers)
	p := pt.NumPartitions()

	parts := make(Result[R], p)
	rxEachPartition(workers, p, func(q int) {
		if pk := pt.PartKeys(q); len(pk) > 0 {
			parts[q] = buildPart(pk, pt.PartVals(q))
		}
	})
	// build covers the radix scatter plus the per-partition table builds
	// (and their row emission, which buildPart fuses); iterate is the
	// final partition concatenation. Hash_RX has no merge phase —
	// partitions are key-disjoint by construction.
	m = m.Tick(ph.build)
	out := parts.Merge()
	m.Tick(ph.iterate)
	return out
}

// rxEachPartition runs f(q) for every partition q in [0, p) across the
// given workers with dynamic assignment (an atomic cursor): skew is
// absorbed because a heavy-hitter partition occupies one worker while the
// rest drain the queue.
func rxEachPartition(workers, p int, f func(q int)) {
	if workers > p {
		workers = p
	}
	var next atomic.Int64
	parallelDo(workers, func(int) {
		for {
			q := int(next.Add(1)) - 1
			if q >= p {
				return
			}
			f(q)
		}
	})
}

func (e *radixEngine) VectorCount(keys []uint64) []GroupCount {
	return rxRun(e, keys, nil, func(pkeys, _ []uint64) []GroupCount {
		t := hashtbl.NewLinearProbe[uint64](sizeHint(len(pkeys)))
		lpBuildCount(t, pkeys)
		out := make([]GroupCount, 0, t.Len())
		t.Iterate(func(k uint64, v *uint64) bool {
			out = append(out, GroupCount{Key: k, Count: *v})
			return true
		})
		return out
	})
}

func (e *radixEngine) VectorAvg(keys, vals []uint64) []GroupFloat {
	return rxRun(e, keys, vals, func(pkeys, pvals []uint64) []GroupFloat {
		t := hashtbl.NewLinearProbe[avgState](sizeHint(len(pkeys)))
		lpBuildAvg(t, pkeys, pvals)
		out := make([]GroupFloat, 0, t.Len())
		t.Iterate(func(k uint64, st *avgState) bool {
			out = append(out, GroupFloat{Key: k, Val: st.avg()})
			return true
		})
		return out
	})
}

func (e *radixEngine) VectorMedian(keys, vals []uint64) []GroupFloat {
	return e.VectorHolistic(keys, vals, MedianFunc)
}

// VectorHolistic buffers each group's values inside its partition — a key
// never spans partitions, so the buffered list is already complete when
// the partition finishes and no cross-table concatenation is needed.
//
// Under AllocArena each partition build borrows a private arena from the
// shared pool (the per-worker shards: at most `workers` arenas are live at
// once, and the pool recycles them from partition to partition and from
// query to query).
func (e *radixEngine) VectorHolistic(keys, vals []uint64, fn HolisticFunc) []GroupFloat {
	if e.alloc == AllocArena {
		return rxRun(e, keys, vals, func(pkeys, pvals []uint64) []GroupFloat {
			ar := arenas.Get()
			defer arenas.Put(ar)
			t := hashtbl.NewLinearProbe[arena.List](sizeHint(len(pkeys)))
			lpBuildArenaList(t, ar, pkeys, pvals)
			return emitHolisticArena(t, ar, fn)
		})
	}
	return rxRun(e, keys, vals, func(pkeys, pvals []uint64) []GroupFloat {
		t := hashtbl.NewLinearProbe[[]uint64](sizeHint(len(pkeys)))
		lpBuildList(t, pkeys, pvals)
		return emitHolistic(t, fn)
	})
}

func (e *radixEngine) VectorReduce(keys, vals []uint64, op ReduceOp) []GroupUint {
	return rxRun(e, keys, vals, func(pkeys, pvals []uint64) []GroupUint {
		t := hashtbl.NewLinearProbe[reduceState](sizeHint(len(pkeys)))
		lpBuildReduce(t, pkeys, pvals, op)
		out := make([]GroupUint, 0, t.Len())
		t.Iterate(func(k uint64, st *reduceState) bool {
			out = append(out, GroupUint{Key: k, Val: st.val})
			return true
		})
		return out
	})
}

// ScalarMedian is unsupported, as for the other hash engines: partitions
// are hash-ordered, not key-ordered.
func (e *radixEngine) ScalarMedian([]uint64) (float64, error) {
	return 0, ErrUnsupported
}

// VectorCountRange is unsupported: no native range search.
func (e *radixEngine) VectorCountRange([]uint64, uint64, uint64) ([]GroupCount, error) {
	return nil, ErrUnsupported
}
