package agg

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"memagg/internal/wal"
)

func testChunk(rows, card int, shortVals int) Chunk {
	c := Chunk{Keys: make([]uint64, rows), Vals: make([]uint64, rows-shortVals)}
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < rows; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		c.Keys[i] = rng >> 31 % uint64(card)
		if i < len(c.Vals) {
			c.Vals[i] = rng % 100_000
		}
	}
	return c
}

func TestChunkWireRoundTrip(t *testing.T) {
	cases := []Chunk{
		{},                         // zero rows: bare header
		testChunk(1, 1, 0),         // single row
		testChunk(1000, 37, 0),     // plain
		testChunk(1000, 37, 250),   // short value column zero-extends
		testChunk(100_000, 1e6, 0), // spills nothing (one frame per column)
	}
	for ci, c := range cases {
		enc := AppendChunkWire(nil, c)
		if want := ChunkWireSize(c.Rows()); len(enc) != want {
			t.Fatalf("case %d: encoded %d rows to %d bytes, ChunkWireSize says %d", ci, c.Rows(), len(enc), want)
		}
		got, n, err := DecodeChunkWire(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if n != len(enc) {
			t.Fatalf("case %d: consumed %d of %d bytes", ci, n, len(enc))
		}
		if got.Rows() != c.Rows() {
			t.Fatalf("case %d: %d rows decoded, want %d", ci, got.Rows(), c.Rows())
		}
		for i := range c.Keys {
			if got.Keys[i] != c.Keys[i] {
				t.Fatalf("case %d: key %d = %d, want %d", ci, i, got.Keys[i], c.Keys[i])
			}
			want := uint64(0)
			if i < len(c.Vals) {
				want = c.Vals[i]
			}
			if got.Vals[i] != want {
				t.Fatalf("case %d: val %d = %d, want %d", ci, i, got.Vals[i], want)
			}
		}
	}
}

// TestChunkWireMultiFrame forces a chunk past the per-frame row bound so
// each column spans several frames, and checks the split reassembles.
func TestChunkWireMultiFrame(t *testing.T) {
	rows := chunkFrameRows*2 + 123
	c := testChunk(rows, 1<<20, 5)
	enc := AppendChunkWire(nil, c)
	got, n, err := DecodeChunkWire(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if got.Rows() != rows {
		t.Fatalf("rows = %d want %d", got.Rows(), rows)
	}
	for _, i := range []int{0, chunkFrameRows - 1, chunkFrameRows, rows - 1} {
		if got.Keys[i] != c.Keys[i] {
			t.Fatalf("key %d mismatch", i)
		}
	}
}

// TestChunkStream checks the streaming form: several chunks back to back
// in one body, read until clean EOF — the multi-chunk ingest body shape.
func TestChunkStream(t *testing.T) {
	chunks := []Chunk{testChunk(100, 7, 0), {}, testChunk(5000, 999, 100), testChunk(1, 1, 1)}
	var body []byte
	for _, c := range chunks {
		body = AppendChunkWire(body, c)
	}
	br := bufio.NewReader(bytes.NewReader(body))
	var rows int
	var got []Chunk
	for {
		c, err := ReadChunk(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("chunk %d: %v", len(got), err)
		}
		got = append(got, c)
		rows += c.Rows()
	}
	if len(got) != len(chunks) {
		t.Fatalf("read %d chunks, want %d", len(got), len(chunks))
	}
	want := 0
	for _, c := range chunks {
		want += c.Rows()
	}
	if rows != want {
		t.Fatalf("rows = %d want %d", rows, want)
	}
}

// TestChunkWireRejects pins the corruption taxonomy: every structural
// violation is refused with a typed error, never mis-decoded.
func TestChunkWireRejects(t *testing.T) {
	good := AppendChunkWire(nil, testChunk(100, 10, 0))

	check := func(name string, body []byte, want error) {
		t.Helper()
		_, _, err := DecodeChunkWire(body)
		if err == nil {
			t.Fatalf("%s: decoded without error", name)
		}
		if want != nil && !errors.Is(err, want) {
			t.Fatalf("%s: error %v does not wrap %v", name, err, want)
		}
	}

	// Truncations at every grade: inside the header frame, between
	// frames, inside a column frame.
	for _, cut := range []int{1, 7, 12, 25, len(good) - 1} {
		check("truncated", good[:cut], nil)
	}

	flip := func(off int) []byte {
		b := append([]byte(nil), good...)
		b[off] ^= 0xFF
		return b
	}
	check("flipped magic", flip(8), nil)        // frame CRC catches it
	check("flipped column byte", flip(30), nil) // ditto
	check("flipped frame length", flip(0), nil) // frame layer rejects

	// Structural violations re-framed with valid CRCs.
	reframe := func(mut func(hdr []byte)) []byte {
		hdr := make([]byte, chunkHeaderSize)
		copy(hdr[:4], chunkMagic[:])
		hdr[4] = chunkVersion
		binary.LittleEndian.PutUint64(hdr[6:14], 100)
		mut(hdr)
		return wal.AppendFrame(nil, hdr)
	}
	check("bad magic", reframe(func(h []byte) { h[0] = 'X' }), ErrChunkWire)
	check("bad version", reframe(func(h []byte) { h[4] = 99 }), ErrChunkWire)
	check("reserved flags", reframe(func(h []byte) { h[5] = 1 }), ErrChunkWire)
	check("row bomb", reframe(func(h []byte) {
		binary.LittleEndian.PutUint64(h[6:14], MaxWireChunkRows+1)
	}), ErrChunkWire)

	// Columns out of order: a vals frame where keys are expected.
	swapped := reframe(func([]byte) {})
	col := make([]byte, chunkColHeader+8)
	col[0] = chunkColVals
	binary.LittleEndian.PutUint32(col[1:chunkColHeader], 1)
	swapped = wal.AppendFrame(swapped, col)
	check("column order", swapped, ErrChunkWire)

	// Column overrun: a frame claiming more rows than the header allows.
	over := reframe(func(h []byte) { binary.LittleEndian.PutUint64(h[6:14], 1) })
	big := make([]byte, chunkColHeader+16)
	big[0] = chunkColKeys
	binary.LittleEndian.PutUint32(big[1:chunkColHeader], 2)
	over = wal.AppendFrame(over, big)
	check("column overrun", over, ErrChunkWire)
}

// TestChunkWireSplitsOversized checks the transparent split of a chunk
// larger than MaxWireChunkRows into several wire chunks. The bound is
// 16M rows, too big for a unit test to materialize comfortably, so this
// exercises the split arithmetic through ChunkWireSize only and the
// Validate contract directly.
func TestChunkValidate(t *testing.T) {
	if err := (Chunk{Keys: []uint64{1}, Vals: []uint64{1, 2}}).Validate(); err == nil {
		t.Fatal("vals longer than keys validated")
	}
	if err := (Chunk{Keys: []uint64{1, 2}, Vals: []uint64{1}}).Validate(); err != nil {
		t.Fatalf("short vals: %v", err)
	}
	if got, want := ChunkWireSize(0), 8+chunkHeaderSize; got != want {
		t.Fatalf("empty chunk size %d, want %d", got, want)
	}
	// Split sizing: N rows over the bound costs the bound's encoding plus
	// the remainder's — two header frames on the wire.
	n := MaxWireChunkRows + 1000
	if got, want := ChunkWireSize(n), ChunkWireSize(MaxWireChunkRows)+ChunkWireSize(1000); got != want {
		t.Fatalf("split size %d, want %d", got, want)
	}
}

// FuzzChunkWire: any byte stream either decodes into a chunk whose
// re-encoding decodes identically (both columns, row for row), or is
// rejected with a typed error — never a panic, never a silent mis-read.
func FuzzChunkWire(f *testing.F) {
	f.Add(AppendChunkWire(nil, Chunk{}))
	f.Add(AppendChunkWire(nil, testChunk(1, 1, 0)))
	f.Add(AppendChunkWire(nil, testChunk(100, 10, 25)))
	f.Add(AppendChunkWire(nil, testChunk(1000, 999, 0))[:50])
	bad := AppendChunkWire(nil, testChunk(64, 8, 0))
	bad[20] ^= 0x40
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		c, n, err := DecodeChunkWire(data)
		if err != nil {
			if !errors.Is(err, ErrChunkWire) && !errors.Is(err, wal.ErrWALCorrupt) && err != io.EOF {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if len(c.Vals) != len(c.Keys) {
			t.Fatalf("decoded columns disagree: %d keys, %d vals", len(c.Keys), len(c.Vals))
		}
		enc := AppendChunkWire(nil, c)
		rt, m, err := DecodeChunkWire(enc)
		if err != nil || m != len(enc) {
			t.Fatalf("re-decode: n=%d err=%v", m, err)
		}
		if rt.Rows() != c.Rows() {
			t.Fatalf("round trip rows %d != %d", rt.Rows(), c.Rows())
		}
		for i := range c.Keys {
			if rt.Keys[i] != c.Keys[i] || rt.Vals[i] != c.Vals[i] {
				t.Fatalf("round trip row %d: (%d,%d) != (%d,%d)",
					i, rt.Keys[i], rt.Vals[i], c.Keys[i], c.Vals[i])
			}
		}
	})
}
