package agg

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"memagg/internal/wal"
)

// Chunk is the columnar ingest unit: a key column and a value column of
// equal logical length, Vals[i] belonging to Keys[i]. A Vals column
// shorter than Keys zero-extends, matching the row-pair operators'
// convention; a longer one is invalid. Chunks are what the whole ingest
// path is built around — the public facade (memagg.Stream.AppendChunk),
// the stream shards (which fold a chunk's columns straight into the
// batched MixBatch/UpsertH kernels, no row structs anywhere), the HTTP
// servers (application/x-memagg-chunk bodies), and the cluster router
// (which re-partitions a chunk columnar-wise by ring owner).
type Chunk struct {
	Keys []uint64
	Vals []uint64
}

// Rows returns the chunk's logical row count — the key column's length.
func (c Chunk) Rows() int { return len(c.Keys) }

// Validate reports whether the chunk's columns are consistent: the value
// column must not be longer than the key column (a short one
// zero-extends).
func (c Chunk) Validate() error {
	if len(c.Vals) > len(c.Keys) {
		return fmt.Errorf("agg: chunk has %d vals for %d keys: %w", len(c.Vals), len(c.Keys), ErrChunkWire)
	}
	return nil
}

// Chunk wire encoding — the binary ingest format. A body is a *chunk
// stream*: zero or more chunks back to back, each framed with the WAL's
// self-validating frame codec (internal/wal: u32 length + u32 CRC32C +
// payload), so a torn or corrupt body is detected at the frame where it
// breaks, never mis-read:
//
//	header frame:   "MAGC" u8:version u8:flags u64:rows            (14 B)
//	column frames:  u8:col (0 = keys, 1 = vals) u32:count, then
//	                count little-endian uint64s                    (5+8n B)
//
// The key column's frames come first and their counts sum to rows, then
// the value column's, summing to rows as well (the encoder zero-extends
// a short value column, so on the wire both columns are always full
// length). Column frames are cut at chunkWireTarget so neither side ever
// buffers more than a few MiB per frame; a chunk of zero rows is a bare
// header frame. flags must be zero (reserved). Clean EOF between chunks
// ends the stream; EOF anywhere inside one is corruption.
const (
	chunkVersion    = 1
	chunkHeaderSize = 14
	chunkColHeader  = 5
	chunkColKeys    = 0
	chunkColVals    = 1
	chunkWireTarget = 4 << 20
	chunkFrameRows  = (chunkWireTarget - chunkColHeader) / 8
	// MaxWireChunkRows bounds one wire chunk's row count so a corrupt
	// header cannot ask the decoder to allocate gigabytes (the same role
	// wal.MaxFrame plays one layer down). AppendChunkWire splits larger
	// chunks into several wire chunks transparently — the wire is a chunk
	// stream, so the split is invisible to the receiving stream.
	MaxWireChunkRows = 1 << 24
)

var chunkMagic = [4]byte{'M', 'A', 'G', 'C'}

// ChunkContentType is the media type of a binary chunk-stream HTTP body:
// zero or more wire chunks back to back, read until clean EOF. Shared by
// the aggserve servers, the cluster node handler, and the router's
// outbound scatter so content negotiation speaks one name everywhere.
const ChunkContentType = "application/x-memagg-chunk"

// ErrChunkWire marks a structurally invalid chunk: bad magic, unknown
// version, column counts that disagree with the header, or inconsistent
// columns. Frame-level corruption surfaces as wal.ErrWALCorrupt; both
// mean "discard this body".
var ErrChunkWire = errors.New("agg: malformed chunk")

// ChunkWireSize returns the encoded size of a chunk with the given row
// count (both columns full length), framing included — what a client
// sizes its body buffer with.
func ChunkWireSize(rows int) int {
	size := 0
	for rows > MaxWireChunkRows {
		size += ChunkWireSize(MaxWireChunkRows)
		rows -= MaxWireChunkRows
	}
	size += 8 + chunkHeaderSize // header frame
	if rows == 0 {
		return size
	}
	frames := (rows + chunkFrameRows - 1) / chunkFrameRows
	return size + 2*(rows*8+frames*(8+chunkColHeader))
}

// appendColumn appends one column's frames (id col, counts summing to
// len(vals), padded with pad zero rows at the end) to dst.
func appendColumn(dst []byte, col byte, vals []uint64, pad int) []byte {
	emit := func(part []uint64, zeros int) []byte {
		n := len(part) + zeros
		start := len(dst)
		dst = append(dst, make([]byte, 8+chunkColHeader+8*n)...)
		payload := dst[start+8:]
		payload[0] = col
		binary.LittleEndian.PutUint32(payload[1:chunkColHeader], uint32(n))
		off := chunkColHeader
		for _, v := range part {
			binary.LittleEndian.PutUint64(payload[off:], v)
			off += 8
		}
		clear(payload[off:]) // the zero-extension tail
		binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(dst[start+4:], wal.Checksum(payload))
		return dst
	}
	for len(vals) >= chunkFrameRows {
		dst = emit(vals[:chunkFrameRows], 0)
		vals = vals[chunkFrameRows:]
	}
	for pad > 0 && len(vals)+pad >= chunkFrameRows {
		take := chunkFrameRows - len(vals)
		dst = emit(vals, take)
		vals, pad = nil, pad-take
	}
	if len(vals)+pad > 0 {
		dst = emit(vals, pad)
	}
	return dst
}

// AppendChunkWire appends c's wire encoding to dst and returns the
// extended slice. A short value column is zero-extended on the wire; a
// chunk larger than MaxWireChunkRows is split into several consecutive
// wire chunks (the decoder hands them back one at a time — callers that
// stream chunks into an ingest path never notice). Returns dst unchanged
// and an error only through Validate-grade misuse, which it panics on —
// wire encoding of an invalid chunk is a programming error.
func AppendChunkWire(dst []byte, c Chunk) []byte {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	for c.Rows() > MaxWireChunkRows {
		head := Chunk{Keys: c.Keys[:MaxWireChunkRows]}
		if len(c.Vals) > MaxWireChunkRows {
			head.Vals = c.Vals[:MaxWireChunkRows]
			c.Vals = c.Vals[MaxWireChunkRows:]
		} else {
			head.Vals = c.Vals
			c.Vals = nil
		}
		dst = AppendChunkWire(dst, head)
		c.Keys = c.Keys[MaxWireChunkRows:]
	}
	var hdr [chunkHeaderSize]byte
	copy(hdr[:4], chunkMagic[:])
	hdr[4] = chunkVersion
	hdr[5] = 0 // flags, reserved
	binary.LittleEndian.PutUint64(hdr[6:14], uint64(c.Rows()))
	dst = wal.AppendFrame(dst, hdr[:])
	if c.Rows() == 0 {
		return dst
	}
	dst = appendColumn(dst, chunkColKeys, c.Keys, 0)
	dst = appendColumn(dst, chunkColVals, c.Vals, c.Rows()-len(c.Vals))
	return dst
}

// decodeChunkHeader parses a header frame payload.
func decodeChunkHeader(payload []byte) (rows uint64, err error) {
	if len(payload) != chunkHeaderSize {
		return 0, fmt.Errorf("chunk header frame is %d bytes: %w", len(payload), ErrChunkWire)
	}
	if [4]byte(payload[:4]) != chunkMagic {
		return 0, fmt.Errorf("bad chunk magic %q: %w", payload[:4], ErrChunkWire)
	}
	if payload[4] != chunkVersion {
		return 0, fmt.Errorf("unknown chunk version %d: %w", payload[4], ErrChunkWire)
	}
	if payload[5] != 0 {
		return 0, fmt.Errorf("reserved chunk flags %#x: %w", payload[5], ErrChunkWire)
	}
	rows = binary.LittleEndian.Uint64(payload[6:14])
	if rows > MaxWireChunkRows {
		return 0, fmt.Errorf("chunk of %d rows exceeds %d: %w", rows, MaxWireChunkRows, ErrChunkWire)
	}
	return rows, nil
}

// ReadChunk reads one wire chunk from br. Both returned columns are
// freshly allocated and full length (rows each) — safe to hand straight
// to an ownership-transfer append. io.EOF means a clean end of the chunk
// stream (nothing read); any torn frame, CRC mismatch, or structural
// violation returns an error wrapping wal.ErrWALCorrupt or ErrChunkWire.
func ReadChunk(br *bufio.Reader) (Chunk, error) {
	payload, _, err := wal.ReadFrame(br)
	if err != nil {
		if err == io.EOF {
			return Chunk{}, io.EOF
		}
		return Chunk{}, fmt.Errorf("chunk header: %w", err)
	}
	rows, err := decodeChunkHeader(payload)
	if err != nil {
		return Chunk{}, err
	}
	if rows == 0 {
		return Chunk{}, nil
	}
	c := Chunk{Keys: make([]uint64, rows), Vals: make([]uint64, rows)}
	for _, col := range [2]struct {
		id  byte
		dst []uint64
	}{{chunkColKeys, c.Keys}, {chunkColVals, c.Vals}} {
		got := uint64(0)
		for got < rows {
			payload, _, err := wal.ReadFrame(br)
			if err != nil {
				return Chunk{}, fmt.Errorf("chunk column %d after %d/%d rows: %w", col.id, got, rows, err)
			}
			if len(payload) < chunkColHeader || payload[0] != col.id {
				return Chunk{}, fmt.Errorf("chunk column frame (want col %d): %w", col.id, ErrChunkWire)
			}
			n := uint64(binary.LittleEndian.Uint32(payload[1:chunkColHeader]))
			if n == 0 || got+n > rows || len(payload) != chunkColHeader+8*int(n) {
				return Chunk{}, fmt.Errorf("chunk column frame of %d rows at %d/%d: %w", n, got, rows, ErrChunkWire)
			}
			off := chunkColHeader
			for i := uint64(0); i < n; i++ {
				col.dst[got+i] = binary.LittleEndian.Uint64(payload[off:])
				off += 8
			}
			got += n
		}
	}
	return c, nil
}

// DecodeChunkWire decodes the first wire chunk in src, returning it and
// the bytes consumed — the buffer-at-once form of ReadChunk (tests, the
// fuzzer, and small clients use it; servers stream with ReadChunk).
func DecodeChunkWire(src []byte) (Chunk, int, error) {
	sr := &sliceReader{b: src}
	r := bufio.NewReader(sr)
	c, err := ReadChunk(r)
	if err != nil {
		return Chunk{}, 0, err
	}
	// The bufio layer may have pulled ahead of the chunk; consumed is what
	// it drew from src minus what still sits unread in its buffer.
	return c, sr.n - r.Buffered(), nil
}

// sliceReader is an io.Reader over a byte slice that counts bytes read —
// DecodeChunkWire's consumed-bytes bookkeeping.
type sliceReader struct {
	b []byte
	n int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	s.n += n
	return n, nil
}
