package agg

import (
	"memagg/internal/chash"
	"memagg/internal/cuckoo"
)

// This file generalizes the query set beyond Table 1's examples: any
// distributive fold (SUM, MIN, MAX — and COUNT as a degenerate fold) and
// any holistic function over a group's value multiset (QUANTILE, MODE, or
// user-supplied). The build/iterate structure is identical to
// VectorCount/VectorMedian: distributive folds aggregate early during the
// build; holistic functions buffer values and aggregate during iterate.

// ReduceOp selects the distributive fold applied by VectorReduce.
type ReduceOp int

const (
	// OpCount counts records per group (values ignored).
	OpCount ReduceOp = iota
	// OpSum sums values per group.
	OpSum
	// OpMin keeps the minimum value per group.
	OpMin
	// OpMax keeps the maximum value per group.
	OpMax
)

// String returns the SQL-ish name of the fold.
func (op ReduceOp) String() string {
	switch op {
	case OpCount:
		return "COUNT"
	case OpSum:
		return "SUM"
	case OpMin:
		return "MIN"
	case OpMax:
		return "MAX"
	default:
		return "ReduceOp(?)"
	}
}

// GroupUint is one row of a generalized distributive vector result.
type GroupUint struct {
	Key uint64
	Val uint64
}

// HolisticFunc aggregates one group's complete value multiset. The slice
// may be reordered by the function (Median and Quantile select in place)
// but must not be retained.
type HolisticFunc func(values []uint64) float64

// reduceState folds values for one group. The paper's early-aggregation
// rule: the state is updated in place on every record of the group.
type reduceState struct {
	val  uint64
	seen bool
}

func (s *reduceState) fold(op ReduceOp, v uint64) {
	switch op {
	case OpCount:
		s.val++
	case OpSum:
		s.val += v
	case OpMin:
		if !s.seen || v < s.val {
			s.val = v
		}
	case OpMax:
		if !s.seen || v > s.val {
			s.val = v
		}
	}
	s.seen = true
}

// valueAt treats a short values column as zero-extended, matching the
// other operators.
func valueAt(vals []uint64, i int) uint64 {
	if i < len(vals) {
		return vals[i]
	}
	return 0
}

// Reducer is implemented by every Engine in this package; it is split from
// Engine so the original paper surface stays recognizable. Use
// AsReducer to access it.
type Reducer interface {
	// VectorReduce executes SELECT key, op(val) ... GROUP BY key for a
	// distributive op.
	VectorReduce(keys, vals []uint64, op ReduceOp) []GroupUint
	// VectorHolistic executes SELECT key, fn(vals of group) ... GROUP BY
	// key for a holistic fn.
	VectorHolistic(keys, vals []uint64, fn HolisticFunc) []GroupFloat
}

// AsReducer exposes the generalized operators of an engine created by this
// package.
func AsReducer(e Engine) Reducer { return e.(Reducer) }

// --- sort engine ---------------------------------------------------------------

func (e *sortEngine) VectorReduce(keys, vals []uint64, op ReduceOp) []GroupUint {
	if len(keys) == 0 {
		return nil
	}
	buf := e.copyKV(keys, vals)
	e.sortKV(buf)
	var out []GroupUint
	var st reduceState
	cur := buf[0].K
	for _, r := range buf {
		if r.K != cur {
			out = append(out, GroupUint{Key: cur, Val: st.val})
			cur, st = r.K, reduceState{}
		}
		st.fold(op, r.V)
	}
	out = append(out, GroupUint{Key: cur, Val: st.val})
	e.releaseKV(buf)
	return out
}

func (e *sortEngine) VectorHolistic(keys, vals []uint64, fn HolisticFunc) []GroupFloat {
	if len(keys) == 0 {
		return nil
	}
	buf := e.copyKV(keys, vals)
	e.sortKV(buf)
	var out []GroupFloat
	scratch := make([]uint64, 0, 64)
	start := 0
	for i := 1; i <= len(buf); i++ {
		if i == len(buf) || buf[i].K != buf[start].K {
			scratch = scratch[:0]
			for _, r := range buf[start:i] {
				scratch = append(scratch, r.V)
			}
			out = append(out, GroupFloat{Key: buf[start].K, Val: fn(scratch)})
			start = i
		}
	}
	e.releaseKV(buf)
	return out
}

// --- hash engine ---------------------------------------------------------------

// VectorReduce folds with the per-op kernels of kernels.go: the ReduceOp
// dispatch happens once per query, not once per row.
func (e *hashEngine) VectorReduce(keys, vals []uint64, op ReduceOp) []GroupUint {
	t := e.newReduce(sizeHint(len(keys)))
	buildReduce(t, keys, vals, op)
	out := make([]GroupUint, 0, t.Len())
	t.Iterate(func(k uint64, st *reduceState) bool {
		out = append(out, GroupUint{Key: k, Val: st.val})
		return true
	})
	return out
}

func (e *hashEngine) VectorHolistic(keys, vals []uint64, fn HolisticFunc) []GroupFloat {
	if e.alloc == AllocArena {
		ar := arenas.Get()
		defer arenas.Put(ar)
		t := e.newAList(sizeHint(len(keys)))
		buildArenaList(t, ar, keys, vals)
		return emitHolisticArena(t, ar, fn)
	}
	t := e.newList(sizeHint(len(keys)))
	buildList(t, keys, vals)
	return emitHolistic(t, fn)
}

// --- tree engine ---------------------------------------------------------------

func (e *treeEngine) VectorReduce(keys, vals []uint64, op ReduceOp) []GroupUint {
	t := e.newReduce()
	buildReduce(t, keys, vals, op)
	out := make([]GroupUint, 0, t.Len())
	t.Iterate(func(k uint64, st *reduceState) bool {
		out = append(out, GroupUint{Key: k, Val: st.val})
		return true
	})
	return out
}

func (e *treeEngine) VectorHolistic(keys, vals []uint64, fn HolisticFunc) []GroupFloat {
	if e.alloc == AllocArena {
		ar := arenas.Get()
		defer arenas.Put(ar)
		t := e.newAList()
		buildArenaList(t, ar, keys, vals)
		return emitHolisticArena(t, ar, fn)
	}
	t := e.newList()
	buildList(t, keys, vals)
	return emitHolistic(t, fn)
}

// --- concurrent engines ----------------------------------------------------------

func (e *cuckooEngine) VectorReduce(keys, vals []uint64, op ReduceOp) []GroupUint {
	m := newCuckooReduce(sizeHint(len(keys)))
	parallelChunks(len(keys), e.workers(), e.forcePar(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := valueAt(vals, i)
			m.Upsert(keys[i], func(st *reduceState, _ bool) { st.fold(op, v) })
		}
	})
	out := make([]GroupUint, 0, m.Len())
	m.Iterate(func(k uint64, st *reduceState) bool {
		out = append(out, GroupUint{Key: k, Val: st.val})
		return true
	})
	return out
}

func (e *cuckooEngine) VectorHolistic(keys, vals []uint64, fn HolisticFunc) []GroupFloat {
	m := newCuckooList(sizeHint(len(keys)))
	parallelChunks(len(keys), e.workers(), e.forcePar(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := valueAt(vals, i)
			m.Upsert(keys[i], func(lst *[]uint64, _ bool) { *lst = append(*lst, v) })
		}
	})
	out := make([]GroupFloat, 0, m.Len())
	m.Iterate(func(k uint64, lst *[]uint64) bool {
		out = append(out, GroupFloat{Key: k, Val: fn(*lst)})
		return true
	})
	return out
}

func (e *tbbEngine) VectorReduce(keys, vals []uint64, op ReduceOp) []GroupUint {
	m := newTBBReduce(sizeHint(len(keys)))
	parallelChunks(len(keys), e.workers(), e.forcePar(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := valueAt(vals, i)
			m.Upsert(keys[i], func(st *reduceState) { st.fold(op, v) })
		}
	})
	out := make([]GroupUint, 0, m.Len())
	m.Iterate(func(k uint64, st *reduceState) bool {
		out = append(out, GroupUint{Key: k, Val: st.val})
		return true
	})
	return out
}

func (e *tbbEngine) VectorHolistic(keys, vals []uint64, fn HolisticFunc) []GroupFloat {
	m := newTBBList(sizeHint(len(keys)))
	parallelChunks(len(keys), e.workers(), e.forcePar(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := valueAt(vals, i)
			m.Upsert(keys[i], func(lst *[]uint64) { *lst = append(*lst, v) })
		}
	})
	out := make([]GroupFloat, 0, m.Len())
	m.Iterate(func(k uint64, lst *[]uint64) bool {
		out = append(out, GroupFloat{Key: k, Val: fn(*lst)})
		return true
	})
	return out
}

// --- scalar generalizations -------------------------------------------------------

// ScalarSum, ScalarMin, ScalarMax, ScalarMode and ScalarQuantile extend the
// Q4/Q5 scalar family with the remaining kernel functions. They need no
// grouping structure.

// ScalarSum returns SUM over a column.
func ScalarSum(vals []uint64) uint64 { return Sum(vals) }

// ScalarMin returns MIN over a column; ok is false for empty input.
func ScalarMin(vals []uint64) (uint64, bool) { return Min(vals) }

// ScalarMax returns MAX over a column; ok is false for empty input.
func ScalarMax(vals []uint64) (uint64, bool) { return Max(vals) }

// ScalarMode returns the most frequent value (holistic). It copies the
// input (Mode reorders its argument).
func ScalarMode(vals []uint64) (uint64, int, bool) {
	return Mode(append([]uint64(nil), vals...))
}

// ScalarQuantile returns the q-quantile by nearest rank (holistic). It
// copies the input.
func ScalarQuantile(vals []uint64, q float64) uint64 {
	return Quantile(append([]uint64(nil), vals...), q)
}

// QuantileFunc adapts Quantile to a HolisticFunc.
func QuantileFunc(q float64) HolisticFunc {
	return func(values []uint64) float64 { return float64(Quantile(values, q)) }
}

// ModeFunc is the HolisticFunc computing each group's mode.
func ModeFunc(values []uint64) float64 {
	v, _, ok := Mode(values)
	if !ok {
		return 0
	}
	return float64(v)
}

// MedianFunc is the HolisticFunc computing each group's median; it matches
// VectorMedian exactly.
func MedianFunc(values []uint64) float64 { return Median(values) }

// compile-time checks: every engine implements Reducer.
var (
	_ Reducer = (*sortEngine)(nil)
	_ Reducer = (*hashEngine)(nil)
	_ Reducer = (*treeEngine)(nil)
	_ Reducer = (*cuckooEngine)(nil)
	_ Reducer = (*tbbEngine)(nil)
	_ Reducer = (*platEngine)(nil)
	_ Reducer = (*radixEngine)(nil)
	_ Reducer = (*globalEngine)(nil)
	_ Reducer = (*adaptiveEngine)(nil)
)

func newCuckooReduce(n int) *cuckoo.Map[reduceState] { return cuckoo.New[reduceState](n) }
func newCuckooList(n int) *cuckoo.Map[[]uint64]      { return cuckoo.New[[]uint64](n) }
func newTBBReduce(n int) *chash.Map[reduceState]     { return chash.New[reduceState](n, 0) }
func newTBBList(n int) *chash.Map[[]uint64]          { return chash.New[[]uint64](n, 0) }
