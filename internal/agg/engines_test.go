package agg

import (
	"errors"
	"math"
	"sort"
	"testing"

	"memagg/internal/dataset"
)

// refVectorCount computes Q1 with a plain Go map as the reference model.
func refVectorCount(keys []uint64) map[uint64]uint64 {
	m := map[uint64]uint64{}
	for _, k := range keys {
		m[k]++
	}
	return m
}

func refVectorAvg(keys, vals []uint64) map[uint64]float64 {
	sum := map[uint64]uint64{}
	cnt := map[uint64]uint64{}
	for i, k := range keys {
		sum[k] += vals[i]
		cnt[k]++
	}
	out := map[uint64]float64{}
	for k := range cnt {
		out[k] = float64(sum[k]) / float64(cnt[k])
	}
	return out
}

func refVectorMedian(keys, vals []uint64) map[uint64]float64 {
	groups := map[uint64][]uint64{}
	for i, k := range keys {
		groups[k] = append(groups[k], vals[i])
	}
	out := map[uint64]float64{}
	for k, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		out[k] = MedianSorted(g)
	}
	return out
}

func refScalarMedian(keys []uint64) float64 {
	s := append([]uint64(nil), keys...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return MedianSorted(s)
}

// allEngines returns every engine (serial + Ttree + concurrent at 4
// threads) so the equivalence tests cover the full matrix.
func allEngines() []Engine {
	es := Engines()
	es = append(es, Ttree())
	es = append(es, ConcurrentEngines(4)...)
	return es
}

func testData(t *testing.T) (keys, vals []uint64) {
	t.Helper()
	keys = dataset.Spec{Kind: dataset.Zipf, N: 30000, Cardinality: 700, Seed: 21}.Keys()
	vals = dataset.Values(len(keys), 21)
	return keys, vals
}

// TestAllEnginesAgreeOnQ1 is the central integration test: every algorithm
// must produce the identical Q1 result set.
func TestAllEnginesAgreeOnQ1(t *testing.T) {
	for _, kind := range dataset.Kinds {
		keys := dataset.Spec{Kind: kind, N: 20000, Cardinality: 300, Seed: 9}.Keys()
		want := refVectorCount(keys)
		for _, e := range allEngines() {
			got := e.VectorCount(keys)
			if len(got) != len(want) {
				t.Fatalf("%s/%v: %d groups want %d", e.Name(), kind, len(got), len(want))
			}
			for _, g := range got {
				if want[g.Key] != g.Count {
					t.Fatalf("%s/%v: key %d count %d want %d",
						e.Name(), kind, g.Key, g.Count, want[g.Key])
				}
			}
			assertOrderedIfOrdered(t, e, got)
		}
	}
}

// assertOrderedIfOrdered verifies sort/tree engines return key-ascending
// results (their documented natural order).
func assertOrderedIfOrdered(t *testing.T, e Engine, got []GroupCount) {
	t.Helper()
	if e.Category() == HashBased {
		return
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key <= got[i-1].Key {
			t.Fatalf("%s: result not key-ordered", e.Name())
		}
	}
}

func TestAllEnginesAgreeOnQ2(t *testing.T) {
	keys, vals := testData(t)
	want := refVectorAvg(keys, vals)
	for _, e := range allEngines() {
		got := e.VectorAvg(keys, vals)
		if len(got) != len(want) {
			t.Fatalf("%s: %d groups want %d", e.Name(), len(got), len(want))
		}
		for _, g := range got {
			if math.Abs(g.Val-want[g.Key]) > 1e-9 {
				t.Fatalf("%s: key %d avg %v want %v", e.Name(), g.Key, g.Val, want[g.Key])
			}
		}
	}
}

func TestAllEnginesAgreeOnQ3(t *testing.T) {
	keys, vals := testData(t)
	want := refVectorMedian(keys, vals)
	for _, e := range allEngines() {
		got := e.VectorMedian(keys, vals)
		if len(got) != len(want) {
			t.Fatalf("%s: %d groups want %d", e.Name(), len(got), len(want))
		}
		for _, g := range got {
			if g.Val != want[g.Key] {
				t.Fatalf("%s: key %d median %v want %v", e.Name(), g.Key, g.Val, want[g.Key])
			}
		}
	}
}

func TestScalarQueries(t *testing.T) {
	keys, vals := testData(t)
	if ScalarCount(keys) != uint64(len(keys)) {
		t.Fatal("Q4")
	}
	if math.Abs(ScalarAvg(vals)-Avg(vals)) > 1e-12 {
		t.Fatal("Q5")
	}
	want := refScalarMedian(keys)
	for _, e := range allEngines() {
		got, err := e.ScalarMedian(keys)
		if errors.Is(err, ErrUnsupported) {
			if e.Category() != HashBased {
				t.Fatalf("%s: non-hash engine rejected Q6", e.Name())
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if got != want {
			t.Fatalf("%s: Q6 = %v want %v", e.Name(), got, want)
		}
	}
}

func TestScalarMedianEvenOdd(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 999, 1000} {
		keys := dataset.Random(n, 1, 50, uint64(n))
		want := refScalarMedian(keys)
		for _, e := range ScalarEngines() {
			got, err := e.ScalarMedian(keys)
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			if got != want {
				t.Fatalf("%s n=%d: Q6 = %v want %v", e.Name(), n, got, want)
			}
		}
	}
}

func TestVectorCountRange(t *testing.T) {
	keys, _ := testData(t)
	lo, hi := uint64(100), uint64(400)
	want := map[uint64]uint64{}
	for k, c := range refVectorCount(keys) {
		if k >= lo && k <= hi {
			want[k] = c
		}
	}
	for _, e := range allEngines() {
		got, err := e.VectorCountRange(keys, lo, hi)
		if errors.Is(err, ErrUnsupported) {
			if e.Category() != HashBased {
				t.Fatalf("%s: non-hash engine rejected Q7", e.Name())
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d groups want %d", e.Name(), len(got), len(want))
		}
		for _, g := range got {
			if g.Key < lo || g.Key > hi {
				t.Fatalf("%s: key %d outside range", e.Name(), g.Key)
			}
			if want[g.Key] != g.Count {
				t.Fatalf("%s: key %d count %d want %d", e.Name(), g.Key, g.Count, want[g.Key])
			}
		}
	}
}

func TestRangeEdgeCases(t *testing.T) {
	keys := []uint64{10, 20, 30, 20}
	for _, e := range TreeEngines() {
		// Empty range (lo > hi) yields nil, nil.
		got, err := e.VectorCountRange(keys, 5, 1)
		if err != nil || got != nil {
			t.Fatalf("%s: inverted range = %v, %v", e.Name(), got, err)
		}
		// Point range.
		got, err = e.VectorCountRange(keys, 20, 20)
		if err != nil || len(got) != 1 || got[0].Count != 2 {
			t.Fatalf("%s: point range = %v, %v", e.Name(), got, err)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	for _, e := range allEngines() {
		if got := e.VectorCount(nil); len(got) != 0 {
			t.Fatalf("%s: Q1 on empty = %v", e.Name(), got)
		}
		if got := e.VectorMedian(nil, nil); len(got) != 0 {
			t.Fatalf("%s: Q3 on empty = %v", e.Name(), got)
		}
		if got, err := e.ScalarMedian(nil); err == nil && got != 0 {
			t.Fatalf("%s: Q6 on empty = %v", e.Name(), got)
		}
	}
}

func TestSingleGroup(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = 42
	}
	for _, e := range allEngines() {
		got := e.VectorCount(keys)
		if len(got) != 1 || got[0].Key != 42 || got[0].Count != 1000 {
			t.Fatalf("%s: single group = %v", e.Name(), got)
		}
	}
}

func TestAllDistinctKeys(t *testing.T) {
	keys := dataset.Sequential(5000)
	for _, e := range allEngines() {
		got := e.VectorCount(keys)
		if len(got) != 5000 {
			t.Fatalf("%s: %d groups want 5000", e.Name(), len(got))
		}
		for _, g := range got {
			if g.Count != 1 {
				t.Fatalf("%s: key %d count %d want 1", e.Name(), g.Key, g.Count)
			}
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	keys, vals := testData(t)
	kcopy := append([]uint64(nil), keys...)
	vcopy := append([]uint64(nil), vals...)
	for _, e := range allEngines() {
		e.VectorCount(keys)
		e.VectorMedian(keys, vals)
		e.ScalarMedian(keys)
	}
	for i := range keys {
		if keys[i] != kcopy[i] || vals[i] != vcopy[i] {
			t.Fatal("an engine mutated its input")
		}
	}
}

func TestByName(t *testing.T) {
	for _, want := range []string{"Hash_LP", "ART", "Spreadsort", "Ttree"} {
		e, err := ByName(want)
		if err != nil || e.Name() != want {
			t.Fatalf("ByName(%q) = %v, %v", want, e, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted garbage")
	}
}

func TestRegistryShape(t *testing.T) {
	if n := len(Engines()); n != 10 {
		t.Fatalf("Engines() has %d entries, want the paper's 10", n)
	}
	if n := len(ConcurrentEngines(2)); n != 6 {
		t.Fatalf("ConcurrentEngines() has %d entries, want the Table 8 four plus Hash_RX and Hash_GLB", n)
	}
	names := map[string]bool{}
	for _, e := range Engines() {
		if names[e.Name()] {
			t.Fatalf("duplicate engine name %s", e.Name())
		}
		names[e.Name()] = true
	}
}

func TestConcurrentEnginesThreadCounts(t *testing.T) {
	keys := dataset.Spec{Kind: dataset.Rseq, N: 50000, Cardinality: 1000, Seed: 2}.Keys()
	want := refVectorCount(keys)
	for _, p := range []int{1, 2, 8} {
		for _, e := range ConcurrentEngines(p) {
			got := e.VectorCount(keys)
			if len(got) != len(want) {
				t.Fatalf("%s(p=%d): %d groups want %d", e.Name(), p, len(got), len(want))
			}
		}
	}
}
