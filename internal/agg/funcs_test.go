package agg

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"memagg/internal/dataset"
)

func TestSumMinMaxAvg(t *testing.T) {
	a := []uint64{5, 1, 9, 3}
	if Sum(a) != 18 {
		t.Fatal("Sum")
	}
	if v, ok := Min(a); !ok || v != 1 {
		t.Fatal("Min")
	}
	if v, ok := Max(a); !ok || v != 9 {
		t.Fatal("Max")
	}
	if Avg(a) != 4.5 {
		t.Fatal("Avg")
	}
	if _, ok := Min(nil); ok {
		t.Fatal("Min on empty should report not-ok")
	}
	if _, ok := Max(nil); ok {
		t.Fatal("Max on empty should report not-ok")
	}
	if Avg(nil) != 0 || Sum(nil) != 0 {
		t.Fatal("empty Sum/Avg")
	}
}

func TestMedianSmallCases(t *testing.T) {
	cases := []struct {
		in   []uint64
		want float64
	}{
		{nil, 0},
		{[]uint64{7}, 7},
		{[]uint64{1, 3}, 2},
		{[]uint64{3, 1, 2}, 2},
		{[]uint64{4, 1, 3, 2}, 2.5},
		{[]uint64{5, 5, 5, 5}, 5},
		{[]uint64{1, 1, 2, 100}, 1.5},
	}
	for _, c := range cases {
		in := append([]uint64(nil), c.in...)
		if got := Median(in); got != c.want {
			t.Errorf("Median(%v) = %v want %v", c.in, got, c.want)
		}
	}
}

func TestMedianMatchesSortDefinition(t *testing.T) {
	f := func(a []uint64) bool {
		cp := append([]uint64(nil), a...)
		got := Median(cp)
		s := append([]uint64(nil), a...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		want := MedianSorted(s)
		return got == want || (math.IsNaN(got) && math.IsNaN(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMedianPreservesMultiset(t *testing.T) {
	a := dataset.Random(1001, 1, 100, 3)
	before := append([]uint64(nil), a...)
	sort.Slice(before, func(i, j int) bool { return before[i] < before[j] })
	Median(a)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	for i := range a {
		if a[i] != before[i] {
			t.Fatal("Median changed the multiset")
		}
	}
}

func TestSelectAgainstSort(t *testing.T) {
	f := func(a []uint64, kr uint16) bool {
		if len(a) == 0 {
			return true
		}
		k := int(kr) % len(a)
		cp := append([]uint64(nil), a...)
		got := Select(cp, k)
		s := append([]uint64(nil), a...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return got == s[k]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	a := dataset.Sequential(101) // 1..101
	if q := Quantile(append([]uint64(nil), a...), 0); q != 1 {
		t.Fatalf("q0=%d", q)
	}
	if q := Quantile(append([]uint64(nil), a...), 1); q != 101 {
		t.Fatalf("q1=%d", q)
	}
	if q := Quantile(append([]uint64(nil), a...), 0.5); q != 51 {
		t.Fatalf("q.5=%d", q)
	}
	// Out-of-range q clamps.
	if q := Quantile(append([]uint64(nil), a...), -3); q != 1 {
		t.Fatalf("q<0 = %d", q)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestMode(t *testing.T) {
	v, c, ok := Mode([]uint64{3, 1, 3, 2, 3, 1})
	if !ok || v != 3 || c != 3 {
		t.Fatalf("Mode = %d×%d", v, c)
	}
	// Tie breaks toward the smaller value.
	v, c, ok = Mode([]uint64{2, 2, 1, 1})
	if !ok || v != 1 || c != 2 {
		t.Fatalf("tie Mode = %d×%d", v, c)
	}
	if _, _, ok := Mode(nil); ok {
		t.Fatal("Mode on empty")
	}
}

func TestMedianSorted(t *testing.T) {
	if MedianSorted([]uint64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even")
	}
	if MedianSorted([]uint64{1, 2, 3}) != 2 {
		t.Fatal("odd")
	}
}
