package agg

import (
	"testing"

	"memagg/internal/dataset"
)

// TestQ3AllocBudget is the allocs-regression gate wired into scripts/ci.sh:
// the arena configuration of the reference engine must keep the holistic Q3
// hot path near allocation-free in the steady state (pools warmed), and the
// go-runtime configuration must demonstrate the gap the arena exists to
// close. Budgets are deliberately loose (~2× the measured values) so the
// test flags an architectural regression — a per-row or per-group
// allocation creeping back into the build loop — not allocator noise.
func TestQ3AllocBudget(t *testing.T) {
	const (
		n    = 1 << 16
		card = 1 << 12

		// arenaBudget bounds allocs/op for the warmed arena engine. The
		// steady state measures ~10 (the result rows and table backing
		// arrays; the value lists and scratch all come from the pooled
		// arena).
		arenaBudget = 64

		// minRatio is the go-runtime : arena allocs ratio the design
		// claims. Measured ~4000× (one alloc per list growth per group
		// vs near-zero); 10× is the acceptance floor.
		minRatio = 10
	)
	keys := dataset.Spec{Kind: dataset.RseqShf, N: n, Cardinality: card, Seed: 7}.Keys()
	vals := dataset.Values(n, 7)

	arenaEng := AsReducer(WithAllocator(HashLP(), AllocArena))
	goEng := AsReducer(HashLP())
	arenaEng.VectorHolistic(keys, vals, MedianFunc) // warm the pools

	arenaAllocs := testing.AllocsPerRun(3, func() {
		arenaEng.VectorHolistic(keys, vals, MedianFunc)
	})
	goAllocs := testing.AllocsPerRun(3, func() {
		goEng.VectorHolistic(keys, vals, MedianFunc)
	})
	t.Logf("Q3 allocs/op (n=%d, card=%d): go-runtime=%.0f arena=%.0f ratio=%.0fx",
		n, card, goAllocs, arenaAllocs, goAllocs/max(arenaAllocs, 1))

	if arenaAllocs > arenaBudget {
		t.Errorf("arena Q3 allocs/op = %.0f, budget %d: an allocation crept back into the hot path", arenaAllocs, arenaBudget)
	}
	if goAllocs < minRatio*max(arenaAllocs, 1) {
		t.Errorf("go-runtime/arena allocs ratio = %.1fx, want >= %dx (go=%.0f arena=%.0f)",
			goAllocs/max(arenaAllocs, 1), minRatio, goAllocs, arenaAllocs)
	}
}
