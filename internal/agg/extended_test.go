package agg

import (
	"math"
	"sort"
	"testing"

	"memagg/internal/dataset"
)

// reducerEngines is every engine that implements the generalized surface,
// including the two extension engines.
func reducerEngines() []Engine {
	es := allEngines()
	es = append(es, HashPLAT(4), Adaptive())
	return es
}

func refReduce(keys, vals []uint64, op ReduceOp) map[uint64]uint64 {
	out := map[uint64]uint64{}
	seen := map[uint64]bool{}
	for i, k := range keys {
		v := valueAt(vals, i)
		switch op {
		case OpCount:
			out[k]++
		case OpSum:
			out[k] += v
		case OpMin:
			if !seen[k] || v < out[k] {
				out[k] = v
			}
		case OpMax:
			if !seen[k] || v > out[k] {
				out[k] = v
			}
		}
		seen[k] = true
	}
	return out
}

func TestVectorReduceAllOpsAllEngines(t *testing.T) {
	keys, vals := testData(t)
	for _, op := range []ReduceOp{OpCount, OpSum, OpMin, OpMax} {
		want := refReduce(keys, vals, op)
		for _, e := range reducerEngines() {
			got := AsReducer(e).VectorReduce(keys, vals, op)
			if len(got) != len(want) {
				t.Fatalf("%s/%s: %d groups want %d", e.Name(), op, len(got), len(want))
			}
			for _, g := range got {
				if want[g.Key] != g.Val {
					t.Fatalf("%s/%s: key %d = %d want %d",
						e.Name(), op, g.Key, g.Val, want[g.Key])
				}
			}
		}
	}
}

func TestVectorReduceCountMatchesVectorCount(t *testing.T) {
	keys, _ := testData(t)
	for _, e := range reducerEngines() {
		counts := map[uint64]uint64{}
		for _, g := range e.VectorCount(keys) {
			counts[g.Key] = g.Count
		}
		for _, g := range AsReducer(e).VectorReduce(keys, nil, OpCount) {
			if counts[g.Key] != g.Val {
				t.Fatalf("%s: VectorReduce(COUNT) disagrees with VectorCount at key %d",
					e.Name(), g.Key)
			}
		}
	}
}

func TestVectorHolisticQuantileAndMode(t *testing.T) {
	keys, vals := testData(t)
	// Reference per-group quantile and mode.
	groups := map[uint64][]uint64{}
	for i, k := range keys {
		groups[k] = append(groups[k], vals[i])
	}
	wantQ := map[uint64]float64{}
	wantM := map[uint64]float64{}
	for k, g := range groups {
		cp := append([]uint64(nil), g...)
		wantQ[k] = float64(Quantile(cp, 0.9))
		cp = append(cp[:0:0], g...)
		v, _, _ := Mode(cp)
		wantM[k] = float64(v)
	}
	for _, e := range reducerEngines() {
		r := AsReducer(e)
		for _, g := range r.VectorHolistic(keys, vals, QuantileFunc(0.9)) {
			if g.Val != wantQ[g.Key] {
				t.Fatalf("%s: p90 of key %d = %v want %v", e.Name(), g.Key, g.Val, wantQ[g.Key])
			}
		}
		for _, g := range r.VectorHolistic(keys, vals, ModeFunc) {
			if g.Val != wantM[g.Key] {
				t.Fatalf("%s: mode of key %d = %v want %v", e.Name(), g.Key, g.Val, wantM[g.Key])
			}
		}
	}
}

func TestVectorHolisticMedianMatchesVectorMedian(t *testing.T) {
	keys, vals := testData(t)
	for _, e := range reducerEngines() {
		want := map[uint64]float64{}
		for _, g := range e.VectorMedian(keys, vals) {
			want[g.Key] = g.Val
		}
		for _, g := range AsReducer(e).VectorHolistic(keys, vals, MedianFunc) {
			if want[g.Key] != g.Val {
				t.Fatalf("%s: holistic median disagrees at key %d", e.Name(), g.Key)
			}
		}
	}
}

func TestReduceEmptyInput(t *testing.T) {
	for _, e := range reducerEngines() {
		if got := AsReducer(e).VectorReduce(nil, nil, OpSum); len(got) != 0 {
			t.Fatalf("%s: reduce on empty = %v", e.Name(), got)
		}
		if got := AsReducer(e).VectorHolistic(nil, nil, MedianFunc); len(got) != 0 {
			t.Fatalf("%s: holistic on empty = %v", e.Name(), got)
		}
	}
}

func TestScalarExtensions(t *testing.T) {
	vals := []uint64{5, 1, 5, 9, 5, 2}
	if ScalarSum(vals) != 27 {
		t.Fatal("ScalarSum")
	}
	if v, ok := ScalarMin(vals); !ok || v != 1 {
		t.Fatal("ScalarMin")
	}
	if v, ok := ScalarMax(vals); !ok || v != 9 {
		t.Fatal("ScalarMax")
	}
	if v, c, ok := ScalarMode(vals); !ok || v != 5 || c != 3 {
		t.Fatal("ScalarMode")
	}
	if ScalarQuantile(vals, 0) != 1 {
		t.Fatal("ScalarQuantile")
	}
	// The copies must leave the input untouched.
	if vals[0] != 5 || vals[5] != 2 {
		t.Fatal("scalar extension mutated input")
	}
}

func TestReduceStateCombine(t *testing.T) {
	cases := []struct {
		op   ReduceOp
		a, b uint64
		want uint64
	}{
		{OpCount, 3, 4, 7},
		{OpSum, 3, 4, 7},
		{OpMin, 3, 4, 3},
		{OpMax, 3, 4, 4},
	}
	for _, c := range cases {
		s := reduceState{val: c.a, seen: true}
		s.combine(c.op, reduceState{val: c.b, seen: true})
		if s.val != c.want {
			t.Errorf("%s: combine(%d,%d)=%d want %d", c.op, c.a, c.b, s.val, c.want)
		}
	}
	// Combining with an unseen state is a no-op; combining into an unseen
	// state adopts the other side.
	s := reduceState{val: 9, seen: true}
	s.combine(OpMin, reduceState{})
	if s.val != 9 {
		t.Fatal("combine with unseen changed state")
	}
	var empty reduceState
	empty.combine(OpMin, reduceState{val: 2, seen: true})
	if empty.val != 2 || !empty.seen {
		t.Fatal("combine into unseen failed")
	}
}

func TestReduceOpString(t *testing.T) {
	if OpCount.String() != "COUNT" || OpMax.String() != "MAX" {
		t.Fatal("ReduceOp.String")
	}
}

// --- PLAT engine ---------------------------------------------------------------

func TestPLATMatchesReferenceAcrossThreadCounts(t *testing.T) {
	keys := dataset.Spec{Kind: dataset.HhitShf, N: 60000, Cardinality: 900, Seed: 13}.Keys()
	vals := dataset.Values(len(keys), 13)
	want := refVectorCount(keys)
	wantMed := refVectorMedian(keys, vals)
	for _, p := range []int{1, 2, 3, 8} {
		e := HashPLAT(p)
		got := e.VectorCount(keys)
		if len(got) != len(want) {
			t.Fatalf("p=%d: %d groups want %d", p, len(got), len(want))
		}
		for _, g := range got {
			if want[g.Key] != g.Count {
				t.Fatalf("p=%d: key %d count %d want %d", p, g.Key, g.Count, want[g.Key])
			}
		}
		for _, g := range e.VectorMedian(keys, vals) {
			if wantMed[g.Key] != g.Val {
				t.Fatalf("p=%d: key %d median %v want %v", p, g.Key, g.Val, wantMed[g.Key])
			}
		}
	}
}

func TestPLATNoDuplicateGroupsAcrossPartitions(t *testing.T) {
	keys := dataset.Spec{Kind: dataset.Zipf, N: 40000, Cardinality: 5000, Seed: 4}.Keys()
	got := HashPLAT(7).VectorCount(keys)
	seen := map[uint64]bool{}
	for _, g := range got {
		if seen[g.Key] {
			t.Fatalf("key %d emitted by two partitions", g.Key)
		}
		seen[g.Key] = true
	}
}

func TestPLATUnsupported(t *testing.T) {
	e := HashPLAT(2)
	if _, err := e.ScalarMedian([]uint64{1}); err != ErrUnsupported {
		t.Fatal("PLAT should reject Q6")
	}
	if _, err := e.VectorCountRange([]uint64{1}, 0, 1); err != ErrUnsupported {
		t.Fatal("PLAT should reject Q7")
	}
}

// --- adaptive engine -------------------------------------------------------------

func TestAdaptiveChoosesHashAtLowCardinality(t *testing.T) {
	e := Adaptive().(*adaptiveEngine)
	low := dataset.Spec{Kind: dataset.RseqShf, N: 100000, Cardinality: 100, Seed: 1}.Keys()
	if got := e.choose(low); got.Category() != HashBased {
		t.Fatalf("low cardinality chose %s", got.Name())
	}
	high := dataset.Sequential(100000) // every key distinct
	if got := e.choose(high); got.Category() != SortBased {
		t.Fatalf("high cardinality chose %s", got.Name())
	}
}

func TestAdaptiveCorrectEitherWay(t *testing.T) {
	for _, card := range []int{50, 40000} {
		keys := dataset.Spec{Kind: dataset.RseqShf, N: 50000, Cardinality: card, Seed: 2}.Keys()
		vals := dataset.Values(len(keys), 2)
		e := Adaptive()
		want := refVectorCount(keys)
		got := e.VectorCount(keys)
		if len(got) != len(want) {
			t.Fatalf("card=%d: %d groups want %d", card, len(got), len(want))
		}
		m, err := e.ScalarMedian(keys)
		if err != nil || m != refScalarMedian(keys) {
			t.Fatalf("card=%d: adaptive Q6 = %v, %v", card, m, err)
		}
		if _, err := e.VectorCountRange(keys, 1, uint64(card/2+1)); err != nil {
			t.Fatalf("card=%d: adaptive Q7: %v", card, err)
		}
		med := e.VectorMedian(keys, vals)
		wantMed := refVectorMedian(keys, vals)
		for _, g := range med {
			if math.Abs(g.Val-wantMed[g.Key]) > 0 {
				t.Fatalf("card=%d: adaptive median wrong at key %d", card, g.Key)
			}
		}
	}
}

func TestAdaptiveOrderedWhenSortChosen(t *testing.T) {
	keys := dataset.Sequential(80000)
	rows := Adaptive().VectorCount(keys)
	if !sort.SliceIsSorted(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key }) {
		t.Fatal("sort-routed adaptive output not ordered")
	}
}
