package agg

// Result collects the per-partition (or per-worker) output slices a
// partitioned engine produces before emission: partition p's rows live in
// r[p]. Because the partitioned schedules assign every key to exactly one
// partition, the slices are disjoint by key and the full query result is
// their plain concatenation.
//
// Merge performs that concatenation with a single pre-sized allocation. It
// replaces the hand-rolled total/append loops that rxRun, platRun and the
// phase-split benchmark paths each carried separately.
type Result[R any] [][]R

// Rows returns the total row count across all partitions — the exact
// pre-size Merge allocates.
func (r Result[R]) Rows() int {
	total := 0
	for _, part := range r {
		total += len(part)
	}
	return total
}

// Merge concatenates the per-partition slices into the final result, in
// partition order, with one allocation.
func (r Result[R]) Merge() []R {
	out := make([]R, 0, r.Rows())
	for _, part := range r {
		out = append(out, part...)
	}
	return out
}
