package agg

import (
	"sort"
	"testing"

	"memagg/internal/dataset"
)

// equivEngines is the matrix for the randomized cross-engine equivalence
// gate: every serial engine, Ttree, the concurrent engines at several
// explicit thread counts, the partitioned extension engines and the
// hybrid — each of the allocator-aware engines additionally in its arena
// configuration (Dimension 6 must not change any result).
func equivEngines() []Engine {
	es := Engines()
	es = append(es, Ttree())
	for _, p := range []int{1, 2, 5, 8} {
		es = append(es, ConcurrentEngines(p)...)
		es = append(es, HashPLAT(p))
	}
	es = append(es, Adaptive())
	for _, e := range append(Engines(), Ttree(), HashRX(4), HashGLB(4), Adaptive()) {
		if a := WithAllocator(e, AllocArena); EngineAllocator(a) == AllocArena {
			es = append(es, a)
		}
	}
	return es
}

// equivSpecs covers both sides of Hash_RX's serial cutoff (1<<15) with a
// uniform and a heavy-hitter skewed distribution each, at low and high
// group-by cardinality.
func equivSpecs() []dataset.Spec {
	small, large := rxSerialCutoff/16, 3*rxSerialCutoff
	return []dataset.Spec{
		{Kind: dataset.RseqShf, N: small, Cardinality: 97, Seed: 41},
		{Kind: dataset.Zipf, N: small, Cardinality: 500, Seed: 42},
		{Kind: dataset.RseqShf, N: large, Cardinality: 120, Seed: 43},
		{Kind: dataset.RseqShf, N: large, Cardinality: 40000, Seed: 44},
		{Kind: dataset.Zipf, N: large, Cardinality: 20000, Seed: 45},
		{Kind: dataset.HhitShf, N: large, Cardinality: 5000, Seed: 46},
	}
}

func sortedQ1(rows []GroupCount) []GroupCount {
	out := append([]GroupCount(nil), rows...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func sortedQF(rows []GroupFloat) []GroupFloat {
	out := append([]GroupFloat(nil), rows...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// TestEnginesEquivalentToReference is the correctness gate for the full
// engine matrix: on randomized datasets, every engine's key-sorted Q1, Q2
// and Q3 output must match the serial Hash_LP reference EXACTLY — Q2
// included, because every engine computes avg as one float64 division of
// exact uint64 sums.
// TestHolisticEquivalentAcrossAllocators runs the generalized holistic
// operators (median and 90th-percentile quantile) with both allocator
// settings on every allocator-aware engine: the arena's chunked value
// lists must reproduce the go-runtime []uint64 buffering bit for bit,
// including repeated runs against the same engine value (reset-and-reuse
// must not leak state between queries).
func TestHolisticEquivalentAcrossAllocators(t *testing.T) {
	q90 := QuantileFunc(0.9)
	for _, spec := range equivSpecs() {
		keys := spec.Keys()
		vals := dataset.Values(len(keys), spec.Seed)
		ref := HashLP()
		wantMed := sortedQF(AsReducer(ref).VectorHolistic(keys, vals, MedianFunc))
		wantQ90 := sortedQF(AsReducer(ref).VectorHolistic(keys, vals, q90))
		for _, base := range []Engine{HashLP(), HashSC(), HashSparse(), HashDense(),
			ART(), Judy(), Btree(), Introsort(), Spreadsort(), HashRX(4), HashGLB(4), Adaptive()} {
			for _, al := range Allocators() {
				e := WithAllocator(base, al)
				for round := 0; round < 2; round++ { // twice: exercise pool reuse
					gotMed := sortedQF(AsReducer(e).VectorHolistic(keys, vals, MedianFunc))
					checkQF(t, e.Name()+"/"+al.String()+"/median", spec, gotMed, wantMed)
					gotQ90 := sortedQF(AsReducer(e).VectorHolistic(keys, vals, q90))
					checkQF(t, e.Name()+"/"+al.String()+"/q90", spec, gotQ90, wantQ90)
				}
			}
		}
	}
}

func checkQF(t *testing.T, label string, spec dataset.Spec, got, want []GroupFloat) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %v: %d groups want %d", label, spec, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s %v: row[%d] = %+v want %+v", label, spec, i, got[i], want[i])
		}
	}
}

func TestEnginesEquivalentToReference(t *testing.T) {
	ref := HashLP()
	for _, spec := range equivSpecs() {
		keys := spec.Keys()
		vals := dataset.Values(len(keys), spec.Seed)
		wantQ1 := sortedQ1(ref.VectorCount(keys))
		wantQ2 := sortedQF(ref.VectorAvg(keys, vals))
		wantQ3 := sortedQF(ref.VectorMedian(keys, vals))
		for _, e := range equivEngines() {
			gotQ1 := sortedQ1(e.VectorCount(keys))
			if len(gotQ1) != len(wantQ1) {
				t.Fatalf("%s %v: Q1 %d groups want %d", e.Name(), spec, len(gotQ1), len(wantQ1))
			}
			for i := range gotQ1 {
				if gotQ1[i] != wantQ1[i] {
					t.Fatalf("%s %v: Q1[%d] = %+v want %+v", e.Name(), spec, i, gotQ1[i], wantQ1[i])
				}
			}
			gotQ2 := sortedQF(e.VectorAvg(keys, vals))
			if len(gotQ2) != len(wantQ2) {
				t.Fatalf("%s %v: Q2 %d groups want %d", e.Name(), spec, len(gotQ2), len(wantQ2))
			}
			for i := range gotQ2 {
				if gotQ2[i] != wantQ2[i] {
					t.Fatalf("%s %v: Q2[%d] = %+v want %+v", e.Name(), spec, i, gotQ2[i], wantQ2[i])
				}
			}
			gotQ3 := sortedQF(e.VectorMedian(keys, vals))
			if len(gotQ3) != len(wantQ3) {
				t.Fatalf("%s %v: Q3 %d groups want %d", e.Name(), spec, len(gotQ3), len(wantQ3))
			}
			for i := range gotQ3 {
				if gotQ3[i] != wantQ3[i] {
					t.Fatalf("%s %v: Q3[%d] = %+v want %+v", e.Name(), spec, i, gotQ3[i], wantQ3[i])
				}
			}
		}
	}
}
