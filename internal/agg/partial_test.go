package agg

import (
	"math/rand"
	"testing"

	"memagg/internal/arena"
)

// TestPartialMatchesDirectFold feeds one value stream through a single
// Partial and checks every readout against the plain slice kernels.
func TestPartialMatchesDirectFold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]uint64, 10_001)
	for i := range vals {
		vals[i] = rng.Uint64() % 1_000_000
	}

	ar := arena.New()
	var p Partial
	for _, v := range vals {
		p.Observe(v)
		p.Buffer(ar, v)
	}

	if p.Count() != uint64(len(vals)) {
		t.Fatalf("Count = %d want %d", p.Count(), len(vals))
	}
	if p.Sum() != Sum(vals) {
		t.Fatalf("Sum = %d want %d", p.Sum(), Sum(vals))
	}
	wantMin, _ := Min(vals)
	if got, ok := p.Min(); !ok || got != wantMin {
		t.Fatalf("Min = %d,%v want %d", got, ok, wantMin)
	}
	wantMax, _ := Max(vals)
	if got, ok := p.Max(); !ok || got != wantMax {
		t.Fatalf("Max = %d,%v want %d", got, ok, wantMax)
	}
	if p.Avg() != Avg(vals) {
		t.Fatalf("Avg = %v want %v", p.Avg(), Avg(vals))
	}
	for _, op := range []ReduceOp{OpCount, OpSum, OpMin, OpMax} {
		var st reduceState
		for _, v := range vals {
			st.fold(op, v)
		}
		if p.Reduce(op) != st.val {
			t.Fatalf("Reduce(%v) = %d want %d", op, p.Reduce(op), st.val)
		}
	}
	got := p.AppendValues(ar, nil)
	want := append([]uint64(nil), vals...)
	if Median(got) != Median(want) {
		t.Fatalf("median over buffered values = %v want %v", Median(got), Median(want))
	}
}

// TestPartialMergeEquivalence splits a stream into random fragments, folds
// each fragment into its own Partial (with its own arena), merges them in
// random shapes, and checks the merged readouts — including holistic
// functions over the merged value lists — match the unsplit fold for every
// ReduceOp. This is the property the streaming subsystem rests on.
func TestPartialMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(5000)
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() % 10_000
		}

		// Reference: one partial over the whole stream.
		refAr := arena.New()
		var ref Partial
		for _, v := range vals {
			ref.Observe(v)
			ref.Buffer(refAr, v)
		}

		// Fragments: random cut points, one partial+arena per fragment
		// (some fragments may be empty — empty partials must merge as
		// identities).
		frags := 1 + rng.Intn(8)
		parts := make([]*Partial, frags)
		ars := make([]*arena.Arena, frags)
		for f := range parts {
			parts[f] = new(Partial)
			ars[f] = arena.New()
		}
		for _, v := range vals {
			f := rng.Intn(frags)
			parts[f].Observe(v)
			parts[f].Buffer(ars[f], v)
		}

		// Merge all fragments into a fresh partial in a fresh arena.
		mergedAr := arena.New()
		var merged Partial
		for f := range parts {
			merged.Merge(parts[f])
			merged.MergeValues(mergedAr, parts[f], ars[f])
		}

		if merged.Count() != ref.Count() || merged.Sum() != ref.Sum() {
			t.Fatalf("round %d: merged count/sum = %d/%d want %d/%d",
				round, merged.Count(), merged.Sum(), ref.Count(), ref.Sum())
		}
		for _, op := range []ReduceOp{OpCount, OpSum, OpMin, OpMax} {
			if merged.Reduce(op) != ref.Reduce(op) {
				t.Fatalf("round %d: Reduce(%v) = %d want %d",
					round, op, merged.Reduce(op), ref.Reduce(op))
			}
		}
		if merged.Avg() != ref.Avg() {
			t.Fatalf("round %d: Avg = %v want %v", round, merged.Avg(), ref.Avg())
		}
		if merged.Buffered() != ref.Buffered() {
			t.Fatalf("round %d: Buffered = %d want %d", round, merged.Buffered(), ref.Buffered())
		}
		// Holistic functions are order-insensitive, so the merged multiset
		// must give identical results even though fragment order differs.
		got := merged.AppendValues(mergedAr, nil)
		want := ref.AppendValues(refAr, nil)
		if Median(got) != Median(want) {
			t.Fatalf("round %d: merged median = %v want %v", round, Median(got), Median(want))
		}
		gq := Quantile(got, 0.9)
		wq := Quantile(want, 0.9)
		if gq != wq {
			t.Fatalf("round %d: merged q90 = %d want %d", round, gq, wq)
		}
		gm, gc, _ := Mode(got)
		wm, wc, _ := Mode(want)
		if gm != wm || gc != wc {
			t.Fatalf("round %d: merged mode = %d×%d want %d×%d", round, gm, gc, wm, wc)
		}
	}
}

// TestPartialEmptyMerge checks empty partials are merge identities in both
// directions.
func TestPartialEmptyMerge(t *testing.T) {
	var empty, p Partial
	p.Observe(5)
	p.Observe(3)

	q := p // copy
	q.Merge(&empty)
	if q != p {
		t.Fatalf("merge with empty changed the partial: %+v want %+v", q, p)
	}

	var r Partial
	r.Merge(&p)
	if r != p {
		t.Fatalf("merge into empty = %+v want %+v", r, p)
	}
	if mn, ok := r.Min(); !ok || mn != 3 {
		t.Fatalf("Min after merge-into-empty = %d,%v want 3", mn, ok)
	}
}
