package agg

import (
	"runtime"
	"sync"

	"memagg/internal/chash"
	"memagg/internal/cuckoo"
	"memagg/internal/obs"
)

// cuckooEngine implements Engine over the concurrent cuckoo map (Hash_LC).
// With threads == 1 it is the serial engine of the paper's Table 3 — and
// pays the full locking protocol anyway, reproducing the poor serial build
// times of Figure 3. With threads > 1 the build phase partitions the input
// across workers that share the table, exploiting libcuckoo's user-defined
// upsert to aggregate without a second lookup.
type cuckooEngine struct {
	threads int
}

// HashLC returns the libcuckoo-analog engine ("Hash_LC") running its build
// phase on the given number of goroutines (<= 0 uses GOMAXPROCS; 1 is the
// serial configuration used in Figures 3-7).
func HashLC(threads int) Engine {
	return &cuckooEngine{threads: threads}
}

func (e *cuckooEngine) Name() string       { return "Hash_LC" }
func (e *cuckooEngine) Category() Category { return HashBased }

func (e *cuckooEngine) workers() int {
	if e.threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.threads
}

// forcePar reports whether the caller explicitly asked for parallelism
// (threads > 1), which disables parallelChunks' small-input serial cutoff.
func (e *cuckooEngine) forcePar() bool { return e.threads > 1 }

// parallelChunks runs body over near-equal contiguous chunks of [0, n).
// force bypasses the small-input serial cutoff: engines set it when the
// caller explicitly requested a thread count (threads > 1), so thread-sweep
// benchmarks measure the parallelism they asked for; the cutoff applies
// only on the auto/GOMAXPROCS path where it is a pure heuristic.
func parallelChunks(n, p int, force bool, body func(lo, hi int)) {
	if p <= 1 || n == 0 || (!force && n < 4096) {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		lo, hi := n*w/p, n*(w+1)/p
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (e *cuckooEngine) VectorCount(keys []uint64) []GroupCount {
	ph := phasesFor(e.Name())
	mk := obs.Start()
	m := cuckoo.New[uint64](sizeHint(len(keys)))
	parallelChunks(len(keys), e.workers(), e.forcePar(), func(lo, hi int) {
		for _, k := range keys[lo:hi] {
			m.Upsert(k, func(v *uint64, _ bool) { *v++ })
		}
	})
	mk = mk.Tick(ph.build)
	out := make([]GroupCount, 0, m.Len())
	m.Iterate(func(k uint64, v *uint64) bool {
		out = append(out, GroupCount{Key: k, Count: *v})
		return true
	})
	mk.Tick(ph.iterate)
	return out
}

func (e *cuckooEngine) VectorAvg(keys, vals []uint64) []GroupFloat {
	m := cuckoo.New[avgState](sizeHint(len(keys)))
	parallelChunks(len(keys), e.workers(), e.forcePar(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var v uint64
			if i < len(vals) {
				v = vals[i]
			}
			m.Upsert(keys[i], func(st *avgState, _ bool) {
				st.sum += v
				st.count++
			})
		}
	})
	out := make([]GroupFloat, 0, m.Len())
	m.Iterate(func(k uint64, st *avgState) bool {
		out = append(out, GroupFloat{Key: k, Val: st.avg()})
		return true
	})
	return out
}

func (e *cuckooEngine) VectorMedian(keys, vals []uint64) []GroupFloat {
	m := cuckoo.New[[]uint64](sizeHint(len(keys)))
	parallelChunks(len(keys), e.workers(), e.forcePar(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var v uint64
			if i < len(vals) {
				v = vals[i]
			}
			m.Upsert(keys[i], func(lst *[]uint64, _ bool) {
				*lst = append(*lst, v)
			})
		}
	})
	out := make([]GroupFloat, 0, m.Len())
	m.Iterate(func(k uint64, lst *[]uint64) bool {
		out = append(out, GroupFloat{Key: k, Val: Median(*lst)})
		return true
	})
	return out
}

func (e *cuckooEngine) ScalarMedian([]uint64) (float64, error) {
	return 0, ErrUnsupported
}

func (e *cuckooEngine) VectorCountRange([]uint64, uint64, uint64) ([]GroupCount, error) {
	return nil, ErrUnsupported
}

// tbbEngine implements Engine over the striped chained map (Hash_TBBSC).
// Q3 reproduces the paper's observation that the TBB table degrades on
// holistic queries: every value append happens under the shard lock (the
// concurrent-vector substitution, DESIGN.md item 6).
type tbbEngine struct {
	threads int
}

// HashTBBSC returns the TBB-concurrent-map-analog engine ("Hash_TBBSC")
// building on the given number of goroutines (<= 0 uses GOMAXPROCS).
func HashTBBSC(threads int) Engine {
	return &tbbEngine{threads: threads}
}

func (e *tbbEngine) Name() string       { return "Hash_TBBSC" }
func (e *tbbEngine) Category() Category { return HashBased }

func (e *tbbEngine) workers() int {
	if e.threads <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.threads
}

// forcePar reports whether the caller explicitly asked for parallelism
// (threads > 1); see cuckooEngine.forcePar.
func (e *tbbEngine) forcePar() bool { return e.threads > 1 }

func (e *tbbEngine) VectorCount(keys []uint64) []GroupCount {
	ph := phasesFor(e.Name())
	mk := obs.Start()
	m := chash.New[uint64](sizeHint(len(keys)), 0)
	parallelChunks(len(keys), e.workers(), e.forcePar(), func(lo, hi int) {
		for _, k := range keys[lo:hi] {
			m.Upsert(k, func(v *uint64) { *v++ })
		}
	})
	mk = mk.Tick(ph.build)
	out := make([]GroupCount, 0, m.Len())
	m.Iterate(func(k uint64, v *uint64) bool {
		out = append(out, GroupCount{Key: k, Count: *v})
		return true
	})
	mk.Tick(ph.iterate)
	return out
}

func (e *tbbEngine) VectorAvg(keys, vals []uint64) []GroupFloat {
	m := chash.New[avgState](sizeHint(len(keys)), 0)
	parallelChunks(len(keys), e.workers(), e.forcePar(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var v uint64
			if i < len(vals) {
				v = vals[i]
			}
			m.Upsert(keys[i], func(st *avgState) {
				st.sum += v
				st.count++
			})
		}
	})
	out := make([]GroupFloat, 0, m.Len())
	m.Iterate(func(k uint64, st *avgState) bool {
		out = append(out, GroupFloat{Key: k, Val: st.avg()})
		return true
	})
	return out
}

func (e *tbbEngine) VectorMedian(keys, vals []uint64) []GroupFloat {
	m := chash.New[[]uint64](sizeHint(len(keys)), 0)
	parallelChunks(len(keys), e.workers(), e.forcePar(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var v uint64
			if i < len(vals) {
				v = vals[i]
			}
			m.Upsert(keys[i], func(lst *[]uint64) { *lst = append(*lst, v) })
		}
	})
	out := make([]GroupFloat, 0, m.Len())
	m.Iterate(func(k uint64, lst *[]uint64) bool {
		out = append(out, GroupFloat{Key: k, Val: Median(*lst)})
		return true
	})
	return out
}

func (e *tbbEngine) ScalarMedian([]uint64) (float64, error) {
	return 0, ErrUnsupported
}

func (e *tbbEngine) VectorCountRange([]uint64, uint64, uint64) ([]GroupCount, error) {
	return nil, ErrUnsupported
}
