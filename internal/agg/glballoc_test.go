package agg

import (
	"testing"

	"memagg/internal/dataset"
)

// TestGLBAllocBudget mirrors TestQ3AllocBudget for the parallel holistic
// path of Hash_GLB (wired into scripts/ci.sh): the arena configuration's
// buffer-and-replay merge must stay within a fixed per-query allocation
// budget — the shared table, the per-worker buffers and the slot-list
// array, NOT a per-row or per-group term — while the go-runtime
// configuration pays the per-group list growth the arena exists to
// avoid. Budgets are deliberately loose (~2× measured) so the test flags
// an architectural regression, not allocator noise.
func TestGLBAllocBudget(t *testing.T) {
	const (
		n    = 1 << 16 // above glbSerialCutoff: the morsel-driven path runs
		card = 1 << 12

		// arenaBudget bounds allocs/op for the warmed arena engine.
		// Measured ~45: table arrays, per-worker buffer growth, the
		// slot-list array, goroutine/result plumbing — all O(workers +
		// table), none O(rows) or O(groups).
		arenaBudget = 128

		// minRatio is the go-runtime : arena floor. Go-runtime pays per-
		// group list growth (measured ~450× the arena figure); 10× is the
		// acceptance floor.
		minRatio = 10
	)
	keys := dataset.Spec{Kind: dataset.RseqShf, N: n, Cardinality: card, Seed: 7}.Keys()
	vals := dataset.Values(n, 7)

	arenaEng := AsReducer(WithAllocator(HashGLB(4), AllocArena))
	goEng := AsReducer(HashGLB(4))
	arenaEng.VectorHolistic(keys, vals, MedianFunc) // warm the pools

	arenaAllocs := testing.AllocsPerRun(3, func() {
		arenaEng.VectorHolistic(keys, vals, MedianFunc)
	})
	goAllocs := testing.AllocsPerRun(3, func() {
		goEng.VectorHolistic(keys, vals, MedianFunc)
	})
	t.Logf("GLB Q3 allocs/op (n=%d, card=%d): go-runtime=%.0f arena=%.0f ratio=%.0fx",
		n, card, goAllocs, arenaAllocs, goAllocs/max(arenaAllocs, 1))

	if arenaAllocs > arenaBudget {
		t.Errorf("arena GLB Q3 allocs/op = %.0f, budget %d: an allocation crept back into the hot path", arenaAllocs, arenaBudget)
	}
	if goAllocs < minRatio*max(arenaAllocs, 1) {
		t.Errorf("go-runtime/arena allocs ratio = %.1fx, want >= %dx (go=%.0f arena=%.0f)",
			goAllocs/max(arenaAllocs, 1), minRatio, goAllocs, arenaAllocs)
	}
}
