package agg

import (
	"sync/atomic"

	"memagg/internal/arena"
	"memagg/internal/hashtbl"
	"memagg/internal/morsel"
	"memagg/internal/obs"
)

// globalEngine is the morsel-driven global shared-table parallel
// aggregation engine ("Hash_GLB"): every worker aggregates directly into
// ONE concurrent linear-probing table (hashtbl.Concurrent), with the input
// dispatched as morsels from a single atomic cursor (internal/morsel).
//
// It occupies the design point "Global Hash Tables Strike Back!" (arxiv
// 2505.04153) argues for against radix partitioning: no partitioning pass,
// no per-worker tables, no merge — the table is built exactly once, and
// synchronization is pushed down to the cheapest primitive each aggregate
// admits (a CAS per new group, an atomic add or CAS-fold per row).
//
// Against the repo's other parallel engines:
//
//   - vs Hash_RX (radix): Hash_RX pays a full extra pass over the input
//     (the scatter) to make phase 2 contention- and merge-free. Hash_GLB
//     skips that pass entirely. When the group set is small enough that the
//     shared table stays cache-resident, atomic adds to it are cheap and
//     the saved pass wins; as cardinality grows, every worker's probes miss
//     cache in a table none of them owns and the scatter's locality pays
//     for itself — the crossover `aggbench -exp glb` measures (see
//     EXPERIMENTS.md and Recommend).
//   - vs Hash_TBBSC (bucket-locked chained table): Hash_GLB takes no lock
//     on the distributive row path at all, and its open-addressed probes
//     touch one cache line where the chained table chases node pointers.
//   - vs Hash_PLAT (private tables): no p-way table replication and no
//     re-scan merge, at the price of shared-line traffic on hot groups.
//
// Morsel dispatch (Leis et al., SIGMOD 2014) rather than static chunking
// keeps the assignment dynamic — a worker stalled on a heavy-hitter run
// just claims fewer morsels — and gives the table its growth points: each
// morsel is bracketed BeginBatch/EndBatch, so the table can quiesce and
// double between morsels but never during one (concurrent.go documents the
// slack accounting that makes this safe).
//
// Distributive aggregates map onto per-slot uint64 lanes:
//
//	COUNT  1 lane, atomic add 1
//	SUM    1 lane, atomic add v
//	AVG    2 lanes (sum, count), two atomic adds; exact float64 division
//	        at emit — identical to avgState.avg()
//	MIN    1 lane seeded ^0, CAS-fold downward
//	MAX    1 lane seeded 0,  CAS-fold upward
//
// The MIN/MAX lattice identities make the fold exact under any
// claim/update interleaving: a freshly claimed slot already holds the
// fold's identity, so there is no "first value" publication to order.
//
// Holistic queries (Q3/MEDIAN, QUANTILE, MODE) need per-group value lists
// — a non-commutative append the lock-free lanes cannot express. Hash_GLB
// buffers instead: during the single parallel pass each worker claims keys
// in the shared table (establishing the slot space) and copies its rows
// into a private buffer; after the join the buffers are replayed once into
// per-slot lists via read-only GetSlot probes, serialized per-slot by the
// table's striped locks (or serially into a pooled arena under
// AllocArena, which a single-owner arena requires). Holistic functions are
// order-insensitive over the group multiset (Median/Quantile select,
// Mode sorts first), so the nondeterministic replay order is exact.
type globalEngine struct {
	threads int
	alloc   Allocator
}

// HashGLB returns the morsel-driven global shared-table engine
// ("Hash_GLB") building with the given number of goroutines (<= 0 uses
// GOMAXPROCS).
func HashGLB(threads int) Engine {
	return &globalEngine{threads: threads}
}

func (e *globalEngine) Name() string       { return "Hash_GLB" }
func (e *globalEngine) Category() Category { return HashBased }

func (e *globalEngine) workers() int {
	if e.threads <= 0 {
		return defaultWorkers()
	}
	return e.threads
}

const (
	// glbSerialCutoff is the input size below which goroutine fan-out and
	// atomic traffic cannot recoup themselves and a single serial
	// LinearProbe build runs instead (same threshold as rxSerialCutoff, so
	// the engines' parallel regimes coincide in sweeps).
	glbSerialCutoff = 1 << 15

	// glbMorselRows is the morsel size: DefaultRows follows the
	// morsel-driven literature's few-thousand-tuples guidance and sets the
	// table's growth slack (workers × morsel rows, see NewConcurrent).
	glbMorselRows = morsel.DefaultRows
)

// glbTable pre-sizes the shared table from a prefix-sample cardinality
// estimate — the EstimatedGroups discipline — so concurrent growth is the
// exception: a correct estimate means the build never takes the write lock.
func glbTable(keys []uint64, lanes int, laneInit []uint64, workers int) *hashtbl.Concurrent {
	return hashtbl.NewConcurrent(estimateGroups(keys), lanes, laneInit, workers*glbMorselRows)
}

// glbLaneDrive is the shared morsel loop of the distributive kernels: it
// drives workers over the input, brackets each morsel as one table batch,
// and hands hashBatch-blocks of (key, hash) pairs to the per-op row body.
// vals is clamped per block exactly like the serial kernels (a short
// values column zero-extends via valueAt in the tail).
func glbLaneDrive(t *hashtbl.Concurrent, keys, vals []uint64, workers int,
	block func(lanes []uint64, b, v []uint64, h *[hashBatch]uint64),
	row func(lanes []uint64, slot int, v uint64)) {
	morsel.Drive(len(keys), workers, glbMorselRows, func(_, lo, hi int) {
		lanes := t.BeginBatch()
		var h [hashBatch]uint64
		i := lo
		for ; i+hashBatch <= hi && i+hashBatch <= len(vals); i += hashBatch {
			b := keys[i : i+hashBatch : i+hashBatch]
			v := vals[i : i+hashBatch : i+hashBatch]
			mixBatch(&h, b)
			block(lanes, b, v, &h)
		}
		for ; i < hi; i++ {
			k := keys[i]
			row(lanes, t.UpsertSlotH(k, hashtbl.Mix(k)), valueAt(vals, i))
		}
		t.EndBatch()
	})
}

// The per-op kernels. Each is monomorphic — the op dispatch happens once
// per query in glbReduce/VectorCount, never in the row loop — and each
// lane update is a single wait-free atomic.

func glbBuildCount(t *hashtbl.Concurrent, keys []uint64, workers int) {
	morsel.Drive(len(keys), workers, glbMorselRows, func(_, lo, hi int) {
		lanes := t.BeginBatch()
		var h [hashBatch]uint64
		i := lo
		for ; i+hashBatch <= hi; i += hashBatch {
			b := keys[i : i+hashBatch : i+hashBatch]
			mixBatch(&h, b)
			for j, k := range b {
				atomic.AddUint64(&lanes[t.UpsertSlotH(k, h[j])], 1)
			}
		}
		for _, k := range keys[i:hi] {
			atomic.AddUint64(&lanes[t.UpsertSlotH(k, hashtbl.Mix(k))], 1)
		}
		t.EndBatch()
	})
}

func glbBuildSum(t *hashtbl.Concurrent, keys, vals []uint64, workers int) {
	glbLaneDrive(t, keys, vals, workers,
		func(lanes []uint64, b, v []uint64, h *[hashBatch]uint64) {
			for j, k := range b {
				atomic.AddUint64(&lanes[t.UpsertSlotH(k, h[j])], v[j])
			}
		},
		func(lanes []uint64, slot int, v uint64) {
			atomic.AddUint64(&lanes[slot], v)
		})
}

func glbBuildAvg(t *hashtbl.Concurrent, keys, vals []uint64, workers int) {
	glbLaneDrive(t, keys, vals, workers,
		func(lanes []uint64, b, v []uint64, h *[hashBatch]uint64) {
			for j, k := range b {
				s := t.UpsertSlotH(k, h[j]) * 2
				atomic.AddUint64(&lanes[s], v[j])
				atomic.AddUint64(&lanes[s+1], 1)
			}
		},
		func(lanes []uint64, slot int, v uint64) {
			atomic.AddUint64(&lanes[slot*2], v)
			atomic.AddUint64(&lanes[slot*2+1], 1)
		})
}

// casFoldMin lowers the lane toward v; the ^0 seed is the fold identity.
func casFoldMin(p *uint64, v uint64) {
	for {
		cur := atomic.LoadUint64(p)
		if v >= cur || atomic.CompareAndSwapUint64(p, cur, v) {
			return
		}
	}
}

// casFoldMax raises the lane toward v; the 0 seed is the fold identity.
func casFoldMax(p *uint64, v uint64) {
	for {
		cur := atomic.LoadUint64(p)
		if v <= cur || atomic.CompareAndSwapUint64(p, cur, v) {
			return
		}
	}
}

func glbBuildMin(t *hashtbl.Concurrent, keys, vals []uint64, workers int) {
	glbLaneDrive(t, keys, vals, workers,
		func(lanes []uint64, b, v []uint64, h *[hashBatch]uint64) {
			for j, k := range b {
				casFoldMin(&lanes[t.UpsertSlotH(k, h[j])], v[j])
			}
		},
		func(lanes []uint64, slot int, v uint64) {
			casFoldMin(&lanes[slot], v)
		})
}

func glbBuildMax(t *hashtbl.Concurrent, keys, vals []uint64, workers int) {
	glbLaneDrive(t, keys, vals, workers,
		func(lanes []uint64, b, v []uint64, h *[hashBatch]uint64) {
			for j, k := range b {
				casFoldMax(&lanes[t.UpsertSlotH(k, h[j])], v[j])
			}
		},
		func(lanes []uint64, slot int, v uint64) {
			casFoldMax(&lanes[slot], v)
		})
}

var glbMinSeed = []uint64{^uint64(0)}

// serial reports whether the query should take the serial LinearProbe
// fallback — behaviourally identical results, none of the parallel
// machinery (mirrors rxRun's fallback so the engines' regimes coincide).
func (e *globalEngine) serial(n int) bool {
	return n < glbSerialCutoff || e.workers() == 1
}

func (e *globalEngine) VectorCount(keys []uint64) []GroupCount {
	ph := phasesFor(e.Name())
	m := obs.Start()
	if e.serial(len(keys)) {
		t := hashtbl.NewLinearProbe[uint64](sizeHint(len(keys)))
		lpBuildCount(t, keys)
		m = m.Tick(ph.build)
		out := make([]GroupCount, 0, t.Len())
		t.Iterate(func(k uint64, v *uint64) bool {
			out = append(out, GroupCount{Key: k, Count: *v})
			return true
		})
		m.Tick(ph.iterate)
		return out
	}
	w := e.workers()
	t := glbTable(keys, 1, nil, w)
	glbBuildCount(t, keys, w)
	m = m.Tick(ph.build)
	lanes := t.Vals()
	out := make([]GroupCount, 0, t.Len())
	t.Iterate(func(s int, k uint64) bool {
		out = append(out, GroupCount{Key: k, Count: lanes[s]})
		return true
	})
	m.Tick(ph.iterate)
	return out
}

func (e *globalEngine) VectorAvg(keys, vals []uint64) []GroupFloat {
	ph := phasesFor(e.Name())
	m := obs.Start()
	if e.serial(len(keys)) {
		t := hashtbl.NewLinearProbe[avgState](sizeHint(len(keys)))
		lpBuildAvg(t, keys, vals)
		m = m.Tick(ph.build)
		out := make([]GroupFloat, 0, t.Len())
		t.Iterate(func(k uint64, st *avgState) bool {
			out = append(out, GroupFloat{Key: k, Val: st.avg()})
			return true
		})
		m.Tick(ph.iterate)
		return out
	}
	w := e.workers()
	t := glbTable(keys, 2, nil, w)
	glbBuildAvg(t, keys, vals, w)
	m = m.Tick(ph.build)
	lanes := t.Vals()
	out := make([]GroupFloat, 0, t.Len())
	t.Iterate(func(s int, k uint64) bool {
		// Same division as avgState.avg(): exact equivalence to the
		// serial reference, bit for bit.
		st := avgState{sum: lanes[s*2], count: lanes[s*2+1]}
		out = append(out, GroupFloat{Key: k, Val: st.avg()})
		return true
	})
	m.Tick(ph.iterate)
	return out
}

func (e *globalEngine) VectorReduce(keys, vals []uint64, op ReduceOp) []GroupUint {
	ph := phasesFor(e.Name())
	m := obs.Start()
	if e.serial(len(keys)) {
		t := hashtbl.NewLinearProbe[reduceState](sizeHint(len(keys)))
		lpBuildReduce(t, keys, vals, op)
		m = m.Tick(ph.build)
		out := make([]GroupUint, 0, t.Len())
		t.Iterate(func(k uint64, st *reduceState) bool {
			out = append(out, GroupUint{Key: k, Val: st.val})
			return true
		})
		m.Tick(ph.iterate)
		return out
	}
	w := e.workers()
	var t *hashtbl.Concurrent
	switch op {
	case OpCount:
		t = glbTable(keys, 1, nil, w)
		glbBuildCount(t, keys, w)
	case OpSum:
		t = glbTable(keys, 1, nil, w)
		glbBuildSum(t, keys, vals, w)
	case OpMin:
		t = glbTable(keys, 1, glbMinSeed, w)
		glbBuildMin(t, keys, vals, w)
	case OpMax:
		t = glbTable(keys, 1, nil, w)
		glbBuildMax(t, keys, vals, w)
	}
	m = m.Tick(ph.build)
	lanes := t.Vals()
	out := make([]GroupUint, 0, t.Len())
	t.Iterate(func(s int, k uint64) bool {
		out = append(out, GroupUint{Key: k, Val: lanes[s]})
		return true
	})
	m.Tick(ph.iterate)
	return out
}

func (e *globalEngine) VectorMedian(keys, vals []uint64) []GroupFloat {
	return e.VectorHolistic(keys, vals, MedianFunc)
}

// VectorHolistic runs the buffer-and-replay holistic path described on the
// type: one parallel pass claims the group set and copies rows into
// per-worker buffers; one post-join replay builds the per-slot value lists
// (striped-locked in parallel under the Go runtime allocator, serially
// into a pooled arena under AllocArena).
func (e *globalEngine) VectorHolistic(keys, vals []uint64, fn HolisticFunc) []GroupFloat {
	ph := phasesFor(e.Name())
	m := obs.Start()
	if e.serial(len(keys)) {
		var out []GroupFloat
		if e.alloc == AllocArena {
			ar := arenas.Get()
			defer arenas.Put(ar)
			t := hashtbl.NewLinearProbe[arena.List](sizeHint(len(keys)))
			lpBuildArenaList(t, ar, keys, vals)
			m = m.Tick(ph.build)
			out = emitHolisticArena(t, ar, fn)
		} else {
			t := hashtbl.NewLinearProbe[[]uint64](sizeHint(len(keys)))
			lpBuildList(t, keys, vals)
			m = m.Tick(ph.build)
			out = emitHolistic(t, fn)
		}
		m.Tick(ph.iterate)
		return out
	}
	w := e.workers()
	t := glbTable(keys, 0, nil, w)

	// Pass 1: claim every key into the shared table (freezing the slot
	// space at the join) while each worker copies its rows aside. The
	// copies, not the slots, carry the values across the join — slot
	// indices do not survive growth, buffered (key, value) pairs do.
	type buf struct {
		k, v []uint64
	}
	bufs := make([]buf, w)
	morsel.Drive(len(keys), w, glbMorselRows, func(worker, lo, hi int) {
		t.BeginBatch()
		var h [hashBatch]uint64
		i := lo
		for ; i+hashBatch <= hi; i += hashBatch {
			b := keys[i : i+hashBatch : i+hashBatch]
			mixBatch(&h, b)
			for j, k := range b {
				t.UpsertSlotH(k, h[j])
			}
		}
		for _, k := range keys[i:hi] {
			t.UpsertSlotH(k, hashtbl.Mix(k))
		}
		t.EndBatch()
		bb := &bufs[worker]
		bb.k = append(bb.k, keys[lo:hi]...)
		if hi <= len(vals) {
			bb.v = append(bb.v, vals[lo:hi]...)
		} else {
			for i := lo; i < hi; i++ {
				bb.v = append(bb.v, valueAt(vals, i))
			}
		}
	})
	m = m.Tick(ph.build)

	// Pass 2: replay the buffers into per-slot lists through read-only
	// GetSlot probes (every key was claimed in pass 1; the table is
	// quiescent now, so no batches and no atomics are needed for probing).
	out := make([]GroupFloat, 0, t.Len())
	if e.alloc == AllocArena {
		// A single-owner arena cannot take appends from many workers;
		// replay serially into one pooled arena (WithAllocator documents
		// the trade).
		ar := arenas.Get()
		defer arenas.Put(ar)
		lists := make([]arena.List, t.Cap()+1)
		for i := range bufs {
			for j, k := range bufs[i].k {
				ar.Append(&lists[t.GetSlot(k)], bufs[i].v[j])
			}
		}
		m = m.Tick(ph.merge)
		var scratch []uint64
		t.Iterate(func(s int, k uint64) bool {
			scratch = ar.AppendTo(scratch[:0], lists[s])
			out = append(out, GroupFloat{Key: k, Val: fn(scratch)})
			return true
		})
	} else {
		lists := make([][]uint64, t.Cap()+1)
		parallelDo(w, func(worker int) {
			b := bufs[worker]
			for j, k := range b.k {
				s := t.GetSlot(k)
				t.DoLocked(s, func() {
					lists[s] = append(lists[s], b.v[j])
				})
			}
		})
		m = m.Tick(ph.merge)
		t.Iterate(func(s int, k uint64) bool {
			out = append(out, GroupFloat{Key: k, Val: fn(lists[s])})
			return true
		})
	}
	m.Tick(ph.iterate)
	return out
}

// ScalarMedian is unsupported, as for the other hash engines: the table
// cannot produce keys in lexicographic order.
func (e *globalEngine) ScalarMedian([]uint64) (float64, error) {
	return 0, ErrUnsupported
}

// VectorCountRange is unsupported: no native range search.
func (e *globalEngine) VectorCountRange([]uint64, uint64, uint64) ([]GroupCount, error) {
	return nil, ErrUnsupported
}
