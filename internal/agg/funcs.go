// Package agg implements the paper's aggregation operators: every query in
// Table 1 (vector/scalar × distributive/algebraic/holistic, plus the Q7
// range variant) executed over every Table 3 algorithm (sort-based,
// hash-based, and tree-based backends), in serial and multithreaded form.
//
// Every operator is split into the two phases of Section 3: a build phase
// that folds records into the backing structure (with early aggregation for
// distributive and algebraic functions) and an iterate phase that reads the
// result out. Holistic functions (median) buffer each group's values during
// build and aggregate during iterate, because they cannot be computed
// incrementally.
package agg

import "sort"

// --- aggregate-function kernel ----------------------------------------------
//
// These operate on plain slices and back both the operators and the scalar
// queries. They are the distributive (Count/Sum/Min/Max), algebraic (Avg),
// and holistic (Median/Quantile/Mode) functions of Section 2.

// Sum returns the sum of a.
func Sum(a []uint64) uint64 {
	var s uint64
	for _, v := range a {
		s += v
	}
	return s
}

// Min returns the minimum of a; ok is false for empty input.
func Min(a []uint64) (min uint64, ok bool) {
	if len(a) == 0 {
		return 0, false
	}
	min = a[0]
	for _, v := range a[1:] {
		if v < min {
			min = v
		}
	}
	return min, true
}

// Max returns the maximum of a; ok is false for empty input.
func Max(a []uint64) (max uint64, ok bool) {
	if len(a) == 0 {
		return 0, false
	}
	max = a[0]
	for _, v := range a[1:] {
		if v > max {
			max = v
		}
	}
	return max, true
}

// Avg returns the arithmetic mean of a, or 0 for empty input.
func Avg(a []uint64) float64 {
	if len(a) == 0 {
		return 0
	}
	return float64(Sum(a)) / float64(len(a))
}

// Median returns the median of a, averaging the two middle elements for
// even lengths. It reorders a (in-place selection); pass a copy if the
// original order matters. Returns 0 for empty input.
func Median(a []uint64) float64 {
	switch len(a) {
	case 0:
		return 0
	case 1:
		return float64(a[0])
	}
	n := len(a)
	if n%2 == 1 {
		return float64(Select(a, n/2))
	}
	hi := Select(a, n/2)
	lo, _ := Max(a[:n/2]) // after Select, a[:n/2] holds the lower half
	return (float64(lo) + float64(hi)) / 2
}

// MedianSorted returns the median of an already ascending slice without
// modifying it.
func MedianSorted(a []uint64) float64 {
	switch len(a) {
	case 0:
		return 0
	case 1:
		return float64(a[0])
	}
	n := len(a)
	if n%2 == 1 {
		return float64(a[n/2])
	}
	return (float64(a[n/2-1]) + float64(a[n/2])) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) of a by the nearest-rank
// method. It reorders a. Returns 0 for empty input.
func Quantile(a []uint64, q float64) uint64 {
	if len(a) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int(q * float64(len(a)-1))
	return Select(a, rank)
}

// Mode returns the most frequent value of a and its multiplicity, breaking
// ties toward the smaller value. It reorders a. ok is false for empty
// input.
func Mode(a []uint64) (val uint64, count int, ok bool) {
	if len(a) == 0 {
		return 0, 0, false
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	best, bestN := a[0], 1
	cur, curN := a[0], 1
	for _, v := range a[1:] {
		if v == cur {
			curN++
		} else {
			cur, curN = v, 1
		}
		if curN > bestN {
			best, bestN = cur, curN
		}
	}
	return best, bestN, true
}

// Select places the k-th smallest element (0-based) of a at index k,
// partitioning a around it (quickselect with median-of-three pivots), and
// returns it. Average O(n).
func Select(a []uint64, k int) uint64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		if hi-lo < 12 {
			insertionRange(a, lo, hi)
			return a[k]
		}
		p := med3val(a, lo, (lo+hi)/2, hi)
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return a[k]
		}
	}
	return a[k]
}

func insertionRange(a []uint64, lo, hi int) {
	for i := lo + 1; i <= hi; i++ {
		v := a[i]
		j := i - 1
		for j >= lo && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func med3val(a []uint64, i, j, k int) uint64 {
	x, y, z := a[i], a[j], a[k]
	if x > y {
		x, y = y, x
	}
	if y > z {
		y = z
		if x > y {
			y = x
		}
	}
	return y
}
