package agg

import "fmt"

// Engines returns the ten serial algorithms of the paper's Table 3, in
// table order, plus Ttree (evaluated only in the Figure 3 microbenchmark).
// Hash_LC is configured with one thread, as in the serial experiments.
func Engines() []Engine {
	return []Engine{
		ART(),
		Judy(),
		Btree(),
		HashSC(),
		HashLP(),
		HashSparse(),
		HashDense(),
		HashLC(1),
		Introsort(),
		Spreadsort(),
	}
}

// ConcurrentEngines returns the four multithreaded algorithms of Table 8,
// each configured to build with p goroutines.
func ConcurrentEngines(p int) []Engine {
	return []Engine{
		HashTBBSC(p),
		HashLC(p),
		SortBI(p),
		SortQSLB(p),
	}
}

// TreeEngines returns the tree-based engines evaluated in the range-search
// study (Figure 8).
func TreeEngines() []Engine {
	return []Engine{ART(), Judy(), Btree()}
}

// ScalarEngines returns the engines evaluated in the scalar-median study
// (Figure 9): the trees and the sorts.
func ScalarEngines() []Engine {
	return []Engine{ART(), Judy(), Btree(), Introsort(), Spreadsort()}
}

// ByName returns the serial engine with the given paper label (e.g.
// "Hash_LP"), or an error listing the known labels.
func ByName(name string) (Engine, error) {
	all := append(Engines(), Ttree())
	for _, e := range all {
		if e.Name() == name {
			return e, nil
		}
	}
	known := make([]string, len(all))
	for i, e := range all {
		known[i] = e.Name()
	}
	return nil, fmt.Errorf("agg: unknown algorithm %q (known: %v)", name, known)
}
