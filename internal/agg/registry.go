package agg

import "fmt"

// Engines returns the ten serial algorithms of the paper's Table 3, in
// table order, plus Ttree (evaluated only in the Figure 3 microbenchmark).
// Hash_LC is configured with one thread, as in the serial experiments.
func Engines() []Engine {
	return []Engine{
		ART(),
		Judy(),
		Btree(),
		HashSC(),
		HashLP(),
		HashSparse(),
		HashDense(),
		HashLC(1),
		Introsort(),
		Spreadsort(),
	}
}

// ConcurrentEngines returns the multithreaded algorithms — the four of
// Table 8 plus the radix-partitioned and global shared-table extension
// engines — each configured to build with p goroutines.
func ConcurrentEngines(p int) []Engine {
	return []Engine{
		HashTBBSC(p),
		HashLC(p),
		SortBI(p),
		SortQSLB(p),
		HashRX(p),
		HashGLB(p),
	}
}

// TreeEngines returns the tree-based engines evaluated in the range-search
// study (Figure 8).
func TreeEngines() []Engine {
	return []Engine{ART(), Judy(), Btree()}
}

// ScalarEngines returns the engines evaluated in the scalar-median study
// (Figure 9): the trees and the sorts.
func ScalarEngines() []Engine {
	return []Engine{ART(), Judy(), Btree(), Introsort(), Spreadsort()}
}

// ByName returns the engine with the given label (e.g. "Hash_LP"), or an
// error listing the known labels. Serial engines come in their Table 3
// configuration; concurrent and extension engines default to GOMAXPROCS
// workers (construct them directly to pick a thread count).
func ByName(name string) (Engine, error) {
	all := append(Engines(), Ttree(),
		HashTBBSC(0), SortBI(0), SortQSLB(0),
		HashRX(0), HashGLB(0), HashPLAT(0), Adaptive())
	for _, e := range all {
		if e.Name() == name {
			return e, nil
		}
	}
	known := make([]string, len(all))
	for i, e := range all {
		known[i] = e.Name()
	}
	return nil, fmt.Errorf("agg: unknown algorithm %q (known: %v)", name, known)
}
